package trikcore_test

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"trikcore"
)

func cliqueGraph(n trikcore.Vertex) *trikcore.Graph {
	g := trikcore.NewGraph()
	for i := trikcore.Vertex(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func TestFacadeBinaryIO(t *testing.T) {
	g := cliqueGraph(6)
	var buf bytes.Buffer
	if err := trikcore.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := trikcore.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Fatal("facade binary round trip changed the graph")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "g.tkcg")
	txt := filepath.Join(dir, "g.txt")
	if err := trikcore.SaveBinaryFile(bin, g); err != nil {
		t.Fatal(err)
	}
	if err := trikcore.SaveEdgeListFile(txt, g); err != nil {
		t.Fatal(err)
	}
	fromBin, err := trikcore.LoadBinaryFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	fromTxt, err := trikcore.LoadEdgeListFile(txt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromBin.Edges(), fromTxt.Edges()) {
		t.Fatal("binary and text files disagree")
	}
}

func TestFacadeEventsAndTimeline(t *testing.T) {
	old := cliqueGraph(5)
	new := cliqueGraph(8)
	oldC, newC, evs := trikcore.DetectEvents(old, new, 2, trikcore.EventOptions{})
	if len(oldC) != 1 || len(newC) != 1 {
		t.Fatalf("communities: %d old, %d new", len(oldC), len(newC))
	}
	if len(evs) != 1 || evs[0].Type != trikcore.EventGrow {
		t.Fatalf("events = %v, want one grow", evs)
	}

	tl := trikcore.NewTimeline(2)
	tl.Observe(old, trikcore.EventOptions{})
	tl.Observe(new, trikcore.EventOptions{})
	if got := tl.ActiveTracks(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("active tracks = %v", got)
	}
	if !strings.Contains(tl.Summary(), "track 0: s0:5v s1:8v") {
		t.Fatalf("timeline summary:\n%s", tl.Summary())
	}
}

func TestFacadeTrackedEngine(t *testing.T) {
	te := trikcore.NewTrackedEngine(cliqueGraph(5))
	te.InsertEdge(0, 10)
	te.InsertEdge(1, 10)
	tris, ok := te.CoreTriangles(trikcore.NewEdge(0, 10))
	if !ok || len(tris) != 1 {
		t.Fatalf("CoreTriangles = %v (ok=%v)", tris, ok)
	}
	if err := te.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeHierarchyAndCommunities(t *testing.T) {
	g := cliqueGraph(5)
	g.AddEdge(4, 20)
	g.AddEdge(0, 20) // pendant triangle level 1
	d := trikcore.Decompose(g)
	roots := d.Hierarchy()
	if len(roots) != 1 || len(roots[0].Leaves()) != 1 {
		t.Fatalf("hierarchy roots = %v", roots)
	}
	leaf := roots[0].Leaves()[0]
	if leaf.K != 3 || len(leaf.Vertices()) != 5 {
		t.Fatalf("leaf = %+v", leaf)
	}
	if len(d.Communities(3)) != 1 {
		t.Fatal("communities wrong")
	}
}

func TestFacadeCoreTrianglesStatic(t *testing.T) {
	g := cliqueGraph(4)
	d := trikcore.Decompose(g)
	tris, ok := d.CoreTriangles(trikcore.NewEdge(0, 1))
	if !ok || len(tris) != 2 {
		t.Fatalf("static Rule 1 witness = %v", tris)
	}
}

func TestFacadeEngineQueries(t *testing.T) {
	en := trikcore.NewEngine(cliqueGraph(5))
	if h := en.KappaHistogram(); h[3] != 10 {
		t.Fatalf("engine histogram = %v", h)
	}
	sub, ok := en.MaxCoreOf(trikcore.NewEdge(0, 1))
	if !ok || sub.NumEdges() != 10 {
		t.Fatal("engine MaxCoreOf wrong")
	}
	if len(en.Communities(3)) != 1 {
		t.Fatal("engine Communities wrong")
	}
	w, ok := en.RuleOneWitness(trikcore.NewEdge(0, 1))
	if !ok || len(w) != 3 {
		t.Fatalf("RuleOneWitness = %v", w)
	}
}

func TestFacadePublisher(t *testing.T) {
	p := trikcore.NewPublisher(cliqueGraph(5))
	sn := p.Acquire()
	if sn.NumEdges() != 10 || sn.MaxCliqueProxy() != 5 {
		t.Fatalf("initial snapshot: %d edges, proxy %d", sn.NumEdges(), sn.MaxCliqueProxy())
	}
	p.Apply([]trikcore.EdgeOp{{U: 0, V: 9}, {U: 1, V: 9}})
	sn2 := p.Acquire()
	if sn2.Version <= sn.Version || sn2.NumEdges() != 12 {
		t.Fatalf("after apply: v%d→v%d, %d edges", sn.Version, sn2.Version, sn2.NumEdges())
	}
	if k, ok := sn2.KappaOf(trikcore.NewEdge(0, 9)); !ok || k != 1 {
		t.Fatalf("κ(0,9) = %d,%v", k, ok)
	}
	if _, ok := sn.KappaOf(trikcore.NewEdge(0, 9)); ok {
		t.Fatal("old snapshot sees the new edge")
	}
	if len(sn2.PlotSVG()) == 0 || len(sn2.Communities(3)) != 1 {
		t.Fatal("derived artifacts missing")
	}

	en := trikcore.NewEngine(cliqueGraph(4))
	p2 := trikcore.NewPublisherFromEngine(en)
	if got := p2.Acquire().NumEdges(); got != 6 {
		t.Fatalf("engine-wrapped publisher sees %d edges", got)
	}
}
