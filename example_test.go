package trikcore_test

import (
	"fmt"
	"sort"

	"trikcore"
)

// Example walks the core workflow: decompose a graph, read κ, extract
// the densest community, and keep κ exact through an update.
func Example() {
	// The paper's Figure 2 graph: a near-4-clique {B,C,D,E} with a
	// pendant triangle through A.
	g := trikcore.NewGraph()
	for _, e := range [][2]trikcore.Vertex{
		{1, 2}, {1, 3}, {2, 3}, {2, 4}, {2, 5}, {3, 4}, {3, 5}, {4, 5},
	} {
		g.AddEdge(e[0], e[1])
	}

	d := trikcore.Decompose(g)
	kAB, _ := d.KappaOf(trikcore.NewEdge(1, 2))
	kDE, _ := d.KappaOf(trikcore.NewEdge(4, 5))
	fmt.Printf("κ(A-B)=%d κ(D-E)=%d\n", kAB, kDE)

	core, _ := d.MaxCoreOf(trikcore.NewEdge(4, 5))
	fmt.Printf("densest community around D-E: %d vertices\n", core.NumVertices())

	en := trikcore.NewEngine(g)
	en.InsertEdge(1, 4) // A joins D's neighborhood
	kAB2, _ := en.Kappa(trikcore.NewEdge(1, 2))
	fmt.Printf("after adding A-D: κ(A-B)=%d\n", kAB2)

	// Output:
	// κ(A-B)=1 κ(D-E)=2
	// densest community around D-E: 4 vertices
	// after adding A-D: κ(A-B)=2
}

// ExampleDecompose shows the clique identity: every edge of an n-clique
// has κ = n-2.
func ExampleDecompose() {
	g := trikcore.NewGraph()
	for i := trikcore.Vertex(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddEdge(i, j)
		}
	}
	d := trikcore.Decompose(g)
	k, _ := d.KappaOf(trikcore.NewEdge(0, 1))
	fmt.Printf("K5 edge: κ=%d, clique proxy %d\n", k, k+2)
	// Output:
	// K5 edge: κ=3, clique proxy 5
}

// ExampleDensityPlot shows how plateaus in the density plot expose
// cliques.
func ExampleDensityPlot() {
	g := trikcore.NewGraph()
	for i := trikcore.Vertex(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.AddEdge(i, j) // a 6-clique
		}
	}
	g.AddEdge(6, 7) // background noise
	series := trikcore.DensityPlot(g, trikcore.Decompose(g))
	peak := series.TopPeaks(1, 2)[0]
	fmt.Printf("top plateau: height %d, width %d\n", peak.Height, peak.Width())
	// Output:
	// top plateau: height 6, width 6
}

// ExampleDetectTemplate finds a New Form clique between two snapshots.
func ExampleDetectTemplate() {
	old := trikcore.NewGraph()
	for v := trikcore.Vertex(1); v <= 4; v++ {
		old.AddEdge(v, v+100) // the authors exist with unrelated edges
	}
	new := old.Clone()
	for i := trikcore.Vertex(1); i <= 4; i++ {
		for j := i + 1; j <= 4; j++ {
			new.AddEdge(i, j) // all collaborate for the first time
		}
	}
	res := trikcore.DetectTemplate(new, trikcore.NewFormPattern(trikcore.EvolvingNovelty(old, new)))
	peak := res.TopCliques(1, 2)[0]
	verts := append([]trikcore.Vertex(nil), peak.Vertices...)
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	fmt.Printf("new-form clique of %d authors: %v\n", peak.Width(), verts)
	// Output:
	// new-form clique of 4 authors: [1 2 3 4]
}

// ExampleNewEngine demonstrates incremental maintenance with work
// counters.
func ExampleNewEngine() {
	en := trikcore.NewEngine(trikcore.NewGraph())
	en.InsertEdge(1, 2)
	en.InsertEdge(2, 3)
	en.InsertEdge(1, 3) // closes a triangle: all three edges rise to κ=1
	k, _ := en.Kappa(trikcore.NewEdge(1, 2))
	fmt.Printf("κ=%d after closing the triangle (promotions: %d)\n", k, en.Stats().Promotions)
	// Output:
	// κ=1 after closing the triangle (promotions: 3)
}

// ExampleTriDN verifies the paper's Claim 3 on a small graph: the
// DN-Graph baselines converge to κ.
func ExampleTriDN() {
	g := trikcore.NewGraph()
	for i := trikcore.Vertex(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
		}
	}
	lam, _ := trikcore.TriDN(g).LambdaOf(trikcore.NewEdge(0, 1))
	kap, _ := trikcore.Decompose(g).KappaOf(trikcore.NewEdge(0, 1))
	fmt.Printf("valid λ̄ = %d, κ = %d\n", lam, kap)
	// Output:
	// valid λ̄ = 2, κ = 2
}
