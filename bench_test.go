package trikcore_test

// One benchmark per table and figure of the paper (driving the same
// harness as cmd/experiments, at reduced scale so `go test -bench=.`
// completes in minutes), plus micro-benchmarks for the individual
// algorithms and the ablations called out in DESIGN.md.
//
// To regenerate the paper artifacts at full Table I scale, use
// `go run ./cmd/experiments` instead — benchmarks here are about
// relative cost, not absolute reproduction.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"trikcore"
	"trikcore/internal/bucket"
	"trikcore/internal/clique"
	"trikcore/internal/core"
	"trikcore/internal/csvbaseline"
	"trikcore/internal/dataset"
	"trikcore/internal/dngraph"
	"trikcore/internal/dynamic"
	"trikcore/internal/events"
	"trikcore/internal/expt"
	"trikcore/internal/extcore"
	"trikcore/internal/gen"
	"trikcore/internal/graph"
	"trikcore/internal/kcore"
	"trikcore/internal/obs"
	"trikcore/internal/obs/trace"
	"trikcore/internal/plot"
	"trikcore/internal/server"
	"trikcore/internal/template"
)

// benchCfg is the reduced-scale configuration the per-artifact benchmarks
// run at.
func benchCfg() expt.Config {
	return expt.Config{Scale: 0.02, Runs: 1, CSVEdgeLimit: 5_000, DNEdgeLimit: 25_000}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := expt.RunnerByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper artifact -----------------------------------

func BenchmarkTableI_DatasetGen(b *testing.B)           { runExperiment(b, "tableI") }
func BenchmarkTableII_AlgorithmComparison(b *testing.B) { runExperiment(b, "tableII") }
func BenchmarkTableIII_UpdateVsRecompute(b *testing.B)  { runExperiment(b, "tableIII") }
func BenchmarkFigure6_DensityPlots(b *testing.B)        { runExperiment(b, "figure6") }
func BenchmarkFigure7_PPIPeaks(b *testing.B)            { runExperiment(b, "figure7") }
func BenchmarkFigure8_DualView(b *testing.B)            { runExperiment(b, "figure8") }
func BenchmarkFigure9_NewForm(b *testing.B)             { runExperiment(b, "figure9") }
func BenchmarkFigure10_Bridge(b *testing.B)             { runExperiment(b, "figure10") }
func BenchmarkFigure11_NewJoin(b *testing.B)            { runExperiment(b, "figure11") }
func BenchmarkFigure12_PPIBridge(b *testing.B)          { runExperiment(b, "figure12") }

// --- Shared fixtures ------------------------------------------------------

var (
	fixtureOnce sync.Once
	ppiGraph    *graph.Graph // the full PPI stand-in (15 147 edges)
	astroGraph  *graph.Graph // Astro-Author at 20% (38 194 edges)
)

func fixtures() (*graph.Graph, *graph.Graph) {
	fixtureOnce.Do(func() {
		d, _ := dataset.ByName("PPI")
		ppiGraph = d.Graph()
		a, _ := dataset.ByName("Astro-Author")
		astroGraph = a.GenerateAt(0.2)
	})
	return ppiGraph, astroGraph
}

// --- Micro-benchmarks: the paper's algorithms ----------------------------

func BenchmarkDecompose_PPI(b *testing.B) {
	ppi, _ := fixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Decompose(ppi)
	}
}

func BenchmarkDecompose_Astro20pct(b *testing.B) {
	_, astro := fixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Decompose(astro)
	}
}

// BenchmarkDecompose_PeelOnly isolates steps 7–18 of Algorithm 1 (the
// paper's Table III "Re-compute" accounting) from triangle counting.
func BenchmarkDecompose_PeelOnly_PPI(b *testing.B) {
	ppi, _ := fixtures()
	s := graph.FreezeStatic(ppi)
	support := core.ComputeSupport(s, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DecomposeWithSupport(s, support)
	}
}

func BenchmarkSupportComputation_PPI(b *testing.B) {
	ppi, _ := fixtures()
	s := graph.FreezeStatic(ppi)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ComputeSupport(s, 0)
	}
}

func BenchmarkEngineInsertDelete_PPI(b *testing.B) {
	ppi, _ := fixtures()
	en := dynamic.NewEngine(ppi)
	verts := ppi.Vertices()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := verts[rng.Intn(len(verts))]
		v := verts[rng.Intn(len(verts))]
		if u == v {
			continue
		}
		if en.HasEdge(u, v) {
			en.DeleteEdge(u, v)
			en.InsertEdge(u, v)
		} else {
			en.InsertEdge(u, v)
			en.DeleteEdge(u, v)
		}
	}
}

func BenchmarkCSVBaseline_Stocks(b *testing.B) {
	d, _ := dataset.ByName("Stocks")
	g := d.Graph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csvbaseline.CoCliqueSizes(g)
	}
}

func BenchmarkTriDN_Stocks(b *testing.B) {
	d, _ := dataset.ByName("Stocks")
	g := d.Graph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dngraph.TriDN(g, dngraph.Options{})
	}
}

func BenchmarkBiTriDN_Stocks(b *testing.B) {
	d, _ := dataset.ByName("Stocks")
	g := d.Graph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dngraph.BiTriDN(g, dngraph.Options{})
	}
}

func BenchmarkDensityPlot_PPI(b *testing.B) {
	ppi, _ := fixtures()
	d := core.Decompose(ppi)
	vals := plot.FromDecomposition(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plot.Density(ppi, vals)
	}
}

func BenchmarkTemplateBridge_PPI(b *testing.B) {
	study := dataset.PPIStudy()
	spec := template.Bridge(template.InterComplex(study.Complex))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		template.Detect(study.G, spec)
	}
}

func BenchmarkVertexKCore_PPI(b *testing.B) {
	ppi, _ := fixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kcore.Decompose(ppi)
	}
}

func BenchmarkMaximalCliques_Stocks(b *testing.B) {
	d, _ := dataset.ByName("Stocks")
	g := d.Graph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		clique.ForEachMaximal(g, func([]graph.Vertex) bool { n++; return true })
	}
}

func BenchmarkTriangleCount_PPI(b *testing.B) {
	ppi, _ := fixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.TriangleCount(ppi)
	}
}

// --- Ablations (DESIGN.md §5) --------------------------------------------

// BenchmarkAblation_BucketVsResort contrasts the O(1) bucket queue of
// Algorithm 1 against re-sorting the edge list whenever bounds change
// (what "sort them in increasing order of κ̃" would cost without the
// bucket-sort optimization the paper notes in step 7). The bucket variant
// is the shipped implementation; the resort variant simulates peeling
// with a naive priority recomputation.
func BenchmarkAblation_PeelBucketQueue(b *testing.B) {
	ppi, _ := fixtures()
	s := graph.FreezeStatic(ppi)
	support := core.ComputeSupport(s, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := bucket.New(support)
		for {
			if _, _, ok := q.PopMin(); !ok {
				break
			}
		}
	}
}

func BenchmarkAblation_PeelLinearScan(b *testing.B) {
	ppi, _ := fixtures()
	s := graph.FreezeStatic(ppi)
	support := core.ComputeSupport(s, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals := append([]int32(nil), support...)
		popped := make([]bool, len(vals))
		for n := 0; n < len(vals); n++ {
			best, bestV := -1, int32(1<<30)
			for j, v := range vals {
				if !popped[j] && v < bestV {
					best, bestV = j, v
				}
			}
			popped[best] = true
		}
	}
}

// BenchmarkAblation_ParallelSupport measures the effect of the worker
// pool in the support computation (on a single-core host the difference
// is noise; on multi-core hosts it shows the fan-out win).
func BenchmarkAblation_SupportSerial(b *testing.B) {
	_, astro := fixtures()
	s := graph.FreezeStatic(astro)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ComputeSupport(s, 1)
	}
}

func BenchmarkAblation_SupportParallel(b *testing.B) {
	_, astro := fixtures()
	s := graph.FreezeStatic(astro)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ComputeSupport(s, 0)
	}
}

// BenchmarkAblation_UpdateVsRecompute_Astro contrasts one incremental
// edge toggle against one full peel at Astro-Author scale — the
// per-operation version of Table III.
func BenchmarkAblation_IncrementalToggle_Astro(b *testing.B) {
	_, astro := fixtures()
	en := dynamic.NewEngine(astro)
	verts := astro.Vertices()
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := verts[rng.Intn(len(verts))]
		v := verts[rng.Intn(len(verts))]
		if u == v || en.HasEdge(u, v) {
			continue
		}
		en.InsertEdge(u, v)
		en.DeleteEdge(u, v)
	}
}

// BenchmarkEngineChurn measures a full 1% churn round on the Astro
// fixture — delete 1%/2 existing edges, insert 1%/2 fresh ones, then
// apply the inverse ops so every iteration starts from the same graph —
// through the per-edge entry points versus one ApplyBatch per direction.
func BenchmarkEngineChurn(b *testing.B) {
	_, astro := fixtures()
	rng := rand.New(rand.NewSource(9))
	changed := astro.NumEdges() / 100
	changed -= changed % 2
	half := changed / 2

	edges := astro.Edges()
	perm := rng.Perm(len(edges))
	dels := make([]graph.Edge, half)
	for i := range dels {
		dels[i] = edges[perm[i]]
	}
	verts := astro.Vertices()
	seen := map[graph.Edge]bool{}
	var adds []graph.Edge
	for len(adds) < half {
		u := verts[rng.Intn(len(verts))]
		v := verts[rng.Intn(len(verts))]
		if u == v {
			continue
		}
		e := graph.NewEdge(u, v)
		if astro.HasEdgeE(e) || seen[e] {
			continue
		}
		seen[e] = true
		adds = append(adds, e)
	}
	fwd := make([]dynamic.EdgeOp, 0, changed)
	inv := make([]dynamic.EdgeOp, 0, changed)
	for _, e := range dels {
		fwd = append(fwd, dynamic.EdgeOp{U: e.U, V: e.V, Del: true})
		inv = append(inv, dynamic.EdgeOp{U: e.U, V: e.V})
	}
	for _, e := range adds {
		fwd = append(fwd, dynamic.EdgeOp{U: e.U, V: e.V})
		inv = append(inv, dynamic.EdgeOp{U: e.U, V: e.V, Del: true})
	}

	b.Run("PerEdge", func(b *testing.B) {
		en := dynamic.NewEngine(astro)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, ops := range [2][]dynamic.EdgeOp{fwd, inv} {
				for _, op := range ops {
					if op.Del {
						en.DeleteEdge(op.U, op.V)
					} else {
						en.InsertEdge(op.U, op.V)
					}
				}
			}
		}
	})
	b.Run("Batched", func(b *testing.B) {
		en := dynamic.NewEngine(astro)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			en.ApplyBatch(fwd)
			en.ApplyBatch(inv)
		}
	})
	// The parallel sub-benches drive the same churn through the
	// epoch-coordinated apply path. Workers=1 delegates to ApplyBatch and
	// bounds the dispatch overhead of the entry point; Workers=4 measures
	// the region fan-out (on a single-core host the win is bounded by
	// GOMAXPROCS — read the numbers alongside the recorded host shape).
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("Parallel%d", workers), func(b *testing.B) {
			en := dynamic.NewEngine(astro)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				en.ApplyBatchParallel(fwd, workers)
				en.ApplyBatchParallel(inv, workers)
			}
		})
	}
}

// --- CSR kernel benchmarks (ISSUE 1) --------------------------------------

var (
	plOnce  sync.Once
	plGraph *graph.Graph // ~100k-edge Holme–Kim power-law graph
)

// powerLawFixture returns a deterministic power-law cluster graph of about
// 100k edges, the scale at which the CSR layout's constant-factor win over
// map-based adjacency becomes visible.
func powerLawFixture() *graph.Graph {
	plOnce.Do(func() { plGraph = gen.PowerLawCluster(10_050, 10, 0.5, 42) })
	return plGraph
}

func BenchmarkFreezeStatic(b *testing.B) {
	g := powerLawFixture()
	b.Logf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.FreezeStatic(g)
	}
}

func BenchmarkDecomposeStatic(b *testing.B) {
	g := powerLawFixture()
	s := graph.FreezeStatic(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DecomposeStatic(s, core.Options{})
	}
}

// BenchmarkTriangleCountStatic exercises the Support/TriangleCount path on
// the frozen view (the κ̃ initialization cost of Algorithm 1 without the
// worker pool).
func BenchmarkTriangleCountStatic(b *testing.B) {
	g := powerLawFixture()
	s := graph.FreezeStatic(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TriangleCount()
	}
}

// --- Out-of-core decomposition (ISSUE 9) ----------------------------------

// BenchmarkDecomposeExternal peels the Astro fixture through the
// partitioned out-of-core path at the CI budget (256 KiB, which planned
// 4 partitions at authoring time) and unbounded (the resident arm,
// bounding the EdgeView indirection against BenchmarkDecompose_Astro20pct).
func BenchmarkDecomposeExternal(b *testing.B) {
	_, astro := fixtures()
	s := graph.FreezeStatic(astro)
	for _, bc := range []struct {
		name   string
		budget int64
	}{
		{"Budget256KiB", 256 << 10},
		{"Unbounded", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := extcore.Decompose(s, extcore.Options{MemBudget: bc.budget, TempDir: b.TempDir()})
				if err != nil {
					b.Fatal(err)
				}
				if bc.budget > 0 && !res.Stats.External {
					b.Fatal("budget did not trigger the external path")
				}
			}
		})
	}
}

// --- Server mixed workload (ISSUE 4) --------------------------------------

// BenchmarkServerMixedWorkload drives the HTTP analytics service with the
// read-dominated traffic mix the ROADMAP targets: 95% GET requests spread
// over /stats, /kappa, /histogram, /plot.txt and /plot.svg, and 5%
// POST /edges batches that toggle a small clique on and off. Requests run
// through the real handler (no network) from parallel goroutines, so the
// number measures the serving layer itself: snapshot acquisition, derived
// artifact reuse and writer interference.
//
// The Uninstrumented variant is the historical baseline (no registry, no
// middleware); Instrumented runs the identical workload with full metrics
// wiring, bounding observability overhead on the serving path; Traced adds
// the flight recorder on top, bounding per-request span capture as well —
// the tracing budget is ≤5% over the instrumented number.
func BenchmarkServerMixedWorkload(b *testing.B) {
	b.Run("Uninstrumented", func(b *testing.B) {
		benchServerMixed(b, server.Options{})
	})
	b.Run("Instrumented", func(b *testing.B) {
		benchServerMixed(b, server.Options{Registry: obs.NewRegistry()})
	})
	b.Run("Traced", func(b *testing.B) {
		benchServerMixed(b, server.Options{
			Registry: obs.NewRegistry(),
			Trace:    trace.New(trace.Options{Ring: trace.DefaultRing}),
		})
	})
}

func benchServerMixed(b *testing.B, opts server.Options) {
	g := gen.PowerLawCluster(2_000, 8, 0.5, 13)
	h := server.NewWith(g, opts).Handler()
	probe := g.Edges()[0]
	reads := []string{
		"/stats",
		fmt.Sprintf("/kappa?u=%d&v=%d", probe.U, probe.V),
		"/histogram",
		"/plot.txt",
		"/plot.svg",
	}
	// The write mix toggles a 5-clique among fresh vertex ids; ApplyBatch
	// tolerates redundant adds/removes, so interleaving is harmless.
	var members []graph.Vertex
	for v := graph.Vertex(5_000); v < 5_005; v++ {
		members = append(members, v)
	}
	var pairs [][2]graph.Vertex
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			pairs = append(pairs, [2]graph.Vertex{members[i], members[j]})
		}
	}
	addBody, _ := json.Marshal(server.EdgesRequest{Add: pairs})
	delBody, _ := json.Marshal(server.EdgesRequest{Remove: pairs})

	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			if i%20 == 0 { // 5% writes, alternating add/remove batches
				body := addBody
				if i%40 == 0 {
					body = delBody
				}
				req := httptest.NewRequest(http.MethodPost, "/edges", bytes.NewReader(body))
				h.ServeHTTP(httptest.NewRecorder(), req)
				continue
			}
			req := httptest.NewRequest(http.MethodGet, reads[i%int64(len(reads))], nil)
			h.ServeHTTP(httptest.NewRecorder(), req)
		}
	})
}

// --- Facade sanity benchmark ----------------------------------------------

func BenchmarkFacadeDecomposePlot(b *testing.B) {
	ppi, _ := fixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := trikcore.Decompose(ppi)
		trikcore.DensityPlot(ppi, d)
	}
}

// --- Benchmarks for the extension subsystems ------------------------------

func BenchmarkTrackedEngineToggle_PPI(b *testing.B) {
	ppi, _ := fixtures()
	te := dynamic.NewTrackedEngine(ppi)
	verts := ppi.Vertices()
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := verts[rng.Intn(len(verts))]
		v := verts[rng.Intn(len(verts))]
		if u == v || te.HasEdge(u, v) {
			continue
		}
		te.InsertEdge(u, v)
		te.DeleteEdge(u, v)
	}
}

func BenchmarkBinaryWrite_PPI(b *testing.B) {
	ppi, _ := fixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graph.WriteBinary(io.Discard, ppi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryRoundTrip_PPI(b *testing.B) {
	ppi, _ := fixtures()
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, ppi); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEventDetection_Wiki(b *testing.B) {
	pair := gen.WikiSnapshots(2000, 11000, 100, 77)
	oldC := events.CommunitiesAt(pair.Snap1, 3)
	newC := events.CommunitiesAt(pair.Snap2, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events.Detect(oldC, newC, events.Options{})
	}
}

func BenchmarkDualViewBuild_Wiki(b *testing.B) {
	pair := gen.WikiSnapshots(2000, 11000, 100, 78)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plot.BuildDualView(pair.Snap1, pair.Snap2, plot.DualViewOptions{})
	}
}

func BenchmarkHierarchy_PPI(b *testing.B) {
	ppi, _ := fixtures()
	d := core.Decompose(ppi)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Hierarchy()
	}
}
