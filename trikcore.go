// Package trikcore is a Go implementation of Triangle K-Core motifs for
// probing, analyzing and visualizing clique-like structure in static and
// dynamic graphs, reproducing:
//
//	Yang Zhang, Srinivasan Parthasarathy.
//	"Extracting, Analyzing and Visualizing Triangle K-Core Motifs within
//	Networks." ICDE 2012.
//
// A Triangle K-Core is a subgraph in which every edge participates in at
// least k triangles of the subgraph; the maximum Triangle K-Core number
// κ(e) of an edge is a cheap, exact proxy for the size of the largest
// clique the edge participates in (co_clique_size ≈ κ+2). This package is
// the public facade over the implementation packages:
//
//   - Decompose computes κ(e) for every edge in O(|triangles|)
//     (Algorithm 1 of the paper).
//   - NewEngine maintains κ(e) incrementally under edge insertions and
//     deletions (Algorithm 2 / Algorithms 5–7).
//   - DensityPlot and BuildDualView render CSV-style clique-distribution
//     plots and dynamic dual-view plots (Algorithm 3).
//   - DetectTemplate finds user-defined template pattern cliques — New
//     Form, Bridge, New Join, or custom specs (Algorithm 4).
//   - NewPublisher wraps an engine in a versioned snapshot publisher:
//     one writer, immutable published Snapshots, lock-free readers with
//     per-version memoized plots and communities (the HTTP service's
//     concurrency model).
//   - VertexKCore, MaximalCliques, CSVCoCliqueSizes, TriDN and BiTriDN
//     expose the substrate and baseline algorithms the paper compares
//     against.
//
// See the examples directory for runnable walkthroughs and cmd/experiments
// for the reproduction of every table and figure of the paper.
package trikcore

import (
	"io"

	"trikcore/internal/clique"
	"trikcore/internal/core"
	"trikcore/internal/csvbaseline"
	"trikcore/internal/dataset"
	"trikcore/internal/dngraph"
	"trikcore/internal/dynamic"
	"trikcore/internal/events"
	"trikcore/internal/extcore"
	"trikcore/internal/graph"
	"trikcore/internal/kcore"
	"trikcore/internal/obs"
	"trikcore/internal/plot"
	"trikcore/internal/registry"
	"trikcore/internal/template"
	"trikcore/internal/view"
)

// Core graph types.
type (
	// Graph is a mutable undirected simple graph.
	Graph = graph.Graph
	// Vertex identifies a graph vertex.
	Vertex = graph.Vertex
	// Edge is an undirected edge in canonical (U < V) form.
	Edge = graph.Edge
	// Triangle is an unordered vertex triple in canonical form.
	Triangle = graph.Triangle
	// Diff describes the edit between two graph snapshots.
	Diff = graph.Diff
)

// Algorithm result types.
type (
	// Decomposition holds κ(e) for every edge of a decomposed graph.
	Decomposition = core.Decomposition
	// Engine maintains κ(e) incrementally under edge updates.
	Engine = dynamic.Engine
	// EdgeOp is one edge insertion or deletion for Engine.ApplyBatch.
	EdgeOp = dynamic.EdgeOp
	// EngineStats aggregates the work counters of an Engine.
	EngineStats = dynamic.Stats
	// Series is a density plot: vertices in traversal order with heights.
	Series = plot.Series
	// Peak is a flat plateau of a density plot (a potential clique).
	Peak = plot.Peak
	// EdgeValues assigns plotted co-clique sizes to edges.
	EdgeValues = plot.EdgeValues
	// DualView pairs two density plots with correspondence markers.
	DualView = plot.DualView
	// DualViewOptions configure BuildDualView.
	DualViewOptions = plot.DualViewOptions
	// PlotComparison quantifies the similarity of two density plots.
	PlotComparison = plot.Comparison
	// TemplateSpec defines a template clique pattern (Algorithm 4).
	TemplateSpec = template.Spec
	// TemplateResult is the output of DetectTemplate.
	TemplateResult = template.Result
	// Novelty classifies edges/vertices as new vs original for the
	// built-in template patterns.
	Novelty = template.Novelty
	// HierarchyNode is a community in the nested Triangle K-Core
	// hierarchy (Decomposition.Hierarchy).
	HierarchyNode = core.HierarchyNode
	// KCoreDecomposition holds vertex K-Core numbers (Definition 1–2).
	KCoreDecomposition = kcore.Decomposition
	// DNGraphResult holds converged valid λ̄ values from TriDN/BiTriDN.
	DNGraphResult = dngraph.Result
)

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// NewEdge returns the canonical undirected edge {u, v}.
func NewEdge(u, v Vertex) Edge { return graph.NewEdge(u, v) }

// NewTriangle returns the canonical triangle {a, b, c}.
func NewTriangle(a, b, c Vertex) Triangle { return graph.NewTriangle(a, b, c) }

// FromEdges builds a graph from a list of edges.
func FromEdges(edges []Edge) *Graph { return graph.FromEdges(edges) }

// ReadEdgeList parses a whitespace-separated edge list.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList writes g as a sorted edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// LoadEdgeListFile reads an edge list from a file.
func LoadEdgeListFile(path string) (*Graph, error) { return graph.LoadEdgeListFile(path) }

// SaveEdgeListFile writes g to a file as a sorted edge list.
func SaveEdgeListFile(path string, g *Graph) error { return graph.SaveEdgeListFile(path, g) }

// WriteBinary writes g in the compact binary snapshot format (delta-coded
// sorted edge list; typically an order of magnitude smaller than text).
func WriteBinary(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// ReadBinary parses a binary snapshot written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// SaveBinaryFile writes g to a file in binary snapshot format.
func SaveBinaryFile(path string, g *Graph) error { return graph.SaveBinaryFile(path, g) }

// LoadBinaryFile reads a binary snapshot file.
func LoadBinaryFile(path string) (*Graph, error) { return graph.LoadBinaryFile(path) }

// DiffGraphs computes the edit from old to new.
func DiffGraphs(old, new *Graph) Diff { return graph.DiffGraphs(old, new) }

// TriangleCount returns the number of triangles in g.
func TriangleCount(g *Graph) int64 { return graph.TriangleCount(g) }

// Decompose computes the maximum Triangle K-Core number κ(e) of every
// edge of g (Algorithm 1). It runs in time linear in the number of
// triangles of the graph.
func Decompose(g *Graph) *Decomposition { return core.Decompose(g) }

// NewEngine builds an incremental maintenance engine over a copy of g,
// with κ initialized by Algorithm 1. Subsequent InsertEdge and DeleteEdge
// calls keep κ exact (Algorithm 2); ApplyBatch applies a whole []EdgeOp
// slice at once, deduplicating repeated edges and reusing traversal
// scratch across operations.
func NewEngine(g *Graph) *Engine { return dynamic.NewEngine(g) }

// DensityPlot renders the clique-distribution plot of g from a Triangle
// K-Core decomposition, plotting each vertex at κ+2 of one of its edges
// (Algorithm 3, steps 1–3).
func DensityPlot(g *Graph, d *Decomposition) Series {
	return plot.Density(g, plot.FromDecomposition(d))
}

// DensityPlotValues renders the clique-distribution plot of g under an
// explicit per-edge value assignment.
func DensityPlotValues(g *Graph, vals EdgeValues) Series { return plot.Density(g, vals) }

// ComparePlots quantifies per-vertex height agreement of two plots.
func ComparePlots(a, b Series) PlotComparison { return plot.Compare(a, b) }

// RenderASCII draws a density plot as text.
func RenderASCII(s Series, width, height int) string { return plot.RenderASCII(s, width, height) }

// RenderSVG draws a density plot as an SVG document.
func RenderSVG(s Series, opts plot.SVGOptions) string { return plot.RenderSVG(s, opts) }

// SVGOptions configure RenderSVG.
type SVGOptions = plot.SVGOptions

// BuildDualView runs Algorithm 3 over two snapshots, producing the
// before/after plots and correspondence markers of the paper's dynamic
// case studies.
func BuildDualView(old, new *Graph, opts DualViewOptions) DualView {
	return plot.BuildDualView(old, new, opts)
}

// DetectTemplate runs Algorithm 4 on g with the given pattern spec.
func DetectTemplate(g *Graph, spec TemplateSpec) *TemplateResult {
	return template.Detect(g, spec)
}

// EvolvingNovelty classifies edges/vertices as new when absent from old.
func EvolvingNovelty(old, new *Graph) Novelty { return template.Evolving(old, new) }

// InterComplexNovelty classifies an edge as new when its endpoints carry
// different labels (the static attribute variant of Section VII-F).
func InterComplexNovelty(label map[Vertex]string) Novelty { return template.InterComplex(label) }

// NewFormPattern matches cliques formed entirely by new edges among
// original vertices (Figure 4a).
func NewFormPattern(n Novelty) TemplateSpec { return template.NewForm(n) }

// BridgePattern matches cliques bridging two previously disconnected
// cliques (Figure 4b).
func BridgePattern(n Novelty) TemplateSpec { return template.Bridge(n) }

// NewJoinPattern matches cliques formed by an existing clique plus new
// vertices (Figure 4c).
func NewJoinPattern(n Novelty) TemplateSpec { return template.NewJoin(n) }

// Community-evolution event detection (the event-detection application
// of the paper's introduction, taxonomy after its reference [15]).
type (
	// Community is a dense community of one snapshot.
	Community = events.Community
	// CommunityEvent is one detected transition between snapshots.
	CommunityEvent = events.Event
	// EventType classifies a CommunityEvent.
	EventType = events.Type
	// EventOptions tune the community matcher.
	EventOptions = events.Options
)

// Event type constants re-exported for callers of DetectEvents.
const (
	EventContinue = events.Continue
	EventGrow     = events.Grow
	EventShrink   = events.Shrink
	EventMerge    = events.Merge
	EventSplit    = events.Split
	EventForm     = events.Form
	EventDissolve = events.Dissolve
)

// DetectEvents extracts the level-k Triangle K-Core communities of two
// snapshots and classifies how each evolved: continue, grow, shrink,
// merge, split, form or dissolve.
func DetectEvents(old, new *Graph, k int32, opts EventOptions) ([]Community, []Community, []CommunityEvent) {
	return events.FromSnapshots(old, new, k, opts)
}

// Timeline tracks communities across a whole snapshot stream with stable
// identifiers; feed snapshots with Observe.
type Timeline = events.Timeline

// NewTimeline starts a community timeline at level k.
func NewTimeline(k int32) *Timeline { return events.NewTimeline(k) }

// Versioned snapshot publication (the serving layer's concurrency
// model): a Publisher funnels mutations through one writer and publishes
// immutable Snapshots through an atomic pointer, so any number of
// readers run lock-free on a consistent frozen view while updates
// proceed.
type (
	// Publisher owns a dynamic engine and publishes versioned snapshots.
	Publisher = view.Publisher
	// Snapshot is one immutable published version: a frozen CSR view,
	// its κ values, and memoized derived artifacts (density series,
	// plots, communities) computed at most once per version.
	Snapshot = view.Snapshot
)

// NewPublisher builds a snapshot publisher over a copy of g and
// publishes the initial version.
func NewPublisher(g *Graph) *Publisher { return view.NewPublisherFromGraph(g) }

// NewPublisherFromEngine wraps an existing engine. The caller must stop
// mutating the engine directly; all further updates go through the
// publisher.
func NewPublisherFromEngine(en *Engine) *Publisher { return view.NewPublisher(en) }

// Multi-tenant graph hosting: a GraphRegistry maps names to GraphSpaces,
// each one an independent Publisher with per-graph quotas, a bookmark
// slot and a change feed that turns every publication into κ
// promotion/demotion and template-pattern events.
type (
	// GraphRegistry is the concurrency-safe name → GraphSpace map with
	// lifecycle (Create/Get/List/Delete), a global graph-count cap and
	// per-graph quotas.
	GraphRegistry = registry.Registry
	// GraphSpace is one hosted graph: publisher, quotas, bookmark, feed.
	GraphSpace = registry.Space
	// GraphQuotas bound one graph space (zero fields = unlimited).
	GraphQuotas = registry.Quotas
	// GraphRegistryConfig parameterizes NewGraphRegistry.
	GraphRegistryConfig = registry.Config
	// GraphQuotaError reports a write batch rejected by quota.
	GraphQuotaError = registry.QuotaError
	// ChangeFeed is a space's event hub: bounded replay ring plus live
	// subscribers with monotone event ids.
	ChangeFeed = registry.Feed
	// ChangeEvent is one rendered feed entry (id, kind, JSON payload).
	ChangeEvent = registry.Event
)

// DefaultGraphName is the space the server's legacy unprefixed HTTP
// routes alias.
const DefaultGraphName = registry.DefaultGraph

// NewGraphRegistry builds an empty graph registry.
func NewGraphRegistry(cfg GraphRegistryConfig) *GraphRegistry { return registry.New(cfg) }

// MetricsRegistry is the zero-dependency observability registry shared
// across layers: atomic counters, gauges and histograms with Prometheus
// text-format exposition (Gather / WritePrometheus). Wire one registry
// into Engine.Instrument and Publisher.Instrument — registration is
// idempotent, so every layer can register against the same instance —
// and serve its Gather output on a /metrics endpoint.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NopMetricsRegistry returns the disabled registry: every metric handle
// it hands out is a no-op costing one branch per event, so instrumented
// code runs untouched when observability is off.
func NopMetricsRegistry() *MetricsRegistry { return obs.Nop() }

// TrackedEngine is an Engine that also maintains the paper's explicit
// per-edge core membership (AddToCore/DelFromCore bookkeeping).
type TrackedEngine = dynamic.TrackedEngine

// NewTrackedEngine builds an incremental engine with explicit core
// membership maintained across updates.
func NewTrackedEngine(g *Graph) *TrackedEngine { return dynamic.NewTrackedEngine(g) }

// VertexKCore computes classic vertex K-Core numbers (Batagelj–Zaveršnik),
// the paper's Definitions 1–2 baseline.
func VertexKCore(g *Graph) *KCoreDecomposition { return kcore.Decompose(g) }

// MaximalCliques enumerates all maximal cliques of g (Bron–Kerbosch with
// pivoting over a degeneracy order).
func MaximalCliques(g *Graph) [][]Vertex { return clique.Maximal(g) }

// MaxClique returns one maximum clique of g.
func MaxClique(g *Graph) []Vertex { return clique.Max(g) }

// CSVCoCliqueSizes computes the exact co-clique size of every edge — the
// expensive per-edge maximum-clique step of the CSV baseline the Triangle
// K-Core replaces.
func CSVCoCliqueSizes(g *Graph) map[Edge]int { return csvbaseline.CoCliqueSizes(g) }

// TriDN computes the DN-Graph baseline's valid λ̄(e) by iterative
// refinement; by the paper's Claim 3 the converged values equal κ(e).
func TriDN(g *Graph) *DNGraphResult { return dngraph.TriDN(g, dngraph.Options{}) }

// BiTriDN is TriDN with a binary-search inner step.
func BiTriDN(g *Graph) *DNGraphResult { return dngraph.BiTriDN(g, dngraph.Options{}) }

// DissolvedPattern matches cliques of the old snapshot whose edges all
// vanished — run DetectTemplate over the OLD graph with the snapshots
// swapped in EvolvingNovelty: DetectTemplate(old, DissolvedPattern(EvolvingNovelty(new, old))).
func DissolvedPattern(reversed Novelty) TemplateSpec { return template.Dissolved(reversed) }

// Out-of-core decomposition over the mmap-friendly on-disk CSR (the
// TKCG v2 mapped layout): convert an edge list to a .tkcg file with
// ConvertEdgeListToCSR, open it as a zero-copy frozen view with
// OpenMapped, and decompose it under a memory budget with
// DecomposeExternal.
type (
	// StaticGraph is an immutable flat CSR view of a graph — what
	// FreezeGraph returns and what a mapped .tkcg file serves.
	StaticGraph = graph.Static
	// MappedGraph is a read-only StaticGraph backed by an mmap'd TKCG
	// v2 file: the flat arrays alias the page cache instead of the heap.
	// Close unmaps them.
	MappedGraph = graph.Mapped
	// CSRBuildStats reports what ConvertEdgeListToCSR wrote.
	CSRBuildStats = graph.MappedBuildStats
	// ExternalOptions configure DecomposeExternal (memory budget, temp
	// directory, metrics registry).
	ExternalOptions = extcore.Options
	// ExternalResult holds κ per dense edge id plus run statistics.
	ExternalResult = extcore.Result
	// ExternalStats reports how an out-of-core decomposition ran:
	// partitions, sweeps, spill volume, peak resident bytes.
	ExternalStats = extcore.Stats
)

// ErrCorruptGraphFile reports a TKCG file whose bytes fail an integrity
// check (CRC mismatch, truncation, inconsistent section table). Test
// with errors.Is on any load or open error.
var ErrCorruptGraphFile = graph.ErrCorrupt

// FreezeGraph builds the immutable flat CSR view of g that the bulk
// algorithms and the mapped serializer consume.
func FreezeGraph(g *Graph) *StaticGraph { return graph.FreezeStatic(g) }

// ConvertEdgeListToCSR streams the edge-list file at inPath into a TKCG
// v2 mapped CSR at outPath in two passes, without materializing the
// edge set in memory — inputs larger than RAM convert in O(|V|)
// resident space. The output is byte-identical to serializing
// FreezeGraph of the parsed graph.
func ConvertEdgeListToCSR(inPath, outPath string) (CSRBuildStats, error) {
	return graph.BuildMappedFile(inPath, outPath)
}

// SaveCSRFile writes an in-memory frozen view to path in the TKCG v2
// mapped layout.
func SaveCSRFile(path string, s *StaticGraph) error { return graph.WriteMapped(path, s) }

// OpenMapped maps a TKCG v2 CSR file as a read-only frozen view without
// parsing: the adjacency arrays are served straight off the page cache.
// The file is CRC-verified and structurally validated on open.
func OpenMapped(path string) (*MappedGraph, error) { return graph.OpenMapped(path) }

// DecomposeStatic runs Algorithm 1 on a frozen (or mapped) view.
func DecomposeStatic(s *StaticGraph) *Decomposition {
	return core.DecomposeStatic(s, core.Options{})
}

// DecomposeExternal computes κ(e) for every edge of s — typically a
// mapped view — holding at most opts.MemBudget bytes of peel state
// resident: the decomposition proceeds bottom-up over vertex-range
// partitions, spilling cross-partition support updates to temp files.
// The κ values are identical to Decompose's.
func DecomposeExternal(s *StaticGraph, opts ExternalOptions) (*ExternalResult, error) {
	return extcore.Decompose(s, opts)
}

// Dataset is one of the paper's Table I datasets, realized by a
// deterministic generator at a configurable scale.
type Dataset = dataset.Dataset

// Datasets lists the paper's Table I stand-ins.
func Datasets() []*Dataset { return dataset.All() }

// DatasetByName looks a Table I stand-in up by its paper name.
func DatasetByName(name string) (*Dataset, bool) { return dataset.ByName(name) }
