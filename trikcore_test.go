package trikcore_test

import (
	"strings"
	"testing"

	"trikcore"
)

// TestFacadeEndToEnd drives the full public API surface on one small
// scenario: build, decompose, plot, update, template-detect.
func TestFacadeEndToEnd(t *testing.T) {
	// Old snapshot: a 5-clique community plus a path.
	old := trikcore.NewGraph()
	cliqueVerts := []trikcore.Vertex{1, 2, 3, 4, 5}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			old.AddEdge(cliqueVerts[i], cliqueVerts[j])
		}
	}
	old.AddEdge(10, 11)
	old.AddEdge(11, 12)

	d := trikcore.Decompose(old)
	if k, ok := d.KappaOf(trikcore.NewEdge(1, 2)); !ok || k != 3 {
		t.Fatalf("κ(1-2) = %d (ok=%v), want 3", k, ok)
	}
	if k, _ := d.KappaOf(trikcore.NewEdge(10, 11)); k != 0 {
		t.Fatal("path edge should have κ=0")
	}

	series := trikcore.DensityPlot(old, d)
	if series.MaxHeight() != 5 {
		t.Fatalf("plot max height %d, want 5", series.MaxHeight())
	}
	if !strings.Contains(trikcore.RenderASCII(series, 40, 8), "#") {
		t.Fatal("ASCII render empty")
	}
	if !strings.Contains(trikcore.RenderSVG(series, trikcore.SVGOptions{}), "<svg") {
		t.Fatal("SVG render empty")
	}

	// Dynamic maintenance: vertex 6 joins the clique.
	en := trikcore.NewEngine(old)
	for _, v := range cliqueVerts {
		en.InsertEdge(6, v)
	}
	if k, _ := en.Kappa(trikcore.NewEdge(1, 2)); k != 4 {
		t.Fatalf("after join κ(1-2) = %d, want 4", k)
	}
	en.DeleteEdge(6, 1)
	if k, _ := en.Kappa(trikcore.NewEdge(6, 2)); k != 3 {
		t.Fatalf("after unjoin κ(6-2) = %d, want 3", k)
	}

	// Template detection: the join is a New Join clique.
	new := en.Graph().Clone()
	nov := trikcore.EvolvingNovelty(old, new)
	res := trikcore.DetectTemplate(new, trikcore.NewJoinPattern(nov))
	if len(res.Characteristic) == 0 {
		t.Fatal("no new-join characteristic triangles")
	}

	// Baselines agree with κ.
	dn := trikcore.TriDN(new)
	d2 := trikcore.Decompose(new)
	for e, l := range dn.EdgeLambdas() {
		k, _ := d2.KappaOf(e)
		if int(k) != l {
			t.Fatalf("TriDN λ̄(%v)=%d, κ=%d", e, l, k)
		}
	}
	if got := trikcore.BiTriDN(new).EdgeLambdas(); len(got) != new.NumEdges() {
		t.Fatal("BiTriDN incomplete")
	}

	// CSV co-clique sizes are bounded by κ+2.
	for e, cs := range trikcore.CSVCoCliqueSizes(new) {
		k, _ := d2.KappaOf(e)
		if cs > int(k)+2 {
			t.Fatalf("co_clique_size(%v)=%d exceeds κ+2=%d", e, cs, k+2)
		}
	}

	// Substrate: vertex k-core and cliques.
	if trikcore.VertexKCore(old).MaxCore != 4 {
		t.Fatal("vertex k-core of K5 should be 4")
	}
	if got := trikcore.MaxClique(old); len(got) != 5 {
		t.Fatalf("max clique %v, want the 5-clique", got)
	}
	if len(trikcore.MaximalCliques(old)) == 0 {
		t.Fatal("no maximal cliques")
	}
	if trikcore.TriangleCount(old) != 10 {
		t.Fatalf("triangle count %d, want 10", trikcore.TriangleCount(old))
	}
}

func TestFacadeIO(t *testing.T) {
	g, err := trikcore.ReadEdgeList(strings.NewReader("1 2\n2 3\n3 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := trikcore.WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "1 2\n1 3\n2 3\n" {
		t.Fatalf("round trip = %q", sb.String())
	}
	d := trikcore.DiffGraphs(g, trikcore.FromEdges([]trikcore.Edge{trikcore.NewEdge(1, 2)}))
	if len(d.RemovedEdges) != 2 {
		t.Fatalf("diff = %+v", d)
	}
}

func TestFacadeDualView(t *testing.T) {
	old := trikcore.NewGraph()
	for i := trikcore.Vertex(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			old.AddEdge(i, j)
		}
	}
	for v := trikcore.Vertex(20); v < 40; v++ {
		old.AddEdge(v, v+1)
	}
	new := old.Clone()
	for i := trikcore.Vertex(0); i < 6; i++ {
		new.AddEdge(100, i)
	}
	dv := trikcore.BuildDualView(old, new, trikcore.DualViewOptions{TopK: 1})
	if len(dv.Markers) != 1 || dv.Markers[0].Peak.Height != 7 {
		t.Fatalf("dual view markers = %+v", dv.Markers)
	}
	if dv.Summary() == "" {
		t.Fatal("empty dual view summary")
	}
}

func TestFacadeInterComplex(t *testing.T) {
	g := trikcore.NewGraph()
	for i := trikcore.Vertex(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
		}
	}
	labels := map[trikcore.Vertex]string{0: "a", 1: "b", 2: "b", 3: "b"}
	res := trikcore.DetectTemplate(g, trikcore.BridgePattern(trikcore.InterComplexNovelty(labels)))
	if len(res.Characteristic) != 3 {
		t.Fatalf("%d characteristic triangles, want 3", len(res.Characteristic))
	}
	if res.Series.MaxHeight() != 4 {
		t.Fatalf("bridge plot max height %d, want 4", res.Series.MaxHeight())
	}
}
