// PPI case study: find near-cliques in a protein-interaction network
// (Figure 7) and bridge cliques spanning protein complexes (Figure 12),
// on the synthetic PPI stand-in with known planted structures.
//
//	go run ./examples/ppi
package main

import (
	"fmt"

	"trikcore"
	"trikcore/internal/dataset"
)

func main() {
	study := dataset.PPIStudy()
	g := study.G
	fmt.Printf("PPI stand-in: %d proteins, %d interactions\n\n", g.NumVertices(), g.NumEdges())

	// Figure 7: the density plot's top peaks are the planted structures.
	d := trikcore.Decompose(g)
	series := trikcore.DensityPlot(g, d)
	fmt.Println("top clique-like structures (density plot peaks):")
	for i, pk := range series.TopPeaks(3, 5) {
		exact := ""
		if trikcore.MaxClique(subgraphOf(g, pk.Vertices)) != nil &&
			len(trikcore.MaxClique(subgraphOf(g, pk.Vertices))) == pk.Width() {
			exact = " (an exact clique)"
		}
		fmt.Printf("  peak %d: %d proteins at co_clique_size %d%s\n", i+1, pk.Width(), pk.Height, exact)
	}
	fmt.Printf("\nplanted: a 9-clique, an exact 10-clique, and 10 proteins missing the single\n"+
		"interaction %v — which therefore plot as a 9-clique, exactly as in the paper.\n\n",
		study.MissingEdge)

	// Figure 12: bridge cliques across complexes via the static template
	// variant — an edge is "new" when it connects different complexes.
	res := trikcore.DetectTemplate(g, trikcore.BridgePattern(trikcore.InterComplexNovelty(study.Complex)))
	fmt.Println("bridge cliques across protein complexes:")
	for i, pk := range res.TopCliques(3, 3) {
		complexes := map[string]int{}
		for _, v := range pk.Vertices {
			complexes[study.Complex[v]]++
		}
		fmt.Printf("  bridge %d: %d proteins at co_clique_size %d spanning %v\n",
			i+1, pk.Width(), pk.Height, complexes)
	}
	fmt.Printf("\nplanted bridges 2 and 3 overlap on %d proteins — the paper's indication that\n"+
		"the bridged proteins are closely related in function.\n",
		overlap(study.BridgeCliques[1], study.BridgeCliques[2]))
}

func subgraphOf(g *trikcore.Graph, verts []trikcore.Vertex) *trikcore.Graph {
	sub := trikcore.NewGraph()
	in := map[trikcore.Vertex]bool{}
	for _, v := range verts {
		in[v] = true
		sub.AddVertex(v)
	}
	for _, v := range verts {
		g.ForEachNeighbor(v, func(w trikcore.Vertex) bool {
			if in[w] && v < w {
				sub.AddEdge(v, w)
			}
			return true
		})
	}
	return sub
}

func overlap(a, b []trikcore.Vertex) int {
	in := map[trikcore.Vertex]bool{}
	for _, v := range a {
		in[v] = true
	}
	n := 0
	for _, v := range b {
		if in[v] {
			n++
		}
	}
	return n
}
