// Dual-view plots: visualize how clique-like structures evolve between
// two snapshots of a wiki-style link graph — the paper's Figure 8 case
// study on a synthetic stand-in with planted evolution events.
//
//	go run ./examples/dualview [outdir]
//
// When outdir is given, before/after SVG plots are written there.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"trikcore"
	"trikcore/internal/gen"
)

func main() {
	pair := gen.WikiSnapshots(5000, 28000, 500, 2024)
	fmt.Printf("snapshot 1: %d edges; snapshot 2: %d edges (%d added)\n\n",
		pair.Snap1.NumEdges(), pair.Snap2.NumEdges(),
		pair.Snap2.NumEdges()-pair.Snap1.NumEdges())

	dv := trikcore.BuildDualView(pair.Snap1, pair.Snap2, trikcore.DualViewOptions{TopK: 3, MinWidth: 4})
	fmt.Print(dv.Summary())

	fmt.Println("\nplanted ground truth:")
	fmt.Printf("  growth: page %d joined a 10-clique → 11-clique\n", pair.Growth.Joiner)
	for i, m := range pair.Merges {
		fmt.Printf("  merge %d: 3+3 pages from two cliques formed a %d-clique\n", i+1, len(m.Result))
	}

	fmt.Println("\nchanged-clique plot (snapshot 2, new structures only):")
	fmt.Print(trikcore.RenderASCII(dv.After, 80, 10))

	// Community-evolution events between the snapshots (level-3 cores).
	_, _, evs := trikcore.DetectEvents(pair.Snap1, pair.Snap2, 3, trikcore.EventOptions{})
	counts := map[trikcore.EventType]int{}
	for _, e := range evs {
		counts[e.Type]++
	}
	fmt.Println("\ncommunity events between snapshots:")
	for _, typ := range []trikcore.EventType{
		trikcore.EventContinue, trikcore.EventGrow, trikcore.EventShrink,
		trikcore.EventMerge, trikcore.EventSplit, trikcore.EventForm, trikcore.EventDissolve,
	} {
		if counts[typ] > 0 {
			fmt.Printf("  %-9s %d\n", typ.String()+":", counts[typ])
		}
	}

	if len(os.Args) > 1 {
		dir := os.Args[1]
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		write := func(name, svg string) {
			path := filepath.Join(dir, name)
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
		write("before.svg", trikcore.RenderSVG(dv.Before,
			trikcore.SVGOptions{Title: "snapshot 1 (all cliques)", Markers: dv.BeforeMarkersForSVG()}))
		write("after.svg", trikcore.RenderSVG(dv.After,
			trikcore.SVGOptions{Title: "snapshot 2 (changed cliques)", Markers: dv.MarkersForSVG()}))
	}
}
