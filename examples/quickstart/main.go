// Quickstart: compute Triangle K-Core numbers on a small graph, read off
// the clique-like structure, and draw the density plot.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sort"

	"trikcore"
)

func main() {
	// Build the paper's Figure 2 example graph: vertices A..E as 1..5.
	g := trikcore.NewGraph()
	for _, e := range [][2]trikcore.Vertex{
		{1, 2}, {1, 3}, // A-B, A-C
		{2, 3},         // B-C
		{2, 4}, {2, 5}, // B-D, B-E
		{3, 4}, {3, 5}, {4, 5}, // C-D, C-E, D-E
	} {
		g.AddEdge(e[0], e[1])
	}

	// Algorithm 1: κ(e) for every edge.
	d := trikcore.Decompose(g)
	fmt.Println("edge κ values (maximum Triangle K-Core numbers):")
	kappas := d.EdgeKappas()
	edges := make([]trikcore.Edge, 0, len(kappas))
	for e := range kappas {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	for _, e := range edges {
		k := kappas[e]
		fmt.Printf("  %-6s κ=%d  (participates in a clique of about %d vertices)\n", e, k, k+2)
	}
	fmt.Printf("max κ: %d → the densest structure is about a %d-clique\n\n", d.MaxKappa, d.MaxKappa+2)

	// The maximum Triangle K-Core around the densest edge.
	core, _ := d.MaxCoreOf(trikcore.NewEdge(4, 5))
	fmt.Printf("maximum Triangle K-Core of edge 4-5: %d vertices, %d edges\n\n",
		core.NumVertices(), core.NumEdges())

	// A CSV-style density plot: plateaus are potential cliques.
	series := trikcore.DensityPlot(g, d)
	fmt.Println("density plot:")
	fmt.Print(trikcore.RenderASCII(series, 60, 8))

	for _, pk := range series.TopPeaks(1, 2) {
		fmt.Printf("top plateau: ~%d-clique over vertices %v\n", pk.Height, pk.Vertices)
	}
}
