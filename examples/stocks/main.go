// Stocks: build a correlation graph from synthetic price histories and
// use Triangle K-Cores to expose the sector blocks — the workload behind
// the Stocks dataset of the paper's Table I.
//
//	go run ./examples/stocks
package main

import (
	"fmt"
	"sort"

	"trikcore"
	"trikcore/internal/gen"
)

func main() {
	const (
		nStocks  = 275
		nSectors = 12
		days     = 250
		edges    = 1680
	)
	// Stocks in the same sector load on a shared factor; the graph keeps
	// the `edges` most-correlated pairs.
	g := gen.Stocks(nStocks, nSectors, days, edges, 2026)
	fmt.Printf("correlation graph: %d stocks, %d strongest pairs\n\n", g.NumVertices(), g.NumEdges())

	d := trikcore.Decompose(g)
	fmt.Printf("max κ: %d → densest correlated block has about %d stocks\n\n", d.MaxKappa, d.MaxKappa+2)

	// Sector blocks appear as triangle-connected communities. Count how
	// pure each dense community is (all stocks share sector = id mod 12).
	k := d.MaxKappa / 2
	comms := d.Communities(k)
	fmt.Printf("communities at k=%d: %d\n", k, len(comms))
	type summary struct {
		size   int
		purity float64
		sector int
	}
	var sums []summary
	for _, edgesOf := range comms {
		seen := map[trikcore.Vertex]bool{}
		perSector := map[int]int{}
		for _, e := range edgesOf {
			for _, v := range [2]trikcore.Vertex{e.U, e.V} {
				if !seen[v] {
					seen[v] = true
					perSector[int(v)%nSectors]++
				}
			}
		}
		best, bestN := -1, 0
		for s, n := range perSector {
			if n > bestN {
				best, bestN = s, n
			}
		}
		sums = append(sums, summary{
			size:   len(seen),
			purity: float64(bestN) / float64(len(seen)),
			sector: best,
		})
	}
	sort.Slice(sums, func(i, j int) bool { return sums[i].size > sums[j].size })
	for i, s := range sums {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(sums)-8)
			break
		}
		fmt.Printf("  block of %2d stocks: %3.0f%% sector %d\n", s.size, 100*s.purity, s.sector)
	}

	// The density plot shows the sector skyline.
	fmt.Println("\ndensity plot (plateaus = correlated blocks):")
	fmt.Print(trikcore.RenderASCII(trikcore.DensityPlot(g, d), 90, 12))
}
