// Timeline: follow dense communities through a stream of snapshots with
// stable identities — watch one community form, grow, absorb another and
// finally dissolve.
//
//	go run ./examples/timeline
package main

import (
	"fmt"

	"trikcore"
)

func addClique(g *trikcore.Graph, verts ...trikcore.Vertex) {
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			g.AddEdge(verts[i], verts[j])
		}
	}
}

func main() {
	tl := trikcore.NewTimeline(2) // follow Triangle 2-Core communities

	// Snapshot 0: two separate research groups.
	s0 := trikcore.NewGraph()
	addClique(s0, 1, 2, 3, 4)
	addClique(s0, 10, 11, 12, 13, 14)
	tl.Observe(s0, trikcore.EventOptions{})

	// Snapshot 1: the first group recruits three members.
	s1 := s0.Clone()
	addClique(s1, 1, 2, 3, 4, 5, 6, 7)
	tl.Observe(s1, trikcore.EventOptions{})

	// Snapshot 2: the groups merge into one team.
	s2 := s1.Clone()
	for _, u := range []trikcore.Vertex{1, 2, 3, 4, 5, 6, 7} {
		for _, v := range []trikcore.Vertex{10, 11, 12, 13, 14} {
			s2.AddEdge(u, v)
		}
	}
	tl.Observe(s2, trikcore.EventOptions{})

	// Snapshot 3: the collaboration winds down to a rump of three.
	s3 := trikcore.NewGraph()
	addClique(s3, 1, 2, 3)
	tl.Observe(s3, trikcore.EventOptions{})

	fmt.Print(tl.Summary())
	fmt.Println("\ntransitions:")
	for _, step := range tl.Steps {
		for _, e := range step.Events {
			fmt.Printf("  snapshot %d: %v\n", step.Snapshot, e)
		}
	}
}
