// Service: run the Triangle K-Core analytics server over a live graph
// and drive it with HTTP requests — ingest edges, watch κ respond, pull
// the density plot, and use the versioning surface: every read names the
// snapshot version it was served from, and a conditional request at an
// unchanged version is answered 304 with no recomputation.
//
// The second half shows the multi-tenant surface: two named graph spaces
// created under /g/{name}, mutated in isolation, and a Server-Sent
// Events subscription streaming κ promotions and template-pattern
// detections from one of them.
//
// The server is built fully instrumented, so the walkthrough ends on the
// observability surface: GET /healthz reports version, uptime and build
// info, and GET /metrics exposes every layer's metrics in Prometheus
// text format, including per-graph trikcore_graph_* series.
//
//	go run ./examples/service
//
// With -addr the demo instead serves forever on a real listener (add
// -pprof for /debug/pprof/) — the form CI uses to smoke-test the
// endpoints with curl:
//
//	go run ./examples/service -addr :8080 -pprof
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"trikcore"
	"trikcore/internal/gen"
	"trikcore/internal/server"
)

func main() {
	addr := flag.String("addr", "", "serve forever on this address instead of running the demo")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	// Seed the service with a small social graph and instrument every
	// layer against one shared registry.
	g := gen.PowerLawCluster(500, 4, 0.5, 7)
	s := server.NewWith(g, server.Options{
		Registry: trikcore.NewMetricsRegistry(),
		Pprof:    *pprofOn,
	})

	if *addr != "" {
		fmt.Fprintf(os.Stderr, "service listening on %s (metrics on /metrics)\n", *addr)
		must(http.ListenAndServe(*addr, s.Handler()))
		return
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	fmt.Println("service listening on", srv.URL)

	get := func(path string) []byte {
		resp, err := http.Get(srv.URL + path)
		must(err)
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		must(err)
		return body
	}

	fmt.Printf("\n--> GET /healthz\n%s", get("/healthz"))
	fmt.Printf("\n--> GET /stats\n%s", get("/stats"))

	// A new community of six members forms, one edge at a time.
	var payload struct {
		Add [][2]trikcore.Vertex `json:"add"`
	}
	members := []trikcore.Vertex{600, 601, 602, 603, 604, 605}
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			payload.Add = append(payload.Add, [2]trikcore.Vertex{members[i], members[j]})
		}
	}
	body, _ := json.Marshal(payload)
	resp, err := http.Post(srv.URL+"/edges", "application/json", bytes.NewReader(body))
	must(err)
	_, err = io.Copy(io.Discard, resp.Body)
	must(err)
	must(resp.Body.Close())
	fmt.Printf("\n--> POST /edges (%d new links)\n", len(payload.Add))

	fmt.Printf("\n--> GET /kappa?u=600&v=601\n%s", get("/kappa?u=600&v=601"))
	fmt.Printf("\n--> GET /core?u=600&v=601\n%s", get("/core?u=600&v=601"))
	fmt.Printf("\n--> GET /communities?k=4\n%s", get("/communities?k=4"))
	fmt.Printf("\n--> GET /stats (after ingest)\n%s", get("/stats"))

	// Every read is served from an immutable published snapshot and says
	// which one; a conditional re-read at the same version costs nothing.
	fmt.Printf("\n--> GET /version\n%s", get("/version"))
	head, err := http.Get(srv.URL + "/plot.svg")
	must(err)
	_, err = io.Copy(io.Discard, head.Body)
	must(err)
	must(head.Body.Close())
	etag := head.Header.Get("ETag")
	fmt.Printf("\n--> GET /plot.svg\nversion %s, ETag %s\n",
		head.Header.Get("X-Trikcore-Version"), etag)

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/plot.svg", nil)
	must(err)
	req.Header.Set("If-None-Match", etag)
	cond, err := http.DefaultClient.Do(req)
	must(err)
	must(cond.Body.Close())
	fmt.Printf("\n--> GET /plot.svg with If-None-Match: %s\n%s (unchanged version, no re-render)\n",
		etag, cond.Status)

	// Multi-tenant hosting: the server maps names to independent graph
	// spaces under /g/{name} — the unprefixed routes above were aliases
	// for the "default" space all along. Create two more.
	post := func(path, body string) []byte {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		must(err)
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		must(err)
		return out
	}
	fmt.Printf("\n--> POST /g/team-a (seeded)\n%s", post("/g/team-a", `{"add":[[1,2],[2,3],[1,3]]}`))
	fmt.Printf("\n--> POST /g/team-b (empty)\n%s", post("/g/team-b", ""))
	fmt.Printf("\n--> GET /graphs\n%s", get("/graphs"))

	// Subscribe to team-a's change feed, then grow its triangle into a
	// 4-clique: κ promotions and template-pattern detections stream back
	// as Server-Sent Events with monotone ids (resumable after a
	// disconnect via the Last-Event-ID header).
	sseReq, err := http.NewRequest(http.MethodGet, srv.URL+"/g/team-a/subscribe", nil)
	must(err)
	sseResp, err := http.DefaultClient.Do(sseReq)
	must(err)
	br := bufio.NewReader(sseResp.Body)
	for i := 0; i < 2; i++ { // handshake comment + blank line
		_, err = br.ReadString('\n')
		must(err)
	}
	post("/g/team-a/edges", `{"add":[[1,4],[2,4],[3,4]]}`)
	last := teamAFeedLast(s)
	fmt.Printf("\n--> GET /g/team-a/subscribe (events from the POST above)\n")
	var cur uint64
	for {
		line, err := br.ReadString('\n')
		must(err)
		fmt.Print(line)
		if strings.HasPrefix(line, "id: ") {
			_, err = fmt.Sscanf(line, "id: %d", &cur)
			must(err)
		}
		if line == "\n" && cur >= last {
			break
		}
	}
	must(sseResp.Body.Close())

	// Spaces are isolated: team-a's 4-clique never touched team-b.
	fmt.Printf("\n--> GET /g/team-b/stats\n%s", get("/g/team-b/stats"))

	// Everything the service just did is on the metrics surface: request
	// latencies and counts per endpoint, engine promotions and triangle
	// visits from the ingest, publisher memo hits from the repeated
	// reads, and per-graph trikcore_graph_* series for the tenants.
	expo := string(get("/metrics"))
	fmt.Printf("\n--> GET /metrics (%d lines; trikcore_graph_* shown)\n", strings.Count(expo, "\n"))
	for _, line := range strings.Split(expo, "\n") {
		if strings.HasPrefix(line, "trikcore_graph_") && !strings.Contains(line, "_bucket") {
			fmt.Println(line)
		}
	}
}

// teamAFeedLast returns the id of team-a's most recent change-feed
// event, so the demo knows when it has printed the whole burst.
func teamAFeedLast(s *server.Server) uint64 {
	sp, ok := s.Registry().Get("team-a")
	if !ok {
		return 0
	}
	return sp.Feed().LastID()
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
