// Template pattern cliques: probe two snapshots of an evolving
// collaboration network for New Form, Bridge and New Join cliques — the
// paper's DBLP case studies (Figures 9–11) on a synthetic stand-in with
// known planted events.
//
//	go run ./examples/templates
package main

import (
	"fmt"

	"trikcore"
	"trikcore/internal/gen"
)

func main() {
	// Two consecutive "publication years" with three planted events.
	pair := gen.CollabSnapshots(2000, 1200, 99)
	fmt.Printf("year 1: %d authors, %d collaborations\n",
		pair.Old.NumVertices(), pair.Old.NumEdges())
	fmt.Printf("year 2: %d authors, %d collaborations\n\n",
		pair.New.NumVertices(), pair.New.NumEdges())

	nov := trikcore.EvolvingNovelty(pair.Old, pair.New)
	patterns := []struct {
		spec    trikcore.TemplateSpec
		planted []trikcore.Vertex
		story   string
	}{
		{trikcore.NewFormPattern(nov), pair.NewFormClique,
			"authors collaborating together for the first time"},
		{trikcore.BridgePattern(nov), pair.BridgeClique,
			"two previously disconnected groups merging"},
		{trikcore.NewJoinPattern(nov), pair.NewJoinClique,
			"an existing team joined by newcomers"},
	}

	for _, p := range patterns {
		res := trikcore.DetectTemplate(pair.New, p.spec)
		fmt.Printf("pattern %q (%s):\n", res.Spec.Name, p.story)
		fmt.Printf("  characteristic triangles: %d, possible: %d, special edges: %d\n",
			len(res.Characteristic), len(res.Possible), res.Special.NumEdges())
		peaks := res.TopCliques(1, 3)
		if len(peaks) == 0 {
			fmt.Println("  no pattern cliques found")
			continue
		}
		pk := peaks[0]
		fmt.Printf("  densest pattern clique: %d vertices at co_clique_size %d\n",
			pk.Width(), pk.Height)
		hit := 0
		in := map[trikcore.Vertex]bool{}
		for _, v := range pk.Vertices {
			in[v] = true
		}
		for _, v := range p.planted {
			if in[v] {
				hit++
			}
		}
		fmt.Printf("  planted event recovered: %d/%d vertices\n\n", hit, len(p.planted))
	}
}
