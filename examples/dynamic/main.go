// Dynamic maintenance: keep Triangle K-Core numbers exact while a social
// network churns, and compare the incremental engine (Algorithm 2)
// against re-computation from scratch — the Table III experiment in
// miniature.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"math/rand"
	"time"

	"trikcore"
	"trikcore/internal/gen"
)

func main() {
	// A scale-free, triangle-rich network of 3000 vertices.
	g := gen.PowerLawCluster(3000, 6, 0.5, 42)
	fmt.Printf("base graph: %d vertices, %d edges, %d triangles\n",
		g.NumVertices(), g.NumEdges(), trikcore.TriangleCount(g))

	en := trikcore.NewEngine(g)
	rng := rand.New(rand.NewSource(7))

	// Churn: 1% of edges change (half deleted, half inserted).
	churn := g.NumEdges() / 100
	var dels, adds []trikcore.Edge
	edges := g.Edges()
	perm := rng.Perm(len(edges))
	for i := 0; i < churn/2; i++ {
		dels = append(dels, edges[perm[i]])
	}
	for len(adds) < churn/2 {
		u := trikcore.Vertex(rng.Intn(3000))
		v := trikcore.Vertex(rng.Intn(3000))
		if u != v && !g.HasEdge(u, v) {
			adds = append(adds, trikcore.NewEdge(u, v))
		}
	}

	start := time.Now()
	for _, e := range dels {
		en.DeleteEdgeE(e)
	}
	for _, e := range adds {
		en.InsertEdgeE(e)
	}
	updateTime := time.Since(start)

	start = time.Now()
	check := trikcore.Decompose(en.Graph())
	recomputeTime := time.Since(start)

	fmt.Printf("changed %d edges\n", len(dels)+len(adds))
	fmt.Printf("incremental update: %v\n", updateTime)
	fmt.Printf("full re-compute:    %v (%.0fx slower)\n",
		recomputeTime, float64(recomputeTime)/float64(updateTime))

	// The engine's answers are exact: verify against the recompute.
	mismatches := 0
	for e, k := range check.EdgeKappas() {
		if got, _ := en.Kappa(e); int(got) != k {
			mismatches++
		}
	}
	fmt.Printf("κ mismatches vs recompute: %d\n", mismatches)

	st := en.Stats()
	fmt.Printf("engine work: %d triangles processed, %d edges visited, %d promotions, %d demotions\n",
		st.TrianglesProcessed, st.EdgesVisited, st.Promotions, st.Demotions)
}
