GO ?= go

.PHONY: all build test vet race bench fuzz ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-enabled run of the packages with concurrent code paths (parallel
# FreezeStatic build, work-stealing ComputeSupport) plus the full suite.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFreezeStatic$$|BenchmarkDecomposeStatic$$|BenchmarkTriangleCountStatic$$|BenchmarkEngineChurn$$' -benchmem -benchtime 3s .

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzFreezeStatic -fuzztime 30s ./internal/graph

ci: vet build test race
