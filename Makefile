GO ?= go

.PHONY: all build test vet lint race debugrace bench fuzz fuzzchurn fuzzexternal ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Project static analysis: the trikcheck invariant rules (κ-funnel
# discipline, deterministic output, guarded narrowing, no stdout in
# libraries, no discarded errors) over every package. Exits non-zero on
# the first finding.
lint:
	$(GO) run ./cmd/trikcheck

# Race-enabled run of the packages with concurrent code paths (parallel
# FreezeStatic build, work-stealing ComputeSupport) plus the full suite.
race:
	$(GO) test -race ./...

# The core packages with every mutating operation asserting the full
# Dense/Engine invariant suite (see internal/*/invariants.go), under the
# race detector: the deepest correctness oracle the repo has. The view
# and server packages ride along so their concurrency tests hammer the
# publisher while the substrate self-checks — including
# TestParallelApplyUnderReadLoad, which drives the epoch-coordinated
# ApplyBatchParallel worker fan-out against concurrent GET load — and
# obs rides along so its lock-free counters and histogram bins are
# hammered under the detector, and registry so the multi-tenant
# create/delete/write/subscribe hammer runs checked too.
# halt_on_error=1 stops the run at the first race so the report that
# matters is the one at the bottom of the log (and the one CI uploads),
# not page three of a cascade; trikdebug also arms the lock watchdog
# (internal/watchdog), which panics with full stacks if a publisher or
# registry critical section wedges instead of letting the run hang.
debugrace:
	GORACE=halt_on_error=1 $(GO) test -tags trikdebug -race ./internal/graph ./internal/dynamic ./internal/view ./internal/server ./internal/obs ./internal/registry

# Runs the headline benches (static decompose, engine churn through the
# per-edge / batched / parallel paths, server mixed workload) and pipes
# the stream through cmd/benchjson, which echoes it and drops a
# machine-readable BENCH_<stamp>.json with the host shape alongside.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFreezeStatic$$|BenchmarkDecomposeStatic$$|BenchmarkTriangleCountStatic$$|BenchmarkEngineChurn$$|BenchmarkServerMixedWorkload$$|BenchmarkDecomposeExternal$$' -benchmem -benchtime 3s . | $(GO) run ./cmd/benchjson

# Short out-of-core equivalence fuzz (CI-sized; κ under three budgets
# must match the in-memory decomposition).
fuzzexternal:
	$(GO) test -run '^$$' -fuzz FuzzExternalDecompose -fuzztime 20s ./internal/extcore

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzFreezeStatic -fuzztime 30s ./internal/graph

# Short invariant-checked fuzz of the dynamic engine (CI runs this too).
fuzzchurn:
	$(GO) test -run '^$$' -fuzz FuzzEngineChurn -fuzztime 20s -tags trikdebug ./internal/dynamic

ci: vet lint build test race debugrace
