GO ?= go

.PHONY: all build test vet lint race debugrace bench loadbench fuzz fuzzchurn fuzzexternal ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Project static analysis: the trikcheck invariant rules (κ-funnel
# discipline, deterministic output, guarded narrowing, no stdout in
# libraries, no discarded errors) over every package. Exits non-zero on
# the first finding.
lint:
	$(GO) run ./cmd/trikcheck

# Race-enabled run of the packages with concurrent code paths (parallel
# FreezeStatic build, work-stealing ComputeSupport) plus the full suite.
race:
	$(GO) test -race ./...

# The core packages with every mutating operation asserting the full
# Dense/Engine invariant suite (see internal/*/invariants.go), under the
# race detector: the deepest correctness oracle the repo has. The view
# and server packages ride along so their concurrency tests hammer the
# publisher while the substrate self-checks — including
# TestParallelApplyUnderReadLoad, which drives the epoch-coordinated
# ApplyBatchParallel worker fan-out against concurrent GET load — and
# obs rides along so its lock-free counters and histogram bins are
# hammered under the detector, and registry so the multi-tenant
# create/delete/write/subscribe hammer runs checked too.
# halt_on_error=1 stops the run at the first race so the report that
# matters is the one at the bottom of the log (and the one CI uploads),
# not page three of a cascade; trikdebug also arms the lock watchdog
# (internal/watchdog), which panics with full stacks if a publisher or
# registry critical section wedges instead of letting the run hang.
debugrace:
	GORACE=halt_on_error=1 $(GO) test -tags trikdebug -race ./internal/graph ./internal/dynamic ./internal/view ./internal/server ./internal/obs ./internal/obs/trace ./internal/registry

# Runs the headline benches (static decompose, engine churn through the
# per-edge / batched / parallel paths, server mixed workload) and pipes
# the stream through cmd/benchjson, which echoes it and drops a
# machine-readable BENCH_<stamp>.json with the host shape alongside.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFreezeStatic$$|BenchmarkDecomposeStatic$$|BenchmarkTriangleCountStatic$$|BenchmarkEngineChurn$$|BenchmarkServerMixedWorkload$$|BenchmarkDecomposeExternal$$' -benchmem -benchtime 3s . | $(GO) run ./cmd/benchjson

# End-to-end load benchmark: boots `trikcore serve` with the flight
# recorder armed, drives an open-loop Zipf mixed workload at it with
# cmd/loadgen, then folds the loadgen report into BENCH_<stamp>.json via
# `benchjson -load`. The artifact is written even when an SLO fails (the
# failing verdicts are the interesting part), but the SLO exit status is
# propagated. Override the workload with LOADBENCH_ARGS.
LOADBENCH_ADDR ?= 127.0.0.1:8099
LOADBENCH_ARGS ?= -rate 2000 -duration 10s -mix 95:5 -zipf 1.1 -slo-p99 25ms

loadbench:
	@mkdir -p /tmp/trikcore-loadbench
	$(GO) build -o /tmp/trikcore-loadbench/trikcore ./cmd/trikcore
	$(GO) build -o /tmp/trikcore-loadbench/loadgen ./cmd/loadgen
	@/tmp/trikcore-loadbench/trikcore serve -addr $(LOADBENCH_ADDR) -quiet -workers 4 -trace-ring 64 -slow-ms 50ms & \
	SRV=$$!; \
	trap 'kill $$SRV 2>/dev/null' EXIT; \
	/tmp/trikcore-loadbench/loadgen -addr http://$(LOADBENCH_ADDR) -wait 5s \
		-report /tmp/trikcore-loadbench/load.json $(LOADBENCH_ARGS); \
	RC=$$?; \
	if [ -f /tmp/trikcore-loadbench/load.json ]; then \
		$(GO) run ./cmd/benchjson -load /tmp/trikcore-loadbench/load.json </dev/null; \
	fi; \
	exit $$RC

# Short out-of-core equivalence fuzz (CI-sized; κ under three budgets
# must match the in-memory decomposition).
fuzzexternal:
	$(GO) test -run '^$$' -fuzz FuzzExternalDecompose -fuzztime 20s ./internal/extcore

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzFreezeStatic -fuzztime 30s ./internal/graph

# Short invariant-checked fuzz of the dynamic engine (CI runs this too).
fuzzchurn:
	$(GO) test -run '^$$' -fuzz FuzzEngineChurn -fuzztime 20s -tags trikdebug ./internal/dynamic

ci: vet lint build test race debugrace
