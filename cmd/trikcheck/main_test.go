package main

import "testing"

// TestTreeIsClean runs every rule over every package of the module and
// requires zero findings — the repository itself must satisfy its own
// invariants. A failure here prints the same lines `make lint` would.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	diags, err := run(".", "")
	if err != nil {
		t.Fatalf("trikcheck: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
	}
}
