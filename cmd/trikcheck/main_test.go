package main

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"trikcore/internal/analysis"
)

// TestTreeIsClean runs every rule over every package of the module and
// requires zero findings — the repository itself must satisfy its own
// invariants. A failure here prints the same lines `make lint` would.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	diags, err := run(".", "")
	if err != nil {
		t.Fatalf("trikcheck: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
	}
}

// TestRunSingleRule pins the -rule path: a named subset runs only that
// rule and an unknown name is a hard error, not an empty run.
func TestRunSingleRule(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	if _, err := run(".", "lock-guard"); err != nil {
		t.Fatalf("run(-rule lock-guard): %v", err)
	}
	if _, err := run(".", "lock-guard,no-such-rule"); err == nil {
		t.Fatal("unknown rule name silently accepted")
	}
}

func TestSelector(t *testing.T) {
	cases := []struct{ rule, rules, want string }{
		{"", "", ""},
		{"lock-guard", "", "lock-guard"},
		{"", "atomic-mix,map-order", "atomic-mix,map-order"},
		{"lock-guard", "atomic-mix", "lock-guard,atomic-mix"},
	}
	for _, tc := range cases {
		if got := selector(tc.rule, tc.rules); got != tc.want {
			t.Errorf("selector(%q, %q) = %q, want %q", tc.rule, tc.rules, got, tc.want)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := writeJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(b.String()); got != "[]" {
		t.Errorf("empty findings render %q, want []", got)
	}

	b.Reset()
	diags := []analysis.Diagnostic{{
		Pos:     token.Position{Filename: "internal/x/y.go", Line: 12, Column: 3},
		Rule:    "lock-guard",
		Message: "access to X.f without holding x.mu",
	}}
	if err := writeJSON(&b, diags); err != nil {
		t.Fatal(err)
	}
	var out []jsonFinding
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if len(out) != 1 || out[0] != (jsonFinding{
		File: "internal/x/y.go", Line: 12, Column: 3,
		Rule: "lock-guard", Message: "access to X.f without holding x.mu",
	}) {
		t.Errorf("round-trip mismatch: %+v", out)
	}
}
