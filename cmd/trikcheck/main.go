// trikcheck runs trikcore's in-tree static analyzer over every package
// of the module and prints one line per finding:
//
//	internal/dynamic/engine.go:42:2: write to Engine.kappa outside the κ funnel (...) [kappa-funnel]
//
// It exits 1 when anything is reported, so `make lint` (and CI) fail on
// the first invariant regression. Built entirely on the standard
// library; see internal/analysis for the rules.
//
// Usage:
//
//	trikcheck [-C dir] [-rules name,name]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"trikcore/internal/analysis"
)

func main() {
	dir := flag.String("C", ".", "directory inside the module to analyze")
	ruleNames := flag.String("rules", "", "comma-separated rule subset (default: all)")
	flag.Parse()

	diags, err := run(*dir, *ruleNames)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trikcheck:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s:%d:%d: %s [%s]\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "trikcheck: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func run(dir, ruleNames string) ([]analysis.Diagnostic, error) {
	root, err := analysis.FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	rules := analysis.AllRules()
	if ruleNames != "" {
		rules = rules[:0]
		for _, name := range strings.Split(ruleNames, ",") {
			r, ok := analysis.RuleByName(strings.TrimSpace(name))
			if !ok {
				return nil, fmt.Errorf("unknown rule %q", name)
			}
			rules = append(rules, r)
		}
	}
	l, err := analysis.NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		return nil, err
	}
	var diags []analysis.Diagnostic
	for _, p := range pkgs {
		for _, d := range analysis.RunRules(p, rules) {
			if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			diags = append(diags, d)
		}
	}
	return diags, nil
}
