// trikcheck runs trikcore's in-tree static analyzer over every package
// of the module and prints one line per finding:
//
//	internal/dynamic/engine.go:42:2: write to Engine.kappa outside the κ funnel (...) [kappa-funnel]
//
// It exits 1 when anything is reported, so `make lint` (and CI) fail on
// the first invariant regression. Built entirely on the standard
// library; see internal/analysis for the rules.
//
// Usage:
//
//	trikcheck [-C dir] [-rule name] [-rules name,name] [-json] [-list]
//
// -rule runs a single rule (repeat -rules for a comma-separated subset),
// -json renders the findings as a JSON array for tooling, and -list
// prints the rule set with one-line docs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"trikcore/internal/analysis"
)

func main() {
	dir := flag.String("C", ".", "directory inside the module to analyze")
	ruleName := flag.String("rule", "", "run a single rule by name")
	ruleNames := flag.String("rules", "", "comma-separated rule subset (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	list := flag.Bool("list", false, "list the rules and exit")
	flag.Parse()

	if *list {
		for _, r := range analysis.AllRules() {
			fmt.Printf("%-20s %s\n", r.Name, r.Doc)
		}
		return
	}

	diags, err := run(*dir, selector(*ruleName, *ruleNames))
	if err != nil {
		fmt.Fprintln(os.Stderr, "trikcheck:", err)
		os.Exit(2)
	}
	if *asJSON {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "trikcheck:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s [%s]\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "trikcheck: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// selector merges the -rule and -rules flags into one comma-separated
// rule list ("" = all rules).
func selector(rule, rules string) string {
	switch {
	case rule == "":
		return rules
	case rules == "":
		return rule
	default:
		return rule + "," + rules
	}
}

// jsonFinding is the -json output shape: stable field names, one object
// per finding, positions 1-indexed as in the text form.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// writeJSON renders diags as an indented JSON array (an empty array for
// a clean tree, never null).
func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func run(dir, ruleNames string) ([]analysis.Diagnostic, error) {
	root, err := analysis.FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	rules := analysis.AllRules()
	if ruleNames != "" {
		rules = rules[:0]
		for _, name := range strings.Split(ruleNames, ",") {
			r, ok := analysis.RuleByName(strings.TrimSpace(name))
			if !ok {
				return nil, fmt.Errorf("unknown rule %q", name)
			}
			rules = append(rules, r)
		}
	}
	l, err := analysis.NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		return nil, err
	}
	var diags []analysis.Diagnostic
	for _, p := range pkgs {
		for _, d := range analysis.RunRules(p, rules) {
			if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			diags = append(diags, d)
		}
	}
	return diags, nil
}
