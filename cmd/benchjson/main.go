// Command benchjson turns `go test -bench` output into a timestamped
// machine-readable artifact. It reads the benchmark stream on stdin,
// echoes every line unchanged to stdout (so interactive runs lose
// nothing), parses the result lines, and writes BENCH_<stamp>.json into
// the output directory together with the host shape the numbers were
// measured on — a parallel-speedup figure is meaningless without the
// GOMAXPROCS and CPU count it ran under.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson
//
// The `make bench` target wires this up.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -<procs> suffix stripped,
	// e.g. "BenchmarkEngineChurn/Parallel4".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix the benchmark ran at.
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when -benchmem was set.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Extra holds any custom b.ReportMetric units, keyed by unit name.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the top-level BENCH_<stamp>.json document.
type Report struct {
	Stamp      string   `json:"stamp"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchmarks []Result `json:"benchmarks"`
	// LoadGen embeds loadgen report documents (-load), verbatim: arrival
	// rate, mix, Zipf skew, client-side quantiles per endpoint class,
	// server metric deltas and SLO verdicts ride alongside the ns/op
	// entries in one consolidated artifact.
	LoadGen []json.RawMessage `json:"loadgen,omitempty"`
}

// loadReports reads and validates the comma-separated loadgen report
// files named by -load.
func loadReports(spec string) ([]json.RawMessage, error) {
	if spec == "" {
		return nil, nil
	}
	var out []json.RawMessage
	for _, path := range strings.Split(spec, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if !json.Valid(data) {
			return nil, fmt.Errorf("%s: not valid JSON", path)
		}
		out = append(out, json.RawMessage(data))
	}
	return out, nil
}

func main() {
	outDir := flag.String("out", ".", "directory to write BENCH_<stamp>.json into")
	load := flag.String("load", "", "comma-separated loadgen report files to merge into the artifact")
	flag.Parse()

	rep := Report{
		Stamp:      time.Now().UTC().Format("20060102T150405Z"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	var err error
	if rep.LoadGen, err = loadReports(*load); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 && len(rep.LoadGen) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines or -load reports seen; not writing a report")
		os.Exit(1)
	}

	path := filepath.Join(*outDir, "BENCH_"+rep.Stamp+".json")
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks, %d loadgen reports)\n",
		path, len(rep.Benchmarks), len(rep.LoadGen))
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkEngineChurn/Batched-4  100  123456 ns/op  789 B/op  10 allocs/op
//
// Returns ok=false for anything that is not a benchmark result.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name, procs := splitProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Procs: procs, Iterations: iters}
	// The rest of the line is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			v := val
			r.BytesPerOp = &v
		case "allocs/op":
			v := val
			r.AllocsPerOp = &v
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = val
		}
	}
	return r, true
}

// splitProcs strips the trailing -<GOMAXPROCS> that the testing package
// appends to benchmark names, defaulting to 1 when absent.
func splitProcs(s string) (string, int) {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return s, 1
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil || n <= 0 {
		return s, 1
	}
	return s[:i], n
}
