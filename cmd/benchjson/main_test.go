package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkEngineChurn/Parallel4-4  \t 100\t  123456 ns/op\t  789 B/op\t 10 allocs/op")
	if !ok {
		t.Fatal("result line not recognized")
	}
	if r.Name != "BenchmarkEngineChurn/Parallel4" || r.Procs != 4 {
		t.Fatalf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 100 || r.NsPerOp != 123456 {
		t.Fatalf("iters/ns = %d/%v", r.Iterations, r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 789 || r.AllocsPerOp == nil || *r.AllocsPerOp != 10 {
		t.Fatalf("benchmem fields = %v/%v", r.BytesPerOp, r.AllocsPerOp)
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	r, ok := parseLine("BenchmarkX-8 5 2.5 ns/op 7.25 regions/op")
	if !ok {
		t.Fatal("not recognized")
	}
	if r.Extra["regions/op"] != 7.25 {
		t.Fatalf("extra = %v", r.Extra)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"BenchmarkX", // header echo without fields
		"BenchmarkX-4 notanumber 3 ns/op",
		"ok  \ttrikcore\t42.1s",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as a result", line)
		}
	}
}

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX", "BenchmarkX", 1},
		{"BenchmarkX/sub-case-2", "BenchmarkX/sub-case", 2},
		{"BenchmarkX-notnum", "BenchmarkX-notnum", 1},
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcs(%q) = %q,%d want %q,%d", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}
