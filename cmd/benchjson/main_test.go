package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkEngineChurn/Parallel4-4  \t 100\t  123456 ns/op\t  789 B/op\t 10 allocs/op")
	if !ok {
		t.Fatal("result line not recognized")
	}
	if r.Name != "BenchmarkEngineChurn/Parallel4" || r.Procs != 4 {
		t.Fatalf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 100 || r.NsPerOp != 123456 {
		t.Fatalf("iters/ns = %d/%v", r.Iterations, r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 789 || r.AllocsPerOp == nil || *r.AllocsPerOp != 10 {
		t.Fatalf("benchmem fields = %v/%v", r.BytesPerOp, r.AllocsPerOp)
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	r, ok := parseLine("BenchmarkX-8 5 2.5 ns/op 7.25 regions/op")
	if !ok {
		t.Fatal("not recognized")
	}
	if r.Extra["regions/op"] != 7.25 {
		t.Fatalf("extra = %v", r.Extra)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"BenchmarkX", // header echo without fields
		"BenchmarkX-4 notanumber 3 ns/op",
		"ok  \ttrikcore\t42.1s",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as a result", line)
		}
	}
}

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX", "BenchmarkX", 1},
		{"BenchmarkX/sub-case-2", "BenchmarkX/sub-case", 2},
		{"BenchmarkX-notnum", "BenchmarkX-notnum", 1},
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcs(%q) = %q,%d want %q,%d", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}

func TestLoadReports(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	os.WriteFile(a, []byte(`{"schema":"trikcore-loadgen/v1","ops_sent":10}`), 0o644)
	os.WriteFile(b, []byte(`{"schema":"trikcore-loadgen/v1","ops_sent":20}`), 0o644)

	got, err := loadReports(a + "," + b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d reports", len(got))
	}
	var doc struct {
		OpsSent int `json:"ops_sent"`
	}
	if err := json.Unmarshal(got[1], &doc); err != nil || doc.OpsSent != 20 {
		t.Fatalf("report payload mangled: %v %+v", err, doc)
	}

	// Embedded verbatim in the Report envelope.
	data, err := json.Marshal(Report{Stamp: "s", LoadGen: got})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"ops_sent":20`) {
		t.Fatalf("merged report lost loadgen payload: %s", data)
	}

	if _, err := loadReports(""); err != nil {
		t.Fatalf("empty spec errored: %v", err)
	}
	if _, err := loadReports(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if _, err := loadReports(bad); err == nil {
		t.Fatal("invalid JSON accepted")
	}
}
