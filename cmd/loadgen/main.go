// Command loadgen is trikcore's open-loop workload driver: it fires a
// Zipf-skewed read/write mix at a running `trikcore serve` instance on a
// fixed arrival-rate schedule, measures client-side latency per endpoint
// class from each operation's *scheduled* send time, scrapes the
// server's /metrics for the matching server-side deltas, checks latency
// SLOs, and writes a machine-readable report that `benchjson -load`
// merges into BENCH_<stamp>.json.
//
// Open-loop means arrivals do not wait for responses: each worker draws
// exponential inter-arrival gaps for its share of the target rate, and
// when the server falls behind, the backlog time counts into the
// reported latency (no coordinated omission). Given the same -seed the
// generated operation sequence is identical across runs.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 -rate 2000 -mix 95:5 \
//	        -zipf 1.1 -duration 10s -slo-p99 5ms -report load.json
//
// A ramped schedule replaces the flat rate: -rate 500:2s,1000:2s,2000:6s.
// Exit status: 0 on success, 1 on SLO violation, 2 on usage or runtime
// error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trikcore/internal/obs"
)

// config is the parsed command line.
type config struct {
	addr     string
	graph    string
	sched    schedule
	rateSpec string
	mix      string
	readPct  int
	zipfS    float64
	vertices uint64
	batch    int
	workers  int
	seed     int64
	sloP99   time.Duration
	sloP999  time.Duration
	scrape   time.Duration
	report   string
	wait     time.Duration
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	rep, err := run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(rep.summarize())
	if cfg.report != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: encode report: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(cfg.report, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", cfg.report)
	}
	if !rep.sloPass() {
		os.Exit(1)
	}
}

// parseFlags parses args into a validated config.
func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8080", "base URL of the trikcore server")
		graphN   = fs.String("graph", "", "graph space to target (empty = the default graph's legacy routes)")
		rateSpec = fs.String("rate", "500", "arrival rate in ops/s, or a ramp of rate:duration stages (500:2s,2000:3s)")
		duration = fs.Duration("duration", 10*time.Second, "run length for a flat -rate (ramps carry their own)")
		mix      = fs.String("mix", "95:5", "read:write operation mix")
		zipfS    = fs.Float64("zipf", 1.1, "Zipf skew of edge endpoints (must be > 1)")
		vertices = fs.Uint64("vertices", 10000, "vertex id universe size")
		batch    = fs.Int("batch", 8, "edge operations per write request")
		workers  = fs.Int("workers", 4, "concurrent open-loop workers")
		seed     = fs.Int64("seed", 1, "PRNG seed; a fixed seed reproduces the op sequence")
		sloP99   = fs.Duration("slo-p99", 0, "per-class p99 latency objective (0 = off); violation exits 1")
		sloP999  = fs.Duration("slo-p999", 0, "per-class p999 latency objective (0 = off)")
		scrape   = fs.Duration("scrape", time.Second, "server /metrics scrape interval (0 = off)")
		report   = fs.String("report", "", "write the JSON report to this path")
		wait     = fs.Duration("wait", 0, "wait up to this long for the server's /healthz before starting")
	)
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	sched, err := parseSchedule(*rateSpec, *duration)
	if err != nil {
		return config{}, err
	}
	readPct, err := parseMix(*mix)
	if err != nil {
		return config{}, err
	}
	if *zipfS <= 1 {
		return config{}, fmt.Errorf("-zipf %g: stdlib Zipf requires s > 1", *zipfS)
	}
	if *vertices < 2 {
		return config{}, fmt.Errorf("-vertices %d: need at least 2", *vertices)
	}
	if *workers < 1 {
		return config{}, fmt.Errorf("-workers %d: need at least 1", *workers)
	}
	if *batch < 1 {
		return config{}, fmt.Errorf("-batch %d: need at least 1", *batch)
	}
	return config{
		addr:     strings.TrimSuffix(*addr, "/"),
		graph:    *graphN,
		sched:    sched,
		rateSpec: sched.describe(),
		mix:      *mix,
		readPct:  readPct,
		zipfS:    *zipfS,
		vertices: *vertices,
		batch:    *batch,
		workers:  *workers,
		seed:     *seed,
		sloP99:   *sloP99,
		sloP999:  *sloP999,
		scrape:   *scrape,
		report:   *report,
		wait:     *wait,
	}, nil
}

// run executes the whole load run and builds the report.
func run(ctx context.Context, cfg config) (*Report, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	if cfg.wait > 0 {
		if err := awaitServer(ctx, client, cfg.addr, cfg.wait); err != nil {
			return nil, err
		}
	}
	prefix := ""
	if cfg.graph != "" {
		prefix = "/g/" + cfg.graph
	}

	recs := newRecorders()
	var sent atomic.Uint64
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Metrics scraper: one snapshot up front, periodic refreshes, so the
	// report's server-side delta spans the whole run even if the final
	// scrape races shutdown.
	sc := &scraper{client: client, url: cfg.addr + "/metrics"}
	sc.scrape()
	var scrapeWG sync.WaitGroup
	if cfg.scrape > 0 {
		scrapeWG.Add(1)
		go sc.loop(runCtx, cfg.scrape, &scrapeWG)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go runWorker(runCtx, w, cfg, client, prefix, start, recs, &sent, &wg)
	}
	wg.Wait()
	elapsed := time.Since(start)
	cancel()
	scrapeWG.Wait()
	sc.scrape() // final post-run snapshot

	rep := &Report{
		Schema:          "trikcore-loadgen/v1",
		Addr:            cfg.addr,
		Graph:           cfg.graph,
		Seed:            cfg.seed,
		Workers:         cfg.workers,
		Rate:            cfg.rateSpec,
		Mix:             cfg.mix,
		ZipfS:           cfg.zipfS,
		Vertices:        cfg.vertices,
		Batch:           cfg.batch,
		DurationSeconds: elapsed.Seconds(),
		OpsSent:         sent.Load(),
		Classes:         make(map[string]ClassStats, len(classes)),
		ServerDelta:     sc.delta(),
	}
	if elapsed > 0 {
		rep.OpsPerSecond = float64(rep.OpsSent) / elapsed.Seconds()
	}
	for _, c := range classes {
		rep.Classes[c] = recs[c].stats()
	}
	rep.SLO = evalSLOs(rep.Classes, cfg.sloP99, cfg.sloP999)
	return rep, nil
}

// runWorker drives one open-loop worker: it walks its arrival schedule,
// sleeping until each scheduled send time (or firing immediately when
// behind), and measures every operation's latency from that scheduled
// time.
func runWorker(ctx context.Context, w int, cfg config, client *http.Client,
	prefix string, start time.Time, recs map[string]*classRecorder,
	sent *atomic.Uint64, wg *sync.WaitGroup) {
	defer wg.Done()
	gen := newGenerator(cfg.seed, w, cfg.zipfS, cfg.vertices, cfg.readPct, cfg.batch, prefix)
	total := cfg.sched.total()
	var off time.Duration
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for {
		rate := cfg.sched.rateAt(off)
		if rate <= 0 {
			return
		}
		// This worker carries 1/workers of the stage rate; exponential
		// gaps make arrivals Poisson at that rate.
		perWorker := rate / float64(cfg.workers)
		off += time.Duration(gen.rng.ExpFloat64() / perWorker * float64(time.Second))
		if off > total {
			return
		}
		scheduled := start.Add(off)
		if d := time.Until(scheduled); d > 0 {
			timer.Reset(d)
			select {
			case <-ctx.Done():
				return
			case <-timer.C:
			}
		} else {
			// Behind schedule: open-loop sends do not self-throttle, the
			// accumulated delay lands in the latency measurement instead.
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
		o := gen.next()
		sent.Add(1)
		issue(client, cfg.addr, o, scheduled, recs[o.class])
	}
}

// issue performs one operation and records its latency from the
// scheduled arrival time. Transport errors and 5xx responses count as
// errors; 4xx (e.g. kappa lookups of absent edges) are valid outcomes
// of a random workload and only the latency is kept.
func issue(client *http.Client, addr string, o op, scheduled time.Time, rec *classRecorder) {
	var (
		resp *http.Response
		err  error
	)
	if o.body != "" {
		resp, err = client.Post(addr+o.path, "application/json", strings.NewReader(o.body))
	} else {
		resp, err = client.Get(addr + o.path)
	}
	if err == nil {
		err = drain(resp)
	}
	rec.hist.Observe(time.Since(scheduled).Seconds())
	rec.count.Add(1)
	if err != nil || resp.StatusCode >= 500 {
		rec.errors.Add(1)
	}
}

// drain consumes and closes a response body so the connection returns
// to the client's pool; the first failure (read or close) is reported.
func drain(resp *http.Response) error {
	_, err := io.Copy(io.Discard, resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	return err
}

// awaitServer polls /healthz until the server answers 200 or the wait
// budget runs out.
func awaitServer(ctx context.Context, client *http.Client, addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			if drain(resp) == nil && resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy within %s", addr, wait)
		}
		timer.Reset(100 * time.Millisecond)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// scraper snapshots the server's /metrics: the first successful parse
// is the baseline, the latest is the endpoint of the reported delta.
type scraper struct {
	client *http.Client
	url    string

	mu    sync.Mutex
	first map[string]float64 // trikcheck:guardedby mu
	last  map[string]float64 // trikcheck:guardedby mu
}

// scrape fetches and parses /metrics once; failures (server not up yet,
// mid-shutdown) are skipped silently — the delta just spans the scrapes
// that worked.
func (s *scraper) scrape() {
	resp, err := s.client.Get(s.url)
	if err != nil {
		return
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil || resp.StatusCode != http.StatusOK {
		return
	}
	vals, err := obs.ParseValues(body)
	if err != nil {
		return
	}
	s.mu.Lock()
	if s.first == nil {
		s.first = vals
	}
	s.last = vals
	s.mu.Unlock()
}

// loop scrapes every interval until ctx is cancelled, then releases wg.
func (s *scraper) loop(ctx context.Context, interval time.Duration, wg *sync.WaitGroup) {
	defer wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			s.scrape()
		}
	}
}

// delta returns last-first for every series that moved (nil when fewer
// than one scrape succeeded). Bucket series are skipped — the quantile
// story lives client-side; the interesting server numbers are the
// counters, sums and counts.
func (s *scraper) delta() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.first == nil || s.last == nil {
		return nil
	}
	out := make(map[string]float64)
	for k, v := range s.last {
		if strings.Contains(k, `_bucket<`) {
			continue
		}
		if d := v - s.first[k]; d != 0 {
			out[k] = d
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
