package main

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"trikcore/internal/graph"
	"trikcore/internal/obs"
	"trikcore/internal/obs/trace"
	"trikcore/internal/server"
)

// TestGeneratorDeterministic pins the reproducibility contract: the same
// seed and worker index produce the identical operation sequence.
func TestGeneratorDeterministic(t *testing.T) {
	mk := func() []op {
		g := newGenerator(7, 3, 1.1, 1000, 90, 4, "/g/x")
		ops := make([]op, 500)
		for i := range ops {
			ops[i] = g.next()
		}
		return ops
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different op sequences")
	}
	// A different worker index diverges (workers must not duplicate work).
	g2 := newGenerator(7, 4, 1.1, 1000, 90, 4, "/g/x")
	diverged := false
	for i := 0; i < 500; i++ {
		if g2.next() != a[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different workers produced identical op sequences")
	}
}

// TestGeneratorMixAndShape checks the mix percentage is honored and ops
// are well-formed.
func TestGeneratorMixAndShape(t *testing.T) {
	g := newGenerator(1, 0, 1.2, 100, 80, 4, "")
	reads, writes := 0, 0
	for i := 0; i < 10000; i++ {
		o := g.next()
		switch o.class {
		case classWrite:
			writes++
			if o.path != "/edges" || o.body == "" {
				t.Fatalf("malformed write op %+v", o)
			}
		case classStats, classKappa, classHist:
			reads++
			if o.body != "" {
				t.Fatalf("read op with body %+v", o)
			}
		default:
			t.Fatalf("unknown class %q", o.class)
		}
	}
	frac := float64(reads) / float64(reads+writes)
	if frac < 0.77 || frac > 0.83 {
		t.Fatalf("read fraction %.3f, want ≈0.80", frac)
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := parseSchedule("1000", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.stages) != 1 || s.stages[0].rate != 1000 || s.total() != 5*time.Second {
		t.Fatalf("flat schedule = %+v", s)
	}

	s, err = parseSchedule("500:2s,1000:1s,2000:3s", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.stages) != 3 || s.total() != 6*time.Second {
		t.Fatalf("ramp = %+v total %s", s, s.total())
	}
	for off, want := range map[time.Duration]float64{
		0: 500, 1900 * time.Millisecond: 500,
		2 * time.Second: 1000, 2900 * time.Millisecond: 1000,
		3 * time.Second: 2000, 5900 * time.Millisecond: 2000,
		6 * time.Second: 0, time.Minute: 0,
	} {
		if got := s.rateAt(off); got != want {
			t.Fatalf("rateAt(%s) = %g, want %g", off, got, want)
		}
	}

	for _, bad := range []string{"", "0", "-5", "x", "500:2s,1000", "500:bogus", "500:-1s"} {
		if _, err := parseSchedule(bad, time.Second); err == nil {
			t.Fatalf("schedule %q parsed", bad)
		}
	}
}

func TestParseMix(t *testing.T) {
	for spec, want := range map[string]int{"95:5": 95, "1:1": 50, "0:10": 0, "10:0": 100} {
		got, err := parseMix(spec)
		if err != nil || got != want {
			t.Fatalf("parseMix(%q) = %d, %v; want %d", spec, got, err, want)
		}
	}
	for _, bad := range []string{"", "95", "a:b", "-1:5", "0:0"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("mix %q parsed", bad)
		}
	}
}

// TestEvalSLOs builds class stats with known quantiles and checks the
// verdicts.
func TestEvalSLOs(t *testing.T) {
	stats := map[string]ClassStats{
		classStats: {Count: 100, P99Seconds: 0.001, P999Seconds: 0.002},
		classWrite: {Count: 100, P99Seconds: 0.050, P999Seconds: 0.200},
		classKappa: {Count: 0}, // no traffic: no verdict
	}
	out := evalSLOs(stats, 5*time.Millisecond, 0)
	if len(out) != 2 {
		t.Fatalf("verdicts = %+v", out)
	}
	byClass := map[string]SLOVerdict{}
	for _, v := range out {
		if v.Quantile != "p99" {
			t.Fatalf("unexpected quantile %q", v.Quantile)
		}
		byClass[v.Class] = v
	}
	if !byClass[classStats].Pass || byClass[classWrite].Pass {
		t.Fatalf("verdicts = %+v", byClass)
	}

	// p999 objective alone.
	out = evalSLOs(stats, 0, 10*time.Millisecond)
	for _, v := range out {
		if v.Quantile != "p999" {
			t.Fatalf("unexpected quantile %q", v.Quantile)
		}
		wantPass := v.Class == classStats
		if v.Pass != wantPass {
			t.Fatalf("p999 %s pass=%v", v.Class, v.Pass)
		}
	}

	// No objectives → no verdicts → sloPass trivially true.
	if out := evalSLOs(stats, 0, 0); out != nil {
		t.Fatalf("no-objective verdicts = %+v", out)
	}
}

// TestRunEndToEnd drives a short low-rate run against an in-process
// traced server and checks the report: per-class counts and quantiles,
// server metric deltas, SLO verdicts, and zero transport errors.
func TestRunEndToEnd(t *testing.T) {
	g := graph.New()
	for i := graph.Vertex(1); i <= 6; i++ {
		for j := i + 1; j <= 6; j++ {
			g.AddEdge(i, j)
		}
	}
	srv := server.NewWith(g, server.Options{
		Registry: obs.NewRegistry(),
		Trace:    trace.New(trace.Options{Ring: 8}),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfg, err := parseFlags([]string{
		"-addr", ts.URL,
		"-rate", "400",
		"-duration", "500ms",
		"-mix", "80:20",
		"-vertices", "50",
		"-workers", "2",
		"-seed", "42",
		"-scrape", "100ms",
		"-slo-p99", "5s", // generous: the verdict machinery, not the server, is under test
		"-wait", "2s",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OpsSent < 50 {
		t.Fatalf("sent only %d ops in 500ms at 400/s", rep.OpsSent)
	}
	var total uint64
	for c, s := range rep.Classes {
		total += s.Count
		if s.Errors != 0 {
			t.Fatalf("class %s saw %d errors", c, s.Errors)
		}
		if s.Count > 0 && s.P50Seconds <= 0 {
			t.Fatalf("class %s has count %d but p50 %g", c, s.Count, s.P50Seconds)
		}
	}
	if total != rep.OpsSent {
		t.Fatalf("class counts %d != ops sent %d", total, rep.OpsSent)
	}
	if rep.Classes[classWrite].Count == 0 {
		t.Fatal("20% write mix produced no writes")
	}
	if len(rep.SLO) == 0 || !rep.sloPass() {
		t.Fatalf("SLO verdicts = %+v", rep.SLO)
	}
	if rep.ServerDelta == nil {
		t.Fatal("no server metric delta captured")
	}
	// The server-side request counters must have moved by what we sent.
	var reqDelta float64
	for k, v := range rep.ServerDelta {
		if len(k) > len("trikcore_http_requests_total") &&
			k[:len("trikcore_http_requests_total")] == "trikcore_http_requests_total" {
			reqDelta += v
		}
	}
	if reqDelta < float64(rep.OpsSent) {
		t.Fatalf("server saw %g requests, client sent %d", reqDelta, rep.OpsSent)
	}
}
