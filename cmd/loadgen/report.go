package main

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"trikcore/internal/obs"
)

// classRecorder captures one endpoint class's client-side outcomes: a
// log-scaled latency histogram (observed from each op's *scheduled*
// arrival time, so queueing delay under overload counts against the
// server — the open-loop discipline) plus op and error counts.
type classRecorder struct {
	hist   *obs.Histogram
	count  atomic.Uint64
	errors atomic.Uint64 // transport failures and 5xx responses
}

// newRecorders builds one recorder per endpoint class.
func newRecorders() map[string]*classRecorder {
	m := make(map[string]*classRecorder, len(classes))
	for _, c := range classes {
		m[c] = &classRecorder{hist: obs.NewHistogram(obs.LogDurationBuckets)}
	}
	return m
}

// ClassStats is one endpoint class's section of the report. Quantiles
// are upper bounds from the log-scaled histogram (within one bucket
// width, ≈1.6× relative error).
type ClassStats struct {
	Count        uint64  `json:"count"`
	Errors       uint64  `json:"errors"`
	P50Seconds   float64 `json:"p50_seconds"`
	P95Seconds   float64 `json:"p95_seconds"`
	P99Seconds   float64 `json:"p99_seconds"`
	P999Seconds  float64 `json:"p999_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
	TotalSeconds float64 `json:"total_seconds"`
}

// stats renders the recorder into its report section.
func (cr *classRecorder) stats() ClassStats {
	n := cr.count.Load()
	s := ClassStats{
		Count:        n,
		Errors:       cr.errors.Load(),
		P50Seconds:   jsonSafe(cr.hist.Quantile(0.50)),
		P95Seconds:   jsonSafe(cr.hist.Quantile(0.95)),
		P99Seconds:   jsonSafe(cr.hist.Quantile(0.99)),
		P999Seconds:  jsonSafe(cr.hist.Quantile(0.999)),
		TotalSeconds: cr.hist.Sum(),
	}
	if n > 0 {
		s.MeanSeconds = s.TotalSeconds / float64(n)
	}
	return s
}

// jsonSafe maps NaN/±Inf (empty histogram, overflow bucket) to -1,
// which encoding/json can carry.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	return v
}

// SLOVerdict is one latency-objective check in the report.
type SLOVerdict struct {
	Class          string  `json:"class"`
	Quantile       string  `json:"quantile"`
	LimitSeconds   float64 `json:"limit_seconds"`
	ObservedSeconds float64 `json:"observed_seconds"`
	Pass           bool    `json:"pass"`
}

// evalSLOs checks each configured objective against every class that
// saw traffic. An observation of -1 (empty class) passes vacuously; an
// overflow-bucket +Inf estimate fails any finite limit.
func evalSLOs(stats map[string]ClassStats, p99, p999 time.Duration) []SLOVerdict {
	type objective struct {
		name  string
		limit time.Duration
		pick  func(ClassStats) float64
	}
	objectives := []objective{
		{"p99", p99, func(s ClassStats) float64 { return s.P99Seconds }},
		{"p999", p999, func(s ClassStats) float64 { return s.P999Seconds }},
	}
	var out []SLOVerdict
	for _, obj := range objectives {
		if obj.limit <= 0 {
			continue
		}
		for _, c := range classes {
			s, ok := stats[c]
			if !ok || s.Count == 0 {
				continue
			}
			observed := obj.pick(s)
			out = append(out, SLOVerdict{
				Class:           c,
				Quantile:        obj.name,
				LimitSeconds:    obj.limit.Seconds(),
				ObservedSeconds: observed,
				Pass:            observed >= 0 && observed <= obj.limit.Seconds(),
			})
		}
	}
	return out
}

// Report is loadgen's machine-readable output, written to -report and
// merged into BENCH_<stamp>.json by `benchjson -load`.
type Report struct {
	Schema          string                 `json:"schema"`
	Addr            string                 `json:"addr"`
	Graph           string                 `json:"graph,omitempty"`
	Seed            int64                  `json:"seed"`
	Workers         int                    `json:"workers"`
	Rate            string                 `json:"rate"`
	Mix             string                 `json:"mix"`
	ZipfS           float64                `json:"zipf_s"`
	Vertices        uint64                 `json:"vertices"`
	Batch           int                    `json:"batch"`
	DurationSeconds float64                `json:"duration_seconds"`
	OpsSent         uint64                 `json:"ops_sent"`
	OpsPerSecond    float64                `json:"ops_per_second"`
	Classes         map[string]ClassStats  `json:"classes"`
	SLO             []SLOVerdict           `json:"slo,omitempty"`
	ServerDelta     map[string]float64     `json:"server_metrics_delta,omitempty"`
}

// sloPass reports whether every verdict passed.
func (r *Report) sloPass() bool {
	for _, v := range r.SLO {
		if !v.Pass {
			return false
		}
	}
	return true
}

// summarize renders the human-readable end-of-run lines.
func (r *Report) summarize() string {
	out := fmt.Sprintf("loadgen: %d ops in %.1fs (%.0f ops/s) against %s\n",
		r.OpsSent, r.DurationSeconds, r.OpsPerSecond, r.Addr)
	for _, c := range classes {
		s, ok := r.Classes[c]
		if !ok || s.Count == 0 {
			continue
		}
		out += fmt.Sprintf("  %-15s n=%-8d err=%-5d p50=%s p95=%s p99=%s p999=%s\n",
			c, s.Count, s.Errors,
			fmtLatency(s.P50Seconds), fmtLatency(s.P95Seconds),
			fmtLatency(s.P99Seconds), fmtLatency(s.P999Seconds))
	}
	for _, v := range r.SLO {
		verdict := "PASS"
		if !v.Pass {
			verdict = "FAIL"
		}
		out += fmt.Sprintf("  SLO %-4s %-15s limit=%s observed=%s %s\n",
			v.Quantile, v.Class, fmtLatency(v.LimitSeconds), fmtLatency(v.ObservedSeconds), verdict)
	}
	return out
}

// fmtLatency renders seconds in the natural unit (-1 = no data).
func fmtLatency(s float64) string {
	if s < 0 {
		return "-"
	}
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
