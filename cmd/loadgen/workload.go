package main

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Endpoint classes: every generated operation belongs to exactly one,
// and client-side latency is captured per class. The read classes all
// ride the lock-free snapshot path; the write class funnels through the
// space's single writer.
const (
	classStats = "read.stats"     // GET /stats
	classKappa = "read.kappa"     // GET /kappa?u=U&v=V
	classHist  = "read.histogram" // GET /histogram
	classWrite = "write.edges"    // POST /edges
)

// classes lists every endpoint class in report order.
var classes = []string{classStats, classKappa, classHist, classWrite}

// op is one generated operation: the endpoint class, the request path
// (including the graph prefix and any query), and the JSON body for
// writes ("" for reads).
type op struct {
	class string
	path  string
	body  string
}

// generator produces this worker's deterministic operation stream: all
// randomness — class choice, Zipf-drawn endpoints, write batch
// composition, inter-arrival jitter — flows from one PRNG seeded with
// seed+worker, so a fixed -seed reproduces the exact op sequence across
// runs regardless of timing.
type generator struct {
	rng     *rand.Rand
	zipf    *rand.Zipf
	readPct int // percentage of ops that are reads (the R of -mix R:W)
	batch   int // edge ops per write body
	prefix  string
}

// newGenerator builds worker w's generator. zipfS must be > 1 (the
// stdlib Zipf constraint); vertices is the endpoint universe size.
func newGenerator(seed int64, w int, zipfS float64, vertices uint64, readPct, batch int, prefix string) *generator {
	rng := rand.New(rand.NewSource(seed + int64(w)))
	return &generator{
		rng:     rng,
		zipf:    rand.NewZipf(rng, zipfS, 1, vertices-1),
		readPct: readPct,
		batch:   batch,
		prefix:  prefix,
	}
}

// vertex draws one Zipf-distributed vertex id in [1, vertices]: hot
// vertices are the low ids, with skew set by -zipf.
func (g *generator) vertex() uint64 { return g.zipf.Uint64() + 1 }

// edge draws a non-loop vertex pair.
func (g *generator) edge() (uint64, uint64) {
	u := g.vertex()
	v := g.vertex()
	for v == u {
		v = g.vertex()
	}
	return u, v
}

// next produces the worker's next operation.
func (g *generator) next() op {
	if g.rng.Intn(100) < g.readPct {
		// Reads split evenly across the three read classes.
		switch g.rng.Intn(3) {
		case 0:
			return op{class: classStats, path: g.prefix + "/stats"}
		case 1:
			u, v := g.edge()
			return op{class: classKappa,
				path: fmt.Sprintf("%s/kappa?u=%d&v=%d", g.prefix, u, v)}
		default:
			return op{class: classHist, path: g.prefix + "/histogram"}
		}
	}
	// Write: a batch of edge ops, ~1/4 removals, against the same
	// Zipf-skewed vertex universe — the churn regime of the papers'
	// evolving-network workloads.
	var add, remove []string
	for i := 0; i < g.batch; i++ {
		u, v := g.edge()
		pair := fmt.Sprintf("[%d,%d]", u, v)
		if g.rng.Intn(4) == 0 {
			remove = append(remove, pair)
		} else {
			add = append(add, pair)
		}
	}
	return op{
		class: classWrite,
		path:  g.prefix + "/edges",
		body:  `{"add":[` + strings.Join(add, ",") + `],"remove":[` + strings.Join(remove, ",") + `]}`,
	}
}

// stage is one step of the arrival-rate schedule: rate ops/s held for
// dur.
type stage struct {
	rate float64
	dur  time.Duration
}

// schedule is a piecewise-constant arrival-rate plan.
type schedule struct {
	stages []stage
}

// parseSchedule parses -rate: either a plain number ("2000"), which
// holds that rate for fallback, or a comma-separated ramp of
// rate:duration stages ("500:2s,1000:2s,2000:6s").
func parseSchedule(spec string, fallback time.Duration) (schedule, error) {
	var s schedule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rateStr, durStr, ramped := strings.Cut(part, ":")
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || rate <= 0 {
			return schedule{}, fmt.Errorf("bad rate %q in -rate %q", rateStr, spec)
		}
		dur := fallback
		if ramped {
			dur, err = time.ParseDuration(durStr)
			if err != nil || dur <= 0 {
				return schedule{}, fmt.Errorf("bad duration %q in -rate %q", durStr, spec)
			}
		} else if len(s.stages) > 0 || strings.Contains(spec, ",") {
			return schedule{}, fmt.Errorf("-rate %q: plain rates cannot be combined in a ramp; use rate:duration stages", spec)
		}
		s.stages = append(s.stages, stage{rate: rate, dur: dur})
	}
	if len(s.stages) == 0 {
		return schedule{}, fmt.Errorf("-rate %q: no stages", spec)
	}
	return s, nil
}

// total is the schedule's full duration.
func (s schedule) total() time.Duration {
	var d time.Duration
	for _, st := range s.stages {
		d += st.dur
	}
	return d
}

// rateAt returns the arrival rate in effect at offset off from the run
// start, or 0 past the end of the schedule.
func (s schedule) rateAt(off time.Duration) float64 {
	for _, st := range s.stages {
		if off < st.dur {
			return st.rate
		}
		off -= st.dur
	}
	return 0
}

// describe renders the schedule back into -rate syntax for the report.
func (s schedule) describe() string {
	if len(s.stages) == 1 {
		return strconv.FormatFloat(s.stages[0].rate, 'g', -1, 64)
	}
	parts := make([]string, len(s.stages))
	for i, st := range s.stages {
		parts[i] = fmt.Sprintf("%g:%s", st.rate, st.dur)
	}
	return strings.Join(parts, ",")
}

// parseMix parses -mix "R:W" into the read percentage.
func parseMix(spec string) (int, error) {
	r, w, ok := strings.Cut(spec, ":")
	if !ok {
		return 0, fmt.Errorf("-mix %q: want R:W", spec)
	}
	ri, err1 := strconv.Atoi(strings.TrimSpace(r))
	wi, err2 := strconv.Atoi(strings.TrimSpace(w))
	if err1 != nil || err2 != nil || ri < 0 || wi < 0 || ri+wi == 0 {
		return 0, fmt.Errorf("-mix %q: want nonnegative R:W with R+W > 0", spec)
	}
	return ri * 100 / (ri + wi), nil
}
