package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trikcore"
	"trikcore/internal/server"
)

// writeFile writes content into dir/name and returns the path.
func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs the CLI and returns its stdout.
func capture(t *testing.T, args ...string) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := run(args)
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatalf("run(%v) failed: %v", args, runErr)
	}
	return out
}

// k5edges is a 5-clique edge list plus a pendant path.
const k5edges = `1 2
1 3
1 4
1 5
2 3
2 4
2 5
3 4
3 5
4 5
10 11
11 12
`

func TestCmdStats(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "g.txt", k5edges)
	out := capture(t, "stats", "-in", in)
	for _, want := range []string{"vertices:  8", "edges:     12", "triangles: 10", "max κ:     3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdDecompose(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "g.txt", k5edges)
	out := capture(t, "decompose", "-in", in, "-top", "3", "-k", "3")
	for _, want := range []string{"κ distribution:", "κ=3", "top 3 edges:", "communities at k=3: 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("decompose output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdPlot(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "g.txt", k5edges)
	ascii := capture(t, "plot", "-in", in, "-format", "ascii", "-width", "40", "-height", "8")
	if !strings.Contains(ascii, "#") {
		t.Fatalf("ascii plot empty:\n%s", ascii)
	}
	svgPath := filepath.Join(dir, "plot.svg")
	capture(t, "plot", "-in", in, "-format", "svg", "-out", svgPath)
	data, err := os.ReadFile(svgPath)
	if err != nil || !strings.Contains(string(data), "<svg") {
		t.Fatalf("svg plot not written: %v", err)
	}
}

func TestCmdUpdate(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "g.txt", k5edges)
	ops := writeFile(t, dir, "ops.txt", "# grow the clique\n+ 6 1\n+ 6 2\n+ 6 3\n- 4 5\n")
	out := capture(t, "update", "-in", in, "-ops", ops)
	for _, want := range []string{"applied 3 insertions, 1 deletions", "edges now: 14"} {
		if !strings.Contains(out, want) {
			t.Fatalf("update output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdTemplate(t *testing.T) {
	dir := t.TempDir()
	old := writeFile(t, dir, "old.txt", "1 10\n2 11\n3 12\n4 13\n")
	// All pattern vertices existed in old; the 4-clique is entirely new.
	new := writeFile(t, dir, "new.txt", "1 10\n2 11\n3 12\n4 13\n1 2\n1 3\n1 4\n2 3\n2 4\n3 4\n")
	out := capture(t, "template", "-old", old, "-new", new, "-pattern", "new-form")
	if !strings.Contains(out, "characteristic triangles: 4") {
		t.Fatalf("template output wrong:\n%s", out)
	}
	if !strings.Contains(out, "pattern clique 1: 4 vertices at co_clique_size 4") {
		t.Fatalf("template missed the planted clique:\n%s", out)
	}
}

func TestCmdErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no-args run succeeded")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand succeeded")
	}
	if err := run([]string{"stats", "-in", "/nonexistent/x.txt"}); err == nil {
		t.Fatal("missing input file succeeded")
	}
	dir := t.TempDir()
	in := writeFile(t, dir, "g.txt", "1 2\n")
	if err := run([]string{"plot", "-in", in, "-format", "bogus"}); err == nil {
		t.Fatal("bad plot format succeeded")
	}
	bad := writeFile(t, dir, "ops.txt", "? 1 2\n")
	if err := run([]string{"update", "-in", in, "-ops", bad}); err == nil {
		t.Fatal("bad ops file succeeded")
	}
	if err := run([]string{"template", "-old", in, "-new", in, "-pattern", "bogus"}); err == nil {
		t.Fatal("bad pattern succeeded")
	}
}

func TestCmdHierarchy(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "g.txt", k5edges)
	out := capture(t, "hierarchy", "-in", in)
	for _, want := range []string{"k=1: 10 edges", "k=3: 10 edges, 5 vertices"} {
		if !strings.Contains(out, want) {
			t.Fatalf("hierarchy output missing %q:\n%s", want, out)
		}
	}
	empty := writeFile(t, dir, "empty.txt", "1 2\n2 3\n")
	out = capture(t, "hierarchy", "-in", empty)
	if !strings.Contains(out, "no triangles") {
		t.Fatalf("triangle-free hierarchy output:\n%s", out)
	}
}

func TestBuildServer(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "g.txt", k5edges)
	srv, err := buildServer(in, server.Options{Workers: 4}, true)
	if err != nil || srv == nil {
		t.Fatalf("buildServer: %v", err)
	}
	if _, err := buildServer(filepath.Join(dir, "missing.txt"), server.Options{}, true); err == nil {
		t.Fatal("buildServer with missing file succeeded")
	}
	if srv, err := buildServer("", server.Options{Pprof: true}, true); err != nil || srv == nil {
		t.Fatal("buildServer with empty graph failed")
	}
	// -graphs preloading: good spec, bad pair syntax, missing file.
	srv, err = buildServer("", server.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := preloadGraphs(srv, "extra="+in); err != nil {
		t.Fatalf("preloadGraphs: %v", err)
	}
	if _, ok := srv.Registry().Get("extra"); !ok {
		t.Fatal("preloaded graph missing")
	}
	if err := preloadGraphs(srv, "nopair"); err == nil {
		t.Fatal("bad -graphs pair accepted")
	}
	if err := preloadGraphs(srv, "x="+filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing -graphs file accepted")
	}
}

func TestCmdConvert(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "g.txt", k5edges)
	bin := filepath.Join(dir, "g.tkcg")
	out := capture(t, "convert", "-in", in, "-out", bin)
	if !strings.Contains(out, "converted 8 vertices, 12 edges") {
		t.Fatalf("convert output:\n%s", out)
	}
	back := filepath.Join(dir, "back.txt")
	capture(t, "convert", "-in", bin, "-out", back)
	orig, _ := os.ReadFile(in)
	round, _ := os.ReadFile(back)
	if string(orig) != string(round) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", orig, round)
	}
	if err := run([]string{"convert", "-in", in}); err == nil {
		t.Fatal("convert without -out succeeded")
	}
	if err := run([]string{"convert", "-in", in, "-out", back, "-to", "bogus"}); err == nil {
		t.Fatal("convert with bad format succeeded")
	}
}

func TestCmdConvertCSRStreaming(t *testing.T) {
	dir := t.TempDir()
	// Duplicates and reversed orientations exercise the streaming
	// builder's dedup path.
	in := writeFile(t, dir, "g.txt", k5edges+"2 1\n1 2\n")
	csr := filepath.Join(dir, "g.tkcg")
	out := capture(t, "convert", "-in", in, "-out", csr)
	if !strings.Contains(out, "converted 8 vertices, 12 edges") || !strings.Contains(out, "(csr)") {
		t.Fatalf("convert output:\n%s", out)
	}
	// The default .tkcg layout is now the mapped CSR: OpenMapped must
	// accept it directly.
	m, err := trikcore.OpenMapped(csr)
	if err != nil {
		t.Fatalf("convert did not produce a mapped CSR: %v", err)
	}
	if m.Static().NumEdges() != 12 {
		t.Errorf("mapped view has %d edges, want 12", m.Static().NumEdges())
	}
	m.Close()
	// Round trip back to text through the materializing loader: the
	// duplicate mentions collapse to the canonical edge list.
	back := filepath.Join(dir, "back.txt")
	capture(t, "convert", "-in", csr, "-out", back)
	round, _ := os.ReadFile(back)
	if string(round) != k5edges {
		t.Fatalf("round trip mismatch:\n%s", round)
	}
	// Explicit snapshot layout still available.
	snap := filepath.Join(dir, "snap.tkcg")
	out = capture(t, "convert", "-in", in, "-out", snap, "-to", "binary")
	if !strings.Contains(out, "(binary)") {
		t.Fatalf("snapshot convert output:\n%s", out)
	}
	if _, err := trikcore.OpenMapped(snap); err == nil {
		t.Fatal("snapshot layout opened as mapped CSR")
	}
}

func TestCmdDecomposeExternal(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "g.txt", k5edges)
	want := capture(t, "decompose", "-in", in, "-top", "3")

	// Over the mmap'd CSR with a tiny budget, stdout must be identical
	// to the in-memory run — this is the equivalence CI scripts diff.
	csr := filepath.Join(dir, "g.tkcg")
	capture(t, "convert", "-in", in, "-out", csr)
	got := capture(t, "decompose", "-in", csr, "-external", "-mem-budget", "1024", "-top", "3")
	if got != want {
		t.Fatalf("external decompose output differs from in-memory:\n--- in-memory\n%s--- external\n%s", want, got)
	}
	// And over a plain edge list with the unbounded default budget.
	got = capture(t, "decompose", "-in", in, "-external", "-top", "3")
	if got != want {
		t.Fatalf("resident external decompose output differs:\n%s", got)
	}
	if err := run([]string{"decompose", "-in", csr, "-external", "-k", "2"}); err == nil {
		t.Fatal("-external with -k succeeded")
	}
}

func TestCmdGen(t *testing.T) {
	dir := t.TempDir()
	list := capture(t, "gen", "-list")
	if !strings.Contains(list, "Astro-Author") {
		t.Fatalf("gen -list output:\n%s", list)
	}
	out := filepath.Join(dir, "astro.txt")
	msg := capture(t, "gen", "-dataset", "Astro-Author", "-scale", "0.05", "-out", out)
	if !strings.Contains(msg, "generated Astro-Author at scale 0.05") {
		t.Fatalf("gen output:\n%s", msg)
	}
	g, err := trikcore.LoadEdgeListFile(out)
	if err != nil || g.NumEdges() == 0 {
		t.Fatalf("generated file unusable: %v", err)
	}
	if err := run([]string{"gen", "-dataset", "nope", "-out", out}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run([]string{"gen", "-dataset", "Astro-Author", "-scale", "2", "-out", out}); err == nil {
		t.Fatal("out-of-range scale accepted")
	}
	if err := run([]string{"gen"}); err == nil {
		t.Fatal("gen without flags accepted")
	}
}

func TestCmdPlotCSV(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "g.txt", k5edges)
	out := capture(t, "plot", "-in", in, "-format", "csv")
	if !strings.HasPrefix(out, "position,vertex,height\n") {
		t.Fatalf("csv plot output:\n%s", out)
	}
	if !strings.Contains(out, ",5\n") {
		t.Fatal("csv missing clique heights")
	}
}

func TestCmdEvents(t *testing.T) {
	dir := t.TempDir()
	old := writeFile(t, dir, "old.txt", k5edges)
	// New snapshot: the 5-clique grows by two members.
	grown := k5edges + "6 1\n6 2\n6 3\n6 4\n6 5\n7 1\n7 2\n7 3\n7 4\n7 5\n7 6\n"
	new := writeFile(t, dir, "new.txt", grown)
	out := capture(t, "events", "-old", old, "-new", new, "-k", "3")
	if !strings.Contains(out, "grow") || !strings.Contains(out, "old#0(5v)") || !strings.Contains(out, "new#0(7v)") {
		t.Fatalf("events output:\n%s", out)
	}
	if err := run([]string{"events", "-old", old, "-new", "/nope"}); err == nil {
		t.Fatal("missing new file accepted")
	}
}

func TestCmdDualView(t *testing.T) {
	dir := t.TempDir()
	old := writeFile(t, dir, "old.txt", k5edges)
	grown := k5edges + "6 1\n6 2\n6 3\n6 4\n6 5\n"
	new := writeFile(t, dir, "new.txt", grown)
	svgDir := filepath.Join(dir, "svg")
	out := capture(t, "dualview", "-old", old, "-new", new, "-top", "1", "-svg", svgDir)
	if !strings.Contains(out, "marker 1: peak[h=6 w=6") {
		t.Fatalf("dualview output:\n%s", out)
	}
	for _, name := range []string{"before.svg", "after.svg"} {
		data, err := os.ReadFile(filepath.Join(svgDir, name))
		if err != nil || !strings.Contains(string(data), "<svg") {
			t.Fatalf("%s not written: %v", name, err)
		}
	}
	if err := run([]string{"dualview", "-old", old, "-new", "/nope"}); err == nil {
		t.Fatal("missing file accepted")
	}
}
