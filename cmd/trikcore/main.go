// Command trikcore is the command-line interface to the Triangle K-Core
// library: decomposition, density plots, incremental updates and template
// pattern detection over edge-list files.
//
// Usage:
//
//	trikcore stats     -in graph.txt
//	trikcore decompose -in graph.txt [-top 10] [-k 3]
//	trikcore decompose -in graph.tkcg -external -mem-budget 262144
//	trikcore plot      -in graph.txt [-format ascii|svg] [-out plot.svg]
//	trikcore update    -in graph.txt -ops ops.txt
//	trikcore template  -old old.txt -new new.txt -pattern new-form|bridge|new-join
//	trikcore hierarchy -in graph.txt [-min-edges 3]
//	trikcore dualview  -old old.txt -new new.txt [-svg outdir]
//	trikcore events    -old old.txt -new new.txt -k 3
//	trikcore convert   -in graph.txt -out graph.tkcg [-to text|binary|csr]
//	trikcore gen       -dataset Astro-Author -scale 0.2 -out astro.txt
//	trikcore serve     -in graph.txt -addr :8080 [-pprof] [-quiet]
//	                   [-graphs name=file,...] [-max-graphs N]
//	                   [-max-vertices N] [-max-edges N] [-max-body-bytes N]
//	                   [-shutdown-timeout 5s]
//
// Edge-list files hold one "u v" pair per line ('#' comments allowed).
// Ops files hold one "+ u v" or "- u v" per line.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"slices"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"trikcore"
	"trikcore/internal/obs/trace"
	"trikcore/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trikcore:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: trikcore <stats|decompose|plot|update|template|hierarchy|dualview|events|convert|gen|serve> [flags]")
	}
	switch args[0] {
	case "stats":
		return cmdStats(args[1:])
	case "decompose":
		return cmdDecompose(args[1:])
	case "plot":
		return cmdPlot(args[1:])
	case "update":
		return cmdUpdate(args[1:])
	case "template":
		return cmdTemplate(args[1:])
	case "hierarchy":
		return cmdHierarchy(args[1:])
	case "dualview":
		return cmdDualView(args[1:])
	case "events":
		return cmdEvents(args[1:])
	case "convert":
		return cmdConvert(args[1:])
	case "gen":
		return cmdGen(args[1:])
	case "serve":
		return cmdServe(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	in := fs.String("in", "", "input edge-list file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := trikcore.LoadEdgeListFile(*in)
	if err != nil {
		return err
	}
	fmt.Printf("vertices:  %d\n", g.NumVertices())
	fmt.Printf("edges:     %d\n", g.NumEdges())
	fmt.Printf("triangles: %d\n", trikcore.TriangleCount(g))
	d := trikcore.Decompose(g)
	fmt.Printf("max κ:     %d (max clique proxy %d)\n", d.MaxKappa, d.MaxKappa+2)
	kc := trikcore.VertexKCore(g)
	fmt.Printf("degeneracy: %d\n", kc.MaxCore)
	return nil
}

func cmdDecompose(args []string) error {
	fs := flag.NewFlagSet("decompose", flag.ContinueOnError)
	in := fs.String("in", "", "input file (.txt edge list or .tkcg CSR)")
	top := fs.Int("top", 10, "print the top-N edges by κ")
	k := fs.Int("k", -1, "also list triangle-connected communities at level k (in-memory only)")
	external := fs.Bool("external", false, "out-of-core decomposition: partitioned bottom-up peel under -mem-budget")
	memBudget := fs.Int64("mem-budget", 0, "resident peel-state budget in bytes for -external (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *external {
		if *k >= 0 {
			return fmt.Errorf("community listing (-k) needs the in-memory path; drop -external")
		}
		return decomposeExternal(*in, *memBudget, *top)
	}
	g, err := loadGraphFile(*in)
	if err != nil {
		return err
	}
	d := trikcore.Decompose(g)
	printKappaHistogram(d.KappaHistogram())
	var all []edgeKappa
	for e, kv := range d.EdgeKappas() {
		all = append(all, edgeKappa{e, kv})
	}
	printTopEdges(all, *top)
	if *k >= 0 {
		comms := d.Communities(int32(*k))
		fmt.Printf("communities at k=%d: %d\n", *k, len(comms))
		for i, c := range comms {
			fmt.Printf("  community %d: %d edges\n", i+1, len(c))
		}
	}
	return nil
}

// decomposeExternal is the -external arm of cmdDecompose: .tkcg inputs
// are mmap'd (never parsed onto the heap), the peel runs partitioned
// under the byte budget, and the κ report is formatted exactly like the
// in-memory arm so the two can be diffed.
func decomposeExternal(in string, budget int64, top int) error {
	s, closer, err := loadStaticFile(in)
	if err != nil {
		return err
	}
	if closer != nil {
		defer closer.Close()
	}
	res, err := trikcore.DecomposeExternal(s, trikcore.ExternalOptions{MemBudget: budget})
	if err != nil {
		return err
	}
	hist := make(map[int32]int)
	for _, kv := range res.Kappa {
		hist[kv]++
	}
	printKappaHistogram(hist)
	all := make([]edgeKappa, len(res.Kappa))
	for i, kv := range res.Kappa {
		u, v := s.Endpoints(int32(i))
		all[i] = edgeKappa{trikcore.Edge{U: s.OrigID[u], V: s.OrigID[v]}, int(kv)}
	}
	printTopEdges(all, top)
	st := res.Stats
	fmt.Fprintf(os.Stderr,
		"trikcore: external peel: %d partitions, %d levels, %d sweeps, %d activations, %d spill records (%d bytes), peak resident %d bytes\n",
		st.Partitions, st.Levels, st.Sweeps, st.Activations, st.SpillRecords, st.SpillBytes, st.PeakResidentBytes)
	return nil
}

// loadGraphFile loads either format into a mutable graph.
func loadGraphFile(path string) (*trikcore.Graph, error) {
	if strings.HasSuffix(path, ".tkcg") {
		return trikcore.LoadBinaryFile(path)
	}
	return trikcore.LoadEdgeListFile(path)
}

// loadStaticFile produces a frozen view of the input: mapped .tkcg
// files alias the page cache (the closer unmaps them), text edge lists
// are parsed and frozen.
func loadStaticFile(path string) (*trikcore.StaticGraph, interface{ Close() error }, error) {
	if strings.HasSuffix(path, ".tkcg") {
		m, err := trikcore.OpenMapped(path)
		if err == nil {
			return m.Static(), m, nil
		}
		if !errors.Is(err, trikcore.ErrCorruptGraphFile) {
			// Snapshot-layout .tkcg: fall back to parsing it.
			g, gerr := trikcore.LoadBinaryFile(path)
			if gerr != nil {
				return nil, nil, gerr
			}
			return trikcore.FreezeGraph(g), nil, nil
		}
		return nil, nil, err
	}
	g, err := trikcore.LoadEdgeListFile(path)
	if err != nil {
		return nil, nil, err
	}
	return trikcore.FreezeGraph(g), nil, nil
}

func printKappaHistogram(hist map[int32]int) {
	var ks []int32
	for kv := range hist {
		ks = append(ks, kv)
	}
	slices.Sort(ks)
	fmt.Println("κ distribution:")
	for _, kv := range ks {
		fmt.Printf("  κ=%-4d %d edges\n", kv, hist[kv])
	}
}

// edgeKappa pairs an edge (original vertex ids) with its κ for the
// top-N report.
type edgeKappa struct {
	e trikcore.Edge
	k int
}

func printTopEdges(all []edgeKappa, top int) {
	sort.Slice(all, func(i, j int) bool {
		if all[i].k != all[j].k {
			return all[i].k > all[j].k
		}
		return all[i].e.Less(all[j].e)
	})
	if top > len(all) {
		top = len(all)
	}
	fmt.Printf("top %d edges:\n", top)
	for _, x := range all[:top] {
		fmt.Printf("  %-12s κ=%d\n", x.e, x.k)
	}
}

func cmdPlot(args []string) error {
	fs := flag.NewFlagSet("plot", flag.ContinueOnError)
	in := fs.String("in", "", "input edge-list file")
	format := fs.String("format", "ascii", "ascii, svg or csv")
	out := fs.String("out", "", "output file (default stdout)")
	width := fs.Int("width", 100, "ascii plot width")
	height := fs.Int("height", 20, "ascii plot height")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := trikcore.LoadEdgeListFile(*in)
	if err != nil {
		return err
	}
	s := trikcore.DensityPlot(g, trikcore.Decompose(g))
	var rendered string
	switch *format {
	case "ascii":
		rendered = trikcore.RenderASCII(s, *width, *height)
	case "svg":
		rendered = trikcore.RenderSVG(s, trikcore.SVGOptions{Title: *in})
	case "csv":
		var sb strings.Builder
		if err := s.WriteCSV(&sb); err != nil {
			return err
		}
		rendered = sb.String()
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if *out == "" {
		fmt.Print(rendered)
		return nil
	}
	return os.WriteFile(*out, []byte(rendered), 0o644)
}

func cmdUpdate(args []string) error {
	fs := flag.NewFlagSet("update", flag.ContinueOnError)
	in := fs.String("in", "", "input edge-list file")
	ops := fs.String("ops", "", "operations file: '+ u v' inserts, '- u v' deletes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := trikcore.LoadEdgeListFile(*in)
	if err != nil {
		return err
	}
	f, err := os.Open(*ops)
	if err != nil {
		return err
	}
	defer f.Close()
	// Parse the whole ops file into one batch; ApplyBatch dedups repeated
	// mentions of an edge (last op wins) and applies deletions first.
	var batch []trikcore.EdgeOp
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return fmt.Errorf("ops line %d: want '<+|-> u v'", line)
		}
		u, err1 := strconv.ParseInt(fields[1], 10, 32)
		v, err2 := strconv.ParseInt(fields[2], 10, 32)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("ops line %d: bad vertex", line)
		}
		if u == v {
			return fmt.Errorf("ops line %d: self-loop on vertex %d", line, u)
		}
		switch fields[0] {
		case "+":
			batch = append(batch, trikcore.EdgeOp{U: trikcore.Vertex(u), V: trikcore.Vertex(v)})
		case "-":
			batch = append(batch, trikcore.EdgeOp{U: trikcore.Vertex(u), V: trikcore.Vertex(v), Del: true})
		default:
			return fmt.Errorf("ops line %d: unknown op %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	en := trikcore.NewEngine(g)
	added, removed := en.ApplyBatch(batch)
	st := en.Stats()
	fmt.Printf("applied %d insertions, %d deletions\n", added, removed)
	fmt.Printf("triangles processed: %d, edges visited: %d\n", st.TrianglesProcessed, st.EdgesVisited)
	fmt.Printf("promotions: %d, demotions: %d\n", st.Promotions, st.Demotions)
	fmt.Printf("edges now: %d, max κ: %d\n", en.NumEdges(), en.MaxKappa())
	return nil
}

func cmdTemplate(args []string) error {
	fs := flag.NewFlagSet("template", flag.ContinueOnError)
	oldPath := fs.String("old", "", "old snapshot edge-list file")
	newPath := fs.String("new", "", "new snapshot edge-list file")
	pattern := fs.String("pattern", "new-form", "new-form, bridge or new-join")
	top := fs.Int("top", 3, "report the top-N pattern cliques")
	if err := fs.Parse(args); err != nil {
		return err
	}
	old, err := trikcore.LoadEdgeListFile(*oldPath)
	if err != nil {
		return err
	}
	new, err := trikcore.LoadEdgeListFile(*newPath)
	if err != nil {
		return err
	}
	nov := trikcore.EvolvingNovelty(old, new)
	var spec trikcore.TemplateSpec
	switch *pattern {
	case "new-form":
		spec = trikcore.NewFormPattern(nov)
	case "bridge":
		spec = trikcore.BridgePattern(nov)
	case "new-join":
		spec = trikcore.NewJoinPattern(nov)
	default:
		return fmt.Errorf("unknown pattern %q", *pattern)
	}
	res := trikcore.DetectTemplate(new, spec)
	fmt.Printf("characteristic triangles: %d\n", len(res.Characteristic))
	fmt.Printf("possible triangles:       %d\n", len(res.Possible))
	fmt.Printf("special subgraph:         %d vertices, %d edges\n",
		res.Special.NumVertices(), res.Special.NumEdges())
	for i, pk := range res.TopCliques(*top, 3) {
		fmt.Printf("pattern clique %d: %d vertices at co_clique_size %d: %v\n",
			i+1, pk.Width(), pk.Height, pk.Vertices)
	}
	return nil
}

func cmdHierarchy(args []string) error {
	fs := flag.NewFlagSet("hierarchy", flag.ContinueOnError)
	in := fs.String("in", "", "input edge-list file")
	minEdges := fs.Int("min-edges", 1, "hide communities with fewer edges")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := trikcore.LoadEdgeListFile(*in)
	if err != nil {
		return err
	}
	d := trikcore.Decompose(g)
	roots := d.Hierarchy()
	if len(roots) == 0 {
		fmt.Println("no triangles: empty hierarchy")
		return nil
	}
	var render func(n *trikcore.HierarchyNode, indent string)
	render = func(n *trikcore.HierarchyNode, indent string) {
		if n.Size() < *minEdges {
			return
		}
		verts := n.Vertices()
		fmt.Printf("%sk=%d: %d edges, %d vertices", indent, n.K, n.Size(), len(verts))
		if len(verts) <= 12 {
			fmt.Printf(" %v", verts)
		}
		fmt.Println()
		for _, c := range n.Children {
			render(c, indent+"  ")
		}
	}
	for _, r := range roots {
		render(r, "")
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	in := fs.String("in", "", "edge-list file for the default graph (optional; empty graph if omitted)")
	addr := fs.String("addr", ":8080", "listen address")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	quiet := fs.Bool("quiet", false, "disable per-request structured logs")
	workers := fs.Int("workers", 1, "worker goroutines for parallel batch maintenance (1 = serial)")
	graphs := fs.String("graphs", "", "additional graphs to host, comma-separated name=edgelist pairs")
	maxGraphs := fs.Int("max-graphs", 0, "cap on hosted graph spaces (0 = default 64, negative = unlimited)")
	maxVertices := fs.Int("max-vertices", 0, "per-graph vertex quota (0 = unlimited)")
	maxEdges := fs.Int("max-edges", 0, "per-graph edge quota (0 = unlimited)")
	maxBody := fs.Int64("max-body-bytes", 0, "per-request write body cap in bytes (0 = default 16 MiB)")
	drain := fs.Duration("shutdown-timeout", 5*time.Second, "graceful shutdown drain timeout")
	traceRing := fs.Int("trace-ring", 0, "flight-recorder retention per ring (0 = tracing off); serves GET /debug/trace")
	slowMS := fs.Duration("slow-ms", 0, "log traced requests at least this slow (0 = off; needs -trace-ring)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := server.Options{
		Pprof:     *pprofOn,
		Workers:   *workers,
		MaxGraphs: *maxGraphs,
		Quotas: trikcore.GraphQuotas{
			MaxVertices:  *maxVertices,
			MaxEdges:     *maxEdges,
			MaxBodyBytes: *maxBody,
		},
	}
	if *traceRing > 0 {
		topts := trace.Options{Ring: *traceRing, SlowThreshold: *slowMS}
		if *slowMS > 0 {
			topts.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
		}
		opts.Trace = trace.New(topts)
	}
	srv, err := buildServer(*in, opts, *quiet)
	if err != nil {
		return err
	}
	if err := preloadGraphs(srv, *graphs); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "trikcore: serving on %s (metrics on /metrics)\n", *addr)

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Fprintf(os.Stderr, "trikcore: shutting down (drain timeout %s)\n", *drain)
	// End every SSE stream first — a change-feed subscriber would
	// otherwise hold Shutdown open until the timeout expired.
	srv.Close()
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return errors.Join(err, hs.Close())
	}
	return nil
}

// preloadGraphs creates the -graphs spaces: "name=file" pairs, comma
// separated.
func preloadGraphs(srv *server.Server, spec string) error {
	if spec == "" {
		return nil
	}
	for _, pair := range strings.Split(spec, ",") {
		name, path, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("bad -graphs entry %q, want name=file", pair)
		}
		g, err := trikcore.LoadEdgeListFile(path)
		if err != nil {
			return err
		}
		if _, err := srv.Registry().Create(name, g); err != nil {
			return err
		}
	}
	return nil
}

// buildServer loads the optional initial graph and wraps it in the HTTP
// service as the default graph space. Served instances are always
// metered (GET /metrics); request logging and pprof are flag-controlled.
func buildServer(in string, opts server.Options, quiet bool) (*server.Server, error) {
	g := trikcore.NewGraph()
	if in != "" {
		loaded, err := trikcore.LoadEdgeListFile(in)
		if err != nil {
			return nil, err
		}
		g = loaded
	}
	opts.Registry = trikcore.NewMetricsRegistry()
	if !quiet {
		opts.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	return server.NewWith(g, opts), nil
}

// cmdConvert translates between the text edge-list format and the two
// .tkcg layouts, inferring direction from extensions unless -to is
// given. Text → csr streams through BuildMappedFile in two passes
// without materializing the edge set, so inputs larger than RAM
// convert in O(|V|) resident space.
func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	in := fs.String("in", "", "input file (.txt edge list or .tkcg)")
	out := fs.String("out", "", "output file")
	to := fs.String("to", "", "output format: text, binary (varint snapshot) or csr (mmap-friendly; default for .tkcg output)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("convert needs -in and -out")
	}
	format := *to
	if format == "" {
		if strings.HasSuffix(*out, ".tkcg") {
			format = "csr"
		} else {
			format = "text"
		}
	}
	if format == "csr" && !strings.HasSuffix(*in, ".tkcg") {
		st, err := trikcore.ConvertEdgeListToCSR(*in, *out)
		if err != nil {
			return err
		}
		fmt.Printf("converted %d vertices, %d edges to %s (%s)\n", st.Vertices, st.Edges, *out, format)
		return nil
	}
	g, err := loadGraphFile(*in)
	if err != nil {
		return err
	}
	switch format {
	case "csr":
		err = trikcore.SaveCSRFile(*out, trikcore.FreezeGraph(g))
	case "binary":
		err = trikcore.SaveBinaryFile(*out, g)
	case "text":
		err = trikcore.SaveEdgeListFile(*out, g)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	fmt.Printf("converted %d vertices, %d edges to %s (%s)\n", g.NumVertices(), g.NumEdges(), *out, format)
	return nil
}

// cmdGen materializes one of the paper's Table I dataset stand-ins as
// an edge-list file, for pipelines (and CI) that need a deterministic
// paper-scale fixture without shipping one.
func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	name := fs.String("dataset", "", "Table I dataset name (see -list)")
	scale := fs.Float64("scale", 1, "fraction of the stand-in's target size to generate")
	out := fs.String("out", "", "output edge-list file")
	list := fs.Bool("list", false, "list available datasets and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, d := range trikcore.Datasets() {
			fmt.Printf("%-14s target |V|=%d |E|=%d  %s\n", d.Name, d.TargetV(), d.TargetE(), d.Description)
		}
		return nil
	}
	if *name == "" || *out == "" {
		return fmt.Errorf("gen needs -dataset and -out (or -list)")
	}
	d, ok := trikcore.DatasetByName(*name)
	if !ok {
		return fmt.Errorf("unknown dataset %q (try gen -list)", *name)
	}
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("-scale %g outside (0, 1]", *scale)
	}
	g := d.GenerateAt(*scale)
	if err := trikcore.SaveEdgeListFile(*out, g); err != nil {
		return err
	}
	fmt.Printf("generated %s at scale %g: %d vertices, %d edges to %s\n",
		d.Name, *scale, g.NumVertices(), g.NumEdges(), *out)
	return nil
}

// cmdEvents classifies community evolution between two snapshots.
func cmdEvents(args []string) error {
	fs := flag.NewFlagSet("events", flag.ContinueOnError)
	oldPath := fs.String("old", "", "old snapshot edge-list file")
	newPath := fs.String("new", "", "new snapshot edge-list file")
	k := fs.Int("k", 2, "community level (κ ≥ k)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	old, err := trikcore.LoadEdgeListFile(*oldPath)
	if err != nil {
		return err
	}
	new, err := trikcore.LoadEdgeListFile(*newPath)
	if err != nil {
		return err
	}
	oldC, newC, evs := trikcore.DetectEvents(old, new, int32(*k), trikcore.EventOptions{})
	fmt.Printf("communities at k=%d: %d old, %d new\n", *k, len(oldC), len(newC))
	for _, e := range evs {
		fmt.Printf("  %-9s", e.Type)
		for _, i := range e.Before {
			fmt.Printf(" old#%d(%dv)", i, len(oldC[i].Vertices))
		}
		if len(e.Before) > 0 && len(e.After) > 0 {
			fmt.Print(" →")
		}
		for _, j := range e.After {
			fmt.Printf(" new#%d(%dv)", j, len(newC[j].Vertices))
		}
		fmt.Println()
	}
	return nil
}

// cmdDualView builds the Algorithm 3 dual-view plots between two
// snapshots and reports the correspondence markers.
func cmdDualView(args []string) error {
	fs := flag.NewFlagSet("dualview", flag.ContinueOnError)
	oldPath := fs.String("old", "", "old snapshot edge-list file")
	newPath := fs.String("new", "", "new snapshot edge-list file")
	top := fs.Int("top", 3, "number of changed structures to mark")
	outDir := fs.String("svg", "", "directory for before/after SVG plots (optional)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	old, err := trikcore.LoadEdgeListFile(*oldPath)
	if err != nil {
		return err
	}
	new, err := trikcore.LoadEdgeListFile(*newPath)
	if err != nil {
		return err
	}
	dv := trikcore.BuildDualView(old, new, trikcore.DualViewOptions{TopK: *top})
	fmt.Print(dv.Summary())
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		before := trikcore.RenderSVG(dv.Before, trikcore.SVGOptions{
			Title: "before (all cliques)", Markers: dv.BeforeMarkersForSVG()})
		after := trikcore.RenderSVG(dv.After, trikcore.SVGOptions{
			Title: "after (changed cliques)", Markers: dv.MarkersForSVG()})
		if err := os.WriteFile(filepath.Join(*outDir, "before.svg"), []byte(before), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(*outDir, "after.svg"), []byte(after), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s and %s\n", filepath.Join(*outDir, "before.svg"), filepath.Join(*outDir, "after.svg"))
	}
	return nil
}
