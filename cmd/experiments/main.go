// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic dataset stand-ins.
//
// Usage:
//
//	experiments                      # run everything at full Table I scale
//	experiments -run tableII         # one experiment
//	experiments -run tableII,figure7 # several
//	experiments -scale 0.05          # quick pass at 5% of dataset sizes
//	experiments -plots out/          # also write SVG renderings
//	experiments -format markdown     # markdown instead of aligned text
//
// Full-scale runs build multi-million-edge graphs and take minutes on a
// laptop; -scale 0.05 exercises every code path in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"trikcore/internal/expt"
	"trikcore/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	runFlag := flag.String("run", "all", "comma-separated experiment ids, or 'all': "+strings.Join(expt.IDs(), ", "))
	scale := flag.Float64("scale", 1.0, "fraction of the paper's dataset sizes to build (0 < scale <= 1)")
	runs := flag.Int("runs", 5, "repetitions for timing experiments")
	plots := flag.String("plots", "", "directory for SVG figure renderings (optional)")
	format := flag.String("format", "text", "output format: text or markdown")
	htmlOut := flag.String("html", "", "also write a standalone HTML report to this file")
	extras := flag.Bool("extras", false, "with -run all, also run the non-paper extra experiments")
	csvLimit := flag.Int("csv-limit", 950_000, "max edges for the CSV baseline (default skips the three largest datasets, as in the paper)")
	dnLimit := flag.Int("dn-limit", 950_000, "max edges for the DN-Graph baselines (same cut)")
	flag.Parse()

	cfg := expt.Config{
		Scale:        *scale,
		Runs:         *runs,
		PlotDir:      *plots,
		Log:          os.Stderr,
		CSVEdgeLimit: *csvLimit,
		DNEdgeLimit:  *dnLimit,
	}

	var ids []string
	if *runFlag == "all" {
		ids = expt.IDs()
		if *extras {
			for _, r := range expt.Extras() {
				ids = append(ids, r.ID)
			}
		}
	} else {
		ids = strings.Split(*runFlag, ",")
	}
	rep := report.Report{
		Title:    "Triangle K-Core reproduction",
		Subtitle: fmt.Sprintf("scale %.3g, %d timing runs", cfg.Scale, cfg.Runs),
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		r, ok := expt.RunnerByID(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (have: %s)", id, strings.Join(expt.IDs(), ", "))
		}
		tab, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		switch *format {
		case "markdown":
			fmt.Println(tab.Markdown())
		case "text":
			fmt.Println(tab.Text())
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
		rep.Sections = append(rep.Sections, report.Section{
			ID: id, Caption: r.Caption, Table: tab, SVGs: plotSVGs(*plots, id),
		})
	}
	if *htmlOut != "" {
		html, err := report.Render(rep)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*htmlOut, []byte(html), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *htmlOut)
	}
	return nil
}

// plotSVGs loads the SVG figures the given experiment wrote into the
// plots directory (files named "<id>_*.svg").
func plotSVGs(dir, id string) []string {
	if dir == "" {
		return nil
	}
	paths, _ := filepath.Glob(filepath.Join(dir, id+"_*.svg"))
	sort.Strings(paths)
	var out []string
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err == nil {
			out = append(out, string(data))
		}
	}
	return out
}
