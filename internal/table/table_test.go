package table

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:  "Demo",
		Header: []string{"name", "count", "ratio"},
	}
	t.AddRow("alpha", 10, 0.5)
	t.AddRow("beta|pipe", 200, 1.25)
	t.AddNote("a note with %d args", 2)
	return t
}

func TestText(t *testing.T) {
	out := sample().Text()
	for _, want := range []string{"Demo", "====", "name", "alpha", "200", "note: a note with 2 args"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Text() missing %q:\n%s", want, out)
		}
	}
	// Columns align: every data line has the header's column positions.
	lines := strings.Split(out, "\n")
	headerIdx := strings.Index(lines[2], "count")
	rowIdx := strings.Index(lines[4], "10")
	if headerIdx != rowIdx {
		t.Fatalf("columns misaligned: header at %d, row at %d\n%s", headerIdx, rowIdx, out)
	}
}

func TestMarkdown(t *testing.T) {
	out := sample().Markdown()
	for _, want := range []string{"### Demo", "| name | count | ratio |", "|---|---|---|", `beta\|pipe`, "*a note with 2 args*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Markdown() missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyAndRagged(t *testing.T) {
	empty := &Table{Header: []string{"a"}}
	if !strings.Contains(empty.Text(), "a") {
		t.Fatal("empty table text broken")
	}
	ragged := &Table{Header: []string{"a", "b"}}
	ragged.Rows = append(ragged.Rows, []string{"only-one"})
	if !strings.Contains(ragged.Text(), "only-one") {
		t.Fatal("ragged row dropped")
	}
	if !strings.Contains(ragged.Markdown(), "only-one") {
		t.Fatal("ragged markdown dropped")
	}
}

func TestAddRowFormatting(t *testing.T) {
	tab := &Table{Header: []string{"x"}}
	tab.AddRow(3.14159265)
	if tab.Rows[0][0] != "3.142" {
		t.Fatalf("float formatting = %q", tab.Rows[0][0])
	}
	tab.AddRow(int64(7))
	if tab.Rows[1][0] != "7" {
		t.Fatalf("int formatting = %q", tab.Rows[1][0])
	}
}
