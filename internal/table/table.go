// Package table renders small result tables as aligned text or GitHub
// markdown — the reporting format of the experiment harness.
package table

import (
	"fmt"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, stringifying each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// widths returns the per-column maximum cell width.
func (t *Table) widths() []int {
	w := make([]int, len(t.Header))
	grow := func(row []string) {
		for i, c := range row {
			if i >= len(w) {
				w = append(w, 0)
			}
			if n := len([]rune(c)); n > w[i] {
				w[i] = n
			}
		}
	}
	grow(t.Header)
	for _, r := range t.Rows {
		grow(r)
	}
	return w
}

// Text renders the table as aligned plain text.
func (t *Table) Text() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", t.Title, strings.Repeat("=", len([]rune(t.Title))))
	}
	w := t.widths()
	writeRow := func(row []string) {
		for i := range w {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(&b, "%-*s", w[i], cell)
			if i < len(w)-1 {
				b.WriteString("  ")
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(w))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	writeRow := func(row []string) {
		b.WriteString("|")
		for i := range t.Header {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(&b, " %s |", strings.ReplaceAll(cell, "|", `\|`))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	b.WriteString("|")
	for range t.Header {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
