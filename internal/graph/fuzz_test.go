package graph

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadEdgeList checks the text parser never panics and that every
// accepted graph round-trips through the writer.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("1 2\n2 3\n")
	f.Add("# comment\n5 6 extra\n")
	f.Add("")
	f.Add("-1 -2\n")
	f.Add("99999999999999999 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(bytes.NewReader([]byte(input)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
			t.Fatal("text round trip changed the edge set")
		}
	})
}

// FuzzReadBinary checks the binary parser never panics and that every
// accepted snapshot round-trips bit-exactly.
func FuzzReadBinary(f *testing.F) {
	good := func(g *Graph) []byte {
		var buf bytes.Buffer
		WriteBinary(&buf, g)
		return buf.Bytes()
	}
	f.Add(good(FromPairs(1, 2, 2, 3, 3, 1)))
	f.Add(good(New()))
	f.Add([]byte("TKCG\x01"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("accepted snapshot failed to serialize: %v", err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if !reflect.DeepEqual(g.Edges(), g2.Edges()) ||
			!reflect.DeepEqual(g.Vertices(), g2.Vertices()) {
			t.Fatal("binary round trip changed the graph")
		}
	})
}
