package graph

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadEdgeList checks the text parser never panics and that every
// accepted graph round-trips through the writer.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("1 2\n2 3\n")
	f.Add("# comment\n5 6 extra\n")
	f.Add("")
	f.Add("-1 -2\n")
	f.Add("99999999999999999 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(bytes.NewReader([]byte(input)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
			t.Fatal("text round trip changed the edge set")
		}
	})
}

// FuzzFreezeStatic feeds parsed edge lists through the parallel CSR build
// and checks the frozen view's structural invariants: row/edge counts
// match the source graph, every AdjEdgeID entry round-trips through
// EdgeIndex, and per-edge Support sums to three times TriangleCount.
func FuzzFreezeStatic(f *testing.F) {
	f.Add("1 2\n2 3\n3 1\n")
	f.Add("0 1\n")
	f.Add("")
	f.Add("5 1\n5 2\n5 3\n1 2\n2 3\n1 3\n")
	f.Add("10 20\n20 30\n30 10\n10 40\n40 20\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(bytes.NewReader([]byte(input)))
		if err != nil {
			return
		}
		s := FreezeStatic(g)
		if s.NumVertices() != g.NumVertices() || s.NumEdges() != g.NumEdges() {
			t.Fatalf("view %d/%d vs graph %d/%d vertices/edges",
				s.NumVertices(), s.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		var supportSum int64
		for i := int32(0); i < int32(s.NumEdges()); i++ {
			u, v := s.EdgeU[i], s.EdgeV[i]
			if u >= v {
				t.Fatalf("edge %d not canonical: (%d,%d)", i, u, v)
			}
			if got := s.EdgeIndex(u, v); got != i {
				t.Fatalf("EdgeIndex(%d,%d) = %d, want %d", u, v, got, i)
			}
			e := s.EdgeAt(i)
			if want := g.SupportE(e); s.Support(i) != want {
				t.Fatalf("Support(%v) = %d, graph says %d", e, s.Support(i), want)
			}
			supportSum += int64(s.Support(i))
		}
		if supportSum != 3*s.TriangleCount() {
			t.Fatalf("support sum %d != 3×%d triangles", supportSum, s.TriangleCount())
		}
		for u := int32(0); u < int32(s.NumVertices()); u++ {
			row := s.Neighbors(u)
			for k, w := range row {
				id := s.AdjEdgeID[s.RowPtr[u]+int32(k)]
				a, b := u, w
				if a > b {
					a, b = b, a
				}
				if s.EdgeU[id] != a || s.EdgeV[id] != b {
					t.Fatalf("AdjEdgeID[%d] of row %d = edge %d (%d,%d), want (%d,%d)",
						k, u, id, s.EdgeU[id], s.EdgeV[id], a, b)
				}
			}
		}
	})
}

// FuzzReadBinary checks the binary parser never panics and that every
// accepted snapshot round-trips bit-exactly.
func FuzzReadBinary(f *testing.F) {
	good := func(g *Graph) []byte {
		var buf bytes.Buffer
		WriteBinary(&buf, g)
		return buf.Bytes()
	}
	f.Add(good(FromPairs(1, 2, 2, 3, 3, 1)))
	f.Add(good(New()))
	f.Add([]byte("TKCG\x01"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("accepted snapshot failed to serialize: %v", err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if !reflect.DeepEqual(g.Edges(), g2.Edges()) ||
			!reflect.DeepEqual(g.Vertices(), g2.Vertices()) {
			t.Fatal("binary round trip changed the graph")
		}
	})
}
