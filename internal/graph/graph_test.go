package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewEdgeCanonical(t *testing.T) {
	e := NewEdge(5, 2)
	if e.U != 2 || e.V != 5 {
		t.Fatalf("NewEdge(5,2) = %v, want 2-5", e)
	}
	if NewEdge(2, 5) != e {
		t.Fatalf("NewEdge not order-independent")
	}
}

func TestNewEdgeSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEdge(3,3) did not panic")
		}
	}()
	NewEdge(3, 3)
}

func TestEdgeOther(t *testing.T) {
	e := NewEdge(1, 9)
	if e.Other(1) != 9 || e.Other(9) != 1 {
		t.Fatalf("Other wrong: %d %d", e.Other(1), e.Other(9))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	e.Other(5)
}

func TestEdgeHasAndLess(t *testing.T) {
	e := NewEdge(3, 7)
	if !e.Has(3) || !e.Has(7) || e.Has(5) {
		t.Fatal("Edge.Has wrong")
	}
	if !NewEdge(1, 2).Less(NewEdge(1, 3)) || !NewEdge(1, 9).Less(NewEdge(2, 3)) {
		t.Fatal("Edge.Less wrong")
	}
	if NewEdge(2, 3).Less(NewEdge(2, 3)) {
		t.Fatal("Less not strict")
	}
}

func TestTriangleCanonicalAndAccessors(t *testing.T) {
	tr := NewTriangle(9, 1, 5)
	if tr.A != 1 || tr.B != 5 || tr.C != 9 {
		t.Fatalf("NewTriangle(9,1,5) = %v", tr)
	}
	edges := tr.Edges()
	want := [3]Edge{{1, 5}, {1, 9}, {5, 9}}
	if edges != want {
		t.Fatalf("Edges() = %v, want %v", edges, want)
	}
	if !tr.Has(5) || tr.Has(2) {
		t.Fatal("Triangle.Has wrong")
	}
	if !tr.HasEdge(NewEdge(1, 9)) || tr.HasEdge(NewEdge(1, 2)) {
		t.Fatal("Triangle.HasEdge wrong")
	}
	if tr.ThirdVertex(NewEdge(1, 5)) != 9 {
		t.Fatalf("ThirdVertex = %d, want 9", tr.ThirdVertex(NewEdge(1, 5)))
	}
	if tr.ThirdVertex(NewEdge(5, 9)) != 1 {
		t.Fatalf("ThirdVertex = %d, want 1", tr.ThirdVertex(NewEdge(5, 9)))
	}
}

func TestTriangleDegeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("degenerate triangle did not panic")
		}
	}()
	NewTriangle(1, 1, 2)
}

func TestTriangleThirdVertexPanicsOnForeignEdge(t *testing.T) {
	tr := NewTriangle(1, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("ThirdVertex on foreign edge did not panic")
		}
	}()
	tr.ThirdVertex(NewEdge(4, 5))
}

func TestAddRemoveEdgeBasics(t *testing.T) {
	g := New()
	if !g.AddEdge(1, 2) {
		t.Fatal("AddEdge(1,2) returned false")
	}
	if g.AddEdge(2, 1) {
		t.Fatal("duplicate AddEdge returned true")
	}
	if g.NumEdges() != 1 || g.NumVertices() != 2 {
		t.Fatalf("got %d edges, %d vertices", g.NumEdges(), g.NumVertices())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("HasEdge not symmetric")
	}
	if !g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge returned false")
	}
	if g.RemoveEdge(1, 2) {
		t.Fatal("double RemoveEdge returned true")
	}
	if g.NumEdges() != 0 || !g.HasVertex(1) || !g.HasVertex(2) {
		t.Fatal("RemoveEdge should keep endpoints")
	}
}

func TestAddEdgeSelfLoopPanics(t *testing.T) {
	g := New()
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop AddEdge did not panic")
		}
	}()
	g.AddEdge(4, 4)
}

func TestRemoveVertex(t *testing.T) {
	g := FromPairs(1, 2, 1, 3, 2, 3, 3, 4)
	if !g.RemoveVertex(3) {
		t.Fatal("RemoveVertex returned false")
	}
	if g.RemoveVertex(3) {
		t.Fatal("double RemoveVertex returned true")
	}
	if g.NumEdges() != 1 || g.NumVertices() != 3 {
		t.Fatalf("after removal: %d edges, %d vertices", g.NumEdges(), g.NumVertices())
	}
	if !g.HasEdge(1, 2) || g.HasEdge(1, 3) || g.HasEdge(3, 4) {
		t.Fatal("wrong surviving edges")
	}
}

func TestVerticesAndEdgesSorted(t *testing.T) {
	g := FromPairs(5, 3, 1, 5, 3, 1)
	wantV := []Vertex{1, 3, 5}
	if got := g.Vertices(); !reflect.DeepEqual(got, wantV) {
		t.Fatalf("Vertices() = %v, want %v", got, wantV)
	}
	wantE := []Edge{{1, 3}, {1, 5}, {3, 5}}
	if got := g.Edges(); !reflect.DeepEqual(got, wantE) {
		t.Fatalf("Edges() = %v, want %v", got, wantE)
	}
}

func TestCommonNeighborsAndSupport(t *testing.T) {
	// Triangle 1-2-3 plus a pendant 4 off vertex 1, plus 4-2 making a
	// second triangle on edge 1-2.
	g := FromPairs(1, 2, 1, 3, 2, 3, 1, 4, 2, 4)
	if got := g.CommonNeighbors(1, 2); !reflect.DeepEqual(got, []Vertex{3, 4}) {
		t.Fatalf("CommonNeighbors(1,2) = %v", got)
	}
	if s := g.Support(1, 2); s != 2 {
		t.Fatalf("Support(1,2) = %d, want 2", s)
	}
	if s := g.Support(1, 3); s != 1 {
		t.Fatalf("Support(1,3) = %d, want 1", s)
	}
	if s := g.SupportE(NewEdge(3, 2)); s != 1 {
		t.Fatalf("SupportE(2,3) = %d, want 1", s)
	}
}

func TestForEachTriangleOn(t *testing.T) {
	g := FromPairs(1, 2, 1, 3, 2, 3, 1, 4, 2, 4)
	var tris []Triangle
	g.ForEachTriangleOn(1, 2, func(tr Triangle) bool {
		tris = append(tris, tr)
		return true
	})
	if len(tris) != 2 {
		t.Fatalf("got %d triangles on edge 1-2, want 2", len(tris))
	}
	seen := map[Triangle]bool{}
	for _, tr := range tris {
		seen[tr] = true
	}
	if !seen[NewTriangle(1, 2, 3)] || !seen[NewTriangle(1, 2, 4)] {
		t.Fatalf("wrong triangles: %v", tris)
	}
}

func TestEarlyTermination(t *testing.T) {
	g := FromPairs(1, 2, 1, 3, 1, 4, 1, 5)
	n := 0
	g.ForEachNeighbor(1, func(Vertex) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("ForEachNeighbor early stop visited %d", n)
	}
	n = 0
	g.ForEachEdge(func(Edge) bool { n++; return false })
	if n != 1 {
		t.Fatalf("ForEachEdge early stop visited %d", n)
	}
	n = 0
	g.ForEachVertex(func(Vertex) bool { n++; return false })
	if n != 1 {
		t.Fatalf("ForEachVertex early stop visited %d", n)
	}
}

func TestClone(t *testing.T) {
	g := FromPairs(1, 2, 2, 3, 3, 1)
	c := g.Clone()
	c.RemoveEdge(1, 2)
	c.AddEdge(3, 4)
	if !g.HasEdge(1, 2) || g.HasEdge(3, 4) {
		t.Fatal("Clone is not independent of original")
	}
	if g.NumEdges() != 3 || c.NumEdges() != 3 {
		t.Fatalf("edge counts wrong: %d %d", g.NumEdges(), c.NumEdges())
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := FromPairs(1, 9, 1, 3, 1, 7)
	if got := g.NeighborsSorted(1); !reflect.DeepEqual(got, []Vertex{3, 7, 9}) {
		t.Fatalf("NeighborsSorted = %v", got)
	}
	if got := g.NeighborsSorted(42); len(got) != 0 {
		t.Fatalf("NeighborsSorted of absent vertex = %v", got)
	}
}

func TestFromPairsOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd FromPairs did not panic")
		}
	}()
	FromPairs(1, 2, 3)
}

// randomGraph builds a G(n, p)-style random graph with the given seed.
func randomGraph(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	for i := 0; i < n; i++ {
		g.AddVertex(Vertex(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(Vertex(i), Vertex(j))
			}
		}
	}
	return g
}

func TestQuickEdgeCountConsistency(t *testing.T) {
	// Property: after any sequence of add/remove operations, NumEdges
	// matches the length of Edges(), and degree sums to twice NumEdges.
	f := func(ops []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		for _, op := range ops {
			u := Vertex(op % 23)
			v := Vertex((op / 23) % 23)
			if u == v {
				continue
			}
			if rng.Intn(3) == 0 {
				g.RemoveEdge(u, v)
			} else {
				g.AddEdge(u, v)
			}
		}
		if len(g.Edges()) != g.NumEdges() {
			return false
		}
		degSum := 0
		g.ForEachVertex(func(v Vertex) bool { degSum += g.Degree(v); return true })
		return degSum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSupportSymmetricAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(18, 0.3, seed)
		ok := true
		g.ForEachEdge(func(e Edge) bool {
			s := g.Support(e.U, e.V)
			if s != g.Support(e.V, e.U) {
				ok = false
				return false
			}
			if s > g.Degree(e.U)-1 || s > g.Degree(e.V)-1 {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges([]Edge{NewEdge(2, 1), NewEdge(1, 2), NewEdge(3, 4)})
	if g.NumEdges() != 2 || !g.HasEdge(1, 2) || !g.HasEdge(3, 4) {
		t.Fatalf("FromEdges built %d edges", g.NumEdges())
	}
}
