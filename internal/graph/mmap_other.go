//go:build !unix

package graph

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// fileMap is a byte view of a file region. On platforms without
// syscall.Mmap it degrades to a heap buffer: reads load the file once,
// and writable builds buffer in memory and write back on unmap. The
// mapped format stays byte-identical across platforms; only the
// residency guarantee is weaker.
type fileMap struct {
	data     []byte
	f        *os.File
	writable bool
}

func mapFile(f *os.File, size int64, writable bool) (*fileMap, error) {
	if size <= 0 {
		return nil, fmt.Errorf("graph: cannot map %d bytes of %s", size, f.Name())
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("graph: %s is too large to buffer on this platform (%d bytes)", f.Name(), size)
	}
	data := make([]byte, int(size))
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, fmt.Errorf("graph: reading %s: %w", f.Name(), err)
	}
	return &fileMap{data: data, f: f, writable: writable}, nil
}

// unmap writes a writable buffer back and closes the underlying file.
func (fm *fileMap) unmap() error {
	if fm.data == nil {
		return nil
	}
	var err error
	if fm.writable {
		if _, werr := fm.f.WriteAt(fm.data, 0); werr != nil {
			err = fmt.Errorf("graph: writing back %s: %w", fm.f.Name(), werr)
		}
	}
	fm.data = nil
	return errors.Join(err, fm.f.Close())
}
