package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// checkFrozen verifies the full Static contract on a frozen view: CSR
// shape, sorted rows, endpoint/edge-id cross-consistency, the edgeOf
// projection back to dense ids, and structural agreement with an
// independent Graph-based freeze of the same substrate.
func checkFrozen(t *testing.T, d *Dense, s *Static, edgeOf []int32) {
	t.Helper()
	if s.NumVertices() != d.NumVertices() || s.NumEdges() != d.NumEdges() {
		t.Fatalf("size mismatch: frozen %d/%d vs dense %d/%d",
			s.NumVertices(), s.NumEdges(), d.NumVertices(), d.NumEdges())
	}
	if len(edgeOf) != s.NumEdges() {
		t.Fatalf("len(edgeOf) = %d, want %d", len(edgeOf), s.NumEdges())
	}
	n := s.NumVertices()
	if s.RowPtr[0] != 0 || int(s.RowPtr[n]) != 2*s.NumEdges() {
		t.Fatalf("RowPtr endpoints %d..%d, want 0..%d", s.RowPtr[0], s.RowPtr[n], 2*s.NumEdges())
	}
	for u := int32(0); u < int32(n); u++ {
		row := s.Neighbors(u)
		base := s.RowPtr[u]
		for k, w := range row {
			if k > 0 && row[k-1] >= w {
				t.Fatalf("row %d not strictly sorted at %d", u, k)
			}
			eid := s.AdjEdgeID[base+int32(k)]
			a, b := u, w
			if a > b {
				a, b = b, a
			}
			if s.EdgeU[eid] != a || s.EdgeV[eid] != b {
				t.Fatalf("AdjEdgeID row %d nbr %d: edge %d has endpoints (%d,%d), want (%d,%d)",
					u, w, eid, s.EdgeU[eid], s.EdgeV[eid], a, b)
			}
		}
	}
	for i := range s.EdgeU {
		if s.EdgeU[i] >= s.EdgeV[i] {
			t.Fatalf("EdgeU ≥ EdgeV at edge %d", i)
		}
		if got, want := s.EdgeAt(int32(i)), d.EdgeAt(edgeOf[i]); got != want {
			t.Fatalf("edgeOf[%d]: frozen edge %v, dense edge %v", i, got, want)
		}
	}
	for p, v := range s.OrigID {
		if s.Pos[v] != int32(p) {
			t.Fatalf("Pos[%d] = %d, want %d", v, s.Pos[v], p)
		}
		if !d.HasVertex(v) {
			t.Fatalf("frozen vertex %d not live in dense", v)
		}
	}
	// Structural parity with the Graph-based freeze: triangle census and
	// every per-edge support agree, independent of edge-id numbering.
	ref := FreezeStatic(d.Materialize())
	if got, want := s.TriangleCount(), ref.TriangleCount(); got != want {
		t.Fatalf("TriangleCount = %d, want %d", got, want)
	}
	for i := range s.EdgeU {
		e := s.EdgeAt(int32(i))
		ri := ref.EdgeIndex(ref.Pos[e.U], ref.Pos[e.V])
		if ri < 0 {
			t.Fatalf("edge %v missing from reference freeze", e)
		}
		if got, want := s.Support(int32(i)), ref.Support(ri); got != want {
			t.Fatalf("Support(%v) = %d, want %d", e, got, want)
		}
	}
}

// TestFreezePreservesDenseIDs checks that freezing a hole-free Dense is
// the identity relabeling: every array of the view matches a Graph-based
// FreezeStatic exactly (the dense ids were adopted from one), and edgeOf
// is the identity.
func TestFreezePreservesDenseIDs(t *testing.T) {
	g := FromPairs(1, 2, 2, 3, 3, 1, 3, 4, 4, 5, 5, 3, 1, 9)
	d := NewDenseFromStatic(FreezeStatic(g))
	s, edgeOf := d.Freeze()
	if want := FreezeStatic(g); !reflect.DeepEqual(s, want) {
		t.Fatalf("hole-free Freeze differs from FreezeStatic:\ngot  %+v\nwant %+v", s, want)
	}
	for i, deid := range edgeOf {
		if int32(i) != deid {
			t.Fatalf("edgeOf[%d] = %d, want identity", i, deid)
		}
	}
	checkFrozen(t, d, s, edgeOf)
}

// TestFreezeCompactsFreeSlots punches holes in both free lists (a removed
// mid-range edge and a removed vertex) and checks the frozen view is
// hole-free and structurally exact.
func TestFreezeCompactsFreeSlots(t *testing.T) {
	d := NewDense()
	for u := Vertex(1); u <= 5; u++ {
		for v := u + 1; v <= 5; v++ {
			d.AddEdgeV(u, v)
		}
	}
	d.AddEdgeV(5, 10)
	d.RemoveEdgeByID(d.EdgeIDV(2, 4))
	d.RemoveEdgeByID(d.EdgeIDV(5, 10))
	d.RemoveVertexV(10)
	if d.EdgeCap() == d.NumEdges() || d.VertexCap() == d.NumVertices() {
		t.Fatal("test graph has no holes to compact")
	}
	s, edgeOf := d.Freeze()
	checkFrozen(t, d, s, edgeOf)
}

// TestFreezeRandomChurn freezes after a long randomized insert/delete
// stream (so the free lists are thoroughly shuffled), checks the contract,
// then keeps churning and verifies the frozen view never moves.
func TestFreezeRandomChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewDense()
	const nv = 20
	churn := func(steps int) {
		for i := 0; i < steps; i++ {
			u := Vertex(rng.Intn(nv))
			v := Vertex(rng.Intn(nv))
			if u == v {
				continue
			}
			if eid := d.EdgeIDV(u, v); eid >= 0 {
				d.RemoveEdgeByID(eid)
			} else {
				d.AddEdgeV(u, v)
			}
		}
	}
	churn(1500)
	s, edgeOf := d.Freeze()
	checkFrozen(t, d, s, edgeOf)

	// The view shares nothing with the substrate.
	tris := s.TriangleCount()
	adj := append([]int32(nil), s.AdjNbr...)
	churn(300)
	if s.TriangleCount() != tris || !reflect.DeepEqual(adj, s.AdjNbr) {
		t.Fatal("frozen view changed under substrate churn")
	}
}
