package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDiffGraphsBasic(t *testing.T) {
	old := FromPairs(1, 2, 2, 3)
	new := FromPairs(2, 3, 3, 4)
	new.AddVertex(50)
	d := DiffGraphs(old, new)
	if !reflect.DeepEqual(d.AddedEdges, []Edge{{3, 4}}) {
		t.Fatalf("AddedEdges = %v", d.AddedEdges)
	}
	if !reflect.DeepEqual(d.RemovedEdges, []Edge{{1, 2}}) {
		t.Fatalf("RemovedEdges = %v", d.RemovedEdges)
	}
	if !reflect.DeepEqual(d.AddedVertices, []Vertex{4, 50}) {
		t.Fatalf("AddedVertices = %v", d.AddedVertices)
	}
	if !reflect.DeepEqual(d.RemovedVertices, []Vertex{1}) {
		t.Fatalf("RemovedVertices = %v", d.RemovedVertices)
	}
	if d.Empty() {
		t.Fatal("non-trivial diff reported Empty")
	}
	if !DiffGraphs(old, old).Empty() {
		t.Fatal("self diff not empty")
	}
}

func TestDiffSets(t *testing.T) {
	d := Diff{AddedEdges: []Edge{{1, 2}}, AddedVertices: []Vertex{7}}
	if !d.AddedEdgeSet()[NewEdge(2, 1)] {
		t.Fatal("AddedEdgeSet missing edge")
	}
	if !d.AddedVertexSet()[7] || d.AddedVertexSet()[8] {
		t.Fatal("AddedVertexSet wrong")
	}
}

func TestDiffApplyRoundTrip(t *testing.T) {
	// Property: DiffGraphs(old, new).Apply(old') turns a copy of old into
	// a graph with exactly new's edges (vertex sets may differ only by
	// isolated vertices kept after edge removal — Apply removes vertices
	// explicitly removed in the diff, so sets match exactly).
	f := func(seedOld, seedNew int64) bool {
		old := randomGraph(15, 0.25, seedOld)
		new := randomGraph(17, 0.2, seedNew)
		d := DiffGraphs(old, new)
		work := old.Clone()
		d.Apply(work)
		return reflect.DeepEqual(work.Edges(), new.Edges()) &&
			reflect.DeepEqual(work.Vertices(), new.Vertices())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDiffApplyWithChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	old := randomGraph(30, 0.15, 1)
	new := old.Clone()
	for i := 0; i < 40; i++ {
		u, v := Vertex(rng.Intn(30)), Vertex(rng.Intn(30))
		if u == v {
			continue
		}
		if rng.Intn(2) == 0 {
			new.AddEdge(u, v)
		} else {
			new.RemoveEdge(u, v)
		}
	}
	d := DiffGraphs(old, new)
	work := old.Clone()
	d.Apply(work)
	if !reflect.DeepEqual(work.Edges(), new.Edges()) {
		t.Fatal("Apply did not reproduce the new edge set")
	}
}
