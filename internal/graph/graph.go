// Package graph provides the dynamic undirected graph substrate used by all
// triangle k-core algorithms in this repository.
//
// The central type is Graph, a mutable, undirected simple graph over int32
// vertex identifiers. It supports O(1) expected-time edge insertion,
// deletion and membership queries, and exposes the triangle primitives
// (common-neighbor iteration, edge support) on which truss-style
// decompositions are built.
//
// For read-mostly bulk algorithms (the static decomposition in
// internal/core), FreezeStatic converts a Graph into a compact
// array-based Static view with sorted adjacency, positional vertex ids and
// dense edge indexing.
package graph

import (
	"fmt"
	"slices"
)

// Vertex identifies a graph vertex. Identifiers are arbitrary non-negative
// int32 values supplied by the caller; they need not be contiguous.
type Vertex = int32

// Edge is an undirected edge in canonical form (U < V). Construct edges
// with NewEdge to guarantee canonical ordering; Edge values built directly
// must satisfy U < V or graph operations will misbehave.
type Edge struct {
	U, V Vertex
}

// NewEdge returns the canonical form of the undirected edge {u, v}.
// It panics if u == v: self-loops are not representable, and silently
// accepting one would corrupt triangle counts.
func NewEdge(u, v Vertex) Edge {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", u))
	}
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e.
func (e Edge) Other(v Vertex) Vertex {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d not an endpoint of edge %v", v, e))
}

// Has reports whether v is an endpoint of e.
func (e Edge) Has(v Vertex) bool { return e.U == v || e.V == v }

// String renders the edge as "u-v".
func (e Edge) String() string { return fmt.Sprintf("%d-%d", e.U, e.V) }

// Less orders edges lexicographically by (U, V).
func (e Edge) Less(o Edge) bool {
	if e.U != o.U {
		return e.U < o.U
	}
	return e.V < o.V
}

// compareEdges is the three-way form of Edge.Less for slices.SortFunc.
func compareEdges(a, b Edge) int {
	if a.U != b.U {
		return int(a.U) - int(b.U)
	}
	return int(a.V) - int(b.V)
}

// Triangle is an unordered vertex triple in canonical form (A < B < C).
type Triangle struct {
	A, B, C Vertex
}

// NewTriangle returns the canonical form of the triangle {a, b, c}.
// It panics if the vertices are not pairwise distinct.
func NewTriangle(a, b, c Vertex) Triangle {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	if a == b || b == c {
		panic("graph: degenerate triangle")
	}
	return Triangle{A: a, B: b, C: c}
}

// Edges returns the three edges of the triangle in canonical order.
func (t Triangle) Edges() [3]Edge {
	return [3]Edge{
		{U: t.A, V: t.B},
		{U: t.A, V: t.C},
		{U: t.B, V: t.C},
	}
}

// Has reports whether v is a vertex of t.
func (t Triangle) Has(v Vertex) bool { return t.A == v || t.B == v || t.C == v }

// HasEdge reports whether e is one of t's edges.
func (t Triangle) HasEdge(e Edge) bool {
	return t.Has(e.U) && t.Has(e.V)
}

// ThirdVertex returns the vertex of t that is not an endpoint of e.
// It panics if e is not an edge of t.
func (t Triangle) ThirdVertex(e Edge) Vertex {
	if !t.HasEdge(e) {
		panic(fmt.Sprintf("graph: edge %v not in triangle %v", e, t))
	}
	switch {
	case !e.Has(t.A):
		return t.A
	case !e.Has(t.B):
		return t.B
	default:
		return t.C
	}
}

// String renders the triangle as "(a,b,c)".
func (t Triangle) String() string { return fmt.Sprintf("(%d,%d,%d)", t.A, t.B, t.C) }

// Graph is a mutable undirected simple graph. The zero value is not usable;
// construct graphs with New. Graph is not safe for concurrent mutation;
// concurrent reads are safe.
type Graph struct {
	adj   map[Vertex]map[Vertex]struct{}
	edges int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[Vertex]map[Vertex]struct{})}
}

// NewWithCapacity returns an empty graph with capacity hints for the number
// of vertices it is expected to hold.
func NewWithCapacity(vertices int) *Graph {
	return &Graph{adj: make(map[Vertex]map[Vertex]struct{}, vertices)}
}

// NumVertices returns the number of vertices currently in the graph.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of edges currently in the graph.
func (g *Graph) NumEdges() int { return g.edges }

// HasVertex reports whether v is present.
func (g *Graph) HasVertex(v Vertex) bool {
	_, ok := g.adj[v]
	return ok
}

// AddVertex ensures v is present (possibly isolated). It reports whether the
// vertex was newly added.
func (g *Graph) AddVertex(v Vertex) bool {
	if _, ok := g.adj[v]; ok {
		return false
	}
	g.adj[v] = make(map[Vertex]struct{})
	return true
}

// RemoveVertex removes v and all incident edges. It reports whether the
// vertex was present.
func (g *Graph) RemoveVertex(v Vertex) bool {
	nbrs, ok := g.adj[v]
	if !ok {
		return false
	}
	for w := range nbrs {
		delete(g.adj[w], v)
		g.edges--
	}
	delete(g.adj, v)
	return true
}

// AddEdge inserts the undirected edge {u, v}, creating endpoints as needed.
// It reports whether the edge was newly added. It panics on self-loops.
func (g *Graph) AddEdge(u, v Vertex) bool {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", u))
	}
	g.AddVertex(u)
	g.AddVertex(v)
	if _, ok := g.adj[u][v]; ok {
		return false
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.edges++
	return true
}

// AddEdgeE is AddEdge for a canonical Edge value.
func (g *Graph) AddEdgeE(e Edge) bool { return g.AddEdge(e.U, e.V) }

// RemoveEdge deletes the undirected edge {u, v} if present and reports
// whether it was removed. Endpoints are kept even if they become isolated.
func (g *Graph) RemoveEdge(u, v Vertex) bool {
	if _, ok := g.adj[u][v]; !ok {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.edges--
	return true
}

// RemoveEdgeE is RemoveEdge for a canonical Edge value.
func (g *Graph) RemoveEdgeE(e Edge) bool { return g.RemoveEdge(e.U, e.V) }

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v Vertex) bool {
	_, ok := g.adj[u][v]
	return ok
}

// HasEdgeE is HasEdge for a canonical Edge value.
func (g *Graph) HasEdgeE(e Edge) bool { return g.HasEdge(e.U, e.V) }

// Degree returns the number of neighbors of v (0 if absent).
func (g *Graph) Degree(v Vertex) int { return len(g.adj[v]) }

// ForEachNeighbor calls fn for every neighbor of v in unspecified order.
// If fn returns false the iteration stops early.
func (g *Graph) ForEachNeighbor(v Vertex, fn func(w Vertex) bool) {
	for w := range g.adj[v] {
		if !fn(w) {
			return
		}
	}
}

// NeighborsSorted returns the neighbors of v in ascending order.
func (g *Graph) NeighborsSorted(v Vertex) []Vertex {
	nbrs := g.adj[v]
	out := make([]Vertex, 0, len(nbrs))
	for w := range nbrs {
		out = append(out, w)
	}
	slices.Sort(out)
	return out
}

// Vertices returns all vertex identifiers in ascending order.
func (g *Graph) Vertices() []Vertex {
	out := make([]Vertex, 0, len(g.adj))
	for v := range g.adj {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// ForEachVertex calls fn for every vertex in unspecified order. If fn
// returns false the iteration stops early.
func (g *Graph) ForEachVertex(fn func(v Vertex) bool) {
	for v := range g.adj {
		if !fn(v) {
			return
		}
	}
}

// Edges returns all edges in canonical form sorted by (U, V).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u, nbrs := range g.adj {
		for v := range nbrs {
			if u < v {
				out = append(out, Edge{U: u, V: v})
			}
		}
	}
	slices.SortFunc(out, compareEdges)
	return out
}

// ForEachEdge calls fn for every edge in unspecified order. If fn returns
// false the iteration stops early.
func (g *Graph) ForEachEdge(fn func(e Edge) bool) {
	for u, nbrs := range g.adj {
		for v := range nbrs {
			if u < v {
				if !fn(Edge{U: u, V: v}) {
					return
				}
			}
		}
	}
}

// ForEachCommonNeighbor calls fn for every common neighbor of u and v,
// iterating over the smaller adjacency set. Order is unspecified. If fn
// returns false the iteration stops early.
func (g *Graph) ForEachCommonNeighbor(u, v Vertex, fn func(w Vertex) bool) {
	nu, nv := g.adj[u], g.adj[v]
	if len(nu) > len(nv) {
		nu, nv = nv, nu
	}
	for w := range nu {
		if _, ok := nv[w]; ok {
			if !fn(w) {
				return
			}
		}
	}
}

// CommonNeighbors returns the common neighbors of u and v in ascending
// order.
func (g *Graph) CommonNeighbors(u, v Vertex) []Vertex {
	var out []Vertex
	g.ForEachCommonNeighbor(u, v, func(w Vertex) bool {
		out = append(out, w)
		return true
	})
	slices.Sort(out)
	return out
}

// Support returns the number of triangles containing the edge {u, v},
// i.e. |N(u) ∩ N(v)|. It returns 0 if the edge is absent (the count is
// still the size of the common neighborhood of u and v if both exist).
func (g *Graph) Support(u, v Vertex) int {
	n := 0
	g.ForEachCommonNeighbor(u, v, func(Vertex) bool { n++; return true })
	return n
}

// SupportE is Support for a canonical Edge value.
func (g *Graph) SupportE(e Edge) int { return g.Support(e.U, e.V) }

// ForEachTriangleOn calls fn for every triangle containing the edge
// {u, v}. Order is unspecified. If fn returns false the iteration stops
// early.
func (g *Graph) ForEachTriangleOn(u, v Vertex, fn func(t Triangle) bool) {
	g.ForEachCommonNeighbor(u, v, func(w Vertex) bool {
		return fn(NewTriangle(u, v, w))
	})
}

// ForEachTriangleEdge calls fn for every triangle on the edge {u, v},
// passing the third vertex and the triangle's other two edges {u, w} and
// {v, w} in canonical form — the mutable-graph counterpart of
// Static.ForEachTriangleEdge. Order is unspecified. If fn returns false
// the iteration stops early.
func (g *Graph) ForEachTriangleEdge(u, v Vertex, fn func(w Vertex, e1, e2 Edge) bool) {
	g.ForEachCommonNeighbor(u, v, func(w Vertex) bool {
		return fn(w, NewEdge(u, w), NewEdge(v, w))
	})
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewWithCapacity(len(g.adj))
	for v, nbrs := range g.adj {
		m := make(map[Vertex]struct{}, len(nbrs))
		for w := range nbrs {
			m[w] = struct{}{}
		}
		c.adj[v] = m
	}
	c.edges = g.edges
	return c
}

// FromEdges builds a graph from a list of edges; duplicate edges are
// ignored.
func FromEdges(edges []Edge) *Graph {
	g := New()
	for _, e := range edges {
		g.AddEdge(e.U, e.V)
	}
	return g
}

// FromPairs builds a graph from flat (u, v) pairs. It panics if the slice
// has odd length.
func FromPairs(pairs ...Vertex) *Graph {
	if len(pairs)%2 != 0 {
		panic("graph: FromPairs needs an even number of vertices")
	}
	g := New()
	for i := 0; i < len(pairs); i += 2 {
		g.AddEdge(pairs[i], pairs[i+1])
	}
	return g
}
