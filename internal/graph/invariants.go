package graph

import "fmt"

// CheckInvariants verifies the structural invariants of the dense
// substrate the dynamic engine and the trikcheck runtime assertions rely
// on, returning the first violation found (nil when consistent):
//
//   - the intern tables round-trip: every external id in pos maps to a
//     live slot holding it in orig, live slot counts match nv, and every
//     non-live slot is on the vertex free list exactly once;
//   - every adjacency row is strictly sorted by neighbor (the property
//     the galloping triangle merge and binary edge lookups require), has
//     no self-entries, and rows of dead vertices are empty;
//   - adjacency is symmetric: entry (w, eid) in row u implies entry
//     (u, eid) in row w, both matching the edge's endpoint arrays;
//   - edge slots partition into live edges (counted by ne, each present
//     in exactly its two endpoint rows) and free-list slots.
//
// It is O(V + E log deg). Under the trikdebug build tag every mutating
// operation asserts it; see debugAssert.
func (d *Dense) CheckInvariants() error {
	n := len(d.orig)
	if len(d.vlive) != n || len(d.rows) != n {
		return fmt.Errorf("graph: vertex arrays disagree: %d orig, %d vlive, %d rows",
			n, len(d.vlive), len(d.rows))
	}
	if len(d.edgeU) != len(d.edgeV) {
		return fmt.Errorf("graph: endpoint arrays disagree: %d edgeU, %d edgeV", len(d.edgeU), len(d.edgeV))
	}

	// Vertex liveness and intern tables.
	if len(d.pos) != d.nv {
		return fmt.Errorf("graph: pos tracks %d vertices, nv = %d", len(d.pos), d.nv)
	}
	liveV := 0
	for p := range d.vlive {
		if d.vlive[p] {
			liveV++
			continue
		}
		if len(d.rows[p]) != 0 {
			return fmt.Errorf("graph: dead vertex slot %d has %d row entries", p, len(d.rows[p]))
		}
	}
	if liveV != d.nv {
		return fmt.Errorf("graph: %d slots live, nv = %d", liveV, d.nv)
	}
	for v, p := range d.pos {
		if int(p) < 0 || int(p) >= n || !d.vlive[p] || d.orig[p] != v {
			return fmt.Errorf("graph: intern tables do not round-trip vertex %d (slot %d)", v, p)
		}
	}
	freeVSeen := make(map[int32]bool, len(d.freeV))
	for _, p := range d.freeV {
		if int(p) < 0 || int(p) >= n || d.vlive[p] || freeVSeen[p] {
			return fmt.Errorf("graph: vertex free list corrupt at slot %d", p)
		}
		freeVSeen[p] = true
	}
	if liveV+len(d.freeV) != n {
		return fmt.Errorf("graph: %d live + %d free vertex slots, capacity %d", liveV, len(d.freeV), n)
	}

	// Edge free list.
	freeESeen := make(map[int32]bool, len(d.freeE))
	for _, eid := range d.freeE {
		if int(eid) < 0 || int(eid) >= len(d.edgeU) || d.edgeU[eid] >= 0 || freeESeen[eid] {
			return fmt.Errorf("graph: edge free list corrupt at id %d", eid)
		}
		freeESeen[eid] = true
	}
	liveE := 0
	for eid := range d.edgeU {
		if d.edgeU[eid] >= 0 {
			liveE++
		} else if !freeESeen[int32(eid)] { //trikcheck:checked eid indexes edgeU, whose growth AddEdgeV bounds to int32
			return fmt.Errorf("graph: dead edge slot %d missing from free list", eid)
		}
	}
	if liveE != d.ne {
		return fmt.Errorf("graph: %d edge slots live, ne = %d", liveE, d.ne)
	}
	if liveE+len(d.freeE) != len(d.edgeU) {
		return fmt.Errorf("graph: %d live + %d free edge slots, capacity %d", liveE, len(d.freeE), len(d.edgeU))
	}

	// Rows: sortedness, symmetry, endpoint agreement.
	entries := 0
	for p := range d.rows {
		u := int32(p) //trikcheck:checked p indexes rows, whose growth Intern bounds to int32
		row := d.rows[p]
		entries += len(row)
		for i, packed := range row {
			w := int32(packed >> 32)
			eid := int32(uint32(packed))
			if i > 0 && row[i-1]>>32 >= packed>>32 {
				return fmt.Errorf("graph: row %d not strictly sorted at index %d", u, i)
			}
			if w == u {
				return fmt.Errorf("graph: row %d holds a self-entry", u)
			}
			if int(w) < 0 || int(w) >= n || !d.vlive[w] {
				return fmt.Errorf("graph: row %d references dead vertex %d", u, w)
			}
			if int(eid) < 0 || int(eid) >= len(d.edgeU) || d.edgeU[eid] < 0 {
				return fmt.Errorf("graph: row %d references dead edge %d", u, eid)
			}
			a, b := u, w
			if a > b {
				a, b = b, a
			}
			if d.edgeU[eid] != a || d.edgeV[eid] != b {
				return fmt.Errorf("graph: edge %d endpoints (%d, %d) disagree with row entry {%d, %d}",
					eid, d.edgeU[eid], d.edgeV[eid], u, w)
			}
			at, ok := packedSearch(d.rows[w], u)
			if !ok || int32(uint32(d.rows[w][at])) != eid {
				return fmt.Errorf("graph: edge %d in row %d has no mirror in row %d", eid, u, w)
			}
		}
	}
	if entries != 2*d.ne {
		return fmt.Errorf("graph: rows hold %d entries, ne = %d", entries, d.ne)
	}
	return nil
}

// debugAssert panics on the first invariant violation when the trikdebug
// build tag is set, and compiles to nothing otherwise. Every mutating
// Dense operation calls it on exit.
func (d *Dense) debugAssert() {
	if !debugChecks {
		return
	}
	if err := d.CheckInvariants(); err != nil {
		panic("trikdebug: " + err.Error())
	}
}
