package graph

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

// staticsEqual reports whether two Static views hold identical arrays.
func staticsEqual(t *testing.T, got, want *Static) {
	t.Helper()
	if !slices.Equal(got.OrigID, want.OrigID) {
		t.Errorf("OrigID differs: got %v want %v", got.OrigID, want.OrigID)
	}
	check := func(name string, g, w []int32) {
		t.Helper()
		if !slices.Equal(g, w) {
			t.Errorf("%s differs: got %v want %v", name, g, w)
		}
	}
	check("RowPtr", got.RowPtr, want.RowPtr)
	check("AdjNbr", got.AdjNbr, want.AdjNbr)
	check("AdjEdgeID", got.AdjEdgeID, want.AdjEdgeID)
	check("EdgeU", got.EdgeU, want.EdgeU)
	check("EdgeV", got.EdgeV, want.EdgeV)
	check("OutPtr", got.OutPtr, want.OutPtr)
	check("OutNbr", got.OutNbr, want.OutNbr)
	check("OutEdgeID", got.OutEdgeID, want.OutEdgeID)
	if len(got.Pos) != len(want.Pos) {
		t.Errorf("Pos has %d entries, want %d", len(got.Pos), len(want.Pos))
	}
	for v, p := range want.Pos {
		if got.Pos[v] != p {
			t.Errorf("Pos[%d] = %d, want %d", v, got.Pos[v], p)
		}
	}
}

func TestWriteMappedOpenMappedRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"k4", completeGraph(4)},
		{"sparse", randomGraph(60, 0.1, 1)},
		{"dense", randomGraph(40, 0.5, 2)},
		{"noncontiguous", func() *Graph {
			g := New()
			g.AddEdge(100, 7)
			g.AddEdge(7, 2000)
			g.AddEdge(100, 2000)
			g.AddEdge(5, 100)
			return g
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := FreezeStatic(tc.g)
			path := filepath.Join(t.TempDir(), "g.tkcg")
			if err := WriteMapped(path, want); err != nil {
				t.Fatalf("WriteMapped: %v", err)
			}
			m, err := OpenMapped(path)
			if err != nil {
				t.Fatalf("OpenMapped: %v", err)
			}
			defer m.Close()
			staticsEqual(t, m.Static(), want)
			if m.SizeBytes() <= 0 {
				t.Errorf("SizeBytes = %d, want > 0", m.SizeBytes())
			}
			if m.Path() != path {
				t.Errorf("Path = %q, want %q", m.Path(), path)
			}
		})
	}
}

func TestBuildMappedFileMatchesFreeze(t *testing.T) {
	g := randomGraph(80, 0.15, 3)
	dir := t.TempDir()
	in := filepath.Join(dir, "edges.txt")

	// Write the edge list with duplicates, reversed orientations and
	// comments sprinkled in: the builder must normalize all of it.
	var sb strings.Builder
	sb.WriteString("# comment line\n% another\n\n")
	for i, e := range g.Edges() {
		if i%3 == 0 {
			fmt.Fprintf(&sb, "%d %d\n", e.V, e.U) // reversed
		}
		fmt.Fprintf(&sb, "%d %d\n", e.U, e.V)
		if i%5 == 0 {
			fmt.Fprintf(&sb, "%d %d\n", e.U, e.V) // duplicate
		}
	}
	if err := os.WriteFile(in, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "g.tkcg")
	stats, err := BuildMappedFile(in, out)
	if err != nil {
		t.Fatalf("BuildMappedFile: %v", err)
	}
	if stats.Vertices != g.NumVertices() || stats.Edges != g.NumEdges() {
		t.Errorf("stats = %d vertices %d edges, want %d and %d",
			stats.Vertices, stats.Edges, g.NumVertices(), g.NumEdges())
	}
	if stats.Mentions <= int64(g.NumEdges()) {
		t.Errorf("Mentions = %d, want > %d (duplicates counted)", stats.Mentions, g.NumEdges())
	}

	m, err := OpenMapped(out)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	defer m.Close()
	staticsEqual(t, m.Static(), FreezeStatic(g))
	if _, err := os.Stat(out + ".rows"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("scratch rows file survived the build: stat err = %v", err)
	}

	// The built file must be byte-identical to WriteMapped of the frozen
	// view: one canonical encoding per graph.
	direct := filepath.Join(dir, "direct.tkcg")
	if err := WriteMapped(direct, FreezeStatic(g)); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("BuildMappedFile and WriteMapped produced different bytes for the same graph")
	}
}

func TestBuildMappedFileRejectsSelfLoop(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "edges.txt")
	if err := os.WriteFile(in, []byte("1 2\n3 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildMappedFile(in, filepath.Join(dir, "g.tkcg")); err == nil {
		t.Fatal("BuildMappedFile accepted a self-loop")
	}
}

func TestOpenMappedCorruption(t *testing.T) {
	g := randomGraph(30, 0.2, 4)
	path := filepath.Join(t.TempDir(), "g.tkcg")
	if err := WriteMapped(path, FreezeStatic(g)); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	reopen := func(t *testing.T, data []byte) error {
		t.Helper()
		p := filepath.Join(t.TempDir(), "bad.tkcg")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := OpenMapped(p)
		if err == nil {
			m.Close()
		}
		return err
	}

	t.Run("flipped payload byte", func(t *testing.T) {
		data := bytes.Clone(orig)
		data[mappedPageSize+4] ^= 0xff // inside the first section
		if err := reopen(t, data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if err := reopen(t, orig[:len(orig)-16]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("tampered section table", func(t *testing.T) {
		data := bytes.Clone(orig)
		data[mappedHeaderFixed+8]++ // first section's offset
		if err := reopen(t, data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("tiny file", func(t *testing.T) {
		if err := reopen(t, orig[:10]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("wrong magic", func(t *testing.T) {
		data := bytes.Clone(orig)
		data[0] = 'X'
		err := reopen(t, data)
		if err == nil {
			t.Fatal("opened a non-TKCG file")
		}
		if errors.Is(err, ErrCorrupt) {
			t.Errorf("wrong magic reported as ErrCorrupt: %v", err)
		}
	})
	t.Run("snapshot layout refused", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "snap.tkcg")
		if err := SaveBinaryFile(p, g); err != nil {
			t.Fatal(err)
		}
		m, err := OpenMapped(p)
		if err == nil {
			m.Close()
			t.Fatal("OpenMapped accepted a snapshot-layout file")
		}
	})
}

func TestMappedStaticRunsKernels(t *testing.T) {
	g := randomGraph(50, 0.25, 5)
	path := filepath.Join(t.TempDir(), "g.tkcg")
	want := FreezeStatic(g)
	if err := WriteMapped(path, want); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s := m.Static()
	if got, wantN := s.TriangleCount(), want.TriangleCount(); got != wantN {
		t.Errorf("TriangleCount = %d, want %d", got, wantN)
	}
	for i := 0; i < s.NumEdges(); i++ {
		e := int32(i)
		if got, wantS := s.Support(e), want.Support(e); got != wantS {
			t.Fatalf("Support(%d) = %d, want %d", i, got, wantS)
		}
	}
}

func completeGraph(n int) *Graph {
	g := New()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(Vertex(u), Vertex(v))
		}
	}
	return g
}
