package graph

import (
	"reflect"
	"testing"
)

// k4 returns the complete graph on 4 vertices.
func k4() *Graph { return FromPairs(1, 2, 1, 3, 1, 4, 2, 3, 2, 4, 3, 4) }

func TestTriangleCount(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int64
	}{
		{"empty", New(), 0},
		{"path", FromPairs(1, 2, 2, 3), 0},
		{"triangle", FromPairs(1, 2, 2, 3, 3, 1), 1},
		{"k4", k4(), 4},
	}
	for _, tc := range cases {
		if got := TriangleCount(tc.g); got != tc.want {
			t.Errorf("%s: TriangleCount = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestDegreeMetrics(t *testing.T) {
	g := FromPairs(1, 2, 1, 3, 1, 4)
	if got := MaxDegree(g); got != 3 {
		t.Fatalf("MaxDegree = %d, want 3", got)
	}
	if got := AvgDegree(g); got != 1.5 {
		t.Fatalf("AvgDegree = %v, want 1.5", got)
	}
	if got := AvgDegree(New()); got != 0 {
		t.Fatalf("AvgDegree(empty) = %v", got)
	}
	want := map[int]int{3: 1, 1: 3}
	if got := DegreeHistogram(g); !reflect.DeepEqual(got, want) {
		t.Fatalf("DegreeHistogram = %v, want %v", got, want)
	}
}

func TestGlobalClusteringCoefficient(t *testing.T) {
	if got := GlobalClusteringCoefficient(k4()); got != 1.0 {
		t.Fatalf("clustering of K4 = %v, want 1", got)
	}
	if got := GlobalClusteringCoefficient(FromPairs(1, 2, 2, 3)); got != 0 {
		t.Fatalf("clustering of path = %v, want 0", got)
	}
	if got := GlobalClusteringCoefficient(New()); got != 0 {
		t.Fatalf("clustering of empty = %v, want 0", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := FromPairs(1, 2, 2, 3, 10, 11)
	g.AddVertex(99)
	comps := ConnectedComponents(g)
	want := [][]Vertex{{1, 2, 3}, {10, 11}, {99}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("ConnectedComponents = %v, want %v", comps, want)
	}
}

func TestIsClique(t *testing.T) {
	g := k4()
	if !IsClique(g, []Vertex{1, 2, 3, 4}) {
		t.Fatal("K4 should be a clique")
	}
	g.RemoveEdge(1, 2)
	if IsClique(g, []Vertex{1, 2, 3, 4}) {
		t.Fatal("K4 minus an edge should not be a clique")
	}
	if !IsClique(g, []Vertex{3}) || !IsClique(g, nil) {
		t.Fatal("singleton and empty sets are trivially cliques")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := k4()
	g.AddEdge(4, 5)
	sub := InducedSubgraph(g, []Vertex{1, 2, 3, 77})
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced subgraph: %d vertices, %d edges", sub.NumVertices(), sub.NumEdges())
	}
	if sub.HasVertex(77) {
		t.Fatal("vertex absent from g must not appear in subgraph")
	}
}

func TestEdgeSubgraph(t *testing.T) {
	g := k4()
	sub := EdgeSubgraph(g, []Edge{{1, 2}, {3, 4}, {1, 5}})
	if sub.NumEdges() != 2 {
		t.Fatalf("edge subgraph has %d edges, want 2", sub.NumEdges())
	}
	if sub.HasEdge(1, 5) {
		t.Fatal("edge absent from g must not appear in subgraph")
	}
}
