package graph

import (
	"testing"
	"testing/quick"
)

func TestFreezeStaticBasics(t *testing.T) {
	g := FromPairs(10, 20, 10, 30, 20, 30, 30, 40)
	s := FreezeStatic(g)
	if s.NumVertices() != 4 || s.NumEdges() != 4 {
		t.Fatalf("got %d vertices, %d edges", s.NumVertices(), s.NumEdges())
	}
	// Dense ids follow sorted original ids: 10->0, 20->1, 30->2, 40->3.
	for i, want := range []Vertex{10, 20, 30, 40} {
		if s.OrigID[i] != want {
			t.Fatalf("OrigID[%d] = %d, want %d", i, s.OrigID[i], want)
		}
		if s.Pos[want] != int32(i) {
			t.Fatalf("Pos[%d] = %d, want %d", want, s.Pos[want], i)
		}
	}
	if s.EdgeIndex(0, 1) < 0 || s.EdgeIndex(1, 0) != s.EdgeIndex(0, 1) {
		t.Fatal("EdgeIndex not symmetric")
	}
	if s.EdgeIndex(0, 3) != -1 {
		t.Fatal("EdgeIndex of absent edge should be -1")
	}
	if s.Degree(2) != 3 {
		t.Fatalf("Degree(pos 2) = %d, want 3", s.Degree(2))
	}
}

func TestStaticSupportMatchesDynamic(t *testing.T) {
	g := randomGraph(40, 0.2, 7)
	s := FreezeStatic(g)
	for i := int32(0); i < int32(s.NumEdges()); i++ {
		e := s.EdgeAt(i)
		if got, want := s.Support(i), g.SupportE(e); got != want {
			t.Fatalf("edge %v: static support %d, dynamic %d", e, got, want)
		}
	}
}

func TestStaticTriangleCountMatchesDynamic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(30, 0.25, seed)
		s := FreezeStatic(g)
		if got, want := s.TriangleCount(), TriangleCount(g); got != want {
			t.Fatalf("seed %d: static %d triangles, dynamic %d", seed, got, want)
		}
	}
}

func TestStaticCommonNeighborAscending(t *testing.T) {
	g := randomGraph(25, 0.4, 3)
	s := FreezeStatic(g)
	for i := int32(0); i < int32(s.NumEdges()); i++ {
		prev := int32(-1)
		s.ForEachCommonNeighbor(s.EdgeU[i], s.EdgeV[i], func(w int32) bool {
			if w <= prev {
				t.Fatalf("common neighbors not ascending: %d after %d", w, prev)
			}
			prev = w
			return true
		})
	}
}

func TestStaticEdgeAtRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(20, 0.3, seed)
		s := FreezeStatic(g)
		for i := int32(0); i < int32(s.NumEdges()); i++ {
			e := s.EdgeAt(i)
			if !g.HasEdgeE(e) {
				return false
			}
			if s.EdgeIndex(s.Pos[e.U], s.Pos[e.V]) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticIsImmutableSnapshot(t *testing.T) {
	g := FromPairs(1, 2, 2, 3)
	s := FreezeStatic(g)
	g.AddEdge(1, 3)
	if s.NumEdges() != 2 {
		t.Fatalf("Static changed after mutation: %d edges", s.NumEdges())
	}
}
