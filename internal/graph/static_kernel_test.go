package graph

import (
	"math/rand"
	"testing"
)

// naiveTriangles enumerates, for the edge between dense positions u and v,
// every third vertex w closing a triangle, by the O(d²) definition: scan
// all vertices and test both adjacencies against the original graph. It is
// deliberately independent of the CSR layout under test.
func naiveTriangles(g *Graph, s *Static, u, v int32) []int32 {
	var out []int32
	for w := int32(0); w < int32(s.NumVertices()); w++ {
		if w == u || w == v {
			continue
		}
		if g.HasEdge(s.OrigID[u], s.OrigID[w]) && g.HasEdge(s.OrigID[v], s.OrigID[w]) {
			out = append(out, w)
		}
	}
	return out
}

// checkStaticInvariants validates the CSR layout against its contract:
// rows sorted and mirror-consistent, AdjEdgeID entries pointing at edges
// with the right endpoints, edge ids dense and canonical, and EdgeIndex
// agreeing with the graph's edge set.
func checkStaticInvariants(t *testing.T, g *Graph, s *Static) {
	t.Helper()
	n := s.NumVertices()
	m := s.NumEdges()
	if m != g.NumEdges() || n != g.NumVertices() {
		t.Fatalf("view has %d vertices / %d edges, graph has %d / %d",
			n, m, g.NumVertices(), g.NumEdges())
	}
	if int(s.RowPtr[n]) != len(s.AdjNbr) || len(s.AdjNbr) != 2*m {
		t.Fatalf("RowPtr[n]=%d, len(AdjNbr)=%d, want both %d", s.RowPtr[n], len(s.AdjNbr), 2*m)
	}
	for u := int32(0); u < int32(n); u++ {
		row := s.Neighbors(u)
		if len(row) != g.Degree(s.OrigID[u]) {
			t.Fatalf("row %d has %d entries, degree is %d", u, len(row), g.Degree(s.OrigID[u]))
		}
		for k, w := range row {
			if k > 0 && row[k-1] >= w {
				t.Fatalf("row %d not strictly sorted at %d", u, k)
			}
			if w == u {
				t.Fatalf("row %d contains a self-loop", u)
			}
			id := s.AdjEdgeID[s.RowPtr[u]+int32(k)]
			if id < 0 || id >= int32(m) {
				t.Fatalf("row %d entry %d: edge id %d out of range", u, k, id)
			}
			a, b := u, w
			if a > b {
				a, b = b, a
			}
			if s.EdgeU[id] != a || s.EdgeV[id] != b {
				t.Fatalf("AdjEdgeID of row %d entry %d points at edge %d = (%d,%d), want (%d,%d)",
					u, k, id, s.EdgeU[id], s.EdgeV[id], a, b)
			}
		}
	}
	for i := int32(0); i < int32(m); i++ {
		u, v := s.EdgeU[i], s.EdgeV[i]
		if u >= v {
			t.Fatalf("edge %d not canonical: (%d,%d)", i, u, v)
		}
		if got := s.EdgeIndex(u, v); got != i {
			t.Fatalf("EdgeIndex(%d,%d) = %d, want %d", u, v, got, i)
		}
		if !g.HasEdge(s.OrigID[u], s.OrigID[v]) {
			t.Fatalf("edge %d = (%d,%d) absent from source graph", i, u, v)
		}
	}
}

// randomSparseGraph builds a random graph over non-contiguous vertex ids
// with at most m edges (fewer when collisions exhaust the attempts).
func randomSparseGraph(rng *rand.Rand, n, m int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddVertex(Vertex(rng.Intn(3 * n))) // sparse, non-contiguous ids
	}
	verts := g.Vertices()
	for attempts := 0; len(verts) >= 2 && g.NumEdges() < m && attempts < 8*m+32; attempts++ {
		u := verts[rng.Intn(len(verts))]
		v := verts[rng.Intn(len(verts))]
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// TestForEachTriangleEdgeMatchesNaive property-tests the CSR kernel
// against the O(n·d²) enumerator on random graphs of varying density.
func TestForEachTriangleEdgeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(40)
		m := rng.Intn(n * (n - 1) / 2)
		g := randomSparseGraph(rng, n, m)
		s := FreezeStatic(g)
		checkStaticInvariants(t, g, s)
		for i := int32(0); i < int32(s.NumEdges()); i++ {
			u, v := s.EdgeU[i], s.EdgeV[i]
			want := naiveTriangles(g, s, u, v)
			var got []int32
			s.ForEachTriangleEdge(u, v, func(w, e1, e2 int32) bool {
				// e1 must be the edge {u, w}, e2 the edge {v, w}.
				if s.EdgeIndex(u, w) != e1 {
					t.Fatalf("trial %d edge (%d,%d) w=%d: e1=%d, want %d", trial, u, v, w, e1, s.EdgeIndex(u, w))
				}
				if s.EdgeIndex(v, w) != e2 {
					t.Fatalf("trial %d edge (%d,%d) w=%d: e2=%d, want %d", trial, u, v, w, e2, s.EdgeIndex(v, w))
				}
				got = append(got, w)
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("trial %d edge (%d,%d): kernel found %v, naive found %v", trial, u, v, got, want)
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("trial %d edge (%d,%d): kernel found %v, naive found %v", trial, u, v, got, want)
				}
			}
			if sup := s.Support(i); sup != len(want) {
				t.Fatalf("trial %d edge (%d,%d): Support=%d, naive count %d", trial, u, v, sup, len(want))
			}
		}
	}
}

// TestForEachTriangleEdgeEarlyStop checks that returning false stops the
// iteration.
func TestForEachTriangleEdgeEarlyStop(t *testing.T) {
	// K5: every edge sits in three triangles.
	g := New()
	for u := Vertex(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			g.AddEdge(u, v)
		}
	}
	s := FreezeStatic(g)
	calls := 0
	s.ForEachTriangleEdge(0, 1, func(w, e1, e2 int32) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop made %d calls, want 1", calls)
	}
}

// TestCountCommonSkewed exercises the galloping branch of countCommon: a
// star center adjacent to everything against a low-degree leaf.
func TestCountCommonSkewed(t *testing.T) {
	g := New()
	const n = 400
	for i := Vertex(1); i <= n; i++ {
		g.AddEdge(0, i) // hub
	}
	// A triangle fan on the first few leaves.
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	s := FreezeStatic(g)
	hub, leaf := s.Pos[0], s.Pos[2]
	i := s.EdgeIndex(hub, leaf)
	if i < 0 {
		t.Fatal("hub-leaf edge missing")
	}
	// Edge {0,2} closes triangles with 1 and 3 only.
	if got := s.Support(i); got != 2 {
		t.Fatalf("Support(hub-2) = %d, want 2", got)
	}
}
