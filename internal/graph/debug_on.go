//go:build trikdebug

package graph

// debugChecks enables the Dense invariant assertions after every mutating
// operation. Build (or test) with -tags trikdebug to turn the suite into
// a deep consistency oracle: `make debugrace`.
const debugChecks = true
