package graph

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := "# comment\n% another comment\n1 2\n2 3 extra-ignored\n\n3 1\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{{1, 2}, {1, 3}, {2, 3}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges() = %v, want %v", got, want)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"too few fields", "1\n"},
		{"bad first vertex", "x 2\n"},
		{"bad second vertex", "1 y\n"},
		{"self loop", "3 3\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("ReadEdgeList(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestReadEdgeListFuncStreams(t *testing.T) {
	in := "# c\n1 2\n2 3\n%x\n3 1\n"
	var got []Edge
	err := ReadEdgeListFunc(strings.NewReader(in), func(u, v Vertex) error {
		got = append(got, NewEdge(u, v))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{{1, 2}, {2, 3}, {1, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed %v, want %v", got, want)
	}

	// A callback error stops the scan and surfaces unchanged.
	sentinel := errors.New("stop here")
	calls := 0
	err = ReadEdgeListFunc(strings.NewReader(in), func(u, v Vertex) error {
		calls++
		if calls == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || calls != 2 {
		t.Fatalf("err = %v after %d calls, want sentinel after 2", err, calls)
	}
}

func TestScanEdgeListFileMultiPass(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.txt")
	if err := SaveEdgeListFile(path, FromPairs(1, 2, 2, 3)); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		n := 0
		if err := ScanEdgeListFile(path, func(u, v Vertex) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n != 2 {
			t.Fatalf("pass %d saw %d edges, want 2", pass, n)
		}
	}
	if err := ScanEdgeListFile(filepath.Join(t.TempDir(), "nope.txt"), nil); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(30, 0.2, 11)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Fatal("edge list round trip changed the edge set")
	}
}

func TestEdgeListFileRoundTrip(t *testing.T) {
	g := FromPairs(1, 2, 2, 3, 3, 4)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := SaveEdgeListFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Fatal("file round trip changed the edge set")
	}
	if _, err := LoadEdgeListFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}
