// Golden coverage for the mapped TKCG format on a paper-scale fixture:
// the mmap'd view must be indistinguishable, array for array, from
// freezing the same graph in memory. Lives in an external test package
// so it can draw the Astro stand-in from internal/dataset without an
// import cycle.
package graph_test

import (
	"bytes"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"trikcore/internal/dataset"
	"trikcore/internal/graph"
)

func TestOpenMappedGoldenAstro(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale fixture")
	}
	d, ok := dataset.ByName("Astro-Author")
	if !ok {
		t.Fatal("Astro-Author dataset missing")
	}
	g := d.GenerateAt(0.2)
	want := graph.FreezeStatic(g)

	dir := t.TempDir()
	path := filepath.Join(dir, "astro.tkcg")
	if err := graph.WriteMapped(path, want); err != nil {
		t.Fatal(err)
	}
	m, err := graph.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s := m.Static()

	if !slices.Equal(s.OrigID, want.OrigID) {
		t.Error("OrigID differs")
	}
	for _, arr := range []struct {
		name      string
		got, want []int32
	}{
		{"RowPtr", s.RowPtr, want.RowPtr},
		{"AdjNbr", s.AdjNbr, want.AdjNbr},
		{"AdjEdgeID", s.AdjEdgeID, want.AdjEdgeID},
		{"EdgeU", s.EdgeU, want.EdgeU},
		{"EdgeV", s.EdgeV, want.EdgeV},
		{"OutPtr", s.OutPtr, want.OutPtr},
		{"OutNbr", s.OutNbr, want.OutNbr},
		{"OutEdgeID", s.OutEdgeID, want.OutEdgeID},
	} {
		if !slices.Equal(arr.got, arr.want) {
			t.Errorf("%s differs between mapped view and FreezeStatic", arr.name)
		}
	}

	// File-level determinism: re-serializing the frozen view reproduces
	// the mapped file byte for byte.
	again := filepath.Join(dir, "again.tkcg")
	if err := graph.WriteMapped(again, want); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("mapped serialization of the Astro fixture is not deterministic")
	}
}
