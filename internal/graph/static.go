package graph

import (
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// Static is an immutable, flat CSR view of a Graph optimized for bulk
// algorithms. Vertices are relabeled to dense positions 0..N-1 and the
// adjacency of all vertices lives in one shared neighbor array, sorted
// per row, enabling cache-friendly iteration and merge-based
// common-neighbor intersection. Edges carry dense indices 0..M-1 so
// per-edge algorithm state can live in flat slices; the AdjEdgeID array,
// parallel to AdjNbr, lets the triangle kernel hand those indices back
// without any lookup structure.
//
// Edge ids are assigned in lexicographic (u, v) order of dense endpoint
// pairs with u < v, which (because dense positions preserve the sorted
// order of original ids) is also the order Graph.Edges returns.
type Static struct {
	// OrigID maps a dense position back to the original vertex id.
	OrigID []Vertex
	// Pos maps an original vertex id to its dense position.
	Pos map[Vertex]int32
	// RowPtr has N+1 entries; the neighbors of dense vertex u occupy
	// AdjNbr[RowPtr[u]:RowPtr[u+1]], sorted ascending.
	RowPtr []int32
	// AdjNbr holds all adjacency rows concatenated (2M entries).
	AdjNbr []int32
	// AdjEdgeID is parallel to AdjNbr: AdjEdgeID[p] is the dense edge id
	// of the edge between the row's vertex and AdjNbr[p].
	AdjEdgeID []int32
	// EdgeU and EdgeV hold the endpoints (dense positions, EdgeU < EdgeV)
	// of edge i.
	EdgeU, EdgeV []int32
	// OutPtr/OutNbr/OutEdgeID are the degree-oriented half of the
	// adjacency: OutNbr[OutPtr[u]:OutPtr[u+1]] holds, sorted, the
	// neighbors of u ranked above it (by degree, ties by position), with
	// OutEdgeID parallel. Every triangle appears exactly once as an edge
	// {u, v} plus a common out-neighbor of u and v, which is what makes
	// once-per-triangle listing (ForEachOrientedTriangle) cheap: oriented
	// rows are bounded by O(√M) on any graph.
	OutPtr, OutNbr, OutEdgeID []int32
}

// freezeBlock is the vertex-block granularity of the parallel CSR build;
// small enough to balance power-law rows, large enough to amortize the
// atomic fetch.
const freezeBlock = 256

// FreezeStatic builds a Static view of g. The view shares nothing with g;
// later mutation of g does not affect it. Row filling, sorting and edge-id
// assignment run in parallel over vertex blocks.
func FreezeStatic(g *Graph) *Static {
	verts := g.Vertices()
	n := len(verts)
	m := g.NumEdges()
	// Every CSR index — vertex positions, edge ids and the 2M adjacency
	// offsets — is an int32. Refuse graphs that would overflow instead of
	// silently truncating; the //trikcheck:checked annotations on the
	// int32 narrowings below all cite this guard.
	if n >= math.MaxInt32 {
		panic("graph: FreezeStatic vertex count exceeds int32 capacity")
	}
	if m > math.MaxInt32/2 {
		panic("graph: FreezeStatic edge count exceeds int32 capacity")
	}
	s := &Static{
		OrigID: verts,
		Pos:    make(map[Vertex]int32, n),
		RowPtr: make([]int32, n+1),
	}
	for i, v := range verts {
		s.Pos[v] = int32(i) //trikcheck:checked i < n, guarded above
	}
	for i, v := range verts {
		s.RowPtr[i+1] = s.RowPtr[i] + int32(g.Degree(v)) //trikcheck:checked degree ≤ 2m, guarded above
	}
	s.AdjNbr = make([]int32, 2*m)
	s.AdjEdgeID = make([]int32, 2*m)
	s.EdgeU = make([]int32, m)
	s.EdgeV = make([]int32, m)

	// Pass 1: fill each row with dense neighbor positions and sort it.
	// Concurrent reads of g's maps are safe.
	parallelBlocks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := s.AdjNbr[s.RowPtr[i]:s.RowPtr[i+1]]
			k := 0
			g.ForEachNeighbor(verts[i], func(w Vertex) bool {
				row[k] = s.Pos[w]
				k++
				return true
			})
			slices.Sort(row)
		}
	})

	// edgeStart[u] is the id of the first edge whose lower endpoint is u:
	// count each row's upper neighbors in parallel, then prefix-sum.
	edgeStart := make([]int32, n+1)
	parallelBlocks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := s.AdjNbr[s.RowPtr[i]:s.RowPtr[i+1]]
			split, _ := slices.BinarySearch(row, int32(i)) //trikcheck:checked i < n, guarded above
			edgeStart[i+1] = int32(len(row) - split)       //trikcheck:checked row lengths sum to 2m, guarded above
		}
	})
	for i := 0; i < n; i++ {
		edgeStart[i+1] += edgeStart[i]
	}

	// Pass 2: assign edge ids. Entries w > u in row u get consecutive ids
	// from edgeStart[u] (and define EdgeU/EdgeV); entries w < u mirror the
	// id assigned in row w, recovered by ranking u within that row. Each
	// worker writes only its own rows' AdjEdgeID entries and the EdgeU/V
	// slots its rows own, so the passes are data-race free.
	parallelBlocks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u := int32(i) //trikcheck:checked i < n, guarded above
			base := s.RowPtr[i]
			row := s.AdjNbr[base:s.RowPtr[i+1]]
			split, _ := slices.BinarySearch(row, u)
			for k, w := range row {
				if w > u {
					id := edgeStart[i] + int32(k-split) //trikcheck:checked k < len(row) ≤ 2m, guarded above
					s.AdjEdgeID[base+int32(k)] = id     //trikcheck:checked k < len(row) ≤ 2m, guarded above
					s.EdgeU[id] = u
					s.EdgeV[id] = w
				} else {
					wrow := s.AdjNbr[s.RowPtr[w]:s.RowPtr[w+1]]
					wsplit, _ := slices.BinarySearch(wrow, w)
					pos, _ := slices.BinarySearch(wrow, u)
					s.AdjEdgeID[base+int32(k)] = edgeStart[w] + int32(pos-wsplit) //trikcheck:checked indices bounded by 2m, guarded above
				}
			}
		}
	})

	// Pass 3: the oriented half.
	s.buildOriented()
	return s
}

// buildOriented fills the degree-oriented half (OutPtr/OutNbr/OutEdgeID)
// from the already-built symmetric CSR arrays: count each row's
// higher-ranked neighbors, prefix-sum, then filter the rows down. Shared
// by FreezeStatic and Dense.Freeze; both bound the vertex and edge counts
// to int32 range before calling, which the //trikcheck:checked
// annotations below cite.
func (s *Static) buildOriented() {
	n := s.NumVertices()
	m := s.NumEdges()
	s.OutPtr = make([]int32, n+1)
	s.OutNbr = make([]int32, m)
	s.OutEdgeID = make([]int32, m)
	s.fillOriented(s.OutPtr, s.OutNbr, s.OutEdgeID)
}

// fillOriented computes the oriented half into caller-provided arrays
// (len n+1, m, m) from the symmetric CSR arrays, which must already be
// filled. The mapped-file builder aims it at mmap-backed storage;
// buildOriented aims it at fresh heap slices. It writes only through
// its parameters, never through s.
func (s *Static) fillOriented(outPtr, outNbr, outEdgeID []int32) {
	n := s.NumVertices()
	parallelBlocks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u := int32(i) //trikcheck:checked i < n, guarded by the caller's freeze guard
			c := int32(0)
			for _, w := range s.Neighbors(u) {
				if s.rankLess(u, w) {
					c++
				}
			}
			outPtr[i+1] = c
		}
	})
	outPtr[0] = 0
	for i := 0; i < n; i++ {
		outPtr[i+1] += outPtr[i]
	}
	parallelBlocks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u := int32(i) //trikcheck:checked i < n, guarded by the caller's freeze guard
			base := s.RowPtr[i]
			p := outPtr[i]
			for k, w := range s.Neighbors(u) {
				if s.rankLess(u, w) {
					outNbr[p] = w
					outEdgeID[p] = s.AdjEdgeID[base+int32(k)] //trikcheck:checked k < len(row) ≤ 2m, guarded by the caller's freeze guard
					p++
				}
			}
		}
	})
}

// rankLess is the degree orientation: u ranks below w when it has smaller
// degree, ties broken by dense position. Orienting every edge from lower
// to higher rank makes each triangle the out-wedge of exactly one edge.
func (s *Static) rankLess(u, w int32) bool {
	du, dw := s.RowPtr[u+1]-s.RowPtr[u], s.RowPtr[w+1]-s.RowPtr[w]
	if du != dw {
		return du < dw
	}
	return u < w
}

// parallelBlocks runs fn over [0, n) split into fixed-size blocks handed
// out through an atomic counter, so uneven (power-law) block costs
// self-balance across GOMAXPROCS workers. Small inputs run inline.
func parallelBlocks(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || n < 4*freezeBlock {
		fn(0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(freezeBlock)) - freezeBlock
				if lo >= n {
					return
				}
				hi := lo + freezeBlock
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// NumVertices returns the number of vertices in the view.
func (s *Static) NumVertices() int { return len(s.OrigID) }

// NumEdges returns the number of edges in the view.
func (s *Static) NumEdges() int { return len(s.EdgeU) }

// SizeBytes estimates the heap footprint of the view's flat arrays and
// intern table — the number a memory gauge should report for a published
// snapshot. It is O(1): every component's size is arithmetic over slice
// lengths (the Pos entries are costed at key+value+bucket overhead).
func (s *Static) SizeBytes() int64 {
	int32Len := len(s.RowPtr) + len(s.AdjNbr) + len(s.AdjEdgeID) +
		len(s.EdgeU) + len(s.EdgeV) +
		len(s.OutPtr) + len(s.OutNbr) + len(s.OutEdgeID)
	return int64(int32Len)*4 + int64(len(s.OrigID))*8 + int64(len(s.Pos))*16
}

// Neighbors returns the sorted dense neighbor row of dense position u.
// The slice aliases the view's storage and must not be modified.
func (s *Static) Neighbors(u int32) []int32 {
	return s.AdjNbr[s.RowPtr[u]:s.RowPtr[u+1]]
}

// EdgeIndex returns the dense index of the edge between dense positions u
// and v, or -1 if no such edge exists, by binary search over the smaller
// of the two adjacency rows.
func (s *Static) EdgeIndex(u, v int32) int32 {
	if s.RowPtr[u+1]-s.RowPtr[u] > s.RowPtr[v+1]-s.RowPtr[v] {
		u, v = v, u
	}
	base := s.RowPtr[u]
	row := s.AdjNbr[base:s.RowPtr[u+1]]
	if j, ok := slices.BinarySearch(row, v); ok {
		return s.AdjEdgeID[base+int32(j)] //trikcheck:checked j < len(row) ≤ 2m, bounded at freeze
	}
	return -1
}

// EdgeAt returns edge i as a canonical Edge over original vertex ids.
func (s *Static) EdgeAt(i int32) Edge {
	return NewEdge(s.OrigID[s.EdgeU[i]], s.OrigID[s.EdgeV[i]])
}

// Degree returns the degree of the vertex at dense position u.
func (s *Static) Degree(u int32) int { return int(s.RowPtr[u+1] - s.RowPtr[u]) }

// Endpoints returns the dense endpoints (u < v) of edge i.
func (s *Static) Endpoints(i int32) (int32, int32) { return s.EdgeU[i], s.EdgeV[i] }

// Row returns the sorted dense neighbor row of dense position u together
// with the parallel edge-id row. Both slices alias the view's storage
// and must not be modified.
func (s *Static) Row(u int32) (nbr, eid []int32) {
	lo, hi := s.RowPtr[u], s.RowPtr[u+1]
	return s.AdjNbr[lo:hi], s.AdjEdgeID[lo:hi]
}

// ForEachCommonNeighbor calls fn for each common neighbor (dense position)
// of dense positions u and v, in ascending order, using a linear merge of
// the two sorted adjacency rows. If fn returns false the iteration stops.
func (s *Static) ForEachCommonNeighbor(u, v int32, fn func(w int32) bool) {
	i, iEnd := s.RowPtr[u], s.RowPtr[u+1]
	j, jEnd := s.RowPtr[v], s.RowPtr[v+1]
	a := s.AdjNbr
	for i < iEnd && j < jEnd {
		x, y := a[i], a[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			if !fn(x) {
				return
			}
			i++
			j++
		}
	}
}

// ForEachTriangleEdge calls fn for each triangle {u, v, w} on the edge
// between dense positions u and v, passing the third vertex w (ascending)
// and the dense edge ids e1 = {u, w} and e2 = {v, w} read directly from
// the AdjEdgeID array — the map-free kernel of Algorithm 1. If fn returns
// false the iteration stops.
func (s *Static) ForEachTriangleEdge(u, v int32, fn func(w, e1, e2 int32) bool) {
	i, iEnd := s.RowPtr[u], s.RowPtr[u+1]
	j, jEnd := s.RowPtr[v], s.RowPtr[v+1]
	a, id := s.AdjNbr, s.AdjEdgeID
	for i < iEnd && j < jEnd {
		x, y := a[i], a[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			if !fn(x, id[i], id[j]) {
				return
			}
			i++
			j++
		}
	}
}

// ForEachOrientedTriangle calls fn for each triangle whose two
// lowest-ranked vertices are the endpoints of edge i, passing the dense
// edge ids of the triangle's other two edges. Across all edges this
// yields every triangle of the graph exactly once — the once-per-triangle
// listing that bulk support computation uses to avoid visiting each
// triangle three times. If fn returns false the iteration stops.
func (s *Static) ForEachOrientedTriangle(i int32, fn func(e1, e2 int32) bool) {
	u, v := s.EdgeU[i], s.EdgeV[i]
	p, pEnd := s.OutPtr[u], s.OutPtr[u+1]
	q, qEnd := s.OutPtr[v], s.OutPtr[v+1]
	a, id := s.OutNbr, s.OutEdgeID
	for p < pEnd && q < qEnd {
		x, y := a[p], a[q]
		switch {
		case x < y:
			p++
		case x > y:
			q++
		default:
			if !fn(id[p], id[q]) {
				return
			}
			p++
			q++
		}
	}
}

// Support returns the number of triangles containing edge i.
func (s *Static) Support(i int32) int {
	return s.countCommon(s.EdgeU[i], s.EdgeV[i])
}

// countCommon counts |N(u) ∩ N(v)| over the sorted rows, iterating the
// smaller row first. When the rows are badly skewed (power-law hubs) it
// binary-searches the larger row per element instead of merging, turning
// O(d_u + d_v) into O(d_min · log d_max).
func (s *Static) countCommon(u, v int32) int {
	a, b := s.Neighbors(u), s.Neighbors(v)
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	n := 0
	if len(b) >= 16*len(a) {
		for _, w := range a {
			if _, ok := slices.BinarySearch(b, w); ok {
				n++
			}
		}
		return n
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Materialize builds a standalone mutable Graph holding the same
// vertices and edges as the view. It shares nothing with the view, so
// it outlives a mapped file's Close.
func (s *Static) Materialize() *Graph {
	g := NewWithCapacity(s.NumVertices())
	for _, v := range s.OrigID {
		g.AddVertex(v)
	}
	for i := range s.EdgeU {
		g.AddEdge(s.OrigID[s.EdgeU[i]], s.OrigID[s.EdgeV[i]])
	}
	return g
}

// TriangleCount returns the total number of triangles in the graph using
// the oriented listing, which touches each triangle once instead of
// summing per-edge supports (three visits per triangle).
func (s *Static) TriangleCount() int64 {
	var sum int64
	for i := range s.EdgeU {
		u, v := s.EdgeU[i], s.EdgeV[i]
		p, pEnd := s.OutPtr[u], s.OutPtr[u+1]
		q, qEnd := s.OutPtr[v], s.OutPtr[v+1]
		a := s.OutNbr
		for p < pEnd && q < qEnd {
			x, y := a[p], a[q]
			switch {
			case x < y:
				p++
			case x > y:
				q++
			default:
				sum++
				p++
				q++
			}
		}
	}
	return sum
}
