package graph

import "sort"

// Static is an immutable, array-based view of a Graph optimized for bulk
// algorithms. Vertices are relabeled to dense positions 0..N-1 and
// adjacency lists are sorted, enabling cache-friendly iteration and
// merge-based common-neighbor intersection. Edges carry dense indices
// 0..M-1 so per-edge algorithm state can live in flat slices.
type Static struct {
	// OrigID maps a dense position back to the original vertex id.
	OrigID []Vertex
	// Pos maps an original vertex id to its dense position.
	Pos map[Vertex]int32
	// Adj holds, for each dense vertex position, its neighbors as sorted
	// dense positions.
	Adj [][]int32
	// EdgeU and EdgeV hold the endpoints (dense positions, EdgeU < EdgeV)
	// of edge i.
	EdgeU, EdgeV []int32
	// edgeIdx maps a packed (u<<32|v) dense endpoint pair (u < v) to the
	// edge index.
	edgeIdx map[uint64]int32
}

// FreezeStatic builds a Static view of g. The view shares nothing with g;
// later mutation of g does not affect it.
func FreezeStatic(g *Graph) *Static {
	verts := g.Vertices()
	s := &Static{
		OrigID: verts,
		Pos:    make(map[Vertex]int32, len(verts)),
		Adj:    make([][]int32, len(verts)),
	}
	for i, v := range verts {
		s.Pos[v] = int32(i)
	}
	m := g.NumEdges()
	s.EdgeU = make([]int32, 0, m)
	s.EdgeV = make([]int32, 0, m)
	s.edgeIdx = make(map[uint64]int32, m)
	for i, v := range verts {
		deg := g.Degree(v)
		nbrs := make([]int32, 0, deg)
		g.ForEachNeighbor(v, func(w Vertex) bool {
			nbrs = append(nbrs, s.Pos[w])
			return true
		})
		sort.Slice(nbrs, func(a, b int) bool { return nbrs[a] < nbrs[b] })
		s.Adj[i] = nbrs
		u := int32(i)
		for _, w := range nbrs {
			if u < w {
				s.edgeIdx[pack(u, w)] = int32(len(s.EdgeU))
				s.EdgeU = append(s.EdgeU, u)
				s.EdgeV = append(s.EdgeV, w)
			}
		}
	}
	return s
}

func pack(u, v int32) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// NumVertices returns the number of vertices in the view.
func (s *Static) NumVertices() int { return len(s.OrigID) }

// NumEdges returns the number of edges in the view.
func (s *Static) NumEdges() int { return len(s.EdgeU) }

// EdgeIndex returns the dense index of the edge between dense positions u
// and v, or -1 if no such edge exists.
func (s *Static) EdgeIndex(u, v int32) int32 {
	if u > v {
		u, v = v, u
	}
	if i, ok := s.edgeIdx[pack(u, v)]; ok {
		return i
	}
	return -1
}

// EdgeAt returns edge i as a canonical Edge over original vertex ids.
func (s *Static) EdgeAt(i int32) Edge {
	return NewEdge(s.OrigID[s.EdgeU[i]], s.OrigID[s.EdgeV[i]])
}

// Degree returns the degree of the vertex at dense position u.
func (s *Static) Degree(u int32) int { return len(s.Adj[u]) }

// ForEachCommonNeighbor calls fn for each common neighbor (dense position)
// of dense positions u and v, in ascending order, using a linear merge of
// the two sorted adjacency lists. If fn returns false the iteration stops.
func (s *Static) ForEachCommonNeighbor(u, v int32, fn func(w int32) bool) {
	a, b := s.Adj[u], s.Adj[v]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if !fn(a[i]) {
				return
			}
			i++
			j++
		}
	}
}

// Support returns the number of triangles containing edge i.
func (s *Static) Support(i int32) int {
	n := 0
	s.ForEachCommonNeighbor(s.EdgeU[i], s.EdgeV[i], func(int32) bool { n++; return true })
	return n
}

// TriangleCount returns the total number of triangles in the graph,
// computed as the sum of edge supports divided by three.
func (s *Static) TriangleCount() int64 {
	var sum int64
	for i := range s.EdgeU {
		sum += int64(s.Support(int32(i)))
	}
	return sum / 3
}
