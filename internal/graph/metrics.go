package graph

import "slices"

// TriangleCount returns the total number of triangles in g. It iterates
// every edge and intersects endpoint neighborhoods, so it runs in
// O(sum over edges of min-degree) time.
func TriangleCount(g *Graph) int64 {
	var sum int64
	g.ForEachEdge(func(e Edge) bool {
		sum += int64(g.Support(e.U, e.V))
		return true
	})
	return sum / 3
}

// MaxDegree returns the maximum vertex degree in g (0 for an empty graph).
func MaxDegree(g *Graph) int {
	max := 0
	g.ForEachVertex(func(v Vertex) bool {
		if d := g.Degree(v); d > max {
			max = d
		}
		return true
	})
	return max
}

// AvgDegree returns the mean vertex degree 2|E|/|V| (0 for an empty graph).
func AvgDegree(g *Graph) float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(g.NumVertices())
}

// DegreeHistogram returns a map from degree to the number of vertices with
// that degree.
func DegreeHistogram(g *Graph) map[int]int {
	h := make(map[int]int)
	g.ForEachVertex(func(v Vertex) bool {
		h[g.Degree(v)]++
		return true
	})
	return h
}

// GlobalClusteringCoefficient returns 3*#triangles / #wedges, the graph
// transitivity. It returns 0 when the graph has no wedges.
func GlobalClusteringCoefficient(g *Graph) float64 {
	var wedges int64
	g.ForEachVertex(func(v Vertex) bool {
		d := int64(g.Degree(v))
		wedges += d * (d - 1) / 2
		return true
	})
	if wedges == 0 {
		return 0
	}
	return 3 * float64(TriangleCount(g)) / float64(wedges)
}

// ConnectedComponents returns the vertex sets of the connected components
// of g, each sorted ascending, ordered by their smallest vertex.
func ConnectedComponents(g *Graph) [][]Vertex {
	seen := make(map[Vertex]bool, g.NumVertices())
	var comps [][]Vertex
	for _, start := range g.Vertices() {
		if seen[start] {
			continue
		}
		comp := []Vertex{start}
		seen[start] = true
		for i := 0; i < len(comp); i++ {
			g.ForEachNeighbor(comp[i], func(w Vertex) bool {
				if !seen[w] {
					seen[w] = true
					comp = append(comp, w)
				}
				return true
			})
		}
		slices.Sort(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsClique reports whether the given vertices form a clique in g (every
// pair adjacent). A set of fewer than two vertices is trivially a clique.
func IsClique(g *Graph, verts []Vertex) bool {
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			if !g.HasEdge(verts[i], verts[j]) {
				return false
			}
		}
	}
	return true
}

// InducedSubgraph returns the subgraph of g induced by the given vertex
// set: those vertices and every edge of g between two of them.
func InducedSubgraph(g *Graph, verts []Vertex) *Graph {
	keep := make(map[Vertex]bool, len(verts))
	for _, v := range verts {
		keep[v] = true
	}
	sub := New()
	for _, v := range verts {
		if !g.HasVertex(v) {
			continue
		}
		sub.AddVertex(v)
		g.ForEachNeighbor(v, func(w Vertex) bool {
			if keep[w] && v < w {
				sub.AddEdge(v, w)
			}
			return true
		})
	}
	return sub
}

// EdgeSubgraph returns the subgraph of g consisting of exactly the given
// edges (which must all exist in g) and their endpoints.
func EdgeSubgraph(g *Graph, edges []Edge) *Graph {
	sub := New()
	for _, e := range edges {
		if !g.HasEdgeE(e) {
			continue
		}
		sub.AddEdgeE(e)
	}
	return sub
}
