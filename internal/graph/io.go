package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeListFunc streams a whitespace-separated edge list from r,
// calling fn once per edge line without accumulating anything: the
// caller decides whether edges land in a Graph, a degree counter or an
// on-disk builder, so inputs larger than RAM parse in constant memory.
// Each non-empty line holds two integer vertex ids; lines starting with
// '#' or '%' are comments. Duplicate edges and both orientations of the
// same edge are passed through as-is; self-loops are rejected. If fn
// returns an error the scan stops and that error is returned.
func ReadEdgeListFunc(r io.Reader, fn func(u, v Vertex) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return fmt.Errorf("graph: line %d: want at least 2 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return fmt.Errorf("graph: line %d: bad vertex %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return fmt.Errorf("graph: line %d: bad vertex %q: %w", lineNo, fields[1], err)
		}
		if u == v {
			return fmt.Errorf("graph: line %d: self-loop on vertex %d", lineNo, u)
		}
		if err := fn(Vertex(u), Vertex(v)); err != nil { //trikcheck:checked ParseInt bitSize 32 bounds both
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("graph: reading edge list: %w", err)
	}
	return nil
}

// ReadEdgeList parses a whitespace-separated edge list from r into a
// Graph. It is ReadEdgeListFunc with edges accumulated: duplicate edges
// and both orientations of the same edge are tolerated; self-loops are
// rejected.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	g := New()
	if err := ReadEdgeListFunc(r, func(u, v Vertex) error {
		g.AddEdge(u, v)
		return nil
	}); err != nil {
		return nil, err
	}
	return g, nil
}

// ScanEdgeListFile opens the named file and streams it through
// ReadEdgeListFunc. Multi-pass consumers (the on-disk CSR builder) call
// it once per pass instead of holding the parsed edges.
func ScanEdgeListFile(path string, fn func(u, v Vertex) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return ReadEdgeListFunc(f, fn)
}

// WriteEdgeList writes g as a sorted edge list ("u v" per line) to w.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return fmt.Errorf("graph: writing edge list: %w", err)
		}
	}
	return bw.Flush()
}

// LoadEdgeListFile reads an edge list from the named file.
func LoadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// SaveEdgeListFile writes g to the named file as an edge list.
func SaveEdgeListFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if err := WriteEdgeList(f, g); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}
