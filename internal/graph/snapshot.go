package graph

import "slices"

// Diff describes the edit between two graph snapshots. Added entries exist
// in the new snapshot but not the old; Removed entries exist only in the
// old snapshot. All slices are sorted.
type Diff struct {
	AddedEdges      []Edge
	RemovedEdges    []Edge
	AddedVertices   []Vertex
	RemovedVertices []Vertex
}

// DiffGraphs computes the Diff from old to new.
func DiffGraphs(old, new *Graph) Diff {
	var d Diff
	new.ForEachEdge(func(e Edge) bool {
		if !old.HasEdgeE(e) {
			d.AddedEdges = append(d.AddedEdges, e)
		}
		return true
	})
	old.ForEachEdge(func(e Edge) bool {
		if !new.HasEdgeE(e) {
			d.RemovedEdges = append(d.RemovedEdges, e)
		}
		return true
	})
	new.ForEachVertex(func(v Vertex) bool {
		if !old.HasVertex(v) {
			d.AddedVertices = append(d.AddedVertices, v)
		}
		return true
	})
	old.ForEachVertex(func(v Vertex) bool {
		if !new.HasVertex(v) {
			d.RemovedVertices = append(d.RemovedVertices, v)
		}
		return true
	})
	slices.SortFunc(d.AddedEdges, compareEdges)
	slices.SortFunc(d.RemovedEdges, compareEdges)
	slices.Sort(d.AddedVertices)
	slices.Sort(d.RemovedVertices)
	return d
}

// Empty reports whether the diff holds no changes.
func (d Diff) Empty() bool {
	return len(d.AddedEdges) == 0 && len(d.RemovedEdges) == 0 &&
		len(d.AddedVertices) == 0 && len(d.RemovedVertices) == 0
}

// AddedEdgeSet returns the added edges as a membership set.
func (d Diff) AddedEdgeSet() map[Edge]bool {
	m := make(map[Edge]bool, len(d.AddedEdges))
	for _, e := range d.AddedEdges {
		m[e] = true
	}
	return m
}

// AddedVertexSet returns the added vertices as a membership set.
func (d Diff) AddedVertexSet() map[Vertex]bool {
	m := make(map[Vertex]bool, len(d.AddedVertices))
	for _, v := range d.AddedVertices {
		m[v] = true
	}
	return m
}

// Apply mutates g so that it reflects the diff: removed edges and vertices
// are deleted, added vertices and edges inserted.
func (d Diff) Apply(g *Graph) {
	for _, e := range d.RemovedEdges {
		g.RemoveEdgeE(e)
	}
	for _, v := range d.RemovedVertices {
		g.RemoveVertex(v)
	}
	for _, v := range d.AddedVertices {
		g.AddVertex(v)
	}
	for _, e := range d.AddedEdges {
		g.AddEdgeE(e)
	}
}
