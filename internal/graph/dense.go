package graph

import (
	"fmt"
	"math"
)

// Dense is the mutable, index-oriented counterpart of Static: an
// undirected simple graph whose vertices are interned to dense int32 ids
// and whose edges carry dense int32 ids handed out by an allocator with a
// free list. It is the substrate the dynamic maintenance engine runs on —
// per-edge algorithm state (κ, traversal marks, witness sets) lives in
// flat slices indexed by edge id instead of maps keyed by Edge values.
//
// Adjacency is one packed row per vertex: sorted (neighbor << 32 | edge id)
// int64 entries, exactly the LiveAdj layout, but each row is an
// independently growable slice so insertion works too. Inserting into a
// row is a binary search plus a tail shift; Go's append doubles row
// capacity, so the shift amortizes and rows keep slack for future inserts.
// Common-neighbor queries merge two sorted rows (galloping over the larger
// row when badly skewed) and hand back edge ids with no lookup structure.
//
// Intern tables: Pos-style external↔dense vertex mapping is kept in both
// directions (a map one way, a slice the other); the Edge↔id mapping needs
// no table at all — EdgeIDD binary-searches the smaller endpoint row, and
// EdgeAt reads the endpoint arrays.
//
// Dense slots are recycled: removing an edge pushes its id on a free list
// and the next insertion pops it, so edge ids stay packed in [0, EdgeCap)
// and flat per-edge state never needs compaction. Vertex slots recycle the
// same way once a vertex is removed.
//
// Dense is not safe for concurrent mutation; concurrent reads are safe.
type Dense struct {
	pos   map[Vertex]int32 // external id → dense id (live vertices only)
	orig  []Vertex         // dense id → external id (stale on free slots)
	vlive []bool           // vertex slot liveness
	rows  [][]int64        // per-vertex sorted packed (nbr<<32 | eid)
	edgeU []int32          // dense endpoints of edge i, edgeU < edgeV; -1 = free slot
	edgeV []int32
	freeE []int32 // freed edge ids, reused LIFO
	freeV []int32 // freed vertex slots, reused LIFO
	nv    int     // live vertices
	ne    int     // live edges
}

// NewDense returns an empty dense graph.
func NewDense() *Dense {
	return &Dense{pos: make(map[Vertex]int32)}
}

// NewDenseFromStatic builds a Dense holding the same graph as s, with
// identical dense vertex positions and edge ids — the bridge that lets a
// fresh static decomposition's flat κ array be adopted by a dynamic
// engine verbatim. The Static view is not retained.
func NewDenseFromStatic(s *Static) *Dense {
	n := s.NumVertices()
	m := s.NumEdges()
	d := &Dense{
		pos:   make(map[Vertex]int32, n),
		orig:  append([]Vertex(nil), s.OrigID...),
		vlive: make([]bool, n),
		rows:  make([][]int64, n),
		edgeU: append([]int32(nil), s.EdgeU...),
		edgeV: append([]int32(nil), s.EdgeV...),
		nv:    n,
		ne:    m,
	}
	for v, p := range s.Pos {
		d.pos[v] = p
	}
	// One backing array for the initial rows; rows that later outgrow
	// their segment are moved out by append's reallocation.
	backing := make([]int64, len(s.AdjNbr))
	for p, w := range s.AdjNbr {
		backing[p] = packLive(w, s.AdjEdgeID[p])
	}
	for u := 0; u < n; u++ {
		d.vlive[u] = true
		d.rows[u] = backing[s.RowPtr[u]:s.RowPtr[u+1]:s.RowPtr[u+1]]
	}
	return d
}

// NumVertices returns the number of live vertices.
func (d *Dense) NumVertices() int { return d.nv }

// NumEdges returns the number of live edges.
func (d *Dense) NumEdges() int { return d.ne }

// VertexCap returns the number of dense vertex slots ever allocated;
// per-vertex flat state should be sized to it.
func (d *Dense) VertexCap() int { return len(d.orig) }

// SizeBytes estimates the heap footprint of the substrate: the packed
// adjacency rows (at capacity, since grown rows retain their backing),
// the flat edge/vertex arrays, free lists and intern table. It walks the
// per-vertex row headers, so it is O(V) — callers updating a memory
// gauge should do so per batch, not per operation.
func (d *Dense) SizeBytes() int64 {
	n := int64(len(d.orig))*8 + int64(len(d.vlive)) +
		int64(len(d.edgeU)+len(d.edgeV)+len(d.freeE)+len(d.freeV))*4 +
		int64(len(d.pos))*16 + int64(len(d.rows))*24
	for _, row := range d.rows {
		n += int64(cap(row)) * 8
	}
	return n
}

// EdgeCap returns the number of dense edge slots ever allocated;
// per-edge flat state should be sized to it.
func (d *Dense) EdgeCap() int { return len(d.edgeU) }

// DenseOf returns the dense id of a live external vertex.
func (d *Dense) DenseOf(v Vertex) (int32, bool) {
	p, ok := d.pos[v]
	return p, ok
}

// OrigOf returns the external id of dense vertex u.
func (d *Dense) OrigOf(u int32) Vertex { return d.orig[u] }

// HasVertex reports whether external vertex v is live.
func (d *Dense) HasVertex(v Vertex) bool {
	_, ok := d.pos[v]
	return ok
}

// Intern returns the dense id of external vertex v, allocating (or
// recycling) a slot if v is not present. The boolean reports whether the
// vertex was newly added.
func (d *Dense) Intern(v Vertex) (int32, bool) {
	if p, ok := d.pos[v]; ok {
		return p, false
	}
	var p int32
	if n := len(d.freeV); n > 0 {
		p = d.freeV[n-1]
		d.freeV = d.freeV[:n-1]
		d.orig[p] = v
		d.vlive[p] = true
		d.rows[p] = d.rows[p][:0]
	} else {
		if len(d.orig) >= math.MaxInt32 {
			panic("graph: dense vertex capacity exceeds int32")
		}
		p = int32(len(d.orig)) //trikcheck:checked capacity panic above bounds len to int32
		d.orig = append(d.orig, v)
		d.vlive = append(d.vlive, true)
		d.rows = append(d.rows, nil)
	}
	d.pos[v] = p
	d.nv++
	d.debugAssert()
	return p, true
}

// RemoveVertexV frees the slot of external vertex v. The vertex must be
// isolated (all incident edges already removed); it panics otherwise so a
// dangling row can never corrupt later merges.
func (d *Dense) RemoveVertexV(v Vertex) bool {
	p, ok := d.pos[v]
	if !ok {
		return false
	}
	if len(d.rows[p]) != 0 {
		panic(fmt.Sprintf("graph: RemoveVertexV(%d) with %d incident edges", v, len(d.rows[p])))
	}
	delete(d.pos, v)
	d.vlive[p] = false
	d.freeV = append(d.freeV, p)
	d.nv--
	d.debugAssert()
	return true
}

// packedSearch binary-searches sorted packed row for neighbor w, returning
// the insertion index and whether the entry there is w.
func packedSearch(row []int64, w int32) (int, bool) {
	key := int64(w) << 32
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(row) && row[lo]>>32 == int64(w)
}

// insertPacked inserts entry into sorted row at position at.
func insertPacked(row []int64, at int, entry int64) []int64 {
	row = append(row, 0)
	copy(row[at+1:], row[at:])
	row[at] = entry
	return row
}

// AddEdgeV inserts the undirected edge {u, v} over external ids, interning
// endpoints as needed, and returns the edge's dense id. If the edge
// already exists its current id is returned with added = false. It panics
// on self-loops.
func (d *Dense) AddEdgeV(u, v Vertex) (int32, bool) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", u))
	}
	du, _ := d.Intern(u)
	dv, _ := d.Intern(v)
	atU, ok := packedSearch(d.rows[du], dv)
	if ok {
		return int32(uint32(d.rows[du][atU])), false
	}
	var eid int32
	if n := len(d.freeE); n > 0 {
		eid = d.freeE[n-1]
		d.freeE = d.freeE[:n-1]
	} else {
		if len(d.edgeU) >= math.MaxInt32 {
			panic("graph: dense edge capacity exceeds int32")
		}
		eid = int32(len(d.edgeU)) //trikcheck:checked capacity panic above bounds len to int32
		d.edgeU = append(d.edgeU, 0)
		d.edgeV = append(d.edgeV, 0)
	}
	a, b := du, dv
	if a > b {
		a, b = b, a
	}
	d.edgeU[eid], d.edgeV[eid] = a, b
	d.rows[du] = insertPacked(d.rows[du], atU, packLive(dv, eid))
	atV, _ := packedSearch(d.rows[dv], du)
	d.rows[dv] = insertPacked(d.rows[dv], atV, packLive(du, eid))
	d.ne++
	d.debugAssert()
	return eid, true
}

// RemoveEdgeByID deletes live edge eid from both endpoint rows and
// recycles its id.
func (d *Dense) RemoveEdgeByID(eid int32) {
	u, v := d.edgeU[eid], d.edgeV[eid]
	if u < 0 {
		panic(fmt.Sprintf("graph: RemoveEdgeByID(%d) on a free edge slot", eid))
	}
	d.removeFromRow(u, v)
	d.removeFromRow(v, u)
	d.edgeU[eid], d.edgeV[eid] = -1, -1
	d.freeE = append(d.freeE, eid)
	d.ne--
	d.debugAssert()
}

func (d *Dense) removeFromRow(u, w int32) {
	row := d.rows[u]
	at, ok := packedSearch(row, w)
	if !ok {
		panic(fmt.Sprintf("graph: dense row %d missing neighbor %d", u, w))
	}
	copy(row[at:], row[at+1:])
	d.rows[u] = row[:len(row)-1]
}

// EdgeLive reports whether eid names a live edge.
func (d *Dense) EdgeLive(eid int32) bool {
	return eid >= 0 && int(eid) < len(d.edgeU) && d.edgeU[eid] >= 0
}

// EdgeEndpoints returns the dense endpoints of live edge eid.
func (d *Dense) EdgeEndpoints(eid int32) (int32, int32) { return d.edgeU[eid], d.edgeV[eid] }

// EdgeAt returns live edge eid as a canonical Edge over external ids.
func (d *Dense) EdgeAt(eid int32) Edge {
	return NewEdge(d.orig[d.edgeU[eid]], d.orig[d.edgeV[eid]])
}

// EdgeIDD returns the dense id of the edge between dense vertices u and v,
// or -1, by binary search over the smaller row.
func (d *Dense) EdgeIDD(u, v int32) int32 {
	if len(d.rows[u]) > len(d.rows[v]) {
		u, v = v, u
	}
	if at, ok := packedSearch(d.rows[u], v); ok {
		return int32(uint32(d.rows[u][at]))
	}
	return -1
}

// EdgeIDV is EdgeIDD over external vertex ids.
func (d *Dense) EdgeIDV(u, v Vertex) int32 {
	du, okU := d.pos[u]
	dv, okV := d.pos[v]
	if !okU || !okV {
		return -1
	}
	return d.EdgeIDD(du, dv)
}

// HasEdgeV reports whether the edge {u, v} (external ids) is present.
func (d *Dense) HasEdgeV(u, v Vertex) bool { return d.EdgeIDV(u, v) >= 0 }

// DegreeD returns the degree of dense vertex u.
func (d *Dense) DegreeD(u int32) int { return len(d.rows[u]) }

// ForEachNeighborD calls fn for each neighbor of dense vertex u in
// ascending dense order, with the connecting edge id. If fn returns false
// the iteration stops.
func (d *Dense) ForEachNeighborD(u int32, fn func(w, eid int32) bool) {
	for _, p := range d.rows[u] {
		if !fn(int32(p>>32), int32(uint32(p))) {
			return
		}
	}
}

// ForEachEdgeID calls fn for every live edge id in ascending id order.
// If fn returns false the iteration stops.
func (d *Dense) ForEachEdgeID(fn func(eid int32) bool) {
	for i := range d.edgeU {
		if d.edgeU[i] >= 0 {
			if !fn(int32(i)) { //trikcheck:checked i indexes edgeU, bounded to int32 by AddEdgeV
				return
			}
		}
	}
}

// ForEachTriangleEdgeD calls fn for each triangle {u, v, w} on the edge
// between dense vertices u and v, passing the third vertex w (ascending
// dense order) and the dense edge ids e1 = {u, w}, e2 = {v, w}. Balanced
// rows are intersected by linear merge; badly skewed pairs switch to
// binary search over the larger row. If fn returns false the iteration
// stops.
func (d *Dense) ForEachTriangleEdgeD(u, v int32, fn func(w, e1, e2 int32) bool) {
	ra, rb := d.rows[u], d.rows[v]
	if len(ra) > 16*len(rb) || len(rb) > 16*len(ra) {
		swapped := len(ra) > len(rb)
		if swapped {
			ra, rb = rb, ra
		}
		j := 0
		for _, pa := range ra {
			w := int32(pa >> 32)
			at, ok := packedSearch(rb[j:], w)
			j += at
			if !ok {
				continue
			}
			e1, e2 := int32(uint32(pa)), int32(uint32(rb[j]))
			if swapped {
				e1, e2 = e2, e1
			}
			if !fn(w, e1, e2) {
				return
			}
			j++
		}
		return
	}
	i, j := 0, 0
	for i < len(ra) && j < len(rb) {
		x, y := ra[i]>>32, rb[j]>>32
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			if !fn(int32(x), int32(uint32(ra[i])), int32(uint32(rb[j]))) { //trikcheck:checked x = packed>>32, a dense position
				return
			}
			i++
			j++
		}
	}
}

// Materialize builds a standalone mutable Graph holding the same vertices
// and edges. It shares nothing with the Dense view.
func (d *Dense) Materialize() *Graph {
	g := NewWithCapacity(d.nv)
	for p, v := range d.orig {
		if !d.vlive[p] {
			continue
		}
		g.AddVertex(v)
		for _, packed := range d.rows[p] {
			if w := int32(packed >> 32); int32(p) < w { //trikcheck:checked p indexes rows, bounded to int32 by Intern
				g.AddEdge(v, d.orig[w])
			}
		}
	}
	return g
}
