package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestDenseRandomOpsMirrorsGraph drives a Dense and a map-backed Graph
// through the same randomized insert/delete stream and checks that every
// membership query, count, and triangle listing agrees.
func TestDenseRandomOpsMirrorsGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDense()
	g := New()
	const nv = 24
	for step := 0; step < 4000; step++ {
		u := Vertex(rng.Intn(nv))
		v := Vertex(rng.Intn(nv))
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			eid := d.EdgeIDV(u, v)
			if eid < 0 {
				t.Fatalf("step %d: edge {%d,%d} in Graph but not Dense", step, u, v)
			}
			d.RemoveEdgeByID(eid)
			g.RemoveEdge(u, v)
		} else {
			if _, added := d.AddEdgeV(u, v); !added {
				t.Fatalf("step %d: Dense had edge {%d,%d} that Graph lacked", step, u, v)
			}
			g.AddEdge(u, v)
		}
		if d.NumEdges() != g.NumEdges() {
			t.Fatalf("step %d: NumEdges %d != %d", step, d.NumEdges(), g.NumEdges())
		}
	}

	// Every Graph edge resolves in Dense with consistent endpoints.
	for _, e := range g.Edges() {
		eid := d.EdgeIDV(e.U, e.V)
		if eid < 0 {
			t.Fatalf("edge %v missing from Dense", e)
		}
		if !d.EdgeLive(eid) {
			t.Fatalf("edge %v id %d not live", e, eid)
		}
		if got := d.EdgeAt(eid); got != e {
			t.Fatalf("EdgeAt(%d) = %v, want %v", eid, got, e)
		}
	}
	// Triangle kernel agrees with the map-backed graph on every edge.
	for _, e := range g.Edges() {
		want := g.CommonNeighbors(e.U, e.V)
		if want == nil {
			want = []Vertex{}
		}
		du, _ := d.DenseOf(e.U)
		dv, _ := d.DenseOf(e.V)
		got := []Vertex{}
		d.ForEachTriangleEdgeD(du, dv, func(w, e1, e2 int32) bool {
			ow := d.OrigOf(w)
			got = append(got, ow)
			if a := d.EdgeAt(e1); a != NewEdge(e.U, ow) && a != NewEdge(e.V, ow) {
				t.Fatalf("e1 of triangle {%v,%d}: got %v", e, ow, a)
			}
			if b := d.EdgeAt(e2); b != NewEdge(e.V, ow) {
				t.Fatalf("e2 of triangle {%v,%d}: got %v, want %v", e, ow, b, NewEdge(e.V, ow))
			}
			return true
		})
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("triangles on %v: got thirds %v, want %v", e, got, want)
		}
	}
	// Materialize round-trips to an equal graph.
	mg := d.Materialize()
	if !reflect.DeepEqual(mg.Edges(), g.Edges()) {
		t.Fatalf("Materialize edges mismatch")
	}
	if !reflect.DeepEqual(mg.Vertices(), g.Vertices()) {
		t.Fatalf("Materialize vertices mismatch: got %v, want %v", mg.Vertices(), g.Vertices())
	}
}

// TestDenseEdgeIDReuse checks the allocator recycles freed ids LIFO and
// keeps ids packed below EdgeCap.
func TestDenseEdgeIDReuse(t *testing.T) {
	d := NewDense()
	e0, _ := d.AddEdgeV(1, 2)
	e1, _ := d.AddEdgeV(2, 3)
	e2, _ := d.AddEdgeV(3, 1)
	if e0 != 0 || e1 != 1 || e2 != 2 {
		t.Fatalf("fresh ids = %d,%d,%d, want 0,1,2", e0, e1, e2)
	}
	d.RemoveEdgeByID(e1)
	if d.EdgeLive(e1) {
		t.Fatal("freed id still live")
	}
	r, added := d.AddEdgeV(5, 6)
	if !added || r != e1 {
		t.Fatalf("recycled id = %d (added=%v), want %d", r, added, e1)
	}
	if d.EdgeCap() != 3 {
		t.Fatalf("EdgeCap = %d, want 3", d.EdgeCap())
	}
	if got := d.EdgeAt(r); got != NewEdge(5, 6) {
		t.Fatalf("EdgeAt(recycled) = %v", got)
	}
}

// TestDenseVertexReuse checks vertex slot recycling and the isolated-only
// removal contract.
func TestDenseVertexReuse(t *testing.T) {
	d := NewDense()
	d.AddEdgeV(10, 20)
	p20, _ := d.DenseOf(20)
	if d.RemoveVertexV(99) {
		t.Fatal("removed an absent vertex")
	}
	eid := d.EdgeIDV(10, 20)
	d.RemoveEdgeByID(eid)
	if !d.RemoveVertexV(20) {
		t.Fatal("failed to remove isolated vertex")
	}
	if d.HasVertex(20) {
		t.Fatal("vertex 20 still present")
	}
	p, added := d.Intern(33)
	if !added || p != p20 {
		t.Fatalf("Intern(33) = slot %d (added=%v), want recycled slot %d", p, added, p20)
	}
	if d.NumVertices() != 2 {
		t.Fatalf("NumVertices = %d, want 2", d.NumVertices())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("RemoveVertexV on a non-isolated vertex did not panic")
		}
	}()
	d.AddEdgeV(33, 10)
	d.RemoveVertexV(33)
}

// TestDenseFromStatic checks that NewDenseFromStatic preserves the Static
// view's dense vertex positions and edge ids exactly, and that the copy is
// independently mutable.
func TestDenseFromStatic(t *testing.T) {
	g := FromPairs(1, 2, 2, 3, 3, 1, 3, 4, 4, 5, 5, 3, 1, 9)
	s := FreezeStatic(g)
	d := NewDenseFromStatic(s)

	if d.NumVertices() != s.NumVertices() || d.NumEdges() != s.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d",
			d.NumVertices(), d.NumEdges(), s.NumVertices(), s.NumEdges())
	}
	for i := 0; i < s.NumEdges(); i++ {
		se := s.EdgeAt(int32(i))
		if ge := d.EdgeAt(int32(i)); ge != se {
			t.Fatalf("edge id %d: Dense %v != Static %v", i, ge, se)
		}
		if got := d.EdgeIDV(se.U, se.V); got != int32(i) {
			t.Fatalf("EdgeIDV(%v) = %d, want %d", se, got, i)
		}
	}
	for v, p := range s.Pos {
		if dp, ok := d.DenseOf(v); !ok || dp != p {
			t.Fatalf("DenseOf(%d) = %d, want %d", v, dp, p)
		}
	}

	// Mutating the Dense copy must not disturb preserved ids: grow a row
	// past its borrowed segment, then delete an original edge.
	d.AddEdgeV(1, 100)
	d.AddEdgeV(1, 101)
	d.AddEdgeV(1, 102)
	d.RemoveEdgeByID(d.EdgeIDV(3, 4))
	if d.EdgeIDV(3, 4) >= 0 {
		t.Fatal("deleted edge still resolves")
	}
	for _, e := range []Edge{NewEdge(1, 2), NewEdge(3, 5), NewEdge(1, 9)} {
		if d.EdgeIDV(e.U, e.V) < 0 {
			t.Fatalf("edge %v lost after mutation", e)
		}
	}
}

// TestDenseSkewedTriangleMerge exercises the galloping path: one endpoint
// with a fat row against a degree-2 endpoint.
func TestDenseSkewedTriangleMerge(t *testing.T) {
	d := NewDense()
	// Hub 0 connected to 1..100; vertex 200 connected to 0 and to a few
	// of the hub's neighbors — each gives a triangle on edge {0, 200}.
	for v := Vertex(1); v <= 100; v++ {
		d.AddEdgeV(0, v)
	}
	d.AddEdgeV(0, 200)
	wantThirds := []Vertex{7, 42, 99}
	for _, w := range wantThirds {
		d.AddEdgeV(200, w)
	}
	du, _ := d.DenseOf(0)
	dv, _ := d.DenseOf(200)
	var got []Vertex
	d.ForEachTriangleEdgeD(du, dv, func(w, e1, e2 int32) bool {
		got = append(got, d.OrigOf(w))
		if d.EdgeIDD(du, w) != e1 || d.EdgeIDD(dv, w) != e2 {
			t.Fatalf("edge ids wrong for third %d", d.OrigOf(w))
		}
		return true
	})
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !reflect.DeepEqual(got, wantThirds) {
		t.Fatalf("thirds = %v, want %v", got, wantThirds)
	}
}
