package graph

import "math"

// Freeze builds an immutable Static CSR view directly from the dense
// substrate, with no intermediate Graph and no re-sorting: the packed
// per-vertex rows are already sorted by dense neighbor id, so unpacking
// them in slot order yields valid CSR rows as-is.
//
// Dense vertex positions and edge ids are preserved outright when no slot
// is free. Otherwise live slots are compacted in ascending dense-id order;
// because that relabeling is monotone, row sort order and the
// EdgeU < EdgeV invariant survive it unchanged. The second return value
// maps each static edge id back to the dense edge id it came from, so
// callers can project flat per-edge state (κ) onto the frozen view.
//
// Unlike FreezeStatic, edge ids follow dense allocation order rather than
// lexicographic (u, v) order; consumers must not assume lexicographic ids
// on a frozen Dense. The view shares nothing with d: later mutation of d
// does not affect it, and concurrent readers of the returned Static never
// observe dense churn.
func (d *Dense) Freeze() (*Static, []int32) {
	n, m := d.nv, d.ne
	// Same overflow stance as FreezeStatic: the 2M adjacency offsets are
	// int32, so refuse rather than truncate. Vertex ids are already bounded
	// by Intern's capacity panic; the annotations below cite these guards.
	if m > math.MaxInt32/2 {
		panic("graph: Freeze edge count exceeds int32 capacity")
	}
	s := &Static{
		OrigID:    make([]Vertex, n),
		Pos:       make(map[Vertex]int32, n),
		RowPtr:    make([]int32, n+1),
		AdjNbr:    make([]int32, 2*m),
		AdjEdgeID: make([]int32, 2*m),
		EdgeU:     make([]int32, m),
		EdgeV:     make([]int32, m),
	}
	// Compact live vertex slots in ascending dense order. With no free
	// slots posOf is the identity and dense positions carry over verbatim.
	posOf := make([]int32, len(d.orig))
	var p int32
	for u, live := range d.vlive {
		if !live {
			posOf[u] = -1
			continue
		}
		posOf[u] = p
		s.OrigID[p] = d.orig[u]
		s.Pos[d.orig[u]] = p
		s.RowPtr[p+1] = s.RowPtr[p] + int32(len(d.rows[u])) //trikcheck:checked row lengths sum to 2m, guarded above
		p++
	}
	// Same compaction over edge slots; edgeOf is the static→dense map.
	eidOf := make([]int32, len(d.edgeU))
	edgeOf := make([]int32, m)
	var k int32
	for i, u := range d.edgeU {
		if u < 0 {
			eidOf[i] = -1
			continue
		}
		eidOf[i] = k
		edgeOf[k] = int32(i) //trikcheck:checked i indexes edgeU, bounded to int32 by AddEdgeV
		s.EdgeU[k] = posOf[u]
		s.EdgeV[k] = posOf[d.edgeV[i]]
		k++
	}
	// Unpack the rows straight into the CSR arrays, remapping both halves
	// of each packed entry through the compaction maps.
	at := 0
	for u, live := range d.vlive {
		if !live {
			continue
		}
		for _, packed := range d.rows[u] {
			s.AdjNbr[at] = posOf[packed>>32]
			s.AdjEdgeID[at] = eidOf[int32(uint32(packed))]
			at++
		}
	}
	s.buildOriented()
	return s, edgeOf
}
