//go:build unix

package graph

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// fileMap is a byte view of a file region. On unix it is a real
// MAP_SHARED mapping: reads fault pages in from the page cache and
// writable builds land directly in the file, so neither path holds the
// array contents on the Go heap.
type fileMap struct {
	data []byte
	f    *os.File
}

// mapFile maps size bytes of f from offset 0. Read-only mappings are
// PROT_READ, so any accidental store through an aliased slice faults
// instead of silently corrupting a shared snapshot.
func mapFile(f *os.File, size int64, writable bool) (*fileMap, error) {
	if size <= 0 {
		return nil, fmt.Errorf("graph: cannot map %d bytes of %s", size, f.Name())
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("graph: %s is too large to map on this platform (%d bytes)", f.Name(), size)
	}
	prot := syscall.PROT_READ
	if writable {
		prot |= syscall.PROT_WRITE
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), prot, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %w", f.Name(), err)
	}
	return &fileMap{data: data, f: f}, nil
}

// unmap releases the mapping and closes the underlying file.
func (fm *fileMap) unmap() error {
	if fm.data == nil {
		return nil
	}
	err := syscall.Munmap(fm.data)
	fm.data = nil
	if err != nil {
		err = fmt.Errorf("graph: munmap %s: %w", fm.f.Name(), err)
	}
	return errors.Join(err, fm.f.Close())
}
