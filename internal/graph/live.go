package graph

// LiveAdj is a mutable copy of a Static view's adjacency that supports
// removing edges as a peeling algorithm processes them. Rows stay sorted,
// so common-neighbor merges keep working — but they scan only the edges
// still live, which is what turns Algorithm 1's triangle visits from
// O(Σ d_u + d_v) over full rows into merges that shrink as the peel
// progresses. An entry w in u's live row exists exactly while the edge
// {u, w} is unremoved, so a triangle found by merging two live rows is
// guaranteed to consist of live edges only — no processed-edge checks
// needed in the inner loop.
//
// Each entry packs (neighbor << 32 | edge id) into one int64, so the
// merge streams a single array and a removal is a single memmove. Packing
// preserves per-row order because neighbors are unique within a row.
type LiveAdj struct {
	s   *Static
	row []int64 // packed (nbr<<32 | edge id), live prefix per vertex
	end []int32 // per-vertex live end: u's live row is row[s.RowPtr[u]:end[u]]
}

func packLive(w, eid int32) int64 { return int64(w)<<32 | int64(uint32(eid)) }

// NewLiveAdj returns a fresh live adjacency over s. The Static view is
// not modified; each LiveAdj owns its row storage.
func NewLiveAdj(s *Static) *LiveAdj {
	la := &LiveAdj{
		s:   s,
		row: make([]int64, len(s.AdjNbr)),
		end: make([]int32, s.NumVertices()),
	}
	for p, w := range s.AdjNbr {
		la.row[p] = packLive(w, s.AdjEdgeID[p])
	}
	for u := range la.end {
		la.end[u] = s.RowPtr[u+1]
	}
	return la
}

// RemoveEdge deletes edge i from both endpoint rows. Callers are expected
// to remove each edge once.
func (la *LiveAdj) RemoveEdge(i int32) {
	u, v := la.s.EdgeU[i], la.s.EdgeV[i]
	la.removeFromRow(u, v)
	la.removeFromRow(v, u)
}

// searchRow binary-searches for neighbor w in la.row[lo:hi], returning
// the insertion point within [lo, hi] and whether the entry there is w.
func (la *LiveAdj) searchRow(lo, hi, w int32) (int32, bool) {
	key := int64(w) << 32
	a := la.row
	end := hi
	for lo < hi {
		mid := (lo + hi) >> 1
		if a[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < end && a[lo]>>32 == int64(w)
}

// removeFromRow deletes w from u's live row, preserving sort order with a
// tail shift (cheap: rows are short by the time heavy vertices peel, and
// the shift is a single memmove of packed entries).
func (la *LiveAdj) removeFromRow(u, w int32) {
	lo, hi := la.s.RowPtr[u], la.end[u]
	at, ok := la.searchRow(lo, hi, w)
	if !ok {
		return
	}
	copy(la.row[at:hi-1], la.row[at+1:hi])
	la.end[u] = hi - 1
}

// Degree returns the number of live edges on dense vertex u.
func (la *LiveAdj) Degree(u int32) int { return int(la.end[u] - la.s.RowPtr[u]) }

// ForEachTriangleEdge calls fn for each triangle {u, v, w} whose edges
// {u, w} and {v, w} are both live, passing w (ascending) and the two
// dense edge ids. Balanced rows are intersected by linear merge; badly
// skewed pairs (a low-degree vertex peeled against a still-fat hub row,
// the common case early in a power-law peel) switch to binary search over
// the larger row, turning O(d_u + d_v) into O(d_min · log d_max). If fn
// returns false the iteration stops.
func (la *LiveAdj) ForEachTriangleEdge(u, v int32, fn func(w, e1, e2 int32) bool) {
	i, iEnd := la.s.RowPtr[u], la.end[u]
	j, jEnd := la.s.RowPtr[v], la.end[v]
	a := la.row
	du, dv := iEnd-i, jEnd-j
	if du > 16*dv || dv > 16*du {
		// Probe with the smaller row; swap yields e1/e2 back into
		// {u,w}/{v,w} order when the roles flip.
		swapped := du > dv
		if swapped {
			i, iEnd, j, jEnd = j, jEnd, i, iEnd
		}
		for ; i < iEnd && j < jEnd; i++ {
			w := int32(a[i] >> 32)
			at, ok := la.searchRow(j, jEnd, w)
			j = at // insertion point: everything before it sorts below w
			if !ok {
				continue
			}
			e1, e2 := int32(uint32(a[i])), int32(uint32(a[j]))
			if swapped {
				e1, e2 = e2, e1
			}
			if !fn(w, e1, e2) {
				return
			}
			j++
		}
		return
	}
	for i < iEnd && j < jEnd {
		x, y := a[i]>>32, a[j]>>32
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			if !fn(int32(x), int32(uint32(a[i])), int32(uint32(a[j]))) { //trikcheck:checked x = packed>>32, a dense position
				return
			}
			i++
			j++
		}
	}
}
