package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk container format shared by the two TKCG layouts.
//
// Every TKCG file starts with the 4-byte magic "TKCG" followed by a
// version byte. Version 1 files (the original snapshot codec) carry the
// varint edge-list payload directly after the version byte, with no
// integrity check. Version 2 files add a layout byte after the version:
//
//	layoutSnapshot (0x01): the same varint edge-list payload, followed
//	  by a 4-byte little-endian CRC32 (IEEE) of everything before it.
//	layoutMapped (0x02): the mmap-friendly on-disk CSR described below,
//	  designed so OpenMapped can serve a read-only *Static directly off
//	  the page cache without parsing.
//
// Mapped layout (all integers little-endian):
//
//	offset 0   magic "TKCG"
//	offset 4   version byte (0x02)
//	offset 5   layout byte (0x02)
//	offset 6   2 reserved zero bytes
//	offset 8   u64 page size the sections are aligned to (4096)
//	offset 16  u64 vertex count N
//	offset 24  u64 edge count M
//	offset 32  u64 section count
//	offset 40  section table: sectionCount × {u64 id, u64 offset, u64 len}
//	...        page-aligned sections, in id order
//	tail       u32 CRC32 (IEEE) of file[0 : size-8], u32 trailer "TKC2"
//
// The nine sections are the flat arrays of graph.Static, in the exact
// in-memory representation (int32 little-endian), so a mapped file IS
// the frozen view: RowPtr, AdjNbr, AdjEdgeID, EdgeU, EdgeV, OutPtr,
// OutNbr, OutEdgeID, OrigID. Page alignment keeps every section
// int32-aligned for direct slicing and lets the kernel fault each array
// independently.
var (
	tkcgMagic = [4]byte{'T', 'K', 'C', 'G'}

	// ErrCorrupt reports a TKCG file whose bytes fail an integrity
	// check: a CRC mismatch, a truncated payload, or a section table
	// that does not describe the file. Callers test with errors.Is.
	ErrCorrupt = errors.New("corrupt TKCG file")
)

const (
	tkcgVersion1 = 0x01 // varint snapshot, no CRC (legacy)
	tkcgVersion2 = 0x02 // layout byte + CRC32 integrity

	layoutSnapshot = 0x01 // varint edge-list payload
	layoutMapped   = 0x02 // page-aligned CSR sections

	mappedPageSize = 4096
	// mappedHeaderFixed is the byte offset of the section table.
	mappedHeaderFixed = 40
	// mappedFooterLen is the CRC + trailer magic at the end of the file.
	mappedFooterLen = 8
)

// mappedTrailer is the little-endian u32 spelled "TKC2" that closes a
// mapped file; its presence distinguishes truncation from CRC damage.
var mappedTrailer = uint32('T') | uint32('K')<<8 | uint32('C')<<16 | uint32('2')<<24

// Section ids, in file order. OrigID sits last so the hot CSR arrays
// share leading pages.
const (
	secRowPtr = 1 + iota
	secAdjNbr
	secAdjEdgeID
	secEdgeU
	secEdgeV
	secOutPtr
	secOutNbr
	secOutEdgeID
	secOrigID
	mappedSectionCount = secOrigID
)

// mappedSection is one section-table entry.
type mappedSection struct {
	id, off, length uint64 // length in bytes
}

// mappedLayout is the computed file geometry for an (n, m) graph.
type mappedLayout struct {
	n, m     int
	sections [mappedSectionCount]mappedSection
	fileSize int64
}

// sectionCounts returns the int32 element count of each section for an
// (n, m) graph, indexed by section id - 1.
func sectionCounts(n, m int) [mappedSectionCount]int {
	return [mappedSectionCount]int{
		n + 1, // RowPtr
		2 * m, // AdjNbr
		2 * m, // AdjEdgeID
		m,     // EdgeU
		m,     // EdgeV
		n + 1, // OutPtr
		m,     // OutNbr
		m,     // OutEdgeID
		n,     // OrigID
	}
}

func pageAlign(off int64) int64 {
	return (off + mappedPageSize - 1) &^ (mappedPageSize - 1)
}

// computeMappedLayout lays the sections out page-aligned in id order.
func computeMappedLayout(n, m int) mappedLayout {
	lay := mappedLayout{n: n, m: m}
	counts := sectionCounts(n, m)
	off := pageAlign(mappedHeaderFixed + mappedSectionCount*24)
	for i, c := range counts {
		lay.sections[i] = mappedSection{id: uint64(i + 1), off: uint64(off), length: uint64(c) * 4}
		off = pageAlign(off + int64(c)*4)
	}
	lay.fileSize = off + mappedFooterLen
	return lay
}

// encodeMappedHeader writes the fixed header and section table into
// buf[0:mappedHeaderFixed+sections*24].
func (lay mappedLayout) encodeHeader(buf []byte) {
	copy(buf[0:4], tkcgMagic[:])
	buf[4] = tkcgVersion2
	buf[5] = layoutMapped
	buf[6], buf[7] = 0, 0
	le := binary.LittleEndian
	le.PutUint64(buf[8:], mappedPageSize)
	le.PutUint64(buf[16:], uint64(lay.n))
	le.PutUint64(buf[24:], uint64(lay.m))
	le.PutUint64(buf[32:], mappedSectionCount)
	for i, s := range lay.sections {
		base := mappedHeaderFixed + i*24
		le.PutUint64(buf[base:], s.id)
		le.PutUint64(buf[base+8:], s.off)
		le.PutUint64(buf[base+16:], s.length)
	}
}

// parseMappedHeader validates the header of a mapped file against the
// file size and returns the layout it describes. Every failure wraps
// ErrCorrupt except a wrong magic/version/layout, which is a format
// error (the file is not a mapped TKCG at all).
func parseMappedHeader(data []byte) (mappedLayout, error) {
	var lay mappedLayout
	// Identify the format before validating sizes, so a healthy file of
	// another TKCG layout reads as "wrong layout" (a format error the
	// caller can fall back from) rather than as corruption.
	if len(data) >= 4 && [4]byte(data[0:4]) != tkcgMagic {
		return lay, fmt.Errorf("graph: bad magic %q (not a TKCG file)", data[0:4])
	}
	if len(data) >= 6 && (data[4] != tkcgVersion2 || data[5] != layoutMapped) {
		return lay, fmt.Errorf("graph: TKCG version %d layout %d is not a mapped CSR (convert with layout csr)", data[4], data[5])
	}
	if len(data) < mappedHeaderFixed+mappedSectionCount*24+mappedFooterLen {
		return lay, fmt.Errorf("graph: %w: %d-byte file is too small for a mapped header", ErrCorrupt, len(data))
	}
	le := binary.LittleEndian
	if ps := le.Uint64(data[8:]); ps != mappedPageSize {
		return lay, fmt.Errorf("graph: %w: page size %d, want %d", ErrCorrupt, ps, mappedPageSize)
	}
	n, m := le.Uint64(data[16:]), le.Uint64(data[24:])
	const maxCount = 1 << 31 // mirrors the snapshot codec's bound
	if n >= maxCount || m >= maxCount/2 {
		return lay, fmt.Errorf("graph: %w: counts |V|=%d |E|=%d exceed int32 capacity", ErrCorrupt, n, m)
	}
	if sc := le.Uint64(data[32:]); sc != mappedSectionCount {
		return lay, fmt.Errorf("graph: %w: section count %d, want %d", ErrCorrupt, sc, mappedSectionCount)
	}
	want := computeMappedLayout(int(n), int(m))
	if int64(len(data)) != want.fileSize {
		return lay, fmt.Errorf("graph: %w: file is %d bytes, layout for |V|=%d |E|=%d needs %d",
			ErrCorrupt, len(data), n, m, want.fileSize)
	}
	for i, s := range want.sections {
		base := mappedHeaderFixed + i*24
		got := mappedSection{id: le.Uint64(data[base:]), off: le.Uint64(data[base+8:]), length: le.Uint64(data[base+16:])}
		if got != s {
			return lay, fmt.Errorf("graph: %w: section %d is {id %d, off %d, len %d}, want {id %d, off %d, len %d}",
				ErrCorrupt, i, got.id, got.off, got.length, s.id, s.off, s.length)
		}
	}
	return want, nil
}

// checkMappedFooter verifies the trailer magic and the whole-file CRC.
func checkMappedFooter(data []byte) error {
	le := binary.LittleEndian
	tail := data[len(data)-mappedFooterLen:]
	if got := le.Uint32(tail[4:]); got != mappedTrailer {
		return fmt.Errorf("graph: %w: trailer %#x, want %#x (truncated write?)", ErrCorrupt, got, mappedTrailer)
	}
	want := le.Uint32(tail[:4])
	if got := crc32.ChecksumIEEE(data[:len(data)-mappedFooterLen]); got != want {
		return fmt.Errorf("graph: %w: CRC32 %#x, want %#x", ErrCorrupt, got, want)
	}
	return nil
}

// sealMapped stamps the CRC + trailer over the last 8 bytes of data.
func sealMapped(data []byte) {
	le := binary.LittleEndian
	tail := data[len(data)-mappedFooterLen:]
	le.PutUint32(tail[:4], crc32.ChecksumIEEE(data[:len(data)-mappedFooterLen]))
	le.PutUint32(tail[4:], mappedTrailer)
}
