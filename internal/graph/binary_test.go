package graph

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := randomGraph(60, 0.15, 9)
	g.AddVertex(5000) // isolated vertex must survive
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) || !reflect.DeepEqual(g.Vertices(), g2.Vertices()) {
		t.Fatal("binary round trip changed the graph")
	}
}

func TestBinaryQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(25, 0.3, seed)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(g.Edges(), g2.Edges()) &&
			reflect.DeepEqual(g.Vertices(), g2.Vertices())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, New()); err != nil {
		t.Fatal(err)
	}
	g, err := ReadBinary(&buf)
	if err != nil || g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty round trip: %v, %d/%d", err, g.NumVertices(), g.NumEdges())
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	g := randomGraph(200, 0.1, 3)
	var bin, txt bytes.Buffer
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(&txt, g); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len() {
		t.Fatalf("binary %d bytes not smaller than text %d bytes", bin.Len(), txt.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,                    // empty
		[]byte("TKCG"),         // truncated header
		[]byte("XXXX\x01rest"), // bad magic
		[]byte("TKCG\x02"),     // wrong version
		[]byte("TKCG\x01\x05"), // vertex count 5, no data
		{'T', 'K', 'C', 'G', 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // absurd count
	}
	for i, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}

func TestBinaryRejectsInconsistency(t *testing.T) {
	// Hand-build: 2 vertices (1, 2), 1 edge with V offset 0 (self-loop).
	data := []byte{'T', 'K', 'C', 'G', 1, 2, 1, 1, 1, 1, 0}
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("self-loop accepted")
	}
	// Edge referencing undeclared vertex: vertices {1,2}, edge 1→gap... U=1, V=1+5=6.
	data = []byte{'T', 'K', 'C', 'G', 1, 2, 1, 1, 1, 1, 5}
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("undeclared endpoint accepted")
	}
	// Duplicate edge.
	data = []byte{'T', 'K', 'C', 'G', 1, 2, 1, 1, 2, 1, 1, 0, 1}
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	// Duplicate vertex (zero gap after the first).
	data = []byte{'T', 'K', 'C', 'G', 1, 2, 1, 0, 0}
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("duplicate vertex accepted")
	}
}

func TestBinaryReadsLegacyV1(t *testing.T) {
	// Hand-encoded v1 snapshot: vertices {1, 2, 3}, edges 1-2, 2-3.
	data := []byte{'T', 'K', 'C', 'G', 0x01,
		3, 1, 1, 1, // |V|=3, gaps 1,1,1
		2, 1, 1, 1, 1} // |E|=2, (uGap=1,vOff=1), (uGap=1,vOff=1)
	g, err := ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	want := FromPairs(1, 2, 2, 3)
	if !reflect.DeepEqual(g.Edges(), want.Edges()) {
		t.Fatalf("v1 decode got %v, want %v", g.Edges(), want.Edges())
	}
}

func TestBinaryV2Corruption(t *testing.T) {
	g := randomGraph(40, 0.2, 11)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()

	t.Run("flipped payload byte", func(t *testing.T) {
		data := bytes.Clone(orig)
		data[len(data)/2] ^= 0x01
		if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("flipped CRC byte", func(t *testing.T) {
		data := bytes.Clone(orig)
		data[len(data)-1] ^= 0x01
		if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := ReadBinary(bytes.NewReader(orig[:len(orig)-3])); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("intact", func(t *testing.T) {
		g2, err := ReadBinary(bytes.NewReader(orig))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
			t.Error("intact v2 snapshot decoded to a different graph")
		}
	})
}

func TestLoadBinaryFileMaterializesMapped(t *testing.T) {
	g := randomGraph(30, 0.2, 12)
	path := filepath.Join(t.TempDir(), "g.tkcg")
	if err := WriteMapped(path, FreezeStatic(g)); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinaryFile(path)
	if err != nil {
		t.Fatalf("LoadBinaryFile on mapped layout: %v", err)
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) || !reflect.DeepEqual(g.Vertices(), g2.Vertices()) {
		t.Fatal("materialized mapped graph differs from the original")
	}
	// ReadBinary itself must refuse the mapped layout with a clear error.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := ReadBinary(f); err == nil || !strings.Contains(err.Error(), "OpenMapped") {
		t.Errorf("ReadBinary on mapped layout: err = %v, want pointer to OpenMapped", err)
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := FromPairs(1, 2, 2, 3, 3, 1)
	path := filepath.Join(t.TempDir(), "g.tkcg")
	if err := SaveBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Fatal("file round trip changed the graph")
	}
	if _, err := LoadBinaryFile(filepath.Join(t.TempDir(), "nope.tkcg")); err == nil {
		t.Fatal("missing file accepted")
	}
}
