package graph

import (
	"errors"
	"fmt"
	"math"
	"os"
	"slices"
	"unsafe"
)

// This file implements the TKCG v2 mapped layout (see format.go): a
// page-aligned on-disk CSR that OpenMapped serves as a read-only
// *Static directly off the page cache, and a streaming two-pass builder
// that converts edge lists bigger than RAM without ever materializing
// the edge set in memory.

// hostLittleEndian reports whether the running machine stores integers
// little-endian. The mapped format is defined little-endian and served
// zero-copy, so big-endian hosts are refused rather than silently
// misread.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// int32Slice aliases b's prefix as count int32 values without copying.
// Sections are page-aligned in the file and heap buffers are at least
// word-aligned, so the alignment check never fires in practice; it
// turns a violated assumption into a crash instead of corruption.
func int32Slice(b []byte, count int) []int32 {
	if count == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		panic("graph: misaligned int32 section")
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), count)
}

// Mapped is a read-only Static view served from an mmap'd TKCG v2 file.
// The flat arrays alias the mapping: they cost address space, not heap,
// and the kernel pages them in on demand and evicts them under memory
// pressure. Only the Pos intern map (O(|V|)) lives on the Go heap.
// Close unmaps the arrays; using the Static after Close faults.
type Mapped struct {
	s    *Static
	fm   *fileMap
	path string
	size int64
}

// Static returns the mapped CSR view. It satisfies every *Static
// algorithm (decomposition, triangle kernels) byte-for-byte like a
// FreezeStatic of the same graph.
func (m *Mapped) Static() *Static { return m.s }

// Path returns the file the view is mapped from.
func (m *Mapped) Path() string { return m.path }

// SizeBytes returns the on-disk (and address-space) size of the mapping.
func (m *Mapped) SizeBytes() int64 { return m.size }

// Close releases the mapping. The Static view must not be used after.
func (m *Mapped) Close() error { return m.fm.unmap() }

// OpenMapped maps the named TKCG v2 CSR file and returns it as a
// read-only graph view. The whole file is CRC-verified and structurally
// validated before use (one sequential read — it doubles as page-cache
// warm-up for the header pages); corrupt files fail with ErrCorrupt.
func OpenMapped(path string) (*Mapped, error) {
	if !hostLittleEndian {
		return nil, fmt.Errorf("graph: mapped TKCG files require a little-endian host")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, errors.Join(fmt.Errorf("graph: %w", err), f.Close())
	}
	fm, err := mapFile(f, st.Size(), false)
	if err != nil {
		return nil, errors.Join(err, f.Close())
	}
	m, err := openMappedData(fm, path, st.Size())
	if err != nil {
		return nil, errors.Join(err, fm.unmap())
	}
	return m, nil
}

func openMappedData(fm *fileMap, path string, size int64) (*Mapped, error) {
	lay, err := parseMappedHeader(fm.data)
	if err != nil {
		return nil, err
	}
	if err := checkMappedFooter(fm.data); err != nil {
		return nil, err
	}
	sec := func(id int) []int32 {
		s := lay.sections[id-1]
		return int32Slice(fm.data[s.off:s.off+s.length], int(s.length/4))
	}
	orig := sec(secOrigID)
	pos := make(map[Vertex]int32, lay.n)
	for i, v := range orig {
		pos[v] = int32(i) //trikcheck:checked parseMappedHeader bounds |V| below 2^31
	}
	s := &Static{
		OrigID:    orig,
		Pos:       pos,
		RowPtr:    sec(secRowPtr),
		AdjNbr:    sec(secAdjNbr),
		AdjEdgeID: sec(secAdjEdgeID),
		EdgeU:     sec(secEdgeU),
		EdgeV:     sec(secEdgeV),
		OutPtr:    sec(secOutPtr),
		OutNbr:    sec(secOutNbr),
		OutEdgeID: sec(secOutEdgeID),
	}
	if err := validateMappedStatic(s, lay.n, lay.m); err != nil {
		return nil, err
	}
	return &Mapped{s: s, fm: fm, path: path, size: size}, nil
}

// validateMappedStatic structurally checks the aliased arrays so a file
// with a forged CRC still cannot drive an algorithm out of bounds:
// monotone row pointers, sorted in-range rows, canonical sorted edges.
// Cross-array consistency (edge ids matching rows) is covered by the
// CRC; this pass only guards the indexing invariants algorithms rely on.
func validateMappedStatic(s *Static, n, m int) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("graph: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
	if s.RowPtr[0] != 0 || int(s.RowPtr[n]) != 2*m {
		return bad("RowPtr spans [%d, %d], want [0, %d]", s.RowPtr[0], s.RowPtr[n], 2*m)
	}
	if s.OutPtr[0] != 0 || int(s.OutPtr[n]) != m {
		return bad("OutPtr spans [%d, %d], want [0, %d]", s.OutPtr[0], s.OutPtr[n], m)
	}
	for u := 0; u < n; u++ {
		if s.RowPtr[u+1] < s.RowPtr[u] || s.OutPtr[u+1] < s.OutPtr[u] {
			return bad("row pointers for vertex %d decrease", u)
		}
		if u > 0 && s.OrigID[u] <= s.OrigID[u-1] {
			return bad("OrigID not strictly increasing at %d", u)
		}
		prev := int32(-1)
		for p := s.RowPtr[u]; p < s.RowPtr[u+1]; p++ {
			w := s.AdjNbr[p]
			if w < 0 || int(w) >= n || w <= prev || int(w) == u {
				return bad("adjacency row of vertex %d is not a sorted self-loop-free vertex list", u)
			}
			if id := s.AdjEdgeID[p]; id < 0 || int(id) >= m {
				return bad("edge id %d out of range in row %d", id, u)
			}
			prev = w
		}
		for p := s.OutPtr[u]; p < s.OutPtr[u+1]; p++ {
			w := s.OutNbr[p]
			if w < 0 || int(w) >= n || (p > s.OutPtr[u] && w <= s.OutNbr[p-1]) {
				return bad("oriented row of vertex %d is not sorted in range", u)
			}
			if id := s.OutEdgeID[p]; id < 0 || int(id) >= m {
				return bad("edge id %d out of range in oriented row %d", id, u)
			}
		}
	}
	for i := 0; i < m; i++ {
		u, v := s.EdgeU[i], s.EdgeV[i]
		if u < 0 || v < 0 || int(u) >= n || int(v) >= n || u >= v {
			return bad("edge %d endpoints (%d, %d) are not canonical in-range positions", i, u, v)
		}
		if i > 0 && (u < s.EdgeU[i-1] || (u == s.EdgeU[i-1] && v <= s.EdgeV[i-1])) {
			return bad("edge list not in strict lexicographic order at %d", i)
		}
	}
	return nil
}

// WriteMapped serializes an in-memory Static view to the named file in
// the TKCG v2 mapped layout, writing a temp file and renaming it into
// place so readers never observe a partial file. The result is
// byte-identical to what BuildMappedFile produces for the same graph.
func WriteMapped(path string, s *Static) error {
	if !hostLittleEndian {
		return fmt.Errorf("graph: mapped TKCG files require a little-endian host")
	}
	n, m := s.NumVertices(), s.NumEdges()
	lay := computeMappedLayout(n, m)
	buf := make([]byte, lay.fileSize)
	lay.encodeHeader(buf)
	fill := func(id int, src []int32) {
		sec := lay.sections[id-1]
		copy(int32Slice(buf[sec.off:sec.off+sec.length], int(sec.length/4)), src)
	}
	fill(secRowPtr, s.RowPtr)
	fill(secAdjNbr, s.AdjNbr)
	fill(secAdjEdgeID, s.AdjEdgeID)
	fill(secEdgeU, s.EdgeU)
	fill(secEdgeV, s.EdgeV)
	fill(secOutPtr, s.OutPtr)
	fill(secOutNbr, s.OutNbr)
	fill(secOutEdgeID, s.OutEdgeID)
	fill(secOrigID, s.OrigID)
	sealMapped(buf)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return errors.Join(fmt.Errorf("graph: %w", err), os.Remove(tmp))
	}
	return nil
}

// MappedBuildStats reports what BuildMappedFile wrote.
type MappedBuildStats struct {
	// Vertices and Edges are the deduplicated graph dimensions.
	Vertices, Edges int
	// Mentions counts input edge lines (duplicates and reversed
	// orientations included).
	Mentions int64
	// FileBytes is the size of the finished .tkcg file.
	FileBytes int64
}

// maxMappedMentions bounds the raw edge-line count the builder accepts:
// 2 × mentions provisional adjacency entries must stay indexable by
// int32 with headroom for the prefix sums.
const maxMappedMentions = 1 << 30

// BuildMappedFile streams the edge-list file at inPath into a TKCG v2
// mapped CSR at outPath without ever holding the edge set in memory.
// Resident memory is O(|V|) (degree counts, the intern table and row
// cursors); the adjacency bulk lives in two file mappings — a scratch
// rows file (outPath + ".rows", deleted on success) holding the
// duplicate-tolerant provisional rows, and the output itself, filled in
// place. The builder makes two scans of the input:
//
//	pass 1: count degrees and collect distinct vertex ids
//	pass 2: scatter dense neighbor positions into the scratch rows
//
// then sorts and deduplicates each row, packs the final CSR (identical
// byte-for-byte to FreezeStatic of the parsed graph), builds the
// degree-oriented half, and seals the CRC footer. Self-loops are
// rejected; duplicate edges and both orientations are tolerated.
func BuildMappedFile(inPath, outPath string) (MappedBuildStats, error) {
	var stats MappedBuildStats
	if !hostLittleEndian {
		return stats, fmt.Errorf("graph: mapped TKCG files require a little-endian host")
	}

	// Pass 1: degrees (duplicate mentions included) and the vertex set.
	deg := make(map[Vertex]int32)
	mentions := int64(0)
	err := ScanEdgeListFile(inPath, func(u, v Vertex) error {
		mentions++
		if mentions > maxMappedMentions {
			return fmt.Errorf("graph: %s: more than %d edge lines", inPath, maxMappedMentions)
		}
		deg[u]++
		deg[v]++
		return nil
	})
	if err != nil {
		return stats, err
	}
	n := len(deg)
	stats.Mentions = mentions
	if n >= math.MaxInt32 {
		return stats, fmt.Errorf("graph: %s: vertex count %d exceeds int32 capacity", inPath, n)
	}
	verts := make([]Vertex, 0, n)
	for v := range deg {
		verts = append(verts, v)
	}
	slices.Sort(verts)
	pos := make(map[Vertex]int32, n)
	for i, v := range verts {
		pos[v] = int32(i) //trikcheck:checked n < MaxInt32 guarded above
	}

	// Provisional row bounds over the duplicate-tolerant mention counts.
	// The total is 2 × mentions ≤ 2^31, so int32 prefix sums are safe.
	bound := make([]int32, n+1)
	for i, v := range verts {
		bound[i+1] = bound[i] + deg[v]
	}
	deg = nil

	// Pass 2: scatter dense positions into the scratch rows mapping.
	scratchPath := outPath + ".rows"
	scratch, err := createSized(scratchPath, 2*mentions*4)
	if err != nil {
		return stats, err
	}
	cleanupScratch := func() error {
		if scratch == nil {
			return nil // zero mentions: no scratch file was created
		}
		err := scratch.unmap()
		scratch = nil
		return errors.Join(err, os.Remove(scratchPath))
	}
	var adj []int32
	if scratch != nil {
		adj = int32Slice(scratch.data, int(2*mentions))
	}
	cur := make([]int32, n)
	copy(cur, bound[:n])
	err = ScanEdgeListFile(inPath, func(u, v Vertex) error {
		pu, okU := pos[u]
		pv, okV := pos[v]
		if !okU || !okV || cur[pu] >= bound[pu+1] || cur[pv] >= bound[pv+1] {
			return fmt.Errorf("graph: %s changed between builder passes", inPath)
		}
		adj[cur[pu]] = pv
		cur[pu]++
		adj[cur[pv]] = pu
		cur[pv]++
		return nil
	})
	if err != nil {
		return stats, errors.Join(err, cleanupScratch())
	}
	for i := range cur {
		if cur[i] != bound[i+1] {
			return stats, errors.Join(
				fmt.Errorf("graph: %s changed between builder passes", inPath), cleanupScratch())
		}
	}

	// Sort and deduplicate each provisional row in place; the compacted
	// prefix of each row is the final adjacency row.
	finalLen := make([]int32, n)
	total := int64(0)
	for u := 0; u < n; u++ {
		row := adj[bound[u]:bound[u+1]]
		slices.Sort(row)
		k := 0
		for p, w := range row {
			if p == 0 || w != row[p-1] {
				row[k] = w
				k++
			}
		}
		finalLen[u] = int32(k) //trikcheck:checked k ≤ len(row) ≤ 2·maxMappedMentions, int32-safe
		total += int64(k)
	}
	if total%2 != 0 {
		return stats, errors.Join(fmt.Errorf("graph: internal error: odd adjacency total %d", total), cleanupScratch())
	}
	m := int(total / 2)
	stats.Vertices, stats.Edges = n, m

	// Lay out and fill the output file in place, then seal and rename.
	lay := computeMappedLayout(n, m)
	stats.FileBytes = lay.fileSize
	tmpPath := outPath + ".tmp"
	out, err := createSized(tmpPath, lay.fileSize)
	if err != nil {
		return stats, errors.Join(err, cleanupScratch())
	}
	if err := fillMapped(out.data, lay, verts, bound, finalLen, adj); err != nil {
		return stats, errors.Join(err, out.unmap(), os.Remove(tmpPath), cleanupScratch())
	}
	sealMapped(out.data)
	if err := out.unmap(); err != nil {
		return stats, errors.Join(err, os.Remove(tmpPath), cleanupScratch())
	}
	if err := cleanupScratch(); err != nil {
		return stats, errors.Join(err, os.Remove(tmpPath))
	}
	if err := os.Rename(tmpPath, outPath); err != nil {
		return stats, errors.Join(fmt.Errorf("graph: %w", err), os.Remove(tmpPath))
	}
	return stats, nil
}

// createSized creates (truncating) a file of exactly size bytes and
// returns it mapped writable. A zero size returns (nil, nil): there is
// nothing to map and callers skip the file.
func createSized(path string, size int64) (*fileMap, error) {
	if size == 0 {
		return nil, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	if err := f.Truncate(size); err != nil {
		return nil, errors.Join(fmt.Errorf("graph: sizing %s: %w", path, err), f.Close())
	}
	fm, err := mapFile(f, size, true)
	if err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return fm, nil
}

// fillMapped writes every section of the output mapping: the header,
// the compacted symmetric CSR, the lexicographic edge-id assignment
// (identical to FreezeStatic pass 2) and the degree-oriented half.
func fillMapped(data []byte, lay mappedLayout, verts []Vertex, bound, finalLen, adj []int32) error {
	n, m := lay.n, lay.m
	lay.encodeHeader(data)
	sec := func(id int) []int32 {
		s := lay.sections[id-1]
		return int32Slice(data[s.off:s.off+s.length], int(s.length/4))
	}
	rowPtr := sec(secRowPtr)
	adjNbr := sec(secAdjNbr)
	adjEID := sec(secAdjEdgeID)
	edgeU, edgeV := sec(secEdgeU), sec(secEdgeV)
	copy(sec(secOrigID), verts)

	rowPtr[0] = 0
	for u := 0; u < n; u++ {
		rowPtr[u+1] = rowPtr[u] + finalLen[u]
		copy(adjNbr[rowPtr[u]:rowPtr[u+1]], adj[bound[u]:bound[u]+finalLen[u]])
	}
	if int(rowPtr[n]) != 2*m {
		return fmt.Errorf("graph: internal error: row total %d, want %d", rowPtr[n], 2*m)
	}

	// Edge-id assignment: ids are consecutive per lower endpoint in
	// lexicographic order; mirror entries recover the id by ranking the
	// lower endpoint in the upper endpoint's row (FreezeStatic pass 2,
	// run sequentially against the mapped arrays).
	edgeStart := make([]int32, n+1)
	for u := 0; u < n; u++ {
		row := adjNbr[rowPtr[u]:rowPtr[u+1]]
		split, _ := slices.BinarySearch(row, int32(u))        //trikcheck:checked u < n < MaxInt32, layout-guarded
		edgeStart[u+1] = edgeStart[u] + int32(len(row)-split) //trikcheck:checked row lengths sum to 2m ≤ MaxInt32
	}
	for i := 0; i < n; i++ {
		u := int32(i) //trikcheck:checked i < n < MaxInt32, layout-guarded
		base := rowPtr[i]
		row := adjNbr[base:rowPtr[i+1]]
		split, _ := slices.BinarySearch(row, u)
		for k, w := range row {
			if w > u {
				id := edgeStart[i] + int32(k-split) //trikcheck:checked k < len(row) ≤ 2m, layout-guarded
				adjEID[base+int32(k)] = id          //trikcheck:checked k < len(row) ≤ 2m, layout-guarded
				edgeU[id] = u
				edgeV[id] = w
			} else {
				wrow := adjNbr[rowPtr[w]:rowPtr[w+1]]
				wsplit, _ := slices.BinarySearch(wrow, w)
				p, _ := slices.BinarySearch(wrow, u)
				adjEID[base+int32(k)] = edgeStart[w] + int32(p-wsplit) //trikcheck:checked indices bounded by 2m, layout-guarded
			}
		}
	}

	// The oriented half runs off a temporary Static wrapping the mapped
	// arrays; fillOriented writes only through its slice parameters.
	s := &Static{RowPtr: rowPtr, AdjNbr: adjNbr, AdjEdgeID: adjEID, EdgeU: edgeU, EdgeV: edgeV, OrigID: verts}
	s.fillOriented(sec(secOutPtr), sec(secOutNbr), sec(secOutEdgeID))
	return nil
}
