package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Binary graph format: a compact delta-encoded edge list for snapshot
// persistence. Layout:
//
//	magic "TKCG", version byte 0x01
//	uvarint |V|, then |V| uvarint gaps of the sorted vertex ids
//	  (first gap is the first id itself; later gaps are id[i]-id[i-1])
//	uvarint |E|, then per canonical edge in sorted order:
//	  uvarint gap of U from the previous edge's U,
//	  uvarint V-U (always ≥ 1)
//
// Sorted delta coding keeps most gaps in one byte, so real graphs
// serialize to a small multiple of |E| bytes — an order of magnitude
// smaller than the text edge list.

var binaryMagic = [5]byte{'T', 'K', 'C', 'G', 0x01}

// WriteBinary writes g in the binary snapshot format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("graph: writing binary header: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	verts := g.Vertices()
	if err := putUvarint(uint64(len(verts))); err != nil {
		return fmt.Errorf("graph: writing vertex count: %w", err)
	}
	prev := Vertex(0)
	for i, v := range verts {
		gap := uint64(v)
		if i > 0 {
			gap = uint64(v - prev)
		}
		if err := putUvarint(gap); err != nil {
			return fmt.Errorf("graph: writing vertex %d: %w", v, err)
		}
		prev = v
	}
	edges := g.Edges()
	if err := putUvarint(uint64(len(edges))); err != nil {
		return fmt.Errorf("graph: writing edge count: %w", err)
	}
	prevU := Vertex(0)
	for i, e := range edges {
		uGap := uint64(e.U)
		if i > 0 {
			uGap = uint64(e.U - prevU)
		}
		if err := putUvarint(uGap); err != nil {
			return fmt.Errorf("graph: writing edge %v: %w", e, err)
		}
		if err := putUvarint(uint64(e.V - e.U)); err != nil {
			return fmt.Errorf("graph: writing edge %v: %w", e, err)
		}
		prevU = e.U
	}
	return bw.Flush()
}

// ReadBinary parses a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var header [5]byte
	if _, err := io.ReadFull(br, header[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	if header != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q (not a TKCG v1 snapshot)", header[:])
	}
	readUvarint := func(what string) (uint64, error) {
		x, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("graph: reading %s: %w", what, err)
		}
		return x, nil
	}
	const maxCount = 1 << 31 // refuse absurd counts rather than OOM
	nv, err := readUvarint("vertex count")
	if err != nil {
		return nil, err
	}
	if nv > maxCount {
		return nil, fmt.Errorf("graph: vertex count %d too large", nv)
	}
	// Clamp the preallocation hint: the count is attacker-controlled
	// until the payload has actually been read.
	hint := int(nv)
	if hint > 1<<20 {
		hint = 1 << 20
	}
	g := NewWithCapacity(hint)
	cur := uint64(0)
	for i := uint64(0); i < nv; i++ {
		gap, err := readUvarint("vertex gap")
		if err != nil {
			return nil, err
		}
		if i > 0 && gap == 0 {
			return nil, fmt.Errorf("graph: duplicate vertex id in snapshot")
		}
		cur += gap
		if cur > 1<<31-1 {
			return nil, fmt.Errorf("graph: vertex id %d overflows int32", cur)
		}
		g.AddVertex(Vertex(cur)) //trikcheck:checked cur overflow-checked above
	}
	ne, err := readUvarint("edge count")
	if err != nil {
		return nil, err
	}
	if ne > maxCount {
		return nil, fmt.Errorf("graph: edge count %d too large", ne)
	}
	curU := uint64(0)
	for i := uint64(0); i < ne; i++ {
		uGap, err := readUvarint("edge U gap")
		if err != nil {
			return nil, err
		}
		curU += uGap
		vOff, err := readUvarint("edge V offset")
		if err != nil {
			return nil, err
		}
		if vOff == 0 {
			return nil, fmt.Errorf("graph: edge %d encodes a self-loop", i)
		}
		v := curU + vOff
		if v > 1<<31-1 {
			return nil, fmt.Errorf("graph: vertex id %d overflows int32", v)
		}
		// v = curU + vOff with vOff ≥ 1, so the overflow check on v above
		// bounds curU as well.
		if !g.HasVertex(Vertex(curU)) || !g.HasVertex(Vertex(v)) { //trikcheck:checked v (and so curU < v) overflow-checked above
			return nil, fmt.Errorf("graph: edge %d-%d references undeclared vertex", curU, v)
		}
		if !g.AddEdge(Vertex(curU), Vertex(v)) { //trikcheck:checked v (and so curU < v) overflow-checked above
			return nil, fmt.Errorf("graph: duplicate edge %d-%d in snapshot", curU, v)
		}
	}
	return g, nil
}

// SaveBinaryFile writes g to the named file in binary snapshot format.
func SaveBinaryFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if err := WriteBinary(f, g); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// LoadBinaryFile reads a binary snapshot from the named file.
func LoadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return ReadBinary(f)
}
