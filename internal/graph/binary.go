package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
)

// Binary snapshot format: a compact delta-encoded edge list for
// persistence. The current writer emits TKCG version 2 with the
// snapshot layout (see format.go for the container):
//
//	magic "TKCG", version byte 0x02, layout byte 0x01
//	uvarint |V|, then |V| uvarint gaps of the sorted vertex ids
//	  (first gap is the first id itself; later gaps are id[i]-id[i-1])
//	uvarint |E|, then per canonical edge in sorted order:
//	  uvarint gap of U from the previous edge's U,
//	  uvarint V-U (always ≥ 1)
//	u32 little-endian CRC32 (IEEE) of every preceding byte
//
// Sorted delta coding keeps most gaps in one byte, so real graphs
// serialize to a small multiple of |E| bytes — an order of magnitude
// smaller than the text edge list. The reader still accepts version 1
// files (the same payload after a "TKCG\x01" header, with no CRC);
// version 2 files that fail the CRC or truncate mid-payload report
// ErrCorrupt.

// WriteBinary writes g in the binary snapshot format (TKCG v2).
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	h := crc32.NewIEEE()
	mw := io.MultiWriter(bw, h)
	header := [6]byte{tkcgMagic[0], tkcgMagic[1], tkcgMagic[2], tkcgMagic[3], tkcgVersion2, layoutSnapshot}
	if _, err := mw.Write(header[:]); err != nil {
		return fmt.Errorf("graph: writing binary header: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := mw.Write(buf[:n])
		return err
	}
	verts := g.Vertices()
	if err := putUvarint(uint64(len(verts))); err != nil {
		return fmt.Errorf("graph: writing vertex count: %w", err)
	}
	prev := Vertex(0)
	for i, v := range verts {
		gap := uint64(v)
		if i > 0 {
			gap = uint64(v - prev)
		}
		if err := putUvarint(gap); err != nil {
			return fmt.Errorf("graph: writing vertex %d: %w", v, err)
		}
		prev = v
	}
	edges := g.Edges()
	if err := putUvarint(uint64(len(edges))); err != nil {
		return fmt.Errorf("graph: writing edge count: %w", err)
	}
	prevU := Vertex(0)
	for i, e := range edges {
		uGap := uint64(e.U)
		if i > 0 {
			uGap = uint64(e.U - prevU)
		}
		if err := putUvarint(uGap); err != nil {
			return fmt.Errorf("graph: writing edge %v: %w", e, err)
		}
		if err := putUvarint(uint64(e.V - e.U)); err != nil {
			return fmt.Errorf("graph: writing edge %v: %w", e, err)
		}
		prevU = e.U
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], h.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		return fmt.Errorf("graph: writing CRC: %w", err)
	}
	return bw.Flush()
}

// crcByteReader forwards ReadByte while folding every consumed byte
// into the running CRC, so the reader hashes exactly the bytes the
// payload parser saw.
type crcByteReader struct {
	br *bufio.Reader
	h  hash.Hash32
}

func (r *crcByteReader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err == nil {
		r.h.Write([]byte{b})
	}
	return b, err
}

// ReadBinary parses a graph written by WriteBinary. Both the current
// version 2 snapshot (CRC-checked; corruption reports ErrCorrupt) and
// legacy version 1 files are accepted. Mapped-layout files are refused
// with a pointer to OpenMapped, which serves them without parsing.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var header [5]byte
	if _, err := io.ReadFull(br, header[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	if [4]byte(header[0:4]) != tkcgMagic {
		return nil, fmt.Errorf("graph: bad magic %q (not a TKCG snapshot)", header[0:4])
	}
	switch header[4] {
	case tkcgVersion1:
		return readBinaryPayload(br)
	case tkcgVersion2:
		layout, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("graph: %w: header ends before the layout byte", ErrCorrupt)
		}
		switch layout {
		case layoutSnapshot:
			h := crc32.NewIEEE()
			h.Write(header[:])
			h.Write([]byte{layout})
			g, err := readBinaryPayload(&crcByteReader{br: br, h: h})
			if err != nil {
				return nil, fmt.Errorf("graph: %w: %w", ErrCorrupt, err)
			}
			var sum [4]byte
			if _, err := io.ReadFull(br, sum[:]); err != nil {
				return nil, fmt.Errorf("graph: %w: snapshot ends before its CRC", ErrCorrupt)
			}
			if want := binary.LittleEndian.Uint32(sum[:]); h.Sum32() != want {
				return nil, fmt.Errorf("graph: %w: CRC32 %#x, want %#x", ErrCorrupt, h.Sum32(), want)
			}
			return g, nil
		case layoutMapped:
			return nil, fmt.Errorf("graph: mapped-layout TKCG files are served by OpenMapped, not ReadBinary")
		default:
			return nil, fmt.Errorf("graph: %w: unknown layout byte %#x", ErrCorrupt, layout)
		}
	default:
		return nil, fmt.Errorf("graph: unsupported TKCG version %d", header[4])
	}
}

// readBinaryPayload parses the delta-coded vertex and edge lists shared
// by both snapshot versions.
func readBinaryPayload(br io.ByteReader) (*Graph, error) {
	readUvarint := func(what string) (uint64, error) {
		x, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("graph: reading %s: %w", what, err)
		}
		return x, nil
	}
	const maxCount = 1 << 31 // refuse absurd counts rather than OOM
	nv, err := readUvarint("vertex count")
	if err != nil {
		return nil, err
	}
	if nv > maxCount {
		return nil, fmt.Errorf("graph: vertex count %d too large", nv)
	}
	// Clamp the preallocation hint: the count is attacker-controlled
	// until the payload has actually been read.
	hint := int(nv)
	if hint > 1<<20 {
		hint = 1 << 20
	}
	g := NewWithCapacity(hint)
	cur := uint64(0)
	for i := uint64(0); i < nv; i++ {
		gap, err := readUvarint("vertex gap")
		if err != nil {
			return nil, err
		}
		if i > 0 && gap == 0 {
			return nil, fmt.Errorf("graph: duplicate vertex id in snapshot")
		}
		cur += gap
		if cur > 1<<31-1 {
			return nil, fmt.Errorf("graph: vertex id %d overflows int32", cur)
		}
		g.AddVertex(Vertex(cur)) //trikcheck:checked cur overflow-checked above
	}
	ne, err := readUvarint("edge count")
	if err != nil {
		return nil, err
	}
	if ne > maxCount {
		return nil, fmt.Errorf("graph: edge count %d too large", ne)
	}
	curU := uint64(0)
	for i := uint64(0); i < ne; i++ {
		uGap, err := readUvarint("edge U gap")
		if err != nil {
			return nil, err
		}
		curU += uGap
		vOff, err := readUvarint("edge V offset")
		if err != nil {
			return nil, err
		}
		if vOff == 0 {
			return nil, fmt.Errorf("graph: edge %d encodes a self-loop", i)
		}
		v := curU + vOff
		if v > 1<<31-1 {
			return nil, fmt.Errorf("graph: vertex id %d overflows int32", v)
		}
		// v = curU + vOff with vOff ≥ 1, so the overflow check on v above
		// bounds curU as well.
		if !g.HasVertex(Vertex(curU)) || !g.HasVertex(Vertex(v)) { //trikcheck:checked v (and so curU < v) overflow-checked above
			return nil, fmt.Errorf("graph: edge %d-%d references undeclared vertex", curU, v)
		}
		if !g.AddEdge(Vertex(curU), Vertex(v)) { //trikcheck:checked v (and so curU < v) overflow-checked above
			return nil, fmt.Errorf("graph: duplicate edge %d-%d in snapshot", curU, v)
		}
	}
	return g, nil
}

// SaveBinaryFile writes g to the named file in binary snapshot format.
func SaveBinaryFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if err := WriteBinary(f, g); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// LoadBinaryFile reads a TKCG file from the named path into a mutable
// Graph. Snapshot-layout files (v1 and v2) parse directly; a
// mapped-layout file is opened with OpenMapped and materialized, so
// callers that want a Graph need not care which layout a .tkcg holds.
func LoadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	var sniff [6]byte
	if n, err := io.ReadFull(f, sniff[:]); err != nil && n < 5 {
		return nil, errors.Join(fmt.Errorf("graph: reading binary header: %w", err), f.Close())
	}
	if [4]byte(sniff[0:4]) == tkcgMagic && sniff[4] == tkcgVersion2 && sniff[5] == layoutMapped {
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("graph: %w", err)
		}
		m, err := OpenMapped(path)
		if err != nil {
			return nil, err
		}
		g := m.Static().Materialize()
		if err := m.Close(); err != nil {
			return nil, err
		}
		return g, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, errors.Join(fmt.Errorf("graph: %w", err), f.Close())
	}
	defer f.Close()
	return ReadBinary(f)
}
