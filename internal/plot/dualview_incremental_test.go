package plot

import (
	"reflect"
	"testing"

	"trikcore/internal/core"
	"trikcore/internal/dynamic"
	"trikcore/internal/graph"
)

// TestDualViewIncrementalMatchesStatic verifies the paper's Algorithm 3
// step 4 equivalence: producing the new snapshot's κ values with the
// incremental engine (Algorithm 2) yields exactly the dual view that a
// from-scratch decomposition produces.
func TestDualViewIncrementalMatchesStatic(t *testing.T) {
	old := noisyGraph(31)
	addClique(old, 200, 201, 202, 203, 204, 205)
	addClique(old, 300, 301, 302, 303)
	new := old.Clone()
	// Events: 210 joins the 6-clique; bridge forms between the two cliques.
	for v := graph.Vertex(200); v <= 205; v++ {
		new.AddEdge(210, v)
	}
	new.AddEdge(205, 300)
	new.AddEdge(205, 301)

	static := BuildDualView(old, new, DualViewOptions{TopK: 2})

	en := dynamic.NewEngine(old)
	en.ApplyDiff(graph.DiffGraphs(old, new))
	newCo := make(EdgeValues, en.Graph().NumEdges())
	for e, k := range en.EdgeKappas() {
		newCo[e] = k + 2
	}
	dOld := core.Decompose(old)
	incremental := BuildDualViewFromValues(old, new, FromDecomposition(dOld), newCo, DualViewOptions{TopK: 2})

	if !reflect.DeepEqual(static.Before, incremental.Before) {
		t.Fatal("before plots differ")
	}
	if !reflect.DeepEqual(static.After, incremental.After) {
		t.Fatal("after plots differ")
	}
	if !reflect.DeepEqual(static.Markers, incremental.Markers) {
		t.Fatalf("markers differ:\nstatic      %+v\nincremental %+v", static.Markers, incremental.Markers)
	}
	if len(static.Markers) == 0 || static.Markers[0].Peak.Height != 7 {
		t.Fatalf("expected the 7-clique growth event on top, got %+v", static.Markers)
	}
}
