package plot

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"trikcore/internal/core"
	"trikcore/internal/graph"
)

func addClique(g *graph.Graph, verts ...graph.Vertex) {
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			g.AddEdge(verts[i], verts[j])
		}
	}
}

func noisyGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < 60; i++ {
		g.AddVertex(graph.Vertex(i))
	}
	for k := 0; k < 80; k++ {
		u := graph.Vertex(rng.Intn(60))
		v := graph.Vertex(rng.Intn(60))
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

func TestDensityCliquePlateau(t *testing.T) {
	g := noisyGraph(1)
	addClique(g, 100, 101, 102, 103, 104, 105, 106) // 7-clique
	d := core.Decompose(g)
	s := Density(g, FromDecomposition(d))
	if s.Len() != g.NumVertices() {
		t.Fatalf("series has %d points, graph %d vertices", s.Len(), g.NumVertices())
	}
	// The clique plots first (highest density) as a 7-wide plateau at 7.
	for i := 0; i < 7; i++ {
		p := s.Points[i]
		if p.V < 100 || p.V > 106 || p.Height != 7 {
			t.Fatalf("point %d = %+v, want clique vertex at height 7", i, p)
		}
	}
	if s.MaxHeight() != 7 {
		t.Fatalf("MaxHeight = %d, want 7", s.MaxHeight())
	}
	peaks := s.TopPeaks(1, 3)
	if len(peaks) != 1 || peaks[0].Height != 7 || peaks[0].Width() != 7 {
		t.Fatalf("TopPeaks = %v", peaks)
	}
}

func TestDensityDeterministic(t *testing.T) {
	g := noisyGraph(7)
	addClique(g, 200, 201, 202, 203, 204)
	d := core.Decompose(g)
	a := Density(g, FromDecomposition(d))
	b := Density(g, FromDecomposition(d))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Density is not deterministic")
	}
}

func TestDensityEmptyAndIsolated(t *testing.T) {
	if s := Density(graph.New(), nil); s.Len() != 0 {
		t.Fatal("empty graph plotted points")
	}
	g := graph.New()
	g.AddVertex(4)
	s := Density(g, nil)
	if s.Len() != 1 || s.Points[0].Height != 0 {
		t.Fatalf("isolated vertex series = %+v", s.Points)
	}
}

func TestSeriesAccessors(t *testing.T) {
	s := Series{Points: []Point{{V: 5, Height: 3}, {V: 9, Height: 1}, {V: 2, Height: 1}}}
	if s.PositionOf(9) != 1 || s.PositionOf(77) != -1 {
		t.Fatal("PositionOf wrong")
	}
	if got := s.Positions([]graph.Vertex{2, 5, 88}); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Positions = %v", got)
	}
	if !reflect.DeepEqual(s.Heights(), []int{3, 1, 1}) {
		t.Fatal("Heights wrong")
	}
}

func TestPeaks(t *testing.T) {
	s := Series{Points: []Point{
		{1, 5}, {2, 5}, {3, 5}, // plateau h=5 w=3
		{4, 2},
		{5, 4}, {6, 4}, // plateau h=4 w=2
		{7, 0}, {8, 0}, {9, 0},
	}}
	peaks := s.Peaks(1, 2)
	if len(peaks) != 2 {
		t.Fatalf("Peaks = %v", peaks)
	}
	if peaks[0].Height != 5 || peaks[0].Width() != 3 || peaks[1].Height != 4 {
		t.Fatalf("Peaks = %v", peaks)
	}
	if got := s.Peaks(5, 1); len(got) != 1 {
		t.Fatalf("minHeight filter failed: %v", got)
	}
	top := s.TopPeaks(5, 1)
	if len(top) != 3 || top[0].Height != 5 || top[1].Height != 4 || top[2].Height != 2 {
		t.Fatalf("TopPeaks = %v", top)
	}
	if top[0].String() == "" {
		t.Fatal("Peak.String empty")
	}
}

func TestCompare(t *testing.T) {
	a := Series{Points: []Point{{1, 5}, {2, 3}, {3, 2}}}
	b := Series{Points: []Point{{3, 2}, {1, 5}, {2, 4}}} // vertex 2 differs by 1
	c := Compare(a, b)
	if c.Vertices != 3 {
		t.Fatalf("Vertices = %d", c.Vertices)
	}
	if c.ExactAgreement < 0.66 || c.ExactAgreement > 0.67 {
		t.Fatalf("ExactAgreement = %v", c.ExactAgreement)
	}
	if c.MeanAbsDiff < 0.33 || c.MeanAbsDiff > 0.34 || c.MaxAbsDiff != 1 {
		t.Fatalf("Comparison = %+v", c)
	}
	if got := Compare(Series{}, Series{}); got.Vertices != 0 {
		t.Fatal("empty comparison wrong")
	}
}

func TestRenderASCII(t *testing.T) {
	g := noisyGraph(3)
	addClique(g, 100, 101, 102, 103, 104, 105)
	s := Density(g, FromDecomposition(core.Decompose(g)))
	out := RenderASCII(s, 60, 10)
	if !strings.Contains(out, "#") || !strings.Contains(out, "max co_clique_size 6") {
		t.Fatalf("ASCII render missing content:\n%s", out)
	}
	if RenderASCII(Series{}, 10, 5) != "(empty plot)\n" {
		t.Fatal("empty render wrong")
	}
}

func TestRenderSVG(t *testing.T) {
	s := Series{Points: []Point{{1, 3}, {2, 3}, {3, 1}, {4, 0}}}
	svg := RenderSVG(s, SVGOptions{Title: `a<b&"c"`, Markers: []SVGMarker{{Start: 0, End: 1, Label: "m"}}})
	for _, want := range []string{"<svg", "</svg>", "rect", "a&lt;b&amp;", "fill-opacity"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q:\n%s", want, svg)
		}
	}
	if strings.Contains(svg, `a<b`) {
		t.Fatal("SVG title not escaped")
	}
	empty := RenderSVG(Series{}, SVGOptions{})
	if !strings.Contains(empty, "<svg") {
		t.Fatal("empty SVG render broken")
	}
}

func TestBuildDualViewCliqueGrowth(t *testing.T) {
	// Old: a 6-clique on 0..5 plus noise. New: vertex 50 joins the clique
	// (forming a 7-clique) via new edges.
	old := noisyGraph(11)
	addClique(old, 0, 1, 2, 3, 4, 5)
	for v := graph.Vertex(0); v <= 5; v++ {
		old.RemoveEdge(50, v) // ensure the joining edges are genuinely new
	}
	new := old.Clone()
	for v := graph.Vertex(0); v <= 5; v++ {
		new.AddEdge(50, v)
	}
	dv := BuildDualView(old, new, DualViewOptions{TopK: 1, MinWidth: 3})
	if len(dv.Markers) != 1 {
		t.Fatalf("got %d markers, want 1", len(dv.Markers))
	}
	mk := dv.Markers[0]
	if mk.Peak.Height != 7 {
		t.Fatalf("after peak height = %d, want 7", mk.Peak.Height)
	}
	// The peak must contain the clique vertices and the joiner, all of
	// which existed in the old graph (50 was a noise vertex).
	got := map[graph.Vertex]bool{}
	for _, v := range mk.Peak.Vertices {
		got[v] = true
	}
	for _, v := range []graph.Vertex{0, 1, 2, 3, 4, 5, 50} {
		if !got[v] {
			t.Fatalf("peak misses vertex %d: %v", v, mk.Peak.Vertices)
		}
	}
	if len(mk.BeforePositions) == 0 {
		t.Fatal("no before positions found")
	}
	if dv.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestBuildDualViewNewVertex(t *testing.T) {
	old := noisyGraph(13)
	addClique(old, 0, 1, 2, 3, 4)
	new := old.Clone()
	// Brand-new vertex 999 joins the clique.
	for v := graph.Vertex(0); v <= 4; v++ {
		new.AddEdge(999, v)
	}
	dv := BuildDualView(old, new, DualViewOptions{TopK: 1})
	if len(dv.Markers) != 1 {
		t.Fatalf("markers = %v", dv.Markers)
	}
	mk := dv.Markers[0]
	if len(mk.NewVertices) != 1 || mk.NewVertices[0] != 999 {
		t.Fatalf("NewVertices = %v, want [999]", mk.NewVertices)
	}
	if len(mk.BeforeRegions()) == 0 {
		t.Fatal("no before regions")
	}
	if len(dv.MarkersForSVG()) != 1 || len(dv.BeforeMarkersForSVG()) == 0 {
		t.Fatal("SVG marker conversion broken")
	}
}

func TestRunsAndCompress(t *testing.T) {
	got := runs([]int{1, 2, 3, 7, 9, 10})
	want := [][2]int{{1, 3}, {7, 7}, {9, 10}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("runs = %v, want %v", got, want)
	}
	if s := compressRuns([]int{1, 2, 3, 7}); s != "[1-3 7]" {
		t.Fatalf("compressRuns = %q", s)
	}
}

// TestDensityHeightsReflectEdgeValues checks the CSV plotting convention:
// every vertex's height equals the value of one of its incident edges (or
// its seed value when it starts a component).
func TestDensityHeightsReflectEdgeValues(t *testing.T) {
	g := noisyGraph(21)
	d := core.Decompose(g)
	vals := FromDecomposition(d)
	s := Density(g, vals)
	for _, p := range s.Points {
		if g.Degree(p.V) == 0 {
			if p.Height != 0 {
				t.Fatalf("isolated vertex %d at height %d", p.V, p.Height)
			}
			continue
		}
		found := false
		g.ForEachNeighbor(p.V, func(w graph.Vertex) bool {
			if vals[graph.NewEdge(p.V, w)] == p.Height {
				found = true
				return false
			}
			return true
		})
		if !found && p.Height != 0 {
			t.Fatalf("vertex %d plotted at %d, not a value of any incident edge", p.V, p.Height)
		}
	}
}

func TestRenderASCIIBucketsWidePlots(t *testing.T) {
	// 1000 points, width 50: each column holds the max of its bucket so
	// a single tall spike stays visible.
	pts := make([]Point, 1000)
	for i := range pts {
		pts[i] = Point{V: graph.Vertex(i), Height: 1}
	}
	pts[700].Height = 40
	s := Series{Points: pts}
	out := RenderASCII(s, 50, 10)
	lines := strings.Split(out, "\n")
	top := lines[0]
	if !strings.Contains(top, "#") {
		t.Fatalf("spike lost in bucketing:\n%s", out)
	}
	if n := strings.Count(top, "#"); n != 1 {
		t.Fatalf("top row has %d marks, want exactly the spike:\n%s", n, out)
	}
}

func TestWriteCSV(t *testing.T) {
	s := Series{Points: []Point{{V: 9, Height: 4}, {V: 2, Height: 1}}}
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "position,vertex,height\n0,9,4\n1,2,1\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

// TestNaiveOrderingMergesDistinctCliques is the ordering ablation: two
// disjoint 6-cliques appear as two separate 6-wide plateaus under the
// OPTICS-style traversal, but naive sort-by-value fuses them into one
// 12-wide plateau, losing the plateau-equals-clique reading.
func TestNaiveOrderingMergesDistinctCliques(t *testing.T) {
	// Two 6-cliques embedded in sparse background noise: the traversal
	// drains each clique and then walks through low-value noise before
	// reaching the other, separating the two plateaus; naive
	// sort-by-value puts all twelve clique vertices first, fusing them.
	g := noisyGraph(19)
	addClique(g, 100, 101, 102, 103, 104, 105)
	addClique(g, 200, 201, 202, 203, 204, 205)
	g.AddEdge(100, 1) // embed both cliques in the noise component
	g.AddEdge(200, 2)
	d := core.Decompose(g)
	vals := FromDecomposition(d)

	traversal := Density(g, vals)
	// Clique 1 is seeded (full 6-wide plateau); clique 2 is entered from
	// the noise, so its entry vertex plots at its reachability and the
	// plateau is 5 wide — the paper's "phase shift". Both structures stay
	// separate.
	if peaks := traversal.Peaks(6, 5); len(peaks) != 2 {
		t.Fatalf("traversal ordering: %d plateaus at height 6, want 2", len(peaks))
	}
	naive := DensityNaive(g, vals)
	peaks := naive.Peaks(6, 1)
	if len(peaks) != 1 || peaks[0].Width() != 12 {
		t.Fatalf("naive ordering: peaks = %v, expected one fused 12-wide plateau", peaks)
	}
}
