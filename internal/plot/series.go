// Package plot implements the paper's density-plot visualization: an
// OPTICS-style enumeration of vertices where each vertex is drawn at the
// co-clique size of one of its edges, so that clique-like structures
// appear as flat plateaus (Section V, "Visualizing Clique-like
// Structures").
//
// The same machinery renders plots for the Triangle K-Core proxy
// (co_clique_size = κ+2, Algorithm 3 step 2), for the exact CSV baseline
// (Figure 6's qualitative comparison), for template-pattern subgraphs
// (Figures 9–12) and for dual-view correspondence across dynamic
// snapshots (Figure 8).
package plot

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"trikcore/internal/graph"
)

// Point is one plotted vertex: its position on the X axis is its index in
// the series, its Y value is Height.
type Point struct {
	V      graph.Vertex
	Height int
}

// Series is a density plot: vertices in traversal order with their
// plotted heights.
type Series struct {
	Points []Point
}

// Len returns the number of plotted vertices.
func (s Series) Len() int { return len(s.Points) }

// Heights returns the Y values in plot order.
func (s Series) Heights() []int {
	out := make([]int, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Height
	}
	return out
}

// MaxHeight returns the largest Y value (0 for an empty series).
func (s Series) MaxHeight() int {
	max := 0
	for _, p := range s.Points {
		if p.Height > max {
			max = p.Height
		}
	}
	return max
}

// PositionOf returns the X position of vertex v, or -1 if v is not
// plotted.
func (s Series) PositionOf(v graph.Vertex) int {
	for i, p := range s.Points {
		if p.V == v {
			return i
		}
	}
	return -1
}

// Positions returns the X positions of the given vertices (omitting any
// that are not plotted), sorted ascending.
func (s Series) Positions(verts []graph.Vertex) []int {
	want := make(map[graph.Vertex]bool, len(verts))
	for _, v := range verts {
		want[v] = true
	}
	var out []int
	for i, p := range s.Points {
		if want[p.V] {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// Peak is a maximal run of consecutive points sharing one height — the
// flat plateaus that indicate potential cliques in a CSV-style plot. A
// plateau of width w at height h suggests a near-clique of about w
// vertices of order about h.
type Peak struct {
	Start, End int // point indices, inclusive
	Height     int
	Vertices   []graph.Vertex
}

// Width returns the number of vertices under the peak.
func (p Peak) Width() int { return p.End - p.Start + 1 }

// String renders the peak compactly.
func (p Peak) String() string {
	return fmt.Sprintf("peak[h=%d w=%d @%d..%d]", p.Height, p.Width(), p.Start, p.End)
}

// Peaks returns the maximal constant-height runs with height ≥ minHeight
// and width ≥ minWidth, in plot order.
func (s Series) Peaks(minHeight, minWidth int) []Peak {
	var peaks []Peak
	i := 0
	for i < len(s.Points) {
		j := i
		for j+1 < len(s.Points) && s.Points[j+1].Height == s.Points[i].Height {
			j++
		}
		h, w := s.Points[i].Height, j-i+1
		if h >= minHeight && w >= minWidth {
			pk := Peak{Start: i, End: j, Height: h}
			for k := i; k <= j; k++ {
				pk.Vertices = append(pk.Vertices, s.Points[k].V)
			}
			peaks = append(peaks, pk)
		}
		i = j + 1
	}
	return peaks
}

// TopPeaks returns up to k peaks of width ≥ minWidth ranked by height
// (ties broken by width, then position).
func (s Series) TopPeaks(k, minWidth int) []Peak {
	peaks := s.Peaks(1, minWidth)
	sort.SliceStable(peaks, func(a, b int) bool {
		if peaks[a].Height != peaks[b].Height {
			return peaks[a].Height > peaks[b].Height
		}
		if peaks[a].Width() != peaks[b].Width() {
			return peaks[a].Width() > peaks[b].Width()
		}
		return peaks[a].Start < peaks[b].Start
	})
	if len(peaks) > k {
		peaks = peaks[:k]
	}
	return peaks
}

// Comparison quantifies how similar two density plots are, vertex by
// vertex — the reproducible content of the paper's Figure 6, which argues
// the Triangle K-Core plot and the CSV plot expose the same structure.
type Comparison struct {
	// Vertices is the number of vertices present in both series.
	Vertices int
	// ExactAgreement is the fraction of shared vertices plotted at the
	// same height in both series.
	ExactAgreement float64
	// MeanAbsDiff is the mean |height_a - height_b| over shared vertices.
	MeanAbsDiff float64
	// MaxAbsDiff is the largest per-vertex height difference.
	MaxAbsDiff int
}

// Compare computes per-vertex height agreement between two series
// (ignoring X order, which legitimately differs between methods — the
// paper calls these "phase shifts").
func Compare(a, b Series) Comparison {
	hb := make(map[graph.Vertex]int, len(b.Points))
	for _, p := range b.Points {
		hb[p.V] = p.Height
	}
	var c Comparison
	var sumAbs int
	for _, p := range a.Points {
		h, ok := hb[p.V]
		if !ok {
			continue
		}
		c.Vertices++
		d := p.Height - h
		if d < 0 {
			d = -d
		}
		sumAbs += d
		if d == 0 {
			c.ExactAgreement++
		}
		if d > c.MaxAbsDiff {
			c.MaxAbsDiff = d
		}
	}
	if c.Vertices > 0 {
		c.ExactAgreement /= float64(c.Vertices)
		c.MeanAbsDiff = float64(sumAbs) / float64(c.Vertices)
	}
	return c
}

// WriteCSV exports the series as CSV rows (position, vertex, height) for
// external plotting tools.
func (s Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"position", "vertex", "height"}); err != nil {
		return fmt.Errorf("plot: writing csv: %w", err)
	}
	for i, p := range s.Points {
		rec := []string{
			strconv.Itoa(i),
			strconv.FormatInt(int64(p.V), 10),
			strconv.Itoa(p.Height),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("plot: writing csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("plot: writing csv: %w", err)
	}
	return nil
}
