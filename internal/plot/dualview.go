package plot

import (
	"fmt"
	"strings"

	"trikcore/internal/core"
	"trikcore/internal/graph"
)

// DualView implements Algorithm 3: a pair of density plots that make the
// evolution of clique-like structures across two graph snapshots visually
// traceable. Before plots the full clique distribution of the old graph;
// After plots only the structures touched by newly added edges (all other
// edges plot at co_clique_size 0). Markers tie each selected peak of
// After back to its vertices' positions in Before, providing the paper's
// "cognitive correspondence".
type DualView struct {
	Before, After Series
	Markers       []CorrespondenceMarker
}

// CorrespondenceMarker links one structure of the After plot to the
// positions of the same vertices in the Before plot.
type CorrespondenceMarker struct {
	// Label names the marker ("1", "2", ... by After-peak rank).
	Label string
	// Peak is the After-plot peak the marker highlights.
	Peak Peak
	// BeforePositions are the X positions in Before of the peak's
	// vertices (vertices absent from the old graph are omitted — they are
	// genuinely new).
	BeforePositions []int
	// NewVertices are peak vertices with no position in Before.
	NewVertices []graph.Vertex
}

// DualViewOptions configure BuildDualView.
type DualViewOptions struct {
	// TopK is how many After-plot peaks to mark (default 3, matching the
	// paper's Wiki case study).
	TopK int
	// MinWidth is the minimum peak width considered (default 3).
	MinWidth int
}

// BuildDualView runs Algorithm 3 over two snapshots:
//
//	1–3: decompose old, plot its clique distribution (Before);
//	4–5: decompose new, but keep co_clique_size only for edges added
//	     since old (others plot 0);
//	6:   plot the changed-clique distribution (After);
//	7:   mark the TopK densest After peaks and locate their vertices in
//	     Before.
//
// This entry point decomposes the new snapshot from scratch; when a
// dynamic engine already tracks κ for the new snapshot (Algorithm 3 step
// 4 as the paper states it, "execute Algorithm 2"), use
// BuildDualViewFromValues with the engine's EdgeKappas instead — the two
// produce identical plots because the engine maintains exact κ.
func BuildDualView(old, new *graph.Graph, opts DualViewOptions) DualView {
	dOld := core.Decompose(old)
	dNew := core.Decompose(new)
	return BuildDualViewFromValues(old, new,
		FromDecomposition(dOld), EdgeValues(dNew.CoCliqueSizes()), opts)
}

// BuildDualViewFromValues is BuildDualView over precomputed
// co_clique_size assignments for the two snapshots (κ+2 per edge, however
// obtained — static decomposition or incremental maintenance).
func BuildDualViewFromValues(old, new *graph.Graph, oldCo, newCo EdgeValues, opts DualViewOptions) DualView {
	if opts.TopK <= 0 {
		opts.TopK = 3
	}
	if opts.MinWidth <= 0 {
		opts.MinWidth = 3
	}
	before := Density(old, oldCo)

	added := graph.DiffGraphs(old, new).AddedEdgeSet()
	changed := make(EdgeValues, len(added))
	for e, cs := range newCo {
		if added[e] {
			changed[e] = cs
		}
	}
	after := Density(new, changed)

	dv := DualView{Before: before, After: after}
	for i, pk := range after.TopPeaks(opts.TopK, opts.MinWidth) {
		mk := CorrespondenceMarker{Label: fmt.Sprintf("%d", i+1), Peak: pk}
		inOld := make(map[graph.Vertex]bool)
		for _, v := range pk.Vertices {
			if old.HasVertex(v) {
				inOld[v] = true
			} else {
				mk.NewVertices = append(mk.NewVertices, v)
			}
		}
		// Collect by walking the peak's vertex list, not the membership
		// set: map iteration order would shuffle the marker positions from
		// run to run.
		oldVerts := make([]graph.Vertex, 0, len(inOld))
		for _, v := range pk.Vertices {
			if inOld[v] {
				oldVerts = append(oldVerts, v)
			}
		}
		mk.BeforePositions = before.Positions(oldVerts)
		dv.Markers = append(dv.Markers, mk)
	}
	return dv
}

// Summary renders a text description of the dual view: each marker, its
// After peak, and where its vertices sit in Before — the narrative the
// paper walks through for Figure 8 ("some vertices are in a 10-vertex
// clique, and one single vertex is in a 5-vertex clique").
func (dv DualView) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dual view: before=%d vertices, after=%d vertices, %d markers\n",
		dv.Before.Len(), dv.After.Len(), len(dv.Markers))
	for _, mk := range dv.Markers {
		fmt.Fprintf(&b, "  marker %s: %v", mk.Label, mk.Peak)
		if len(mk.BeforePositions) > 0 {
			fmt.Fprintf(&b, "; %d vertices found in before plot at %v",
				len(mk.BeforePositions), compressRuns(mk.BeforePositions))
		}
		if len(mk.NewVertices) > 0 {
			fmt.Fprintf(&b, "; %d brand-new vertices", len(mk.NewVertices))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BeforeRegions groups a marker's Before positions into contiguous runs
// (maximal sequences of adjacent plot positions). Each run is one place
// in the old plot the structure draws from; the Figure 8 green-triangle
// example has two runs — a 10-vertex clique and a single vertex.
func (mk CorrespondenceMarker) BeforeRegions() [][2]int {
	return runs(mk.BeforePositions)
}

// runs converts a sorted int slice into inclusive [start, end] runs of
// consecutive values.
func runs(xs []int) [][2]int {
	var out [][2]int
	for i := 0; i < len(xs); {
		j := i
		for j+1 < len(xs) && xs[j+1] == xs[j]+1 {
			j++
		}
		out = append(out, [2]int{xs[i], xs[j]})
		i = j + 1
	}
	return out
}

// compressRuns renders runs compactly, e.g. "[3-12 40]".
func compressRuns(xs []int) string {
	var parts []string
	for _, r := range runs(xs) {
		if r[0] == r[1] {
			parts = append(parts, fmt.Sprintf("%d", r[0]))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", r[0], r[1]))
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// MarkersForSVG converts the dual view's After-plot markers to SVG marker
// bands (for RenderSVG of the After series).
func (dv DualView) MarkersForSVG() []SVGMarker {
	colors := []string{"green", "red", "orange", "purple", "brown"}
	var out []SVGMarker
	for i, mk := range dv.Markers {
		out = append(out, SVGMarker{
			Start: mk.Peak.Start,
			End:   mk.Peak.End,
			Color: colors[i%len(colors)],
			Label: mk.Label,
		})
	}
	return out
}

// BeforeMarkersForSVG converts the correspondence regions in the Before
// plot to SVG marker bands (for RenderSVG of the Before series), using
// the same color per label as MarkersForSVG.
func (dv DualView) BeforeMarkersForSVG() []SVGMarker {
	colors := []string{"green", "red", "orange", "purple", "brown"}
	var out []SVGMarker
	for i, mk := range dv.Markers {
		for _, r := range mk.BeforeRegions() {
			out = append(out, SVGMarker{
				Start: r[0],
				End:   r[1],
				Color: colors[i%len(colors)],
				Label: mk.Label,
			})
		}
	}
	return out
}
