package plot

import (
	"fmt"
	"strings"
)

// RenderASCII draws the series as a text chart of at most width columns
// and height rows (plus an axis line). When the series is wider than the
// chart, each column shows the maximum height within its bucket, so
// narrow peaks stay visible.
func RenderASCII(s Series, width, height int) string {
	if width < 1 {
		width = 80
	}
	if height < 1 {
		height = 16
	}
	n := s.Len()
	if n == 0 {
		return "(empty plot)\n"
	}
	if width > n {
		width = n
	}
	maxH := s.MaxHeight()
	if maxH == 0 {
		maxH = 1
	}
	// Bucket the points into columns.
	cols := make([]int, width)
	for i, p := range s.Points {
		c := i * width / n
		if p.Height > cols[c] {
			cols[c] = p.Height
		}
	}
	var b strings.Builder
	for row := height; row >= 1; row-- {
		// The row covers heights in ((row-1)/height, row/height] of maxH.
		thresh := float64(row-1) / float64(height) * float64(maxH)
		label := int(float64(row) / float64(height) * float64(maxH))
		fmt.Fprintf(&b, "%4d |", label)
		for _, h := range cols {
			if float64(h) > thresh && h > 0 {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("     +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "      %d vertices, max co_clique_size %d\n", n, s.MaxHeight())
	return b.String()
}

// SVGOptions configure RenderSVG.
type SVGOptions struct {
	// Width and Height are the chart area in pixels (defaults 800×240).
	Width, Height int
	// Title is drawn above the chart when non-empty.
	Title string
	// Markers are vertex-position highlights (e.g. dual-view
	// correspondence regions); each is drawn as a translucent band.
	Markers []SVGMarker
}

// SVGMarker highlights an X range of the plot.
type SVGMarker struct {
	Start, End int    // point indices, inclusive
	Color      string // e.g. "red"
	Label      string
}

// RenderSVG draws the series as a standalone SVG document: one vertical
// bar per vertex, height proportional to its plotted value.
func RenderSVG(s Series, opts SVGOptions) string {
	w, h := opts.Width, opts.Height
	if w <= 0 {
		w = 800
	}
	if h <= 0 {
		h = 240
	}
	const margin = 30
	n := s.Len()
	maxH := s.MaxHeight()
	if maxH == 0 {
		maxH = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n",
		w+2*margin, h+2*margin)
	if opts.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="13" font-family="sans-serif">%s</text>`+"\n",
			margin, margin-10, escapeXML(opts.Title))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, margin+h, margin+w, margin+h)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, margin, margin, margin+h)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" font-family="sans-serif">%d</text>`+"\n",
		margin-25, margin+8, maxH)
	// Marker bands under the data.
	for _, mk := range opts.Markers {
		if n == 0 || mk.End < mk.Start {
			continue
		}
		x0 := margin + mk.Start*w/n
		x1 := margin + (mk.End+1)*w/n
		color := mk.Color
		if color == "" {
			color = "red"
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" fill-opacity="0.2"/>`+"\n",
			x0, margin, x1-x0, h, color)
		if mk.Label != "" {
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" fill="%s" font-family="sans-serif">%s</text>`+"\n",
				x0, margin+12, color, escapeXML(mk.Label))
		}
	}
	// Bars.
	if n > 0 {
		barW := float64(w) / float64(n)
		for i, p := range s.Points {
			if p.Height == 0 {
				continue
			}
			barH := float64(p.Height) / float64(maxH) * float64(h)
			fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="steelblue"/>`+"\n",
				float64(margin)+float64(i)*barW, float64(margin+h)-barH,
				maxF(barW, 0.5), barH)
			_ = i
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
