package plot

import (
	"math/rand"
	"reflect"
	"testing"

	"trikcore/internal/core"
	"trikcore/internal/graph"
)

// TestDensityStaticMatchesDensity property-tests the CSR traversal
// against the map-based one on random graphs: same points, same order,
// same heights.
func TestDensityStaticMatchesDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		g := graph.New()
		const nv = 18
		for i := 0; i < 60; i++ {
			u := graph.Vertex(rng.Intn(nv))
			v := graph.Vertex(rng.Intn(nv))
			if u != v {
				g.AddEdge(u, v)
			}
		}
		if g.NumEdges() == 0 {
			continue
		}
		d := core.Decompose(g)
		want := Density(g, FromDecomposition(d))

		vals := make([]int32, d.S.NumEdges())
		for i := range vals {
			vals[i] = d.Kappa[i] + 2
		}
		got := DensityStatic(d.S, vals)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: DensityStatic differs from Density\ngot  %v\nwant %v",
				trial, got.Points, want.Points)
		}
	}
}

// TestDensityStaticIndependentOfDenseLayout freezes the same graph from
// two Dense substrates with very different allocation histories (one
// clean, one whose slots were scrambled by inserting and tearing down
// junk first) and checks the plotted series are identical — the
// external-id tie-breaking that republish determinism rests on.
func TestDensityStaticIndependentOfDenseLayout(t *testing.T) {
	edges := [][2]graph.Vertex{
		{1, 2}, {2, 3}, {3, 1}, {3, 4}, {4, 5}, {5, 3},
		{1, 9}, {9, 2}, {7, 8}, {8, 9}, {4, 7},
	}
	f := func(e graph.Edge) int32 { return int32((e.U + e.V) % 5) }
	mk := func(d *graph.Dense) Series {
		s, _ := d.Freeze()
		vals := make([]int32, s.NumEdges())
		for i := range vals {
			vals[i] = f(s.EdgeAt(int32(i)))
		}
		return DensityStatic(s, vals)
	}

	clean := graph.NewDense()
	for _, e := range edges {
		clean.AddEdgeV(e[0], e[1])
	}

	scrambled := graph.NewDense()
	for i := 0; i < 6; i++ {
		scrambled.AddEdgeV(graph.Vertex(100+i), graph.Vertex(101+i))
	}
	for i := 0; i < 6; i++ {
		scrambled.RemoveEdgeByID(scrambled.EdgeIDV(graph.Vertex(100+i), graph.Vertex(101+i)))
	}
	for i := 0; i <= 6; i++ {
		scrambled.RemoveVertexV(graph.Vertex(100 + i))
	}
	for i := len(edges) - 1; i >= 0; i-- {
		scrambled.AddEdgeV(edges[i][0], edges[i][1])
	}

	a, b := mk(clean), mk(scrambled)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("series differ across dense layouts\nclean     %v\nscrambled %v", a.Points, b.Points)
	}
	// And both equal the Graph-based plot under the same values.
	g := clean.Materialize()
	m := EdgeValues{}
	for _, e := range g.Edges() {
		m[e] = int(f(e))
	}
	if want := Density(g, m); !reflect.DeepEqual(a, want) {
		t.Fatalf("static series differs from Density\ngot  %v\nwant %v", a.Points, want.Points)
	}
}
