package plot

import (
	"container/heap"
	"sort"

	"trikcore/internal/core"
	"trikcore/internal/graph"
)

// EdgeValues assigns the plotted co-clique size to each edge. Edges absent
// from the map plot as 0 (the convention Algorithms 3 and 4 use for
// edges outside the structure of interest).
type EdgeValues map[graph.Edge]int

// FromDecomposition derives edge values from a Triangle K-Core
// decomposition: co_clique_size(e) = κ(e) + 2 (Algorithm 3 step 2).
func FromDecomposition(d *core.Decomposition) EdgeValues {
	return EdgeValues(d.CoCliqueSizes())
}

// Density produces the OPTICS-style density plot of g under the given
// edge values.
//
// The traversal mirrors the enumeration CSV uses: start from the vertex
// with the highest-valued incident edge, then repeatedly emit the
// unvisited vertex with the best "reachability" — the maximum value among
// edges connecting it to an already-visited vertex — plotting it at that
// reachability. Members of a dense structure therefore appear
// consecutively at its co-clique size, producing the flat plateaus the
// paper reads as potential cliques. Exhausted components are followed by
// the best remaining seed vertex. Ties break toward the smaller vertex id,
// making the plot deterministic.
func Density(g *graph.Graph, vals EdgeValues) Series {
	var s Series
	n := g.NumVertices()
	if n == 0 {
		return s
	}
	bestIncident := func(v graph.Vertex) int {
		best := 0
		g.ForEachNeighbor(v, func(w graph.Vertex) bool {
			if x := vals[graph.NewEdge(v, w)]; x > best {
				best = x
			}
			return true
		})
		return best
	}

	// Seeds: all vertices ordered by best incident edge value descending
	// (vertex id ascending on ties). Consumed lazily as components start.
	seeds := g.Vertices()
	seedVal := make(map[graph.Vertex]int, n)
	for _, v := range seeds {
		seedVal[v] = bestIncident(v)
	}
	sortSeeds(seeds, seedVal)

	visited := make(map[graph.Vertex]bool, n)
	reach := make(map[graph.Vertex]int, n)
	pq := &vertexHeap{}
	heap.Init(pq)

	visit := func(v graph.Vertex, h int) {
		visited[v] = true
		s.Points = append(s.Points, Point{V: v, Height: h})
		g.ForEachNeighbor(v, func(w graph.Vertex) bool {
			if visited[w] {
				return true
			}
			val := vals[graph.NewEdge(v, w)]
			if cur, ok := reach[w]; !ok || val > cur {
				reach[w] = val
				heap.Push(pq, heapItem{v: w, val: val})
			}
			return true
		})
	}

	seedIdx := 0
	for len(s.Points) < n {
		// Drain the frontier of the current component.
		progressed := false
		for pq.Len() > 0 {
			it := heap.Pop(pq).(heapItem)
			if visited[it.v] || reach[it.v] != it.val {
				continue // stale entry
			}
			visit(it.v, it.val)
			progressed = true
			break
		}
		if progressed {
			continue
		}
		// Start the next component from the best remaining seed.
		for seedIdx < len(seeds) && visited[seeds[seedIdx]] {
			seedIdx++
		}
		v := seeds[seedIdx]
		visit(v, seedVal[v])
	}
	return s
}

// sortSeeds orders vertices by seed value descending, id ascending.
func sortSeeds(seeds []graph.Vertex, val map[graph.Vertex]int) {
	sort.Slice(seeds, func(i, j int) bool {
		a, b := seeds[i], seeds[j]
		if val[a] != val[b] {
			return val[a] > val[b]
		}
		return a < b
	})
}

// DensityNaive plots vertices sorted by their best incident edge value
// descending (no traversal). It exists as the ablation of the OPTICS-style
// enumeration: naive sorting interleaves distinct structures of equal
// density into one plateau, destroying the plot's central reading that
// one plateau ≈ one clique — which is why CSV (and this reproduction)
// order by traversal instead. See TestNaiveOrderingMergesDistinctCliques.
func DensityNaive(g *graph.Graph, vals EdgeValues) Series {
	verts := g.Vertices()
	best := make(map[graph.Vertex]int, len(verts))
	for _, v := range verts {
		b := 0
		g.ForEachNeighbor(v, func(w graph.Vertex) bool {
			if x := vals[graph.NewEdge(v, w)]; x > b {
				b = x
			}
			return true
		})
		best[v] = b
	}
	sortSeeds(verts, best)
	var s Series
	for _, v := range verts {
		s.Points = append(s.Points, Point{V: v, Height: best[v]})
	}
	return s
}

// heapItem is a frontier entry: vertex v reachable at value val. The heap
// is a max-heap on val with vertex id as tiebreak.
type heapItem struct {
	v   graph.Vertex
	val int
}

type vertexHeap []heapItem

func (h vertexHeap) Len() int { return len(h) }
func (h vertexHeap) Less(i, j int) bool {
	if h[i].val != h[j].val {
		return h[i].val > h[j].val
	}
	return h[i].v < h[j].v
}
func (h vertexHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *vertexHeap) Push(x any)   { *h = append(*h, x.(heapItem)) }
func (h *vertexHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
