package plot

import (
	"bytes"
	"testing"

	"trikcore/internal/core"
	"trikcore/internal/graph"
)

// TestWritersDeterministic renders the density plot of the same graph
// content twice — once with edges inserted forward, once reversed — and
// requires the CSV, SVG and ASCII writers to produce identical bytes.
// The co-clique values arrive in a map, so any place the pipeline ranges
// over it without sorting shows up here as flaky bytes.
func TestWritersDeterministic(t *testing.T) {
	var edges [][2]graph.Vertex
	for i := graph.Vertex(0); i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if (i+j)%3 != 0 {
				edges = append(edges, [2]graph.Vertex{i, j})
			}
		}
	}
	edges = append(edges, [2]graph.Vertex{30, 31}, [2]graph.Vertex{31, 32}, [2]graph.Vertex{30, 32})

	render := func(reverse bool) (string, string, string) {
		g := graph.New()
		if reverse {
			for i := len(edges) - 1; i >= 0; i-- {
				g.AddEdge(edges[i][0], edges[i][1])
			}
		} else {
			for _, e := range edges {
				g.AddEdge(e[0], e[1])
			}
		}
		s := Density(g, FromDecomposition(core.Decompose(g)))
		var csv bytes.Buffer
		if err := s.WriteCSV(&csv); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		return csv.String(), RenderSVG(s, SVGOptions{Title: "t"}), RenderASCII(s, 80, 12)
	}

	csv1, svg1, txt1 := render(false)
	csv2, svg2, txt2 := render(true)
	if csv1 != csv2 {
		t.Errorf("WriteCSV differs across insertion orders:\n%s\n---\n%s", csv1, csv2)
	}
	if svg1 != svg2 {
		t.Errorf("RenderSVG differs across insertion orders")
	}
	if txt1 != txt2 {
		t.Errorf("RenderASCII differs across insertion orders")
	}
}
