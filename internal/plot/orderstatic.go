package plot

import (
	"container/heap"
	"sort"

	"trikcore/internal/graph"
)

// DensityStatic is Density over an immutable CSR view, with per-edge
// values in a flat array indexed by the view's dense edge ids (the layout
// Engine.FreezeView hands back: co_clique_size = κ+2). It allocates no
// maps and never materializes a Graph, which is what makes density plots
// cheap enough to memoize per published snapshot.
//
// The traversal is the same OPTICS-style enumeration as Density, and —
// crucially for byte-determinism of served plots — every tie breaks on
// the *external* vertex id (OrigID), never on dense position. Dense
// positions depend on the substrate's allocation history; external ids do
// not, so two views of the same graph frozen from different histories
// produce identical series. DensityStatic(s, vals) equals
// Density(g, m) exactly whenever s is a view of g and m maps each edge to
// its vals entry (property-tested).
func DensityStatic(s *graph.Static, vals []int32) Series {
	var out Series
	n := s.NumVertices()
	if n == 0 {
		return out
	}
	// Best incident edge value per dense vertex, one sweep over the rows.
	best := make([]int32, n)
	for u := 0; u < n; u++ {
		for p := s.RowPtr[u]; p < s.RowPtr[u+1]; p++ {
			if x := vals[s.AdjEdgeID[p]]; x > best[u] {
				best[u] = x
			}
		}
	}

	// Seeds: every vertex ordered by best incident value descending,
	// external id ascending on ties. Consumed lazily as components start.
	seeds := make([]int32, n)
	for i := range seeds {
		seeds[i] = int32(i)
	}
	sort.Slice(seeds, func(i, j int) bool {
		a, b := seeds[i], seeds[j]
		if best[a] != best[b] {
			return best[a] > best[b]
		}
		return s.OrigID[a] < s.OrigID[b]
	})

	visited := make([]bool, n)
	// reach[w] = -1 means "not on the frontier", mirroring map absence in
	// Density (incident values are ≥ 0, so -1 compares below all of them).
	reach := make([]int32, n)
	for i := range reach {
		reach[i] = -1
	}
	pq := &staticHeap{orig: s.OrigID}
	heap.Init(pq)

	visit := func(u int32, h int32) {
		visited[u] = true
		out.Points = append(out.Points, Point{V: s.OrigID[u], Height: int(h)})
		for p := s.RowPtr[u]; p < s.RowPtr[u+1]; p++ {
			w := s.AdjNbr[p]
			if visited[w] {
				continue
			}
			if val := vals[s.AdjEdgeID[p]]; val > reach[w] {
				reach[w] = val
				heap.Push(pq, staticItem{v: w, val: val})
			}
		}
	}

	seedIdx := 0
	for len(out.Points) < n {
		// Drain the frontier of the current component.
		progressed := false
		for pq.Len() > 0 {
			it := heap.Pop(pq).(staticItem)
			if visited[it.v] || reach[it.v] != it.val {
				continue // stale entry
			}
			visit(it.v, it.val)
			progressed = true
			break
		}
		if progressed {
			continue
		}
		// Start the next component from the best remaining seed.
		for seedIdx < len(seeds) && visited[seeds[seedIdx]] {
			seedIdx++
		}
		u := seeds[seedIdx]
		visit(u, best[u])
	}
	return out
}

// staticItem is a frontier entry of DensityStatic: dense vertex v
// reachable at value val.
type staticItem struct {
	v   int32
	val int32
}

// staticHeap is a max-heap on val; ties break on the external id of the
// vertex, which is what keeps the enumeration independent of dense
// vertex numbering. (v, val) pairs are unique — a vertex is re-pushed
// only with a strictly larger value — so the order is total and the pop
// sequence is deterministic regardless of push order.
type staticHeap struct {
	items []staticItem
	orig  []graph.Vertex
}

func (h *staticHeap) Len() int { return len(h.items) }
func (h *staticHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.val != b.val {
		return a.val > b.val
	}
	return h.orig[a.v] < h.orig[b.v]
}
func (h *staticHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *staticHeap) Push(x any)    { h.items = append(h.items, x.(staticItem)) }
func (h *staticHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
