package template

import (
	"testing"

	"trikcore/internal/graph"
)

// TestCustomUserDefinedPattern exercises the paper's flexibility claim:
// users can define template patterns of their own by supplying the
// characteristic (and possible) triangle predicates directly. Here we
// define a "persistent clique" pattern — cliques made entirely of edges
// that survived from the old snapshot — which is the complement of New
// Form and not one of the built-ins.
func TestCustomUserDefinedPattern(t *testing.T) {
	old := graph.New()
	addClique(old, 1, 2, 3, 4, 5) // persists
	addClique(old, 10, 11, 12)    // partially dissolves
	new := old.Clone()
	new.RemoveEdge(10, 11)
	addClique(new, 20, 21, 22, 23) // newly formed

	nov := Evolving(old, new)
	persistent := Spec{
		Name: "persistent",
		IsCharacteristic: func(tr graph.Triangle) bool {
			for _, e := range tr.Edges() {
				if nov.IsNewEdge(e) {
					return false
				}
			}
			return true
		},
	}
	r := Detect(new, persistent)
	peaks := r.TopCliques(1, 3)
	if len(peaks) != 1 || peaks[0].Height != 5 || peaks[0].Width() != 5 {
		t.Fatalf("persistent pattern peaks = %v, want the surviving 5-clique", peaks)
	}
	// The newly formed clique must not plot under this pattern.
	if r.Values[graph.NewEdge(20, 21)] != 0 {
		t.Fatal("new clique leaked into the persistent pattern")
	}
	// The dissolved triangle's surviving edges have no characteristic
	// triangle anymore.
	if r.Values[graph.NewEdge(11, 12)] != 0 {
		t.Fatal("dissolved triangle leaked into the persistent pattern")
	}
}

// TestCharacteristicRequirementTwo verifies the second requirement on
// characteristic triangles: every vertex of a detected pattern clique is
// covered by some characteristic triangle (requirement 2 in Section V),
// for the built-in patterns on a composite scenario.
func TestCharacteristicRequirementTwo(t *testing.T) {
	old := graph.New()
	addClique(old, 1, 2, 3) // incumbents for a new-join
	new := old.Clone()
	addClique(new, 1, 2, 3, 50, 51, 52) // 3 new vertices join

	r := Detect(new, NewJoin(Evolving(old, new)))
	covered := map[graph.Vertex]bool{}
	for _, tr := range r.Characteristic {
		covered[tr.A], covered[tr.B], covered[tr.C] = true, true, true
	}
	for _, pk := range r.TopCliques(1, 3) {
		for _, v := range pk.Vertices {
			if !covered[v] {
				t.Fatalf("pattern clique vertex %d not covered by any characteristic triangle", v)
			}
		}
	}
}

// TestDissolvedPattern detects cliques whose edges vanish between
// snapshots by reversing the Evolving classification.
func TestDissolvedPattern(t *testing.T) {
	old := graph.New()
	addClique(old, 1, 2, 3, 4, 5) // will dissolve
	addClique(old, 10, 11, 12, 13)
	for v := graph.Vertex(1); v <= 5; v++ {
		old.AddEdge(v, v+50) // unrelated edges that persist
	}
	new := old.Clone()
	for i := graph.Vertex(1); i <= 5; i++ {
		for j := i + 1; j <= 5; j++ {
			new.RemoveEdge(i, j)
		}
	}
	r := Detect(old, Dissolved(Evolving(new, old)))
	peaks := r.TopCliques(1, 3)
	if len(peaks) != 1 || peaks[0].Height != 5 || peaks[0].Width() != 5 {
		t.Fatalf("dissolved peaks = %v, want the vanished 5-clique", peaks)
	}
	if r.Values[graph.NewEdge(10, 11)] != 0 {
		t.Fatal("persisting clique wrongly detected as dissolved")
	}
}
