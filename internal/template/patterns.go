package template

import "trikcore/internal/graph"

// Novelty classifies edges and vertices of a graph as "new" (red in the
// paper's Figure 4) or "original" (black). For evolving graphs the
// classification comes from a snapshot diff; for static graphs it can
// encode any attribute, such as "edge joins two protein complexes"
// (Figure 12).
type Novelty struct {
	IsNewEdge   func(e graph.Edge) bool
	IsNewVertex func(v graph.Vertex) bool
}

// Evolving derives a Novelty from two snapshots: an edge or vertex is new
// when present in new but absent from old.
func Evolving(old, new *graph.Graph) Novelty {
	return Novelty{
		IsNewEdge:   func(e graph.Edge) bool { return !old.HasEdgeE(e) },
		IsNewVertex: func(v graph.Vertex) bool { return !old.HasVertex(v) },
	}
}

// InterComplex derives a Novelty from vertex attributes (the static
// Bridge Clique variant of Section VII-F): an edge is "new" when its
// endpoints carry different labels; no vertex is new.
func InterComplex(label map[graph.Vertex]string) Novelty {
	return Novelty{
		IsNewEdge:   func(e graph.Edge) bool { return label[e.U] != label[e.V] },
		IsNewVertex: func(graph.Vertex) bool { return false },
	}
}

// counts returns how many of t's edges and vertices are new under n.
func (n Novelty) counts(t graph.Triangle) (newEdges, newVerts int) {
	for _, e := range t.Edges() {
		if n.IsNewEdge(e) {
			newEdges++
		}
	}
	for _, v := range []graph.Vertex{t.A, t.B, t.C} {
		if n.IsNewVertex(v) {
			newVerts++
		}
	}
	return
}

// NewForm is the pattern of Figure 4(a)/(d): a clique formed entirely by
// new edges among original vertices. Its characteristic triangle has
// 3 new edges and 3 original vertices; no other triangle shape occurs.
func NewForm(n Novelty) Spec {
	return Spec{
		Name: "new-form",
		IsCharacteristic: func(t graph.Triangle) bool {
			ne, nv := n.counts(t)
			return ne == 3 && nv == 0
		},
	}
}

// Bridge is the pattern of Figure 4(b)/(e): a clique drawing vertices
// from two previously disconnected cliques. Its characteristic triangle
// has 3 original vertices, 2 new edges and 1 original edge; triangles of
// 3 original edges are also possible inside the clique (△BCD in the
// figure).
func Bridge(n Novelty) Spec {
	return Spec{
		Name: "bridge",
		IsCharacteristic: func(t graph.Triangle) bool {
			ne, nv := n.counts(t)
			return ne == 2 && nv == 0
		},
		IsPossible: func(t graph.Triangle) bool {
			ne, _ := n.counts(t)
			return ne == 0
		},
	}
}

// NewJoin is the pattern of Figure 4(c)/(f): a clique formed by an
// existing clique plus new vertices. Its characteristic triangle contains
// one new vertex and two original vertices joined by an original edge
// (its other two edges are necessarily new). Triangles of 3 new edges
// (△ABC) and of 3 original edges (△DEF) are also possible.
func NewJoin(n Novelty) Spec {
	return Spec{
		Name: "new-join",
		IsCharacteristic: func(t graph.Triangle) bool {
			ne, nv := n.counts(t)
			return nv == 1 && ne == 2
		},
		IsPossible: func(t graph.Triangle) bool {
			ne, _ := n.counts(t)
			return ne == 3 || ne == 0
		},
	}
}

// Dissolved is the mirror pattern of NewForm: cliques of the OLD snapshot
// whose edges all vanish in the new one — detect it by running NewForm
// with the snapshots swapped and Detect over the old graph:
//
//	res := Detect(old, Dissolved(Evolving(new, old)))
//
// Every template in this package composes the same way with a reversed
// Evolving classification, so vanishing counterparts of Bridge and
// NewJoin need no extra code.
func Dissolved(reversed Novelty) Spec {
	spec := NewForm(reversed)
	spec.Name = "dissolved"
	return spec
}
