// Package template implements Algorithm 4 of the paper: detection of
// user-defined template pattern cliques via characteristic and possible
// triangles.
//
// A template pattern (e.g. "clique formed entirely by new collaborations")
// is specified by two triangle predicates. *Characteristic* triangles are
// 3-vertex instances of the pattern; every vertex of a pattern clique must
// lie in one (the paper's two requirements). *Possible* triangles are the
// other triangle shapes that may occur inside a pattern clique among the
// characteristic vertices. Algorithm 4 marks the edges and vertices of
// both kinds special, builds the subgraph G_spe they induce, runs the
// Triangle K-Core decomposition (Algorithm 1) on it, and plots the full
// graph with co_clique_size = κ+2 on special edges and 0 elsewhere.
//
// The three patterns of Section V — New Form, Bridge and New Join — are
// provided as constructors over an edge/vertex novelty classification,
// which itself can come from a snapshot diff (evolving graphs, Figures
// 9–11) or from vertex attributes (the static PPI complexes of Figure 12).
package template

import (
	"sort"

	"trikcore/internal/core"
	"trikcore/internal/graph"
	"trikcore/internal/plot"
)

// Spec is a template pattern definition.
type Spec struct {
	// Name labels the pattern in reports.
	Name string
	// IsCharacteristic reports whether a triangle of the graph is a
	// characteristic triangle of the pattern (Algorithm 4 step 1).
	IsCharacteristic func(t graph.Triangle) bool
	// IsPossible reports whether a triangle whose three vertices are all
	// special may appear inside a pattern clique (Algorithm 4 step 4).
	// Nil means the pattern admits no extra triangle shapes.
	IsPossible func(t graph.Triangle) bool
}

// Result is the output of Detect.
type Result struct {
	// Spec is the pattern that was detected.
	Spec Spec
	// Characteristic and Possible list the special triangles found.
	Characteristic, Possible []graph.Triangle
	// Special is G_spe: the subgraph of special edges and vertices.
	Special *graph.Graph
	// Kappa holds κ(e) from running Algorithm 1 on G_spe.
	Kappa map[graph.Edge]int
	// Values is the full graph's plotting assignment: κ+2 on special
	// edges, 0 elsewhere (Algorithm 4 steps 9–13).
	Values plot.EdgeValues
	// Series is the template clique distribution plot (step 14).
	Series plot.Series
}

// Detect runs Algorithm 4 on g with the given pattern spec.
func Detect(g *graph.Graph, spec Spec) *Result {
	r := &Result{Spec: spec, Special: graph.New()}

	// Step 1: find characteristic triangles; steps 2–3: mark their edges
	// and vertices special.
	specialV := make(map[graph.Vertex]bool)
	specialE := make(map[graph.Edge]bool)
	forEachTriangle(g, func(t graph.Triangle) {
		if spec.IsCharacteristic(t) {
			r.Characteristic = append(r.Characteristic, t)
			for _, e := range t.Edges() {
				specialE[e] = true
			}
			specialV[t.A], specialV[t.B], specialV[t.C] = true, true, true
		}
	})

	// Steps 4–6: find possible triangles among special vertices and mark
	// their edges special.
	if spec.IsPossible != nil {
		forEachTriangle(g, func(t graph.Triangle) {
			if specialV[t.A] && specialV[t.B] && specialV[t.C] && spec.IsPossible(t) {
				r.Possible = append(r.Possible, t)
				for _, e := range t.Edges() {
					specialE[e] = true
				}
			}
		})
	}

	// Step 7: build G_spe.
	for v := range specialV {
		r.Special.AddVertex(v)
	}
	for e := range specialE {
		r.Special.AddEdgeE(e)
	}

	// Step 8: Algorithm 1 on G_spe.
	d := core.Decompose(r.Special)
	r.Kappa = d.EdgeKappas()

	// Steps 9–13: co_clique_size per edge of the full graph.
	r.Values = make(plot.EdgeValues, len(specialE))
	for e, k := range r.Kappa {
		r.Values[e] = k + 2
	}

	// Step 14: plot the clique distribution of G.
	r.Series = plot.Density(g, r.Values)
	sortTriangles(r.Characteristic)
	sortTriangles(r.Possible)
	return r
}

// TopCliques returns the k densest template pattern cliques as peaks of
// the distribution plot (the red-circle selections of Figures 9–12).
func (r *Result) TopCliques(k, minWidth int) []plot.Peak {
	return r.Series.TopPeaks(k, minWidth)
}

// forEachTriangle enumerates every triangle of g exactly once.
func forEachTriangle(g *graph.Graph, fn func(t graph.Triangle)) {
	g.ForEachEdge(func(e graph.Edge) bool {
		g.ForEachCommonNeighbor(e.U, e.V, func(w graph.Vertex) bool {
			// Report each triangle only from its lexicographically
			// smallest edge: require w above both endpoints.
			if w > e.V {
				fn(graph.NewTriangle(e.U, e.V, w))
			}
			return true
		})
		return true
	})
}

func sortTriangles(ts []graph.Triangle) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.C < b.C
	})
}
