package template

import (
	"testing"

	"trikcore/internal/graph"
)

func addClique(g *graph.Graph, verts ...graph.Vertex) {
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			g.AddEdge(verts[i], verts[j])
		}
	}
}

// background adds unrelated structure that must not pollute detection: an
// old clique that persists unchanged and scattered old edges.
func background(old, new *graph.Graph) {
	addClique(old, 900, 901, 902, 903)
	addClique(new, 900, 901, 902, 903)
	old.AddEdge(910, 911)
	new.AddEdge(910, 911)
	new.AddEdge(911, 912) // a lone new edge, no triangle
}

// TestNewFormFigure4a reproduces Figure 4(a): vertices A..E (1..5) exist
// in the old graph (with some scattered old edges but no clique); the new
// graph adds all 10 edges among them, forming a 5-vertex New Form clique.
func TestNewFormFigure4a(t *testing.T) {
	old := graph.New()
	for v := graph.Vertex(1); v <= 5; v++ {
		old.AddVertex(v)
	}
	old.AddEdge(1, 20) // old edges hanging off the pattern vertices
	old.AddEdge(2, 21)
	new := old.Clone()
	addClique(new, 1, 2, 3, 4, 5)
	background(old, new)

	r := Detect(new, NewForm(Evolving(old, new)))
	if len(r.Characteristic) != 10 {
		t.Fatalf("got %d characteristic triangles, want C(5,3)=10", len(r.Characteristic))
	}
	if len(r.Possible) != 0 {
		t.Fatalf("NewForm admits no possible triangles, got %v", r.Possible)
	}
	if r.Special.NumVertices() != 5 || r.Special.NumEdges() != 10 {
		t.Fatalf("G_spe has %d vertices, %d edges", r.Special.NumVertices(), r.Special.NumEdges())
	}
	for e, k := range r.Kappa {
		if k != 3 {
			t.Fatalf("κ(%v) = %d in G_spe, want 3", e, k)
		}
	}
	// The plot peaks at the 5-clique; background structures plot at 0.
	peaks := r.TopCliques(1, 3)
	if len(peaks) != 1 || peaks[0].Height != 5 || peaks[0].Width() != 5 {
		t.Fatalf("TopCliques = %v", peaks)
	}
	if r.Values[graph.NewEdge(900, 901)] != 0 {
		t.Fatal("unchanged old clique leaked into the template plot")
	}
}

// TestBridgeFigure4b reproduces Figure 4(b): old graph holds two
// disconnected cliques {1,5} (an edge) and {2,3,4}; new edges join them
// into the 5-clique ABCDE. The pattern must pick up both the 2-new-edge
// characteristic triangles and the all-original △BCD possible triangle.
func TestBridgeFigure4b(t *testing.T) {
	old := graph.New()
	old.AddEdge(1, 5)
	addClique(old, 2, 3, 4)
	new := old.Clone()
	addClique(new, 1, 2, 3, 4, 5)
	background(old, new)

	r := Detect(new, Bridge(Evolving(old, new)))
	if len(r.Characteristic) == 0 {
		t.Fatal("no characteristic triangles found")
	}
	// △(2,3,4) is all-original and must appear as a possible triangle.
	foundBCD := false
	for _, tr := range r.Possible {
		if tr == graph.NewTriangle(2, 3, 4) {
			foundBCD = true
		}
	}
	if !foundBCD {
		t.Fatalf("possible triangles %v miss the all-original △(2,3,4)", r.Possible)
	}
	if r.Special.NumEdges() != 10 {
		t.Fatalf("G_spe has %d edges, want the full 5-clique", r.Special.NumEdges())
	}
	peaks := r.TopCliques(1, 3)
	if len(peaks) != 1 || peaks[0].Height != 5 {
		t.Fatalf("TopCliques = %v", peaks)
	}
	// The persisting background clique is all-original with no new edges
	// anywhere near it: none of its triangles are characteristic, and
	// since its vertices are not special it cannot enter via possible
	// triangles either.
	if r.Values[graph.NewEdge(900, 901)] != 0 {
		t.Fatal("background clique wrongly marked special")
	}
}

// TestNewJoinFigure4c reproduces Figure 4(c): old graph holds clique
// {4,5,6} (DEF); new vertices 1,2,3 (ABC) join to form the 6-clique
// ABCDEF. All-new △ABC and all-original △DEF must both be possible.
func TestNewJoinFigure4c(t *testing.T) {
	old := graph.New()
	addClique(old, 4, 5, 6)
	new := old.Clone()
	addClique(new, 1, 2, 3, 4, 5, 6)
	background(old, new)

	r := Detect(new, NewJoin(Evolving(old, new)))
	if len(r.Characteristic) == 0 {
		t.Fatal("no characteristic triangles found")
	}
	wantPossible := map[graph.Triangle]bool{
		graph.NewTriangle(1, 2, 3): false, // all new edges
		graph.NewTriangle(4, 5, 6): false, // all original edges
	}
	for _, tr := range r.Possible {
		if _, ok := wantPossible[tr]; ok {
			wantPossible[tr] = true
		}
	}
	for tr, seen := range wantPossible {
		if !seen {
			t.Fatalf("possible triangles miss %v: %v", tr, r.Possible)
		}
	}
	if r.Special.NumEdges() != 15 {
		t.Fatalf("G_spe has %d edges, want the full 6-clique", r.Special.NumEdges())
	}
	peaks := r.TopCliques(1, 3)
	if len(peaks) != 1 || peaks[0].Height != 6 || peaks[0].Width() != 6 {
		t.Fatalf("TopCliques = %v", peaks)
	}
}

// TestNewJoinRequiresOriginalBaseEdge checks the characteristic triangle
// constraint: a new vertex joining two original vertices that were NOT
// connected in the old graph is not a New Join characteristic triangle.
func TestNewJoinRequiresOriginalBaseEdge(t *testing.T) {
	old := graph.New()
	old.AddVertex(4)
	old.AddVertex(5) // 4 and 5 exist but are not connected
	new := old.Clone()
	addClique(new, 1, 4, 5) // new vertex 1 closes a triangle with a new base edge
	r := Detect(new, NewJoin(Evolving(old, new)))
	if len(r.Characteristic) != 0 {
		t.Fatalf("characteristic triangles %v should be empty", r.Characteristic)
	}
}

// TestInterComplexBridge exercises the static attribute variant of
// Section VII-F: a bridge clique spanning two labelled complexes.
func TestInterComplexBridge(t *testing.T) {
	g := graph.New()
	addClique(g, 1, 2, 3, 4) // complex "a" clique
	addClique(g, 10, 11, 12) // complex "b" clique
	// Vertex 1 bridges into complex b, forming the clique {1,10,11,12}.
	for _, v := range []graph.Vertex{10, 11, 12} {
		g.AddEdge(1, v)
	}
	label := map[graph.Vertex]string{1: "a", 2: "a", 3: "a", 4: "a", 10: "b", 11: "b", 12: "b"}

	r := Detect(g, Bridge(InterComplex(label)))
	if len(r.Characteristic) != 3 {
		// Triangles (1,10,11), (1,10,12), (1,11,12): two inter-complex
		// edges plus one intra-complex edge each.
		t.Fatalf("got %d characteristic triangles, want 3: %v", len(r.Characteristic), r.Characteristic)
	}
	// △(10,11,12) is intra-complex and must be possible.
	found := false
	for _, tr := range r.Possible {
		if tr == graph.NewTriangle(10, 11, 12) {
			found = true
		}
	}
	if !found {
		t.Fatalf("possible triangles %v miss △(10,11,12)", r.Possible)
	}
	peaks := r.TopCliques(1, 3)
	if len(peaks) != 1 || peaks[0].Height != 4 {
		t.Fatalf("TopCliques = %v, want the 4-vertex bridge clique", peaks)
	}
	// The pure complex-a clique (2,3,4 region without vertex 1's bridge)
	// must not plot: its triangles have no inter-complex edges.
	if r.Values[graph.NewEdge(2, 3)] != 0 {
		t.Fatal("intra-complex edge 2-3 wrongly plotted")
	}
}

func TestDetectOnEmptyGraph(t *testing.T) {
	old, new := graph.New(), graph.New()
	r := Detect(new, NewForm(Evolving(old, new)))
	if len(r.Characteristic) != 0 || r.Special.NumEdges() != 0 || r.Series.Len() != 0 {
		t.Fatal("empty detection should be empty")
	}
}

func TestForEachTriangleEnumeratesOnce(t *testing.T) {
	g := graph.New()
	addClique(g, 1, 2, 3, 4)
	count := map[graph.Triangle]int{}
	forEachTriangle(g, func(tr graph.Triangle) { count[tr]++ })
	if len(count) != 4 {
		t.Fatalf("K4 has %d distinct triangles, want 4", len(count))
	}
	for tr, c := range count {
		if c != 1 {
			t.Fatalf("triangle %v enumerated %d times", tr, c)
		}
	}
}
