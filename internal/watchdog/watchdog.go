// Package watchdog panics when an instrumented critical section overruns
// its deadline — a trikdebug-only deadlock tripwire. The race detector
// finds unsynchronized accesses but says nothing about a writer section
// that simply never finishes (a deadlock between Publisher.mu and a
// feed's mutex, a quota check that re-enters the engine, a subscriber
// fan-out blocking on a full channel while holding a lock). Under
// `-tags trikdebug` every guarded section arms a timer on entry; if the
// section is still open when the deadline fires, the watchdog panics
// with the section's name, crashing the test with full goroutine stacks
// while the deadlock is still in place.
//
// In normal builds Start compiles to a no-op returning a shared no-op
// stop function; the instrumented hot paths pay one call and one defer.
//
//	stop := watchdog.Start("publisher.Apply")
//	defer stop()
package watchdog

import (
	"fmt"
	"time"
)

// Deadline is how long an instrumented section may stay open before the
// watchdog trips. Generous by design: real sections finish in
// microseconds-to-milliseconds, so anything near a human timescale is a
// hang, not a slow day. Tests may lower it to exercise the tripwire.
var Deadline = 30 * time.Second

// overrun is what a tripped watchdog does. A variable so the package
// test can observe a trip without crashing the suite.
var overrun = func(name string, deadline time.Duration) {
	panic(fmt.Sprintf("watchdog: %s still running after %v — likely deadlock", name, deadline))
}

// nop is the shared no-op stop function returned by the disabled build
// (and by Enabled builds' fast path, were one added).
func nop() {}
