//go:build !trikdebug

package watchdog

// Enabled reports whether watchdog instrumentation is compiled in.
const Enabled = false

// Start is a no-op in normal builds; the returned stop function is the
// shared nop, so instrumented sections allocate nothing.
func Start(string) func() { return nop }
