package watchdog

import (
	"testing"
	"time"
)

func TestStartDisarmIsQuiet(t *testing.T) {
	if !Enabled {
		stop := Start("off.section")
		stop() // no-op build: nothing to arm, nothing to trip
		return
	}
	old := Deadline
	Deadline = 10 * time.Millisecond
	defer func() { Deadline = old }()

	tripped := make(chan string, 1)
	oldOverrun := overrun
	overrun = func(name string, _ time.Duration) { tripped <- name }
	defer func() { overrun = oldOverrun }()

	stop := Start("quiet.section")
	stop()
	select {
	case name := <-tripped:
		t.Fatalf("disarmed watchdog tripped for %q", name)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestOverrunTrips(t *testing.T) {
	if !Enabled {
		t.Skip("watchdog compiled out; run with -tags trikdebug")
	}
	old := Deadline
	Deadline = 10 * time.Millisecond
	defer func() { Deadline = old }()

	tripped := make(chan string, 1)
	oldOverrun := overrun
	overrun = func(name string, _ time.Duration) { tripped <- name }
	defer func() { overrun = oldOverrun }()

	stop := Start("stuck.section")
	defer stop()
	select {
	case name := <-tripped:
		if name != "stuck.section" {
			t.Fatalf("tripped for %q, want stuck.section", name)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never tripped on an overrunning section")
	}
}

func TestOverrunDefaultPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("default overrun did not panic")
		}
	}()
	overrun("some.section", time.Second)
}
