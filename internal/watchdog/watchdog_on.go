//go:build trikdebug

package watchdog

import "time"

// Enabled reports whether watchdog instrumentation is compiled in.
const Enabled = true

// Start arms a deadline timer for the named critical section and returns
// the disarm function; call it (usually via defer) when the section
// exits. If the timer fires first, overrun panics with name.
func Start(name string) func() {
	t := time.AfterFunc(Deadline, func() { overrun(name, Deadline) })
	return func() { t.Stop() }
}
