// Package stats holds small timing and summary-statistics helpers used by
// the experiment harness.
package stats

import (
	"fmt"
	"math"
	"time"
)

// Timed runs fn and returns its wall-clock duration.
func Timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// Sample accumulates float64 observations.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// AddDuration appends a duration in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// observations).
func (s *Sample) StdDev() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		sum += (x - m) * (x - m)
	}
	return math.Sqrt(sum / float64(len(s.xs)-1))
}

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	min := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	max := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > max {
			max = x
		}
	}
	return max
}

// FormatSeconds renders a duration in seconds with sensible precision for
// result tables ("0.005", "1.42", "561").
func FormatSeconds(sec float64) string {
	switch {
	case sec == 0:
		return "0"
	case sec < 0.01:
		return fmt.Sprintf("%.4f", sec)
	case sec < 1:
		return fmt.Sprintf("%.3f", sec)
	case sec < 100:
		return fmt.Sprintf("%.2f", sec)
	default:
		return fmt.Sprintf("%.0f", sec)
	}
}

// Speedup renders a/b as a "Nx" factor ("-" when b is zero).
func Speedup(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0fx", a/b)
}
