package stats

import (
	"math"
	"testing"
	"time"
)

func TestTimed(t *testing.T) {
	d := Timed(func() { time.Sleep(5 * time.Millisecond) })
	if d < 4*time.Millisecond {
		t.Fatalf("Timed = %v, want >= ~5ms", d)
	}
}

func TestSampleMoments(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 || s.N() != 0 {
		t.Fatal("empty sample should be all zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 || s.Mean() != 5 {
		t.Fatalf("N=%d Mean=%v", s.N(), s.Mean())
	}
	// Sample standard deviation of this classic set is sqrt(32/7).
	if got, want := s.StdDev(), math.Sqrt(32.0/7.0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min=%v Max=%v", s.Min(), s.Max())
	}
	var d Sample
	d.AddDuration(1500 * time.Millisecond)
	if d.Mean() != 1.5 {
		t.Fatalf("AddDuration mean = %v", d.Mean())
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{0.0042, "0.0042"},
		{0.25, "0.250"},
		{1.5, "1.50"},
		{42.123, "42.12"},
		{561.4, "561"},
	}
	for _, tc := range cases {
		if got := FormatSeconds(tc.in); got != tc.want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10, 2); got != "5x" {
		t.Fatalf("Speedup = %q", got)
	}
	if got := Speedup(1, 0); got != "-" {
		t.Fatalf("Speedup by zero = %q", got)
	}
}
