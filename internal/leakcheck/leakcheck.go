// Package leakcheck fails tests that leave goroutines behind. It is the
// runtime complement to trikcheck's goroutine-lifecycle rule: the static
// rule proves every goroutine in the serving tiers *can* be stopped, and
// leakcheck verifies the test actually stopped them.
//
// Built entirely on runtime.Stack: a snapshot of all goroutine stacks is
// taken before the test (or test binary) runs and diffed against one
// taken after. Goroutines the runtime or the testing framework own are
// filtered out; anything else that appeared and survived is a leak.
// Because a well-behaved goroutine may still be winding down when the
// test returns (an SSE handler observing its closed Done channel, say),
// the post-check retries with doubling backoff before declaring a leak.
//
// Two wirings:
//
//	func TestMain(m *testing.M) { os.Exit(leakcheck.Main(m)) }
//
// checks the whole package once after every test has run, and
//
//	func TestSomething(t *testing.T) {
//	    leakcheck.Check(t)
//	    ...
//	}
//
// pins one test: goroutines alive at the Check call are grandfathered,
// anything the test itself started must be gone by its cleanup phase.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Retry schedule: attempts doubling from firstDelay cover roughly one
// second in total, long enough for an unblocked goroutine to observe its
// done channel and exit on a loaded CI machine.
const (
	defaultAttempts   = 7
	defaultFirstDelay = 10 * time.Millisecond
)

// goroutine is one parsed stack stanza.
type goroutine struct {
	id    uint64
	state string // the bracketed state: "running", "chan receive", ...
	stack string // the full stanza, first line included
}

// Check arms leak detection for one test: goroutines alive now are
// grandfathered, and a cleanup registered on t fails the test if any
// goroutine created after this call is still alive when the test ends.
func Check(t testing.TB) {
	t.Helper()
	before := snapshot()
	t.Cleanup(func() {
		if err := verify(before, defaultAttempts, defaultFirstDelay); err != nil {
			t.Errorf("leakcheck: %v", err)
		}
	})
}

// Main wraps m.Run with a whole-binary leak check: after all tests pass,
// any non-system goroutine still alive fails the run with exit code 1.
// Wire it as the package's TestMain.
func Main(m *testing.M) int {
	code := m.Run()
	if code != 0 {
		return code // test failures win; don't pile a leak report on top
	}
	if err := verify(nil, defaultAttempts, defaultFirstDelay); err != nil {
		fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
		return 1
	}
	return code
}

// verify diffs the current goroutine set against before (nil = only the
// system filter applies), retrying with doubling backoff while leaks
// remain. It returns an error describing the survivors of the last
// attempt.
func verify(before map[uint64]goroutine, attempts int, firstDelay time.Duration) error {
	delay := firstDelay
	var leaked []goroutine
	for i := 0; ; i++ {
		leaked = leaked[:0]
		for id, g := range snapshot() {
			if _, ok := before[id]; ok {
				continue
			}
			if ignored(g) {
				continue
			}
			leaked = append(leaked, g)
		}
		if len(leaked) == 0 {
			return nil
		}
		if i+1 >= attempts {
			break
		}
		time.Sleep(delay)
		delay *= 2
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i].id < leaked[j].id })
	var b strings.Builder
	fmt.Fprintf(&b, "%d leaked goroutine(s):", len(leaked))
	for _, g := range leaked {
		b.WriteString("\n\n")
		b.WriteString(g.stack)
	}
	return fmt.Errorf("%s", b.String())
}

// snapshot captures every live goroutine, keyed by id.
func snapshot() map[uint64]goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	return parseStacks(string(buf))
}

// parseStacks splits runtime.Stack(all=true) output into stanzas. Each
// begins "goroutine N [state]:" and stanzas are separated by blank
// lines.
func parseStacks(dump string) map[uint64]goroutine {
	out := make(map[uint64]goroutine)
	for _, stanza := range strings.Split(strings.TrimSpace(dump), "\n\n") {
		header, _, _ := strings.Cut(stanza, "\n")
		rest, ok := strings.CutPrefix(header, "goroutine ")
		if !ok {
			continue
		}
		idStr, state, ok := strings.Cut(rest, " ")
		if !ok {
			continue
		}
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			continue
		}
		state = strings.TrimSuffix(strings.TrimPrefix(state, "["), "]:")
		out[id] = goroutine{id: id, state: state, stack: stanza}
	}
	return out
}

// systemFrames mark goroutines the runtime or test framework own; their
// lifetimes are not the test's responsibility.
var systemFrames = []string{
	"created by runtime.",         // GC workers, scavenger, finalizer
	"created by testing.",         // tRunner goroutines for (sub)tests
	"testing.(*M).Run",            // the main goroutine during TestMain
	"testing.runFuzzing",          // fuzz workers
	"testing.(*F).Fuzz",           // fuzz targets
	"os/signal.",                  // signal delivery loop
	"runtime/pprof.",              // profile writers
	"internal/leakcheck.snapshot", // the goroutine taking this snapshot
}

// ignored reports whether g is a system goroutine (or the snapshotting
// goroutine itself).
func ignored(g goroutine) bool {
	if g.state == "running" && strings.Contains(g.stack, "leakcheck") {
		return true
	}
	for _, frame := range systemFrames {
		if strings.Contains(g.stack, frame) {
			return true
		}
	}
	return false
}
