package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestParseStacks(t *testing.T) {
	dump := "goroutine 1 [running]:\nmain.main()\n\t/src/main.go:10 +0x1\n\n" +
		"goroutine 42 [chan receive]:\nmain.worker()\n\t/src/main.go:20 +0x2\ncreated by main.main\n\t/src/main.go:15 +0x3\n"
	gs := parseStacks(dump)
	if len(gs) != 2 {
		t.Fatalf("parsed %d goroutines, want 2", len(gs))
	}
	if g := gs[1]; g.state != "running" {
		t.Errorf("goroutine 1 state = %q, want running", g.state)
	}
	g, ok := gs[42]
	if !ok {
		t.Fatalf("goroutine 42 not parsed")
	}
	if g.state != "chan receive" {
		t.Errorf("goroutine 42 state = %q, want chan receive", g.state)
	}
	if !strings.Contains(g.stack, "created by main.main") {
		t.Errorf("goroutine 42 stack lost its created-by line:\n%s", g.stack)
	}
}

func TestVerifyCatchesLeak(t *testing.T) {
	before := snapshot()
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-release
	}()

	err := verify(before, 2, time.Millisecond)
	if err == nil {
		t.Fatalf("verify missed a blocked goroutine")
	}
	if !strings.Contains(err.Error(), "leaked goroutine") {
		t.Errorf("error %q does not name the leak", err)
	}
	if !strings.Contains(err.Error(), "TestVerifyCatchesLeak") {
		t.Errorf("error does not carry the leaking stack:\n%v", err)
	}

	close(release)
	<-done
	if err := verify(before, defaultAttempts, defaultFirstDelay); err != nil {
		t.Errorf("verify still reports a leak after the goroutine exited: %v", err)
	}
}

func TestVerifyRetriesThroughWinddown(t *testing.T) {
	before := snapshot()
	go func() {
		time.Sleep(40 * time.Millisecond) // winds down while verify retries
	}()
	if err := verify(before, defaultAttempts, defaultFirstDelay); err != nil {
		t.Errorf("verify did not wait out a winding-down goroutine: %v", err)
	}
}

func TestVerifyGrandfathersExisting(t *testing.T) {
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-release
	}()
	defer func() { close(release); <-done }()

	// The goroutine is alive at snapshot time, so it is not a leak.
	if err := verify(snapshot(), 2, time.Millisecond); err != nil {
		t.Errorf("verify flagged a grandfathered goroutine: %v", err)
	}
}

func TestCheck(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
	}()
	close(stop)
	<-done
}
