package extcore

import (
	"math/rand"
	"slices"
	"testing"

	"trikcore/internal/core"
	"trikcore/internal/graph"
	"trikcore/internal/obs"
)

func randomGraph(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for u := 0; u < n; u++ {
		g.AddVertex(graph.Vertex(u))
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(graph.Vertex(u), graph.Vertex(v))
			}
		}
	}
	return g
}

// budgets exercised by the equivalence tests: tiny (many partitions),
// moderate, and unbounded (the in-memory path).
var testBudgets = []int64{1 << 10, 64 << 10, 0}

func TestDecomposeMatchesInMemory(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", graph.New()},
		{"triangle", graph.FromPairs(1, 2, 2, 3, 3, 1)},
		{"sparse", randomGraph(80, 0.08, 1)},
		{"medium", randomGraph(120, 0.15, 2)},
		{"dense", randomGraph(60, 0.5, 3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := graph.FreezeStatic(tc.g)
			want := core.DecomposeStatic(s, core.Options{})
			for _, budget := range testBudgets {
				got, err := Decompose(s, Options{MemBudget: budget, TempDir: t.TempDir()})
				if err != nil {
					t.Fatalf("budget %d: %v", budget, err)
				}
				if !slices.Equal(got.Kappa, want.Kappa) {
					t.Errorf("budget %d: κ differs from in-memory decomposition", budget)
				}
				if got.MaxKappa != want.MaxKappa {
					t.Errorf("budget %d: MaxKappa = %d, want %d", budget, got.MaxKappa, want.MaxKappa)
				}
			}
		})
	}
}

func TestDecomposeHonorsBudget(t *testing.T) {
	g := randomGraph(100, 0.2, 4)
	s := graph.FreezeStatic(g)
	const budget = 8 << 10
	reg := obs.NewRegistry()
	got, err := Decompose(s, Options{MemBudget: budget, TempDir: t.TempDir(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Stats.External {
		t.Fatalf("budget %d did not trigger the external path (%d partitions)", budget, got.Stats.Partitions)
	}
	if got.Stats.Partitions < 2 {
		t.Fatalf("Partitions = %d, want ≥ 2", got.Stats.Partitions)
	}
	if got.Stats.PeakResidentBytes > budget {
		t.Errorf("PeakResidentBytes = %d exceeds budget %d", got.Stats.PeakResidentBytes, budget)
	}
	if got.Stats.PeakResidentBytes <= 0 {
		t.Error("PeakResidentBytes not recorded")
	}
	peak := reg.Gauge("trikcore_extcore_resident_peak_bytes", "Largest resident peel state of any single partition activation.", nil)
	if peak.Value() != got.Stats.PeakResidentBytes {
		t.Errorf("gauge reports %d, stats report %d", peak.Value(), got.Stats.PeakResidentBytes)
	}
	parts := reg.Gauge("trikcore_extcore_partitions", "Vertex-range partitions the memory budget produced.", nil)
	if int(parts.Value()) != got.Stats.Partitions {
		t.Errorf("partitions gauge = %d, stats = %d", parts.Value(), got.Stats.Partitions)
	}
	acts := reg.Counter("trikcore_extcore_activations_total", "Partition loads (support slice read, live rows packed).", nil)
	if int64(acts.Value()) != got.Stats.Activations {
		t.Errorf("activations counter = %d, stats = %d", acts.Value(), got.Stats.Activations)
	}
	if got.Stats.SpillRecords == 0 {
		t.Error("no spill records on a multi-partition graph with cross-partition triangles")
	}

	// And the answer is still exact.
	want := core.DecomposeStatic(s, core.Options{})
	if !slices.Equal(got.Kappa, want.Kappa) {
		t.Error("budgeted decomposition diverged from in-memory κ")
	}
}

func TestDecomposeOnMappedView(t *testing.T) {
	g := randomGraph(70, 0.2, 5)
	want := core.DecomposeStatic(graph.FreezeStatic(g), core.Options{})
	path := t.TempDir() + "/g.tkcg"
	if err := graph.WriteMapped(path, graph.FreezeStatic(g)); err != nil {
		t.Fatal(err)
	}
	m, err := graph.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, budget := range testBudgets {
		got, err := Decompose(m.Static(), Options{MemBudget: budget, TempDir: t.TempDir()})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if !slices.Equal(got.Kappa, want.Kappa) {
			t.Errorf("budget %d: κ over mapped view differs from in-memory", budget)
		}
	}
}

func TestPlanPartitions(t *testing.T) {
	g := randomGraph(50, 0.3, 6)
	s := graph.FreezeStatic(g)

	t.Run("unbounded is one partition", func(t *testing.T) {
		parts := planPartitions(s, 0)
		if len(parts) != 1 {
			t.Fatalf("got %d partitions, want 1", len(parts))
		}
		p := parts[0]
		if p.vLo != 0 || int(p.vHi) != s.NumVertices() || p.eLo != 0 || int(p.eHi) != s.NumEdges() {
			t.Errorf("partition %+v does not cover the graph", p)
		}
	})

	t.Run("ranges tile the graph", func(t *testing.T) {
		parts := planPartitions(s, 2<<10)
		if len(parts) < 2 {
			t.Fatalf("tiny budget produced %d partitions", len(parts))
		}
		if parts[0].vLo != 0 || parts[0].eLo != 0 {
			t.Errorf("first partition %+v does not start at zero", parts[0])
		}
		for i := 1; i < len(parts); i++ {
			if parts[i].vLo != parts[i-1].vHi || parts[i].eLo != parts[i-1].eHi {
				t.Errorf("partition %d (%+v) does not abut %d (%+v)", i, parts[i], i-1, parts[i-1])
			}
		}
		last := parts[len(parts)-1]
		if int(last.vHi) != s.NumVertices() || int(last.eHi) != s.NumEdges() {
			t.Errorf("last partition %+v does not end the graph", last)
		}
		// Edge ownership: every edge's lower endpoint is inside the
		// owning partition's vertex range.
		for i := 0; i < s.NumEdges(); i++ {
			e := int32(i)
			var owner *partition
			for pi := range parts {
				if e >= parts[pi].eLo && e < parts[pi].eHi {
					owner = &parts[pi]
					break
				}
			}
			if owner == nil {
				t.Fatalf("edge %d not owned by any partition", i)
			}
			u, _ := s.Endpoints(e)
			if u < owner.vLo || u >= owner.vHi {
				t.Fatalf("edge %d has lower endpoint %d outside owner %+v", i, u, *owner)
			}
		}
	})
}

func TestSpillSetRoundTrip(t *testing.T) {
	ss, err := newSpillSet(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.close()
	// More records than one buffer holds, to force file flushes.
	const n = 1500
	for i := 0; i < n; i++ {
		if err := ss.append(1, int32(i), int32(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	if ss.pending(1) != n || ss.pending(0) != 0 {
		t.Fatalf("pending = %d/%d, want %d/0", ss.pending(1), ss.pending(0), n)
	}
	i := 0
	err = ss.drain(1, func(edge, val int32) error {
		if edge != int32(i) || val != int32(i%7) {
			t.Fatalf("record %d = (%d, %d)", i, edge, val)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != n || ss.pending(1) != 0 {
		t.Fatalf("drained %d records, pending now %d", i, ss.pending(1))
	}
	// Reusable after drain.
	if err := ss.append(1, 42, 9); err != nil {
		t.Fatal(err)
	}
	got := 0
	if err := ss.drain(1, func(edge, val int32) error { got++; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("second drain saw %d records, want 1", got)
	}
}

func FuzzExternalDecompose(f *testing.F) {
	f.Add(int64(1), 40, 20)
	f.Add(int64(7), 25, 60)
	f.Add(int64(42), 60, 10)
	f.Fuzz(func(t *testing.T, seed int64, n, pct int) {
		if n < 0 || n > 80 || pct < 0 || pct > 100 {
			t.Skip()
		}
		g := randomGraph(n, float64(pct)/100, seed)
		s := graph.FreezeStatic(g)
		want := core.DecomposeStatic(s, core.Options{})
		for _, budget := range []int64{64 << 10, 1 << 20, 0} {
			got, err := Decompose(s, Options{MemBudget: budget, TempDir: t.TempDir()})
			if err != nil {
				t.Fatalf("budget %d: %v", budget, err)
			}
			if !slices.Equal(got.Kappa, want.Kappa) {
				t.Fatalf("budget %d: external κ differs from in-memory (seed %d, n %d, pct %d)",
					budget, seed, n, pct)
			}
		}
	})
}
