package extcore

import (
	"trikcore/internal/graph"
)

// partition is one vertex range and the contiguous edge-id range it
// owns. Edge ids are assigned lexicographically by (lower endpoint,
// upper endpoint), so every edge whose lower endpoint falls in
// [vLo, vHi) has its id in [eLo, eHi) — ownership needs no lookup
// structure beyond the range bounds.
type partition struct {
	vLo, vHi int32
	eLo, eHi int32
}

// vertexCost is the planning bound on the resident bytes vertex u
// contributes to its partition's activation: 8 bytes per owned edge
// (support + worst-case peel queue) and 8 bytes per adjacency entry
// (the packed live row, before any edge dies).
func vertexCost(owned, rowLen int32) int64 {
	return int64(owned)*8 + int64(rowLen)*8
}

// partitionOverhead is the fixed per-partition resident cost charged at
// planning time (row offsets and slice headers).
const partitionOverhead = 1 << 10

// planPartitions cuts the vertex range into partitions whose planned
// activation cost fits budget. A non-positive budget, or one the whole
// graph fits under, yields a single partition (the in-memory path). A
// single vertex whose cost alone exceeds the budget still gets its own
// partition: vertex ranges are the finest ownership unit, so the budget
// is honored up to the largest single row (documented in DESIGN.md §5g).
func planPartitions(s *graph.Static, budget int64) []partition {
	n := s.NumVertices()
	m := s.NumEdges()
	if n == 0 {
		return []partition{{}}
	}
	ves := vertexEdgeStarts(s)
	if budget <= 0 {
		return []partition{{vLo: 0, vHi: int32(n), eLo: 0, eHi: int32(m)}} //trikcheck:checked frozen views bound n, m below 2^31
	}
	var parts []partition
	cur := partition{}
	cost := int64(partitionOverhead)
	for u := 0; u < n; u++ {
		owned := ves[u+1] - ves[u]
		rowLen := int32(s.Degree(int32(u))) //trikcheck:checked frozen views bound n, m below 2^31
		c := vertexCost(owned, rowLen)
		if cost+c > budget && cur.vHi > cur.vLo {
			parts = append(parts, cur)
			cur = partition{vLo: cur.vHi, vHi: cur.vHi, eLo: cur.eHi, eHi: cur.eHi}
			cost = partitionOverhead
		}
		cur.vHi = int32(u + 1) //trikcheck:checked frozen views bound n, m below 2^31
		cur.eHi = ves[u+1]
		cost += c
	}
	parts = append(parts, cur)
	return parts
}

// vertexEdgeStarts returns, per dense vertex u, the id of the first
// edge whose lower endpoint is ≥ u (length n+1). One sequential scan of
// the sorted EdgeU array — on a mapped view this is the only full read
// the planner performs.
func vertexEdgeStarts(s *graph.Static) []int32 {
	n := s.NumVertices()
	ves := make([]int32, n+1)
	for i, u := range s.EdgeU {
		ves[u+1] = int32(i + 1) //trikcheck:checked frozen views bound m below 2^31
	}
	for u := 0; u < n; u++ {
		if ves[u+1] < ves[u] {
			ves[u+1] = ves[u]
		}
	}
	return ves
}
