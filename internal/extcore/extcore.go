// Package extcore decomposes graphs whose peel state does not fit in
// memory: an out-of-core Triangle K-Core decomposition over vertex-range
// partitions of a frozen (typically mmap'd) CSR view.
//
// The in-memory algorithm (internal/core) holds three O(M) structures at
// once: the κ̃ support array, the bucket queue and the live adjacency.
// This package replaces the global min-order peel with a level-synchronous
// bottom-up peel — process κ levels in increasing order, at each level
// peeling every live edge whose bound equals the level — which admits
// partitioning: edge ids are lexicographic in the lower endpoint, so a
// vertex range owns a contiguous edge-id range, and only the active
// partition's support slice, peel queue and packed live rows are resident.
// Support values for inactive partitions live in a scratch file; triangle
// decrements that cross a partition boundary are spilled to per-partition
// delta files and applied, with the same Theorem 1 guard the serial
// algorithm uses, when the target partition next activates. Levels sweep
// the partitions until a full round peels nothing, which (since every
// activation drains its spill file first) is a fixpoint.
//
// The level-synchronous schedule processes edges in a different order
// than Algorithm 1's global min-heap, but κ is schedule-independent: both
// peel an edge exactly when its bound is the current minimum level, and
// the guard keeps every bound at or above the level, so the κ values —
// byte for byte — match core.DecomposeStatic. The equivalence is fuzzed
// in extcore_test.go across memory budgets.
package extcore

import (
	"errors"
	"fmt"
	"math"
	"time"

	"trikcore/internal/core"
	"trikcore/internal/graph"
	"trikcore/internal/obs"
)

// Options configure Decompose.
type Options struct {
	// MemBudget bounds, in bytes, the resident per-partition peel state:
	// the active partition's support slice, its peel queue and its packed
	// live rows. Zero or negative means unbounded, which collapses to the
	// in-memory kernels over the (possibly mapped) view. Global index
	// state — the κ output, the live-edge bitset and the O(N) partition
	// table — is not charged against the budget.
	MemBudget int64
	// Parallelism bounds the support-phase goroutines on the in-memory
	// path. Zero means GOMAXPROCS. The partitioned path is sequential:
	// its concurrency unit is the partition activation, and correctness
	// of the spill protocol depends on one activation at a time.
	Parallelism int
	// TempDir receives the support scratch file and the per-partition
	// spill files. Empty means the system temp directory.
	TempDir string
	// Metrics, when non-nil, receives the extcore counters and gauges
	// (see newMetrics for the series).
	Metrics *obs.Registry
}

// Stats reports how a decomposition ran.
type Stats struct {
	// Partitions is the number of vertex-range partitions the budget
	// produced; 1 means the in-memory path ran.
	Partitions int
	// External reports whether the partitioned out-of-core path ran.
	External bool
	// Levels is the number of distinct κ levels processed.
	Levels int
	// Sweeps counts full partition rounds across all levels.
	Sweeps int64
	// Activations counts partition loads (support slice read + rows built).
	Activations int64
	// SpillRecords and SpillBytes count cross-partition decrement records.
	SpillRecords int64
	SpillBytes   int64
	// PeakResidentBytes is the largest resident peel state of any single
	// activation: support slice + peel queue + packed live rows.
	PeakResidentBytes int64
}

// Result is the output of an out-of-core decomposition: κ per dense edge
// id of the view it ran on, plus run statistics.
type Result struct {
	Kappa    []int32
	MaxKappa int32
	Stats    Stats
}

// Decompose computes κ(e) for every edge of s under the memory budget in
// opts. The result's Kappa slice is indexed by s's dense edge ids and is
// identical to core.DecomposeStatic's.
func Decompose(s *graph.Static, opts Options) (*Result, error) {
	mets := newMetrics(opts.Metrics)
	parts := planPartitions(s, opts.MemBudget)
	mets.partitions.Set(int64(len(parts)))
	if len(parts) <= 1 {
		return decomposeResident(s, opts, mets), nil
	}
	return decomposePartitioned(s, parts, opts, mets)
}

// decomposeResident is the unbounded path: the same kernels the
// in-memory decomposition uses, driven through the core.EdgeView
// interface so a mapped view works identically to a frozen one.
func decomposeResident(s *graph.Static, opts Options, mets metrics) *Result {
	start := time.Now()
	support := core.ComputeSupportView(s, opts.Parallelism)
	r := core.Peel(s, graph.NewLiveAdj(s), support)
	m := s.NumEdges()
	resident := int64(m)*8 + int64(len(s.AdjNbr))*8 + int64(s.NumVertices())*4
	mets.residentPeak.Set(resident)
	mets.activations.Inc()
	mets.levelSeconds.Observe(time.Since(start).Seconds())
	return &Result{
		Kappa:    r.Kappa,
		MaxKappa: r.MaxKappa,
		Stats: Stats{
			Partitions:        1,
			Levels:            levelCount(r.Kappa),
			Activations:       1,
			PeakResidentBytes: resident,
		},
	}
}

// levelCount returns the number of distinct κ values present.
func levelCount(kappa []int32) int {
	if len(kappa) == 0 {
		return 0
	}
	maxK := int32(0)
	for _, k := range kappa {
		if k > maxK {
			maxK = k
		}
	}
	seen := make([]bool, maxK+1)
	n := 0
	for _, k := range kappa {
		if !seen[k] {
			seen[k] = true
			n++
		}
	}
	return n
}

// decomposePartitioned is the out-of-core driver. See the package
// comment for the schedule; the phases are
//
//	init A: per partition, count owned-edge supports off the oriented
//	        listing, spilling +1 credits for foreign edges
//	init B: per partition, apply spilled credits, record the level floor
//	peel:   level-synchronous partition sweeps to fixpoint per level
func decomposePartitioned(s *graph.Static, parts []partition, opts Options, mets metrics) (*Result, error) {
	m := s.NumEdges()
	st := &extState{
		s:        s,
		parts:    parts,
		kappa:    make([]int32, m),
		live:     newBitset(m),
		liveLeft: make([]int32, len(parts)),
		minLive:  make([]int32, len(parts)),
		mets:     mets,
	}
	st.stats.Partitions = len(parts)
	st.stats.External = true
	for i := range st.live.w {
		st.live.w[i] = ^uint64(0)
	}
	st.live.clampTail(m)
	for pi, p := range parts {
		st.liveLeft[pi] = p.eHi - p.eLo
	}

	supp, err := newSuppFile(opts.TempDir, m)
	if err != nil {
		return nil, err
	}
	spills, err := newSpillSet(opts.TempDir, len(parts))
	if err != nil {
		return nil, errors.Join(err, supp.close())
	}
	st.supp, st.spills = supp, spills
	// Scratch cleanup; the κ result never depends on these files.
	defer supp.close()
	defer spills.close()

	if err := st.initSupport(); err != nil {
		return nil, err
	}
	if err := st.peelLevels(); err != nil {
		return nil, err
	}

	st.stats.SpillRecords = st.spills.records
	st.stats.SpillBytes = st.spills.bytes
	mets.spillRecords.Add(uint64(st.spills.records))
	mets.spillBytes.Add(uint64(st.spills.bytes))
	mets.residentPeak.Set(st.stats.PeakResidentBytes)
	maxK := int32(0)
	for _, k := range st.kappa {
		if k > maxK {
			maxK = k
		}
	}
	return &Result{Kappa: st.kappa, MaxKappa: maxK, Stats: st.stats}, nil
}

// extState is the mutable state of one partitioned run.
type extState struct {
	s     *graph.Static
	parts []partition

	kappa []int32
	live  *bitset
	// liveLeft[pi] counts live edges owned by partition pi; minLive[pi]
	// is the smallest support among them as of pi's last activation (a
	// lower bound stays valid: later cross-partition decrements set the
	// partition's pending flag, forcing reactivation).
	liveLeft []int32
	minLive  []int32

	supp   *suppFile
	spills *spillSet

	stats Stats
	mets  metrics

	// activation scratch, reused across activations
	suppBuf  []int32
	rowOff   []int32
	rowFlat  []uint64
	queueBuf []int32
}

// initSupport runs the two-pass out-of-core support initialization.
func (st *extState) initSupport() error {
	s := st.s
	// Pass A: oriented triangle counting per partition. Each triangle is
	// listed once (by its lowest-ranked edge); the two other edges get
	// local credits when owned, spill credits otherwise.
	for pi := range st.parts {
		p := st.parts[pi]
		supp := st.suppSlice(p)
		clear(supp)
		credit := func(e int32) error {
			if e >= p.eLo && e < p.eHi {
				supp[e-p.eLo]++
				return nil
			}
			return st.spills.append(st.partOf(e), e, 1)
		}
		var ferr error
		for i := p.eLo; i < p.eHi; i++ {
			s.ForEachOrientedTriangle(i, func(e1, e2 int32) bool {
				supp[i-p.eLo]++
				if ferr = credit(e1); ferr != nil {
					return false
				}
				if ferr = credit(e2); ferr != nil {
					return false
				}
				return true
			})
			if ferr != nil {
				return ferr
			}
		}
		if err := st.supp.write(p.eLo, supp); err != nil {
			return err
		}
		st.noteActivation(int64(len(supp))*4, 0, 0)
	}
	// Pass B: fold the spilled credits in and record each partition's
	// level floor.
	for pi := range st.parts {
		p := st.parts[pi]
		supp := st.suppSlice(p)
		if err := st.supp.read(p.eLo, supp); err != nil {
			return err
		}
		err := st.spills.drain(pi, func(e, delta int32) error {
			if e < p.eLo || e >= p.eHi {
				return fmt.Errorf("extcore: spill record for edge %d outside partition [%d, %d)", e, p.eLo, p.eHi)
			}
			supp[e-p.eLo] += delta
			return nil
		})
		if err != nil {
			return err
		}
		if err := st.supp.write(p.eLo, supp); err != nil {
			return err
		}
		st.minLive[pi] = minOf(supp)
		st.noteActivation(int64(len(supp))*4, 0, 0)
	}
	return nil
}

// peelLevels runs the level-synchronous peel to completion.
func (st *extState) peelLevels() error {
	for {
		k, any := st.nextLevel()
		if !any {
			return nil
		}
		levelStart := time.Now()
		for {
			peeled := 0
			for pi := range st.parts {
				if st.liveLeft[pi] == 0 {
					// Dead partitions may still receive spill records for
					// edges that died after the sender enumerated them;
					// the records are moot, drop them.
					if st.spills.pending(pi) > 0 {
						if err := st.spills.drain(pi, func(int32, int32) error { return nil }); err != nil {
							return err
						}
					}
					continue
				}
				if st.spills.pending(pi) == 0 && st.minLive[pi] > k {
					continue
				}
				n, err := st.activate(pi, k)
				if err != nil {
					return err
				}
				peeled += n
			}
			st.stats.Sweeps++
			st.mets.sweeps.Inc()
			if peeled == 0 {
				break
			}
		}
		st.stats.Levels++
		st.mets.levelSeconds.Observe(time.Since(levelStart).Seconds())
	}
}

// nextLevel returns the smallest support among live edges, per the
// minLive floors, and whether any live edge remains.
func (st *extState) nextLevel() (int32, bool) {
	k := int32(math.MaxInt32)
	any := false
	for pi := range st.parts {
		if st.liveLeft[pi] == 0 {
			continue
		}
		any = true
		if st.minLive[pi] < k {
			k = st.minLive[pi]
		}
	}
	return k, any
}

// activate loads partition pi, applies its pending spill records, peels
// every live owned edge whose bound equals k (with cascade), writes the
// support slice back and refreshes the partition's level floor. It
// returns the number of edges peeled.
func (st *extState) activate(pi int, k int32) (int, error) {
	p := st.parts[pi]
	supp := st.suppSlice(p)
	if err := st.supp.read(p.eLo, supp); err != nil {
		return 0, err
	}
	// Apply cross-partition decrements under the same guard the serial
	// algorithm applies locally: a bound at or below the peel level
	// already accounts for the lost triangle.
	err := st.spills.drain(pi, func(e, kt int32) error {
		if e < p.eLo || e >= p.eHi {
			return fmt.Errorf("extcore: spill record for edge %d outside partition [%d, %d)", e, p.eLo, p.eHi)
		}
		if le := e - p.eLo; st.live.get(e) && supp[le] > kt {
			supp[le]--
		}
		return nil
	})
	if err != nil {
		return 0, err
	}

	st.buildRows(p)
	queue := st.queueBuf[:0]
	for le := range supp {
		e := p.eLo + int32(le) //trikcheck:checked owned ≤ m < 2^31
		if supp[le] == k && st.live.get(e) {
			queue = append(queue, e)
		}
	}

	peeled := 0
	for len(queue) > 0 {
		e := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !st.live.get(e) {
			continue
		}
		st.live.clear(e)
		st.liveLeft[pi]--
		st.kappa[e] = k
		peeled++
		u, v := st.s.Endpoints(e)
		err := st.forEachLiveTriangle(p, u, v, func(e1, e2 int32) error {
			var derr error
			queue, derr = st.dec(p, supp, queue, e1, k)
			if derr != nil {
				return derr
			}
			queue, derr = st.dec(p, supp, queue, e2, k)
			return derr
		})
		if err != nil {
			return peeled, err
		}
	}
	st.queueBuf = queue[:0]

	if err := st.supp.write(p.eLo, supp); err != nil {
		return peeled, err
	}
	st.minLive[pi] = st.minLiveOwned(p, supp)
	st.noteActivation(int64(len(supp))*4, int64(len(st.rowFlat))*8+int64(len(st.rowOff))*4, int64(cap(st.queueBuf))*4)
	return peeled, nil
}

// dec applies one triangle-loss decrement to edge e at level k: owned
// edges decrement locally (entering the peel queue when they reach the
// level), foreign edges spill to their partition's delta file.
func (st *extState) dec(p partition, supp []int32, queue []int32, e int32, k int32) ([]int32, error) {
	if e >= p.eLo && e < p.eHi {
		if le := e - p.eLo; supp[le] > k {
			supp[le]--
			if supp[le] == k {
				queue = append(queue, e)
			}
		}
		return queue, nil
	}
	return queue, st.spills.append(st.partOf(e), e, k)
}

// minLiveOwned returns the smallest support among the partition's live
// owned edges, or MaxInt32 when none remain.
func (st *extState) minLiveOwned(p partition, supp []int32) int32 {
	minK := int32(math.MaxInt32)
	for le, sv := range supp {
		if sv < minK && st.live.get(p.eLo+int32(le)) { //trikcheck:checked owned ≤ m < 2^31
			minK = sv
		}
	}
	return minK
}

// buildRows packs the live adjacency rows of the partition's vertices
// into the reusable flat scratch: rowFlat[rowOff[u-vLo]:rowOff[u-vLo+1]]
// holds (w<<32 | edge id) entries for live edges of owned vertex u, in
// neighbor order. Entries can die during the activation; consumers
// re-check the bitset.
func (st *extState) buildRows(p partition) {
	nv := int(p.vHi - p.vLo)
	if cap(st.rowOff) < nv+1 {
		st.rowOff = make([]int32, nv+1)
	}
	st.rowOff = st.rowOff[:nv+1]
	st.rowFlat = st.rowFlat[:0]
	for u := p.vLo; u < p.vHi; u++ {
		st.rowOff[u-p.vLo] = int32(len(st.rowFlat)) //trikcheck:checked row entries ≤ 2m < 2^31
		nbr, eid := st.s.Row(u)
		for i, w := range nbr {
			if st.live.get(eid[i]) {
				st.rowFlat = append(st.rowFlat, pack(w, eid[i]))
			}
		}
	}
	st.rowOff[nv] = int32(len(st.rowFlat)) //trikcheck:checked row entries ≤ 2m < 2^31
}

func pack(w, eid int32) uint64 { return uint64(uint32(w))<<32 | uint64(uint32(eid)) }

// forEachLiveTriangle enumerates triangles {u, v, w} of the peeled edge
// whose other two edges are both live. u is always owned (it is the
// lower endpoint); v's row comes from the local pack when owned and from
// the mapped static row (bitset-filtered) otherwise.
func (st *extState) forEachLiveTriangle(p partition, u, v int32, fn func(e1, e2 int32) error) error {
	rowU := st.localRow(p, u)
	if v >= p.vLo && v < p.vHi {
		rowV := st.localRow(p, v)
		for i, j := 0, 0; i < len(rowU) && j < len(rowV); {
			x, y := rowU[i]>>32, rowV[j]>>32
			switch {
			case x < y:
				i++
			case x > y:
				j++
			default:
				e1, e2 := int32(uint32(rowU[i])), int32(uint32(rowV[j]))
				if st.live.get(e1) && st.live.get(e2) {
					if err := fn(e1, e2); err != nil {
						return err
					}
				}
				i++
				j++
			}
		}
		return nil
	}
	nbrV, eidV := st.s.Row(v)
	for i, j := 0, 0; i < len(rowU) && j < len(nbrV); {
		x, y := int32(rowU[i]>>32), nbrV[j] //trikcheck:checked packed>>32 is a dense position
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			e1, e2 := int32(uint32(rowU[i])), eidV[j]
			if st.live.get(e1) && st.live.get(e2) {
				if err := fn(e1, e2); err != nil {
					return err
				}
			}
			i++
			j++
		}
	}
	return nil
}

// localRow returns the packed live row of owned vertex u.
func (st *extState) localRow(p partition, u int32) []uint64 {
	lo, hi := st.rowOff[u-p.vLo], st.rowOff[u-p.vLo+1]
	return st.rowFlat[lo:hi]
}

// suppSlice returns the reusable support scratch sized to the partition.
func (st *extState) suppSlice(p partition) []int32 {
	owned := int(p.eHi - p.eLo)
	if cap(st.suppBuf) < owned {
		st.suppBuf = make([]int32, owned)
	}
	return st.suppBuf[:owned]
}

// partOf locates the partition owning edge e by binary search over the
// partition edge ranges.
func (st *extState) partOf(e int32) int {
	lo, hi := 0, len(st.parts)
	for lo < hi {
		mid := (lo + hi) / 2
		if st.parts[mid].eHi <= e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// noteActivation records one partition load in the stats and metrics.
func (st *extState) noteActivation(suppBytes, rowBytes, queueBytes int64) {
	st.stats.Activations++
	st.mets.activations.Inc()
	if r := suppBytes + rowBytes + queueBytes; r > st.stats.PeakResidentBytes {
		st.stats.PeakResidentBytes = r
	}
}

func minOf(a []int32) int32 {
	minK := int32(math.MaxInt32)
	for _, v := range a {
		if v < minK {
			minK = v
		}
	}
	return minK
}
