package extcore

import (
	"trikcore/internal/obs"
)

// metrics is the extcore instrumentation bundle. All handles are
// nil-safe: a nil registry yields no-op handles, so the decomposition
// pays one predictable branch per event when unobserved.
type metrics struct {
	partitions   *obs.Gauge
	activations  *obs.Counter
	sweeps       *obs.Counter
	spillRecords *obs.Counter
	spillBytes   *obs.Counter
	residentPeak *obs.Gauge
	levelSeconds *obs.Histogram
}

func newMetrics(r *obs.Registry) metrics {
	return metrics{
		partitions: r.Gauge("trikcore_extcore_partitions",
			"Vertex-range partitions the memory budget produced.", nil),
		activations: r.Counter("trikcore_extcore_activations_total",
			"Partition loads (support slice read, live rows packed).", nil),
		sweeps: r.Counter("trikcore_extcore_sweeps_total",
			"Full partition rounds across all peel levels.", nil),
		spillRecords: r.Counter("trikcore_extcore_spill_records_total",
			"Cross-partition support-delta records written.", nil),
		spillBytes: r.Counter("trikcore_extcore_spill_bytes_total",
			"Bytes of cross-partition support-delta records written.", nil),
		residentPeak: r.Gauge("trikcore_extcore_resident_peak_bytes",
			"Largest resident peel state of any single partition activation.", nil),
		levelSeconds: r.Histogram("trikcore_extcore_level_seconds",
			"Wall time per κ level of the partitioned peel.", obs.DurationBuckets, nil),
	}
}
