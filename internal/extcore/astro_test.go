package extcore

import (
	"slices"
	"testing"

	"trikcore/internal/core"
	"trikcore/internal/dataset"
	"trikcore/internal/graph"
	"trikcore/internal/obs"
)

// TestAstroUnder256KiB is the acceptance check for the out-of-core
// path: the Astro stand-in (≈38k edges, whose full support array alone
// is ≈150 KiB and whose packed adjacency is ≈600 KiB) must decompose to
// κ values identical to the in-memory algorithm under a 256 KiB peel
// budget, with the measured peak resident state actually under budget.
func TestAstroUnder256KiB(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale fixture")
	}
	d, ok := dataset.ByName("Astro-Author")
	if !ok {
		t.Fatal("Astro-Author dataset missing")
	}
	g := d.GenerateAt(0.2)
	s := graph.FreezeStatic(g)
	want := core.DecomposeStatic(s, core.Options{})

	const budget = 256 << 10
	reg := obs.NewRegistry()
	got, err := Decompose(s, Options{MemBudget: budget, TempDir: t.TempDir(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Stats.External || got.Stats.Partitions < 2 {
		t.Fatalf("budget %d did not partition the Astro fixture: %+v", budget, got.Stats)
	}
	if !slices.Equal(got.Kappa, want.Kappa) {
		t.Error("external κ differs from core.DecomposeStatic on the Astro fixture")
	}
	if got.MaxKappa != want.MaxKappa {
		t.Errorf("MaxKappa = %d, want %d", got.MaxKappa, want.MaxKappa)
	}
	if got.Stats.PeakResidentBytes <= 0 || got.Stats.PeakResidentBytes > budget {
		t.Errorf("PeakResidentBytes = %d, want within (0, %d]", got.Stats.PeakResidentBytes, budget)
	}
	peak := reg.Gauge("trikcore_extcore_resident_peak_bytes",
		"Largest resident peel state of any single partition activation.", nil)
	if peak.Value() != got.Stats.PeakResidentBytes {
		t.Errorf("resident gauge %d disagrees with stats %d", peak.Value(), got.Stats.PeakResidentBytes)
	}
	if got.Stats.SpillRecords == 0 {
		t.Error("no cross-partition spills on a partitioned Astro run")
	}
	t.Logf("stats: %+v", got.Stats)
}
