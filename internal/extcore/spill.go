package extcore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// suppFile holds the full M-entry support array on disk; activations
// read and write only their owned slice. Values are int32
// little-endian at offset 4·edgeID.
type suppFile struct {
	f   *os.File
	buf []byte // reusable I/O buffer
}

func newSuppFile(dir string, m int) (*suppFile, error) {
	f, err := os.CreateTemp(dir, "trikcore-extcore-supp-*.bin")
	if err != nil {
		return nil, fmt.Errorf("extcore: support scratch: %w", err)
	}
	if err := f.Truncate(int64(m) * 4); err != nil {
		name := f.Name()
		return nil, errors.Join(fmt.Errorf("extcore: sizing support scratch: %w", err), f.Close(), os.Remove(name))
	}
	return &suppFile{f: f}, nil
}

func (sf *suppFile) bytesFor(n int) []byte {
	if cap(sf.buf) < n*4 {
		sf.buf = make([]byte, n*4)
	}
	return sf.buf[:n*4]
}

// read fills dst with the support values of edges [eLo, eLo+len(dst)).
func (sf *suppFile) read(eLo int32, dst []int32) error {
	b := sf.bytesFor(len(dst))
	if _, err := sf.f.ReadAt(b, int64(eLo)*4); err != nil {
		return fmt.Errorf("extcore: reading support scratch: %w", err)
	}
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(b[i*4:])) //trikcheck:checked round-trips the int32 written below
	}
	return nil
}

// write stores src as the support values of edges [eLo, eLo+len(src)).
func (sf *suppFile) write(eLo int32, src []int32) error {
	b := sf.bytesFor(len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
	}
	if _, err := sf.f.WriteAt(b, int64(eLo)*4); err != nil {
		return fmt.Errorf("extcore: writing support scratch: %w", err)
	}
	return nil
}

func (sf *suppFile) close() error {
	if sf == nil || sf.f == nil {
		return nil
	}
	name := sf.f.Name()
	return errors.Join(sf.f.Close(), os.Remove(name))
}

// spillRecordLen is the on-disk size of one (edge, value) record.
const spillRecordLen = 8

// spillBufCap bounds each partition's in-memory append buffer; a full
// buffer flushes to the partition's spill file.
const spillBufCap = 4096 // bytes; 512 records

// spillSet is one append-only delta file per partition. During support
// initialization the records are (edge, +1) credits; during the peel
// they are (edge, level) decrements applied under the Theorem 1 guard.
// Records always target a different partition than the one appending,
// so a drain never races an append to the same file.
type spillSet struct {
	files   []*os.File
	bufs    [][]byte
	counts  []int64 // records pending per partition (buffer + file)
	records int64   // lifetime records appended, for stats
	bytes   int64   // lifetime bytes appended, for stats
}

func newSpillSet(dir string, parts int) (*spillSet, error) {
	ss := &spillSet{
		files:  make([]*os.File, parts),
		bufs:   make([][]byte, parts),
		counts: make([]int64, parts),
	}
	for i := range ss.files {
		f, err := os.CreateTemp(dir, fmt.Sprintf("trikcore-extcore-spill-%d-*.bin", i))
		if err != nil {
			return nil, errors.Join(fmt.Errorf("extcore: spill file: %w", err), ss.close())
		}
		ss.files[i] = f
		ss.bufs[i] = make([]byte, 0, spillBufCap)
	}
	return ss, nil
}

// append queues one record for partition pi.
func (ss *spillSet) append(pi int, edge, val int32) error {
	var rec [spillRecordLen]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(edge))
	binary.LittleEndian.PutUint32(rec[4:], uint32(val))
	ss.bufs[pi] = append(ss.bufs[pi], rec[:]...)
	ss.counts[pi]++
	ss.records++
	ss.bytes += spillRecordLen
	if len(ss.bufs[pi]) >= spillBufCap {
		return ss.flush(pi)
	}
	return nil
}

func (ss *spillSet) flush(pi int) error {
	if len(ss.bufs[pi]) == 0 {
		return nil
	}
	if _, err := ss.files[pi].Write(ss.bufs[pi]); err != nil {
		return fmt.Errorf("extcore: writing spill file: %w", err)
	}
	ss.bufs[pi] = ss.bufs[pi][:0]
	return nil
}

// pending returns the number of records queued for partition pi.
func (ss *spillSet) pending(pi int) int64 { return ss.counts[pi] }

// drain flushes, replays every record queued for partition pi through
// fn, and resets the partition's file to empty.
func (ss *spillSet) drain(pi int, fn func(edge, val int32) error) error {
	if err := ss.flush(pi); err != nil {
		return err
	}
	f := ss.files[pi]
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("extcore: rewinding spill file: %w", err)
	}
	var rec [spillRecordLen]byte
	for i := int64(0); i < ss.counts[pi]; i++ {
		if _, err := io.ReadFull(f, rec[:]); err != nil {
			return fmt.Errorf("extcore: reading spill file: %w", err)
		}
		edge := int32(binary.LittleEndian.Uint32(rec[0:])) //trikcheck:checked round-trips the int32 appended above
		val := int32(binary.LittleEndian.Uint32(rec[4:]))  //trikcheck:checked round-trips the int32 appended above
		if err := fn(edge, val); err != nil {
			return err
		}
	}
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("extcore: resetting spill file: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("extcore: resetting spill file: %w", err)
	}
	ss.counts[pi] = 0
	return nil
}

func (ss *spillSet) close() error {
	var errs []error
	for _, f := range ss.files {
		if f == nil {
			continue
		}
		name := f.Name()
		errs = append(errs, f.Close(), os.Remove(name))
	}
	return errors.Join(errs...)
}

// bitset is a fixed-size bit array indexed by dense edge id; the global
// live-edge index of the partitioned peel (M/8 bytes, the one per-edge
// structure that stays resident).
type bitset struct {
	w []uint64
}

func newBitset(n int) *bitset {
	return &bitset{w: make([]uint64, (n+63)/64)}
}

func (b *bitset) get(i int32) bool { return b.w[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b *bitset) clear(i int32)    { b.w[i>>6] &^= 1 << (uint(i) & 63) }

// clampTail zeroes the bits at or above n after a fill, so popcount-style
// scans never see ghost edges.
func (b *bitset) clampTail(n int) {
	if rem := n & 63; rem != 0 && len(b.w) > 0 {
		b.w[len(b.w)-1] &= (1 << uint(rem)) - 1
	}
}
