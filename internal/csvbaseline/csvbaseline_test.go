package csvbaseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"trikcore/internal/core"
	"trikcore/internal/graph"
	"trikcore/internal/reference"
)

func randomGraph(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Vertex(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(graph.Vertex(i), graph.Vertex(j))
			}
		}
	}
	return g
}

func TestQuickMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(13, 0.45, seed)
		got := CoCliqueSizes(g)
		for _, e := range g.Edges() {
			if got[e] != reference.CoCliqueSize(g, e) {
				return false
			}
		}
		return len(got) == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	g := randomGraph(40, 0.25, 9)
	serial := CoCliqueSizesWith(g, Options{Parallelism: 1})
	parallel := CoCliqueSizesWith(g, Options{Parallelism: 8})
	for e, s := range serial {
		if parallel[e] != s {
			t.Fatalf("edge %v: serial %d, parallel %d", e, s, parallel[e])
		}
	}
}

func TestCap(t *testing.T) {
	g := graph.New()
	for i := graph.Vertex(0); i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			g.AddEdge(i, j)
		}
	}
	capped := CoCliqueSizesWith(g, Options{Cap: 5})
	for e, s := range capped {
		if s != 5 {
			t.Fatalf("capped co_clique_size(%v) = %d, want 5", e, s)
		}
	}
	exact := CoCliqueSizes(g)
	for e, s := range exact {
		if s != 10 {
			t.Fatalf("exact co_clique_size(%v) = %d, want 10", e, s)
		}
	}
}

// TestKappaLowerBoundsCoClique verifies the relaxation direction stated in
// Section III: a clique of order c forces κ ≥ c-2 on its edges, so
// co_clique_size(e) ≤ κ(e)+2 — the Triangle K-Core proxy never
// underestimates the true maximum clique containing an edge.
func TestKappaLowerBoundsCoClique(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(16, 0.4, seed)
		cs := CoCliqueSizes(g)
		d := core.Decompose(g)
		for e, c := range cs {
			k, _ := d.KappaOf(e)
			if c > int(k)+2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndTiny(t *testing.T) {
	if got := CoCliqueSizes(graph.New()); len(got) != 0 {
		t.Fatalf("empty graph: %v", got)
	}
	g := graph.FromPairs(1, 2)
	got := CoCliqueSizes(g)
	if got[graph.NewEdge(1, 2)] != 2 {
		t.Fatalf("bare edge co_clique_size = %d, want 2", got[graph.NewEdge(1, 2)])
	}
}
