// Package csvbaseline reimplements the per-edge co-clique-size estimation
// at the heart of the CSV visualization method of Wang et al. (reference
// [1] of the paper), which the Triangle K-Core is designed to replace.
//
// CSV plots every vertex at the size of the largest clique one of its
// edges participates in. Estimating that size — co_clique_size(e) — is the
// dominant cost of CSV: for each edge it requires a maximum-clique search
// within the common neighborhood of the edge's endpoints. This package
// performs that search exactly (Bron–Kerbosch with pivoting), optionally
// in parallel and with a cap to bound pathological searches. Its role in
// the reproduction is as the slow baseline of Table II and as the
// reference series of the qualitative comparison in Figure 6.
package csvbaseline

import (
	"runtime"
	"sync"

	"trikcore/internal/clique"
	"trikcore/internal/graph"
)

// Options configure the baseline.
type Options struct {
	// Parallelism bounds worker goroutines; zero means GOMAXPROCS.
	Parallelism int
	// Cap, when positive, truncates each per-edge clique search once a
	// clique of Cap vertices is found (co_clique_size is then reported as
	// at most Cap). Zero means exact.
	Cap int
}

// CoCliqueSizes computes co_clique_size(e) for every edge of g: the order
// of the largest clique containing e.
func CoCliqueSizes(g *graph.Graph) map[graph.Edge]int {
	return CoCliqueSizesWith(g, Options{})
}

// CoCliqueSizesWith is CoCliqueSizes with explicit options.
func CoCliqueSizesWith(g *graph.Graph, opts Options) map[graph.Edge]int {
	edges := g.Edges()
	sizes := make([]int, len(edges))
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(edges) {
		workers = len(edges)
	}
	if workers <= 1 {
		for i, e := range edges {
			sizes[i] = coCliqueSize(g, e, opts.Cap)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		go func() {
			for i := range edges {
				next <- i
			}
			close(next)
		}()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					sizes[i] = coCliqueSize(g, edges[i], opts.Cap)
				}
			}()
		}
		wg.Wait()
	}
	out := make(map[graph.Edge]int, len(edges))
	for i, e := range edges {
		out[e] = sizes[i]
	}
	return out
}

// coCliqueSize is clique.CoCliqueSize with an optional cap on the inner
// maximum-clique search.
func coCliqueSize(g *graph.Graph, e graph.Edge, cap int) int {
	common := g.CommonNeighbors(e.U, e.V)
	if len(common) == 0 {
		return 2
	}
	sub := graph.InducedSubgraph(g, common)
	inner := cap - 2
	if cap <= 0 {
		inner = 0
	}
	return 2 + clique.MaxSize(sub, inner)
}
