package dynamic

import (
	"strconv"
	"strings"
	"testing"

	"trikcore/internal/core"
	"trikcore/internal/graph"
	"trikcore/internal/obs"
)

// k4 builds a 4-clique: every edge has κ=2.
func k4() *graph.Graph {
	g := graph.New()
	verts := []graph.Vertex{1, 2, 3, 4}
	for i, u := range verts {
		for _, v := range verts[i+1:] {
			g.AddEdge(u, v)
		}
	}
	return g
}

func TestInstrumentRecordsMutations(t *testing.T) {
	reg := obs.NewRegistry()
	en := NewEngine(k4())
	en.Instrument(reg)

	if !en.InsertEdge(1, 5) {
		t.Fatal("insert 1-5 not applied")
	}
	if !en.DeleteEdge(1, 2) {
		t.Fatal("delete 1-2 not applied")
	}
	added, removed := en.ApplyBatch([]EdgeOp{
		{U: 2, V: 5},             // new edge
		{U: 3, V: 5},             // new edge
		{U: 3, V: 5},             // duplicate, deduped
		{U: 1, V: 5, Del: true},  // delete the earlier insert
		{U: 9, V: 10, Del: true}, // absent, no-op but applied as op
	})
	if added != 2 || removed != 1 {
		t.Fatalf("ApplyBatch = (%d, %d), want (2, 1)", added, removed)
	}

	expo := string(reg.Gather())
	for _, want := range []string{
		`trikcore_engine_ops_applied_total{op="insert"} 3`,
		`trikcore_engine_ops_applied_total{op="delete"} 2`,
		"trikcore_engine_ops_deduped_total 1",
		"trikcore_engine_apply_batch_seconds_count 1",
		`trikcore_engine_op_seconds_count{op="insert"} 1`,
		`trikcore_engine_op_seconds_count{op="delete"} 1`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Structural gauges track the live substrate.
	if want := en.NumEdges(); !strings.Contains(expo, "trikcore_engine_live_edges "+strconv.Itoa(want)) {
		t.Errorf("live_edges gauge != %d in:\n%s", want, expo)
	}
	if want := en.NumVertices(); !strings.Contains(expo, "trikcore_engine_live_vertices "+strconv.Itoa(want)) {
		t.Errorf("live_vertices gauge != %d", want)
	}
	if !strings.Contains(expo, "trikcore_engine_substrate_bytes ") {
		t.Error("substrate_bytes gauge missing")
	}

	// Work counters must mirror the engine's own Stats.
	st := en.Stats()
	if st.Promotions > 0 && !strings.Contains(expo, "trikcore_engine_kappa_promotions_total "+strconv.Itoa(st.Promotions)) {
		t.Errorf("promotions counter != Stats.Promotions = %d", st.Promotions)
	}
	if !strings.Contains(expo, "trikcore_engine_triangles_processed_total "+strconv.Itoa(st.TrianglesProcessed)) {
		t.Errorf("triangles counter != Stats.TrianglesProcessed = %d", st.TrianglesProcessed)
	}
}

func TestInstrumentNopRegistry(t *testing.T) {
	en := NewEngine(k4())
	en.Instrument(obs.Nop())
	if en.mt != nil {
		t.Fatal("Nop registry must leave the engine uninstrumented")
	}
	en.InsertEdge(1, 5)
	en.ApplyBatch([]EdgeOp{{U: 2, V: 5}})
}

func TestNewEngineFromDecompositionMatchesNewEngine(t *testing.T) {
	reg := obs.NewRegistry()
	phases := obs.NewPhaseTimer(reg, "trikcore_core_phase_seconds",
		"Wall time per decomposition phase.", core.PhaseFreeze, core.PhaseSupport, core.PhasePeel)
	a := NewEngineFromDecomposition(core.DecomposeWith(k4(), core.Options{Phases: phases}))
	b := NewEngine(k4())
	ka, kb := a.EdgeKappas(), b.EdgeKappas()
	if len(ka) != len(kb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ka), len(kb))
	}
	for e, k := range ka {
		if kb[e] != k {
			t.Fatalf("κ(%v) = %d vs %d", e, k, kb[e])
		}
	}
	// The handed-over decomposition's phases were all observed.
	expo := string(reg.Gather())
	for _, phase := range []string{core.PhaseFreeze, core.PhaseSupport, core.PhasePeel} {
		want := `trikcore_core_phase_seconds_count{phase="` + phase + `"} 1`
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The adopted engine must stay fully mutable.
	a.InsertEdge(1, 5)
	a.DeleteEdge(1, 2)
}
