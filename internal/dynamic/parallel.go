package dynamic

import (
	"sync"
	"sync/atomic"
	"time"

	"trikcore/internal/obs"
)

// ApplyBatchParallel applies a batch of edge operations with κ
// maintenance fanned out over workers goroutines, returning how many
// edges were actually inserted and deleted. It is equivalent to
// ApplyBatch — same final graph, same final κ assignment, same version
// semantics, net-effect transitions through the same funnel — for every
// batch and any worker count; only the internal work accounting (Stats)
// may differ, since regions traverse against a frozen base rather than
// each other's intermediate states.
//
// The epoch protocol (DESIGN.md §"Epoch-coordinated parallel
// maintenance"):
//
//  1. resolve (serial): canonicalize the batch, drop no-ops, add every
//     surviving insertion to the substrate marked pending — the structure
//     is now G_max and frozen for the epoch, with pending edges masked so
//     the active graph equals the pre-batch graph;
//  2. partition (serial): group ops into regions by triangle-ball overlap
//     (partition.go);
//  3. execute (parallel): workers claim regions off a shared cursor and
//     run the ordinary insert/delete traversals against worker-local
//     staged contexts — the substrate and every κ are read-only, all
//     writes land in per-worker overlays, and every κ/liveness read is
//     recorded;
//  4. merge (serial, at the epoch barrier): regions are validated in
//     ascending region order — a region whose read set intersects an
//     earlier-merged region's write set is demoted to the conflict
//     suffix, everything else lands its staged transitions through the
//     κ-transition funnel; then the suffix re-executes serially against
//     the merged state and lands last;
//  5. cleanup (serial): deleted edges leave the substrate, the version
//     advances once if anything changed.
//
// Because partitioning, region execution, validation order and merge
// order are all independent of scheduling, the final engine state is
// byte-identical across worker counts. workers <= 1 delegates to the
// serial ApplyBatch — the region machinery has nothing to win
// single-threaded.
func (en *Engine) ApplyBatchParallel(ops []EdgeOp, workers int) (added, removed int) {
	if workers <= 1 || len(ops) == 0 {
		return en.ApplyBatch(ops)
	}
	var sp, stage obs.Span
	var stages *obs.PhaseTimer
	var before Stats
	if en.mt != nil {
		sp = obs.StartSpan(en.mt.applyParallelSeconds)
		stages = en.mt.parStages
		before = en.stats
	}
	p := &en.par

	// Flight-recorder spans mirror the stage timers; all coordinator-side
	// (workers never touch en.tr), and no-ops when no trace is attached.
	tsp := en.tr.StartSpan("engine.apply_parallel", "engine")

	// Resolve: canonicalize, drop no-ops, pre-insert and mask the
	// insertions. After this the structure is G_max and frozen until
	// cleanup; the pending marks keep the active graph at the pre-batch
	// edge set, for which the maintained κ is a consistent assignment.
	stage = stages.Start(StageResolve)
	ts := en.tr.StartSpan("engine."+StageResolve, "engine")
	buf := canonicalizeOps(ops, en.ser.sc.ops)
	en.ser.sc.ops = buf
	en.pendGen++
	if en.pendGen == 0 {
		// Generation wrapped: wipe stale marks so they cannot collide.
		for i := range en.pendMark {
			en.pendMark[i] = 0
		}
		en.pendGen = 1
	}
	resolved := p.resolved[:0]
	for _, op := range buf {
		if op.Del {
			eid := en.d.EdgeIDV(op.U, op.V)
			if eid < 0 {
				continue
			}
			resolved = append(resolved, resolvedOp{eid: eid, del: true})
			removed++
		} else {
			eid, ok := en.d.AddEdgeV(op.U, op.V)
			if !ok {
				continue
			}
			resolved = append(resolved, resolvedOp{eid: eid})
			added++
		}
	}
	p.resolved = resolved
	en.ensureEdgeCap()
	en.ensureVertexCap()
	for _, r := range resolved {
		if !r.del {
			en.pendMark[r.eid] = en.pendGen
		}
	}
	ts.End()
	stage.End()
	if len(resolved) == 0 {
		tsp.End()
		if en.mt != nil {
			sp.End()
			en.mt.opsDeduped.Add(uint64(len(ops) - len(buf)))
		}
		en.debugAssert()
		return 0, 0
	}

	stage = stages.Start(StagePartition)
	ts = en.tr.StartSpan("engine."+StagePartition, "engine")
	nRegions := p.partition(en, resolved)
	ts.End()
	stage.End()

	// Execute: nw workers drain the region list through a shared atomic
	// cursor. Claiming order is scheduling-dependent; nothing else is —
	// each region's result is a pure function of the frozen base.
	stage = stages.Start(StageExecute)
	ts = en.tr.StartSpan("engine."+StageExecute, "engine")
	nw := workers
	if nw > nRegions {
		nw = nRegions
	}
	for len(p.ctxs) < nw {
		c := &applyCtx{staged: true}
		c.init(en)
		c.en = en
		p.ctxs = append(p.ctxs, c)
	}
	for len(p.busy) < nw {
		p.busy = append(p.busy, 0)
	}
	ecap := en.d.EdgeCap()
	for _, c := range p.ctxs[:nw] {
		c.growEdges(ecap)
		c.growVertices(en.d.VertexCap())
	}
	timed := en.mt != nil
	var cursor atomic.Int64
	var wg sync.WaitGroup
	var barrier obs.Span
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := p.ctxs[w]
			var t0 time.Time
			if timed {
				t0 = time.Now()
			}
			for {
				i := int(cursor.Add(1)) - 1
				if i >= nRegions {
					break
				}
				c.execRegion(&p.regions[i])
			}
			if timed {
				p.busy[w] = time.Since(t0)
			}
		}(w)
	}
	if en.mt != nil {
		barrier = obs.StartSpan(en.mt.barrierWaitSeconds)
	}
	wg.Wait()
	barrier.End()
	ts.End()
	stage.End()

	// Merge at the barrier: validate ascending, land clean regions through
	// the funnel, re-execute the conflict suffix against the merged state.
	stage = stages.Start(StageMerge)
	ts = en.tr.StartSpan("engine."+StageMerge, "engine")
	p.wGen++
	if p.wGen == 0 {
		for i := range p.wMark {
			p.wMark[i] = 0
		}
		p.wGen = 1
	}
	for len(p.wMark) < ecap {
		p.wMark = append(p.wMark, 0)
	}
	sfx := p.suffix[:0]
	conflicted := 0
	for i := 0; i < nRegions; i++ {
		rg := &p.regions[i]
		clean := true
		for _, e := range rg.reads {
			if p.wMark[e] == p.wGen {
				clean = false
				break
			}
		}
		if !clean {
			// Some earlier-merged region wrote state this region read: its
			// staged result reflects a stale base. Its ops re-run in the
			// suffix, which is the last slot of the serialization order —
			// the one place a re-execution sees every earlier write.
			sfx = append(sfx, rg.ops...)
			conflicted++
			continue
		}
		en.mergeStaged(rg.writes, rg.vals)
		for _, e := range rg.writes {
			p.wMark[e] = p.wGen
		}
		en.stats.accumulate(rg.stats)
	}
	p.suffix = sfx
	if len(sfx) > 0 {
		rg := &p.sfxRegion
		rg.ops = append(rg.ops[:0], sfx...)
		rg.reads = rg.reads[:0]
		rg.writes = rg.writes[:0]
		rg.vals = rg.vals[:0]
		rg.stats = Stats{}
		p.ctxs[0].execRegion(rg)
		en.mergeStaged(rg.writes, rg.vals)
		en.stats.accumulate(rg.stats)
	}
	ts.End()
	stage.End()

	// Cleanup: deletions leave the substrate (their removal transitions
	// already fired at merge, while the edges were still live), and one
	// version step covers the whole effective batch. Every pending mark
	// was cleared by the merges, so no mask survives the epoch.
	for _, r := range resolved {
		if r.del {
			en.d.RemoveEdgeByID(r.eid)
		}
	}
	if added+removed > 0 {
		en.bumpVersion()
	}
	tsp.End()
	if en.mt != nil {
		sp.End()
		en.mt.insertsApplied.Add(uint64(added))
		en.mt.deletesApplied.Add(uint64(removed))
		en.mt.opsDeduped.Add(uint64(len(ops) - len(buf)))
		en.mt.regionsPerBatch.Observe(float64(nRegions))
		for i := 0; i < nRegions; i++ {
			en.mt.regionSize.Observe(float64(len(p.regions[i].ops)))
		}
		en.mt.regionConflicts.Add(uint64(conflicted))
		for _, d := range p.busy[:nw] {
			en.mt.workerBusySeconds.Observe(d.Seconds())
		}
		en.mt.recordDelta(en, before)
		en.mt.substrateBytes.Set(en.d.SizeBytes())
	}
	en.debugAssert()
	return added, removed
}

// region is one unit of parallel work: a group of resolved ops plus the
// result of executing them against the frozen base — the recorded read
// set, the staged writes in first-touch order with their final values,
// and the work counters.
type region struct {
	ops                 []resolvedOp
	reads, writes, vals []int32
	stats               Stats
}

// parScratch is the engine-owned workspace of ApplyBatchParallel, reused
// across epochs: the resolved op list, the ball-stamping and union-find
// state of partitioning, the region records, the per-worker staged
// contexts, and the merge-time written-edge marks.
type parScratch struct {
	resolved  []resolvedOp
	ufParent  []int32
	regionID  []int32
	ballMark  []uint32
	ballOp    []int32
	ballGen   uint32
	regions   []region
	ctxs      []*applyCtx
	busy      []time.Duration
	wMark     []uint32
	wGen      uint32
	suffix    []resolvedOp
	sfxRegion region
}

// execRegion runs one region's ops — deletions, then insertions, each in
// canonical batch order — on a staged context and copies the context's
// read set, write set and staged values into the region record.
func (c *applyCtx) execRegion(rg *region) {
	c.gen++
	if c.gen == 0 {
		// Generation wrapped: wipe stale overlay and read marks.
		for i := range c.sMark {
			c.sMark[i] = 0
			c.rMark[i] = 0
		}
		c.gen = 1
	}
	c.reads = c.reads[:0]
	c.writes = c.writes[:0]
	c.stats = &rg.stats
	for _, op := range rg.ops {
		if op.del {
			c.processEdgeDelete(op.eid, &c.sc.tris)
		}
	}
	for _, op := range rg.ops {
		if !op.del {
			c.processEdgeInsert(op.eid, &c.sc.tris)
		}
	}
	rg.reads = append(rg.reads[:0], c.reads...)
	rg.writes = append(rg.writes[:0], c.writes...)
	rg.vals = rg.vals[:0]
	for _, e := range c.writes {
		rg.vals = append(rg.vals, c.sKappa[e])
	}
}

// mergeStaged lands one region's staged transitions on the engine, in the
// region's first-write order, through the κ-transition funnel. The old
// value of each transition is reconstructed from the engine: -1 for a
// pending insertion of this batch (cleared here — the edge is active from
// now on), the maintained κ otherwise; staged -1 values are completed
// deletions. Transitions that net to no change are skipped, so observers
// see exactly the per-edge net effect of the batch, as with ApplyBatch's
// canonicalization.
func (en *Engine) mergeStaged(writes, vals []int32) {
	for i, e := range writes {
		v := vals[i]
		var old int32
		if en.pendMark[e] == en.pendGen {
			old = -1
			en.pendMark[e] = 0
		} else {
			old = en.kappa[e]
		}
		if old != v {
			en.setKappa(e, old, v)
		}
	}
}

// accumulate folds another Stats into s.
func (s *Stats) accumulate(o Stats) {
	s.Insertions += o.Insertions
	s.Deletions += o.Deletions
	s.TrianglesProcessed += o.TrianglesProcessed
	s.EdgesVisited += o.EdgesVisited
	s.Promotions += o.Promotions
	s.Demotions += o.Demotions
}
