// Package dynamic maintains Triangle K-Core numbers incrementally as edges
// are inserted into and deleted from a graph (the paper's Algorithm 2,
// detailed in its Appendix as Algorithms 5–7).
//
// The engine follows the paper's update discipline exactly: an edge change
// is decomposed into the set of triangles it creates or destroys, and those
// triangles are processed one at a time. For a single triangle change,
// Rule 0 of the paper guarantees that only edges whose κ equals μ — the
// minimum κ among the triangle's three edges — can change, and only by 1.
// Each per-triangle step therefore:
//
//   - insertion: collects the κ=μ edges triangle-connected to the new
//     triangle (the paper's PotentialList), computes each one's effective
//     support toward level μ+1, evicts candidates that fall short
//     (cascading), and promotes the survivors to μ+1;
//   - deletion: rechecks the κ=μ edges of the lost triangle and demotes
//     those whose level-μ support no longer holds, cascading the recheck
//     to κ=μ neighbors through shared triangles.
//
// This is the traversal formulation of the paper's "simulate Algorithm 1
// locally" procedure; it produces identical κ values (property-tested
// against full recomputation) without maintaining the sorted edge list and
// fractional order timestamps of Algorithms 5–7. See DESIGN.md §3.2.
//
// All engine state lives on a graph.Dense substrate: κ, traversal marks
// and the κ-histogram are flat slices indexed by dense edge id, the
// mid-update "off" triangle set is a generation-stamped vertex array, and
// traversal scratch is engine-owned and reused across updates. ApplyBatch
// additionally amortizes the per-edge triangle buffer across a whole batch
// of operations. See DESIGN.md §6.
package dynamic

import (
	"fmt"

	"trikcore/internal/core"
	"trikcore/internal/graph"
	"trikcore/internal/obs"
	"trikcore/internal/obs/trace"
)

// Engine owns a graph and keeps κ(e) correct for every edge across
// arbitrary interleaved insertions and deletions. It is not safe for
// concurrent use.
type Engine struct {
	d *graph.Dense
	// kappa[eid] is κ of live edge eid; entries of free edge slots are
	// stale and never read.
	kappa []int32
	// hist[k] counts live edges with κ=k; maxK is the largest k with
	// hist[k] > 0. Both are maintained through every transition, making
	// MaxKappa and KappaHistogram O(1)/O(maxκ) instead of O(E) scans.
	hist []int
	maxK int32

	// ser is the engine's serial apply context: the traversal scratch,
	// off-set machinery and κ access funnel every single-threaded update
	// runs against. Worker contexts for the parallel batch path are
	// created per epoch in parallel.go and share nothing with it.
	ser applyCtx

	// pendMark stamps edges that are structurally present but logically
	// absent during a parallel epoch: ApplyBatchParallel pre-inserts every
	// batch insertion into the substrate, and pendMark[eid] == pendGen
	// masks those edges from staged traversals until their owning region
	// activates them. Outside an epoch no edge carries the current
	// generation, so serial paths never consult it.
	pendMark []uint32
	pendGen  uint32

	// par is the reusable workspace of ApplyBatchParallel (region
	// partitioning, worker contexts, merge marks); empty until the first
	// parallel epoch.
	par parScratch

	// onKappaChange, when set, observes every κ transition of a dense edge
	// id: promotions and demotions (old≥0, new≥0), new edges (old=-1) and
	// removed edges (new=-1; fired while the edge is still live so
	// observers can read its endpoints). TrackedEngine uses it to maintain
	// explicit core membership.
	onKappaChange func(eid int32, old, new int32)

	// version counts effective graph changes: it moves exactly when a
	// public mutation (or batch of them) actually changed the vertex or
	// edge set, and never on a no-op. Snapshot publishers key immutable
	// views and derived-artifact caches off it.
	version uint64

	stats Stats

	// mt, when non-nil (see Instrument), records public-op durations,
	// Stats deltas and structural gauges. Hooks live only at public-op
	// boundaries so the uninstrumented mutation path is untouched.
	mt *engineMetrics

	// tr, when non-nil (see SetTrace), receives flight-recorder spans for
	// the batch-apply stages — the trace equivalent of mt's phase timers.
	// It rides one batch: the Publisher sets it before running a traced
	// mutation and clears it after, both under its writer mutex.
	tr *trace.Trace
}

// SetTrace attaches (or, with nil, detaches) a flight-recorder trace that
// subsequent batch applies emit stage spans into. Like all engine methods
// it must not race with mutations; the single-writer Publisher satisfies
// that by bracketing each traced mutation under its own mutex.
func (en *Engine) SetTrace(t *trace.Trace) { en.tr = t }

// scratch is the engine-owned traversal workspace, reused across updates.
// Arrays indexed by edge id are sized to the dense edge capacity; st and
// inQueue are reset to zero between steps (via the touched list and queue
// draining respectively), while es and evictedAt hold garbage outside the
// step that wrote them and are only read under a nonzero st mark.
type scratch struct {
	st        []int8  // insertSearch state per edge id (0 = unseen)
	es        []int32 // insertSearch effective support
	evictedAt []int32 // insertSearch eviction stamps
	inQueue   []bool  // deletion recheck queue membership
	touched   []int32 // edge ids with nonzero st, for O(step) reset
	stack     []int32 // insertSearch work stack
	queue     []int32 // deletion recheck queue
	tris      []int32 // (w, e1, e2) triples of the updating edge's triangles
	ops       []EdgeOp
}

// Stats aggregates work counters across all updates, exposing the locality
// the incremental algorithm achieves (the quantity Table III measures as
// time).
type Stats struct {
	// Insertions and Deletions count edge-level updates applied.
	Insertions, Deletions int
	// TrianglesProcessed counts per-triangle update steps.
	TrianglesProcessed int
	// EdgesVisited counts edges touched by candidate collection,
	// support recomputation and cascades.
	EdgesVisited int
	// Promotions and Demotions count κ changes (±1 each).
	Promotions, Demotions int
}

// NewEngine builds an engine over a private dense copy of g, initializing
// κ with the static decomposition (Algorithm 1). The caller's graph is not
// retained.
func NewEngine(g *graph.Graph) *Engine {
	return NewEngineFromDecomposition(core.Decompose(g))
}

// ensureEdgeCap grows all edge-indexed state to the dense edge capacity.
func (en *Engine) ensureEdgeCap() {
	c := en.d.EdgeCap()
	for len(en.kappa) < c {
		en.kappa = append(en.kappa, 0)
	}
	for len(en.pendMark) < c {
		en.pendMark = append(en.pendMark, 0)
	}
	en.ser.growEdges(c)
}

// ensureVertexCap grows vertex-indexed state to the dense vertex capacity.
func (en *Engine) ensureVertexCap() {
	en.ser.growVertices(en.d.VertexCap())
}

// setKappa writes κ(eid) = new and records the transition from old. With
// transition it is the funnel every κ write outside engine construction
// goes through; trikcheck's kappa-funnel rule rejects direct writes to
// kappa, hist or maxK anywhere else.
func (en *Engine) setKappa(eid, old, new int32) {
	en.kappa[eid] = new
	en.transition(eid, old, new)
}

// transition records a κ change of edge eid (old or new may be -1 for
// edge creation/removal), maintaining the histogram, maxK and the change
// observer. It is the single funnel every κ movement goes through.
func (en *Engine) transition(eid, old, new int32) {
	if old >= 0 {
		en.hist[old]--
	}
	if new >= 0 {
		for int32(len(en.hist)) <= new { //trikcheck:checked hist has maxK+1 ≤ int32 buckets
			en.hist = append(en.hist, 0)
		}
		en.hist[new]++
		if new > en.maxK {
			en.maxK = new
		}
	}
	for en.maxK > 0 && en.hist[en.maxK] == 0 {
		en.maxK--
	}
	if en.onKappaChange != nil {
		en.onKappaChange(eid, old, new)
	}
}

// Graph materializes the engine's current graph as a standalone snapshot;
// mutating it does not affect the engine. For membership and size queries
// prefer HasEdge/NumEdges/NumVertices, which read the live substrate; for
// serving read traffic prefer FreezeView, which shares the packed rows'
// layout and carries κ along.
func (en *Engine) Graph() *graph.Graph { return en.d.Materialize() }

// Version returns the engine's monotone change counter. It advances
// exactly when a mutation — a single InsertEdge/DeleteEdge/AddVertex/
// RemoveVertex, or a whole ApplyBatch — effectively changed the graph;
// no-op mutations (re-inserting a present edge, deleting an absent one,
// an empty or self-canceling batch) leave it untouched. Two equal
// versions therefore always name the same graph and κ assignment.
func (en *Engine) Version() uint64 { return en.version }

// bumpVersion records one effective mutation.
func (en *Engine) bumpVersion() { en.version++ }

// FreezeView freezes the engine's current graph into an immutable Static
// CSR view plus the matching κ-by-static-edge-id array, with no
// intermediate Graph and no re-decomposition: Dense.Freeze hands back the
// static→dense edge-id map and κ is projected through it. The result
// shares nothing with the engine; readers may use it concurrently with
// further engine mutation.
func (en *Engine) FreezeView() (*graph.Static, []int32) {
	s, edgeOf := en.d.Freeze()
	kappa := make([]int32, len(edgeOf))
	for i, deid := range edgeOf {
		kappa[i] = en.kappa[deid]
	}
	return s, kappa
}

// HasEdge reports whether the edge {u, v} is present.
func (en *Engine) HasEdge(u, v graph.Vertex) bool { return en.d.HasEdgeV(u, v) }

// HasVertex reports whether v is present.
func (en *Engine) HasVertex(v graph.Vertex) bool { return en.d.HasVertex(v) }

// NumEdges returns the number of live edges.
func (en *Engine) NumEdges() int { return en.d.NumEdges() }

// NumVertices returns the number of live vertices.
func (en *Engine) NumVertices() int { return en.d.NumVertices() }

// Stats returns cumulative work counters.
func (en *Engine) Stats() Stats { return en.stats }

// Kappa returns κ(e) and whether e is an edge of the current graph.
func (en *Engine) Kappa(e graph.Edge) (int32, bool) {
	eid := en.d.EdgeIDV(e.U, e.V)
	if eid < 0 {
		return 0, false
	}
	return en.kappa[eid], true
}

// EdgeKappas returns a copy of the current κ assignment.
func (en *Engine) EdgeKappas() map[graph.Edge]int {
	out := make(map[graph.Edge]int, en.d.NumEdges())
	en.d.ForEachEdgeID(func(eid int32) bool {
		out[en.d.EdgeAt(eid)] = int(en.kappa[eid])
		return true
	})
	return out
}

// MaxKappa returns the largest κ value in the current graph, maintained
// incrementally — O(1).
func (en *Engine) MaxKappa() int32 { return en.maxK }

// AddVertex inserts an isolated vertex.
func (en *Engine) AddVertex(v graph.Vertex) bool {
	_, added := en.d.Intern(v)
	en.ensureVertexCap()
	if added {
		en.bumpVersion()
	}
	en.debugAssert()
	return added
}

// RemoveVertex deletes v and all incident edges, maintaining κ through
// each edge deletion. It reports whether v was present.
func (en *Engine) RemoveVertex(v graph.Vertex) bool {
	dv, ok := en.d.DenseOf(v)
	if !ok {
		return false
	}
	var nbrs []graph.Vertex
	en.d.ForEachNeighborD(dv, func(w, _ int32) bool {
		nbrs = append(nbrs, en.d.OrigOf(w))
		return true
	})
	for _, w := range nbrs {
		en.DeleteEdge(v, w)
	}
	ok = en.d.RemoveVertexV(v)
	if ok {
		en.bumpVersion()
	}
	en.debugAssert()
	return ok
}

// InsertEdge adds the edge {u, v}, creating endpoints as needed, and
// updates κ for every affected edge. It reports whether the edge was new.
func (en *Engine) InsertEdge(u, v graph.Vertex) bool {
	var sp obs.Span
	var before Stats
	if en.mt != nil {
		sp = obs.StartSpan(en.mt.insertSeconds)
		before = en.stats
	}
	var tris []int32
	added := en.insertEdgeCanon(u, v, &tris)
	if added {
		en.bumpVersion()
	}
	if en.mt != nil {
		sp.End()
		en.mt.recordOp(en, before, added, false)
	}
	en.debugAssert()
	return added
}

// DeleteEdge removes the edge {u, v} and updates κ for every affected
// edge. Endpoints are kept. It reports whether the edge existed.
func (en *Engine) DeleteEdge(u, v graph.Vertex) bool {
	var sp obs.Span
	var before Stats
	if en.mt != nil {
		sp = obs.StartSpan(en.mt.deleteSeconds)
		before = en.stats
	}
	var tris []int32
	removed := en.deleteEdgeCanon(u, v, &tris)
	if removed {
		en.bumpVersion()
	}
	if en.mt != nil {
		sp.End()
		en.mt.recordOp(en, before, removed, true)
	}
	en.debugAssert()
	return removed
}

// insertEdgeCanon is InsertEdge with a caller-supplied triangle buffer, so
// batch application can amortize it across many operations.
func (en *Engine) insertEdgeCanon(u, v graph.Vertex, tris *[]int32) bool {
	if u == v {
		panic(fmt.Sprintf("dynamic: self-loop on vertex %d", u))
	}
	eid, added := en.d.AddEdgeV(u, v)
	if !added {
		return false
	}
	en.ensureEdgeCap()
	en.ensureVertexCap()
	en.ser.processEdgeInsert(eid, tris)
	return true
}

// deleteEdgeCanon is DeleteEdge with a caller-supplied triangle buffer.
func (en *Engine) deleteEdgeCanon(u, v graph.Vertex, tris *[]int32) bool {
	eid := en.d.EdgeIDV(u, v)
	if eid < 0 {
		return false
	}
	en.ser.processEdgeDelete(eid, tris)
	en.d.RemoveEdgeByID(eid)
	return true
}

// forEachActiveTriangleOn iterates the active triangles containing edge
// eid, passing the third dense vertex and the other two dense edge ids.
// Query paths between updates use it; the serial context's off epoch is
// closed then, so every combinatorial triangle is active.
func (en *Engine) forEachActiveTriangleOn(eid int32, fn func(w, e1, e2 int32) bool) {
	en.ser.forEachActiveTriangleOn(eid, fn)
}

// InsertEdgeE and DeleteEdgeE are the Edge-value forms.
func (en *Engine) InsertEdgeE(e graph.Edge) bool { return en.InsertEdge(e.U, e.V) }

// DeleteEdgeE removes a canonical edge; see DeleteEdge.
func (en *Engine) DeleteEdgeE(e graph.Edge) bool { return en.DeleteEdge(e.U, e.V) }

// ApplyDiff applies a snapshot diff: removed edges, removed vertices,
// added vertices, then added edges, maintaining κ throughout. The edge
// portions go through ApplyBatch.
func (en *Engine) ApplyDiff(df graph.Diff) {
	ops := make([]EdgeOp, 0, len(df.RemovedEdges))
	for _, e := range df.RemovedEdges {
		ops = append(ops, EdgeOp{U: e.U, V: e.V, Del: true})
	}
	en.ApplyBatch(ops)
	for _, v := range df.RemovedVertices {
		en.RemoveVertex(v)
	}
	for _, v := range df.AddedVertices {
		en.AddVertex(v)
	}
	ops = ops[:0]
	for _, e := range df.AddedEdges {
		ops = append(ops, EdgeOp{U: e.U, V: e.V})
	}
	en.ApplyBatch(ops)
}
