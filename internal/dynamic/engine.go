// Package dynamic maintains Triangle K-Core numbers incrementally as edges
// are inserted into and deleted from a graph (the paper's Algorithm 2,
// detailed in its Appendix as Algorithms 5–7).
//
// The engine follows the paper's update discipline exactly: an edge change
// is decomposed into the set of triangles it creates or destroys, and those
// triangles are processed one at a time. For a single triangle change,
// Rule 0 of the paper guarantees that only edges whose κ equals μ — the
// minimum κ among the triangle's three edges — can change, and only by 1.
// Each per-triangle step therefore:
//
//   - insertion: collects the κ=μ edges triangle-connected to the new
//     triangle (the paper's PotentialList), computes each one's effective
//     support toward level μ+1, evicts candidates that fall short
//     (cascading), and promotes the survivors to μ+1;
//   - deletion: rechecks the κ=μ edges of the lost triangle and demotes
//     those whose level-μ support no longer holds, cascading the recheck
//     to κ=μ neighbors through shared triangles.
//
// This is the traversal formulation of the paper's "simulate Algorithm 1
// locally" procedure; it produces identical κ values (property-tested
// against full recomputation) without maintaining the sorted edge list and
// fractional order timestamps of Algorithms 5–7. See DESIGN.md §3.2.
package dynamic

import (
	"fmt"

	"trikcore/internal/core"
	"trikcore/internal/graph"
)

// Engine owns a graph and keeps κ(e) correct for every edge across
// arbitrary interleaved insertions and deletions. It is not safe for
// concurrent use.
type Engine struct {
	g     *graph.Graph
	kappa map[graph.Edge]int32
	// off marks triangles that exist combinatorially in g but are
	// excluded from the active set during a multi-triangle update: not
	// yet activated (mid-insertion) or already deactivated (mid-deletion).
	off map[graph.Triangle]bool

	// onKappaChange, when set, observes every κ transition: promotions
	// and demotions (old≥0, new≥0), new edges (old=-1) and removed edges
	// (new=-1). TrackedEngine uses it to maintain explicit core
	// membership.
	onKappaChange func(e graph.Edge, old, new int32)

	stats Stats
}

// notifyKappa invokes the change observer if installed.
func (en *Engine) notifyKappa(e graph.Edge, old, new int32) {
	if en.onKappaChange != nil {
		en.onKappaChange(e, old, new)
	}
}

// Stats aggregates work counters across all updates, exposing the locality
// the incremental algorithm achieves (the quantity Table III measures as
// time).
type Stats struct {
	// Insertions and Deletions count edge-level updates applied.
	Insertions, Deletions int
	// TrianglesProcessed counts per-triangle update steps.
	TrianglesProcessed int
	// EdgesVisited counts edges touched by candidate collection,
	// support recomputation and cascades.
	EdgesVisited int
	// Promotions and Demotions count κ changes (±1 each).
	Promotions, Demotions int
}

// NewEngine builds an engine over a copy of g, initializing κ with the
// static decomposition (Algorithm 1). The caller's graph is not retained.
func NewEngine(g *graph.Graph) *Engine {
	en := &Engine{
		g:     g.Clone(),
		kappa: make(map[graph.Edge]int32, g.NumEdges()),
		off:   make(map[graph.Triangle]bool),
	}
	d := core.Decompose(en.g)
	for i, k := range d.Kappa {
		en.kappa[d.S.EdgeAt(int32(i))] = k
	}
	return en
}

// Graph returns the engine's current graph. Callers must not mutate it;
// use InsertEdge/DeleteEdge so κ stays consistent.
func (en *Engine) Graph() *graph.Graph { return en.g }

// Stats returns cumulative work counters.
func (en *Engine) Stats() Stats { return en.stats }

// Kappa returns κ(e) and whether e is an edge of the current graph.
func (en *Engine) Kappa(e graph.Edge) (int32, bool) {
	k, ok := en.kappa[e]
	return k, ok
}

// EdgeKappas returns a copy of the current κ assignment.
func (en *Engine) EdgeKappas() map[graph.Edge]int {
	out := make(map[graph.Edge]int, len(en.kappa))
	for e, k := range en.kappa {
		out[e] = int(k)
	}
	return out
}

// MaxKappa returns the largest κ value in the current graph.
func (en *Engine) MaxKappa() int32 {
	var max int32
	for _, k := range en.kappa {
		if k > max {
			max = k
		}
	}
	return max
}

// AddVertex inserts an isolated vertex.
func (en *Engine) AddVertex(v graph.Vertex) bool { return en.g.AddVertex(v) }

// RemoveVertex deletes v and all incident edges, maintaining κ through
// each edge deletion. It reports whether v was present.
func (en *Engine) RemoveVertex(v graph.Vertex) bool {
	if !en.g.HasVertex(v) {
		return false
	}
	for _, w := range en.g.NeighborsSorted(v) {
		en.DeleteEdge(v, w)
	}
	return en.g.RemoveVertex(v)
}

// InsertEdge adds the edge {u, v}, creating endpoints as needed, and
// updates κ for every affected edge. It reports whether the edge was new.
func (en *Engine) InsertEdge(u, v graph.Vertex) bool {
	if u == v {
		panic(fmt.Sprintf("dynamic: self-loop on vertex %d", u))
	}
	e := graph.NewEdge(u, v)
	if en.g.HasEdgeE(e) {
		return false
	}
	en.g.AddEdgeE(e)
	en.kappa[e] = 0
	en.notifyKappa(e, -1, 0)
	en.stats.Insertions++

	// The new edge forms one triangle per common neighbor. Activate them
	// one at a time (Algorithm 2 step 1 / Algorithm 5 outer loop): all
	// start excluded, then each is switched on and processed.
	tris := en.trianglesOn(e)
	for _, t := range tris {
		en.off[t] = true
	}
	for _, t := range tris {
		delete(en.off, t)
		en.processTriangleInsert(t)
	}
	return true
}

// DeleteEdge removes the edge {u, v} and updates κ for every affected
// edge. Endpoints are kept. It reports whether the edge existed.
func (en *Engine) DeleteEdge(u, v graph.Vertex) bool {
	e := graph.NewEdge(u, v)
	if !en.g.HasEdgeE(e) {
		return false
	}
	en.stats.Deletions++
	tris := en.trianglesOn(e)
	for _, t := range tris {
		en.off[t] = true
		en.processTriangleDelete(t)
	}
	if k := en.kappa[e]; k != 0 {
		// Every triangle on e has been deactivated, so a correct update
		// must have driven κ(e) to zero.
		panic(fmt.Sprintf("dynamic: κ(%v)=%d after deactivating all its triangles", e, k))
	}
	en.g.RemoveEdgeE(e)
	delete(en.kappa, e)
	en.notifyKappa(e, 0, -1)
	for _, t := range tris {
		delete(en.off, t)
	}
	return true
}

// InsertEdgeE and DeleteEdgeE are the Edge-value forms.
func (en *Engine) InsertEdgeE(e graph.Edge) bool { return en.InsertEdge(e.U, e.V) }

// DeleteEdgeE removes a canonical edge; see DeleteEdge.
func (en *Engine) DeleteEdgeE(e graph.Edge) bool { return en.DeleteEdge(e.U, e.V) }

// ApplyDiff applies a snapshot diff: removed edges, removed vertices,
// added vertices, then added edges, maintaining κ throughout.
func (en *Engine) ApplyDiff(d graph.Diff) {
	for _, e := range d.RemovedEdges {
		en.DeleteEdgeE(e)
	}
	for _, v := range d.RemovedVertices {
		en.RemoveVertex(v)
	}
	for _, v := range d.AddedVertices {
		en.AddVertex(v)
	}
	for _, e := range d.AddedEdges {
		en.InsertEdgeE(e)
	}
}

// trianglesOn returns the triangles of the current graph containing e, in
// deterministic (ascending third-vertex) order.
func (en *Engine) trianglesOn(e graph.Edge) []graph.Triangle {
	var out []graph.Triangle
	for _, w := range en.g.CommonNeighbors(e.U, e.V) {
		out = append(out, graph.NewTriangle(e.U, e.V, w))
	}
	return out
}

// active reports whether triangle t is in the active triangle set.
func (en *Engine) active(t graph.Triangle) bool { return !en.off[t] }

// forEachActiveTriangleOn iterates the active triangles containing e,
// passing the other two edges of each.
func (en *Engine) forEachActiveTriangleOn(e graph.Edge, fn func(t graph.Triangle, e1, e2 graph.Edge) bool) {
	en.g.ForEachTriangleEdge(e.U, e.V, func(w graph.Vertex, e1, e2 graph.Edge) bool {
		t := graph.NewTriangle(e.U, e.V, w)
		if !en.active(t) {
			return true
		}
		return fn(t, e1, e2)
	})
}
