package dynamic

import (
	"fmt"
	"sort"

	"trikcore/internal/graph"
	"trikcore/internal/obs"
)

// EdgeOp is one edge-level operation of a batched update: insert {U, V}
// (Del false) or delete it (Del true). Endpoint order does not matter.
type EdgeOp struct {
	U, V graph.Vertex
	Del  bool
}

// canonicalizeOps normalizes a batch into net-effect form, reusing buf's
// capacity: endpoints are swapped into canonical order, ops are
// stable-sorted by edge (so each group preserves batch order and its last
// element is the op that wins), and each edge keeps only that winning op.
// It panics on self-loops. Both ApplyBatch and ApplyBatchParallel start
// here, which is what makes their results comparable op-for-op.
func canonicalizeOps(ops []EdgeOp, buf []EdgeOp) []EdgeOp {
	if cap(buf) < len(ops) {
		buf = make([]EdgeOp, 0, len(ops))
	}
	buf = buf[:0]
	for _, op := range ops {
		if op.U == op.V {
			panic(fmt.Sprintf("dynamic: self-loop on vertex %d", op.U))
		}
		if op.U > op.V {
			op.U, op.V = op.V, op.U
		}
		buf = append(buf, op)
	}
	sort.SliceStable(buf, func(i, j int) bool {
		if buf[i].U != buf[j].U {
			return buf[i].U < buf[j].U
		}
		return buf[i].V < buf[j].V
	})
	w := 0
	for i := 0; i < len(buf); i++ {
		if i+1 < len(buf) && buf[i+1].U == buf[i].U && buf[i+1].V == buf[i].V {
			continue
		}
		buf[w] = buf[i]
		w++
	}
	return buf[:w]
}

// ApplyBatch applies a batch of edge operations as one update, returning
// how many edges were actually inserted and deleted.
//
// The batch is applied by net effect: operations are canonicalized and
// sorted by edge, conflicting operations on the same edge collapse to the
// last one in batch order, and the surviving deletions run before the
// surviving insertions. Because toggling an edge is idempotent against its
// final state, the resulting graph — and therefore every maintained κ —
// is identical to applying the operations one at a time in order; only
// the work of intermediate toggles is skipped. Counts reflect the edges
// whose presence actually changed, so a batch that inserts and then
// deletes an absent edge reports neither.
//
// Beyond dedup, batching amortizes the engine's traversal and triangle
// scratch buffers across the whole batch instead of touching fresh
// per-operation buffers, which is where its allocation advantage over
// per-edge InsertEdge/DeleteEdge calls comes from. It panics on self-loop
// operations, like InsertEdge.
func (en *Engine) ApplyBatch(ops []EdgeOp) (added, removed int) {
	if len(ops) == 0 {
		return 0, 0
	}
	var sp, stage obs.Span
	var stages *obs.PhaseTimer
	var before Stats
	if en.mt != nil {
		sp = obs.StartSpan(en.mt.applyBatchSeconds)
		stages = en.mt.stages
		before = en.stats
	}
	// Flight-recorder spans mirror the stage timers one-for-one; en.tr is
	// nil outside a traced publisher mutation, making every call a no-op.
	tsp := en.tr.StartSpan("engine.apply_batch", "engine")
	stage = stages.Start(StageCanonicalize)
	ts := en.tr.StartSpan("engine."+StageCanonicalize, "engine")
	buf := canonicalizeOps(ops, en.ser.sc.ops)
	en.ser.sc.ops = buf
	ts.End()
	stage.End()

	stage = stages.Start(StageDelete)
	ts = en.tr.StartSpan("engine."+StageDelete, "engine")
	for _, op := range buf {
		if op.Del {
			if en.deleteEdgeCanon(op.U, op.V, &en.ser.sc.tris) {
				removed++
			}
		}
	}
	ts.End()
	stage.End()
	stage = stages.Start(StageInsert)
	ts = en.tr.StartSpan("engine."+StageInsert, "engine")
	for _, op := range buf {
		if !op.Del {
			if en.insertEdgeCanon(op.U, op.V, &en.ser.sc.tris) {
				added++
			}
		}
	}
	ts.End()
	stage.End()
	tsp.End()
	// One version step per effective batch: a batch whose ops all cancel
	// or no-op leaves the version (and thus published snapshots) alone.
	if added+removed > 0 {
		en.bumpVersion()
	}
	if en.mt != nil {
		sp.End()
		en.mt.insertsApplied.Add(uint64(added))
		en.mt.deletesApplied.Add(uint64(removed))
		en.mt.opsDeduped.Add(uint64(len(ops) - len(buf)))
		en.mt.recordDelta(en, before)
		en.mt.substrateBytes.Set(en.d.SizeBytes())
	}
	en.debugAssert()
	return added, removed
}
