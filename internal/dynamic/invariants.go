package dynamic

import "fmt"

// CheckInvariants verifies the engine's internal consistency without
// re-running the decomposition: the substrate's structural invariants,
// the sizing of every edge-indexed state array, the agreement of the
// maintained histogram and max κ with the live κ values, and the
// cleanliness of the traversal scratch between public updates. It returns
// the first violation found, or nil.
//
// It is O(V + E log deg) — cheap enough that, under the trikdebug build
// tag, every public mutating operation asserts it (see debugAssert),
// turning the whole test suite into a consistency oracle. For the far
// more expensive κ-correctness check against a from-scratch
// recomputation, see VerifyConsistency.
func (en *Engine) CheckInvariants() error {
	if err := en.d.CheckInvariants(); err != nil {
		return fmt.Errorf("dynamic: substrate: %w", err)
	}
	c := en.d.EdgeCap()
	if len(en.kappa) < c {
		return fmt.Errorf("dynamic: kappa tracks %d edge slots, substrate has %d", len(en.kappa), c)
	}
	ser := &en.ser
	for _, s := range [][]int32{ser.sc.es, ser.sc.evictedAt} {
		if len(s) < c {
			return fmt.Errorf("dynamic: scratch tracks %d edge slots, substrate has %d", len(s), c)
		}
	}
	if len(ser.sc.st) < c || len(ser.sc.inQueue) < c {
		return fmt.Errorf("dynamic: scratch marks track %d/%d edge slots, substrate has %d",
			len(ser.sc.st), len(ser.sc.inQueue), c)
	}
	if len(en.pendMark) < c {
		return fmt.Errorf("dynamic: pending-insert marks track %d edge slots, substrate has %d",
			len(en.pendMark), c)
	}
	if len(ser.offStamp) < en.d.VertexCap() {
		return fmt.Errorf("dynamic: off stamps track %d vertex slots, substrate has %d",
			len(ser.offStamp), en.d.VertexCap())
	}

	// Between public updates no off epoch is open and no traversal marks
	// linger; a leak here means a later update would silently skip edges.
	if ser.offU != -1 || ser.offV != -1 {
		return fmt.Errorf("dynamic: off epoch still open on dense edge {%d, %d}", ser.offU, ser.offV)
	}
	if len(ser.sc.touched) != 0 {
		return fmt.Errorf("dynamic: %d traversal marks not reset", len(ser.sc.touched))
	}
	for eid, st := range ser.sc.st {
		if st != 0 {
			return fmt.Errorf("dynamic: edge %d left with traversal state %d", eid, st)
		}
	}
	for eid, q := range ser.sc.inQueue {
		if q {
			return fmt.Errorf("dynamic: edge %d left marked in-queue", eid)
		}
	}
	// No live edge may carry the current pending-insert generation outside
	// an epoch (ApplyBatchParallel retires the generation before returning).
	var pend error
	en.d.ForEachEdgeID(func(eid int32) bool {
		if en.pendMark[eid] == en.pendGen && en.pendGen != 0 {
			pend = fmt.Errorf("dynamic: edge %d still marked pending-insert outside an epoch", eid)
			return false
		}
		return true
	})
	if pend != nil {
		return pend
	}

	// Histogram and max κ must agree exactly with the live κ values.
	counts := make([]int, len(en.hist))
	live := 0
	var bad error
	en.d.ForEachEdgeID(func(eid int32) bool {
		k := en.kappa[eid]
		if k < 0 || int(k) >= len(en.hist) {
			bad = fmt.Errorf("dynamic: κ(%v) = %d outside histogram of length %d",
				en.d.EdgeAt(eid), k, len(en.hist))
			return false
		}
		counts[k]++
		live++
		return true
	})
	if bad != nil {
		return bad
	}
	if live != en.d.NumEdges() {
		return fmt.Errorf("dynamic: iterated %d live edges, substrate reports %d", live, en.d.NumEdges())
	}
	total := 0
	for k, n := range counts {
		if en.hist[k] != n {
			return fmt.Errorf("dynamic: hist[%d] = %d, live edges say %d", k, en.hist[k], n)
		}
		total += n
	}
	if total != en.d.NumEdges() {
		return fmt.Errorf("dynamic: histogram sums to %d, %d edges live", total, en.d.NumEdges())
	}
	if int(en.maxK) >= len(en.hist) {
		return fmt.Errorf("dynamic: maxκ = %d outside histogram of length %d", en.maxK, len(en.hist))
	}
	if en.maxK > 0 && en.hist[en.maxK] == 0 {
		return fmt.Errorf("dynamic: hist[maxκ=%d] is empty", en.maxK)
	}
	for k := int(en.maxK) + 1; k < len(en.hist); k++ {
		if en.hist[k] != 0 {
			return fmt.Errorf("dynamic: hist[%d] = %d above maxκ = %d", k, en.hist[k], en.maxK)
		}
	}
	return nil
}

// debugAssert panics on the first invariant violation when the trikdebug
// build tag is set, and compiles to nothing otherwise. Every public
// mutating operation calls it on exit.
func (en *Engine) debugAssert() {
	if !debugChecks {
		return
	}
	if err := en.CheckInvariants(); err != nil {
		panic("trikdebug: " + err.Error())
	}
}
