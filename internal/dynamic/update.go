package dynamic

// processTriangleInsert performs the per-triangle insertion step of
// Algorithm 2: the triangle over edges (e0, e1, e2) has just been
// activated, μ is the minimum κ of its edges, and by Rule 0 exactly the
// κ=μ edges triangle-connected to it may rise to μ+1.
func (c *applyCtx) processTriangleInsert(e0, e1, e2 int32) {
	c.stats.TrianglesProcessed++
	mu := c.kappaOf(e0)
	if k := c.kappaOf(e1); k < mu {
		mu = k
	}
	if k := c.kappaOf(e2); k < mu {
		mu = k
	}

	ins := insertSearch{c: c, mu: mu}
	for _, e := range [3]int32{e0, e1, e2} {
		if c.kappaOf(e) == mu {
			ins.roots[ins.nRoots] = e
			ins.nRoots++
		}
	}
	ins.run()

	// Promote the surviving live candidates and reset the step's marks.
	// touched may hold duplicates (forgotten then re-discovered edges);
	// zeroing st on first visit makes the loop idempotent.
	sc := &c.sc
	for _, e := range sc.touched {
		if sc.st[e] == stLive {
			c.setK(e, mu, mu+1)
			c.stats.Promotions++
		}
		sc.st[e] = 0
	}
	sc.touched = sc.touched[:0]
}

// insertSearch resolves which κ=μ edges rise to μ+1 after one triangle
// activation. It is a demand-driven depth-first traversal: an edge is
// resolved to "live" (its optimistic effective support toward level μ+1
// is at least μ+1) or "evicted" (it provably cannot be promoted), and
// unresolved neighbors are explored only while some live candidate still
// needs them. Evictions decrement the support of resolved live edges and
// cascade. When the stack drains, the live set is self-consistent — each
// live edge has ≥ μ+1 triangles whose other edges are live or carry
// κ > μ — and by the maximality argument of Rule 0 it is exactly the set
// of promoted edges.
//
// The demand-driven skip is what keeps updates local on triangle-dense
// graphs: once the triangle's own edges are evicted, the remaining
// frontier has no live referencer and is dropped without being explored,
// so the traversal never sweeps an entire κ=μ shell just to promote
// nothing.
//
// All per-edge state (st, es, evictedAt) lives in the context's scratch
// arrays indexed by dense edge id; the touched list records every edge
// whose st mark went nonzero so the caller resets exactly the visited
// region. evictedAt stamps the order in which edges were evicted: a
// triangle's contribution to a live candidate must be withdrawn exactly
// once — by the FIRST of its other two edges to be evicted — and when a
// cascade evicts both in one wave, the stamps decide who withdraws.
type insertSearch struct {
	c        *applyCtx
	mu       int32
	roots    [3]int32
	nRoots   int
	evictSeq int32
}

const (
	stQueued  int8 = 1 // discovered, awaiting resolution
	stLive    int8 = 2 // resolved: may be promoted
	stEvicted int8 = 3 // resolved: cannot be promoted
)

func (s *insertSearch) isRoot(e int32) bool {
	for i := 0; i < s.nRoots; i++ {
		if s.roots[i] == e {
			return true
		}
	}
	return false
}

func (s *insertSearch) run() {
	if s.nRoots == 0 {
		return
	}
	sc := &s.c.sc
	sc.stack = sc.stack[:0]
	for i := 0; i < s.nRoots; i++ {
		e := s.roots[i]
		sc.st[e] = stQueued
		sc.touched = append(sc.touched, e)
		sc.stack = append(sc.stack, e)
	}
	for len(sc.stack) > 0 {
		e := sc.stack[len(sc.stack)-1]
		sc.stack = sc.stack[:len(sc.stack)-1]
		if sc.st[e] != stQueued {
			continue
		}
		if !s.isRoot(e) && !s.referencedByLive(e) {
			// No live candidate needs e anymore; forget it. A candidate
			// turning live later re-discovers it.
			sc.st[e] = 0
			continue
		}
		s.resolve(e)
	}
}

// qualifies reports whether edge z can still sit at level ≥ μ+1: it is
// above μ already, or at μ and not (yet) evicted.
func (s *insertSearch) qualifies(z int32) bool {
	k := s.c.kappaOf(z)
	return k > s.mu || (k == s.mu && s.c.sc.st[z] != stEvicted)
}

// referencedByLive reports whether some live candidate counts a triangle
// through e (so e's resolution is still needed).
func (s *insertSearch) referencedByLive(e int32) bool {
	st := s.c.sc.st
	found := false
	s.c.forEachActiveTriangleOn(e, func(_, a, b int32) bool {
		if (st[a] == stLive && s.qualifies(b)) || (st[b] == stLive && s.qualifies(a)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// resolve computes e's optimistic effective support and marks it live or
// evicted, expanding or cascading accordingly.
func (s *insertSearch) resolve(e int32) {
	s.c.stats.EdgesVisited++
	sc := &s.c.sc
	n := int32(0)
	s.c.forEachActiveTriangleOn(e, func(_, a, b int32) bool {
		if s.qualifies(a) && s.qualifies(b) {
			n++
		}
		return true
	})
	sc.es[e] = n
	if n < s.mu+1 {
		s.evict(e)
		s.cascade(e)
		return
	}
	sc.st[e] = stLive
	// Demand the unresolved κ=μ co-edges of e's qualifying triangles.
	s.c.forEachActiveTriangleOn(e, func(_, a, b int32) bool {
		if !s.qualifies(a) || !s.qualifies(b) {
			return true
		}
		for _, ne := range [2]int32{a, b} {
			if s.c.kappaOf(ne) == s.mu && sc.st[ne] == 0 {
				sc.st[ne] = stQueued
				sc.touched = append(sc.touched, ne)
				sc.stack = append(sc.stack, ne)
			}
		}
		return true
	})
}

// evict marks e evicted and stamps its eviction order.
func (s *insertSearch) evict(e int32) {
	s.c.sc.st[e] = stEvicted
	s.evictSeq++
	s.c.sc.evictedAt[e] = s.evictSeq
}

// cascade withdraws e's contribution from resolved live candidates,
// evicting any that fall below μ+1, recursively. For triangle (x, c, z)
// with c live, x's eviction withdraws the triangle unless z was evicted
// strictly earlier — in that case z's cascade already withdrew it (it ran
// while x still qualified). The stamps make this exactly-once even when
// x and z fall in the same cascade wave.
func (s *insertSearch) cascade(e int32) {
	sc := &s.c.sc
	work := [...]int32{e}
	stack := work[:]
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		xAt := sc.evictedAt[x]
		s.c.forEachActiveTriangleOn(x, func(_, a, b int32) bool {
			for _, pair := range [2][2]int32{{a, b}, {b, a}} {
				cand, z := pair[0], pair[1]
				if sc.st[cand] != stLive {
					continue
				}
				if sc.st[z] == stEvicted && sc.evictedAt[z] < xAt {
					continue // z's earlier eviction already withdrew it
				}
				if s.c.kappaOf(z) < s.mu {
					continue // never counted for cand in the first place
				}
				sc.es[cand]--
				if sc.es[cand] < s.mu+1 {
					s.evict(cand)
					stack = append(stack, cand)
				}
			}
			return true
		})
	}
}

// processTriangleDelete performs the per-triangle deletion step of
// Algorithm 2: the triangle over edges (e0, e1, e2) has just been
// deactivated, μ is the minimum κ of its edges, and by Rule 0 exactly κ=μ
// edges may fall to μ-1.
func (c *applyCtx) processTriangleDelete(e0, e1, e2 int32) {
	c.stats.TrianglesProcessed++
	mu := c.kappaOf(e0)
	if k := c.kappaOf(e1); k < mu {
		mu = k
	}
	if k := c.kappaOf(e2); k < mu {
		mu = k
	}
	if mu == 0 {
		// κ=0 edges cannot fall further, and by Rule 0 nothing else moves.
		return
	}

	// Recheck queue, seeded with the triangle's κ=μ edges. An edge keeps
	// κ=μ iff it still has ≥ μ active triangles whose other edges carry
	// κ ≥ μ; otherwise it demotes to μ-1 and its loss cascades to κ=μ
	// edges that shared qualifying triangles with it. The inQueue marks
	// are self-cleaning: every enqueued edge is popped exactly once.
	sc := &c.sc
	queue := sc.queue[:0]
	for _, e := range [3]int32{e0, e1, e2} {
		if c.kappaOf(e) == mu && !sc.inQueue[e] {
			sc.inQueue[e] = true
			queue = append(queue, e)
		}
	}
	for head := 0; head < len(queue); head++ {
		e := queue[head]
		sc.inQueue[e] = false
		if c.kappaOf(e) != mu {
			continue // already demoted by an earlier cascade step
		}
		c.stats.EdgesVisited++
		n := int32(0)
		c.forEachActiveTriangleOn(e, func(_, a, b int32) bool {
			if c.kappaOf(a) >= mu && c.kappaOf(b) >= mu {
				n++
			}
			return true
		})
		if n >= mu {
			continue
		}
		c.setK(e, mu, mu-1)
		c.stats.Demotions++
		// Neighbors at level μ that used a triangle through e must be
		// rechecked; the triangle qualified only if its third edge was
		// also at level ≥ μ.
		c.forEachActiveTriangleOn(e, func(_, a, b int32) bool {
			if c.kappaOf(a) < mu || c.kappaOf(b) < mu {
				return true
			}
			for _, ne := range [2]int32{a, b} {
				if c.kappaOf(ne) == mu && !sc.inQueue[ne] {
					sc.inQueue[ne] = true
					queue = append(queue, ne)
				}
			}
			return true
		})
	}
	sc.queue = queue[:0]
}
