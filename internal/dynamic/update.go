package dynamic

import "trikcore/internal/graph"

// processTriangleInsert performs the per-triangle insertion step of
// Algorithm 2: triangle t has just been activated, μ is the minimum κ of
// its edges, and by Rule 0 exactly the κ=μ edges triangle-connected to t
// may rise to μ+1.
func (en *Engine) processTriangleInsert(t graph.Triangle) {
	en.stats.TrianglesProcessed++
	mu := en.minKappa(t)

	ins := &insertSearch{en: en, mu: mu, st: make(map[graph.Edge]int8)}
	for _, e := range t.Edges() {
		if en.kappa[e] == mu {
			ins.roots = append(ins.roots, e)
		}
	}
	ins.run()
	for e, s := range ins.st {
		if s == stLive {
			en.kappa[e] = mu + 1
			en.notifyKappa(e, mu, mu+1)
			en.stats.Promotions++
		}
	}
}

// insertSearch resolves which κ=μ edges rise to μ+1 after one triangle
// activation. It is a demand-driven depth-first traversal: an edge is
// resolved to "live" (its optimistic effective support toward level μ+1
// is at least μ+1) or "evicted" (it provably cannot be promoted), and
// unresolved neighbors are explored only while some live candidate still
// needs them. Evictions decrement the support of resolved live edges and
// cascade. When the stack drains, the live set is self-consistent — each
// live edge has ≥ μ+1 triangles whose other edges are live or carry
// κ > μ — and by the maximality argument of Rule 0 it is exactly the set
// of promoted edges.
//
// The demand-driven skip is what keeps updates local on triangle-dense
// graphs: once the triangle's own edges are evicted, the remaining
// frontier has no live referencer and is dropped without being explored,
// so the traversal never sweeps an entire κ=μ shell just to promote
// nothing.
type insertSearch struct {
	en    *Engine
	mu    int32
	roots []graph.Edge
	st    map[graph.Edge]int8
	es    map[graph.Edge]int32
	stack []graph.Edge
	// evictedAt stamps the order in which edges were evicted. A triangle's
	// contribution to a live candidate must be withdrawn exactly once —
	// by the FIRST of its other two edges to be evicted — and when a
	// cascade evicts both in one wave, the stamps decide who withdraws.
	evictedAt map[graph.Edge]int32
	evictSeq  int32
}

const (
	stQueued  int8 = 1 // discovered, awaiting resolution
	stLive    int8 = 2 // resolved: may be promoted
	stEvicted int8 = 3 // resolved: cannot be promoted
)

func (s *insertSearch) run() {
	if len(s.roots) == 0 {
		return
	}
	s.es = make(map[graph.Edge]int32)
	s.evictedAt = make(map[graph.Edge]int32)
	isRoot := make(map[graph.Edge]bool, len(s.roots))
	for _, e := range s.roots {
		isRoot[e] = true
		s.st[e] = stQueued
		s.stack = append(s.stack, e)
	}
	for len(s.stack) > 0 {
		e := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		if s.st[e] != stQueued {
			continue
		}
		if !isRoot[e] && !s.referencedByLive(e) {
			// No live candidate needs e anymore; forget it. A candidate
			// turning live later re-discovers it.
			delete(s.st, e)
			continue
		}
		s.resolve(e)
	}
}

// qualifies reports whether edge z can still sit at level ≥ μ+1: it is
// above μ already, or at μ and not (yet) evicted.
func (s *insertSearch) qualifies(z graph.Edge) bool {
	k := s.en.kappa[z]
	return k > s.mu || (k == s.mu && s.st[z] != stEvicted)
}

// referencedByLive reports whether some live candidate counts a triangle
// through e (so e's resolution is still needed).
func (s *insertSearch) referencedByLive(e graph.Edge) bool {
	found := false
	s.en.forEachActiveTriangleOn(e, func(_ graph.Triangle, a, b graph.Edge) bool {
		if (s.st[a] == stLive && s.qualifies(b)) || (s.st[b] == stLive && s.qualifies(a)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// resolve computes e's optimistic effective support and marks it live or
// evicted, expanding or cascading accordingly.
func (s *insertSearch) resolve(e graph.Edge) {
	s.en.stats.EdgesVisited++
	n := int32(0)
	s.en.forEachActiveTriangleOn(e, func(_ graph.Triangle, a, b graph.Edge) bool {
		if s.qualifies(a) && s.qualifies(b) {
			n++
		}
		return true
	})
	s.es[e] = n
	if n < s.mu+1 {
		s.evict(e)
		s.cascade(e)
		return
	}
	s.st[e] = stLive
	// Demand the unresolved κ=μ co-edges of e's qualifying triangles.
	s.en.forEachActiveTriangleOn(e, func(_ graph.Triangle, a, b graph.Edge) bool {
		if !s.qualifies(a) || !s.qualifies(b) {
			return true
		}
		for _, ne := range [2]graph.Edge{a, b} {
			if s.en.kappa[ne] == s.mu {
				if _, seen := s.st[ne]; !seen {
					s.st[ne] = stQueued
					s.stack = append(s.stack, ne)
				}
			}
		}
		return true
	})
}

// evict marks e evicted and stamps its eviction order.
func (s *insertSearch) evict(e graph.Edge) {
	s.st[e] = stEvicted
	s.evictSeq++
	s.evictedAt[e] = s.evictSeq
}

// cascade withdraws e's contribution from resolved live candidates,
// evicting any that fall below μ+1, recursively. For triangle (x, c, z)
// with c live, x's eviction withdraws the triangle unless z was evicted
// strictly earlier — in that case z's cascade already withdrew it (it ran
// while x still qualified). The stamps make this exactly-once even when
// x and z fall in the same cascade wave.
func (s *insertSearch) cascade(e graph.Edge) {
	work := []graph.Edge{e}
	for len(work) > 0 {
		x := work[len(work)-1]
		work = work[:len(work)-1]
		xAt := s.evictedAt[x]
		s.en.forEachActiveTriangleOn(x, func(_ graph.Triangle, a, b graph.Edge) bool {
			for _, pair := range [2][2]graph.Edge{{a, b}, {b, a}} {
				c, z := pair[0], pair[1]
				if s.st[c] != stLive {
					continue
				}
				if zAt, evicted := s.evictedAt[z]; evicted && zAt < xAt {
					continue // z's earlier eviction already withdrew it
				}
				if s.en.kappa[z] < s.mu {
					continue // never counted for c in the first place
				}
				s.es[c]--
				if s.es[c] < s.mu+1 {
					s.evict(c)
					work = append(work, c)
				}
			}
			return true
		})
	}
}

// processTriangleDelete performs the per-triangle deletion step of
// Algorithm 2: triangle t has just been deactivated, μ is the minimum κ of
// its edges, and by Rule 0 exactly κ=μ edges may fall to μ-1.
func (en *Engine) processTriangleDelete(t graph.Triangle) {
	en.stats.TrianglesProcessed++
	mu := en.minKappa(t)
	if mu == 0 {
		// κ=0 edges cannot fall further, and by Rule 0 nothing else moves.
		return
	}

	// Recheck queue, seeded with t's κ=μ edges. An edge keeps κ=μ iff it
	// still has ≥ μ active triangles whose other edges carry κ ≥ μ;
	// otherwise it demotes to μ-1 and its loss cascades to κ=μ edges that
	// shared qualifying triangles with it.
	var queue []graph.Edge
	inQueue := make(map[graph.Edge]bool)
	for _, e := range t.Edges() {
		if en.kappa[e] == mu && !inQueue[e] {
			inQueue[e] = true
			queue = append(queue, e)
		}
	}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		inQueue[e] = false
		if en.kappa[e] != mu {
			continue // already demoted by an earlier cascade step
		}
		en.stats.EdgesVisited++
		n := int32(0)
		en.forEachActiveTriangleOn(e, func(_ graph.Triangle, e1, e2 graph.Edge) bool {
			if en.kappa[e1] >= mu && en.kappa[e2] >= mu {
				n++
			}
			return true
		})
		if n >= mu {
			continue
		}
		en.kappa[e] = mu - 1
		en.notifyKappa(e, mu, mu-1)
		en.stats.Demotions++
		// Neighbors at level μ that used a triangle through e must be
		// rechecked; the triangle qualified only if its third edge was
		// also at level ≥ μ.
		en.forEachActiveTriangleOn(e, func(_ graph.Triangle, e1, e2 graph.Edge) bool {
			if en.kappa[e1] < mu || en.kappa[e2] < mu {
				return true
			}
			for _, ne := range [2]graph.Edge{e1, e2} {
				if en.kappa[ne] == mu && !inQueue[ne] {
					inQueue[ne] = true
					queue = append(queue, ne)
				}
			}
			return true
		})
	}
}

// minKappa returns μ: the minimum κ among t's three edges.
func (en *Engine) minKappa(t graph.Triangle) int32 {
	edges := t.Edges()
	mu := en.kappa[edges[0]]
	for _, e := range edges[1:] {
		if k := en.kappa[e]; k < mu {
			mu = k
		}
	}
	return mu
}
