package dynamic

import (
	"testing"

	"trikcore/internal/graph"
)

// TestEngineVersionSemantics pins the Version contract: the counter moves
// exactly when a mutation effectively changes the graph, once per public
// call (or per batch), and never on a no-op.
func TestEngineVersionSemantics(t *testing.T) {
	en := NewEngine(graph.FromPairs(1, 2, 2, 3, 3, 1))
	v0 := en.Version()

	if en.InsertEdge(1, 2) {
		t.Fatal("re-inserting a present edge reported added")
	}
	if en.Version() != v0 {
		t.Fatal("no-op insert bumped version")
	}
	if en.DeleteEdge(9, 10) {
		t.Fatal("deleting an absent edge reported removed")
	}
	if en.Version() != v0 {
		t.Fatal("no-op delete bumped version")
	}

	if !en.InsertEdge(1, 4) {
		t.Fatal("insert of a new edge reported no-op")
	}
	if en.Version() != v0+1 {
		t.Fatalf("effective insert: version %d, want %d", en.Version(), v0+1)
	}
	if !en.DeleteEdge(1, 4) {
		t.Fatal("delete of a present edge reported no-op")
	}
	if en.Version() != v0+2 {
		t.Fatalf("effective delete: version %d, want %d", en.Version(), v0+2)
	}
	v := en.Version()

	// A self-canceling batch changes nothing and must not bump.
	if a, r := en.ApplyBatch([]EdgeOp{{U: 7, V: 8}, {U: 7, V: 8, Del: true}}); a != 0 || r != 0 {
		t.Fatalf("self-canceling batch reported %d/%d", a, r)
	}
	if en.Version() != v {
		t.Fatal("self-canceling batch bumped version")
	}
	if en.ApplyBatch(nil); en.Version() != v {
		t.Fatal("empty batch bumped version")
	}
	// An effective batch bumps exactly once however many ops it carries.
	if a, r := en.ApplyBatch([]EdgeOp{{U: 1, V: 4}, {U: 2, V: 4}, {U: 3, V: 1, Del: true}}); a != 2 || r != 1 {
		t.Fatalf("batch reported %d/%d, want 2/1", a, r)
	}
	if en.Version() != v+1 {
		t.Fatalf("effective batch: version %d, want %d", en.Version(), v+1)
	}
	v = en.Version()

	if !en.AddVertex(100) || en.Version() != v+1 {
		t.Fatal("adding a new vertex must bump once")
	}
	if en.AddVertex(100) || en.Version() != v+1 {
		t.Fatal("re-adding a vertex must not bump")
	}
	if !en.RemoveVertex(100) || en.Version() != v+2 {
		t.Fatal("removing a present vertex must bump")
	}
	if en.RemoveVertex(100) || en.Version() != v+2 {
		t.Fatal("removing an absent vertex must not bump")
	}
}

// TestFreezeViewProjectsKappa checks FreezeView after churn: the static
// view holds exactly the live edges and the returned κ array, indexed by
// static edge id, matches the engine's per-edge κ.
func TestFreezeViewProjectsKappa(t *testing.T) {
	en := NewEngine(graph.FromPairs(1, 2, 2, 3, 3, 1, 3, 4))
	// Churn enough to punch holes in the dense free lists: grow a clique,
	// then tear part of it down.
	for u := graph.Vertex(1); u <= 6; u++ {
		for v := u + 1; v <= 6; v++ {
			en.InsertEdge(u, v)
		}
	}
	en.DeleteEdge(2, 5)
	en.DeleteEdge(3, 6)
	en.RemoveVertex(4)

	s, kappa := en.FreezeView()
	if s.NumEdges() != en.NumEdges() || s.NumVertices() != en.NumVertices() {
		t.Fatalf("view size %d/%d, engine %d/%d",
			s.NumVertices(), s.NumEdges(), en.NumVertices(), en.NumEdges())
	}
	if len(kappa) != s.NumEdges() {
		t.Fatalf("len(kappa) = %d, want %d", len(kappa), s.NumEdges())
	}
	for i := 0; i < s.NumEdges(); i++ {
		e := s.EdgeAt(int32(i))
		want, ok := en.Kappa(e)
		if !ok {
			t.Fatalf("frozen edge %v not live in engine", e)
		}
		if kappa[i] != want {
			t.Fatalf("kappa[%d] (%v) = %d, want %d", i, e, kappa[i], want)
		}
	}

	// The projection is a detached copy: further churn must not move it.
	before := append([]int32(nil), kappa...)
	en.InsertEdge(1, 50)
	en.DeleteEdge(1, 2)
	for i := range before {
		if kappa[i] != before[i] {
			t.Fatal("frozen κ changed under engine churn")
		}
	}
}
