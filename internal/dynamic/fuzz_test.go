package dynamic

import (
	"testing"

	"trikcore/internal/core"
	"trikcore/internal/graph"
)

// FuzzEngineOps interprets fuzz bytes as a sequence of edge toggles over
// a small vertex universe and verifies the engine's κ against a full
// recomputation at the end (and invariants throughout via the
// DeleteEdge consistency panic built into the engine).
func FuzzEngineOps(f *testing.F) {
	f.Add([]byte{0x12, 0x34, 0x56})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64] // keep each case cheap
		}
		en := NewEngine(graph.New())
		te := NewTrackedEngine(graph.New())
		const n = 10
		for _, b := range ops {
			u := graph.Vertex(b % n)
			v := graph.Vertex((b / n) % n)
			if u == v {
				continue
			}
			if en.Graph().HasEdge(u, v) {
				en.DeleteEdge(u, v)
				te.DeleteEdge(u, v)
			} else {
				en.InsertEdge(u, v)
				te.InsertEdge(u, v)
			}
		}
		want := core.Decompose(en.Graph()).EdgeKappas()
		got := en.EdgeKappas()
		if len(got) != len(want) {
			t.Fatalf("edge count drift: %d vs %d", len(got), len(want))
		}
		for e, k := range want {
			if got[e] != k {
				t.Fatalf("κ(%v) = %d, recompute says %d (ops %v)", e, got[e], k, ops)
			}
		}
		if err := te.CheckInvariants(); err != nil {
			t.Fatalf("tracked invariants: %v (ops %v)", err, ops)
		}
	})
}
