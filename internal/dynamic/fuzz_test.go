package dynamic

import (
	"testing"

	"trikcore/internal/core"
	"trikcore/internal/graph"
)

// FuzzEngineChurn interprets fuzz bytes as a sequence of edge toggles
// over a small vertex universe and verifies three engines against each
// other and against a full recomputation at the end: one applying the
// ops one by one, one applying them through ApplyBatch in chunks, and a
// TrackedEngine (whose witness invariants are checked too). Toggles are
// resolved into explicit insert/delete ops against the per-op engine's
// state, so all three see the same operation stream.
//
// Under `-tags trikdebug` every single operation is followed by a full
// CheckInvariants sweep of both the substrate and the κ bookkeeping (on
// top of the debugAssert each mutating op already runs internally), so a
// corrupting op is caught at the op that corrupted, not at the final
// comparison. CI runs this fuzzer for a short wall-clock budget with the
// tag on; the committed corpus under testdata/fuzz replays known-gnarly
// churn sequences on every plain `go test` run.
func FuzzEngineChurn(f *testing.F) {
	f.Add([]byte{0x12, 0x34, 0x56})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64] // keep each case cheap
		}
		en := NewEngine(graph.New())
		bat := NewEngine(graph.New())
		te := NewTrackedEngine(graph.New())
		const n = 10
		const chunk = 4
		var pending []EdgeOp
		assertAll := func(step int) {
			if !debugChecks {
				return
			}
			if err := en.CheckInvariants(); err != nil {
				t.Fatalf("engine invariants after op %d: %v (ops %v)", step, err, ops)
			}
			if err := te.CheckInvariants(); err != nil {
				t.Fatalf("tracked invariants after op %d: %v (ops %v)", step, err, ops)
			}
		}
		flush := func() {
			bat.ApplyBatch(pending)
			pending = pending[:0]
			if debugChecks {
				if err := bat.CheckInvariants(); err != nil {
					t.Fatalf("batched invariants after flush: %v (ops %v)", err, ops)
				}
			}
		}
		for step, b := range ops {
			u := graph.Vertex(b % n)
			v := graph.Vertex((b / n) % n)
			if u == v {
				continue
			}
			del := en.HasEdge(u, v)
			if del {
				en.DeleteEdge(u, v)
				te.DeleteEdge(u, v)
			} else {
				en.InsertEdge(u, v)
				te.InsertEdge(u, v)
			}
			assertAll(step)
			pending = append(pending, EdgeOp{U: u, V: v, Del: del})
			if len(pending) == chunk {
				flush()
			}
		}
		flush()
		want := core.Decompose(en.Graph()).EdgeKappas()
		got := en.EdgeKappas()
		if len(got) != len(want) {
			t.Fatalf("edge count drift: %d vs %d", len(got), len(want))
		}
		for e, k := range want {
			if got[e] != k {
				t.Fatalf("κ(%v) = %d, recompute says %d (ops %v)", e, got[e], k, ops)
			}
		}
		batGot := bat.EdgeKappas()
		if len(batGot) != len(want) {
			t.Fatalf("batched edge count drift: %d vs %d (ops %v)", len(batGot), len(want), ops)
		}
		for e, k := range want {
			if batGot[e] != k {
				t.Fatalf("batched κ(%v) = %d, recompute says %d (ops %v)", e, batGot[e], k, ops)
			}
		}
		if err := bat.VerifyConsistency(); err != nil {
			t.Fatalf("batched engine: %v (ops %v)", err, ops)
		}
		if err := te.CheckInvariants(); err != nil {
			t.Fatalf("tracked invariants: %v (ops %v)", err, ops)
		}
	})
}
