package dynamic

import (
	"testing"

	"trikcore/internal/core"
	"trikcore/internal/graph"
)

// FuzzEngineChurn interprets fuzz bytes as a sequence of edge toggles
// over a small vertex universe and verifies four ways of applying the
// same operation stream against each other and against a full
// recomputation at the end: one engine applying the ops one by one, one
// applying them through ApplyBatch in chunks, two applying the same
// chunks through ApplyBatchParallel at workers 1 (the serial-delegation
// path) and 4 (real regions, validation and the conflict suffix), plus a
// TrackedEngine (whose witness invariants are checked too). Toggles are
// resolved into explicit insert/delete ops against the per-op engine's
// state, so every engine sees the same operation stream.
//
// Under `-tags trikdebug` every single operation — and every parallel
// epoch — is followed by a full CheckInvariants sweep of both the
// substrate and the κ bookkeeping (on top of the debugAssert each
// mutating op already runs internally), so a corrupting op is caught at
// the op that corrupted, not at the final comparison. CI runs this fuzzer
// for a short wall-clock budget with the tag on; the committed corpus
// under testdata/fuzz replays known-gnarly churn sequences on every plain
// `go test` run.
func FuzzEngineChurn(f *testing.F) {
	f.Add([]byte{0x12, 0x34, 0x56})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64] // keep each case cheap
		}
		en := NewEngine(graph.New())
		bat := NewEngine(graph.New())
		par1 := NewEngine(graph.New())
		par4 := NewEngine(graph.New())
		te := NewTrackedEngine(graph.New())
		const n = 10
		const chunk = 4
		var pending []EdgeOp
		assertAll := func(step int) {
			if !debugChecks {
				return
			}
			if err := en.CheckInvariants(); err != nil {
				t.Fatalf("engine invariants after op %d: %v (ops %v)", step, err, ops)
			}
			if err := te.CheckInvariants(); err != nil {
				t.Fatalf("tracked invariants after op %d: %v (ops %v)", step, err, ops)
			}
		}
		flush := func() {
			bat.ApplyBatch(pending)
			par1.ApplyBatchParallel(pending, 1)
			par4.ApplyBatchParallel(pending, 4)
			pending = pending[:0]
			if debugChecks {
				for name, e := range map[string]*Engine{"batched": bat, "parallel-1": par1, "parallel-4": par4} {
					if err := e.CheckInvariants(); err != nil {
						t.Fatalf("%s invariants after flush: %v (ops %v)", name, err, ops)
					}
				}
			}
		}
		for step, b := range ops {
			u := graph.Vertex(b % n)
			v := graph.Vertex((b / n) % n)
			if u == v {
				continue
			}
			del := en.HasEdge(u, v)
			if del {
				en.DeleteEdge(u, v)
				te.DeleteEdge(u, v)
			} else {
				en.InsertEdge(u, v)
				te.InsertEdge(u, v)
			}
			assertAll(step)
			pending = append(pending, EdgeOp{U: u, V: v, Del: del})
			if len(pending) == chunk {
				flush()
			}
		}
		flush()
		want := core.Decompose(en.Graph()).EdgeKappas()
		got := en.EdgeKappas()
		if len(got) != len(want) {
			t.Fatalf("edge count drift: %d vs %d", len(got), len(want))
		}
		for e, k := range want {
			if got[e] != k {
				t.Fatalf("κ(%v) = %d, recompute says %d (ops %v)", e, got[e], k, ops)
			}
		}
		for name, eng := range map[string]*Engine{"batched": bat, "parallel-1": par1, "parallel-4": par4} {
			eGot := eng.EdgeKappas()
			if len(eGot) != len(want) {
				t.Fatalf("%s edge count drift: %d vs %d (ops %v)", name, len(eGot), len(want), ops)
			}
			for e, k := range want {
				if eGot[e] != k {
					t.Fatalf("%s κ(%v) = %d, recompute says %d (ops %v)", name, e, eGot[e], k, ops)
				}
			}
			if err := eng.VerifyConsistency(); err != nil {
				t.Fatalf("%s engine: %v (ops %v)", name, err, ops)
			}
			if eng.Version() != bat.Version() {
				t.Fatalf("%s version %d, batched version %d (ops %v)", name, eng.Version(), bat.Version(), ops)
			}
		}
		if err := te.CheckInvariants(); err != nil {
			t.Fatalf("tracked invariants: %v (ops %v)", err, ops)
		}
	})
}
