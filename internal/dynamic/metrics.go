package dynamic

import (
	"trikcore/internal/core"
	"trikcore/internal/graph"
	"trikcore/internal/obs"
)

// Batch-apply stage names observed by the trikcore_engine_batch_stage_seconds
// phase timer: canonicalizing the op list (sort + dedup by net effect), then
// the surviving deletions, then the surviving insertions.
const (
	StageCanonicalize = "canonicalize"
	StageDelete       = "delete"
	StageInsert       = "insert"
)

// Parallel-apply stage names observed by the
// trikcore_engine_parallel_stage_seconds phase timer: the serial resolve
// pre-pass, region partitioning, the parallel execute phase (dispatch to
// epoch barrier), and validation + funnel merge + conflict suffix.
const (
	StageResolve   = "resolve"
	StagePartition = "partition"
	StageExecute   = "execute"
	StageMerge     = "merge"
)

// engineMetrics holds the engine's metric handles. A nil *engineMetrics
// (the uninstrumented default) keeps every mutation path bit-identical to
// an engine built before instrumentation existed: hooks are guarded by one
// `en.mt != nil` branch at the public-op boundary, never inside the
// per-triangle funnels.
type engineMetrics struct {
	applyBatchSeconds *obs.Histogram // whole-batch wall time
	insertSeconds     *obs.Histogram // per public InsertEdge call
	deleteSeconds     *obs.Histogram // per public DeleteEdge call
	stages            *obs.PhaseTimer

	applyParallelSeconds *obs.Histogram // whole ApplyBatchParallel call
	parStages            *obs.PhaseTimer
	regionsPerBatch      *obs.Histogram // regions per parallel epoch
	regionSize           *obs.Histogram // ops per region
	regionConflicts      *obs.Counter   // regions demoted to the suffix
	barrierWaitSeconds   *obs.Histogram // coordinator wait at the barrier
	workerBusySeconds    *obs.Histogram // per-worker busy time per epoch

	insertsApplied *obs.Counter
	deletesApplied *obs.Counter
	opsDeduped     *obs.Counter

	promotions *obs.Counter
	demotions  *obs.Counter
	triangles  *obs.Counter
	cascade    *obs.Counter

	liveEdges      *obs.Gauge
	liveVertices   *obs.Gauge
	maxKappa       *obs.Gauge
	substrateBytes *obs.Gauge
}

// Instrument registers the engine's metric families on reg and starts
// recording. A nil registry is a no-op, leaving the engine uninstrumented.
// Instrument is not safe to call concurrently with mutations; wire it at
// construction time.
func (en *Engine) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	mt := &engineMetrics{
		applyBatchSeconds: reg.Histogram("trikcore_engine_apply_batch_seconds",
			"Wall time of one ApplyBatch call.", obs.DurationBuckets, nil),
		insertSeconds: reg.Histogram("trikcore_engine_op_seconds",
			"Wall time of one single-edge mutation.", obs.DurationBuckets, obs.Labels{"op": "insert"}),
		deleteSeconds: reg.Histogram("trikcore_engine_op_seconds",
			"Wall time of one single-edge mutation.", obs.DurationBuckets, obs.Labels{"op": "delete"}),
		stages: obs.NewPhaseTimer(reg, "trikcore_engine_batch_stage_seconds",
			"Wall time per ApplyBatch stage.", StageCanonicalize, StageDelete, StageInsert),

		applyParallelSeconds: reg.Histogram("trikcore_engine_apply_parallel_seconds",
			"Wall time of one ApplyBatchParallel call.", obs.DurationBuckets, nil),
		parStages: obs.NewPhaseTimer(reg, "trikcore_engine_parallel_stage_seconds",
			"Wall time per ApplyBatchParallel stage.",
			StageResolve, StagePartition, StageExecute, StageMerge),
		regionsPerBatch: reg.Histogram("trikcore_engine_parallel_regions",
			"Affected regions per parallel epoch.", obs.CountBuckets, nil),
		regionSize: reg.Histogram("trikcore_engine_parallel_region_ops",
			"Edge operations per affected region.", obs.CountBuckets, nil),
		regionConflicts: reg.Counter("trikcore_engine_parallel_region_conflicts_total",
			"Regions whose reads overlapped earlier-merged writes and re-ran in the conflict suffix.", nil),
		barrierWaitSeconds: reg.Histogram("trikcore_engine_parallel_barrier_wait_seconds",
			"Coordinator wait at the epoch barrier, per parallel epoch.", obs.DurationBuckets, nil),
		workerBusySeconds: reg.Histogram("trikcore_engine_parallel_worker_busy_seconds",
			"Per-worker busy time per parallel epoch.", obs.DurationBuckets, nil),

		insertsApplied: reg.Counter("trikcore_engine_ops_applied_total",
			"Edge operations that changed the graph.", obs.Labels{"op": "insert"}),
		deletesApplied: reg.Counter("trikcore_engine_ops_applied_total",
			"Edge operations that changed the graph.", obs.Labels{"op": "delete"}),
		opsDeduped: reg.Counter("trikcore_engine_ops_deduped_total",
			"Batch operations collapsed away by per-edge net-effect dedup.", nil),

		promotions: reg.Counter("trikcore_engine_kappa_promotions_total",
			"Edge kappa increments applied by incremental maintenance.", nil),
		demotions: reg.Counter("trikcore_engine_kappa_demotions_total",
			"Edge kappa decrements applied by incremental maintenance.", nil),
		triangles: reg.Counter("trikcore_engine_triangles_processed_total",
			"Per-triangle update steps executed.", nil),
		cascade: reg.Counter("trikcore_engine_cascade_edges_visited_total",
			"Edges touched by candidate collection, support recomputation and cascades.", nil),

		liveEdges: reg.Gauge("trikcore_engine_live_edges",
			"Live edges in the dense substrate.", nil),
		liveVertices: reg.Gauge("trikcore_engine_live_vertices",
			"Live vertices in the dense substrate.", nil),
		maxKappa: reg.Gauge("trikcore_engine_max_kappa",
			"Largest kappa value in the current graph.", nil),
		substrateBytes: reg.Gauge("trikcore_engine_substrate_bytes",
			"Approximate heap footprint of the dense substrate; refreshed per batch.", nil),
	}
	en.mt = mt
	mt.syncGauges(en)
	mt.substrateBytes.Set(en.d.SizeBytes())
}

// recordOp folds one public single-edge mutation into the metrics: the
// work-counter deltas accumulated since before, the applied-op counter when
// the graph actually changed, and the O(1) gauges. The substrate-size
// gauge is deliberately not refreshed here — computing it walks every
// vertex row, which would dwarf a single-edge update; it refreshes per
// batch and at Instrument time instead.
func (mt *engineMetrics) recordOp(en *Engine, before Stats, changed, del bool) {
	if changed {
		if del {
			mt.deletesApplied.Inc()
		} else {
			mt.insertsApplied.Inc()
		}
	}
	mt.recordDelta(en, before)
}

// recordDelta publishes the Stats movement since before plus the O(1)
// gauges.
func (mt *engineMetrics) recordDelta(en *Engine, before Stats) {
	after := en.stats
	mt.promotions.Add(uint64(after.Promotions - before.Promotions))
	mt.demotions.Add(uint64(after.Demotions - before.Demotions))
	mt.triangles.Add(uint64(after.TrianglesProcessed - before.TrianglesProcessed))
	mt.cascade.Add(uint64(after.EdgesVisited - before.EdgesVisited))
	mt.syncGauges(en)
}

// syncGauges refreshes the O(1) structural gauges.
func (mt *engineMetrics) syncGauges(en *Engine) {
	mt.liveEdges.Set(int64(en.d.NumEdges()))
	mt.liveVertices.Set(int64(en.d.NumVertices()))
	mt.maxKappa.Set(int64(en.maxK))
}

// NewEngineFromDecomposition builds an engine that adopts an existing
// static decomposition instead of recomputing it, so callers that want the
// decomposition phases timed (or the Decomposition itself) can run
// core.DecomposeWith themselves and hand over the result. The
// decomposition's Static view is copied into a private dense substrate;
// NewDenseFromStatic preserves its edge ids, so κ is adopted verbatim.
func NewEngineFromDecomposition(d *core.Decomposition) *Engine {
	en := &Engine{
		d:     graph.NewDenseFromStatic(d.S),
		kappa: append([]int32(nil), d.Kappa...),
		maxK:  d.MaxKappa,
	}
	en.ser.init(en)
	en.ser.stats = &en.stats
	en.hist = make([]int, en.maxK+1)
	for _, k := range en.kappa {
		en.hist[k]++
	}
	en.ensureEdgeCap()
	en.ensureVertexCap()
	return en
}
