//go:build !trikdebug

package dynamic

// debugChecks is off in normal builds; the assertions behind it compile
// to nothing. See debug_on.go.
const debugChecks = false
