package dynamic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"trikcore/internal/graph"
)

func TestTrackedEngineInitialMembership(t *testing.T) {
	g := randomGraph(20, 0.35, 4)
	te := NewTrackedEngine(g)
	if err := te.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		tris, ok := te.CoreTriangles(e)
		if !ok {
			t.Fatalf("CoreTriangles(%v) not ok", e)
		}
		k, _ := te.Kappa(e)
		if int32(len(tris)) != k {
			t.Fatalf("edge %v: %d witnesses, κ=%d", e, len(tris), k)
		}
	}
	if _, ok := te.CoreTriangles(graph.NewEdge(900, 901)); ok {
		t.Fatal("CoreTriangles of absent edge returned ok")
	}
}

func TestTrackedEngineFigure3(t *testing.T) {
	g := graph.FromPairs(1, 2, 2, 3, 1, 5, 1, 6, 5, 6, 3, 4, 3, 5, 4, 5)
	te := NewTrackedEngine(g)
	te.InsertEdge(1, 3)
	if err := te.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every edge has κ=1 after the insertion (Figure 3), so every
	// witness set holds exactly one triangle.
	for _, e := range te.Graph().Edges() {
		tris, _ := te.CoreTriangles(e)
		if len(tris) != 1 {
			t.Fatalf("edge %v: witnesses %v, want exactly 1", e, tris)
		}
	}
}

func TestQuickTrackedChurn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(12, 0.35, seed)
		te := NewTrackedEngine(g)
		for step := 0; step < 30; step++ {
			u := graph.Vertex(rng.Intn(12))
			v := graph.Vertex(rng.Intn(12))
			if u == v {
				continue
			}
			if te.Graph().HasEdge(u, v) {
				te.DeleteEdge(u, v)
			} else {
				te.InsertEdge(u, v)
			}
			if err := te.CheckInvariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTrackedMatchesUntrackedKappa(t *testing.T) {
	g := randomGraph(15, 0.3, 9)
	te := NewTrackedEngine(g)
	en := NewEngine(g)
	rng := rand.New(rand.NewSource(2))
	for step := 0; step < 40; step++ {
		u := graph.Vertex(rng.Intn(15))
		v := graph.Vertex(rng.Intn(15))
		if u == v {
			continue
		}
		if te.Graph().HasEdge(u, v) {
			te.DeleteEdge(u, v)
			en.DeleteEdge(u, v)
		} else {
			te.InsertEdge(u, v)
			en.InsertEdge(u, v)
		}
	}
	if !reflect.DeepEqual(te.EdgeKappas(), en.EdgeKappas()) {
		t.Fatal("tracked and untracked engines disagree on κ")
	}
}

func TestTrackedRemoveVertexAndDiff(t *testing.T) {
	g := randomGraph(14, 0.35, 6)
	te := NewTrackedEngine(g)
	if !te.RemoveVertex(3) || te.RemoveVertex(3) {
		t.Fatal("RemoveVertex bookkeeping wrong")
	}
	if err := te.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	other := randomGraph(16, 0.3, 7)
	te.ApplyDiff(graph.DiffGraphs(te.Graph(), other))
	if err := te.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(te.Graph().Edges(), other.Edges()) {
		t.Fatal("ApplyDiff did not converge to the target graph")
	}
}

func TestTrackedCommunityCollapse(t *testing.T) {
	// Dismantle a K6 edge by edge; witnesses must stay consistent at
	// every step even as κ falls from 4 to 0.
	g := graph.New()
	for i := graph.Vertex(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.AddEdge(i, j)
		}
	}
	te := NewTrackedEngine(g)
	for _, e := range g.Edges() {
		te.DeleteEdgeE(e)
		if err := te.CheckInvariants(); err != nil {
			t.Fatalf("after deleting %v: %v", e, err)
		}
	}
}
