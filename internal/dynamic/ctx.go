package dynamic

import "fmt"

// applyCtx is the execution context of κ maintenance: the traversal
// scratch, the per-update "off" triangle set, and the κ access funnel the
// per-triangle update steps (update.go) run against. Two kinds of context
// exist:
//
//   - the engine's own serial context (Engine.ser, staged == false):
//     κ reads hit Engine.kappa directly and κ writes go straight through
//     the Engine.setKappa funnel — the classic single-threaded path used
//     by InsertEdge/DeleteEdge/ApplyBatch;
//   - worker contexts (staged == true, see parallel.go): the substrate
//     and Engine.kappa are frozen and read-only, κ writes land in a
//     worker-local staging overlay (sKappa/sMark), and every edge whose κ
//     or liveness the traversal depended on is recorded in the context's
//     read set. Staged transitions only reach the engine later, through
//     the funnel, at the epoch-barrier merge.
//
// The staged branch in kappaOf/setK is the entire cost the serial path
// pays for sharing one traversal implementation with the workers.
type applyCtx struct {
	en    *Engine
	stats *Stats
	sc    scratch

	// The "off" set: triangles that exist combinatorially but are excluded
	// from the active set during a multi-triangle update — not yet
	// activated (mid-insertion) or already deactivated (mid-deletion).
	// Every off triangle contains the edge being updated, so the set is
	// just that edge's dense endpoints plus a generation stamp per third
	// vertex: triangle {offU, offV, w} is off iff offStamp[w] == offGen.
	// Bumping offGen retires a whole update's stamps in O(1).
	offU, offV int32
	offStamp   []uint32
	offGen     uint32

	// Staging overlay (worker contexts only). sKappa[e] is the staged κ of
	// edge e when sMark[e] == gen (-1 = staged deletion); rMark stamps the
	// read set. gen is bumped once per region, retiring the previous
	// region's overlay in O(1). reads and writes list the stamped edge ids
	// in first-touch order; they alias the region's record (parallel.go).
	staged bool
	sKappa []int32
	sMark  []uint32
	rMark  []uint32
	gen    uint32
	reads  []int32
	writes []int32
}

// init binds the context to its engine and closes the off epoch.
func (c *applyCtx) init(en *Engine) {
	c.en = en
	c.offU, c.offV = -1, -1
}

// growEdges sizes the edge-indexed context state to n slots. The staging
// arrays grow only on staged contexts; generation stamps make zero the
// safe initial value everywhere.
func (c *applyCtx) growEdges(n int) {
	for len(c.sc.st) < n {
		c.sc.st = append(c.sc.st, 0)
		c.sc.es = append(c.sc.es, 0)
		c.sc.evictedAt = append(c.sc.evictedAt, 0)
		c.sc.inQueue = append(c.sc.inQueue, false)
	}
	if c.staged {
		for len(c.sKappa) < n {
			c.sKappa = append(c.sKappa, 0)
		}
		for len(c.sMark) < n {
			c.sMark = append(c.sMark, 0)
		}
		for len(c.rMark) < n {
			c.rMark = append(c.rMark, 0)
		}
	}
}

// growVertices sizes the vertex-indexed off stamps to n slots.
func (c *applyCtx) growVertices(n int) {
	for len(c.offStamp) < n {
		c.offStamp = append(c.offStamp, 0)
	}
}

// kappaOf reads the effective κ of edge e: the staging overlay when this
// context has staged e, the engine's maintained value otherwise. Staged
// contexts record the read for merge-time conflict validation.
func (c *applyCtx) kappaOf(e int32) int32 {
	if c.staged {
		c.readEdge(e)
		if c.sMark[e] == c.gen {
			return c.sKappa[e]
		}
	}
	return c.en.kappa[e]
}

// setK funnels one κ transition of edge e from old to new: directly
// through Engine.setKappa on the serial context, into the staging overlay
// on worker contexts (old is implied by the overlay/base state there and
// reconstructed at merge).
func (c *applyCtx) setK(e, old, new int32) {
	if c.staged {
		c.stageKappa(e, new)
		return
	}
	c.en.setKappa(e, old, new)
}

// stageKappa writes the staged κ of edge e. It is the staging funnel: the
// only writer of sKappa/sMark, recording e in the write (and read) set on
// first touch so the merge and the conflict validator see exactly the
// edges this context moved.
func (c *applyCtx) stageKappa(e, v int32) {
	c.readEdge(e)
	if c.sMark[e] != c.gen {
		c.sMark[e] = c.gen
		c.writes = append(c.writes, e)
	}
	c.sKappa[e] = v
}

// readEdge records e in the context's read set (staged contexts only).
func (c *applyCtx) readEdge(e int32) {
	if c.rMark[e] != c.gen {
		c.rMark[e] = c.gen
		c.reads = append(c.reads, e)
	}
}

// edgeActive reports whether edge e is logically present from this staged
// context's point of view: staged edges by their overlay state (a staged
// -1 is a completed deletion, anything else a live or activated edge),
// unstaged edges by the shared batch state — pending-insert edges of the
// batch are structurally present but logically absent until their owning
// region activates them, and a base κ of -1 marks an edge another region
// already deleted and merged (visible to the conflict-suffix context
// only). The liveness read is recorded: the traversal's outcome depends
// on it, so the validator must see it.
func (c *applyCtx) edgeActive(e int32) bool {
	c.readEdge(e)
	if c.sMark[e] == c.gen {
		return c.sKappa[e] >= 0
	}
	return c.en.pendMark[e] != c.en.pendGen && c.en.kappa[e] >= 0
}

// beginOff opens an off-set epoch for the edge with dense endpoints
// (du, dv).
func (c *applyCtx) beginOff(du, dv int32) {
	c.offGen++
	if c.offGen == 0 {
		// Generation counter wrapped: stale stamps could collide, so wipe
		// them all once per 2^32 updates.
		for i := range c.offStamp {
			c.offStamp[i] = 0
		}
		c.offGen = 1
	}
	c.offU, c.offV = du, dv
}

// endOff closes the epoch, clearing the stamps of the listed (w, e1, e2)
// triples. The generation bump in beginOff already retires them; clearing
// keeps stamps from surviving a full generation wrap.
func (c *applyCtx) endOff(tris []int32) {
	for i := 0; i < len(tris); i += 3 {
		c.offStamp[tris[i]] = 0
	}
	c.offU, c.offV = -1, -1
}

// triOff reports whether the triangle over dense vertices {p, q, w} is in
// the off set: it contains the updating edge {offU, offV} and its third
// vertex carries the current generation stamp.
func (c *applyCtx) triOff(p, q, w int32) bool {
	var third int32
	switch {
	case (p == c.offU && q == c.offV) || (p == c.offV && q == c.offU):
		third = w
	case (p == c.offU && w == c.offV) || (p == c.offV && w == c.offU):
		third = q
	case (q == c.offU && w == c.offV) || (q == c.offV && w == c.offU):
		third = p
	default:
		return false
	}
	return c.offStamp[third] == c.offGen
}

// forEachActiveTriangleOn iterates the active triangles containing edge
// eid, passing the third dense vertex and the other two dense edge ids.
// Staged contexts additionally drop triangles with a logically absent
// co-edge (pending inserts of the batch, staged or merged deletions).
func (c *applyCtx) forEachActiveTriangleOn(eid int32, fn func(w, e1, e2 int32) bool) {
	u, v := c.en.d.EdgeEndpoints(eid)
	c.en.d.ForEachTriangleEdgeD(u, v, func(w, e1, e2 int32) bool {
		if c.triOff(u, v, w) {
			return true
		}
		if c.staged {
			a1 := c.edgeActive(e1)
			if !c.edgeActive(e2) || !a1 {
				return true
			}
		}
		return fn(w, e1, e2)
	})
}

// processEdgeInsert performs the κ maintenance of inserting edge eid,
// which must already be structurally present with all its triangles
// off. The new edge forms one triangle per common neighbor; they are
// activated one at a time (Algorithm 2 step 1 / Algorithm 5 outer loop):
// all start excluded, then each is switched on and processed.
func (c *applyCtx) processEdgeInsert(eid int32, tris *[]int32) {
	c.setK(eid, -1, 0)
	c.stats.Insertions++
	du, dv := c.en.d.EdgeEndpoints(eid)
	c.beginOff(du, dv)
	buf := (*tris)[:0]
	c.en.d.ForEachTriangleEdgeD(du, dv, func(w, e1, e2 int32) bool {
		if c.staged {
			a1 := c.edgeActive(e1)
			if !c.edgeActive(e2) || !a1 {
				return true
			}
		}
		c.offStamp[w] = c.offGen
		buf = append(buf, w, e1, e2)
		return true
	})
	for i := 0; i < len(buf); i += 3 {
		c.offStamp[buf[i]] = 0
		c.processTriangleInsert(eid, buf[i+1], buf[i+2])
	}
	*tris = buf
	c.endOff(buf)
}

// processEdgeDelete performs the κ maintenance of deleting edge eid: each
// of its active triangles is deactivated and processed in turn, after
// which its κ must have fallen to zero and the deletion transition
// (new = -1) goes through the funnel. The structural removal is the
// caller's job — immediately after on the serial path, in the batch
// post-pass on the parallel path.
func (c *applyCtx) processEdgeDelete(eid int32, tris *[]int32) {
	c.stats.Deletions++
	du, dv := c.en.d.EdgeEndpoints(eid)
	c.beginOff(du, dv)
	buf := (*tris)[:0]
	c.en.d.ForEachTriangleEdgeD(du, dv, func(w, e1, e2 int32) bool {
		if c.staged {
			a1 := c.edgeActive(e1)
			if !c.edgeActive(e2) || !a1 {
				return true
			}
		}
		buf = append(buf, w, e1, e2)
		return true
	})
	for i := 0; i < len(buf); i += 3 {
		c.offStamp[buf[i]] = c.offGen
		c.processTriangleDelete(eid, buf[i+1], buf[i+2])
	}
	if k := c.kappaOf(eid); k != 0 {
		// Every triangle on the edge has been deactivated, so a correct
		// update must have driven its κ to zero.
		panic(fmt.Sprintf("dynamic: κ(%v)=%d after deactivating all its triangles", c.en.d.EdgeAt(eid), k))
	}
	// The deletion transition fires while the edge is still structurally
	// live so observers can resolve its endpoints.
	c.setK(eid, 0, -1)
	*tris = buf
	c.endOff(buf)
}
