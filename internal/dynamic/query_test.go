package dynamic

import (
	"reflect"
	"testing"

	"trikcore/internal/core"
	"trikcore/internal/graph"
)

func TestEngineQueriesMatchStatic(t *testing.T) {
	g := randomGraph(30, 0.3, 13)
	en := NewEngine(g)
	// Churn a little so the engine state is genuinely maintained.
	en.InsertEdge(1, 2)
	en.DeleteEdge(3, 4)
	en.InsertEdge(5, 28)

	d := core.Decompose(en.Graph())

	// Histogram agreement.
	wantHist := d.KappaHistogram()
	if got := en.KappaHistogram(); !reflect.DeepEqual(got, wantHist) {
		t.Fatalf("histogram: engine %v, static %v", got, wantHist)
	}

	// MaxCoreOf agreement on every edge.
	for _, e := range en.Graph().Edges() {
		gotSub, ok1 := en.MaxCoreOf(e)
		wantSub, ok2 := d.MaxCoreOf(e)
		if ok1 != ok2 {
			t.Fatalf("MaxCoreOf(%v) ok mismatch", e)
		}
		if !reflect.DeepEqual(gotSub.Edges(), wantSub.Edges()) {
			t.Fatalf("MaxCoreOf(%v): engine %v, static %v", e, gotSub.Edges(), wantSub.Edges())
		}
	}
	if _, ok := en.MaxCoreOf(graph.NewEdge(800, 801)); ok {
		t.Fatal("MaxCoreOf of absent edge returned ok")
	}

	// Communities agreement at every level.
	for k := int32(1); k <= en.MaxKappa(); k++ {
		got := en.Communities(k)
		want := d.Communities(k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Communities(%d): engine %v, static %v", k, got, want)
		}
	}
}

// TestRuleOneWitness verifies the stateless Rule 1 reconstruction: after
// arbitrary churn, every edge yields κ(e) triangles whose other edges
// carry κ ≥ κ(e) — a valid maximum-core witness with no stored state.
func TestRuleOneWitness(t *testing.T) {
	g := randomGraph(20, 0.35, 21)
	en := NewEngine(g)
	for step := 0; step < 50; step++ {
		u := graph.Vertex(step % 20)
		v := graph.Vertex((step*7 + 3) % 20)
		if u == v {
			continue
		}
		if en.Graph().HasEdge(u, v) {
			en.DeleteEdge(u, v)
		} else {
			en.InsertEdge(u, v)
		}
	}
	for _, e := range en.Graph().Edges() {
		tris, ok := en.RuleOneWitness(e)
		if !ok {
			t.Fatalf("RuleOneWitness(%v) not ok", e)
		}
		k, _ := en.Kappa(e)
		if int32(len(tris)) != k {
			t.Fatalf("edge %v: witness has %d triangles, κ=%d", e, len(tris), k)
		}
		for _, tr := range tris {
			for _, oe := range tr.Edges() {
				ko, ok := en.Kappa(oe)
				if !ok || ko < k {
					t.Fatalf("edge %v: witness %v violates Theorem 1 via %v", e, tr, oe)
				}
			}
		}
	}
	if _, ok := en.RuleOneWitness(graph.NewEdge(700, 701)); ok {
		t.Fatal("witness for absent edge returned ok")
	}
}

func TestVerifyConsistency(t *testing.T) {
	en := NewEngine(randomGraph(15, 0.3, 8))
	en.InsertEdge(1, 2)
	en.DeleteEdge(0, 1)
	if err := en.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the state deliberately (on a live edge id); the check must
	// notice.
	en.d.ForEachEdgeID(func(eid int32) bool {
		en.kappa[eid]++
		return false
	})
	if err := en.VerifyConsistency(); err == nil {
		t.Fatal("corrupted engine passed consistency check")
	}
}

func TestCoCliqueSizes(t *testing.T) {
	en := NewEngine(graph.FromPairs(1, 2, 2, 3, 3, 1, 3, 4))
	cs := en.CoCliqueSizes()
	if cs[graph.NewEdge(1, 2)] != 3 || cs[graph.NewEdge(3, 4)] != 2 {
		t.Fatalf("CoCliqueSizes = %v", cs)
	}
}
