package dynamic

import (
	"math/rand"
	"testing"

	"trikcore/internal/core"
	"trikcore/internal/gen"
	"trikcore/internal/graph"
)

// TestRealisticChurnOnClusteredGraph drives the engine through hundreds
// of updates on a triangle-rich Holme–Kim graph with planted communities
// (the structure of the Table III datasets) and verifies the final κ
// assignment against a full recomputation. This is the scale regime the
// per-op property tests cannot reach.
func TestRealisticChurnOnClusteredGraph(t *testing.T) {
	g := gen.PowerLawCluster(2500, 5, 0.6, 77)
	gen.AddCommunities(g, 6, 8, 20, 0.9, 78)
	en := NewEngine(g)
	rng := rand.New(rand.NewSource(5))
	verts := g.Vertices()

	ins, del := 0, 0
	for step := 0; step < 600; step++ {
		u := verts[rng.Intn(len(verts))]
		v := verts[rng.Intn(len(verts))]
		if u == v {
			continue
		}
		if en.HasEdge(u, v) {
			en.DeleteEdge(u, v)
			del++
		} else {
			en.InsertEdge(u, v)
			ins++
		}
	}
	if ins == 0 || del == 0 {
		t.Fatalf("churn degenerate: %d inserts, %d deletes", ins, del)
	}
	want := core.Decompose(en.Graph()).EdgeKappas()
	got := en.EdgeKappas()
	if len(got) != len(want) {
		t.Fatalf("edge count drift: engine %d, graph %d", len(got), len(want))
	}
	for e, k := range want {
		if got[e] != k {
			t.Fatalf("after churn κ(%v) = %d, recompute says %d", e, got[e], k)
		}
	}
}

// TestCommunityCollapseAndRebuild deletes a planted community edge by
// edge (driving deep demotion cascades) and rebuilds it (driving deep
// promotion cascades), verifying κ at both extremes.
func TestCommunityCollapseAndRebuild(t *testing.T) {
	g := gen.PowerLawCluster(800, 4, 0.5, 3)
	comm := gen.AddCommunities(g, 1, 15, 15, 1.0, 4)[0]
	en := NewEngine(g)

	// The community is a 15-clique: its internal edges carry κ ≥ 13.
	internal := make([]graph.Edge, 0, 105)
	for i := 0; i < len(comm); i++ {
		for j := i + 1; j < len(comm); j++ {
			internal = append(internal, graph.NewEdge(comm[i], comm[j]))
		}
	}
	if k, _ := en.Kappa(internal[0]); k < 13 {
		t.Fatalf("community edge κ = %d, want ≥ 13", k)
	}
	for _, e := range internal {
		en.DeleteEdgeE(e)
	}
	want := core.Decompose(en.Graph()).EdgeKappas()
	for e, k := range want {
		if got, _ := en.Kappa(e); int(got) != k {
			t.Fatalf("after collapse κ(%v) = %d, want %d", e, got, k)
		}
	}
	for _, e := range internal {
		en.InsertEdgeE(e)
	}
	want = core.Decompose(en.Graph()).EdgeKappas()
	for e, k := range want {
		if got, _ := en.Kappa(e); int(got) != k {
			t.Fatalf("after rebuild κ(%v) = %d, want %d", e, got, k)
		}
	}
	if k, _ := en.Kappa(internal[0]); k < 13 {
		t.Fatalf("rebuilt community edge κ = %d, want ≥ 13", k)
	}
}
