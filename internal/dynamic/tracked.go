package dynamic

import (
	"fmt"
	"slices"
	"sort"

	"trikcore/internal/graph"
)

// TrackedEngine is an Engine that additionally maintains the paper's
// explicit per-edge core membership bookkeeping (the AddToCore /
// DelFromCore state of Algorithms 1, 2, 5 and 7): for every edge e, the
// set of triangles forming a witness of e's maximum Triangle K-Core.
//
// The membership contract is the paper's Theorem 1 consistency:
//
//	I1: |core(e)| = κ(e);
//	I2: every t ∈ core(e) is a triangle of the current graph, and both
//	    of t's other edges carry κ ≥ κ(e).
//
// With the sets on hand, CoreTriangles is O(1) per query and MaxCore
// neighborhoods can be assembled without re-running Algorithm 1 — the
// capability the paper's bookkeeping exists to provide in the dynamic
// setting (statically, Rule 1 reconstructs the same sets from the
// processing order; see core.Decomposition.CoreTriangles).
//
// Membership lives in packed form on the dense substrate: cores[eid] is
// the sorted list of dense third vertices whose triangles witness edge
// eid. No reverse index is needed — a triangle can only be witnessed by
// its own three edges, so the edges whose witness references a triangle
// through e are found by iterating e's triangles and binary-searching the
// two co-edges' third lists. Membership repair after an update is local:
// only edges whose κ changed, edges that lost a triangle, and edges whose
// stored witness referenced a demoted edge need their sets rebuilt.
type TrackedEngine struct {
	*Engine
	// cores[eid] holds the witness of live edge eid as sorted dense third
	// vertices; free edge slots keep empty lists.
	cores [][]int32
	// dirty lists edges needing repair during one public update, with
	// dirtyMark deduplicating by edge id.
	dirty     []int32
	dirtyMark []bool
}

// NewTrackedEngine builds a tracked engine over a copy of g. Initial
// membership comes from Rule 1 applied to the maintained κ values: the
// first κ(e) triangles of e (by third vertex) whose other edges carry
// κ ≥ κ(e) are a valid witness by Theorem 1, so no second decomposition
// is needed.
func NewTrackedEngine(g *graph.Graph) *TrackedEngine {
	te := &TrackedEngine{Engine: NewEngine(g)}
	te.Engine.onKappaChange = te.observe
	te.ensureCap()
	te.d.ForEachEdgeID(func(eid int32) bool {
		te.cores[eid] = te.selectWitnessInto(nil, eid, te.kappa[eid])
		return true
	})
	return te
}

// ensureCap grows membership state to the dense edge capacity.
func (te *TrackedEngine) ensureCap() {
	c := te.d.EdgeCap()
	for len(te.cores) < c {
		te.cores = append(te.cores, nil)
		te.dirtyMark = append(te.dirtyMark, false)
	}
}

func (te *TrackedEngine) markDirty(eid int32) {
	if !te.dirtyMark[eid] {
		te.dirtyMark[eid] = true
		te.dirty = append(te.dirty, eid)
	}
}

// observe collects κ transitions; repairs run after the whole public
// update completes (the engine applies one update as several per-triangle
// steps, and membership is only required to be consistent between public
// updates). Removal transitions arrive while the edge and its triangles
// are still present, which is what lets dependents be found here rather
// than by a pre-mutation hook.
func (te *TrackedEngine) observe(eid, old, new int32) {
	te.ensureCap()
	te.markDirty(eid)
	if new < old {
		// Demotion or removal: any edge whose witness uses a triangle
		// through this edge may now violate Theorem 1.
		te.markDependents(eid)
	}
}

// markDependents marks edges whose stored witness contains a triangle
// through edge eid. A triangle {u, v, w} can only be witnessed by its own
// three edges, so for each triangle on eid = {u, v} it suffices to probe
// the co-edges {u, w} (third vertex v) and {v, w} (third vertex u).
func (te *TrackedEngine) markDependents(eid int32) {
	u, v := te.d.EdgeEndpoints(eid)
	te.d.ForEachTriangleEdgeD(u, v, func(w, e1, e2 int32) bool {
		if containsSorted(te.cores[e1], v) {
			te.markDirty(e1)
		}
		if containsSorted(te.cores[e2], u) {
			te.markDirty(e2)
		}
		return true
	})
}

func containsSorted(s []int32, x int32) bool {
	_, ok := slices.BinarySearch(s, x)
	return ok
}

// InsertEdge inserts {u, v} and repairs membership. It reports whether
// the edge was new.
func (te *TrackedEngine) InsertEdge(u, v graph.Vertex) bool {
	ok := te.Engine.InsertEdge(u, v)
	te.repair()
	return ok
}

// DeleteEdge removes {u, v} and repairs membership. It reports whether
// the edge existed.
func (te *TrackedEngine) DeleteEdge(u, v graph.Vertex) bool {
	ok := te.Engine.DeleteEdge(u, v)
	te.repair()
	return ok
}

// InsertEdgeE and DeleteEdgeE are the Edge-value forms.
func (te *TrackedEngine) InsertEdgeE(e graph.Edge) bool { return te.InsertEdge(e.U, e.V) }

// DeleteEdgeE removes a canonical edge; see DeleteEdge.
func (te *TrackedEngine) DeleteEdgeE(e graph.Edge) bool { return te.DeleteEdge(e.U, e.V) }

// RemoveVertex deletes v and its incident edges, repairing membership.
func (te *TrackedEngine) RemoveVertex(v graph.Vertex) bool {
	ok := te.Engine.RemoveVertex(v)
	te.repair()
	return ok
}

// ApplyBatch applies a batch of edge operations and repairs membership
// once at the end, so edges touched by several operations of the batch are
// rebuilt a single time.
func (te *TrackedEngine) ApplyBatch(ops []EdgeOp) (added, removed int) {
	added, removed = te.Engine.ApplyBatch(ops)
	te.repair()
	return added, removed
}

// ApplyBatchParallel applies a batch with parallel κ maintenance and
// repairs membership once at the end. Membership repair itself stays
// serial: the observer marks dirty edges during the epoch's merge phase,
// which already runs on the coordinator alone.
func (te *TrackedEngine) ApplyBatchParallel(ops []EdgeOp, workers int) (added, removed int) {
	added, removed = te.Engine.ApplyBatchParallel(ops, workers)
	te.repair()
	return added, removed
}

// ApplyDiff applies a snapshot diff with membership maintained.
func (te *TrackedEngine) ApplyDiff(d graph.Diff) {
	te.Engine.ApplyDiff(d)
	te.repair()
}

// repair rebuilds the witness lists of all dirty edges.
func (te *TrackedEngine) repair() {
	for _, eid := range te.dirty {
		te.dirtyMark[eid] = false
		if !te.d.EdgeLive(eid) {
			te.cores[eid] = te.cores[eid][:0]
			continue
		}
		te.cores[eid] = te.selectWitnessInto(te.cores[eid][:0], eid, te.kappa[eid])
	}
	te.dirty = te.dirty[:0]
	te.debugAssert()
}

// debugAssert shadows Engine.debugAssert with the tracked variant, so the
// membership contract is asserted too when trikdebug is on.
func (te *TrackedEngine) debugAssert() {
	if !debugChecks {
		return
	}
	if err := te.CheckInvariants(); err != nil {
		panic("trikdebug: " + err.Error())
	}
}

// selectWitnessInto appends to buf the dense third vertices of the first
// κ(e) triangles on edge eid (ascending third vertex) whose other edges
// carry κ ≥ κ(e). Such triangles always exist when κ is correct (the edge
// belongs to a Triangle κ(e)-Core, whose member edges all carry κ ≥ κ(e)).
func (te *TrackedEngine) selectWitnessInto(buf []int32, eid int32, k int32) []int32 {
	if k == 0 {
		return buf
	}
	u, v := te.d.EdgeEndpoints(eid)
	te.d.ForEachTriangleEdgeD(u, v, func(w, e1, e2 int32) bool {
		if te.kappa[e1] >= k && te.kappa[e2] >= k {
			buf = append(buf, w)
		}
		return int32(len(buf)) < k //trikcheck:checked buf holds at most k witnesses
	})
	if int32(len(buf)) < k { //trikcheck:checked buf holds at most k witnesses
		panic(fmt.Sprintf("dynamic: edge %v has only %d eligible witness triangles for κ=%d",
			te.d.EdgeAt(eid), len(buf), k))
	}
	return buf
}

// CoreTriangles returns the stored witness of e's maximum Triangle
// K-Core: κ(e) triangles satisfying Theorem 1. The boolean is false if e
// is not an edge of the current graph.
func (te *TrackedEngine) CoreTriangles(e graph.Edge) ([]graph.Triangle, bool) {
	eid := te.d.EdgeIDV(e.U, e.V)
	if eid < 0 {
		return nil, false
	}
	thirds := te.cores[eid]
	out := make([]graph.Triangle, 0, len(thirds))
	for _, w := range thirds {
		out = append(out, graph.NewTriangle(e.U, e.V, te.d.OrigOf(w)))
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.C < b.C
	})
	return out, true
}

// CheckInvariants verifies the underlying engine's invariants plus the
// membership contract (I1 and I2 above) for every edge, returning the
// first violation found. Tests call this after randomized churn; under
// the trikdebug build tag every public mutating operation asserts it.
func (te *TrackedEngine) CheckInvariants() error {
	if err := te.Engine.CheckInvariants(); err != nil {
		return err
	}
	if len(te.cores) < te.d.EdgeCap() {
		return fmt.Errorf("membership tracks %d edge slots, substrate has %d", len(te.cores), te.d.EdgeCap())
	}
	for i := range te.cores {
		eid := int32(i) //trikcheck:checked i indexes cores, sized to the int32-bounded edge capacity
		thirds := te.cores[i]
		if !te.d.EdgeLive(eid) {
			if len(thirds) != 0 {
				return fmt.Errorf("free edge slot %d holds %d witness entries", eid, len(thirds))
			}
			continue
		}
		e := te.d.EdgeAt(eid)
		k := te.kappa[eid]
		if int32(len(thirds)) != k { //trikcheck:checked witness lists hold κ ≤ int32 entries
			return fmt.Errorf("edge %v: |core| = %d, κ = %d", e, len(thirds), k)
		}
		u, v := te.d.EdgeEndpoints(eid)
		for j, w := range thirds {
			if j > 0 && thirds[j-1] >= w {
				return fmt.Errorf("edge %v: witness thirds not strictly sorted", e)
			}
			e1 := te.d.EdgeIDD(u, w)
			e2 := te.d.EdgeIDD(v, w)
			if e1 < 0 || e2 < 0 {
				return fmt.Errorf("edge %v: witness third %d uses an absent edge", e, te.d.OrigOf(w))
			}
			if te.kappa[e1] < k || te.kappa[e2] < k {
				return fmt.Errorf("edge %v: witness third %d violates Theorem 1 (κ %d/%d < %d)",
					e, te.d.OrigOf(w), te.kappa[e1], te.kappa[e2], k)
			}
		}
	}
	return nil
}
