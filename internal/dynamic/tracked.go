package dynamic

import (
	"fmt"
	"slices"
	"sort"

	"trikcore/internal/core"
	"trikcore/internal/graph"
)

// TrackedEngine is an Engine that additionally maintains the paper's
// explicit per-edge core membership bookkeeping (the AddToCore /
// DelFromCore state of Algorithms 1, 2, 5 and 7): for every edge e, the
// set of triangles forming a witness of e's maximum Triangle K-Core.
//
// The membership contract is the paper's Theorem 1 consistency:
//
//	I1: |core(e)| = κ(e);
//	I2: every t ∈ core(e) is a triangle of the current graph, and both
//	    of t's other edges carry κ ≥ κ(e).
//
// With the sets on hand, CoreTriangles is O(1) per query and MaxCore
// neighborhoods can be assembled without re-running Algorithm 1 — the
// capability the paper's bookkeeping exists to provide in the dynamic
// setting (statically, Rule 1 reconstructs the same sets from the
// processing order; see core.Decomposition.CoreTriangles).
//
// Membership repair after an update is local: only edges whose κ changed,
// edges that lost a triangle, and edges whose stored witness referenced a
// demoted edge need their sets rebuilt, found through a reverse index
// from triangles to the edges witnessing them.
type TrackedEngine struct {
	*Engine
	// cores holds the witness triangle set of each edge.
	cores map[graph.Edge]map[graph.Triangle]bool
	// usedBy indexes, for each triangle, the edges whose witness set
	// contains it.
	usedBy map[graph.Triangle]map[graph.Edge]bool
	// dirty accumulates edges needing repair during one public update.
	dirty map[graph.Edge]bool
}

// NewTrackedEngine builds a tracked engine over a copy of g. Initial
// membership comes from Rule 1 applied to the static decomposition.
func NewTrackedEngine(g *graph.Graph) *TrackedEngine {
	te := &TrackedEngine{
		Engine: NewEngine(g),
		cores:  make(map[graph.Edge]map[graph.Triangle]bool, g.NumEdges()),
		usedBy: make(map[graph.Triangle]map[graph.Edge]bool),
	}
	te.Engine.onKappaChange = te.observe
	d := core.Decompose(te.Engine.g)
	for _, e := range te.Engine.g.Edges() {
		tris, _ := d.CoreTriangles(e)
		set := make(map[graph.Triangle]bool, len(tris))
		for _, t := range tris {
			set[t] = true
			te.use(t, e)
		}
		te.cores[e] = set
	}
	return te
}

func (te *TrackedEngine) use(t graph.Triangle, e graph.Edge) {
	m := te.usedBy[t]
	if m == nil {
		m = make(map[graph.Edge]bool, 3)
		te.usedBy[t] = m
	}
	m[e] = true
}

func (te *TrackedEngine) unuse(t graph.Triangle, e graph.Edge) {
	if m := te.usedBy[t]; m != nil {
		delete(m, e)
		if len(m) == 0 {
			delete(te.usedBy, t)
		}
	}
}

// observe collects κ transitions; repairs run after the whole edge update
// completes (the engine applies one public update as several per-triangle
// steps, and membership is only required to be consistent between public
// updates).
func (te *TrackedEngine) observe(e graph.Edge, old, new int32) {
	if te.dirty == nil {
		te.dirty = make(map[graph.Edge]bool)
	}
	te.dirty[e] = true
	if new < old {
		// Demotion (or removal): any edge whose witness uses a triangle
		// through e may now violate Theorem 1.
		te.markDependents(e)
	}
}

// markDependents marks edges whose stored witness contains a triangle
// through e.
func (te *TrackedEngine) markDependents(e graph.Edge) {
	te.Engine.g.ForEachCommonNeighbor(e.U, e.V, func(w graph.Vertex) bool {
		t := graph.NewTriangle(e.U, e.V, w)
		for dep := range te.usedBy[t] {
			te.dirty[dep] = true
		}
		return true
	})
}

// InsertEdge inserts {u, v} and repairs membership. It reports whether
// the edge was new.
func (te *TrackedEngine) InsertEdge(u, v graph.Vertex) bool {
	ok := te.Engine.InsertEdge(u, v)
	te.repair()
	return ok
}

// DeleteEdge removes {u, v} and repairs membership. The deleted edge's
// vanished triangles may have been witnesses for surviving edges, so
// dependents are marked before the engine mutates the graph.
func (te *TrackedEngine) DeleteEdge(u, v graph.Vertex) bool {
	e := graph.NewEdge(u, v)
	if te.Engine.g.HasEdgeE(e) {
		if te.dirty == nil {
			te.dirty = make(map[graph.Edge]bool)
		}
		te.markDependents(e)
	}
	ok := te.Engine.DeleteEdge(u, v)
	te.repair()
	return ok
}

// InsertEdgeE and DeleteEdgeE are the Edge-value forms.
func (te *TrackedEngine) InsertEdgeE(e graph.Edge) bool { return te.InsertEdge(e.U, e.V) }

// DeleteEdgeE removes a canonical edge; see DeleteEdge.
func (te *TrackedEngine) DeleteEdgeE(e graph.Edge) bool { return te.DeleteEdge(e.U, e.V) }

// RemoveVertex deletes v and its incident edges, repairing membership.
func (te *TrackedEngine) RemoveVertex(v graph.Vertex) bool {
	if !te.Engine.g.HasVertex(v) {
		return false
	}
	for _, w := range te.Engine.g.NeighborsSorted(v) {
		te.DeleteEdge(v, w)
	}
	return te.Engine.g.RemoveVertex(v)
}

// ApplyDiff applies a snapshot diff with membership maintained.
func (te *TrackedEngine) ApplyDiff(d graph.Diff) {
	for _, e := range d.RemovedEdges {
		te.DeleteEdgeE(e)
	}
	for _, v := range d.RemovedVertices {
		te.RemoveVertex(v)
	}
	for _, v := range d.AddedVertices {
		te.AddVertex(v)
	}
	for _, e := range d.AddedEdges {
		te.InsertEdgeE(e)
	}
}

// repair rebuilds the witness sets of all dirty edges.
func (te *TrackedEngine) repair() {
	for e := range te.dirty {
		// Clear the old witness.
		if old := te.cores[e]; old != nil {
			for t := range old {
				te.unuse(t, e)
			}
		}
		k, exists := te.Engine.kappa[e]
		if !exists {
			delete(te.cores, e)
			continue
		}
		te.cores[e] = te.selectWitness(e, k)
		for t := range te.cores[e] {
			te.use(t, e)
		}
	}
	te.dirty = nil
}

// selectWitness picks κ(e) triangles on e whose other edges carry
// κ ≥ κ(e), preferring smaller third vertices for determinism. Such
// triangles always exist when κ is correct (e belongs to a Triangle
// κ(e)-Core, whose member edges all carry κ ≥ κ(e)).
func (te *TrackedEngine) selectWitness(e graph.Edge, k int32) map[graph.Triangle]bool {
	set := make(map[graph.Triangle]bool, k)
	if k == 0 {
		return set
	}
	var thirds []graph.Vertex
	te.Engine.g.ForEachTriangleEdge(e.U, e.V, func(w graph.Vertex, e1, e2 graph.Edge) bool {
		if te.Engine.kappa[e1] >= k && te.Engine.kappa[e2] >= k {
			thirds = append(thirds, w)
		}
		return true
	})
	if int32(len(thirds)) < k {
		panic(fmt.Sprintf("dynamic: edge %v has only %d eligible witness triangles for κ=%d", e, len(thirds), k))
	}
	slices.Sort(thirds)
	for _, w := range thirds[:k] {
		set[graph.NewTriangle(e.U, e.V, w)] = true
	}
	return set
}

// CoreTriangles returns the stored witness of e's maximum Triangle
// K-Core: κ(e) triangles satisfying Theorem 1. The boolean is false if e
// is not an edge of the current graph.
func (te *TrackedEngine) CoreTriangles(e graph.Edge) ([]graph.Triangle, bool) {
	set, ok := te.cores[e]
	if !ok {
		return nil, false
	}
	out := make([]graph.Triangle, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.C < b.C
	})
	return out, true
}

// CheckInvariants verifies the membership contract (I1 and I2 above) for
// every edge, returning the first violation found. Tests call this after
// randomized churn.
func (te *TrackedEngine) CheckInvariants() error {
	if len(te.cores) != len(te.Engine.kappa) {
		return fmt.Errorf("membership tracks %d edges, engine has %d", len(te.cores), len(te.Engine.kappa))
	}
	for e, set := range te.cores {
		k := te.Engine.kappa[e]
		if int32(len(set)) != k {
			return fmt.Errorf("edge %v: |core| = %d, κ = %d", e, len(set), k)
		}
		for t := range set {
			if !t.HasEdge(e) {
				return fmt.Errorf("edge %v: witness %v does not contain it", e, t)
			}
			for _, oe := range t.Edges() {
				if !te.Engine.g.HasEdgeE(oe) {
					return fmt.Errorf("edge %v: witness %v uses absent edge %v", e, t, oe)
				}
				if te.Engine.kappa[oe] < k {
					return fmt.Errorf("edge %v: witness %v violates Theorem 1 via %v (κ %d < %d)",
						e, t, oe, te.Engine.kappa[oe], k)
				}
			}
			if !te.usedBy[t][e] {
				return fmt.Errorf("edge %v: witness %v missing from reverse index", e, t)
			}
		}
	}
	return nil
}
