package dynamic

// Region partitioning for ApplyBatchParallel.
//
// After the pre-pass has resolved a canonicalized batch against the
// substrate (every surviving insertion structurally added, every
// surviving deletion identified by dense edge id), the batch's ops are
// grouped into affected regions that can be κ-maintained independently.
// The grouping key is the triangle ball of an op's edge on G_max — the
// graph containing the union of the pre- and post-batch edge sets: the
// edge itself plus the co-edges of every combinatorial triangle through
// it. By the containment property of incremental truss/triangle-core
// maintenance (Zhou et al.), an op's κ changes propagate only through
// triangle-connected chains starting at its triangles, so two ops whose
// balls are disjoint start their cascades from disjoint frontiers.
//
// The ball is a 1-hop heuristic, not the full triangle-connected closure:
// a cascade can run past the first ball into territory another region
// also reaches. That is deliberate — computing exact triangle-connected
// components would cost more than the batch itself on dense graphs — and
// safe, because the coordinator validates every region's recorded read
// set against earlier-merged writes at the epoch barrier and demotes any
// overlap to the serialized conflict suffix (parallel.go). Partitioning
// only has to make overlap rare, never impossible.
//
// Two op-level prunes keep trivially-independent ops out of real regions,
// both exact (not heuristic):
//
//   - an insertion whose edge closes no triangle in G_max has support 0
//     there, and support in any subgraph is no larger, so by the support
//     upper bound κ(e) ≤ supp(e) (Burkhardt et al.) the new edge lands at
//     κ = 0 and, participating in no triangle, moves nothing else;
//   - a deletion whose edge has κ = 0 in the pre-batch state only loses
//     triangles with μ = min(κ of the 3 edges) = 0, and by the paper's
//     Rule 0 a μ = 0 triangle change moves no κ at all.
//
// Pruned ops skip ball enumeration and stamp only their own edge, so they
// coalesce with a region only when that region's ball contains the edge
// itself. Their execution still records every κ and liveness read, so the
// barrier validation covers them like any other op.
type resolvedOp struct {
	eid int32
	del bool
}

// partition groups resolved ops into regions by ball overlap using a
// union-find over op indices, returning the number of regions. Region ids
// are assigned in ascending order of each group's smallest op index, and
// each region's op list preserves canonical batch order — both facts are
// what make the epoch's merge order (and so the final state) independent
// of worker count.
func (p *parScratch) partition(en *Engine, resolved []resolvedOp) int {
	n := len(resolved)
	p.ufParent = p.ufParent[:0]
	for i := 0; i < n; i++ {
		p.ufParent = append(p.ufParent, int32(i)) //trikcheck:checked op index bounded by batch length
	}
	p.ballGen++
	if p.ballGen == 0 {
		for i := range p.ballMark {
			p.ballMark[i] = 0
		}
		p.ballGen = 1
	}
	for len(p.ballMark) < en.d.EdgeCap() {
		p.ballMark = append(p.ballMark, 0)
		p.ballOp = append(p.ballOp, 0)
	}

	for k, r := range resolved {
		k32 := int32(k) //trikcheck:checked op index bounded by batch length
		p.stamp(r.eid, k32)
		if r.del && en.kappa[r.eid] == 0 {
			continue // κ=0 deletion: exact prune, own edge only
		}
		u, v := en.d.EdgeEndpoints(r.eid)
		en.d.ForEachTriangleEdgeD(u, v, func(_, e1, e2 int32) bool {
			p.stamp(e1, k32)
			p.stamp(e2, k32)
			return true
		})
		// A support-0 insertion never enters the loop body: its ball is
		// empty beyond the edge itself, which is the exact prune above.
	}

	// Assign region ids ascending by smallest member op index: the root of
	// every union-find component is its minimum (union attaches the larger
	// root under the smaller), and op indexes are scanned in order.
	p.regionID = p.regionID[:0]
	nRegions := 0
	for k := 0; k < n; k++ {
		root := p.find(int32(k)) //trikcheck:checked op index bounded by batch length
		if int(root) == k {
			p.regionID = append(p.regionID, int32(nRegions)) //trikcheck:checked region count ≤ op count
			nRegions++
		} else {
			p.regionID = append(p.regionID, p.regionID[root])
		}
	}

	for len(p.regions) < nRegions {
		p.regions = append(p.regions, region{})
	}
	for i := 0; i < nRegions; i++ {
		rg := &p.regions[i]
		rg.ops = rg.ops[:0]
		rg.reads = rg.reads[:0]
		rg.writes = rg.writes[:0]
		rg.vals = rg.vals[:0]
		rg.stats = Stats{}
	}
	for k, r := range resolved {
		rg := &p.regions[p.regionID[k]]
		rg.ops = append(rg.ops, r)
	}
	return nRegions
}

// stamp records that op k's ball contains edge e, unioning k with any op
// that stamped e earlier.
func (p *parScratch) stamp(e, k int32) {
	if p.ballMark[e] == p.ballGen {
		p.union(p.ballOp[e], k)
		return
	}
	p.ballMark[e] = p.ballGen
	p.ballOp[e] = k
}

// find returns the root of op x with path halving.
func (p *parScratch) find(x int32) int32 {
	for p.ufParent[x] != x {
		p.ufParent[x] = p.ufParent[p.ufParent[x]]
		x = p.ufParent[x]
	}
	return x
}

// union merges the components of a and b, keeping the smaller root — so a
// component's root is always its minimum op index.
func (p *parScratch) union(a, b int32) {
	ra, rb := p.find(a), p.find(b)
	if ra == rb {
		return
	}
	if ra < rb {
		p.ufParent[rb] = ra
	} else {
		p.ufParent[ra] = rb
	}
}
