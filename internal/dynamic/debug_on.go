//go:build trikdebug

package dynamic

// debugChecks enables the invariant assertions after every public
// mutating engine operation. Build (or test) with -tags trikdebug to turn
// the suite into a deep consistency oracle: `make debugrace`.
const debugChecks = true
