package dynamic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"trikcore/internal/core"
	"trikcore/internal/graph"
)

func randomGraph(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Vertex(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(graph.Vertex(i), graph.Vertex(j))
			}
		}
	}
	return g
}

// assertMatchesStatic recomputes κ from scratch on the engine's current
// graph and fails the test on any disagreement.
func assertMatchesStatic(t *testing.T, en *Engine, context string) {
	t.Helper()
	d := core.Decompose(en.Graph())
	want := d.EdgeKappas()
	got := en.EdgeKappas()
	if len(got) != len(want) {
		t.Fatalf("%s: engine tracks %d edges, graph has %d", context, len(got), len(want))
	}
	for e, k := range want {
		if got[e] != k {
			t.Fatalf("%s: κ(%v) = %d, recompute says %d", context, e, got[e], k)
		}
	}
}

// TestFigure3Example reproduces the worked example of Algorithm 2
// (Figure 3): adding edge AC to the solid graph creates triangles ABC and
// ACE; after the update every edge has κ = 1.
func TestFigure3Example(t *testing.T) {
	// A=1 B=2 C=3 D=4 E=5 F=6.
	g := graph.FromPairs(
		1, 2, // AB κ=0
		2, 3, // BC κ=0
		1, 5, // AE κ=1
		1, 6, // AF κ=1
		5, 6, // EF κ=1
		3, 4, // CD κ=1
		3, 5, // CE κ=1
		4, 5, // DE κ=1
	)
	en := NewEngine(g)
	// Verify the paper's stated initial κ values.
	wantInit := map[graph.Edge]int32{
		graph.NewEdge(1, 2): 0, graph.NewEdge(2, 3): 0,
		graph.NewEdge(1, 5): 1, graph.NewEdge(1, 6): 1, graph.NewEdge(5, 6): 1,
		graph.NewEdge(3, 4): 1, graph.NewEdge(3, 5): 1, graph.NewEdge(4, 5): 1,
	}
	for e, k := range wantInit {
		if got, _ := en.Kappa(e); got != k {
			t.Fatalf("initial κ(%v) = %d, want %d", e, got, k)
		}
	}
	if !en.InsertEdge(1, 3) { // add AC
		t.Fatal("InsertEdge(A,C) returned false")
	}
	for _, e := range en.Graph().Edges() {
		if got, _ := en.Kappa(e); got != 1 {
			t.Fatalf("after adding AC: κ(%v) = %d, want 1", e, got)
		}
	}
	assertMatchesStatic(t, en, "figure 3")
}

func TestInsertDuplicateAndDeleteAbsent(t *testing.T) {
	en := NewEngine(graph.FromPairs(1, 2))
	if en.InsertEdge(1, 2) {
		t.Fatal("inserting existing edge returned true")
	}
	if en.DeleteEdge(1, 3) {
		t.Fatal("deleting absent edge returned true")
	}
	if en.Stats().Insertions != 0 || en.Stats().Deletions != 0 {
		t.Fatal("no-op updates must not count in stats")
	}
}

func TestInsertSelfLoopPanics(t *testing.T) {
	en := NewEngine(graph.New())
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop insert did not panic")
		}
	}()
	en.InsertEdge(2, 2)
}

func TestBuildCliqueIncrementally(t *testing.T) {
	en := NewEngine(graph.New())
	n := graph.Vertex(8)
	for i := graph.Vertex(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			en.InsertEdge(i, j)
		}
	}
	for _, e := range en.Graph().Edges() {
		if k, _ := en.Kappa(e); k != int32(n)-2 {
			t.Fatalf("κ(%v) = %d, want %d in K%d", e, k, n-2, n)
		}
	}
	assertMatchesStatic(t, en, "incremental K8")
}

func TestDismantleCliqueIncrementally(t *testing.T) {
	g := graph.New()
	for i := graph.Vertex(0); i < 7; i++ {
		for j := i + 1; j < 7; j++ {
			g.AddEdge(i, j)
		}
	}
	en := NewEngine(g)
	for _, e := range g.Edges() {
		en.DeleteEdgeE(e)
		assertMatchesStatic(t, en, "dismantle K7")
	}
	if en.Graph().NumEdges() != 0 {
		t.Fatal("graph not empty after dismantling")
	}
}

func TestQuickRandomChurnMatchesStatic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(14, 0.3, seed)
		en := NewEngine(g)
		for step := 0; step < 40; step++ {
			u := graph.Vertex(rng.Intn(14))
			v := graph.Vertex(rng.Intn(14))
			if u == v {
				continue
			}
			if en.Graph().HasEdge(u, v) {
				en.DeleteEdge(u, v)
			} else {
				en.InsertEdge(u, v)
			}
			want := core.Decompose(en.Graph()).EdgeKappas()
			got := en.EdgeKappas()
			if len(got) != len(want) {
				return false
			}
			for e, k := range want {
				if got[e] != k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDenseChurnMatchesStatic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		g := randomGraph(10, 0.65, seed)
		en := NewEngine(g)
		for step := 0; step < 30; step++ {
			u := graph.Vertex(rng.Intn(10))
			v := graph.Vertex(rng.Intn(10))
			if u == v {
				continue
			}
			if en.Graph().HasEdge(u, v) {
				en.DeleteEdge(u, v)
			} else {
				en.InsertEdge(u, v)
			}
			want := core.Decompose(en.Graph()).EdgeKappas()
			for e, k := range want {
				if got, _ := en.Kappa(e); int(got) != k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertThenDeleteRestoresKappa(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(16, 0.25, seed)
		en := NewEngine(g)
		before := en.EdgeKappas()
		// Pick a non-edge, insert it, delete it again.
		for tries := 0; tries < 50; tries++ {
			u := graph.Vertex(rng.Intn(16))
			v := graph.Vertex(rng.Intn(16))
			if u == v || en.Graph().HasEdge(u, v) {
				continue
			}
			en.InsertEdge(u, v)
			en.DeleteEdge(u, v)
			break
		}
		after := en.EdgeKappas()
		if len(before) != len(after) {
			return false
		}
		for e, k := range before {
			if after[e] != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveVertexMatchesStatic(t *testing.T) {
	g := randomGraph(18, 0.3, 5)
	en := NewEngine(g)
	if !en.RemoveVertex(7) {
		t.Fatal("RemoveVertex(7) returned false")
	}
	if en.RemoveVertex(7) {
		t.Fatal("double RemoveVertex returned true")
	}
	if en.Graph().HasVertex(7) {
		t.Fatal("vertex still present")
	}
	assertMatchesStatic(t, en, "remove vertex")
}

func TestAddVertexIsolated(t *testing.T) {
	en := NewEngine(graph.New())
	if !en.AddVertex(3) || en.AddVertex(3) {
		t.Fatal("AddVertex bookkeeping wrong")
	}
	if en.Graph().NumVertices() != 1 {
		t.Fatal("vertex not added")
	}
}

func TestApplyDiffMatchesStatic(t *testing.T) {
	old := randomGraph(20, 0.25, 1)
	new := randomGraph(22, 0.22, 2)
	en := NewEngine(old)
	en.ApplyDiff(graph.DiffGraphs(old, new))
	got := en.Graph()
	if got.NumEdges() != new.NumEdges() {
		t.Fatalf("after diff: %d edges, want %d", got.NumEdges(), new.NumEdges())
	}
	assertMatchesStatic(t, en, "apply diff")
}

// TestRule0SingleTriangle verifies the paper's Rule 0 on single-triangle
// changes: closing one triangle changes κ only on edges whose κ equals the
// triangle's minimum μ, and by exactly 1.
func TestRule0SingleTriangle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(14, 0.3, seed)
		// Find a non-edge whose endpoints have exactly one common
		// neighbor, so inserting it adds exactly one triangle.
		var u, v graph.Vertex
		found := false
		for tries := 0; tries < 200 && !found; tries++ {
			u = graph.Vertex(rng.Intn(14))
			v = graph.Vertex(rng.Intn(14))
			if u != v && !g.HasEdge(u, v) && g.Support(u, v) == 1 {
				found = true
			}
		}
		if !found {
			return true // vacuous for this seed
		}
		en := NewEngine(g)
		before := en.EdgeKappas()
		en.InsertEdge(u, v)
		w := g.CommonNeighbors(u, v)[0]
		tri := graph.NewTriangle(u, v, w)
		// μ in the *post-insertion* graph before the triangle activates:
		// the new edge has κ=0 and the two old edges keep their κ.
		mu := 0
		if k := before[graph.NewEdge(u, w)]; true {
			mu = k
			if k2 := before[graph.NewEdge(v, w)]; k2 < mu {
				mu = k2
			}
			if 0 < mu {
				mu = 0 // the new edge starts at κ=0
			}
		}
		after := en.EdgeKappas()
		for e, k := range after {
			prev, existed := before[e]
			if !existed {
				prev = 0 // the new edge
			}
			d := k - prev
			if d != 0 {
				if d != 1 {
					return false
				}
				if prev != mu {
					return false
				}
				if !tri.HasEdge(e) && !existed {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsProgress(t *testing.T) {
	en := NewEngine(graph.New())
	en.InsertEdge(1, 2)
	en.InsertEdge(2, 3)
	en.InsertEdge(1, 3)
	s := en.Stats()
	if s.Insertions != 3 || s.TrianglesProcessed != 1 || s.Promotions == 0 {
		t.Fatalf("stats = %+v", s)
	}
	en.DeleteEdge(1, 3)
	s = en.Stats()
	if s.Deletions != 1 || s.Demotions == 0 {
		t.Fatalf("stats after delete = %+v", s)
	}
	if en.MaxKappa() != 0 {
		t.Fatalf("MaxKappa = %d, want 0", en.MaxKappa())
	}
}

func TestMaxKappaTracksClique(t *testing.T) {
	en := NewEngine(graph.New())
	for i := graph.Vertex(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			en.InsertEdge(i, j)
		}
	}
	if en.MaxKappa() != 4 {
		t.Fatalf("MaxKappa = %d, want 4 for K6", en.MaxKappa())
	}
}
