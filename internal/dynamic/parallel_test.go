package dynamic

import (
	"math/rand"
	"reflect"
	"testing"

	"trikcore/internal/gen"
	"trikcore/internal/graph"
)

// randomBatch builds a mixed batch over g's current state: del deletions
// of present edges and ins insertions of absent (or duplicate-present)
// edges, drawn from a vertex universe of size n.
func randomBatch(rng *rand.Rand, g *graph.Graph, n, ins, del int) []EdgeOp {
	var ops []EdgeOp
	edges := g.Edges()
	for i := 0; i < del && len(edges) > 0; i++ {
		e := edges[rng.Intn(len(edges))]
		ops = append(ops, EdgeOp{U: e.U, V: e.V, Del: true})
	}
	for i := 0; i < ins; i++ {
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex(rng.Intn(n))
		if u == v {
			continue
		}
		ops = append(ops, EdgeOp{U: u, V: v})
	}
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return ops
}

// TestApplyBatchParallelEquivalence churns two engines over a
// triangle-dense graph with identical mixed batches — one through
// ApplyBatch, one through ApplyBatchParallel — and requires identical
// κ assignments, counts and version movement after every epoch. Worker
// counts above the region count and scattered plus clustered batches
// exercise region execution, validation and the conflict suffix.
func TestApplyBatchParallelEquivalence(t *testing.T) {
	for _, workers := range []int{2, 3, 8} {
		rng := rand.New(rand.NewSource(42))
		g := gen.PowerLawCluster(300, 4, 0.6, 7)
		ser := NewEngine(g)
		par := NewEngine(g)
		for round := 0; round < 12; round++ {
			ops := randomBatch(rng, ser.Graph(), 320, 24, 12)
			a1, r1 := ser.ApplyBatch(ops)
			a2, r2 := par.ApplyBatchParallel(ops, workers)
			if a1 != a2 || r1 != r2 {
				t.Fatalf("workers=%d round %d: counts (%d,%d) parallel vs (%d,%d) serial",
					workers, round, a2, r2, a1, r1)
			}
			if ser.Version() != par.Version() {
				t.Fatalf("workers=%d round %d: version %d parallel vs %d serial",
					workers, round, par.Version(), ser.Version())
			}
			if ser.MaxKappa() != par.MaxKappa() {
				t.Fatalf("workers=%d round %d: maxκ %d parallel vs %d serial",
					workers, round, par.MaxKappa(), ser.MaxKappa())
			}
			want := ser.EdgeKappas()
			got := par.EdgeKappas()
			if !reflect.DeepEqual(want, got) {
				for e, k := range want {
					if got[e] != k {
						t.Fatalf("workers=%d round %d: κ(%v) = %d parallel, %d serial",
							workers, round, e, got[e], k)
					}
				}
				t.Fatalf("workers=%d round %d: parallel has %d edges, serial %d",
					workers, round, len(got), len(want))
			}
			if err := par.CheckInvariants(); err != nil {
				t.Fatalf("workers=%d round %d: %v", workers, round, err)
			}
		}
		if err := par.VerifyConsistency(); err != nil {
			t.Fatalf("workers=%d: final consistency: %v", workers, err)
		}
	}
}

// TestApplyBatchParallelDeterministic applies the same batch sequence at
// several worker counts and requires byte-identical engine state:
// histogram, maxκ, version and the full κ assignment must not depend on
// scheduling.
func TestApplyBatchParallelDeterministic(t *testing.T) {
	run := func(workers int) *Engine {
		rng := rand.New(rand.NewSource(99))
		en := NewEngine(gen.PowerLawCluster(200, 5, 0.5, 3))
		for round := 0; round < 8; round++ {
			ops := randomBatch(rng, en.Graph(), 220, 20, 10)
			en.ApplyBatchParallel(ops, workers)
		}
		return en
	}
	base := run(2)
	baseKappas := base.EdgeKappas()
	for _, workers := range []int{1, 4, 8} {
		en := run(workers)
		if en.Version() != base.Version() {
			t.Fatalf("workers=%d: version %d, workers=2 got %d", workers, en.Version(), base.Version())
		}
		if en.MaxKappa() != base.MaxKappa() {
			t.Fatalf("workers=%d: maxκ %d, workers=2 got %d", workers, en.MaxKappa(), base.MaxKappa())
		}
		if !reflect.DeepEqual(en.KappaHistogram(), base.KappaHistogram()) {
			t.Fatalf("workers=%d: histogram %v, workers=2 got %v",
				workers, en.KappaHistogram(), base.KappaHistogram())
		}
		if !reflect.DeepEqual(en.EdgeKappas(), baseKappas) {
			t.Fatalf("workers=%d: κ assignment differs from workers=2", workers)
		}
	}
}

// TestApplyBatchParallelTracked runs parallel batches through a
// TrackedEngine and checks the witness invariants after every epoch: the
// observer only sees net-effect transitions at merge time, and membership
// repair must still converge from those.
func TestApplyBatchParallelTracked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := gen.PowerLawCluster(120, 4, 0.6, 11)
	te := NewTrackedEngine(g)
	ser := NewEngine(g)
	for round := 0; round < 10; round++ {
		ops := randomBatch(rng, ser.Graph(), 140, 16, 8)
		ser.ApplyBatch(ops)
		te.ApplyBatchParallel(ops, 4)
		if err := te.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !reflect.DeepEqual(te.EdgeKappas(), ser.EdgeKappas()) {
			t.Fatalf("round %d: tracked parallel κ diverged from serial", round)
		}
	}
}

// TestApplyBatchParallelEdgeCases pins the boundary behavior: empty
// batches, all-no-op batches, self-canceling batches and workers=1
// delegation must leave counts and the version exactly as ApplyBatch
// would.
func TestApplyBatchParallelEdgeCases(t *testing.T) {
	en := NewEngine(gen.ErdosRenyi(30, 60, 5))
	v0 := en.Version()
	if a, r := en.ApplyBatchParallel(nil, 4); a != 0 || r != 0 {
		t.Fatalf("empty batch: (%d,%d)", a, r)
	}
	// Deleting absent edges and re-inserting present ones is a no-op.
	var noops []EdgeOp
	en.Graph().ForEachEdge(func(e graph.Edge) bool {
		noops = append(noops, EdgeOp{U: e.U, V: e.V})
		return len(noops) < 5
	})
	noops = append(noops, EdgeOp{U: 900, V: 901, Del: true})
	if a, r := en.ApplyBatchParallel(noops, 4); a != 0 || r != 0 {
		t.Fatalf("no-op batch: (%d,%d)", a, r)
	}
	// Insert-then-delete of an absent edge cancels to nothing.
	cancel := []EdgeOp{{U: 500, V: 501}, {U: 500, V: 501, Del: true}}
	if a, r := en.ApplyBatchParallel(cancel, 4); a != 0 || r != 0 {
		t.Fatalf("self-canceling batch: (%d,%d)", a, r)
	}
	if en.Version() != v0 {
		t.Fatalf("version moved on no-op batches: %d → %d", v0, en.Version())
	}
	if a, r := en.ApplyBatchParallel([]EdgeOp{{U: 500, V: 501}}, 1); a != 1 || r != 0 {
		t.Fatalf("workers=1 insert: (%d,%d)", a, r)
	}
	if en.Version() != v0+1 {
		t.Fatalf("version after effective batch: %d, want %d", en.Version(), v0+1)
	}
	if err := en.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}
