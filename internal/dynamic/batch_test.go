package dynamic

import (
	"math/rand"
	"reflect"
	"testing"

	"trikcore/internal/core"
	"trikcore/internal/graph"
)

// TestApplyBatchMatchesSequential drives two engines from the same seed
// graph through randomized op streams — one per-op, one batched — and
// checks κ agreement with each other and with a from-scratch
// decomposition after every batch. Batches deliberately contain duplicate
// and conflicting ops on the same edge.
func TestApplyBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(25, 0.25, 17)
	seq := NewEngine(g)
	bat := NewEngine(g)
	const nv = 30
	for round := 0; round < 40; round++ {
		nops := 1 + rng.Intn(12)
		ops := make([]EdgeOp, 0, nops)
		for i := 0; i < nops; i++ {
			u := graph.Vertex(rng.Intn(nv))
			v := graph.Vertex(rng.Intn(nv))
			if u == v {
				continue
			}
			// Resolve the toggle against the sequential engine's state as
			// it would be mid-stream, conflicts and all.
			ops = append(ops, EdgeOp{U: u, V: v, Del: seq.HasEdge(u, v)})
			if ops[len(ops)-1].Del {
				seq.DeleteEdge(u, v)
			} else {
				seq.InsertEdge(u, v)
			}
		}
		bat.ApplyBatch(ops)
		if got, want := bat.EdgeKappas(), seq.EdgeKappas(); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: batched κ diverges from sequential\nbatched: %v\nsequential: %v", round, got, want)
		}
		if err := bat.VerifyConsistency(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestApplyBatchCounts pins the net-effect counting contract.
func TestApplyBatchCounts(t *testing.T) {
	en := NewEngine(graph.FromPairs(1, 2, 2, 3))
	added, removed := en.ApplyBatch([]EdgeOp{
		{U: 3, V: 1},            // new edge
		{U: 2, V: 1},            // duplicate of existing edge: no-op
		{U: 1, V: 2, Del: true}, // conflicts with the line above; later op wins
		{U: 7, V: 8},            // new edge
		{U: 8, V: 7, Del: true}, // cancels the insert above (absent before batch)
	})
	if added != 1 || removed != 1 {
		t.Fatalf("added=%d removed=%d, want 1, 1", added, removed)
	}
	if en.HasEdge(1, 2) || !en.HasEdge(1, 3) || en.HasEdge(7, 8) {
		t.Fatal("final edge set wrong")
	}
	if err := en.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	// Empty batch is a no-op.
	if a, r := en.ApplyBatch(nil); a != 0 || r != 0 {
		t.Fatalf("empty batch reported %d/%d", a, r)
	}
}

// TestApplyBatchSelfLoopPanics pins the self-loop contract shared with
// InsertEdge.
func TestApplyBatchSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop op did not panic")
		}
	}()
	NewEngine(graph.New()).ApplyBatch([]EdgeOp{{U: 4, V: 4}})
}

// TestMaintainedAggregatesTrackRecompute checks MaxKappa and
// KappaHistogram stay correct through growth and collapse of a dense
// clique — the maintained-histogram satellite.
func TestMaintainedAggregatesTrackRecompute(t *testing.T) {
	en := NewEngine(graph.New())
	check := func() {
		t.Helper()
		d := core.Decompose(en.Graph())
		if en.MaxKappa() != d.MaxKappa {
			t.Fatalf("MaxKappa = %d, recompute says %d", en.MaxKappa(), d.MaxKappa)
		}
		if got, want := en.KappaHistogram(), d.KappaHistogram(); !reflect.DeepEqual(got, want) {
			t.Fatalf("histogram = %v, recompute says %v", got, want)
		}
	}
	check() // empty graph: MaxKappa 0, empty histogram
	// Grow K7 edge by edge, checking aggregates at every step.
	for i := int32(0); i < 7; i++ {
		for j := i + 1; j < 7; j++ {
			en.InsertEdge(i, j)
			check()
		}
	}
	if en.MaxKappa() != 5 {
		t.Fatalf("K7 MaxKappa = %d, want 5", en.MaxKappa())
	}
	// Tear it down edge by edge; MaxKappa must shrink back to 0.
	for i := int32(0); i < 7; i++ {
		for j := i + 1; j < 7; j++ {
			en.DeleteEdge(i, j)
			check()
		}
	}
	if en.MaxKappa() != 0 {
		t.Fatalf("empty MaxKappa = %d, want 0", en.MaxKappa())
	}
}

// TestTrackedApplyBatch checks the tracked engine repairs membership once
// per batch and keeps its invariants across conflicting batched ops.
func TestTrackedApplyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	te := NewTrackedEngine(randomGraph(18, 0.3, 33))
	const nv = 22
	for round := 0; round < 25; round++ {
		nops := 1 + rng.Intn(10)
		ops := make([]EdgeOp, 0, nops)
		for i := 0; i < nops; i++ {
			u := graph.Vertex(rng.Intn(nv))
			v := graph.Vertex(rng.Intn(nv))
			if u == v {
				continue
			}
			ops = append(ops, EdgeOp{U: u, V: v, Del: rng.Intn(2) == 0})
		}
		te.ApplyBatch(ops)
		if err := te.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := te.VerifyConsistency(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}
