package dynamic

import (
	"fmt"
	"slices"
	"sort"

	"trikcore/internal/core"
	"trikcore/internal/graph"
)

// MaxCoreOf returns the maximum Triangle K-Core of edge e in the current
// graph — the triangle-connected component of e among edges with
// κ ≥ κ(e) — computed from the engine's live κ values without re-running
// Algorithm 1. The boolean is false if e is not a current edge.
func (en *Engine) MaxCoreOf(e graph.Edge) (*graph.Graph, bool) {
	eid := en.d.EdgeIDV(e.U, e.V)
	if eid < 0 {
		return nil, false
	}
	sub := graph.New()
	for _, ce := range en.triangleComponent(eid, en.kappa[eid], make([]bool, en.d.EdgeCap())) {
		sub.AddEdgeE(ce)
	}
	return sub, true
}

// Communities returns the triangle-connected components of the κ ≥ k
// subgraph under the engine's live κ values, each as a sorted edge list
// ordered by first edge — the dynamic counterpart of
// core.Decomposition.Communities.
func (en *Engine) Communities(k int32) [][]graph.Edge {
	type start struct {
		e   graph.Edge
		eid int32
	}
	var starts []start
	en.d.ForEachEdgeID(func(eid int32) bool {
		if en.kappa[eid] >= k {
			starts = append(starts, start{en.d.EdgeAt(eid), eid})
		}
		return true
	})
	sort.Slice(starts, func(i, j int) bool { return starts[i].e.Less(starts[j].e) })
	seen := make([]bool, en.d.EdgeCap())
	var comms [][]graph.Edge
	for _, s := range starts {
		if seen[s.eid] {
			continue
		}
		comms = append(comms, en.triangleComponent(s.eid, k, seen))
	}
	return comms
}

// triangleComponent returns the edges reachable from start through
// triangles whose three edges all carry κ ≥ k, sorted. Visited edges are
// marked in seen (indexed by dense edge id), which the caller owns.
func (en *Engine) triangleComponent(start int32, k int32, seen []bool) []graph.Edge {
	seen[start] = true
	queue := []int32{start}
	out := []graph.Edge{}
	for head := 0; head < len(queue); head++ {
		eid := queue[head]
		out = append(out, en.d.EdgeAt(eid))
		en.forEachActiveTriangleOn(eid, func(_, e1, e2 int32) bool {
			if en.kappa[e1] < k || en.kappa[e2] < k {
				return true
			}
			for _, nxt := range [2]int32{e1, e2} {
				if !seen[nxt] {
					seen[nxt] = true
					queue = append(queue, nxt)
				}
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// RuleOneWitness reconstructs a maximum Triangle K-Core witness for e —
// κ(e) triangles satisfying Theorem 1 — from nothing but the live κ
// values, the dynamic counterpart of the paper's Rule 1 ("if we do not
// store triangles...").
//
// The paper derives Rule 1 from processing-order timestamps and spends
// Algorithms 5–7's bookkeeping keeping them consistent. The timestamps
// are, however, redundant: Algorithm 1 processes edges in non-decreasing
// κ order, so any triangle containing an edge with κ < κ(e) is "processed
// early" and excluded, while among the remaining triangles — those whose
// other edges all carry κ ≥ κ(e) — any κ(e) of them form a valid witness
// (they are exactly the triangles of e inside the κ(e)-core subgraph).
// Selecting the first κ(e) such triangles by third vertex therefore
// implements Rule 1 without any maintained order state; see DESIGN.md
// §3.2. TrackedEngine additionally keeps these sets materialized.
func (en *Engine) RuleOneWitness(e graph.Edge) ([]graph.Triangle, bool) {
	eid := en.d.EdgeIDV(e.U, e.V)
	if eid < 0 {
		return nil, false
	}
	k := en.kappa[eid]
	var thirds []graph.Vertex
	en.forEachActiveTriangleOn(eid, func(w, e1, e2 int32) bool {
		if en.kappa[e1] >= k && en.kappa[e2] >= k {
			thirds = append(thirds, en.d.OrigOf(w))
		}
		return true
	})
	slices.Sort(thirds)
	out := make([]graph.Triangle, 0, k)
	for _, w := range thirds {
		if int32(len(out)) == k { //trikcheck:checked out holds at most k triangles
			break
		}
		out = append(out, graph.NewTriangle(e.U, e.V, w))
	}
	return out, true
}

// CoCliqueSizes returns the plotting quantity κ(e)+2 for every live edge
// (Algorithm 3 step 2, over maintained values).
func (en *Engine) CoCliqueSizes() map[graph.Edge]int {
	out := make(map[graph.Edge]int, en.d.NumEdges())
	en.d.ForEachEdgeID(func(eid int32) bool {
		out[en.d.EdgeAt(eid)] = int(en.kappa[eid]) + 2
		return true
	})
	return out
}

// KappaHistogram returns, for each live κ value, the number of edges
// carrying it — served from the maintained histogram, O(maxκ).
func (en *Engine) KappaHistogram() map[int32]int {
	h := make(map[int32]int, en.maxK+1)
	for k, n := range en.hist {
		if n > 0 {
			h[int32(k)] = n //trikcheck:checked k indexes hist, whose length is maxK+1 ≤ int32
		}
	}
	return h
}

// VerifyConsistency recomputes the decomposition from scratch on the
// current graph and returns an error describing the first disagreement
// with the maintained κ values or histogram (nil when fully consistent).
// It is a diagnostic for embedders; the test suite uses full recomputation
// externally in the same way.
func (en *Engine) VerifyConsistency() error {
	d := core.Decompose(en.d.Materialize())
	if got, want := en.d.NumEdges(), d.S.NumEdges(); got != want {
		return fmt.Errorf("dynamic: engine tracks %d edges, graph has %d", got, want)
	}
	for i, k := range d.Kappa {
		e := d.S.EdgeAt(int32(i)) //trikcheck:checked i indexes Kappa, bounded to int32 by FreezeStatic
		eid := en.d.EdgeIDV(e.U, e.V)
		if eid < 0 {
			return fmt.Errorf("dynamic: edge %v missing from substrate", e)
		}
		if got := en.kappa[eid]; got != k {
			return fmt.Errorf("dynamic: κ(%v) = %d, recompute says %d", e, got, k)
		}
	}
	if en.maxK != d.MaxKappa {
		return fmt.Errorf("dynamic: maintained maxκ = %d, recompute says %d", en.maxK, d.MaxKappa)
	}
	want := d.KappaHistogram()
	for k, n := range en.KappaHistogram() {
		if want[k] != n {
			return fmt.Errorf("dynamic: histogram[%d] = %d, recompute says %d", k, n, want[k])
		}
	}
	return nil
}
