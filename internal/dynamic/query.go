package dynamic

import (
	"fmt"
	"sort"

	"trikcore/internal/core"
	"trikcore/internal/graph"
)

// MaxCoreOf returns the maximum Triangle K-Core of edge e in the current
// graph — the triangle-connected component of e among edges with
// κ ≥ κ(e) — computed from the engine's live κ values without re-running
// Algorithm 1. The boolean is false if e is not a current edge.
func (en *Engine) MaxCoreOf(e graph.Edge) (*graph.Graph, bool) {
	k, ok := en.kappa[e]
	if !ok {
		return nil, false
	}
	sub := graph.New()
	for _, ce := range en.triangleComponent(e, k) {
		sub.AddEdgeE(ce)
	}
	return sub, true
}

// Communities returns the triangle-connected components of the κ ≥ k
// subgraph under the engine's live κ values, each as a sorted edge list
// ordered by first edge — the dynamic counterpart of
// core.Decomposition.Communities.
func (en *Engine) Communities(k int32) [][]graph.Edge {
	seen := make(map[graph.Edge]bool)
	var starts []graph.Edge
	for e, kv := range en.kappa {
		if kv >= k {
			starts = append(starts, e)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i].Less(starts[j]) })
	var comms [][]graph.Edge
	for _, s := range starts {
		if seen[s] {
			continue
		}
		comp := en.triangleComponent(s, k)
		for _, e := range comp {
			seen[e] = true
		}
		comms = append(comms, comp)
	}
	return comms
}

// triangleComponent returns the edges reachable from start through
// triangles whose three edges all carry κ ≥ k, sorted.
func (en *Engine) triangleComponent(start graph.Edge, k int32) []graph.Edge {
	seen := map[graph.Edge]bool{start: true}
	queue := []graph.Edge{start}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		en.g.ForEachTriangleEdge(e.U, e.V, func(w graph.Vertex, e1, e2 graph.Edge) bool {
			if en.kappa[e1] < k || en.kappa[e2] < k {
				return true
			}
			for _, nxt := range [2]graph.Edge{e1, e2} {
				if !seen[nxt] {
					seen[nxt] = true
					queue = append(queue, nxt)
				}
			}
			return true
		})
	}
	out := make([]graph.Edge, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// RuleOneWitness reconstructs a maximum Triangle K-Core witness for e —
// κ(e) triangles satisfying Theorem 1 — from nothing but the live κ
// values, the dynamic counterpart of the paper's Rule 1 ("if we do not
// store triangles...").
//
// The paper derives Rule 1 from processing-order timestamps and spends
// Algorithms 5–7's bookkeeping keeping them consistent. The timestamps
// are, however, redundant: Algorithm 1 processes edges in non-decreasing
// κ order, so any triangle containing an edge with κ < κ(e) is "processed
// early" and excluded, while among the remaining triangles — those whose
// other edges all carry κ ≥ κ(e) — any κ(e) of them form a valid witness
// (they are exactly the triangles of e inside the κ(e)-core subgraph).
// Selecting the first κ(e) such triangles by third vertex therefore
// implements Rule 1 without any maintained order state; see DESIGN.md
// §3.2. TrackedEngine additionally keeps these sets materialized.
func (en *Engine) RuleOneWitness(e graph.Edge) ([]graph.Triangle, bool) {
	k, ok := en.kappa[e]
	if !ok {
		return nil, false
	}
	out := make([]graph.Triangle, 0, k)
	for _, w := range en.g.CommonNeighbors(e.U, e.V) {
		if int32(len(out)) == k {
			break
		}
		e1, e2 := graph.NewEdge(e.U, w), graph.NewEdge(e.V, w)
		if en.kappa[e1] >= k && en.kappa[e2] >= k {
			out = append(out, graph.NewTriangle(e.U, e.V, w))
		}
	}
	return out, true
}

// CoCliqueSizes returns the plotting quantity κ(e)+2 for every live edge
// (Algorithm 3 step 2, over maintained values).
func (en *Engine) CoCliqueSizes() map[graph.Edge]int {
	out := make(map[graph.Edge]int, len(en.kappa))
	for e, k := range en.kappa {
		out[e] = int(k) + 2
	}
	return out
}

// KappaHistogram returns, for each live κ value, the number of edges
// carrying it.
func (en *Engine) KappaHistogram() map[int32]int {
	h := make(map[int32]int)
	for _, k := range en.kappa {
		h[k]++
	}
	return h
}

// VerifyConsistency recomputes the decomposition from scratch on the
// current graph and returns an error describing the first disagreement
// with the maintained κ values (nil when fully consistent). It is a
// diagnostic for embedders; the test suite uses full recomputation
// externally in the same way.
func (en *Engine) VerifyConsistency() error {
	d := core.Decompose(en.g)
	want := d.EdgeKappas()
	if len(want) != len(en.kappa) {
		return fmt.Errorf("dynamic: engine tracks %d edges, graph has %d", len(en.kappa), len(want))
	}
	for e, k := range want {
		if got := en.kappa[e]; int(got) != k {
			return fmt.Errorf("dynamic: κ(%v) = %d, recompute says %d", e, got, k)
		}
	}
	return nil
}
