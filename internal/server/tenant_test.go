package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"trikcore/internal/graph"
	"trikcore/internal/registry"
)

// mustStatus performs one request and asserts its status, returning the
// response body.
func mustStatus(t *testing.T, method, url, body string, want int) []byte {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != want {
		t.Fatalf("%s %s: status %d, want %d (body %q)", method, url, resp.StatusCode, want, data)
	}
	return data
}

func TestGraphLifecycleHTTP(t *testing.T) {
	_, ts := newTestServer(t)

	// Create with a seed body.
	body := mustStatus(t, http.MethodPost, ts.URL+"/g/alpha",
		`{"add":[[1,2],[2,3],[1,3]]}`, http.StatusCreated)
	var created GraphReply
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.Name != "alpha" || created.Edges != 3 || created.Vertices != 3 || created.MaxKappa != 1 {
		t.Fatalf("create reply = %+v", created)
	}

	// Listing shows both graphs, sorted.
	var list GraphsReply
	if code := getJSON(t, ts.URL+"/graphs", &list); code != 200 {
		t.Fatalf("graphs status %d", code)
	}
	if len(list.Graphs) != 2 || list.Graphs[0].Name != "alpha" || list.Graphs[1].Name != "default" {
		t.Fatalf("graphs = %+v", list.Graphs)
	}

	// The named graph serves the full endpoint surface.
	var stats StatsReply
	if code := getJSON(t, ts.URL+"/g/alpha/stats", &stats); code != 200 {
		t.Fatalf("alpha stats status %d", code)
	}
	if stats.Edges != 3 || stats.MaxKappa != 1 {
		t.Fatalf("alpha stats = %+v", stats)
	}

	// Conflicts and invalid names.
	mustStatus(t, http.MethodPost, ts.URL+"/g/alpha", "", http.StatusConflict)
	mustStatus(t, http.MethodPost, ts.URL+"/g/-bad-", "", http.StatusBadRequest)
	mustStatus(t, http.MethodPost, ts.URL+"/g/alpha2", `{"remove":[[1,2]]}`, http.StatusBadRequest)

	// Delete, then the name 404s and is reusable.
	mustStatus(t, http.MethodDelete, ts.URL+"/g/alpha", "", http.StatusOK)
	mustStatus(t, http.MethodDelete, ts.URL+"/g/alpha", "", http.StatusNotFound)
	if code := getJSON(t, ts.URL+"/g/alpha/stats", nil); code != http.StatusNotFound {
		t.Fatalf("deleted graph stats status %d", code)
	}
	mustStatus(t, http.MethodPost, ts.URL+"/g/alpha", "", http.StatusCreated)
}

// TestLegacyRoutesAliasDefaultGraph pins the compatibility contract: the
// unprefixed endpoints serve the default graph byte-identically to their
// /g/default twins.
func TestLegacyRoutesAliasDefaultGraph(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/stats", "/version", "/histogram", "/kappa?u=1&v=2",
		"/core?u=1&v=2", "/communities?k=3", "/plot.svg", "/plot.txt"} {
		_, legacy, _ := get(t, ts.URL+path, nil)
		sep := "/g/default" + path
		_, scoped, _ := get(t, ts.URL+sep, nil)
		if !bytes.Equal(legacy, scoped) {
			t.Fatalf("%s and %s differ:\n%q\nvs\n%q", path, sep, legacy, scoped)
		}
	}
	// A write through the legacy route is visible through the scoped one.
	postJSON(t, ts.URL+"/edges", `{"add":[[30,31]]}`)
	var rep KappaReply
	if code := getJSON(t, ts.URL+"/g/default/kappa?u=30&v=31", &rep); code != 200 {
		t.Fatalf("scoped kappa status %d", code)
	}
}

// TestGraphsAreIsolated mutates two graphs concurrently and checks that
// neither ever observes the other's edges.
func TestGraphsAreIsolated(t *testing.T) {
	_, ts := newTestServer(t)
	mustStatus(t, http.MethodPost, ts.URL+"/g/a", "", http.StatusCreated)
	mustStatus(t, http.MethodPost, ts.URL+"/g/b", "", http.StatusCreated)

	var wg sync.WaitGroup
	for _, gr := range []struct {
		name string
		base graph.Vertex
	}{{"a", 1000}, {"b", 2000}} {
		wg.Add(1)
		go func(name string, base graph.Vertex) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				b := base + graph.Vertex(3*i)
				body := strings.NewReader(
					`{"add":[[` + itoa(b) + `,` + itoa(b+1) + `],[` +
						itoa(b+1) + `,` + itoa(b+2) + `],[` + itoa(b) + `,` + itoa(b+2) + `]]}`)
				resp, err := http.Post(ts.URL+"/g/"+name+"/edges", "application/json", body)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(gr.name, gr.base)
	}
	wg.Wait()

	var sa, sb StatsReply
	getJSON(t, ts.URL+"/g/a/stats", &sa)
	getJSON(t, ts.URL+"/g/b/stats", &sb)
	if sa.Edges != 60 || sb.Edges != 60 {
		t.Fatalf("a=%d b=%d edges, want 60 each", sa.Edges, sb.Edges)
	}
	// No cross-contamination: b's vertex range is absent from a.
	if code := getJSON(t, ts.URL+"/g/a/kappa?u=2000&v=2001", nil); code != http.StatusNotFound {
		t.Fatalf("a sees b's edge: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/g/b/kappa?u=1000&v=1001", nil); code != http.StatusNotFound {
		t.Fatalf("b sees a's edge: status %d", code)
	}
}

func itoa(v graph.Vertex) string { return strconv.Itoa(int(v)) }

// TestErrorEnvelope pins the JSON error envelope byte-for-byte across
// every error path: handler rejections, unknown graphs, and the mux's
// own 404/405 fallbacks.
func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		method, path, body string
		status             int
		want               string
	}{
		{"GET", "/g/nope/stats", "", 404, `{"error":"unknown graph \"nope\"","status":404}` + "\n"},
		{"GET", "/no/such/route", "", 404, `{"error":"Not Found","status":404}` + "\n"},
		{"DELETE", "/stats", "", 405, `{"error":"Method Not Allowed","status":405}` + "\n"},
		{"GET", "/communities?k=0", "", 400, `{"error":"k must be a positive integer","status":400}` + "\n"},
		{"GET", "/dualview", "", 409, `{"error":"no snapshot bookmarked; POST /snapshot first","status":409}` + "\n"},
	}
	for _, tc := range cases {
		got := mustStatus(t, tc.method, ts.URL+tc.path, tc.body, tc.status)
		if string(got) != tc.want {
			t.Errorf("%s %s body = %q, want %q", tc.method, tc.path, got, tc.want)
		}
	}
}

func newQuotaServer(t *testing.T, q registry.Quotas, maxGraphs int) (*Server, *httptest.Server) {
	t.Helper()
	g := graph.New()
	g.AddEdge(1, 2)
	s := NewWith(g, Options{Quotas: q, MaxGraphs: maxGraphs})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestQuotaBreachHTTP(t *testing.T) {
	s, ts := newQuotaServer(t, registry.Quotas{MaxEdges: 3}, 0)

	// In-quota write succeeds.
	if code, _ := postJSON(t, ts.URL+"/edges", `{"add":[[2,3],[1,3]]}`); code != 200 {
		t.Fatalf("in-quota status %d", code)
	}
	v0 := s.defaultSpace().Acquire().Version

	// Over-quota write: structured 429, nothing mutated.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/edges",
		strings.NewReader(`{"add":[[4,5]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d (body %q)", resp.StatusCode, body)
	}
	var env struct {
		Error  string `json:"error"`
		Status int    `json:"status"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("non-JSON 429 body %q: %v", body, err)
	}
	if env.Status != 429 || !strings.Contains(env.Error, "quota exceeded") {
		t.Fatalf("envelope = %+v", env)
	}
	if v := s.defaultSpace().Acquire().Version; v != v0 {
		t.Fatalf("rejected write moved version %d -> %d", v0, v)
	}
	var stats StatsReply
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Edges != 3 {
		t.Fatalf("edges = %d after rejection, want 3", stats.Edges)
	}

	// Seed-quota breach on create is a 429 too.
	mustStatus(t, http.MethodPost, ts.URL+"/g/big",
		`{"add":[[1,2],[2,3],[3,4],[4,5]]}`, http.StatusTooManyRequests)
}

func TestBodySizeQuotaHTTP(t *testing.T) {
	_, ts := newQuotaServer(t, registry.Quotas{MaxBodyBytes: 64}, 0)
	big := `{"add":[` + strings.Repeat(`[1,2],`, 20) + `[1,2]]}`
	body := mustStatus(t, http.MethodPost, ts.URL+"/edges", big,
		http.StatusRequestEntityTooLarge)
	if !strings.Contains(string(body), `"status":413`) {
		t.Fatalf("413 body = %q", body)
	}
}

func TestMaxGraphsHTTP(t *testing.T) {
	_, ts := newQuotaServer(t, registry.Quotas{}, 2) // default + 1
	mustStatus(t, http.MethodPost, ts.URL+"/g/one", "", http.StatusCreated)
	body := mustStatus(t, http.MethodPost, ts.URL+"/g/two", "", http.StatusTooManyRequests)
	if !strings.Contains(string(body), "graph limit reached") {
		t.Fatalf("cap body = %q", body)
	}
}

func TestHealthzCountsGraphs(t *testing.T) {
	_, ts := newTestServer(t)
	mustStatus(t, http.MethodPost, ts.URL+"/g/extra", "", http.StatusCreated)
	var rep HealthzReply
	if code := getJSON(t, ts.URL+"/healthz", &rep); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if rep.Status != "ok" || rep.Graphs != 2 {
		t.Fatalf("healthz = %+v", rep)
	}
}
