package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"trikcore/internal/graph"
	"trikcore/internal/obs"
)

// newObsServer builds a fully instrumented server over the same graph as
// newTestServer, plus a structured-log sink.
func newObsServer(t *testing.T, pprofOn bool) (*Server, *httptest.Server, *obs.Registry, *bytes.Buffer) {
	t.Helper()
	g := graph.New()
	for i := graph.Vertex(1); i <= 5; i++ {
		for j := i + 1; j <= 5; j++ {
			g.AddEdge(i, j)
		}
	}
	g.AddEdge(10, 11)
	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	s := NewWith(g, Options{
		Registry: reg,
		Logger:   slog.New(slog.NewJSONHandler(&logBuf, nil)),
		Pprof:    pprofOn,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, reg, &logBuf
}

// fetch returns status and body.
func fetch(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// drive exercises read and write endpoints so every instrumented layer
// has recorded something.
func drive(t *testing.T, ts *httptest.Server) {
	t.Helper()
	for _, path := range []string{"/stats", "/histogram", "/plot.txt", "/plot.txt", "/kappa?u=1&v=2", "/kappa?u=1&v=99"} {
		fetch(t, ts.URL+path)
	}
	body := `{"add":[[20,21],[21,22],[20,22]],"remove":[[10,11]]}`
	resp, err := http.Post(ts.URL+"/edges", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts, _, _ := newObsServer(t, false)
	drive(t, ts)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ValidateExposition(body)
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	if samples == 0 {
		t.Fatal("empty exposition")
	}

	// The acceptance bar: at least 12 distinct series spanning the
	// engine, publisher and HTTP subsystems.
	series := map[string]bool{}
	bySubsystem := map[string]int{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		full := line[:strings.LastIndexByte(line, ' ')]
		series[full] = true
		for _, sub := range []string{"trikcore_engine_", "trikcore_publisher_", "trikcore_http_", "trikcore_core_"} {
			if strings.HasPrefix(name, sub) {
				bySubsystem[sub]++
			}
		}
	}
	if len(series) < 12 {
		t.Errorf("only %d distinct series, want >= 12", len(series))
	}
	for _, sub := range []string{"trikcore_engine_", "trikcore_publisher_", "trikcore_http_", "trikcore_core_"} {
		if bySubsystem[sub] == 0 {
			t.Errorf("no series from subsystem %s", sub)
		}
	}

	// Spot-check load-bearing series recorded by the drive.
	for _, want := range []string{
		`trikcore_http_requests_total{code="200",method="GET",path="/stats"} 1`,
		`trikcore_http_requests_total{code="404",method="GET",path="/kappa"} 1`,
		`trikcore_http_requests_total{code="200",method="GET",path="/kappa"} 1`,
		`trikcore_http_requests_total{code="200",method="POST",path="/edges"} 1`,
		`trikcore_engine_ops_applied_total{op="insert"} 3`,
		`trikcore_engine_ops_applied_total{op="delete"} 1`,
		`trikcore_publisher_memo_requests_total{artifact="plot_ascii",result="hit"} 1`,
		`trikcore_publisher_memo_requests_total{artifact="plot_ascii",result="miss"} 1`,
		`trikcore_core_phase_seconds_count{phase="peel"} 1`,
		"trikcore_http_in_flight_requests 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestMetricsDoubleScrapeDeterministic(t *testing.T) {
	_, ts, _, _ := newObsServer(t, true)
	drive(t, ts)
	// Scraping (and pprof index fetches) must not perturb the registry:
	// back-to-back scrapes of an idle server are byte-identical.
	_, first := fetch(t, ts.URL+"/metrics")
	fetch(t, ts.URL+"/debug/pprof/")
	_, second := fetch(t, ts.URL+"/metrics")
	if !bytes.Equal(first, second) {
		t.Fatalf("consecutive scrapes differ:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

func TestPprofOptIn(t *testing.T) {
	_, off, _, _ := newObsServer(t, false)
	if code, _ := fetch(t, off.URL+"/debug/pprof/"); code != 404 {
		t.Fatalf("pprof off: status %d, want 404", code)
	}
	_, on, _, _ := newObsServer(t, true)
	code, body := fetch(t, on.URL+"/debug/pprof/")
	if code != 200 || !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("pprof on: status %d", code)
	}
}

func TestUninstrumentedServerHasNoObsRoutes(t *testing.T) {
	_, ts := newTestServer(t)
	if code, _ := fetch(t, ts.URL+"/metrics"); code != 404 {
		t.Fatalf("/metrics on plain server: status %d, want 404", code)
	}
	if code, _ := fetch(t, ts.URL+"/debug/pprof/"); code != 404 {
		t.Fatalf("/debug/pprof/ on plain server: status %d, want 404", code)
	}
}

func TestRequestLogging(t *testing.T) {
	_, ts, _, logBuf := newObsServer(t, false)
	fetch(t, ts.URL+"/kappa?u=1&v=99")
	var found bool
	for _, line := range bytes.Split(bytes.TrimSpace(logBuf.Bytes()), []byte("\n")) {
		var entry struct {
			Msg    string `json:"msg"`
			Method string `json:"method"`
			Path   string `json:"path"`
			Status int    `json:"status"`
			Bytes  int    `json:"bytes"`
		}
		if err := json.Unmarshal(line, &entry); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		if entry.Msg == "request" && entry.Path == "/kappa" {
			found = true
			if entry.Method != "GET" || entry.Status != 404 || entry.Bytes == 0 {
				t.Fatalf("log entry = %+v", entry)
			}
		}
	}
	if !found {
		t.Fatalf("no request log for /kappa in:\n%s", logBuf.Bytes())
	}
}

// TestObsOverheadAllocs bounds the middleware's per-request allocation
// overhead: the instrumented serving path may add only the statusWriter
// and a handful of bookkeeping allocations over the bare one. This is the
// alloc-side counterpart of the <5% ops bound the mixed-workload
// benchmark enforces.
func TestObsOverheadAllocs(t *testing.T) {
	newMux := func(opts Options) http.Handler {
		g := graph.New()
		for i := graph.Vertex(1); i <= 5; i++ {
			for j := i + 1; j <= 5; j++ {
				g.AddEdge(i, j)
			}
		}
		return NewWith(g, opts).Handler()
	}
	measure := func(h http.Handler) float64 {
		req := httptest.NewRequest(http.MethodGet, "/stats", nil)
		return testing.AllocsPerRun(200, func() {
			h.ServeHTTP(httptest.NewRecorder(), req.Clone(req.Context()))
		})
	}
	bare := measure(newMux(Options{}))
	metered := measure(newMux(Options{Registry: obs.NewRegistry()}))
	if delta := metered - bare; delta > 8 {
		t.Errorf("instrumentation adds %.0f allocs per request (bare %.0f, metered %.0f), want <= 8",
			delta, bare, metered)
	}
}

func TestNoOpWriteDoesNotPublish(t *testing.T) {
	_, ts, reg, _ := newObsServer(t, false)
	// A no-op write (removing an absent edge) must not publish a snapshot.
	body := `{"remove":[[98,99]]}`
	resp, err := http.Post(ts.URL+"/edges", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	expo := string(reg.Gather())
	// Exactly one publish: Instrument's republish at construction.
	if !strings.Contains(expo, "trikcore_publisher_publishes_total 1") {
		t.Errorf("unexpected publish count in:\n%s", expo)
	}
	if !strings.Contains(expo, "trikcore_publisher_snapshot_version 0") {
		t.Errorf("snapshot_version gauge wrong in:\n%s", expo)
	}
}
