// Package server exposes a live Triangle K-Core engine over HTTP: a small
// analytics service that ingests edge updates and answers density
// queries — the "scalable visual-analytic framework" of the paper's
// introduction as an operational component.
//
// All state lives behind a view.Publisher: POST handlers funnel mutations
// through its single writer, which republishes an immutable
// view.Snapshot via an atomic pointer whenever the graph effectively
// changed. Every GET handler acquires the current snapshot with one
// atomic load and runs entirely lock-free on it — readers never contend
// with writers or with each other, and expensive artifacts (density
// plots, communities, dual views) are memoized per snapshot version so
// repeated requests at an unchanged version are byte-copy cheap.
//
// Endpoints (all JSON unless noted):
//
//	GET  /healthz                   liveness probe
//	GET  /version                   current published snapshot version
//	GET  /stats                     graph and κ summary (O(1), maintained)
//	GET  /kappa?u=U&v=V             κ and co-clique size of one edge
//	GET  /histogram                 κ value → edge count (maintained)
//	POST /edges                     {"add":[[u,v],...],"remove":[[u,v],...]}
//	GET  /core?u=U&v=V              the edge's maximum Triangle K-Core
//	GET  /communities?k=K           triangle-connected communities at level K
//	GET  /plot.svg                  density plot (image/svg+xml)
//	GET  /plot.txt                  density plot (text/plain ASCII)
//
// Versioning and caching: every GET response carries an
// X-Trikcore-Version header naming the snapshot version it was served
// from, and an ETag derived from it ("v<version>"; the dual-view and
// events endpoints, whose bodies also depend on the bookmarked snapshot,
// use "v<version>.b<bookmark version>"). A conditional request whose
// If-None-Match names the current entity is answered 304 Not Modified
// with no body and no recomputation. Both headers are sound because each
// served body is a pure function of (snapshot version, request URL): the
// version moves exactly when the graph effectively changes.
//
// POST /edges applies the whole request as one batch through the
// Publisher, and its body is capped at maxEdgesBody bytes. POST
// responses carry the X-Trikcore-Version resulting from the write.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"trikcore/internal/dynamic"
	"trikcore/internal/graph"
	"trikcore/internal/obs"
	"trikcore/internal/view"
)

// maxEdgesBody bounds the POST /edges request body (16 MiB ≈ a couple of
// million edge operations), keeping a misbehaving client from ballooning
// server memory.
const maxEdgesBody = 16 << 20

// Server wraps a published engine with an HTTP API. Handlers hold no
// server-level lock: reads run on acquired snapshots, writes serialize
// inside the Publisher.
type Server struct {
	pub *view.Publisher
	// bookmark is the snapshot pinned by POST /snapshot (nil until then);
	// dual views and events compare the live snapshot against it.
	bookmark atomic.Pointer[view.Snapshot]

	// Observability wiring (see Options and NewWith). All nil/zero on an
	// unconfigured server, which then serves exactly as before: bare
	// handlers, no /metrics, no /debug/pprof.
	reg      *obs.Registry
	log      *slog.Logger
	pprof    bool
	start    time.Time
	inFlight *obs.Gauge
}

// New builds a server over a copy of g with observability disabled.
func New(g *graph.Graph) *Server {
	return NewWith(g, Options{})
}

// Handler returns the route multiplexer. API routes go through the
// observability middleware when configured; /metrics and /debug/pprof are
// deliberately outside it (see handleMetrics and registerPprof).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.route(mux, "GET /healthz", s.handleHealthz)
	s.route(mux, "GET /version", s.handleVersion)
	s.route(mux, "GET /stats", s.handleStats)
	s.route(mux, "GET /kappa", s.handleKappa)
	s.route(mux, "GET /histogram", s.handleHistogram)
	s.route(mux, "POST /edges", s.handleEdges)
	s.route(mux, "GET /core", s.handleCore)
	s.route(mux, "GET /communities", s.handleCommunities)
	s.route(mux, "GET /plot.svg", s.handlePlotSVG)
	s.route(mux, "GET /plot.txt", s.handlePlotText)
	s.registerSnapshotRoutes(mux)
	if s.reg != nil {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if s.pprof {
		registerPprof(mux)
	}
	return mux
}

// etagOf renders the entity tag of a response served from sn (and, for
// the bookmark-relative endpoints, bm).
func etagOf(sn *view.Snapshot, bm *view.Snapshot) string {
	if bm != nil {
		return fmt.Sprintf("\"v%d.b%d\"", sn.Version, bm.Version)
	}
	return fmt.Sprintf("\"v%d\"", sn.Version)
}

// preamble stamps the version and ETag headers for a response served
// from sn (pass bm for bookmark-relative bodies) and reports whether the
// request's If-None-Match already names this entity — in which case a
// 304 has been written and the handler must not produce a body.
func preamble(w http.ResponseWriter, r *http.Request, sn *view.Snapshot, bm *view.Snapshot) bool {
	tag := etagOf(sn, bm)
	h := w.Header()
	h.Set("X-Trikcore-Version", strconv.FormatUint(sn.Version, 10))
	h.Set("ETag", tag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && matchesETag(inm, tag) {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// matchesETag reports whether an If-None-Match header value names tag:
// "*" or any listed (possibly weak) tag equal to it.
func matchesETag(inm, tag string) bool {
	for _, cand := range strings.Split(inm, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == tag {
			return true
		}
	}
	return false
}

// writeJSON marshals v with a 200 status. Marshaling happens before any
// byte reaches the wire, so an encode failure still surfaces as a 500
// instead of a silently truncated 200.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// httpError writes a JSON error body. The body is marshaled before the
// status line goes out; a map[string]string of one printf-rendered entry
// cannot fail to encode.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	data, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// parseEdge extracts u and v query parameters as a canonical edge.
func parseEdge(r *http.Request) (graph.Edge, error) {
	u, err1 := strconv.ParseInt(r.URL.Query().Get("u"), 10, 32)
	v, err2 := strconv.ParseInt(r.URL.Query().Get("v"), 10, 32)
	if err1 != nil || err2 != nil {
		return graph.Edge{}, fmt.Errorf("u and v must be integer vertex ids")
	}
	if u == v {
		return graph.Edge{}, fmt.Errorf("u and v must differ")
	}
	return graph.NewEdge(graph.Vertex(u), graph.Vertex(v)), nil
}

// VersionReply is the /version response body.
type VersionReply struct {
	Version uint64 `json:"version"`
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	sn := s.pub.Acquire()
	if preamble(w, r, sn, nil) {
		return
	}
	writeJSON(w, VersionReply{Version: sn.Version})
}

// StatsReply is the /stats response body.
type StatsReply struct {
	Vertices int   `json:"vertices"`
	Edges    int   `json:"edges"`
	MaxKappa int32 `json:"maxKappa"`
	// MaxCliqueProxy is MaxKappa+2, the Triangle K-Core estimate of the
	// largest clique order.
	MaxCliqueProxy int32 `json:"maxCliqueProxy"`
	// Updates aggregates engine work counters.
	Updates dynamic.Stats `json:"updates"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sn := s.pub.Acquire()
	if preamble(w, r, sn, nil) {
		return
	}
	writeJSON(w, StatsReply{
		Vertices:       sn.NumVertices(),
		Edges:          sn.NumEdges(),
		MaxKappa:       sn.MaxK,
		MaxCliqueProxy: sn.MaxCliqueProxy(),
		Updates:        sn.Updates,
	})
}

// KappaReply is the /kappa response body.
type KappaReply struct {
	U            graph.Vertex `json:"u"`
	V            graph.Vertex `json:"v"`
	Kappa        int32        `json:"kappa"`
	CoCliqueSize int32        `json:"coCliqueSize"`
}

func (s *Server) handleKappa(w http.ResponseWriter, r *http.Request) {
	e, err := parseEdge(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sn := s.pub.Acquire()
	if preamble(w, r, sn, nil) {
		return
	}
	k, ok := sn.KappaOf(e)
	if !ok {
		httpError(w, http.StatusNotFound, "edge %v not in graph", e)
		return
	}
	writeJSON(w, KappaReply{U: e.U, V: e.V, Kappa: k, CoCliqueSize: k + 2})
}

func (s *Server) handleHistogram(w http.ResponseWriter, r *http.Request) {
	sn := s.pub.Acquire()
	if preamble(w, r, sn, nil) {
		return
	}
	out := make(map[string]int, len(sn.Hist))
	for k, n := range sn.Hist {
		if n > 0 {
			out[strconv.Itoa(k)] = n
		}
	}
	writeJSON(w, out)
}

// EdgesRequest is the /edges request body.
type EdgesRequest struct {
	Add    [][2]graph.Vertex `json:"add"`
	Remove [][2]graph.Vertex `json:"remove"`
}

// EdgesReply is the /edges response body.
type EdgesReply struct {
	Added   int `json:"added"`
	Removed int `json:"removed"`
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxEdgesBody)
	var req EdgesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	// Removals precede additions, so an edge named in both ends up present
	// (ApplyBatch lets the later op win), matching sequential semantics.
	ops := make([]dynamic.EdgeOp, 0, len(req.Add)+len(req.Remove))
	for _, p := range req.Remove {
		if p[0] == p[1] {
			httpError(w, http.StatusBadRequest, "self-loop on vertex %d", p[0])
			return
		}
		ops = append(ops, dynamic.EdgeOp{U: p[0], V: p[1], Del: true})
	}
	for _, p := range req.Add {
		if p[0] == p[1] {
			httpError(w, http.StatusBadRequest, "self-loop on vertex %d", p[0])
			return
		}
		ops = append(ops, dynamic.EdgeOp{U: p[0], V: p[1]})
	}
	var rep EdgesReply
	rep.Added, rep.Removed = s.pub.Apply(ops)
	w.Header().Set("X-Trikcore-Version", strconv.FormatUint(s.pub.Acquire().Version, 10))
	writeJSON(w, rep)
}

// CoreReply is the /core response body.
type CoreReply struct {
	Kappa    int32             `json:"kappa"`
	Edges    [][2]graph.Vertex `json:"edges"`
	Vertices []graph.Vertex    `json:"vertices"`
}

func (s *Server) handleCore(w http.ResponseWriter, r *http.Request) {
	e, err := parseEdge(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sn := s.pub.Acquire()
	if preamble(w, r, sn, nil) {
		return
	}
	edges, k, ok := sn.CoreOf(e)
	if !ok {
		httpError(w, http.StatusNotFound, "edge %v not in graph", e)
		return
	}
	rep := CoreReply{Kappa: k}
	seen := map[graph.Vertex]bool{}
	for _, ce := range edges {
		rep.Edges = append(rep.Edges, [2]graph.Vertex{ce.U, ce.V})
		seen[ce.U] = true
		seen[ce.V] = true
	}
	for v := range seen {
		rep.Vertices = append(rep.Vertices, v)
	}
	slices.Sort(rep.Vertices)
	writeJSON(w, rep)
}

// CommunityReply describes one community in the /communities response.
type CommunityReply struct {
	Edges    int            `json:"edges"`
	Vertices []graph.Vertex `json:"vertices"`
}

func (s *Server) handleCommunities(w http.ResponseWriter, r *http.Request) {
	k, err := strconv.ParseInt(r.URL.Query().Get("k"), 10, 32)
	if err != nil || k < 1 {
		httpError(w, http.StatusBadRequest, "k must be a positive integer")
		return
	}
	sn := s.pub.Acquire()
	if preamble(w, r, sn, nil) {
		return
	}
	comms := sn.CommunitiesAt(int32(k))
	out := make([]CommunityReply, 0, len(comms))
	for _, c := range comms {
		out = append(out, CommunityReply{Edges: c.Edges, Vertices: c.Vertices})
	}
	writeJSON(w, out)
}

func (s *Server) handlePlotSVG(w http.ResponseWriter, r *http.Request) {
	sn := s.pub.Acquire()
	if preamble(w, r, sn, nil) {
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	w.Write(sn.PlotSVG())
}

func (s *Server) handlePlotText(w http.ResponseWriter, r *http.Request) {
	sn := s.pub.Acquire()
	if preamble(w, r, sn, nil) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(sn.PlotASCII())
}
