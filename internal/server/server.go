// Package server exposes live Triangle K-Core engines over HTTP: a
// multi-tenant analytics service that hosts named graph spaces, ingests
// edge updates and answers density queries — the "scalable
// visual-analytic framework" of the paper's introduction as an
// operational component.
//
// All state lives behind an internal/registry.Registry of graph spaces.
// Each space owns a view.Publisher: POST handlers funnel mutations
// through its single writer, which republishes an immutable
// view.Snapshot via an atomic pointer whenever the graph effectively
// changed. Every GET handler acquires the current snapshot with one
// atomic load and runs entirely lock-free on it — readers never contend
// with writers or with each other, and expensive artifacts (density
// plots, communities, dual views) are memoized per snapshot version so
// repeated requests at an unchanged version are byte-copy cheap.
//
// Endpoints (all JSON unless noted). Every graph-scoped endpoint exists
// twice: under /g/{name}/... for the named graph, and unprefixed as a
// legacy alias for the "default" graph, so pre-tenancy clients keep
// working byte-for-byte:
//
//	GET    /healthz                   liveness probe (global)
//	GET    /graphs                    list hosted graph spaces (global)
//	POST   /g/{name}                  create a graph space (optional seed body)
//	DELETE /g/{name}                  delete a graph space
//	GET    /g/{name}/version          current published snapshot version
//	GET    /g/{name}/stats            graph and κ summary (O(1), maintained)
//	GET    /g/{name}/kappa?u=U&v=V    κ and co-clique size of one edge
//	GET    /g/{name}/histogram        κ value → edge count (maintained)
//	POST   /g/{name}/edges            {"add":[[u,v],...],"remove":[[u,v],...]}
//	GET    /g/{name}/core?u=U&v=V     the edge's maximum Triangle K-Core
//	GET    /g/{name}/communities?k=K  triangle-connected communities at level K
//	GET    /g/{name}/plot.svg         density plot (image/svg+xml)
//	GET    /g/{name}/plot.txt         density plot (text/plain ASCII)
//	POST   /g/{name}/snapshot         bookmark the current snapshot
//	GET    /g/{name}/dualview[.svg]   dual view against the bookmark
//	GET    /g/{name}/events?k=K       community events against the bookmark
//	GET    /g/{name}/subscribe        SSE stream of κ and pattern change events
//
// Versioning and caching: every GET response carries an
// X-Trikcore-Version header naming the snapshot version it was served
// from, and an ETag derived from it ("v<version>"; the dual-view and
// events endpoints, whose bodies also depend on the bookmarked snapshot,
// use "v<version>.b<bookmark version>"). A conditional request whose
// If-None-Match names the current entity is answered 304 Not Modified
// with no body and no recomputation. Both headers are sound because each
// served body is a pure function of (snapshot version, request URL): the
// version moves exactly when the graph effectively changes.
//
// Errors: every non-2xx response — handler rejections, unknown graphs,
// the mux's own 404/405 fallbacks, quota breaches (429 for resource
// quotas, 413 for oversized bodies) — shares one JSON envelope:
//
//	{"error":"<message>","status":<code>}
//
// POST /edges applies the whole request as one quota-checked batch
// through the space (a rejected batch mutates nothing); its body is
// capped at the space's MaxBodyBytes (default maxEdgesBody). POST
// responses carry the X-Trikcore-Version resulting from the write.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"time"

	"trikcore/internal/dynamic"
	"trikcore/internal/graph"
	"trikcore/internal/obs"
	"trikcore/internal/obs/trace"
	"trikcore/internal/registry"
	"trikcore/internal/view"
)

// maxEdgesBody bounds POST bodies (16 MiB ≈ a couple of million edge
// operations) when the space carries no tighter quota, keeping a
// misbehaving client from ballooning server memory.
const maxEdgesBody = 16 << 20

// Server wraps a registry of published graph spaces with an HTTP API.
// Handlers hold no server-level lock: reads run on acquired snapshots,
// writes serialize inside each space's publisher.
type Server struct {
	reg *registry.Registry

	// Observability wiring (see Options and NewWith). All nil/zero on an
	// unconfigured server, which then serves exactly as before: bare
	// handlers, no /metrics, no /debug/pprof.
	obsReg   *obs.Registry
	log      *slog.Logger
	pprof    bool
	tracer   *trace.Recorder
	start    time.Time
	inFlight *obs.Gauge
}

// New builds a server over a copy of g with observability disabled.
func New(g *graph.Graph) *Server {
	return NewWith(g, Options{})
}

// Registry exposes the graph-space registry (CLI preloading, tests).
func (s *Server) Registry() *registry.Registry { return s.reg }

// defaultSpace returns the default graph space, panicking if it was
// deleted — internal shorthand for paths that predate multi-tenancy.
func (s *Server) defaultSpace() *registry.Space {
	sp, ok := s.reg.Get(registry.DefaultGraph)
	if !ok {
		panic("server: default graph deleted")
	}
	return sp
}

// Close terminates every space's change feed, unblocking all SSE
// handlers — call it before http.Server.Shutdown so streams drain
// instead of riding out the shutdown timeout.
func (s *Server) Close() { s.reg.Close() }

// Handler returns the route multiplexer. API routes go through the
// observability middleware when configured; /metrics and /debug/pprof
// are deliberately outside it (see handleMetrics and registerPprof).
// The whole mux is wrapped so that its plain-text 404/405 fallbacks are
// rewritten into the JSON error envelope.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.route(mux, "GET /healthz", s.handleHealthz)
	s.route(mux, "GET /graphs", s.handleGraphs)
	s.route(mux, "POST /g/{name}", s.handleCreateGraph)
	s.route(mux, "DELETE /g/{name}", s.handleDeleteGraph)
	s.scoped(mux, "GET", "/version", s.handleVersion)
	s.scoped(mux, "GET", "/stats", s.handleStats)
	s.scoped(mux, "GET", "/kappa", s.handleKappa)
	s.scoped(mux, "GET", "/histogram", s.handleHistogram)
	s.scoped(mux, "POST", "/edges", s.handleEdges)
	s.scoped(mux, "GET", "/core", s.handleCore)
	s.scoped(mux, "GET", "/communities", s.handleCommunities)
	s.scoped(mux, "GET", "/plot.svg", s.handlePlotSVG)
	s.scoped(mux, "GET", "/plot.txt", s.handlePlotText)
	s.scoped(mux, "GET", "/subscribe", s.handleSubscribe)
	s.registerSnapshotRoutes(mux)
	if s.obsReg != nil {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if s.tracer != nil {
		mux.HandleFunc("GET /debug/trace", s.handleDebugTrace)
	}
	if s.pprof {
		registerPprof(mux)
	}
	return envelopeErrors(mux)
}

// scoped registers one graph-scoped endpoint twice: under its legacy
// unprefixed pattern (aliasing the default graph) and under the
// /g/{name} tenant prefix. The metrics path label stays the pattern, so
// tenant traffic aggregates under one "/g/{name}/..." label per route —
// request-metric cardinality does not grow with the number of graphs.
func (s *Server) scoped(mux *http.ServeMux, method, path string, h http.HandlerFunc) {
	s.route(mux, method+" "+path, h)
	s.route(mux, method+" /g/{name}"+path, h)
}

// space resolves the graph space a request addresses: the {name} path
// value on tenant routes, or the default graph on legacy unprefixed
// ones. On an unknown graph it writes the 404 envelope and reports
// false.
func (s *Server) space(w http.ResponseWriter, r *http.Request) (*registry.Space, bool) {
	name := r.PathValue("name")
	if name == "" {
		name = registry.DefaultGraph
	}
	sp, ok := s.reg.Get(name)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown graph %q", name)
		return nil, false
	}
	return sp, true
}

// errorReply is the single JSON error envelope of every non-2xx
// response, handler-produced and mux-fallback alike.
type errorReply struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// envelopeWriter rewrites plain-text error fallbacks (the mux's own 404
// and 405 pages) into the JSON envelope. Handler-produced errors pass
// through untouched: they set an application/json content type before
// writing their status.
type envelopeWriter struct {
	http.ResponseWriter
	suppress bool
}

func (ew *envelopeWriter) WriteHeader(code int) {
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(ew.Header().Get("Content-Type"), "application/json") {
		ew.suppress = true // swallow the original plain-text body
		h := ew.Header()
		h.Set("Content-Type", "application/json")
		h.Del("Content-Length")
		data, _ := json.Marshal(errorReply{Error: http.StatusText(code), Status: code})
		ew.ResponseWriter.WriteHeader(code)
		ew.ResponseWriter.Write(append(data, '\n'))
		return
	}
	ew.ResponseWriter.WriteHeader(code)
}

func (ew *envelopeWriter) Write(p []byte) (int, error) {
	if ew.suppress {
		return len(p), nil
	}
	return ew.ResponseWriter.Write(p)
}

// Flush keeps the SSE streaming path working through the wrapper.
func (ew *envelopeWriter) Flush() {
	if f, ok := ew.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// envelopeErrors wraps next so its default error pages come out in the
// JSON envelope.
func envelopeErrors(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&envelopeWriter{ResponseWriter: w}, r)
	})
}

// etagOf renders the entity tag of a response served from sn (and, for
// the bookmark-relative endpoints, bm).
func etagOf(sn *view.Snapshot, bm *view.Snapshot) string {
	if bm != nil {
		return fmt.Sprintf("\"v%d.b%d\"", sn.Version, bm.Version)
	}
	return fmt.Sprintf("\"v%d\"", sn.Version)
}

// preamble stamps the version and ETag headers for a response served
// from sn (pass bm for bookmark-relative bodies) and reports whether the
// request's If-None-Match already names this entity — in which case a
// 304 has been written and the handler must not produce a body.
func preamble(w http.ResponseWriter, r *http.Request, sn *view.Snapshot, bm *view.Snapshot) bool {
	tag := etagOf(sn, bm)
	h := w.Header()
	h.Set("X-Trikcore-Version", strconv.FormatUint(sn.Version, 10))
	h.Set("ETag", tag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && matchesETag(inm, tag) {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// matchesETag reports whether an If-None-Match header value names tag:
// "*" or any listed (possibly weak) tag equal to it.
func matchesETag(inm, tag string) bool {
	for _, cand := range strings.Split(inm, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == tag {
			return true
		}
	}
	return false
}

// writeJSONStatus marshals v and writes it with an explicit status.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// writeJSON marshals v with a 200 status. Marshaling happens before any
// byte reaches the wire, so an encode failure still surfaces as a 500
// instead of a silently truncated 200.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// httpError writes the JSON error envelope. The body is marshaled before
// the status line goes out; a two-field struct of printf-rendered text
// cannot fail to encode.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	data, _ := json.Marshal(errorReply{Error: fmt.Sprintf(format, args...), Status: status})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// parseEdge extracts u and v query parameters as a canonical edge.
func parseEdge(r *http.Request) (graph.Edge, error) {
	u, err1 := strconv.ParseInt(r.URL.Query().Get("u"), 10, 32)
	v, err2 := strconv.ParseInt(r.URL.Query().Get("v"), 10, 32)
	if err1 != nil || err2 != nil {
		return graph.Edge{}, fmt.Errorf("u and v must be integer vertex ids")
	}
	if u == v {
		return graph.Edge{}, fmt.Errorf("u and v must differ")
	}
	return graph.NewEdge(graph.Vertex(u), graph.Vertex(v)), nil
}

// VersionReply is the /version response body.
type VersionReply struct {
	Version uint64 `json:"version"`
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	sp, ok := s.space(w, r)
	if !ok {
		return
	}
	sn := sp.Acquire()
	if preamble(w, r, sn, nil) {
		return
	}
	writeJSON(w, VersionReply{Version: sn.Version})
}

// StatsReply is the /stats response body.
type StatsReply struct {
	Vertices int   `json:"vertices"`
	Edges    int   `json:"edges"`
	MaxKappa int32 `json:"maxKappa"`
	// MaxCliqueProxy is MaxKappa+2, the Triangle K-Core estimate of the
	// largest clique order.
	MaxCliqueProxy int32 `json:"maxCliqueProxy"`
	// Updates aggregates engine work counters.
	Updates dynamic.Stats `json:"updates"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sp, ok := s.space(w, r)
	if !ok {
		return
	}
	sn := sp.Acquire()
	if preamble(w, r, sn, nil) {
		return
	}
	writeJSON(w, StatsReply{
		Vertices:       sn.NumVertices(),
		Edges:          sn.NumEdges(),
		MaxKappa:       sn.MaxK,
		MaxCliqueProxy: sn.MaxCliqueProxy(),
		Updates:        sn.Updates,
	})
}

// KappaReply is the /kappa response body.
type KappaReply struct {
	U            graph.Vertex `json:"u"`
	V            graph.Vertex `json:"v"`
	Kappa        int32        `json:"kappa"`
	CoCliqueSize int32        `json:"coCliqueSize"`
}

func (s *Server) handleKappa(w http.ResponseWriter, r *http.Request) {
	sp, ok := s.space(w, r)
	if !ok {
		return
	}
	e, err := parseEdge(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sn := sp.Acquire()
	if preamble(w, r, sn, nil) {
		return
	}
	k, ok := sn.KappaOf(e)
	if !ok {
		httpError(w, http.StatusNotFound, "edge %v not in graph", e)
		return
	}
	writeJSON(w, KappaReply{U: e.U, V: e.V, Kappa: k, CoCliqueSize: k + 2})
}

func (s *Server) handleHistogram(w http.ResponseWriter, r *http.Request) {
	sp, ok := s.space(w, r)
	if !ok {
		return
	}
	sn := sp.Acquire()
	if preamble(w, r, sn, nil) {
		return
	}
	out := make(map[string]int, len(sn.Hist))
	for k, n := range sn.Hist {
		if n > 0 {
			out[strconv.Itoa(k)] = n
		}
	}
	writeJSON(w, out)
}

// EdgesRequest is the /edges request body (and the optional seed body of
// POST /g/{name}).
type EdgesRequest struct {
	Add    [][2]graph.Vertex `json:"add"`
	Remove [][2]graph.Vertex `json:"remove"`
}

// EdgesReply is the /edges response body.
type EdgesReply struct {
	Added   int `json:"added"`
	Removed int `json:"removed"`
}

// decodeEdgesBody reads and validates an EdgesRequest from r under the
// space's body-size quota, writing the error envelope (413 on an
// oversized body, 400 otherwise) itself on failure.
func decodeEdgesBody(w http.ResponseWriter, r *http.Request, limit int64) (EdgesRequest, bool) {
	if limit <= 0 {
		limit = maxEdgesBody
	}
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	var req EdgesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return req, false
		}
		httpError(w, http.StatusBadRequest, "bad body: %v", err)
		return req, false
	}
	for _, pairs := range [2][][2]graph.Vertex{req.Add, req.Remove} {
		for _, p := range pairs {
			if p[0] == p[1] {
				httpError(w, http.StatusBadRequest, "self-loop on vertex %d", p[0])
				return req, false
			}
		}
	}
	return req, true
}

// ops flattens the request into one batch: removals precede additions,
// so an edge named in both ends up present (ApplyBatch lets the later
// op win), matching sequential semantics.
func (req EdgesRequest) ops() []dynamic.EdgeOp {
	ops := make([]dynamic.EdgeOp, 0, len(req.Add)+len(req.Remove))
	for _, p := range req.Remove {
		ops = append(ops, dynamic.EdgeOp{U: p[0], V: p[1], Del: true})
	}
	for _, p := range req.Add {
		ops = append(ops, dynamic.EdgeOp{U: p[0], V: p[1]})
	}
	return ops
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	sp, ok := s.space(w, r)
	if !ok {
		return
	}
	req, ok := decodeEdgesBody(w, r, sp.MaxBodyBytes())
	if !ok {
		return
	}
	var rep EdgesReply
	var err error
	rep.Added, rep.Removed, err = sp.ApplyTraced(req.ops(), trace.FromContext(r.Context()))
	if err != nil {
		var qe *registry.QuotaError
		if errors.As(err, &qe) {
			httpError(w, http.StatusTooManyRequests, "%v", qe)
			return
		}
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("X-Trikcore-Version", strconv.FormatUint(sp.Acquire().Version, 10))
	writeJSON(w, rep)
}

// CoreReply is the /core response body.
type CoreReply struct {
	Kappa    int32             `json:"kappa"`
	Edges    [][2]graph.Vertex `json:"edges"`
	Vertices []graph.Vertex    `json:"vertices"`
}

func (s *Server) handleCore(w http.ResponseWriter, r *http.Request) {
	sp, ok := s.space(w, r)
	if !ok {
		return
	}
	e, err := parseEdge(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sn := sp.Acquire()
	if preamble(w, r, sn, nil) {
		return
	}
	msp := trace.FromContext(r.Context()).StartSpan("memo.core", "view")
	edges, k, ok := sn.CoreOf(e)
	msp.End()
	if !ok {
		httpError(w, http.StatusNotFound, "edge %v not in graph", e)
		return
	}
	rep := CoreReply{Kappa: k}
	seen := map[graph.Vertex]bool{}
	for _, ce := range edges {
		rep.Edges = append(rep.Edges, [2]graph.Vertex{ce.U, ce.V})
		seen[ce.U] = true
		seen[ce.V] = true
	}
	for v := range seen {
		rep.Vertices = append(rep.Vertices, v)
	}
	slices.Sort(rep.Vertices)
	writeJSON(w, rep)
}

// CommunityReply describes one community in the /communities response.
type CommunityReply struct {
	Edges    int            `json:"edges"`
	Vertices []graph.Vertex `json:"vertices"`
}

func (s *Server) handleCommunities(w http.ResponseWriter, r *http.Request) {
	sp, ok := s.space(w, r)
	if !ok {
		return
	}
	k, err := strconv.ParseInt(r.URL.Query().Get("k"), 10, 32)
	if err != nil || k < 1 {
		httpError(w, http.StatusBadRequest, "k must be a positive integer")
		return
	}
	sn := sp.Acquire()
	if preamble(w, r, sn, nil) {
		return
	}
	msp := trace.FromContext(r.Context()).StartSpan("memo.communities", "view")
	comms := sn.CommunitiesAt(int32(k))
	msp.End()
	out := make([]CommunityReply, 0, len(comms))
	for _, c := range comms {
		out = append(out, CommunityReply{Edges: c.Edges, Vertices: c.Vertices})
	}
	writeJSON(w, out)
}

func (s *Server) handlePlotSVG(w http.ResponseWriter, r *http.Request) {
	sp, ok := s.space(w, r)
	if !ok {
		return
	}
	sn := sp.Acquire()
	if preamble(w, r, sn, nil) {
		return
	}
	msp := trace.FromContext(r.Context()).StartSpan("memo.plot_svg", "view")
	body := sn.PlotSVG()
	msp.End()
	w.Header().Set("Content-Type", "image/svg+xml")
	w.Write(body)
}

func (s *Server) handlePlotText(w http.ResponseWriter, r *http.Request) {
	sp, ok := s.space(w, r)
	if !ok {
		return
	}
	sn := sp.Acquire()
	if preamble(w, r, sn, nil) {
		return
	}
	msp := trace.FromContext(r.Context()).StartSpan("memo.plot_txt", "view")
	body := sn.PlotASCII()
	msp.End()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(body)
}
