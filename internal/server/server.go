// Package server exposes a live Triangle K-Core engine over HTTP: a small
// analytics service that ingests edge updates and answers density
// queries — the "scalable visual-analytic framework" of the paper's
// introduction as an operational component. All state lives in one
// dynamic.Engine guarded by a read-write lock; reads run concurrently,
// updates serialize.
//
// Endpoints (all JSON unless noted):
//
//	GET  /healthz                   liveness probe
//	GET  /stats                     graph and κ summary (O(1), maintained)
//	GET  /kappa?u=U&v=V             κ and co-clique size of one edge
//	GET  /histogram                 κ value → edge count (maintained)
//	POST /edges                     {"add":[[u,v],...],"remove":[[u,v],...]}
//	GET  /core?u=U&v=V              the edge's maximum Triangle K-Core
//	GET  /communities?k=K           triangle-connected communities at level K
//	GET  /plot.svg                  density plot (image/svg+xml)
//	GET  /plot.txt                  density plot (text/plain ASCII)
//
// POST /edges applies the whole request as one dynamic.Engine.ApplyBatch,
// and its body is capped at maxEdgesBody bytes.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"strconv"
	"sync"

	"trikcore/internal/core"
	"trikcore/internal/dynamic"
	"trikcore/internal/graph"
	"trikcore/internal/plot"
)

// maxEdgesBody bounds the POST /edges request body (16 MiB ≈ a couple of
// million edge operations), keeping a misbehaving client from ballooning
// server memory.
const maxEdgesBody = 16 << 20

// Server wraps a dynamic engine with an HTTP API.
type Server struct {
	mu sync.RWMutex
	en *dynamic.Engine
	// snapshot is the graph bookmarked by POST /snapshot (nil until
	// then); dual views and events compare the live graph against it.
	snapshot *graph.Graph
}

// decomposeForServer is the static decomposition hook (separated for the
// snapshot endpoints; kept trivial so the dependency stays one-way).
func decomposeForServer(g *graph.Graph) *core.Decomposition { return core.Decompose(g) }

// New builds a server over a copy of g.
func New(g *graph.Graph) *Server {
	return &Server{en: dynamic.NewEngine(g)}
}

// Handler returns the route multiplexer.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /kappa", s.handleKappa)
	mux.HandleFunc("GET /histogram", s.handleHistogram)
	mux.HandleFunc("POST /edges", s.handleEdges)
	mux.HandleFunc("GET /core", s.handleCore)
	mux.HandleFunc("GET /communities", s.handleCommunities)
	mux.HandleFunc("GET /plot.svg", s.handlePlotSVG)
	mux.HandleFunc("GET /plot.txt", s.handlePlotText)
	s.registerSnapshotRoutes(mux)
	return mux
}

// writeJSON marshals v with a 200 status. Marshaling happens before any
// byte reaches the wire, so an encode failure still surfaces as a 500
// instead of a silently truncated 200.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// httpError writes a JSON error body. The body is marshaled before the
// status line goes out; a map[string]string of one printf-rendered entry
// cannot fail to encode.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	data, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// parseEdge extracts u and v query parameters as a canonical edge.
func parseEdge(r *http.Request) (graph.Edge, error) {
	u, err1 := strconv.ParseInt(r.URL.Query().Get("u"), 10, 32)
	v, err2 := strconv.ParseInt(r.URL.Query().Get("v"), 10, 32)
	if err1 != nil || err2 != nil {
		return graph.Edge{}, fmt.Errorf("u and v must be integer vertex ids")
	}
	if u == v {
		return graph.Edge{}, fmt.Errorf("u and v must differ")
	}
	return graph.NewEdge(graph.Vertex(u), graph.Vertex(v)), nil
}

// StatsReply is the /stats response body.
type StatsReply struct {
	Vertices int   `json:"vertices"`
	Edges    int   `json:"edges"`
	MaxKappa int32 `json:"maxKappa"`
	// MaxCliqueProxy is MaxKappa+2, the Triangle K-Core estimate of the
	// largest clique order.
	MaxCliqueProxy int32 `json:"maxCliqueProxy"`
	// Updates aggregates engine work counters.
	Updates dynamic.Stats `json:"updates"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	// MaxKappa, NumEdges and NumVertices are all maintained by the engine,
	// so this handler does no per-request graph scan.
	mk := s.en.MaxKappa()
	proxy := mk + 2
	if s.en.NumEdges() == 0 {
		proxy = 0
	}
	writeJSON(w, StatsReply{
		Vertices:       s.en.NumVertices(),
		Edges:          s.en.NumEdges(),
		MaxKappa:       mk,
		MaxCliqueProxy: proxy,
		Updates:        s.en.Stats(),
	})
}

// KappaReply is the /kappa response body.
type KappaReply struct {
	U            graph.Vertex `json:"u"`
	V            graph.Vertex `json:"v"`
	Kappa        int32        `json:"kappa"`
	CoCliqueSize int32        `json:"coCliqueSize"`
}

func (s *Server) handleKappa(w http.ResponseWriter, r *http.Request) {
	e, err := parseEdge(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	k, ok := s.en.Kappa(e)
	s.mu.RUnlock()
	if !ok {
		httpError(w, http.StatusNotFound, "edge %v not in graph", e)
		return
	}
	writeJSON(w, KappaReply{U: e.U, V: e.V, Kappa: k, CoCliqueSize: k + 2})
}

func (s *Server) handleHistogram(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.en.KappaHistogram()
	s.mu.RUnlock()
	out := make(map[string]int, len(h))
	for k, n := range h {
		out[strconv.Itoa(int(k))] = n
	}
	writeJSON(w, out)
}

// EdgesRequest is the /edges request body.
type EdgesRequest struct {
	Add    [][2]graph.Vertex `json:"add"`
	Remove [][2]graph.Vertex `json:"remove"`
}

// EdgesReply is the /edges response body.
type EdgesReply struct {
	Added   int `json:"added"`
	Removed int `json:"removed"`
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxEdgesBody)
	var req EdgesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	// Removals precede additions, so an edge named in both ends up present
	// (ApplyBatch lets the later op win), matching sequential semantics.
	ops := make([]dynamic.EdgeOp, 0, len(req.Add)+len(req.Remove))
	for _, p := range req.Remove {
		if p[0] == p[1] {
			httpError(w, http.StatusBadRequest, "self-loop on vertex %d", p[0])
			return
		}
		ops = append(ops, dynamic.EdgeOp{U: p[0], V: p[1], Del: true})
	}
	for _, p := range req.Add {
		if p[0] == p[1] {
			httpError(w, http.StatusBadRequest, "self-loop on vertex %d", p[0])
			return
		}
		ops = append(ops, dynamic.EdgeOp{U: p[0], V: p[1]})
	}
	var rep EdgesReply
	s.mu.Lock()
	rep.Added, rep.Removed = s.en.ApplyBatch(ops)
	s.mu.Unlock()
	writeJSON(w, rep)
}

// CoreReply is the /core response body.
type CoreReply struct {
	Kappa    int32             `json:"kappa"`
	Edges    [][2]graph.Vertex `json:"edges"`
	Vertices []graph.Vertex    `json:"vertices"`
}

func (s *Server) handleCore(w http.ResponseWriter, r *http.Request) {
	e, err := parseEdge(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	k, ok := s.en.Kappa(e)
	if !ok {
		httpError(w, http.StatusNotFound, "edge %v not in graph", e)
		return
	}
	sub, _ := s.en.MaxCoreOf(e)
	rep := CoreReply{Kappa: k, Vertices: sub.Vertices()}
	for _, se := range sub.Edges() {
		rep.Edges = append(rep.Edges, [2]graph.Vertex{se.U, se.V})
	}
	writeJSON(w, rep)
}

// CommunityReply describes one community in the /communities response.
type CommunityReply struct {
	Edges    int            `json:"edges"`
	Vertices []graph.Vertex `json:"vertices"`
}

func (s *Server) handleCommunities(w http.ResponseWriter, r *http.Request) {
	k, err := strconv.ParseInt(r.URL.Query().Get("k"), 10, 32)
	if err != nil || k < 1 {
		httpError(w, http.StatusBadRequest, "k must be a positive integer")
		return
	}
	s.mu.RLock()
	comms := s.en.Communities(int32(k))
	s.mu.RUnlock()
	out := make([]CommunityReply, 0, len(comms))
	for _, edges := range comms {
		seen := map[graph.Vertex]bool{}
		var verts []graph.Vertex
		for _, e := range edges {
			for _, v := range [2]graph.Vertex{e.U, e.V} {
				if !seen[v] {
					seen[v] = true
					verts = append(verts, v)
				}
			}
		}
		slices.Sort(verts)
		out = append(out, CommunityReply{Edges: len(edges), Vertices: verts})
	}
	writeJSON(w, out)
}

// series builds the current density plot under the read lock.
func (s *Server) series() plot.Series {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return plot.Density(s.en.Graph(), plot.EdgeValues(s.en.CoCliqueSizes()))
}

func (s *Server) handlePlotSVG(w http.ResponseWriter, r *http.Request) {
	svg := plot.RenderSVG(s.series(), plot.SVGOptions{Title: "Triangle K-Core density plot"})
	w.Header().Set("Content-Type", "image/svg+xml")
	fmt.Fprint(w, svg)
}

func (s *Server) handlePlotText(w http.ResponseWriter, r *http.Request) {
	txt := plot.RenderASCII(s.series(), 120, 24)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, txt)
}
