package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// get performs a GET and returns the status, body and response headers.
func get(t *testing.T, url string, hdr http.Header) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// TestVersionEndpointAndHeaders pins the versioning surface: GET /version
// reports the published snapshot version, every read endpoint stamps
// X-Trikcore-Version, effective writes advance it and no-op writes do
// not.
func TestVersionEndpointAndHeaders(t *testing.T) {
	_, ts := newTestServer(t)

	var ver VersionReply
	if code := getJSON(t, ts.URL+"/version", &ver); code != 200 {
		t.Fatalf("/version status %d", code)
	}
	_, _, hdr := get(t, ts.URL+"/version", nil)
	if got := hdr.Get("X-Trikcore-Version"); got != fmt.Sprint(ver.Version) {
		t.Fatalf("/version header %q vs body %d", got, ver.Version)
	}

	// Every read endpoint names the snapshot it served from.
	postJSON(t, ts.URL+"/snapshot", "")
	reads := []string{
		"/healthz", "/version", "/stats", "/kappa?u=1&v=2", "/histogram",
		"/core?u=1&v=2", "/communities?k=3", "/plot.svg", "/plot.txt",
		"/dualview", "/dualview.svg", "/events?k=3",
	}
	for _, path := range reads {
		code, _, hdr := get(t, ts.URL+path, nil)
		if code != 200 {
			t.Fatalf("GET %s: status %d", path, code)
		}
		if hdr.Get("X-Trikcore-Version") != fmt.Sprint(ver.Version) {
			t.Errorf("GET %s: X-Trikcore-Version = %q, want %d",
				path, hdr.Get("X-Trikcore-Version"), ver.Version)
		}
	}

	// An effective write advances the version by exactly one batch step,
	// and the POST response names the resulting version.
	resp, err := http.Post(ts.URL+"/edges", "application/json",
		strings.NewReader(`{"add":[[1,20],[2,20]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trikcore-Version"); got != fmt.Sprint(ver.Version+1) {
		t.Fatalf("POST /edges version header %q, want %d", got, ver.Version+1)
	}
	var ver2 VersionReply
	getJSON(t, ts.URL+"/version", &ver2)
	if ver2.Version != ver.Version+1 {
		t.Fatalf("version after effective write = %d, want %d", ver2.Version, ver.Version+1)
	}

	// A no-op write leaves it alone.
	resp, err = http.Post(ts.URL+"/edges", "application/json",
		strings.NewReader(`{"add":[[1,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var ver3 VersionReply
	getJSON(t, ts.URL+"/version", &ver3)
	if ver3.Version != ver2.Version {
		t.Fatalf("no-op write moved version %d → %d", ver2.Version, ver3.Version)
	}
}

// TestETagNotModified exercises the conditional-request path: a matching
// If-None-Match yields an empty 304, non-matching and stale tags yield
// full bodies, and the bookmark-relative endpoints carry both versions in
// their tag.
func TestETagNotModified(t *testing.T) {
	_, ts := newTestServer(t)

	code, body, hdr := get(t, ts.URL+"/stats", nil)
	if code != 200 || len(body) == 0 {
		t.Fatalf("GET /stats: %d, %d bytes", code, len(body))
	}
	tag := hdr.Get("ETag")
	if !strings.HasPrefix(tag, "\"v") {
		t.Fatalf("ETag %q, want \"v<version>\" form", tag)
	}

	// Matching tag → 304, no body, headers still stamped.
	for _, inm := range []string{tag, "W/" + tag, "\"bogus\", " + tag, "*"} {
		code, body, hdr := get(t, ts.URL+"/stats", http.Header{"If-None-Match": {inm}})
		if code != http.StatusNotModified || len(body) != 0 {
			t.Fatalf("If-None-Match %q: %d, %d bytes, want empty 304", inm, code, len(body))
		}
		if hdr.Get("ETag") != tag || hdr.Get("X-Trikcore-Version") == "" {
			t.Fatalf("304 lost validators: ETag %q version %q",
				hdr.Get("ETag"), hdr.Get("X-Trikcore-Version"))
		}
	}
	// Non-matching tag → full body.
	if code, body, _ := get(t, ts.URL+"/stats", http.Header{"If-None-Match": {"\"v999\""}}); code != 200 || len(body) == 0 {
		t.Fatalf("mismatched If-None-Match: %d, %d bytes", code, len(body))
	}

	// After an effective write the old tag is stale everywhere.
	postJSON(t, ts.URL+"/edges", `{"add":[[1,30],[2,30]]}`)
	code, _, hdr = get(t, ts.URL+"/stats", http.Header{"If-None-Match": {tag}})
	if code != 200 {
		t.Fatalf("stale tag after write: status %d, want 200", code)
	}
	if hdr.Get("ETag") == tag {
		t.Fatal("ETag did not change across an effective write")
	}

	// Bookmark-relative endpoints tag both sides.
	postJSON(t, ts.URL+"/snapshot", "")
	postJSON(t, ts.URL+"/edges", `{"add":[[3,30]]}`)
	_, _, hdr = get(t, ts.URL+"/dualview", nil)
	dtag := hdr.Get("ETag")
	if !strings.Contains(dtag, ".b") {
		t.Fatalf("dualview ETag %q, want \"v<live>.b<bookmark>\" form", dtag)
	}
	if code, body, _ := get(t, ts.URL+"/dualview", http.Header{"If-None-Match": {dtag}}); code != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("dualview conditional: %d, %d bytes, want empty 304", code, len(body))
	}
	// Re-bookmarking at the live version changes the tag.
	postJSON(t, ts.URL+"/snapshot", "")
	if _, _, hdr := get(t, ts.URL+"/dualview", nil); hdr.Get("ETag") == dtag {
		t.Fatal("dualview ETag ignored the bookmark version")
	}
}

// TestPlotServedFromSnapshotCache checks that repeated /plot.svg requests
// at one version are served from the snapshot's memoized bytes: the body
// is byte-identical to the snapshot's cached artifact, which is rendered
// once per version.
func TestPlotServedFromSnapshotCache(t *testing.T) {
	s, ts := newTestServer(t)
	sn := s.defaultSpace().Acquire()

	_, b1, hdr1 := get(t, ts.URL+"/plot.svg", nil)
	_, b2, hdr2 := get(t, ts.URL+"/plot.svg", nil)
	if hdr1.Get("ETag") != hdr2.Get("ETag") {
		t.Fatal("version moved under a read-only workload")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same version, different plot bytes")
	}
	// The served body is the snapshot's memoized rendering, and the memo is
	// pointer-stable — the handler wrote cached bytes, it did not re-render.
	cached := sn.PlotSVG()
	if !bytes.Equal(b1, cached) {
		t.Fatal("served body differs from the snapshot's cached artifact")
	}
	if again := sn.PlotSVG(); &again[0] != &cached[0] {
		t.Fatal("plot cache not pointer-stable within a version")
	}
}

// TestGetHammerUnderChurn races parallel readers of every GET endpoint
// against POST /edges churn and periodic re-bookmarking. The race
// detector (make race) owns the soundness claim; the assertions only
// require coherent statuses and non-empty bodies.
func TestGetHammerUnderChurn(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()

	do := func(method, target, body string) *httptest.ResponseRecorder {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req := httptest.NewRequest(method, target, rd)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	if rec := do(http.MethodPost, "/snapshot", ""); rec.Code != 200 {
		t.Fatalf("priming snapshot: status %d", rec.Code)
	}

	paths := []string{
		"/healthz", "/version", "/stats", "/kappa?u=1&v=2", "/histogram",
		"/core?u=1&v=2", "/communities?k=3", "/plot.svg", "/plot.txt",
		"/dualview", "/dualview.svg", "/events?k=3",
	}
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := 30 + i%5
			if i%2 == 0 {
				do(http.MethodPost, "/edges", fmt.Sprintf(`{"add":[[1,%d],[2,%d],[3,%d]]}`, v, v, v))
			} else {
				do(http.MethodPost, "/edges", fmt.Sprintf(`{"remove":[[1,%d],[2,%d],[3,%d]]}`, v, v, v))
			}
			if i%16 == 15 {
				do(http.MethodPost, "/snapshot", "")
			}
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				for _, path := range paths {
					rec := do(http.MethodGet, path, "")
					// The K5 edge {1,2} and its core never churn, so every
					// read must succeed.
					if rec.Code != 200 {
						t.Errorf("GET %s under churn: status %d", path, rec.Code)
						return
					}
					if rec.Body.Len() == 0 {
						t.Errorf("GET %s under churn: empty body", path)
						return
					}
					if rec.Header().Get("X-Trikcore-Version") == "" {
						t.Errorf("GET %s under churn: missing version header", path)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	writer.Wait()

	// The server is still coherent after the storm.
	var st StatsReply
	rec := do(http.MethodGet, "/stats", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.MaxKappa < 3 || st.Edges < 11 {
		t.Fatalf("post-churn stats %+v", st)
	}
}
