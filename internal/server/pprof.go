package server

import (
	"net/http"
	"net/http/pprof"
)

// registerPprof mounts the net/http/pprof handlers under /debug/pprof/.
// The handlers are named explicitly rather than imported for their
// DefaultServeMux side effects, so profiling stays strictly opt-in
// (Options.Pprof) and never leaks onto the default mux. The routes are
// not wrapped in the metrics middleware: profile downloads run for
// seconds and would distort the latency histograms they sit next to.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
