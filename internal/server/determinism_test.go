package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"trikcore/internal/graph"
)

// determinismGraph builds the same graph content twice with opposite
// edge-insertion orders, so any map-order leak in the engine or the
// handlers shows up as a byte difference between the two servers.
func determinismGraphs() (*graph.Graph, *graph.Graph) {
	var edges [][2]graph.Vertex
	for i := graph.Vertex(1); i <= 7; i++ {
		for j := i + 1; j <= 7; j++ {
			edges = append(edges, [2]graph.Vertex{i, j})
		}
	}
	edges = append(edges, [2]graph.Vertex{20, 21}, [2]graph.Vertex{21, 22}, [2]graph.Vertex{20, 22})
	fwd, rev := graph.New(), graph.New()
	for _, e := range edges {
		fwd.AddEdge(e[0], e[1])
	}
	for i := len(edges) - 1; i >= 0; i-- {
		rev.AddEdge(edges[i][0], edges[i][1])
	}
	return fwd, rev
}

func fetchBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestResponsesDeterministic requires every read endpoint to return
// byte-identical bodies (a) on repeated requests to one server and
// (b) across two servers whose graphs were built in opposite edge
// orders. JSON object key order, plot sample order and histogram order
// must therefore never depend on Go's randomized map iteration.
func TestResponsesDeterministic(t *testing.T) {
	g1, g2 := determinismGraphs()
	ts1 := httptest.NewServer(New(g1).Handler())
	ts2 := httptest.NewServer(New(g2).Handler())
	t.Cleanup(ts1.Close)
	t.Cleanup(ts2.Close)

	paths := []string{
		"/stats",
		"/histogram",
		"/kappa?u=1&v=2",
		"/core?u=1&v=2",
		"/communities?k=3",
		"/plot.svg",
		"/plot.txt",
	}
	for _, path := range paths {
		first := fetchBody(t, ts1.URL+path)
		if again := fetchBody(t, ts1.URL+path); string(again) != string(first) {
			t.Errorf("%s: same server, two requests, different bytes:\n%s\n---\n%s", path, first, again)
		}
		if other := fetchBody(t, ts2.URL+path); string(other) != string(first) {
			t.Errorf("%s: same graph built in reverse order, different bytes:\n%s\n---\n%s", path, first, other)
		}
	}
}
