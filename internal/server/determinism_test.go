package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"trikcore/internal/graph"
)

// determinismGraph builds the same graph content twice with opposite
// edge-insertion orders, so any map-order leak in the engine or the
// handlers shows up as a byte difference between the two servers.
func determinismGraphs() (*graph.Graph, *graph.Graph) {
	var edges [][2]graph.Vertex
	for i := graph.Vertex(1); i <= 7; i++ {
		for j := i + 1; j <= 7; j++ {
			edges = append(edges, [2]graph.Vertex{i, j})
		}
	}
	edges = append(edges, [2]graph.Vertex{20, 21}, [2]graph.Vertex{21, 22}, [2]graph.Vertex{20, 22})
	fwd, rev := graph.New(), graph.New()
	for _, e := range edges {
		fwd.AddEdge(e[0], e[1])
	}
	for i := len(edges) - 1; i >= 0; i-- {
		rev.AddEdge(edges[i][0], edges[i][1])
	}
	return fwd, rev
}

func fetchBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestResponsesDeterministic requires every read endpoint to return
// byte-identical bodies (a) on repeated requests to one server and
// (b) across two servers whose graphs were built in opposite edge
// orders. JSON object key order, plot sample order and histogram order
// must therefore never depend on Go's randomized map iteration.
func TestResponsesDeterministic(t *testing.T) {
	g1, g2 := determinismGraphs()
	ts1 := httptest.NewServer(New(g1).Handler())
	ts2 := httptest.NewServer(New(g2).Handler())
	t.Cleanup(ts1.Close)
	t.Cleanup(ts2.Close)

	paths := []string{
		"/stats",
		"/histogram",
		"/kappa?u=1&v=2",
		"/core?u=1&v=2",
		"/communities?k=3",
		"/plot.svg",
		"/plot.txt",
	}
	for _, path := range paths {
		first := fetchBody(t, ts1.URL+path)
		if again := fetchBody(t, ts1.URL+path); string(again) != string(first) {
			t.Errorf("%s: same server, two requests, different bytes:\n%s\n---\n%s", path, first, again)
		}
		if other := fetchBody(t, ts2.URL+path); string(other) != string(first) {
			t.Errorf("%s: same graph built in reverse order, different bytes:\n%s\n---\n%s", path, first, other)
		}
	}
}

// TestRepublishDeterministic drives the graph away from its initial
// state and back again, forcing a republish of the same graph content at
// a higher version, and requires every content endpoint to return
// byte-identical bodies. Dense ids get scrambled by the churn (slots are
// recycled LIFO), so any handler or derived artifact ordered by dense
// position rather than external vertex id fails here. /stats is checked
// separately: its Updates work counters legitimately advance across the
// round trip, but the graph-shape fields must return to their old values.
func TestRepublishDeterministic(t *testing.T) {
	g, _ := determinismGraphs()
	ts := httptest.NewServer(New(g).Handler())
	t.Cleanup(ts.Close)

	paths := []string{
		"/histogram",
		"/kappa?u=1&v=2",
		"/core?u=1&v=2",
		"/communities?k=3",
		"/plot.svg",
		"/plot.txt",
	}
	before := make(map[string][]byte, len(paths))
	for _, path := range paths {
		before[path] = fetchBody(t, ts.URL+path)
	}
	var st0 StatsReply
	getJSON(t, ts.URL+"/stats", &st0)
	var v0 VersionReply
	getJSON(t, ts.URL+"/version", &v0)

	// Out and back among the existing vertices (edge removal never drops
	// vertices, so new vertices would not round-trip): drop two original
	// edges, bridge the components, then undo. The re-added edges land in
	// recycled dense slots, so the republished freeze numbers them in a
	// different allocation order than the original.
	postJSON(t, ts.URL+"/edges", `{"remove":[[1,2],[20,21]],"add":[[1,20]]}`)
	postJSON(t, ts.URL+"/edges", `{"remove":[[1,20]],"add":[[1,2],[20,21]]}`)

	var v1 VersionReply
	getJSON(t, ts.URL+"/version", &v1)
	if v1.Version <= v0.Version {
		t.Fatalf("round trip did not republish: v%d → v%d", v0.Version, v1.Version)
	}
	for _, path := range paths {
		if after := fetchBody(t, ts.URL+path); string(after) != string(before[path]) {
			t.Errorf("%s: republished same graph, different bytes:\n%s\n---\n%s",
				path, before[path], after)
		}
	}
	var st1 StatsReply
	getJSON(t, ts.URL+"/stats", &st1)
	if st1.Vertices != st0.Vertices || st1.Edges != st0.Edges ||
		st1.MaxKappa != st0.MaxKappa || st1.MaxCliqueProxy != st0.MaxCliqueProxy {
		t.Errorf("graph-shape stats changed across round trip: %+v vs %+v", st0, st1)
	}
}

// TestWorkerCountDeterministic drives servers configured with 1, 2 and 8
// maintenance workers through the same batched churn and requires
// byte-identical bodies from every content endpoint afterwards. The
// parallel apply path promises snapshot-level determinism regardless of
// worker count; this is the regression net for that promise at the
// serving boundary.
func TestWorkerCountDeterministic(t *testing.T) {
	build := func(workers int) *httptest.Server {
		g, _ := determinismGraphs()
		ts := httptest.NewServer(NewWith(g, Options{Workers: workers}).Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	// Batches that tear triangles apart, rebuild them elsewhere, and close
	// new ones across the two components — enough churn that regions,
	// validation and the conflict suffix all participate.
	batches := []string{
		`{"remove":[[1,2],[3,4],[20,21]],"add":[[1,20],[2,21],[3,22],[8,9],[8,10],[9,10]]}`,
		`{"remove":[[1,20],[8,9]],"add":[[1,2],[3,4],[20,21],[8,11],[9,11],[10,11]]}`,
		`{"remove":[[2,21],[3,22]],"add":[[8,9],[5,8],[5,9],[6,10],[6,11]]}`,
	}
	servers := map[int]*httptest.Server{1: build(1), 2: build(2), 8: build(8)}
	for _, body := range batches {
		for _, ts := range servers {
			postJSON(t, ts.URL+"/edges", body)
		}
	}
	paths := []string{
		"/histogram",
		"/communities?k=1",
		"/communities?k=2",
		"/plot.svg",
		"/plot.txt",
	}
	base := servers[1]
	for _, path := range paths {
		want := fetchBody(t, base.URL+path)
		for workers, ts := range servers {
			if workers == 1 {
				continue
			}
			if got := fetchBody(t, ts.URL+path); string(got) != string(want) {
				t.Errorf("%s: workers=%d differs from workers=1:\n%s\n---\n%s", path, workers, want, got)
			}
		}
	}
	var v1 VersionReply
	getJSON(t, base.URL+"/version", &v1)
	for workers, ts := range servers {
		var v VersionReply
		getJSON(t, ts.URL+"/version", &v)
		if v.Version != v1.Version {
			t.Errorf("workers=%d: version %d, workers=1 got %d", workers, v.Version, v1.Version)
		}
	}
}
