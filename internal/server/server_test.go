package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"trikcore/internal/graph"
)

// newTestServer builds a server over a K5 plus a pendant path and returns
// it with an httptest wrapper.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	g := graph.New()
	for i := graph.Vertex(1); i <= 5; i++ {
		for j := i + 1; j <= 5; j++ {
			g.AddEdge(i, j)
		}
	}
	g.AddEdge(10, 11)
	s := New(g)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestStats(t *testing.T) {
	_, ts := newTestServer(t)
	var rep StatsReply
	if code := getJSON(t, ts.URL+"/stats", &rep); code != 200 {
		t.Fatalf("status %d", code)
	}
	if rep.Vertices != 7 || rep.Edges != 11 || rep.MaxKappa != 3 || rep.MaxCliqueProxy != 5 {
		t.Fatalf("stats = %+v", rep)
	}
}

func TestKappa(t *testing.T) {
	_, ts := newTestServer(t)
	var rep KappaReply
	if code := getJSON(t, ts.URL+"/kappa?u=2&v=1", &rep); code != 200 {
		t.Fatalf("status %d", code)
	}
	if rep.U != 1 || rep.V != 2 || rep.Kappa != 3 || rep.CoCliqueSize != 5 {
		t.Fatalf("kappa = %+v", rep)
	}
	if code := getJSON(t, ts.URL+"/kappa?u=1&v=99", nil); code != 404 {
		t.Fatalf("missing edge status %d", code)
	}
	for _, q := range []string{"?u=x&v=2", "?u=1", "?u=3&v=3"} {
		if code := getJSON(t, ts.URL+"/kappa"+q, nil); code != 400 {
			t.Fatalf("bad query %q status %d", q, code)
		}
	}
}

func TestHistogram(t *testing.T) {
	_, ts := newTestServer(t)
	var rep map[string]int
	getJSON(t, ts.URL+"/histogram", &rep)
	if rep["3"] != 10 || rep["0"] != 1 {
		t.Fatalf("histogram = %v", rep)
	}
}

func TestEdgesUpdateFlow(t *testing.T) {
	_, ts := newTestServer(t)
	body, _ := json.Marshal(EdgesRequest{
		Add:    [][2]graph.Vertex{{6, 1}, {6, 2}, {6, 3}, {6, 4}, {6, 5}, {6, 1}},
		Remove: [][2]graph.Vertex{{10, 11}, {77, 78}},
	})
	resp, err := http.Post(ts.URL+"/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rep EdgesReply
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if rep.Added != 5 || rep.Removed != 1 {
		t.Fatalf("edges reply = %+v (duplicates and absent edges must not count)", rep)
	}
	// Vertex 6 completed a K6: κ rises to 4 everywhere in it.
	var kr KappaReply
	getJSON(t, ts.URL+"/kappa?u=1&v=2", &kr)
	if kr.Kappa != 4 {
		t.Fatalf("after join κ(1,2) = %d, want 4", kr.Kappa)
	}
}

func TestEdgesBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{"{not json", `{"add":[[3,3]]}`} {
		resp, err := http.Post(ts.URL+"/edges", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("body %q: status %d", body, resp.StatusCode)
		}
	}
}

func TestCore(t *testing.T) {
	_, ts := newTestServer(t)
	var rep CoreReply
	if code := getJSON(t, ts.URL+"/core?u=1&v=2", &rep); code != 200 {
		t.Fatalf("status %d", code)
	}
	if rep.Kappa != 3 || len(rep.Edges) != 10 || len(rep.Vertices) != 5 {
		t.Fatalf("core = %+v", rep)
	}
	if code := getJSON(t, ts.URL+"/core?u=1&v=50", nil); code != 404 {
		t.Fatalf("missing edge status %d", code)
	}
}

func TestCommunities(t *testing.T) {
	_, ts := newTestServer(t)
	var rep []CommunityReply
	if code := getJSON(t, ts.URL+"/communities?k=3", &rep); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(rep) != 1 || rep[0].Edges != 10 || len(rep[0].Vertices) != 5 {
		t.Fatalf("communities = %+v", rep)
	}
	if code := getJSON(t, ts.URL+"/communities?k=0", nil); code != 400 {
		t.Fatalf("k=0 status %d", code)
	}
	if code := getJSON(t, ts.URL+"/communities?k=zz", nil); code != 400 {
		t.Fatalf("k=zz status %d", code)
	}
}

func TestPlots(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/plot.svg")
	if err != nil {
		t.Fatal(err)
	}
	svg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Content-Type") != "image/svg+xml" || !bytes.Contains(svg, []byte("<svg")) {
		t.Fatal("svg plot malformed")
	}
	resp, err = http.Get(ts.URL + "/plot.txt")
	if err != nil {
		t.Fatal(err)
	}
	txt, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(txt, []byte("#")) {
		t.Fatal("text plot empty")
	}
}

func TestMethodRouting(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/edges") // GET on a POST route
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /edges status %d", resp.StatusCode)
	}
}

// TestConcurrentReadersAndWriters hammers the server with parallel reads
// and writes; the race detector (go test -race) and the engine's
// consistency guard both watch for trouble.
func TestConcurrentReadersAndWriters(t *testing.T) {
	_, ts := newTestServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				u := 20 + w
				v := 30 + i%5
				body := fmt.Sprintf(`{"add":[[%d,%d]]}`, u, v)
				resp, err := http.Post(ts.URL+"/edges", "application/json", strings.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(ts.URL + "/stats")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	var rep StatsReply
	getJSON(t, ts.URL+"/stats", &rep)
	if rep.Edges < 11 {
		t.Fatalf("edges = %d after concurrent inserts", rep.Edges)
	}
}

func TestStatsEmptyGraph(t *testing.T) {
	s := New(graph.New())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var rep StatsReply
	getJSON(t, ts.URL+"/stats", &rep)
	if rep.Vertices != 0 || rep.Edges != 0 || rep.MaxCliqueProxy != 0 {
		t.Fatalf("empty stats = %+v", rep)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	var rep HealthzReply
	if code := getJSON(t, ts.URL+"/healthz", &rep); code != 200 {
		t.Fatalf("status %d", code)
	}
	if rep.Status != "ok" {
		t.Fatalf("healthz = %+v", rep)
	}
	if rep.UptimeSeconds < 0 {
		t.Fatalf("negative uptime %v", rep.UptimeSeconds)
	}
	if rep.Build.GoVersion == "" {
		t.Fatal("healthz build info missing goVersion")
	}
	if rep.Build.Module != "trikcore" {
		t.Fatalf("healthz build module = %q, want trikcore", rep.Build.Module)
	}
}

func TestEdgesBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t)
	// A syntactically endless "add" array larger than the body cap.
	body := io.MultiReader(
		strings.NewReader(`{"add":[`),
		strings.NewReader(strings.Repeat("[1,2],", maxEdgesBody/6+1)),
	)
	resp, err := http.Post(ts.URL+"/edges", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d, want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}
}

// TestHistogramAfterUpdates checks the maintained histogram and stats stay
// correct through batched updates: completing K6 then deleting it again.
func TestHistogramAfterUpdates(t *testing.T) {
	_, ts := newTestServer(t)
	post := func(req EdgesRequest) {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/edges", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	post(EdgesRequest{Add: [][2]graph.Vertex{{6, 1}, {6, 2}, {6, 3}, {6, 4}, {6, 5}}})
	var hist map[string]int
	getJSON(t, ts.URL+"/histogram", &hist)
	if hist["4"] != 15 || hist["0"] != 1 {
		t.Fatalf("after K6 histogram = %v", hist)
	}
	var rep StatsReply
	getJSON(t, ts.URL+"/stats", &rep)
	if rep.MaxKappa != 4 || rep.Edges != 16 {
		t.Fatalf("after K6 stats = %+v", rep)
	}
	// Remove vertex 6's edges again; everything returns to the seed state.
	post(EdgesRequest{Remove: [][2]graph.Vertex{{6, 1}, {6, 2}, {6, 3}, {6, 4}, {6, 5}}})
	hist = nil // Decode merges into a non-nil map; start fresh.
	getJSON(t, ts.URL+"/histogram", &hist)
	if hist["3"] != 10 || hist["0"] != 1 || len(hist) != 2 {
		t.Fatalf("after teardown histogram = %v", hist)
	}
	getJSON(t, ts.URL+"/stats", &rep)
	if rep.MaxKappa != 3 || rep.Edges != 11 {
		t.Fatalf("after teardown stats = %+v", rep)
	}
}
