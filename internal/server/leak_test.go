package server

import (
	"bufio"
	"net/http"
	"testing"
	"time"

	"trikcore/internal/leakcheck"
)

// Goroutine-leak regression tests for the three ways an SSE stream ends.
// Each arms leakcheck after the httptest server exists (grandfathering
// its accept loop) and before any subscription, so the verification —
// which t.Cleanup runs before the server's own teardown — catches a
// subscribe handler that outlives its stream. If handleSubscribe ever
// stops watching ctx.Done/sub.Done, or registry deletion and server
// shutdown stop closing feeds, these tests fail with the leaked
// handler's stack instead of riding out the whole go-test timeout.

// armLeakcheck orders the cleanup stack for a leak test: client-side
// keepalive connections are closed first (so their server halves can
// exit), then leakcheck verifies, then the server closes its feeds
// (unsticking any handler the verification just reported, so the
// httptest teardown below it can finish instead of hanging the run),
// and finally — registered before this call, in newTestServer — the
// httptest server shuts down.
func armLeakcheck(t *testing.T, s *Server) {
	t.Cleanup(s.Close) // idempotent
	leakcheck.Check(t)
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
}

// expectStreamEnd asserts the server ends the stream (EOF) within a
// bounded wait, so a handler that ignores its shutdown signal fails the
// test in seconds rather than hanging it.
func expectStreamEnd(t *testing.T, br *bufio.Reader, who string) {
	t.Helper()
	got := make(chan error, 1)
	go func() {
		_, err := br.ReadString('\n')
		got <- err
	}()
	select {
	case err := <-got:
		if err == nil {
			t.Fatalf("%s: stream still delivering data", who)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("%s: stream still open, handler did not exit", who)
	}
}

// TestLeakSSEClientDisconnect: the client hangs up; the handler must
// observe the canceled request context and return.
func TestLeakSSEClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t)
	armLeakcheck(t, s)
	_, done := openSSE(t, ts.URL+"/subscribe", 0)
	done()
}

// TestLeakGraphDeleteWithLiveSubscribers: DELETE /g/{name} closes the
// graph's feed; both live handlers must observe their closed Done
// channels and return even though the clients are still connected.
func TestLeakGraphDeleteWithLiveSubscribers(t *testing.T) {
	s, ts := newTestServer(t)
	armLeakcheck(t, s)
	mustStatus(t, http.MethodPost, ts.URL+"/g/tmp", "", http.StatusCreated)
	br1, done1 := openSSE(t, ts.URL+"/g/tmp/subscribe", 0)
	defer done1()
	br2, done2 := openSSE(t, ts.URL+"/g/tmp/subscribe", 0)
	defer done2()
	mustStatus(t, http.MethodDelete, ts.URL+"/g/tmp", "", http.StatusOK)
	expectStreamEnd(t, br1, "subscriber 1 after graph deletion")
	expectStreamEnd(t, br2, "subscriber 2 after graph deletion")
}

// TestLeakServerShutdownWithLiveSubscribers: Server.Close closes every
// feed, which must unblock all SSE handlers so the HTTP server can
// drain.
func TestLeakServerShutdownWithLiveSubscribers(t *testing.T) {
	s, ts := newTestServer(t)
	armLeakcheck(t, s)
	br, done := openSSE(t, ts.URL+"/subscribe", 0)
	defer done()
	s.Close()
	expectStreamEnd(t, br, "subscriber after Server.Close")
}
