package server

import (
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"trikcore/internal/core"
	"trikcore/internal/dynamic"
	"trikcore/internal/graph"
	"trikcore/internal/obs"
	"trikcore/internal/view"
)

// Options configure optional server observability. The zero value — no
// registry, no logger, no pprof — yields a server identical to one built
// before instrumentation existed: no middleware wraps the handlers and no
// extra routes are registered.
type Options struct {
	// Registry, when non-nil, receives metrics from every layer (engine,
	// publisher, HTTP) and is served on GET /metrics in Prometheus text
	// format. The /metrics endpoint itself is not instrumented, so two
	// back-to-back scrapes of an idle server are byte-identical.
	Registry *obs.Registry
	// Logger, when non-nil, receives one structured line per request:
	// method, path (the route pattern, not the raw URL), status, body
	// bytes and duration.
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiling endpoints expose internals and should be opted into.
	Pprof bool
	// Workers, when > 1, applies write batches through the engine's
	// parallel maintenance path with that many workers. Served state is
	// identical at any setting; this only changes write throughput.
	Workers int
}

// NewWith builds a server over a copy of g with explicit observability
// options. With a registry, the initial decomposition runs with its
// phases timed and both the engine and the publisher are instrumented
// against the same registry before the first snapshot is served.
func NewWith(g *graph.Graph, opts Options) *Server {
	var pub *view.Publisher
	if opts.Registry != nil {
		phases := obs.NewPhaseTimer(opts.Registry, "trikcore_core_phase_seconds",
			"Wall time per decomposition phase.",
			core.PhaseFreeze, core.PhaseSupport, core.PhasePeel)
		en := dynamic.NewEngineFromDecomposition(
			core.DecomposeWith(g, core.Options{Phases: phases}))
		en.Instrument(opts.Registry)
		pub = view.NewPublisher(en)
		pub.Instrument(opts.Registry)
	} else {
		pub = view.NewPublisherFromGraph(g)
	}
	if opts.Workers > 1 {
		pub.SetWorkers(opts.Workers)
	}
	s := &Server{
		pub:   pub,
		reg:   opts.Registry,
		log:   opts.Logger,
		pprof: opts.Pprof,
		start: time.Now(),
	}
	if s.reg != nil {
		s.inFlight = s.reg.Gauge("trikcore_http_in_flight_requests",
			"Requests currently being handled.", nil)
	}
	return s
}

// endpointMetrics is one route's handle set: the latency histogram plus a
// lazily-filled per-status-code counter array. The array is indexed by
// status code so the steady-state hot path is one atomic load; misses go
// through the registry's idempotent getOrCreate, so a racing fill is
// benign (both callers get the same handle).
type endpointMetrics struct {
	method, path string
	latency      *obs.Histogram
	codes        [600]atomic.Pointer[obs.Counter]
}

// counterFor resolves the requests_total counter for one status code.
func (em *endpointMetrics) counterFor(reg *obs.Registry, code int) *obs.Counter {
	if code < 0 || code >= len(em.codes) {
		code = 0
	}
	if c := em.codes[code].Load(); c != nil {
		return c
	}
	c := reg.Counter("trikcore_http_requests_total",
		"HTTP requests by endpoint and status code.",
		obs.Labels{"method": em.method, "path": em.path, "code": strconv.Itoa(code)})
	em.codes[code].Store(c)
	return c
}

// statusWriter captures the status code and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	return n, err
}

// route registers pattern on mux, wrapped in the observability middleware
// when a registry or logger is configured. An unconfigured server
// registers the bare handler — zero overhead, exactly the pre-middleware
// behavior. The pattern's path segment (not the raw request URL) becomes
// the path label and log field, keeping label cardinality fixed.
func (s *Server) route(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	if s.reg == nil && s.log == nil {
		mux.HandleFunc(pattern, h)
		return
	}
	method, path, ok := strings.Cut(pattern, " ")
	if !ok {
		method, path = "", pattern
	}
	var em *endpointMetrics
	if s.reg != nil {
		em = &endpointMetrics{
			method: method,
			path:   path,
			latency: s.reg.Histogram("trikcore_http_request_seconds",
				"HTTP request latency by endpoint.", obs.DurationBuckets,
				obs.Labels{"method": method, "path": path}),
		}
	}
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		s.inFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.status == 0 {
			// Handler wrote nothing: net/http sends 200 on return.
			sw.status = http.StatusOK
		}
		d := time.Since(t0)
		s.inFlight.Add(-1)
		if em != nil {
			em.latency.Observe(d.Seconds())
			em.counterFor(s.reg, sw.status).Inc()
		}
		if s.log != nil {
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", method),
				slog.String("path", path),
				slog.Int("status", sw.status),
				slog.Int("bytes", sw.bytes),
				slog.Duration("duration", d),
			)
		}
	})
}

// handleMetrics serves the registry in Prometheus text format. It is
// registered outside the middleware: scraping must not perturb the
// metrics it reads, and an idle server's consecutive scrapes must be
// byte-identical.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.TextContentType)
	w.Write(s.reg.Gather())
}
