package server

import (
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"trikcore/internal/core"
	"trikcore/internal/dynamic"
	"trikcore/internal/graph"
	"trikcore/internal/obs"
	"trikcore/internal/obs/trace"
	"trikcore/internal/registry"
	"trikcore/internal/view"
)

// Options configure the server: observability wiring plus the
// multi-tenancy envelope (graph-count cap and per-graph quotas). The
// zero value — no registry, no logger, no pprof, default caps, no
// quotas — yields a server whose legacy routes behave identically to
// the pre-tenancy single-graph server.
type Options struct {
	// Registry, when non-nil, receives metrics from every layer (engine,
	// publisher, HTTP, per-graph registry) and is served on GET /metrics
	// in Prometheus text format. The /metrics endpoint itself is not
	// instrumented, so two back-to-back scrapes of an idle server are
	// byte-identical.
	Registry *obs.Registry
	// Logger, when non-nil, receives one structured line per request:
	// method, path (the route pattern, not the raw URL), status, body
	// bytes and duration.
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiling endpoints expose internals and should be opted into.
	Pprof bool
	// Workers, when > 1, applies write batches through the engine's
	// parallel maintenance path with that many workers. Served state is
	// identical at any setting; this only changes write throughput.
	Workers int
	// MaxGraphs caps how many graph spaces the server hosts at once
	// (0 = registry.DefaultMaxGraphs, negative = unlimited).
	MaxGraphs int
	// Quotas bound every hosted graph space (zero fields = unlimited).
	Quotas registry.Quotas
	// MaxGraphLabels bounds the distinct `graph` metric label values
	// (0 = registry.DefaultMaxGraphLabels); later graph names share the
	// obs.Overflow bucket so metric cardinality cannot grow without
	// limit.
	MaxGraphLabels int
	// Trace, when non-nil, turns on the per-request flight recorder:
	// every API request runs under a trace whose spans follow it through
	// registry, publisher and engine, the retained rings are exported as
	// Chrome trace-event JSON on GET /debug/trace, and responses carry
	// the trace id in an X-Trikcore-Trace header. Off by default —
	// untraced servers run the exact pre-trace request path.
	Trace *trace.Recorder
}

// NewWith builds a server hosting g as its "default" graph space, with
// explicit options. With a metrics registry, the initial decomposition
// runs with its phases timed and both the engine and the publisher of
// the default graph are instrumented against that registry before the
// first snapshot is served; additional graph spaces get per-graph
// trikcore_graph_* series instead (bounded by MaxGraphLabels).
func NewWith(g *graph.Graph, opts Options) *Server {
	var pub *view.Publisher
	if opts.Registry != nil {
		phases := obs.NewPhaseTimer(opts.Registry, "trikcore_core_phase_seconds",
			"Wall time per decomposition phase.",
			core.PhaseFreeze, core.PhaseSupport, core.PhasePeel)
		en := dynamic.NewEngineFromDecomposition(
			core.DecomposeWith(g, core.Options{Phases: phases}))
		en.Instrument(opts.Registry)
		pub = view.NewPublisher(en)
		pub.Instrument(opts.Registry)
	} else {
		pub = view.NewPublisherFromGraph(g)
	}
	reg := registry.New(registry.Config{
		MaxGraphs:      opts.MaxGraphs,
		Quotas:         opts.Quotas,
		Workers:        opts.Workers,
		Registry:       opts.Registry,
		MaxGraphLabels: opts.MaxGraphLabels,
	})
	if _, err := reg.Adopt(registry.DefaultGraph, pub); err != nil {
		// A fresh registry with a valid constant name cannot refuse.
		panic("server: adopt default graph: " + err.Error())
	}
	s := &Server{
		reg:    reg,
		obsReg: opts.Registry,
		log:    opts.Logger,
		pprof:  opts.Pprof,
		tracer: opts.Trace,
		start:  time.Now(),
	}
	if s.obsReg != nil {
		s.inFlight = s.obsReg.Gauge("trikcore_http_in_flight_requests",
			"Requests currently being handled.", nil)
	}
	return s
}

// endpointMetrics is one route's handle set: the latency histogram plus a
// lazily-filled per-status-code counter array. The array is indexed by
// status code so the steady-state hot path is one atomic load; misses go
// through the registry's idempotent getOrCreate, so a racing fill is
// benign (both callers get the same handle).
type endpointMetrics struct {
	method, path string
	latency      *obs.Histogram
	codes        [600]atomic.Pointer[obs.Counter]
}

// counterFor resolves the requests_total counter for one status code.
func (em *endpointMetrics) counterFor(reg *obs.Registry, code int) *obs.Counter {
	if code < 0 || code >= len(em.codes) {
		code = 0
	}
	if c := em.codes[code].Load(); c != nil {
		return c
	}
	c := reg.Counter("trikcore_http_requests_total",
		"HTTP requests by endpoint and status code.",
		obs.Labels{"method": em.method, "path": em.path, "code": strconv.Itoa(code)})
	em.codes[code].Store(c)
	return c
}

// statusWriter captures the status code and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	return n, err
}

// Flush keeps SSE streaming working through the middleware wrapper.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// route registers pattern on mux, wrapped in the observability middleware
// when a registry or logger is configured. An unconfigured server
// registers the bare handler — zero overhead, exactly the pre-middleware
// behavior. The pattern's path segment (not the raw request URL) becomes
// the path label and log field, keeping label cardinality fixed.
func (s *Server) route(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	if s.obsReg == nil && s.log == nil && s.tracer == nil {
		mux.HandleFunc(pattern, h)
		return
	}
	method, path, ok := strings.Cut(pattern, " ")
	if !ok {
		method, path = "", pattern
	}
	var em *endpointMetrics
	if s.obsReg != nil {
		em = &endpointMetrics{
			method: method,
			path:   path,
			latency: s.obsReg.Histogram("trikcore_http_request_seconds",
				"HTTP request latency by endpoint.", obs.LogDurationBuckets,
				obs.Labels{"method": method, "path": path}),
		}
	}
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		s.inFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		// Each request runs under its own flight-recorder trace (nil
		// recorder → nil trace → every span downstream no-ops). The id
		// goes out as a response header before the handler writes, so a
		// slow request in the logs can be matched to /debug/trace.
		tr := s.tracer.Start(pattern)
		if tr != nil {
			sw.Header().Set("X-Trikcore-Trace", strconv.FormatUint(tr.ID(), 10))
			r = r.WithContext(trace.NewContext(r.Context(), tr))
		}
		h(sw, r)
		if sw.status == 0 {
			// Handler wrote nothing: net/http sends 200 on return.
			sw.status = http.StatusOK
		}
		tr.Finish()
		d := time.Since(t0)
		s.inFlight.Add(-1)
		if em != nil {
			em.latency.Observe(d.Seconds())
			em.counterFor(s.obsReg, sw.status).Inc()
		}
		if s.log != nil {
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", method),
				slog.String("path", path),
				slog.Int("status", sw.status),
				slog.Int("bytes", sw.bytes),
				slog.Duration("duration", d),
			)
		}
	})
}

// handleDebugTrace serves the flight recorder's retained traces as Chrome
// trace-event JSON (load into chrome://tracing or Perfetto). Registered
// outside the middleware like /metrics: inspecting traces must not record
// new ones.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.tracer.Export())
}

// handleMetrics serves the registry in Prometheus text format. It is
// registered outside the middleware: scraping must not perturb the
// metrics it reads, and an idle server's consecutive scrapes must be
// byte-identical.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.TextContentType)
	w.Write(s.obsReg.Gather())
}
