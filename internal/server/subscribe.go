package server

import (
	"fmt"
	"net/http"
	"strconv"
)

// GET /g/{name}/subscribe — the change feed over Server-Sent Events.
//
// On each snapshot publication the graph's feed diffs the new snapshot's
// maintained κ against the previous one and emits κ promotion/demotion
// events plus template-pattern events (New Form / Bridge / New Join);
// this handler frames them as SSE:
//
//	id: <monotone event id>
//	event: kappa | pattern
//	data: <JSON payload>
//
// A reconnecting client sends the standard Last-Event-ID header (or a
// ?last=<id> query parameter, handy with curl) and receives every
// retained event after that id before going live. The stream ends when
// the client disconnects, the graph is deleted, the server shuts down,
// or the client falls too far behind and is dropped — reconnect with
// Last-Event-ID to resume.

// parseLastEventID extracts the resume position: the Last-Event-ID
// header if present, else the ?last= query parameter, else 0.
func parseLastEventID(r *http.Request) (uint64, error) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("last")
	}
	if raw == "" {
		return 0, nil
	}
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad Last-Event-ID %q: %v", raw, err)
	}
	return id, nil
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	sp, ok := s.space(w, r)
	if !ok {
		return
	}
	lastID, err := parseLastEventID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	feed := sp.Feed()
	replay, sub := feed.Subscribe(lastID)
	defer feed.Unsubscribe(sub)

	// Handshake comment: gives the client (and curl) immediate bytes
	// confirming the stream, without consuming an event id.
	fmt.Fprintf(w, ": subscribed graph=%s\n\n", sp.Name())
	for _, ev := range replay {
		writeSSE(w, ev.ID, ev.Kind, ev.Data)
	}
	flusher.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-sub.Done:
			return
		case ev := <-sub.C:
			writeSSE(w, ev.ID, ev.Kind, ev.Data)
			// Drain whatever else is already queued before flushing, so a
			// burst costs one flush instead of one per event.
			for drained := false; !drained; {
				select {
				case ev := <-sub.C:
					writeSSE(w, ev.ID, ev.Kind, ev.Data)
				default:
					drained = true
				}
			}
			flusher.Flush()
		}
	}
}

// writeSSE frames one event in text/event-stream format.
func writeSSE(w http.ResponseWriter, id uint64, kind string, data []byte) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, kind, data)
}
