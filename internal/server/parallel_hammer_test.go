package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"trikcore/internal/graph"
)

// TestParallelApplyUnderReadLoad hammers a server whose publisher runs
// the epoch-coordinated parallel apply path (Workers: 4) with batched
// churn while reader goroutines pound every content endpoint. The race
// detector watches the worker fan-out, the staging buffers and the
// snapshot swap; under -tags trikdebug the engine additionally asserts
// its full invariant suite after every epoch. This is the test the
// `make debugrace` target exists to run.
func TestParallelApplyUnderReadLoad(t *testing.T) {
	g := graph.New()
	for i := graph.Vertex(1); i <= 8; i++ {
		for j := i + 1; j <= 8; j++ {
			g.AddEdge(i, j)
		}
	}
	g.AddEdge(40, 41)
	s := NewWith(g, Options{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const rounds = 25
	var wg sync.WaitGroup
	// Two writers alternate between growing cliques in disjoint vertex
	// ranges and tearing them down, so every batch resolves into several
	// regions and the barrier, validation and merge phases all run hot.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := graph.Vertex(100 + 50*w)
			for i := 0; i < rounds; i++ {
				a, b, c := base, base+1, base+graph.Vertex(2+i%3)
				add := fmt.Sprintf(`{"add":[[%d,%d],[%d,%d],[%d,%d],[%d,%d]]}`,
					a, b, a, c, b, c, a, base+5)
				del := fmt.Sprintf(`{"remove":[[%d,%d],[%d,%d]]}`, a, c, b, c)
				for _, body := range []string{add, del} {
					resp, err := http.Post(ts.URL+"/edges", "application/json", strings.NewReader(body))
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			paths := []string{"/stats", "/histogram", "/communities?k=1", "/plot.txt", "/version"}
			for i := 0; i < rounds*2; i++ {
				resp, err := http.Get(ts.URL + paths[(r+i)%len(paths)])
				if err == nil {
					resp.Body.Close()
				}
			}
		}(r)
	}
	wg.Wait()

	var st StatsReply
	getJSON(t, ts.URL+"/stats", &st)
	if st.Edges == 0 {
		t.Fatal("hammered server lost its graph")
	}
}
