package server

import (
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"trikcore/internal/registry"
)

// BuildReply describes the running binary in the /healthz response,
// sourced from runtime/debug.ReadBuildInfo: the Go toolchain, the main
// module path and version, and — when the binary was built from a VCS
// checkout — the revision, commit time and dirty flag.
type BuildReply struct {
	GoVersion string `json:"goVersion"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	Time      string `json:"time,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// HealthzReply is the /healthz response body.
type HealthzReply struct {
	Status string `json:"status"`
	// Version is the default graph's currently published snapshot
	// version (the same number the legacy routes' X-Trikcore-Version
	// header carries); 0 if the default graph was deleted.
	Version       uint64     `json:"version"`
	UptimeSeconds float64    `json:"uptimeSeconds"`
	Build         BuildReply `json:"build"`
	// Graphs counts the hosted graph spaces.
	Graphs int `json:"graphs"`
	// Trace reports the flight recorder's ring occupancy; absent when
	// tracing is off.
	Trace *TraceHealth `json:"trace,omitempty"`
}

// TraceHealth is the flight-recorder section of /healthz: per-ring
// capacity and how many finished traces each ring currently holds.
type TraceHealth struct {
	Ring    int `json:"ring"`
	Recent  int `json:"recent"`
	Slowest int `json:"slowest"`
}

// buildReply resolves the binary's build description once; ReadBuildInfo
// walks the embedded module table, which never changes after link time.
var buildReply = sync.OnceValue(func() BuildReply {
	var b BuildReply
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.GoVersion = bi.GoVersion
	b.Module = bi.Main.Path
	b.Version = bi.Main.Version
	for _, st := range bi.Settings {
		switch st.Key {
		case "vcs.revision":
			b.Revision = st.Value
		case "vcs.time":
			b.Time = st.Value
		case "vcs.modified":
			b.Modified = st.Value == "true"
		}
	}
	return b
})

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var version uint64
	if sp, ok := s.reg.Get(registry.DefaultGraph); ok {
		version = sp.Acquire().Version
	}
	w.Header().Set("X-Trikcore-Version", strconv.FormatUint(version, 10))
	uptime := 0.0
	if !s.start.IsZero() {
		uptime = time.Since(s.start).Seconds()
	}
	rep := HealthzReply{
		Status:        "ok",
		Version:       version,
		UptimeSeconds: uptime,
		Build:         buildReply(),
		Graphs:        s.reg.Len(),
	}
	if s.tracer != nil {
		recent, slowest := s.tracer.Occupancy()
		rep.Trace = &TraceHealth{Ring: s.tracer.Ring(), Recent: recent, Slowest: slowest}
	}
	writeJSON(w, rep)
}
