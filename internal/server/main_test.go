package server

import (
	"os"
	"testing"

	"trikcore/internal/leakcheck"
)

// TestMain fails the suite if any test leaves a goroutine behind — the
// runtime counterpart of trikcheck's goroutine-lifecycle rule. SSE
// handlers, per-connection server goroutines and feed subscribers must
// all be gone once every test (and its cleanups) has finished.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
