package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"trikcore/internal/graph"
	"trikcore/internal/obs/trace"
)

// newTracedServer builds a server with only the flight recorder wired
// (no metrics registry, no logger), over the standard K5-plus-pendant
// test graph.
func newTracedServer(t *testing.T, workers int) (*httptest.Server, *trace.Recorder) {
	t.Helper()
	g := graph.New()
	for i := graph.Vertex(1); i <= 5; i++ {
		for j := i + 1; j <= 5; j++ {
			g.AddEdge(i, j)
		}
	}
	g.AddEdge(10, 11)
	rec := trace.New(trace.Options{Ring: 16})
	s := NewWith(g, Options{Trace: rec, Workers: workers})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, rec
}

// traceEvents fetches /debug/trace and decodes its events.
func traceEvents(t *testing.T, ts *httptest.Server) []struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Dur  float64 `json:"dur"`
	Tid  uint64  `json:"tid"`
} {
	t.Helper()
	status, body := fetch(t, ts.URL+"/debug/trace")
	if status != 200 {
		t.Fatalf("/debug/trace status %d: %s", status, body)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
			Tid  uint64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/debug/trace not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

// spanNames collects the distinct event names present.
func spanNames(evs []struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Dur  float64 `json:"dur"`
	Tid  uint64  `json:"tid"`
}) map[string]bool {
	names := make(map[string]bool)
	for _, ev := range evs {
		names[ev.Name] = true
	}
	return names
}

// TestDebugTraceCoversStageTimers drives a write through the serial
// engine path and checks the exported trace covers the registry span,
// the publisher spans, and every serial-batch stage timer.
func TestDebugTraceCoversStageTimers(t *testing.T) {
	ts, _ := newTracedServer(t, 0)
	body := `{"add":[[20,21],[21,22],[20,22]],"remove":[[10,11]]}`
	resp, err := http.Post(ts.URL+"/edges", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Trikcore-Trace") == "" {
		t.Fatal("traced response missing X-Trikcore-Trace header")
	}
	fetch(t, ts.URL+"/plot.txt")
	fetch(t, ts.URL+"/communities?k=3")

	evs := traceEvents(t, ts)
	names := spanNames(evs)
	for _, want := range []string{
		"POST /edges",          // root event of the write request
		"space.apply",          // registry layer
		"publisher.mutate",     // view layer write funnel
		"publisher.publish",    // snapshot freeze
		"engine.apply_batch",   // engine batch envelope
		"engine.canonicalize",  // the three serial stage timers
		"engine.delete",        //
		"engine.insert",        //
		"memo.plot_txt",        // artifact memo build
		"memo.communities",     //
		"GET /g/{name}/plot.txt", // read request root (scoped pattern label)
	} {
		// Legacy routes register under the unprefixed pattern; accept
		// either label for read roots.
		if want == "GET /g/{name}/plot.txt" {
			if !names["GET /plot.txt"] && !names[want] {
				t.Fatalf("missing read-request root; have %v", names)
			}
			continue
		}
		if !names[want] {
			t.Fatalf("exported trace missing span %q; have %v", want, names)
		}
	}
	for _, ev := range evs {
		if ev.Ph != "X" || ev.Dur < 0 {
			t.Fatalf("malformed event %+v", ev)
		}
	}
}

// TestDebugTraceParallelStages drives a write through the parallel
// engine path (workers > 1) and checks the parallel stage timers appear.
func TestDebugTraceParallelStages(t *testing.T) {
	ts, _ := newTracedServer(t, 4)
	// A batch with several disjoint triangles so partitioning has regions.
	body := `{"add":[[20,21],[21,22],[20,22],[30,31],[31,32],[30,32],[40,41],[41,42],[40,42]]}`
	resp, err := http.Post(ts.URL+"/edges", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	names := spanNames(traceEvents(t, ts))
	for _, want := range []string{
		"engine.apply_parallel",
		"engine.resolve", "engine.partition", "engine.execute", "engine.merge",
		"publisher.publish",
	} {
		if !names[want] {
			t.Fatalf("parallel trace missing span %q; have %v", want, names)
		}
	}
}

// TestHealthzTraceOccupancy checks /healthz reports the ring state, and
// only when tracing is on.
func TestHealthzTraceOccupancy(t *testing.T) {
	ts, rec := newTracedServer(t, 0)
	fetch(t, ts.URL+"/stats")
	fetch(t, ts.URL+"/stats")
	status, body := fetch(t, ts.URL+"/healthz")
	if status != 200 {
		t.Fatalf("/healthz status %d", status)
	}
	var rep HealthzReply
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("traced /healthz missing trace section")
	}
	if rep.Trace.Ring != rec.Ring() {
		t.Fatalf("ring = %d, want %d", rep.Trace.Ring, rec.Ring())
	}
	// The two /stats requests and the /healthz trace in flight: at least
	// the two finished /stats traces are retained.
	if rep.Trace.Recent < 2 || rep.Trace.Slowest < 2 {
		t.Fatalf("occupancy = %+v, want ≥2 in each ring", rep.Trace)
	}

	// Untraced server: no section, no /debug/trace route.
	g := graph.New()
	g.AddEdge(1, 2)
	plain := httptest.NewServer(NewWith(g, Options{}).Handler())
	defer plain.Close()
	_, body = fetch(t, plain.URL+"/healthz")
	var rep2 HealthzReply
	if err := json.Unmarshal(body, &rep2); err != nil {
		t.Fatal(err)
	}
	if rep2.Trace != nil {
		t.Fatal("untraced /healthz has trace section")
	}
	status, _ = fetch(t, plain.URL+"/debug/trace")
	if status != 404 {
		t.Fatalf("untraced /debug/trace status %d, want 404", status)
	}
}

// TestUntracedRequestsCarryNoHeader pins that tracing stays opt-in.
func TestUntracedRequestsCarryNoHeader(t *testing.T) {
	g := graph.New()
	g.AddEdge(1, 2)
	ts := httptest.NewServer(NewWith(g, Options{}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Trikcore-Trace") != "" {
		t.Fatal("untraced response carries X-Trikcore-Trace")
	}
}
