package server

import (
	"net/http"
	"strconv"

	"trikcore/internal/events"
	"trikcore/internal/graph"
)

// Snapshot endpoints: bookmark the current published snapshot, then ask
// how the live graph evolved relative to the bookmark — the dual-view
// plot (Algorithm 3) and community events over HTTP. Each graph space
// carries its own bookmark slot; the unprefixed legacy routes address
// the default graph's.
//
//	POST /g/{name}/snapshot       bookmark the current published snapshot
//	GET  /g/{name}/dualview       dual-view markers vs the bookmark (JSON)
//	GET  /g/{name}/dualview.svg   the changed-clique plot with marker bands
//	GET  /g/{name}/events?k=K     community-evolution events vs the bookmark
//
// The bookmark is just an extra reference to an already-published
// immutable view.Snapshot — taking one copies nothing and decomposes
// nothing, and both sides of a dual view or event diff serve from their
// maintained κ. Responses depend on the bookmark as well as the live
// snapshot, so their ETags carry both versions ("v<live>.b<bookmark>").

func (s *Server) registerSnapshotRoutes(mux *http.ServeMux) {
	s.scoped(mux, "POST", "/snapshot", s.handleSnapshot)
	s.scoped(mux, "GET", "/dualview", s.handleDualView)
	s.scoped(mux, "GET", "/dualview.svg", s.handleDualViewSVG)
	s.scoped(mux, "GET", "/events", s.handleEvents)
}

// SnapshotReply is the /snapshot response body.
type SnapshotReply struct {
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sp, ok := s.space(w, r)
	if !ok {
		return
	}
	sn := sp.Acquire()
	sp.SetBookmark(sn)
	w.Header().Set("X-Trikcore-Version", strconv.FormatUint(sn.Version, 10))
	writeJSON(w, SnapshotReply{Vertices: sn.NumVertices(), Edges: sn.NumEdges()})
}

// DualViewMarkerReply describes one correspondence marker.
type DualViewMarkerReply struct {
	Label           string         `json:"label"`
	Height          int            `json:"height"`
	Width           int            `json:"width"`
	Vertices        []graph.Vertex `json:"vertices"`
	BeforeRegions   [][2]int       `json:"beforeRegions"`
	NewVertexCount  int            `json:"newVertexCount"`
	AfterPeakStart  int            `json:"afterPeakStart"`
	AfterPeakHeight int            `json:"afterPeakHeight"`
}

func (s *Server) handleDualView(w http.ResponseWriter, r *http.Request) {
	sp, ok := s.space(w, r)
	if !ok {
		return
	}
	bm := sp.Bookmark()
	if bm == nil {
		httpError(w, http.StatusConflict, "no snapshot bookmarked; POST /snapshot first")
		return
	}
	sn := sp.Acquire()
	if preamble(w, r, sn, bm) {
		return
	}
	dv := sn.DualViewAgainst(bm)
	out := make([]DualViewMarkerReply, 0, len(dv.Markers))
	for _, mk := range dv.Markers {
		out = append(out, DualViewMarkerReply{
			Label:           mk.Label,
			Height:          mk.Peak.Height,
			Width:           mk.Peak.Width(),
			Vertices:        mk.Peak.Vertices,
			BeforeRegions:   mk.BeforeRegions(),
			NewVertexCount:  len(mk.NewVertices),
			AfterPeakStart:  mk.Peak.Start,
			AfterPeakHeight: mk.Peak.Height,
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleDualViewSVG(w http.ResponseWriter, r *http.Request) {
	sp, ok := s.space(w, r)
	if !ok {
		return
	}
	bm := sp.Bookmark()
	if bm == nil {
		httpError(w, http.StatusConflict, "no snapshot bookmarked; POST /snapshot first")
		return
	}
	sn := sp.Acquire()
	if preamble(w, r, sn, bm) {
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	w.Write(sn.DualViewSVGAgainst(bm))
}

// EventReply is one community-evolution event.
type EventReply struct {
	Type   string `json:"type"`
	Before []int  `json:"before"`
	After  []int  `json:"after"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sp, ok := s.space(w, r)
	if !ok {
		return
	}
	k, err := strconv.ParseInt(r.URL.Query().Get("k"), 10, 32)
	if err != nil || k < 1 {
		httpError(w, http.StatusBadRequest, "k must be a positive integer")
		return
	}
	bm := sp.Bookmark()
	if bm == nil {
		httpError(w, http.StatusConflict, "no snapshot bookmarked; POST /snapshot first")
		return
	}
	sn := sp.Acquire()
	if preamble(w, r, sn, bm) {
		return
	}
	// Both community lists come from maintained κ (memoized per snapshot);
	// only the cheap matching runs per request.
	evs := events.Detect(bm.CommunitiesAt(int32(k)), sn.CommunitiesAt(int32(k)), events.Options{})
	out := make([]EventReply, 0, len(evs))
	for _, e := range evs {
		out = append(out, EventReply{Type: e.Type.String(), Before: e.Before, After: e.After})
	}
	writeJSON(w, out)
}
