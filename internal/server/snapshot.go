package server

import (
	"net/http"
	"strconv"

	"trikcore/internal/events"
	"trikcore/internal/graph"
	"trikcore/internal/plot"
)

// Snapshot endpoints: bookmark the current graph, then ask how the live
// graph evolved relative to the bookmark — the dual-view plot
// (Algorithm 3) and community events over HTTP.
//
//	POST /snapshot            bookmark the current graph state
//	GET  /dualview            dual-view markers vs the bookmark (JSON)
//	GET  /dualview.svg        the changed-clique plot with marker bands
//	GET  /events?k=K          community-evolution events vs the bookmark

func (s *Server) registerSnapshotRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /dualview", s.handleDualView)
	mux.HandleFunc("GET /dualview.svg", s.handleDualViewSVG)
	mux.HandleFunc("GET /events", s.handleEvents)
}

// SnapshotReply is the /snapshot response body.
type SnapshotReply struct {
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	// Engine.Graph materializes a standalone snapshot already; no clone
	// needed.
	s.snapshot = s.en.Graph()
	rep := SnapshotReply{Vertices: s.snapshot.NumVertices(), Edges: s.snapshot.NumEdges()}
	s.mu.Unlock()
	writeJSON(w, rep)
}

// dualView builds the dual view between the bookmark and the live graph
// under the read lock. Returns nil if no snapshot was bookmarked.
func (s *Server) dualView() *plot.DualView {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.snapshot == nil {
		return nil
	}
	newCo := plot.EdgeValues(s.en.CoCliqueSizes())
	// The bookmark needs its own decomposition; BuildDualViewFromValues
	// accepts engine-maintained values for the live side.
	oldVals := oldSnapshotValues(s.snapshot)
	dv := plot.BuildDualViewFromValues(s.snapshot, s.en.Graph(), oldVals, newCo, plot.DualViewOptions{})
	return &dv
}

// oldSnapshotValues decomposes a bookmarked snapshot into plot values.
func oldSnapshotValues(g *graph.Graph) plot.EdgeValues {
	d := decomposeForServer(g)
	return plot.FromDecomposition(d)
}

// DualViewMarkerReply describes one correspondence marker.
type DualViewMarkerReply struct {
	Label           string         `json:"label"`
	Height          int            `json:"height"`
	Width           int            `json:"width"`
	Vertices        []graph.Vertex `json:"vertices"`
	BeforeRegions   [][2]int       `json:"beforeRegions"`
	NewVertexCount  int            `json:"newVertexCount"`
	AfterPeakStart  int            `json:"afterPeakStart"`
	AfterPeakHeight int            `json:"afterPeakHeight"`
}

func (s *Server) handleDualView(w http.ResponseWriter, r *http.Request) {
	dv := s.dualView()
	if dv == nil {
		httpError(w, http.StatusConflict, "no snapshot bookmarked; POST /snapshot first")
		return
	}
	out := make([]DualViewMarkerReply, 0, len(dv.Markers))
	for _, mk := range dv.Markers {
		out = append(out, DualViewMarkerReply{
			Label:           mk.Label,
			Height:          mk.Peak.Height,
			Width:           mk.Peak.Width(),
			Vertices:        mk.Peak.Vertices,
			BeforeRegions:   mk.BeforeRegions(),
			NewVertexCount:  len(mk.NewVertices),
			AfterPeakStart:  mk.Peak.Start,
			AfterPeakHeight: mk.Peak.Height,
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleDualViewSVG(w http.ResponseWriter, r *http.Request) {
	dv := s.dualView()
	if dv == nil {
		httpError(w, http.StatusConflict, "no snapshot bookmarked; POST /snapshot first")
		return
	}
	svg := plot.RenderSVG(dv.After, plot.SVGOptions{
		Title:   "changed cliques since snapshot",
		Markers: dv.MarkersForSVG(),
	})
	w.Header().Set("Content-Type", "image/svg+xml")
	w.Write([]byte(svg))
}

// EventReply is one community-evolution event.
type EventReply struct {
	Type   string `json:"type"`
	Before []int  `json:"before"`
	After  []int  `json:"after"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	k, err := strconv.ParseInt(r.URL.Query().Get("k"), 10, 32)
	if err != nil || k < 1 {
		httpError(w, http.StatusBadRequest, "k must be a positive integer")
		return
	}
	s.mu.RLock()
	snap := s.snapshot
	live := s.en.Graph()
	s.mu.RUnlock()
	if snap == nil {
		httpError(w, http.StatusConflict, "no snapshot bookmarked; POST /snapshot first")
		return
	}
	_, _, evs := events.FromSnapshots(snap, live, int32(k), events.Options{})
	out := make([]EventReply, 0, len(evs))
	for _, e := range evs {
		out = append(out, EventReply{Type: e.Type.String(), Before: e.Before, After: e.After})
	}
	writeJSON(w, out)
}
