package server

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"trikcore/internal/graph"
)

// openSSE opens an SSE stream and consumes the handshake comment, so the
// subscription is guaranteed armed when it returns.
func openSSE(t *testing.T, url string, lastID uint64) (*bufio.Reader, func()) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	for _, want := range []string{": subscribed", ""} {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("handshake: %v", err)
		}
		if !strings.HasPrefix(strings.TrimRight(line, "\n"), want) {
			t.Fatalf("handshake line %q, want prefix %q", line, want)
		}
	}
	return br, func() { resp.Body.Close() }
}

// readSSEUntil accumulates raw stream bytes until the frame carrying
// target's id has been fully read (its terminating blank line included).
func readSSEUntil(t *testing.T, br *bufio.Reader, target uint64) string {
	t.Helper()
	var buf strings.Builder
	var cur uint64
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended before id %d: %v (got %q)", target, err, buf.String())
		}
		buf.WriteString(line)
		if strings.HasPrefix(line, "id: ") {
			if _, err := fmt.Sscanf(line, "id: %d", &cur); err != nil {
				t.Fatalf("bad id line %q", line)
			}
		}
		if line == "\n" && cur >= target {
			return buf.String()
		}
	}
}

func TestSubscribeStreamsKappaAndPatternEvents(t *testing.T) {
	s, ts := newTestServer(t)
	br, done := openSSE(t, ts.URL+"/subscribe", 0)
	defer done()

	// New triangle bridging into the pendant edge's vertices.
	postJSON(t, ts.URL+"/edges", `{"add":[[20,21],[21,22],[20,22]]}`)
	last := s.defaultSpace().Feed().LastID()
	if last == 0 {
		t.Fatal("no events recorded")
	}
	raw := readSSEUntil(t, br, last)
	if !strings.Contains(raw, "event: kappa") {
		t.Fatalf("no kappa events in stream:\n%s", raw)
	}
	if !strings.Contains(raw, `"type":"promote"`) ||
		!strings.Contains(raw, `"u":20,"v":21,"from":-1,"to":1`) {
		t.Fatalf("promotion payload missing:\n%s", raw)
	}
	first := strings.SplitN(raw, "\n", 2)[0]
	if first != "id: 1" {
		t.Fatalf("first frame %q, want id: 1", first)
	}
}

// TestSubscribeDeterministicAcrossRunsAndWorkers replays one publish
// sequence against fresh servers — twice at one worker and once at four
// — and requires byte-identical SSE streams.
func TestSubscribeDeterministicAcrossRunsAndWorkers(t *testing.T) {
	run := func(workers int) string {
		g := graph.New()
		for i := graph.Vertex(1); i <= 5; i++ {
			for j := i + 1; j <= 5; j++ {
				g.AddEdge(i, j)
			}
		}
		g.AddEdge(10, 11)
		s := NewWith(g, Options{Workers: workers})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		br, done := openSSE(t, ts.URL+"/g/default/subscribe", 0)
		defer done()
		for _, body := range []string{
			`{"add":[[20,21],[21,22],[20,22],[1,20]]}`,
			`{"remove":[[1,2]],"add":[[22,23],[20,23],[21,23]]}`,
			`{"remove":[[20,21]]}`,
		} {
			postJSON(t, ts.URL+"/edges", body)
		}
		return readSSEUntil(t, br, s.defaultSpace().Feed().LastID())
	}
	base := run(1)
	if again := run(1); again != base {
		t.Fatalf("two identical runs diverged:\n%s\nvs\n%s", base, again)
	}
	if par := run(4); par != base {
		t.Fatalf("workers=4 diverged from workers=1:\n%s\nvs\n%s", base, par)
	}
}

func TestSubscribeLastEventIDResume(t *testing.T) {
	s, ts := newTestServer(t)
	br, done := openSSE(t, ts.URL+"/subscribe", 0)
	postJSON(t, ts.URL+"/edges", `{"add":[[20,21],[21,22],[20,22]]}`)
	n1 := s.defaultSpace().Feed().LastID()
	first := readSSEUntil(t, br, n1)
	done()

	// Events published while disconnected...
	postJSON(t, ts.URL+"/edges", `{"remove":[[20,21]]}`)
	n2 := s.defaultSpace().Feed().LastID()
	if n2 <= n1 {
		t.Fatalf("no new events: %d -> %d", n1, n2)
	}

	// ...are replayed on reconnect from the Last-Event-ID.
	br, done = openSSE(t, ts.URL+"/subscribe", n1)
	defer done()
	tail := readSSEUntil(t, br, n2)
	if got := strings.SplitN(tail, "\n", 2)[0]; got != fmt.Sprintf("id: %d", n1+1) {
		t.Fatalf("resume started at %q, want id: %d", got, n1+1)
	}
	for id := uint64(1); id <= n1; id++ {
		if strings.Contains(tail, fmt.Sprintf("id: %d\n", id)) {
			t.Fatalf("resume replayed already-seen id %d:\n%s", id, tail)
		}
	}

	// A full re-subscribe via the ?last= query form replays everything:
	// the pre-disconnect prefix then the same tail.
	br, done2 := openSSE(t, ts.URL+"/subscribe?last=0", 0)
	defer done2()
	full := readSSEUntil(t, br, n2)
	if full != first+tail {
		t.Fatalf("full replay != first+tail:\n%s\nvs\n%s", full, first+tail)
	}
}

func TestSubscribeBadLastEventID(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/subscribe?last=nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestSubscribeUnknownGraph(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/g/nope/subscribe")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestSubscribeClosesOnServerClose pins the graceful-shutdown contract:
// Server.Close terminates live SSE streams instead of leaving them to
// ride out a shutdown timeout.
func TestSubscribeClosesOnServerClose(t *testing.T) {
	s, ts := newTestServer(t)
	br, done := openSSE(t, ts.URL+"/subscribe", 0)
	defer done()
	s.Close()
	if _, err := br.ReadString('\n'); err == nil {
		t.Fatal("stream still open after Server.Close")
	}
}

// TestSubscribeClosesOnGraphDelete: deleting a graph ends its streams.
func TestSubscribeClosesOnGraphDelete(t *testing.T) {
	_, ts := newTestServer(t)
	mustStatus(t, http.MethodPost, ts.URL+"/g/tmp", "", http.StatusCreated)
	br, done := openSSE(t, ts.URL+"/g/tmp/subscribe", 0)
	defer done()
	mustStatus(t, http.MethodDelete, ts.URL+"/g/tmp", "", http.StatusOK)
	if _, err := br.ReadString('\n'); err == nil {
		t.Fatal("stream still open after graph deletion")
	}
}
