package server

import (
	"errors"
	"net/http"
	"strconv"

	"trikcore/internal/graph"
	"trikcore/internal/registry"
)

// Graph-space lifecycle endpoints:
//
//	GET    /graphs      list hosted graphs with size and version summaries
//	POST   /g/{name}    create a graph space; optional EdgesRequest seed body
//	DELETE /g/{name}    delete a graph space, closing its change feed
//
// Creation failures map to the registry's error taxonomy: 400 for an
// invalid name or a malformed seed, 409 if the name exists, 429 if the
// global graph cap or a seed-size quota is hit, 413 for an oversized
// seed body.

// GraphReply summarizes one hosted graph in the /graphs listing and the
// create response.
type GraphReply struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Version  uint64 `json:"version"`
	MaxKappa int32  `json:"maxKappa"`
}

// GraphsReply is the /graphs response body.
type GraphsReply struct {
	Graphs []GraphReply `json:"graphs"`
}

func graphReplyOf(sp *registry.Space) GraphReply {
	sn := sp.Acquire()
	return GraphReply{
		Name:     sp.Name(),
		Vertices: sn.NumVertices(),
		Edges:    sn.NumEdges(),
		Version:  sn.Version,
		MaxKappa: sn.MaxK,
	}
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	names := s.reg.List()
	rep := GraphsReply{Graphs: make([]GraphReply, 0, len(names))}
	for _, name := range names {
		if sp, ok := s.reg.Get(name); ok {
			rep.Graphs = append(rep.Graphs, graphReplyOf(sp))
		}
	}
	writeJSON(w, rep)
}

func (s *Server) handleCreateGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var g *graph.Graph
	if r.ContentLength != 0 {
		req, ok := decodeEdgesBody(w, r, s.reg.Quotas().MaxBodyBytes)
		if !ok {
			return
		}
		if len(req.Remove) > 0 {
			httpError(w, http.StatusBadRequest, "seed body must not contain removals")
			return
		}
		g = graph.New()
		for _, p := range req.Add {
			g.AddEdge(p[0], p[1])
		}
	}
	sp, err := s.reg.Create(name, g)
	if err != nil {
		httpError(w, createStatus(err), "%v", err)
		return
	}
	w.Header().Set("X-Trikcore-Version", strconv.FormatUint(sp.Acquire().Version, 10))
	writeJSONStatus(w, http.StatusCreated, graphReplyOf(sp))
}

// createStatus maps a registry create failure onto its HTTP status.
func createStatus(err error) int {
	var qe *registry.QuotaError
	switch {
	case errors.Is(err, registry.ErrInvalidName):
		return http.StatusBadRequest
	case errors.Is(err, registry.ErrExists):
		return http.StatusConflict
	case errors.Is(err, registry.ErrRegistryFull), errors.As(err, &qe):
		return http.StatusTooManyRequests
	case errors.Is(err, registry.ErrClosed):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// DeleteReply is the DELETE /g/{name} response body.
type DeleteReply struct {
	Deleted string `json:"deleted"`
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Delete(name); err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, DeleteReply{Deleted: name})
}
