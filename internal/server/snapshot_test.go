package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"trikcore/internal/graph"
)

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	dec := json.NewDecoder(resp.Body)
	var raw json.RawMessage
	dec.Decode(&raw)
	buf.Write(raw)
	return resp.StatusCode, []byte(buf.String())
}

func TestSnapshotRequired(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/dualview", "/dualview.svg", "/events?k=2"} {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusConflict {
			t.Fatalf("%s before snapshot: status %d", path, code)
		}
	}
}

func TestSnapshotDualViewFlow(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/snapshot", "")
	if code != 200 {
		t.Fatalf("snapshot status %d", code)
	}
	var snap SnapshotReply
	json.Unmarshal(body, &snap)
	if snap.Edges != 11 {
		t.Fatalf("snapshot reply = %+v", snap)
	}

	// Vertex 6 joins the K5 → a grown 6-clique made of new edges.
	postJSON(t, ts.URL+"/edges", `{"add":[[6,1],[6,2],[6,3],[6,4],[6,5]]}`)

	var markers []DualViewMarkerReply
	if code := getJSON(t, ts.URL+"/dualview", &markers); code != 200 {
		t.Fatalf("dualview status %d", code)
	}
	if len(markers) == 0 || markers[0].Height != 6 {
		t.Fatalf("markers = %+v, want the grown 6-clique on top", markers)
	}
	found := false
	for _, v := range markers[0].Vertices {
		if v == graph.Vertex(6) {
			found = true
		}
	}
	if !found {
		t.Fatalf("joiner missing from marker vertices %v", markers[0].Vertices)
	}

	resp, err := http.Get(ts.URL + "/dualview.svg")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("Content-Type") != "image/svg+xml" {
		t.Fatalf("dualview.svg content type %q", resp.Header.Get("Content-Type"))
	}
}

func TestEventsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	postJSON(t, ts.URL+"/snapshot", "")
	// Two newcomers join the K5 (size 5 → 7, beyond the stable ratio).
	postJSON(t, ts.URL+"/edges",
		`{"add":[[6,1],[6,2],[6,3],[6,4],[6,5],[7,1],[7,2],[7,3],[7,4],[7,5],[7,6]]}`)

	var evs []EventReply
	if code := getJSON(t, ts.URL+"/events?k=3", &evs); code != 200 {
		t.Fatalf("events status %d", code)
	}
	if len(evs) != 1 || evs[0].Type != "grow" {
		t.Fatalf("events = %+v, want one grow", evs)
	}
	if code := getJSON(t, ts.URL+"/events?k=0", nil); code != 400 {
		t.Fatal("k=0 accepted")
	}
}

func TestSnapshotIsIsolatedCopy(t *testing.T) {
	s, ts := newTestServer(t)
	postJSON(t, ts.URL+"/snapshot", "")
	postJSON(t, ts.URL+"/edges", `{"remove":[[1,2]]}`)
	// The bookmark is an immutable published snapshot: mutating the live
	// graph must publish a new snapshot, not disturb the pinned one.
	bm := s.defaultSpace().Bookmark()
	if _, ok := bm.KappaOf(graph.NewEdge(1, 2)); !ok {
		t.Fatal("mutating the live graph changed the bookmark")
	}
	if live := s.defaultSpace().Acquire(); live.Version <= bm.Version {
		t.Fatalf("live version %d not past bookmark %d", live.Version, bm.Version)
	}
	if _, ok := s.defaultSpace().Acquire().KappaOf(graph.NewEdge(1, 2)); ok {
		t.Fatal("removed edge still live")
	}
}
