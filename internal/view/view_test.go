package view

import (
	"bytes"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"trikcore/internal/dynamic"
	"trikcore/internal/graph"
)

func k5PlusPendant() *graph.Graph {
	g := graph.New()
	for u := graph.Vertex(1); u <= 5; u++ {
		for v := u + 1; v <= 5; v++ {
			g.AddEdge(u, v)
		}
	}
	g.AddEdge(10, 11)
	return g
}

// TestPublisherPublicationProtocol pins the core contract: the initial
// state is published, no-op batches republish nothing (same pointer,
// same version), effective batches publish a fresh snapshot, and old
// snapshots stay frozen.
func TestPublisherPublicationProtocol(t *testing.T) {
	p := NewPublisherFromGraph(k5PlusPendant())
	sn0 := p.Acquire()
	if sn0 == nil || sn0.NumEdges() != 11 || sn0.NumVertices() != 7 {
		t.Fatalf("initial snapshot = %+v", sn0)
	}
	if sn0.MaxK != 3 || sn0.MaxCliqueProxy() != 5 {
		t.Fatalf("initial MaxK %d proxy %d, want 3/5", sn0.MaxK, sn0.MaxCliqueProxy())
	}

	// No-op batch: same snapshot pointer.
	if a, r := p.Apply([]dynamic.EdgeOp{{U: 1, V: 2}}); a != 0 || r != 0 {
		t.Fatalf("no-op batch reported %d/%d", a, r)
	}
	if p.Acquire() != sn0 {
		t.Fatal("no-op batch republished")
	}

	// Effective batch: new pointer, larger version, old snapshot intact.
	if a, _ := p.Apply([]dynamic.EdgeOp{{U: 10, V: 12}, {U: 11, V: 12}}); a != 2 {
		t.Fatal("effective batch not applied")
	}
	sn1 := p.Acquire()
	if sn1 == sn0 || sn1.Version <= sn0.Version {
		t.Fatalf("expected fresh snapshot: v%d → v%d", sn0.Version, sn1.Version)
	}
	if sn0.NumEdges() != 11 || sn1.NumEdges() != 13 {
		t.Fatalf("edge counts %d/%d, want 11/13", sn0.NumEdges(), sn1.NumEdges())
	}
	if k, ok := sn1.KappaOf(graph.NewEdge(10, 12)); !ok || k != 1 {
		t.Fatalf("κ(10,12) = %d,%v, want 1,true", k, ok)
	}
	if _, ok := sn0.KappaOf(graph.NewEdge(10, 12)); ok {
		t.Fatal("old snapshot sees a later edge")
	}

	// Mutate with vertex ops: republish; Mutate with a no-op: not.
	sn2 := p.Mutate(func(en *dynamic.Engine) { en.AddVertex(99) })
	if sn2 == sn1 || sn2.NumVertices() != sn1.NumVertices()+1 {
		t.Fatal("vertex Mutate did not republish")
	}
	if sn3 := p.Mutate(func(en *dynamic.Engine) { en.AddVertex(99) }); sn3 != sn2 {
		t.Fatal("no-op Mutate republished")
	}
}

// TestSnapshotMatchesEngine drives a Publisher and a bare engine through
// the same operations and checks every snapshot-derived quantity against
// the engine's live answers.
func TestSnapshotMatchesEngine(t *testing.T) {
	g := k5PlusPendant()
	p := NewPublisherFromGraph(g)
	en := dynamic.NewEngine(g)
	batch := []dynamic.EdgeOp{
		{U: 10, V: 12}, {U: 11, V: 12}, {U: 10, V: 11, Del: true},
		{U: 2, V: 6}, {U: 3, V: 6}, {U: 1, V: 6},
	}
	p.Apply(batch)
	en.ApplyBatch(batch)

	sn := p.Acquire()
	if sn.NumEdges() != en.NumEdges() || sn.NumVertices() != en.NumVertices() {
		t.Fatalf("sizes %d/%d vs engine %d/%d",
			sn.NumVertices(), sn.NumEdges(), en.NumVertices(), en.NumEdges())
	}
	if sn.MaxK != en.MaxKappa() {
		t.Fatalf("MaxK %d, engine %d", sn.MaxK, en.MaxKappa())
	}
	for e, k := range en.EdgeKappas() {
		got, ok := sn.KappaOf(e)
		if !ok || got != int32(k) {
			t.Fatalf("KappaOf(%v) = %d,%v, engine %d", e, got, ok, k)
		}
	}
	for k, n := range en.KappaHistogram() {
		if sn.Hist[k] != n {
			t.Fatalf("Hist[%d] = %d, engine %d", k, sn.Hist[k], n)
		}
	}
	for k := int32(1); k <= sn.MaxK; k++ {
		if got, want := sn.Communities(k), en.Communities(k); !reflect.DeepEqual(got, want) {
			t.Fatalf("Communities(%d):\ngot  %v\nwant %v", k, got, want)
		}
	}
	// CoreOf matches MaxCoreOf's edge set.
	probe := graph.NewEdge(1, 2)
	edges, k, ok := sn.CoreOf(probe)
	sub, ok2 := en.MaxCoreOf(probe)
	if !ok || !ok2 {
		t.Fatal("probe edge missing")
	}
	if kk, _ := en.Kappa(probe); kk != k {
		t.Fatalf("CoreOf κ = %d, engine %d", k, kk)
	}
	if want := sub.Edges(); !reflect.DeepEqual(edges, want) {
		t.Fatalf("CoreOf edges:\ngot  %v\nwant %v", edges, want)
	}
}

// TestMemoSingleflight hammers one artifact key from many goroutines and
// checks the compute function ran exactly once and everyone saw the same
// value.
func TestMemoSingleflight(t *testing.T) {
	p := NewPublisherFromGraph(k5PlusPendant())
	sn := p.Acquire()
	var computes atomic.Int32
	const readers = 32
	results := make([]any, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = sn.Memo("probe", func() any {
				computes.Add(1)
				return sn.DensitySeries()
			})
		}(i)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i := 1; i < readers; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatal("memo returned divergent values")
		}
	}
	// Rendered artifacts are pointer-stable across calls: a second call
	// must hand back the same bytes without re-rendering.
	a, b := sn.PlotSVG(), sn.PlotSVG()
	if &a[0] != &b[0] {
		t.Fatal("PlotSVG re-rendered on a cache hit")
	}
}

// TestSnapshotsStableUnderChurn races parallel readers of every derived
// artifact against writer churn; the race detector (make race) owns the
// soundness claim, the assertions pin immutability of whatever snapshot
// a reader holds.
func TestSnapshotsStableUnderChurn(t *testing.T) {
	p := NewPublisherFromGraph(k5PlusPendant())
	stop := make(chan struct{})
	var writer sync.WaitGroup
	var wg sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := graph.Vertex(20 + i%7)
			p.Apply([]dynamic.EdgeOp{{U: 1, V: v}, {U: 2, V: v}, {U: 1, V: v, Del: i%2 == 0}})
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sn := p.Acquire()
				edges := sn.NumEdges()
				svg := sn.PlotSVG()
				if len(svg) == 0 {
					t.Error("empty SVG")
					return
				}
				sn.Communities(1)
				sn.CommunitiesAt(2)
				if _, _, ok := sn.CoreOf(graph.NewEdge(1, 2)); !ok {
					t.Error("edge {1,2} vanished from a held snapshot")
					return
				}
				if sn.NumEdges() != edges || !bytes.Equal(svg, sn.PlotSVG()) {
					t.Error("held snapshot changed under churn")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	writer.Wait()
}
