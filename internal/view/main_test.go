package view

import (
	"os"
	"testing"

	"trikcore/internal/leakcheck"
)

// TestMain fails the suite if any test leaves a goroutine behind — the
// runtime counterpart of trikcheck's goroutine-lifecycle rule. The
// publisher's parallel batch path joins its workers before returning;
// this check keeps it that way.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
