package view

import (
	"sync"
	"sync/atomic"

	"trikcore/internal/dynamic"
	"trikcore/internal/graph"
	"trikcore/internal/obs"
	"trikcore/internal/obs/trace"
	"trikcore/internal/watchdog"
)

// Publisher owns a dynamic engine and publishes immutable Snapshots of
// it. It is the single-writer funnel of the serving layer: every
// mutation goes through the writer mutex, every read goes through
// Acquire — one atomic pointer load, no lock, ever.
type Publisher struct {
	mu  sync.Mutex
	en  *dynamic.Engine // trikcheck:guardedby mu
	cur atomic.Pointer[Snapshot]
	// workers, when > 1, routes Apply through the engine's parallel batch
	// path (ApplyBatchParallel) with that worker count. Zero or one keeps
	// the serial ApplyBatch. Guarded by mu like the engine itself.
	workers int // trikcheck:guardedby mu
	// mt, when non-nil (see Instrument), records publish latency and
	// counts; published snapshots carry it for memo accounting.
	mt *pubMetrics // trikcheck:guardedby mu
}

// NewPublisher wraps an engine, taking ownership of it: the caller must
// not mutate en directly afterwards (use Apply/Mutate), or published
// snapshots would silently go stale. The initial state is published
// immediately.
func NewPublisher(en *dynamic.Engine) *Publisher {
	p := &Publisher{en: en}
	p.cur.Store(p.freeze(nil))
	return p
}

// NewPublisherFromGraph builds the engine too (initial decomposition via
// Algorithm 1) and publishes the result.
func NewPublisherFromGraph(g *graph.Graph) *Publisher {
	return NewPublisher(dynamic.NewEngine(g))
}

// Acquire returns the current snapshot: one atomic load. The snapshot
// stays valid (immutable) indefinitely; hold it for as long as a
// consistent view is needed and re-Acquire for freshness.
func (p *Publisher) Acquire() *Snapshot { return p.cur.Load() }

// SetWorkers opts the write path into parallel batch application with n
// workers (n <= 1 keeps the serial path). The final state published for
// any batch is identical either way — the parallel path is
// byte-deterministic across worker counts — so this is purely a
// throughput knob for multi-core hosts.
func (p *Publisher) SetWorkers(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.workers = n
}

// Apply applies one batch of edge operations and, if the batch
// effectively changed the graph, freezes and publishes a new snapshot
// before returning. Concurrent writers serialize; readers are never
// blocked. Like ApplyBatch it panics on self-loop ops (validate first),
// with the engine untouched.
func (p *Publisher) Apply(ops []dynamic.EdgeOp) (added, removed int) {
	return p.ApplyTraced(ops, nil)
}

// ApplyTraced is Apply with a flight-recorder trace riding the batch: the
// engine emits its stage spans into tr, and the publish itself is spanned.
// A nil tr is exactly Apply. The trace is attached to the engine only for
// the duration of the call, under the writer mutex, so concurrent traced
// writers never see each other's traces.
func (p *Publisher) ApplyTraced(ops []dynamic.EdgeOp, tr *trace.Trace) (added, removed int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	defer watchdog.Start("view.Publisher.Apply")()
	sp := tr.StartSpan("publisher.apply", "view")
	p.en.SetTrace(tr)
	before := p.en.Version()
	if p.workers > 1 {
		added, removed = p.en.ApplyBatchParallel(ops, p.workers)
	} else {
		added, removed = p.en.ApplyBatch(ops)
	}
	p.en.SetTrace(nil)
	if p.en.Version() != before {
		p.cur.Store(p.freeze(tr))
	}
	sp.End()
	return added, removed
}

// Mutate runs fn on the engine under the writer lock and republishes if
// fn effectively changed the graph (per Engine.Version), returning the
// snapshot current at exit. It is the escape hatch for vertex-level and
// composite mutations; fn must not retain the engine.
func (p *Publisher) Mutate(fn func(en *dynamic.Engine)) *Snapshot {
	return p.MutateTraced(fn, nil)
}

// MutateTraced is Mutate with a flight-recorder trace riding the
// mutation, under the same attach/detach discipline as ApplyTraced.
func (p *Publisher) MutateTraced(fn func(en *dynamic.Engine), tr *trace.Trace) *Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	defer watchdog.Start("view.Publisher.Mutate")()
	sp := tr.StartSpan("publisher.mutate", "view")
	p.en.SetTrace(tr)
	before := p.en.Version()
	fn(p.en)
	p.en.SetTrace(nil)
	if p.en.Version() != before {
		p.cur.Store(p.freeze(tr))
	}
	sp.End()
	return p.cur.Load()
}

// freeze builds a Snapshot of the engine's current state. Callers hold
// mu (or are the constructor, before the Publisher escapes). tr, when
// non-nil, receives a publish span alongside the publish-latency metric.
//
//trikcheck:locked
func (p *Publisher) freeze(tr *trace.Trace) *Snapshot {
	var sp obs.Span
	if p.mt != nil {
		sp = obs.StartSpan(p.mt.publishSeconds)
	}
	tsp := tr.StartSpan("publisher.publish", "view")
	s, kappa := p.en.FreezeView()
	maxK := p.en.MaxKappa()
	hist := make([]int, maxK+1)
	for _, k := range kappa {
		hist[k]++
	}
	sn := &Snapshot{
		Version: p.en.Version(),
		S:       s,
		Kappa:   kappa,
		Hist:    hist,
		MaxK:    maxK,
		Updates: p.en.Stats(),
		mt:      p.mt,
	}
	tsp.End()
	if p.mt != nil {
		sp.End()
		p.mt.publishesTotal.Inc()
		p.mt.snapshotVersion.Set(int64(sn.Version))
	}
	return sn
}
