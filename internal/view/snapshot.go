// Package view turns the mutable maintenance engine into a versioned,
// lock-free serving layer: a single-writer Publisher applies mutations to
// a dynamic.Engine and publishes immutable Snapshots through an atomic
// pointer, so any number of readers work on a consistent frozen graph +
// κ assignment without ever taking a lock or observing a half-applied
// batch.
//
// Publication protocol: all mutations funnel through the Publisher's
// writer mutex; after a mutation that effectively changed the graph (the
// engine's Version moved) the writer freezes a new Static CSR view with
// Engine.FreezeView and atomically swaps it in. No-op mutations republish
// nothing, so a snapshot pointer compares equal exactly when the graph
// state is unchanged. Readers call Acquire — one atomic load — and keep
// using the snapshot for as long as they like; it is never mutated, only
// superseded.
//
// Each Snapshot additionally carries a per-version memo of derived
// artifacts (density series, rendered SVG/ASCII plot bytes, co-clique
// values, communities at a level, a materialized Graph) with
// singleflight-style dedup: concurrent first requests for an artifact
// compute it once, and every later access is an atomic-load cache hit.
// The memo dies with the snapshot, so cache invalidation is just
// publication.
package view

import (
	"sync"

	"trikcore/internal/dynamic"
	"trikcore/internal/graph"
)

// Snapshot is one immutable published graph state: a frozen CSR view, the
// κ assignment indexed by the view's dense edge ids, the κ histogram and
// maximum, the engine's cumulative update counters at publication time,
// and the version that names all of it. All fields are read-only after
// publication; derived artifacts live in the memo.
type Snapshot struct {
	// Version is the engine change counter this snapshot was frozen at.
	// Two snapshots of one Publisher with equal versions are the same
	// snapshot; every served body derived from a snapshot is a pure
	// function of (Version, request), which is what makes version-keyed
	// ETags sound.
	Version uint64
	// S is the frozen CSR view.
	S *graph.Static
	// Kappa[i] is κ of the view's edge i.
	Kappa []int32
	// Hist[k] counts edges with κ=k; len(Hist) == MaxK+1.
	Hist []int
	// MaxK is the largest κ in the snapshot.
	MaxK int32
	// Updates are the engine's cumulative work counters at freeze time.
	Updates dynamic.Stats

	// memo maps comparable artifact keys to *memoEntry. Reads are
	// lock-free; a miss allocates the entry and the sync.Once arbitrates
	// which caller computes.
	memo sync.Map
	// mt, when non-nil, counts memo hits and misses per artifact. Set at
	// freeze time from the publisher; nil on uninstrumented publishers.
	mt *pubMetrics
}

// memoEntry is one singleflight cell: the first Do computes, everyone
// else waits, and later calls are an atomic fast-path load.
type memoEntry struct {
	once sync.Once
	val  any
}

// Memo returns the value of compute memoized under key for this
// snapshot's lifetime. Concurrent calls with the same key compute once
// (the losers block until the winner finishes); subsequent calls return
// the cached value via atomic loads only. compute must be pure — its
// result is shared between all callers and must not be mutated.
func (sn *Snapshot) Memo(key any, compute func() any) any {
	v, ok := sn.memo.Load(key)
	if !ok {
		v, _ = sn.memo.LoadOrStore(key, new(memoEntry))
	}
	e := v.(*memoEntry)
	if sn.mt == nil {
		e.once.Do(func() { e.val = compute() })
		return e.val
	}
	computed := false
	e.once.Do(func() { e.val = compute(); computed = true })
	sn.mt.recordMemo(artifactOf(key), computed)
	return e.val
}

// NumVertices returns the snapshot's vertex count.
func (sn *Snapshot) NumVertices() int { return sn.S.NumVertices() }

// NumEdges returns the snapshot's edge count.
func (sn *Snapshot) NumEdges() int { return sn.S.NumEdges() }

// MaxCliqueProxy is the paper's clique-order estimate maxκ+2, zero on an
// edgeless graph.
func (sn *Snapshot) MaxCliqueProxy() int32 {
	if sn.NumEdges() == 0 {
		return 0
	}
	return sn.MaxK + 2
}

// EdgeID resolves a canonical edge over external vertex ids to the
// snapshot's dense edge id, or -1 when absent.
func (sn *Snapshot) EdgeID(e graph.Edge) int32 {
	u, okU := sn.S.Pos[e.U]
	v, okV := sn.S.Pos[e.V]
	if !okU || !okV {
		return -1
	}
	return sn.S.EdgeIndex(u, v)
}

// KappaOf returns κ(e) and whether e is an edge of the snapshot.
func (sn *Snapshot) KappaOf(e graph.Edge) (int32, bool) {
	eid := sn.EdgeID(e)
	if eid < 0 {
		return 0, false
	}
	return sn.Kappa[eid], true
}
