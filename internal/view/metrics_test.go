package view

import (
	"strings"
	"testing"

	"trikcore/internal/dynamic"
	"trikcore/internal/graph"
	"trikcore/internal/obs"
)

// triangleGraph builds a single triangle.
func triangleGraph() *graph.Graph {
	g := graph.New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	return g
}

func TestPublisherInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPublisherFromGraph(triangleGraph())
	p.Instrument(reg)

	// First derived-artifact access computes (miss), the second hits. The
	// density series pulls co_clique underneath, so that artifact records
	// too.
	sn := p.Acquire()
	sn.DensitySeries()
	sn.DensitySeries()

	// An effective mutation republishes and moves the version gauge.
	p.Apply([]dynamic.EdgeOp{{U: 1, V: 4}})
	// A no-op batch must not republish.
	before := reg.Gather()
	p.Apply([]dynamic.EdgeOp{{U: 1, V: 2}}) // already present
	if string(before) != string(reg.Gather()) {
		t.Error("no-op Apply changed metrics (unexpected republish)")
	}

	expo := string(reg.Gather())
	for _, want := range []string{
		// Instrument republishes once, Apply once more.
		"trikcore_publisher_publishes_total 2",
		"trikcore_publisher_publish_seconds_count 2",
		`trikcore_publisher_memo_requests_total{artifact="density_series",result="miss"} 1`,
		`trikcore_publisher_memo_requests_total{artifact="density_series",result="hit"} 1`,
		`trikcore_publisher_memo_requests_total{artifact="co_clique",result="miss"} 1`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q in:\n%s", want, expo)
		}
	}
	wantVersion := "trikcore_publisher_snapshot_version "
	if !strings.Contains(expo, wantVersion) {
		t.Errorf("exposition missing %q", wantVersion)
	}
	if v := p.Acquire().Version; v == sn.Version {
		t.Error("Apply of a new edge did not move the version")
	}
}

func TestPublisherInstrumentNop(t *testing.T) {
	p := NewPublisherFromGraph(triangleGraph())
	p.Instrument(obs.Nop())
	if p.mt != nil {
		t.Fatal("Nop registry must leave the publisher uninstrumented")
	}
	sn := p.Acquire()
	if sn.mt != nil {
		t.Fatal("snapshot of an uninstrumented publisher carries metrics")
	}
	sn.PlotASCII() // memo path must work without accounting
}

func TestArtifactOfCoversAllKeys(t *testing.T) {
	cases := map[any]string{
		keyCoClique:    "co_clique",
		keyCoCliqueMap: "co_clique_map",
		keySeries:      "density_series",
		keyPlotSVG:     "plot_svg",
		keyPlotASCII:   "plot_ascii",
		keyGraph:       "graph",
		commsKey(2):    "communities",
		commListKey(2): "communities_at",
		dualKey(7):     "dualview",
		dualSVGKey(7):  "dualview_svg",
		"bogus":        "other",
	}
	known := make(map[string]bool, len(memoArtifacts))
	for _, a := range memoArtifacts {
		known[a] = true
	}
	for key, want := range cases {
		got := artifactOf(key)
		if got != want {
			t.Errorf("artifactOf(%v) = %q, want %q", key, got, want)
		}
		if want != "other" && !known[want] {
			t.Errorf("artifact %q not in memoArtifacts (no counters registered)", want)
		}
	}
}
