package view

import "trikcore/internal/obs"

// Artifact names used as the artifact label of the memo hit/miss counter,
// one per derived-artifact family in derived.go.
var memoArtifacts = []string{
	"co_clique",
	"co_clique_map",
	"density_series",
	"plot_svg",
	"plot_ascii",
	"graph",
	"communities",
	"communities_at",
	"dualview",
	"dualview_svg",
}

// pubMetrics holds the publisher's metric handles. Snapshots carry a
// pointer to it so the memo's hit/miss accounting survives across
// publications; the uninstrumented default (nil) keeps Memo's fast path
// to one extra branch.
type pubMetrics struct {
	publishSeconds  *obs.Histogram
	publishesTotal  *obs.Counter
	snapshotVersion *obs.Gauge
	memo            map[string]memoCounters
}

// memoCounters is one artifact's hit/miss counter pair, precreated at
// Instrument time so the memo read path never touches the registry lock.
type memoCounters struct {
	hit, miss *obs.Counter
}

// Instrument registers the publisher's metric families on reg and starts
// recording: publish latency, the publish counter, the snapshot-version
// gauge, and per-artifact memo hit/miss counters. It republishes the
// current state once (same version, same bytes) so the live snapshot
// carries the memo accounting. A nil registry is a no-op. Wire it at
// construction time, before the publisher starts serving.
func (p *Publisher) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	mt := &pubMetrics{
		publishSeconds: reg.Histogram("trikcore_publisher_publish_seconds",
			"Wall time to freeze and publish one snapshot.", obs.DurationBuckets, nil),
		publishesTotal: reg.Counter("trikcore_publisher_publishes_total",
			"Snapshots published.", nil),
		snapshotVersion: reg.Gauge("trikcore_publisher_snapshot_version",
			"Engine version of the currently published snapshot.", nil),
		memo: make(map[string]memoCounters, len(memoArtifacts)),
	}
	for _, a := range memoArtifacts {
		mt.memo[a] = memoCounters{
			hit: reg.Counter("trikcore_publisher_memo_requests_total",
				"Derived-artifact memo lookups by outcome.", obs.Labels{"artifact": a, "result": "hit"}),
			miss: reg.Counter("trikcore_publisher_memo_requests_total",
				"Derived-artifact memo lookups by outcome.", obs.Labels{"artifact": a, "result": "miss"}),
		}
	}
	p.mu.Lock()
	p.mt = mt
	p.cur.Store(p.freeze(nil))
	p.mu.Unlock()
}

// recordMemo counts one memo lookup. computed reports whether this call
// ran the compute function (a miss) or found the value cached (a hit).
func (mt *pubMetrics) recordMemo(artifact string, computed bool) {
	c, ok := mt.memo[artifact]
	if !ok {
		return
	}
	if computed {
		c.miss.Inc()
	} else {
		c.hit.Inc()
	}
}

// artifactOf maps a memo key to its artifact label. Every key type in
// derived.go appears here; unknown keys fall through to "other", which
// has no counters and is dropped by recordMemo.
func artifactOf(key any) string {
	switch k := key.(type) {
	case memoKey:
		switch k {
		case keyCoClique:
			return "co_clique"
		case keyCoCliqueMap:
			return "co_clique_map"
		case keySeries:
			return "density_series"
		case keyPlotSVG:
			return "plot_svg"
		case keyPlotASCII:
			return "plot_ascii"
		case keyGraph:
			return "graph"
		}
	case commsKey:
		return "communities"
	case commListKey:
		return "communities_at"
	case dualKey:
		return "dualview"
	case dualSVGKey:
		return "dualview_svg"
	}
	return "other"
}
