package view

import (
	"sort"

	"trikcore/internal/events"
	"trikcore/internal/graph"
	"trikcore/internal/plot"
)

// Memo keys. Parameterless artifacts share one enum; parameterized ones
// use distinct typed keys so (kind, argument) pairs stay comparable and
// collision-free.
type memoKey int

const (
	keyCoClique memoKey = iota
	keyCoCliqueMap
	keySeries
	keyPlotSVG
	keyPlotASCII
	keyGraph
)

type commsKey int32    // Communities(k)
type commListKey int32 // CommunitiesAt(k)
type dualKey uint64    // DualViewAgainst(old.Version)
type dualSVGKey uint64 // DualViewSVGAgainst(old.Version)

// Rendering defaults shared by every published plot; fixed so rendered
// bytes are a pure function of the snapshot.
const (
	plotTitle               = "Triangle K-Core density plot"
	dualViewTitle           = "changed cliques since snapshot"
	asciiWidth, asciiHeight = 120, 24
)

// CoClique returns the flat co-clique values κ(e)+2 by dense edge id
// (Algorithm 3 step 2). Shared; do not mutate.
func (sn *Snapshot) CoClique() []int32 {
	return sn.Memo(keyCoClique, func() any {
		vals := make([]int32, len(sn.Kappa))
		for i, k := range sn.Kappa {
			vals[i] = k + 2
		}
		return vals
	}).([]int32)
}

// CoCliqueMap returns the co-clique values keyed by external edge — the
// form the dual-view builder consumes. Shared; do not mutate.
func (sn *Snapshot) CoCliqueMap() plot.EdgeValues {
	return sn.Memo(keyCoCliqueMap, func() any {
		vals := sn.CoClique()
		m := make(plot.EdgeValues, len(vals))
		for i, v := range vals {
			m[sn.S.EdgeAt(int32(i))] = int(v)
		}
		return m
	}).(plot.EdgeValues)
}

// DensitySeries returns the snapshot's OPTICS-ordered density plot,
// computed once per version via the CSR traversal. Shared; do not mutate.
func (sn *Snapshot) DensitySeries() plot.Series {
	return sn.Memo(keySeries, func() any {
		return plot.DensityStatic(sn.S, sn.CoClique())
	}).(plot.Series)
}

// PlotSVG returns the rendered SVG density plot. Shared; do not mutate.
func (sn *Snapshot) PlotSVG() []byte {
	return sn.Memo(keyPlotSVG, func() any {
		return []byte(plot.RenderSVG(sn.DensitySeries(), plot.SVGOptions{Title: plotTitle}))
	}).([]byte)
}

// PlotASCII returns the rendered ASCII density plot. Shared; do not
// mutate.
func (sn *Snapshot) PlotASCII() []byte {
	return sn.Memo(keyPlotASCII, func() any {
		return []byte(plot.RenderASCII(sn.DensitySeries(), asciiWidth, asciiHeight))
	}).([]byte)
}

// Graph materializes the snapshot as a standalone mutable Graph — the
// form legacy consumers (the dual-view builder) want. Computed once per
// version. Shared; do not mutate.
func (sn *Snapshot) Graph() *graph.Graph {
	return sn.Memo(keyGraph, func() any {
		g := graph.NewWithCapacity(sn.S.NumVertices())
		for _, v := range sn.S.OrigID {
			g.AddVertex(v)
		}
		for i := range sn.S.EdgeU {
			g.AddEdgeE(sn.S.EdgeAt(int32(i)))
		}
		return g
	}).(*graph.Graph)
}

// Communities returns the triangle-connected components of the κ ≥ k
// subgraph, each a sorted edge list, components ordered by first edge —
// the snapshot counterpart of dynamic.Engine.Communities, memoized per
// (snapshot, k). Shared; do not mutate.
func (sn *Snapshot) Communities(k int32) [][]graph.Edge {
	return sn.Memo(commsKey(k), func() any {
		type start struct {
			e   graph.Edge
			eid int32
		}
		var starts []start
		for i := range sn.Kappa {
			if sn.Kappa[i] >= k {
				starts = append(starts, start{sn.S.EdgeAt(int32(i)), int32(i)})
			}
		}
		// Order by external edge, never by dense id: dense numbering
		// depends on the substrate's allocation history, external edges
		// do not, so republished bodies stay byte-identical.
		sort.Slice(starts, func(i, j int) bool { return starts[i].e.Less(starts[j].e) })
		seen := make([]bool, len(sn.Kappa))
		comms := [][]graph.Edge{}
		for _, st := range starts {
			if seen[st.eid] {
				continue
			}
			comms = append(comms, sn.triangleComponent(st.eid, k, seen))
		}
		return comms
	}).([][]graph.Edge)
}

// triangleComponent returns the edges reachable from start through
// triangles whose three edges all carry κ ≥ k, sorted by external edge.
// Visited edges are marked in seen (indexed by dense edge id), which the
// caller owns.
func (sn *Snapshot) triangleComponent(start, k int32, seen []bool) []graph.Edge {
	seen[start] = true
	queue := []int32{start}
	out := []graph.Edge{}
	for head := 0; head < len(queue); head++ {
		eid := queue[head]
		out = append(out, sn.S.EdgeAt(eid))
		sn.S.ForEachTriangleEdge(sn.S.EdgeU[eid], sn.S.EdgeV[eid], func(_, e1, e2 int32) bool {
			if sn.Kappa[e1] < k || sn.Kappa[e2] < k {
				return true
			}
			for _, nxt := range [2]int32{e1, e2} {
				if !seen[nxt] {
					seen[nxt] = true
					queue = append(queue, nxt)
				}
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// CoreOf returns the maximum Triangle K-Core of e — the
// triangle-connected component of e among edges with κ ≥ κ(e) — as a
// sorted edge list, plus κ(e). The boolean is false when e is not an
// edge of the snapshot. Not memoized (the argument space is the edge
// set); runs lock-free on the frozen view.
func (sn *Snapshot) CoreOf(e graph.Edge) ([]graph.Edge, int32, bool) {
	eid := sn.EdgeID(e)
	if eid < 0 {
		return nil, 0, false
	}
	k := sn.Kappa[eid]
	return sn.triangleComponent(eid, k, make([]bool, len(sn.Kappa))), k, true
}

// CommunitiesAt returns the level-k communities in the events package's
// vertex-set form, memoized per (snapshot, k) — what lets /events run
// from two snapshots' maintained κ with no decomposition at all. Shared;
// do not mutate.
func (sn *Snapshot) CommunitiesAt(k int32) []events.Community {
	return sn.Memo(commListKey(k), func() any {
		comms := sn.Communities(k)
		out := []events.Community{}
		for _, edges := range comms {
			seen := make(map[graph.Vertex]bool)
			var verts []graph.Vertex
			for _, e := range edges {
				for _, v := range [2]graph.Vertex{e.U, e.V} {
					if !seen[v] {
						seen[v] = true
						verts = append(verts, v)
					}
				}
			}
			sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
			out = append(out, events.Community{Vertices: verts, Edges: len(edges)})
		}
		return out
	}).([]events.Community)
}

// DualViewAgainst builds the dual-view plot (Algorithm 3's dual view)
// from the old snapshot to this one, memoized on this snapshot keyed by
// the old version — repeated requests at an unchanged (old, new) pair do
// no plotting work. Both sides use their maintained κ; nothing is
// re-decomposed. Shared; do not mutate.
func (sn *Snapshot) DualViewAgainst(old *Snapshot) *plot.DualView {
	return sn.Memo(dualKey(old.Version), func() any {
		dv := plot.BuildDualViewFromValues(
			old.Graph(), sn.Graph(),
			old.CoCliqueMap(), sn.CoCliqueMap(),
			plot.DualViewOptions{})
		return &dv
	}).(*plot.DualView)
}

// DualViewSVGAgainst returns the rendered dual-view SVG against old,
// memoized like DualViewAgainst. Shared; do not mutate.
func (sn *Snapshot) DualViewSVGAgainst(old *Snapshot) []byte {
	return sn.Memo(dualSVGKey(old.Version), func() any {
		dv := sn.DualViewAgainst(old)
		return []byte(plot.RenderSVG(dv.After, plot.SVGOptions{
			Title:   dualViewTitle,
			Markers: dv.MarkersForSVG(),
		}))
	}).([]byte)
}
