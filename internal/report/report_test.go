package report

import (
	"strings"
	"testing"

	"trikcore/internal/table"
)

func sampleTable() *table.Table {
	t := &table.Table{Title: "demo", Header: []string{"graph", "time <s>"}}
	t.AddRow("PPI & friends", 0.5)
	t.AddNote("a <note>")
	return t
}

func TestRenderBasics(t *testing.T) {
	out, err := Render(Report{
		Title:    "Reproduction",
		Subtitle: "paper vs measured",
		Sections: []Section{
			{ID: "tableII", Caption: "Execution time", Table: sampleTable(),
				SVGs: []string{`<svg xmlns="http://www.w3.org/2000/svg"><rect/></svg>`}},
			{ID: "figure7", Caption: "PPI peaks", Table: sampleTable()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<!DOCTYPE html>", "<h1>Reproduction</h1>", `id="tableII"`, `id="figure7"`,
		"<th>graph</th>", "PPI &amp; friends", "a &lt;note&gt;", "<svg", "paper vs measured",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q", want)
		}
	}
	// Header cell with special characters must be escaped.
	if strings.Contains(out, "<th>time <s></th>") {
		t.Fatal("header not escaped")
	}
}

func TestRenderRejectsNonSVGFigure(t *testing.T) {
	_, err := Render(Report{Sections: []Section{{ID: "x", SVGs: []string{"<script>alert(1)</script>"}}}})
	if err == nil {
		t.Fatal("non-SVG figure accepted")
	}
}

func TestRenderEmptyAndNilTable(t *testing.T) {
	out, err := Render(Report{Title: "empty", Sections: []Section{{ID: "a", Caption: "no table"}}})
	if err != nil || !strings.Contains(out, "no table") {
		t.Fatalf("empty section: %v", err)
	}
}
