// Package report renders experiment results as a standalone HTML
// document: every table of the harness plus the SVG figure renderings,
// in one file that opens in any browser — the shareable artifact of a
// reproduction run.
package report

import (
	"fmt"
	"html/template"
	"strings"

	"trikcore/internal/table"
)

// Section is one experiment in the report.
type Section struct {
	// ID is the experiment id ("tableII", "figure7", ...).
	ID string
	// Caption describes the paper artifact.
	Caption string
	// Table holds the measured results.
	Table *table.Table
	// SVGs are inline SVG documents rendered under the table.
	SVGs []string
}

// Report is a full reproduction run.
type Report struct {
	Title    string
	Subtitle string
	Sections []Section
}

var pageTemplate = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font-family: Georgia, serif; max-width: 72rem; margin: 2rem auto; padding: 0 1rem; color: #222; }
h1 { border-bottom: 3px double #888; padding-bottom: .4rem; }
h2 { margin-top: 2.2rem; color: #234; }
.subtitle { color: #666; font-style: italic; }
table { border-collapse: collapse; margin: 1rem 0; font-family: "Helvetica Neue", sans-serif; font-size: .9rem; }
th, td { border: 1px solid #bbb; padding: .35rem .7rem; text-align: left; }
th { background: #eef2f6; }
tr:nth-child(even) td { background: #fafbfc; }
.note { color: #555; font-size: .85rem; margin: .2rem 0; }
.figure { margin: 1rem 0; overflow-x: auto; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
{{if .Subtitle}}<p class="subtitle">{{.Subtitle}}</p>{{end}}
{{range .Sections}}
<h2 id="{{.ID}}">{{.Caption}}</h2>
{{.TableHTML}}
{{range .FigureHTML}}<div class="figure">{{.}}</div>
{{end}}
{{end}}
</body>
</html>
`))

// renderedSection is the template's view of a Section.
type renderedSection struct {
	ID         string
	Caption    string
	TableHTML  template.HTML
	FigureHTML []template.HTML
}

// Render produces the HTML document.
func Render(r Report) (string, error) {
	view := struct {
		Title    string
		Subtitle string
		Sections []renderedSection
	}{Title: r.Title, Subtitle: r.Subtitle}
	for _, s := range r.Sections {
		rs := renderedSection{ID: s.ID, Caption: s.Caption, TableHTML: tableHTML(s.Table)}
		for _, svg := range s.SVGs {
			if !strings.Contains(svg, "<svg") {
				return "", fmt.Errorf("report: section %s figure is not SVG", s.ID)
			}
			// SVG produced by our own renderer; safe to inline.
			rs.FigureHTML = append(rs.FigureHTML, template.HTML(svg))
		}
		view.Sections = append(view.Sections, rs)
	}
	var b strings.Builder
	if err := pageTemplate.Execute(&b, view); err != nil {
		return "", fmt.Errorf("report: %w", err)
	}
	return b.String(), nil
}

// tableHTML converts a result table to an HTML table with escaped cells.
func tableHTML(t *table.Table) template.HTML {
	if t == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("<table><thead><tr>")
	for _, h := range t.Header {
		fmt.Fprintf(&b, "<th>%s</th>", template.HTMLEscapeString(h))
	}
	b.WriteString("</tr></thead><tbody>")
	for _, row := range t.Rows {
		b.WriteString("<tr>")
		for i := range t.Header {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(&b, "<td>%s</td>", template.HTMLEscapeString(cell))
		}
		b.WriteString("</tr>")
	}
	b.WriteString("</tbody></table>")
	for _, n := range t.Notes {
		fmt.Fprintf(&b, `<p class="note">%s</p>`, template.HTMLEscapeString(n))
	}
	return template.HTML(b.String())
}
