// Package dataset is the registry of evaluation graphs reproducing
// Table I of the paper. The original datasets (Stocks, PPI, DBLP,
// Astro-Author, Epinions, Amazon, Wiki, Flickr, LiveJournal) are not
// redistributable, so each entry builds a deterministic synthetic
// stand-in of the same order and size and of matching structural
// character (see DESIGN.md §3.1). Flickr and LiveJournal are scaled down
// (1/10 and 1/16) to stay laptop-sized; every entry records its scale so
// reports can state it.
package dataset

import (
	"fmt"
	"sync"

	"trikcore/internal/gen"
	"trikcore/internal/graph"
)

// Dataset is one Table I row.
type Dataset struct {
	// Name matches the paper's dataset name.
	Name string
	// PaperV and PaperE are the sizes reported in Table I.
	PaperV, PaperE int
	// Scale is the fraction of the paper's size this stand-in realizes
	// (1.0 for everything except Flickr and LiveJournal).
	Scale float64
	// Description summarizes the generator used.
	Description string

	build func(v, e int, seed int64) *graph.Graph
	seed  int64

	once sync.Once
	g    *graph.Graph
}

// TargetV returns the stand-in's vertex count (paper size × scale).
func (d *Dataset) TargetV() int { return int(float64(d.PaperV)*d.Scale + 0.5) }

// TargetE returns the stand-in's edge count (paper size × scale).
func (d *Dataset) TargetE() int { return int(float64(d.PaperE)*d.Scale + 0.5) }

// Graph builds (once) and returns the stand-in graph. The result is
// shared; callers must not mutate it — Clone first.
func (d *Dataset) Graph() *graph.Graph {
	d.once.Do(func() {
		d.g = d.build(d.TargetV(), d.TargetE(), d.seed)
		if got := d.g.NumEdges(); got != d.TargetE() {
			panic(fmt.Sprintf("dataset %s: built %d edges, want %d", d.Name, got, d.TargetE()))
		}
	})
	return d.g
}

// GenerateAt builds an uncached instance at the given fraction of the
// stand-in's size (useful for quick tests and sweeps). The edge count is
// exact at every scale.
func (d *Dataset) GenerateAt(fraction float64) *graph.Graph {
	v := int(float64(d.TargetV())*fraction + 0.5)
	e := int(float64(d.TargetE())*fraction + 0.5)
	if v < 10 {
		v = 10
	}
	maxE := v * (v - 1) / 2
	if e > maxE {
		e = maxE
	}
	return d.build(v, e, d.seed)
}

// exact wraps a generator so the produced graph has exactly v vertices
// (ids 0..v-1, possibly isolated) and e edges.
func exact(build func(v, e int, seed int64) *graph.Graph) func(v, e int, seed int64) *graph.Graph {
	return func(v, e int, seed int64) *graph.Graph {
		g := build(v, e, seed)
		for i := 0; i < v; i++ {
			g.AddVertex(graph.Vertex(i))
		}
		if g.NumEdges() < e {
			gen.TopUpEdges(g, e, seed^0x7f4a7c15)
		} else if g.NumEdges() > e {
			gen.TrimEdges(g, e, nil, seed^0x7f4a7c15)
		}
		return g
	}
}

// fitCliqueSizes shrinks a planted-clique size list so the cliques fit
// within v vertices and e edges (used when a dataset is instantiated
// below its natural size). Cliques smaller than 3 are dropped.
func fitCliqueSizes(sizes []int, v, e int) []int {
	var out []int
	usedV, usedE := 0, 0
	for _, s := range sizes {
		if v < 60 {
			s = s * v / 60
		}
		if s < 3 {
			continue
		}
		for s >= 3 && (usedV+s > v || usedE+s*(s-1)/2 > e) {
			s--
		}
		if s < 3 {
			continue
		}
		out = append(out, s)
		usedV += s
		usedE += s * (s - 1) / 2
	}
	return out
}

// plc returns an exact-size Holme–Kim builder with the given attachment
// count heuristic and triad probability, plus planted dense communities
// (one per ~700 vertices, orders 5–22 at density 0.9, and a handful of
// larger looser ones) — the clique-like groups real collaboration and
// social graphs carry, without which the stand-ins would be unrealistically
// easy for the per-edge clique searches of the CSV baseline.
func plc(p float64) func(v, e int, seed int64) *graph.Graph {
	return exact(func(v, e int, seed int64) *graph.Graph {
		m := e / v
		if m < 1 {
			m = 1
		}
		g := gen.PowerLawCluster(v, m, p, seed)
		if n := v / 700; n > 0 {
			gen.AddCommunities(g, n, 5, 22, 0.9, seed^0xC0)
			gen.AddCommunities(g, n/10+1, 25, 40, 0.8, seed^0xC1)
		}
		return g
	})
}

var registry = []*Dataset{
	{
		Name: "Synthetic", PaperV: 60, PaperE: 308, Scale: 1, seed: 1001,
		Description: "planted cliques (8,7,6,5,5) in uniform noise",
		build: exact(func(v, e int, seed int64) *graph.Graph {
			return gen.PlantedCliques(v, e, fitCliqueSizes([]int{8, 7, 6, 5, 5}, v, e), seed).G
		}),
	},
	{
		Name: "Stocks", PaperV: 275, PaperE: 1680, Scale: 1, seed: 1002,
		Description: "sector factor-model correlation graph, top-E pairs",
		build: exact(func(v, e int, seed int64) *graph.Graph {
			return gen.Stocks(v, 12, 250, e, seed)
		}),
	},
	{
		Name: "PPI", PaperV: 4741, PaperE: 15147, Scale: 1, seed: 1003,
		Description: "protein complexes with planted case-study cliques",
		build: exact(func(v, e int, seed int64) *graph.Graph {
			return gen.PPI(v, e, seed).G
		}),
	},
	{
		Name: "DBLP", PaperV: 6445, PaperE: 11848, Scale: 1, seed: 1004,
		Description: "one-year collaboration graph (papers as cliques)",
		build: exact(func(v, e int, seed int64) *graph.Graph {
			// Papers average ~2.5 edges each; trim/top-up fixes the rest.
			return gen.CollabSnapshots(v-21, e*2/5, seed).New
		}),
	},
	{
		Name: "Astro-Author", PaperV: 17903, PaperE: 190972, Scale: 1, seed: 1005,
		Description: "Holme–Kim scale-free with strong triadic closure",
		build:       plc(0.7),
	},
	{
		Name: "Epinions", PaperV: 75879, PaperE: 405741, Scale: 1, seed: 1006,
		Description: "Holme–Kim scale-free trust-network shape",
		build:       plc(0.35),
	},
	{
		Name: "Amazon", PaperV: 262111, PaperE: 899792, Scale: 1, seed: 1007,
		Description: "low-clustering co-purchase shape",
		build:       plc(0.15),
	},
	{
		Name: "Wiki", PaperV: 176265, PaperE: 1010204, Scale: 1, seed: 1008,
		Description: "scale-free link graph with planted topic cliques",
		build: exact(func(v, e int, seed int64) *graph.Graph {
			return gen.WikiSnapshots(v, e, 0, seed).Snap1
		}),
	},
	{
		Name: "Flickr", PaperV: 1715255, PaperE: 15555041, Scale: 0.10, seed: 1009,
		Description: "dense social graph shape (1/10 scale)",
		build:       plc(0.6),
	},
	{
		Name: "LiveJournal", PaperV: 4887571, PaperE: 32851237, Scale: 0.0625, seed: 1010,
		Description: "large social graph shape (1/16 scale)",
		build:       plc(0.5),
	},
}

// All returns the Table I datasets in paper order.
func All() []*Dataset { return registry }

// ByName returns the dataset with the given name.
func ByName(name string) (*Dataset, bool) {
	for _, d := range registry {
		if d.Name == name {
			return d, true
		}
	}
	return nil, false
}

// Names returns all dataset names in paper order.
func Names() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.Name
	}
	return out
}

// LargestFive returns the five datasets Table III uses for the dynamic
// update experiment: Astro-Author, Epinions, Amazon, Flickr, LiveJournal.
func LargestFive() []*Dataset {
	var out []*Dataset
	for _, name := range []string{"Astro-Author", "Epinions", "Amazon", "Flickr", "LiveJournal"} {
		d, _ := ByName(name)
		out = append(out, d)
	}
	return out
}

// FigureSix returns the datasets whose density plots Figure 6 compares
// qualitatively against CSV: the small-to-medium ones where CSV is
// feasible.
func FigureSix() []*Dataset {
	var out []*Dataset
	for _, name := range []string{"Synthetic", "Stocks", "PPI", "DBLP"} {
		d, _ := ByName(name)
		out = append(out, d)
	}
	return out
}

// PPIStudy returns the full PPI stand-in with its ground truth (Figure 7
// cliques, complexes, Figure 12 bridges). The graph is rebuilt on each
// call; it is the same graph the "PPI" registry entry wraps, before
// exact-size adjustment.
func PPIStudy() gen.PPIResult {
	d, _ := ByName("PPI")
	return gen.PPI(d.TargetV(), d.TargetE(), d.seed)
}

// WikiStudy returns the wiki snapshot pair with ground truth for the
// Figure 8 dual-view case study, at the given fraction of the dataset's
// full size (1.0 = Table I size), with churn newEdges.
func WikiStudy(fraction float64, newEdges int) gen.WikiPair {
	d, _ := ByName("Wiki")
	v := int(float64(d.TargetV())*fraction + 0.5)
	e := int(float64(d.TargetE())*fraction + 0.5)
	return gen.WikiSnapshots(v, e, newEdges, d.seed)
}

// CollabStudy returns the collaboration snapshot pair with ground truth
// for the Figures 9–11 template studies, at the given fraction of the
// DBLP dataset's size.
func CollabStudy(fraction float64) gen.CollabPair {
	d, _ := ByName("DBLP")
	v := int(float64(d.TargetV())*fraction + 0.5)
	papers := int(float64(d.TargetE())*fraction*2/5 + 0.5)
	return gen.CollabSnapshots(v, papers, d.seed)
}
