package dataset

import (
	"testing"

	"trikcore/internal/graph"
)

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("registry has %d datasets, want 10 (Table I)", len(all))
	}
	wantOrder := []string{"Synthetic", "Stocks", "PPI", "DBLP", "Astro-Author",
		"Epinions", "Amazon", "Wiki", "Flickr", "LiveJournal"}
	for i, name := range Names() {
		if name != wantOrder[i] {
			t.Fatalf("dataset %d is %s, want %s", i, name, wantOrder[i])
		}
	}
	for _, d := range all {
		if d.Scale <= 0 || d.Scale > 1 {
			t.Fatalf("%s: scale %v out of range", d.Name, d.Scale)
		}
		if d.Description == "" {
			t.Fatalf("%s: missing description", d.Name)
		}
	}
	// Only the two giants are scaled down.
	for _, d := range all[:8] {
		if d.Scale != 1 {
			t.Fatalf("%s should be full scale", d.Name)
		}
	}
	f, _ := ByName("Flickr")
	lj, _ := ByName("LiveJournal")
	if f.Scale != 0.10 || lj.Scale != 0.0625 {
		t.Fatal("giant dataset scales wrong")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("PPI"); !ok {
		t.Fatal("PPI missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown dataset found")
	}
}

func TestSelections(t *testing.T) {
	l5 := LargestFive()
	if len(l5) != 5 || l5[0].Name != "Astro-Author" || l5[4].Name != "LiveJournal" {
		t.Fatalf("LargestFive = %v", names(l5))
	}
	f6 := FigureSix()
	if len(f6) != 4 || f6[0].Name != "Synthetic" || f6[3].Name != "DBLP" {
		t.Fatalf("FigureSix = %v", names(f6))
	}
}

func names(ds []*Dataset) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name
	}
	return out
}

func TestSmallDatasetsBuildExactly(t *testing.T) {
	for _, name := range []string{"Synthetic", "Stocks", "PPI", "DBLP"} {
		d, _ := ByName(name)
		g := d.Graph()
		if g.NumVertices() != d.TargetV() {
			t.Fatalf("%s: %d vertices, want %d", name, g.NumVertices(), d.TargetV())
		}
		if g.NumEdges() != d.TargetE() {
			t.Fatalf("%s: %d edges, want %d", name, g.NumEdges(), d.TargetE())
		}
		if d.Graph() != g {
			t.Fatalf("%s: Graph() not cached", name)
		}
	}
}

func TestGenerateAtScalesLargeDatasets(t *testing.T) {
	// Build tiny instances of every large dataset to exercise their
	// generators without paying full-size costs.
	for _, name := range []string{"Astro-Author", "Epinions", "Amazon", "Wiki", "Flickr", "LiveJournal"} {
		d, _ := ByName(name)
		g := d.GenerateAt(0.01)
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty mini instance", name)
		}
		wantE := int(float64(d.TargetE())*0.01 + 0.5)
		maxE := g.NumVertices() * (g.NumVertices() - 1) / 2
		if wantE > maxE {
			wantE = maxE
		}
		if g.NumEdges() != wantE {
			t.Fatalf("%s: mini has %d edges, want %d", name, g.NumEdges(), wantE)
		}
	}
}

func TestStudies(t *testing.T) {
	ppi := PPIStudy()
	if ppi.G.NumEdges() != 15147 {
		t.Fatalf("PPI study has %d edges", ppi.G.NumEdges())
	}
	wiki := WikiStudy(0.01, 20)
	if wiki.Snap1.NumEdges() == 0 || wiki.Snap2.NumEdges() <= wiki.Snap1.NumEdges() {
		t.Fatal("wiki study snapshots malformed")
	}
	collab := CollabStudy(0.05)
	if collab.Old.NumEdges() == 0 || collab.New.NumEdges() == 0 {
		t.Fatal("collab study snapshots malformed")
	}
	if !graph.IsClique(collab.New, collab.NewFormClique) {
		t.Fatal("collab study missing planted event")
	}
}

func TestFitCliqueSizes(t *testing.T) {
	// Full size: unchanged.
	if got := fitCliqueSizes([]int{8, 7, 6, 5, 5}, 60, 308); len(got) != 5 || got[0] != 8 {
		t.Fatalf("full size = %v", got)
	}
	// Tiny vertex budget: scaled down, undersized cliques dropped.
	got := fitCliqueSizes([]int{8, 7, 6, 5, 5}, 10, 45)
	usedV, usedE := 0, 0
	for _, s := range got {
		if s < 3 {
			t.Fatalf("clique of size %d emitted", s)
		}
		usedV += s
		usedE += s * (s - 1) / 2
	}
	if usedV > 10 || usedE > 45 {
		t.Fatalf("scaled sizes %v exceed budgets", got)
	}
	// Tiny edge budget forces shrinking even when vertices fit.
	got = fitCliqueSizes([]int{8}, 60, 10)
	if len(got) != 1 || got[0]*(got[0]-1)/2 > 10 {
		t.Fatalf("edge-budget fit = %v", got)
	}
	// Impossible budgets yield nothing.
	if got := fitCliqueSizes([]int{8}, 2, 1); got != nil {
		t.Fatalf("impossible fit = %v", got)
	}
}
