package gen

import (
	"math/rand"

	"trikcore/internal/graph"
)

// PlantedResult is a noise graph with known dense structures embedded.
type PlantedResult struct {
	G *graph.Graph
	// Cliques holds the vertex sets of the planted cliques, in the order
	// of the sizes passed to PlantedCliques.
	Cliques [][]graph.Vertex
}

// PlantedCliques builds an n-vertex noise graph with totalEdges edges
// containing one planted clique per entry of sizes. Clique vertex sets
// are disjoint and also participate in the background noise, so the
// cliques are embedded rather than isolated. The planted clique edges
// count toward totalEdges; the generator panics if they alone exceed it.
func PlantedCliques(n, totalEdges int, sizes []int, seed int64) PlantedResult {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewWithCapacity(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Vertex(i))
	}
	need := 0
	for _, s := range sizes {
		need += s
	}
	if need > n {
		panic("gen: PlantedCliques: clique sizes exceed vertex count")
	}
	perm := rng.Perm(n)
	var res PlantedResult
	res.G = g
	idx := 0
	keep := make(map[graph.Edge]bool)
	for _, s := range sizes {
		verts := make([]graph.Vertex, s)
		for i := 0; i < s; i++ {
			verts[i] = graph.Vertex(perm[idx])
			idx++
		}
		AddClique(g, verts)
		for e := range CliqueEdges(verts) {
			keep[e] = true
		}
		res.Cliques = append(res.Cliques, verts)
	}
	if g.NumEdges() > totalEdges {
		panic("gen: PlantedCliques: planted edges exceed edge budget")
	}
	// Attach each clique to the noise graph with a couple of edges so the
	// structures are embedded, then fill with uniform noise.
	for _, verts := range res.Cliques {
		for tries := 0; tries < 2; tries++ {
			if g.NumEdges() >= totalEdges {
				break
			}
			u := verts[rng.Intn(len(verts))]
			v := graph.Vertex(rng.Intn(n))
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	TopUpEdges(g, totalEdges, seed^0x9e3779b9)
	return res
}
