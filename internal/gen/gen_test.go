package gen

import (
	"reflect"
	"testing"

	"trikcore/internal/graph"
)

func TestErdosRenyiExactSize(t *testing.T) {
	g := ErdosRenyi(50, 200, 7)
	if g.NumVertices() != 50 || g.NumEdges() != 200 {
		t.Fatalf("got %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(30, 100, 3)
	b := ErdosRenyi(30, 100, 3)
	if !reflect.DeepEqual(a.Edges(), b.Edges()) {
		t.Fatal("same seed produced different graphs")
	}
	c := ErdosRenyi(30, 100, 4)
	if reflect.DeepEqual(a.Edges(), c.Edges()) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestErdosRenyiTooManyEdgesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ErdosRenyi(5, 11, 1)
}

func TestBarabasiAlbert(t *testing.T) {
	n, m := 200, 3
	g := BarabasiAlbert(n, m, 5)
	if g.NumVertices() != n {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	wantEdges := m*(m+1)/2 + (n-m-1)*m
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	// Preferential attachment yields a hub much bigger than m.
	if graph.MaxDegree(g) < 3*m {
		t.Fatalf("max degree %d suspiciously small", graph.MaxDegree(g))
	}
	if !reflect.DeepEqual(g.Edges(), BarabasiAlbert(n, m, 5).Edges()) {
		t.Fatal("not deterministic")
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BarabasiAlbert(3, 3, 1)
}

func TestPowerLawCluster(t *testing.T) {
	n, m := 400, 4
	g := PowerLawCluster(n, m, 0.7, 9)
	if g.NumVertices() != n {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	wantEdges := m*(m+1)/2 + (n-m-1)*m
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if !reflect.DeepEqual(g.Edges(), PowerLawCluster(n, m, 0.7, 9).Edges()) {
		t.Fatal("not deterministic")
	}
	// Triadic closure must produce markedly higher clustering than pure
	// preferential attachment.
	ba := BarabasiAlbert(n, m, 9)
	if graph.GlobalClusteringCoefficient(g) < 1.5*graph.GlobalClusteringCoefficient(ba) {
		t.Fatalf("clustering: plc=%v ba=%v", graph.GlobalClusteringCoefficient(g),
			graph.GlobalClusteringCoefficient(ba))
	}
}

func TestForestFire(t *testing.T) {
	g := ForestFire(300, 0.35, 50, 11)
	if g.NumVertices() != 300 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() < 299 {
		t.Fatalf("forest fire produced only %d edges", g.NumEdges())
	}
	if !reflect.DeepEqual(g.Edges(), ForestFire(300, 0.35, 50, 11).Edges()) {
		t.Fatal("not deterministic")
	}
}

func TestTopUpAndTrim(t *testing.T) {
	g := ErdosRenyi(40, 100, 1)
	TopUpEdges(g, 150, 2)
	if g.NumEdges() != 150 {
		t.Fatalf("TopUpEdges: %d edges", g.NumEdges())
	}
	keep := map[graph.Edge]bool{}
	g.ForEachEdge(func(e graph.Edge) bool {
		if len(keep) < 30 {
			keep[e] = true
		}
		return true
	})
	TrimEdges(g, 50, keep, 3)
	if g.NumEdges() != 50 {
		t.Fatalf("TrimEdges: %d edges", g.NumEdges())
	}
	for e := range keep {
		if !g.HasEdgeE(e) {
			t.Fatalf("TrimEdges removed kept edge %v", e)
		}
	}
	TrimEdges(g, 100, nil, 4) // no-op when below target
	if g.NumEdges() != 50 {
		t.Fatal("TrimEdges grew the graph")
	}
}

func TestPlantedCliques(t *testing.T) {
	res := PlantedCliques(80, 400, []int{7, 6, 5}, 13)
	g := res.G
	if g.NumVertices() != 80 || g.NumEdges() != 400 {
		t.Fatalf("%d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if len(res.Cliques) != 3 {
		t.Fatalf("%d planted cliques", len(res.Cliques))
	}
	seen := map[graph.Vertex]bool{}
	for i, c := range res.Cliques {
		if len(c) != []int{7, 6, 5}[i] {
			t.Fatalf("clique %d has %d vertices", i, len(c))
		}
		if !graph.IsClique(g, c) {
			t.Fatalf("planted set %v is not a clique", c)
		}
		for _, v := range c {
			if seen[v] {
				t.Fatal("planted cliques overlap")
			}
			seen[v] = true
		}
	}
}

func TestAddCliqueAndCliqueEdges(t *testing.T) {
	g := graph.New()
	verts := []graph.Vertex{1, 2, 3, 4}
	AddClique(g, verts)
	if g.NumEdges() != 6 {
		t.Fatalf("AddClique made %d edges", g.NumEdges())
	}
	es := CliqueEdges(verts)
	if len(es) != 6 || !es[graph.NewEdge(4, 1)] {
		t.Fatalf("CliqueEdges = %v", es)
	}
}
