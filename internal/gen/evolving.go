package gen

import (
	"math/rand"

	"trikcore/internal/graph"
)

// CollabPair is a pair of consecutive yearly collaboration graphs
// (DBLP-style: vertices are authors, edges are co-authorships within the
// year) with the template-pattern events of Figures 9–11 planted.
type CollabPair struct {
	Old, New *graph.Graph
	// NewFormClique: six authors active in Old (with no mutual edges
	// anywhere) who all collaborate for the first time in New — the
	// Figure 9 event.
	NewFormClique []graph.Vertex
	// BridgeClique: six authors forming a clique in New, drawn from the
	// two disconnected Old groups in BridgeGroups — the Figure 10 event.
	BridgeClique []graph.Vertex
	BridgeGroups [2][]graph.Vertex
	// NewJoinClique: a nine-author clique in New consisting of the
	// three-author Old clique NewJoinOld plus six brand-new authors — the
	// Figure 11 event.
	NewJoinClique []graph.Vertex
	NewJoinOld    []graph.Vertex
}

// CollabSnapshots builds two consecutive collaboration years over a
// shared author universe of roughly nAuthors, each with papersPerYear
// papers (cliques of 2–5 authors), and plants the three template events.
// Reserved event authors occupy the highest vertex ids so background
// papers never touch them.
func CollabSnapshots(nAuthors, papersPerYear int, seed int64) CollabPair {
	rng := rand.New(rand.NewSource(seed))
	// Background authors: 0..nAuthors-1. Reserved: nAuthors..nAuthors+20.
	base := graph.Vertex(nAuthors)
	var p CollabPair
	for i := graph.Vertex(0); i < 6; i++ {
		p.NewFormClique = append(p.NewFormClique, base+i)
	}
	for i := graph.Vertex(6); i < 10; i++ {
		p.BridgeGroups[0] = append(p.BridgeGroups[0], base+i)
	}
	for i := graph.Vertex(10); i < 12; i++ {
		p.BridgeGroups[1] = append(p.BridgeGroups[1], base+i)
	}
	p.BridgeClique = append(append([]graph.Vertex(nil), p.BridgeGroups[0]...), p.BridgeGroups[1]...)
	for i := graph.Vertex(12); i < 15; i++ {
		p.NewJoinOld = append(p.NewJoinOld, base+i)
	}
	p.NewJoinClique = append([]graph.Vertex(nil), p.NewJoinOld...)
	for i := graph.Vertex(15); i < 21; i++ {
		p.NewJoinClique = append(p.NewJoinClique, base+i)
	}

	year := func(yearSeed int64) *graph.Graph {
		yr := rand.New(rand.NewSource(yearSeed))
		g := graph.New()
		for k := 0; k < papersPerYear; k++ {
			team := 2 + pickTeamExtra(yr)
			seen := make(map[graph.Vertex]bool, team)
			verts := make([]graph.Vertex, 0, team)
			for len(verts) < team {
				v := graph.Vertex(yr.Intn(nAuthors))
				if !seen[v] {
					seen[v] = true
					verts = append(verts, v)
				}
			}
			AddClique(g, verts)
		}
		return g
	}
	p.Old = year(seed ^ 0xA)
	p.New = year(seed ^ 0xB)

	// Ground the event authors in Old so they count as original vertices
	// (each gets one background collaboration; New Form authors must stay
	// mutually non-adjacent, which distinct random partners ensure).
	ground := func(g *graph.Graph, v graph.Vertex) {
		w := graph.Vertex(rng.Intn(nAuthors))
		g.AddEdge(v, w)
	}
	for _, v := range p.NewFormClique {
		ground(p.Old, v)
	}
	// Figure 10's Old state: the two groups are internal cliques.
	AddClique(p.Old, p.BridgeGroups[0])
	AddClique(p.Old, p.BridgeGroups[1])
	// Figure 11's Old state: the three joiners already collaborated.
	AddClique(p.Old, p.NewJoinOld)

	// New-year events.
	AddClique(p.New, p.NewFormClique)
	AddClique(p.New, p.BridgeClique)
	AddClique(p.New, p.NewJoinClique)
	return p
}

// pickTeamExtra draws the number of authors beyond two on a paper,
// skewed toward small teams (0..3 extra).
func pickTeamExtra(rng *rand.Rand) int {
	r := rng.Float64()
	switch {
	case r < 0.55:
		return 0
	case r < 0.85:
		return 1
	case r < 0.96:
		return 2
	default:
		return 3
	}
}

// WikiPair is a pair of consecutive wiki-link snapshots with the
// Figure 8 case-study events planted.
type WikiPair struct {
	Snap1, Snap2 *graph.Graph
	// Growth: in Snap1, Big is a 10-clique and Joiner sits in the
	// 5-clique Small; in Snap2, Joiner links to all of Big, forming the
	// 11-clique Result (the paper's "Astrology" green-triangle event).
	Growth struct {
		Joiner     graph.Vertex
		Big, Small []graph.Vertex
		Result     []graph.Vertex
	}
	// Merges: two events where vertices from two Snap1 cliques form a
	// new clique in Snap2 (the red-rectangle and orange-ellipse events).
	Merges [2]struct {
		Parts  [2][]graph.Vertex
		Result []graph.Vertex
	}
}

// WikiSnapshots builds the wiki stand-in: a scale-free, triangle-rich
// base of n vertices and exactly `edges` edges with topic cliques
// planted, plus a second snapshot containing the planted evolution events
// and background churn (newEdges extra random links).
func WikiSnapshots(n, edges, newEdges int, seed int64) WikiPair {
	rng := rand.New(rand.NewSource(seed))
	m := edges / n
	if m < 2 {
		m = 2
	}
	g := PowerLawCluster(n, m, 0.5, seed)

	keep := make(map[graph.Edge]bool)
	// Event cliques must be vertex-disjoint from each other so the
	// planted evolution events stay well-defined; reserved tracks their
	// members.
	reserved := make(map[graph.Vertex]bool)
	plantClique := func(size int, reserve bool) []graph.Vertex {
		verts := make([]graph.Vertex, 0, size)
		seen := make(map[graph.Vertex]bool, size)
		for len(verts) < size {
			v := graph.Vertex(rng.Intn(n))
			if !seen[v] && !reserved[v] {
				seen[v] = true
				verts = append(verts, v)
			}
		}
		if reserve {
			for _, v := range verts {
				reserved[v] = true
			}
		}
		AddClique(g, verts)
		for e := range CliqueEdges(verts) {
			keep[e] = true
		}
		return verts
	}
	var p WikiPair
	p.Growth.Big = plantClique(10, true)
	p.Growth.Small = plantClique(5, true)
	p.Growth.Joiner = p.Growth.Small[0]
	mergeParts := [4][]graph.Vertex{
		plantClique(7, true), plantClique(6, true),
		plantClique(8, true), plantClique(6, true),
	}
	// Topic cliques of assorted sizes form the Snap1 skyline; they avoid
	// the reserved event vertices but may overlap each other.
	for i := 0; i < 30; i++ {
		plantClique(4+rng.Intn(6), false)
	}

	if g.NumEdges() > edges {
		TrimEdges(g, edges, keep, seed^0x33)
	} else {
		TopUpEdges(g, edges, seed^0x33)
	}
	p.Snap1 = g

	// Snap2: copy, then apply events and churn.
	s2 := g.Clone()
	// Growth event: the joiner links to every member of Big.
	for _, v := range p.Growth.Big {
		s2.AddEdge(p.Growth.Joiner, v)
	}
	p.Growth.Result = append(append([]graph.Vertex(nil), p.Growth.Big...), p.Growth.Joiner)
	// Merge events: 3+3 vertices from two topic cliques become a clique.
	for k := 0; k < 2; k++ {
		a, b := mergeParts[2*k], mergeParts[2*k+1]
		part1 := append([]graph.Vertex(nil), a[:3]...)
		part2 := append([]graph.Vertex(nil), b[:3]...)
		result := append(append([]graph.Vertex(nil), part1...), part2...)
		AddClique(s2, result)
		p.Merges[k].Parts = [2][]graph.Vertex{part1, part2}
		p.Merges[k].Result = result
	}
	// Background churn: random new links that mostly close no dense
	// structure.
	for added := 0; added < newEdges; {
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex(rng.Intn(n))
		if u != v && s2.AddEdge(u, v) {
			added++
		}
	}
	p.Snap2 = s2
	return p
}
