package gen

import (
	"reflect"
	"testing"

	"trikcore/internal/core"
	"trikcore/internal/graph"
)

func TestRMAT(t *testing.T) {
	g := RMAT(8, 500, 0.57, 0.19, 0.19, 7)
	if g.NumVertices() != 256 || g.NumEdges() != 500 {
		t.Fatalf("%d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if !reflect.DeepEqual(g.Edges(), RMAT(8, 500, 0.57, 0.19, 0.19, 7).Edges()) {
		t.Fatal("not deterministic")
	}
	// Skew: the R-MAT hub quadrant concentrates degree.
	if graph.MaxDegree(g) < 3*500*2/256 {
		t.Fatalf("max degree %d lacks R-MAT skew", graph.MaxDegree(g))
	}
}

func TestRMATPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { RMAT(3, 500, 0.5, 0.2, 0.2, 1) }, // too many edges
		func() { RMAT(4, 5, 0.5, 0.3, 0.3, 1) },   // bad probabilities
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestRandomGeometric(t *testing.T) {
	g := RandomGeometric(400, 0.08, 11)
	if g.NumVertices() != 400 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if !reflect.DeepEqual(g.Edges(), RandomGeometric(400, 0.08, 11).Edges()) {
		t.Fatal("not deterministic")
	}
	// Geometric graphs are triangle-rich: clustering far above an ER
	// graph of the same size.
	er := ErdosRenyi(400, g.NumEdges(), 11)
	if graph.GlobalClusteringCoefficient(g) < 3*graph.GlobalClusteringCoefficient(er) {
		t.Fatalf("clustering %v not markedly above ER %v",
			graph.GlobalClusteringCoefficient(g), graph.GlobalClusteringCoefficient(er))
	}
}

func TestRandomGeometricBruteForceAgreement(t *testing.T) {
	// The grid-bucketed neighbor search must match the O(n²) definition.
	const n, radius = 150, 0.15
	g, xs, ys := RandomGeometricPoints(n, radius, 3)
	want := graph.New()
	for i := 0; i < n; i++ {
		want.AddVertex(graph.Vertex(i))
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if dx*dx+dy*dy <= radius*radius {
				want.AddEdge(graph.Vertex(i), graph.Vertex(j))
			}
		}
	}
	if !reflect.DeepEqual(g.Edges(), want.Edges()) {
		t.Fatalf("grid search disagrees with brute force: %d vs %d edges",
			g.NumEdges(), want.NumEdges())
	}
}

func TestPlantedPartition(t *testing.T) {
	g := PlantedPartition(120, 6, 0.8, 0.01, 5)
	if g.NumVertices() != 120 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	intra, inter := 0, 0
	g.ForEachEdge(func(e graph.Edge) bool {
		if int(e.U)%6 == int(e.V)%6 {
			intra++
		} else {
			inter++
		}
		return true
	})
	if intra < 5*inter {
		t.Fatalf("intra=%d inter=%d: community structure too weak", intra, inter)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad arguments accepted")
		}
	}()
	PlantedPartition(3, 5, 0.5, 0.1, 1)
}

func TestTriangulatedTorus(t *testing.T) {
	g := TriangulatedTorus(6, 5)
	if g.NumVertices() != 30 || g.NumEdges() != 90 {
		t.Fatalf("%d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	// Every edge lies in exactly two triangles: a perfect Triangle 2-Core.
	d := core.Decompose(g)
	for i, k := range d.Kappa {
		if k != 2 {
			t.Fatalf("torus edge %d has κ=%d, want 2", i, k)
		}
	}
	// Removing one edge collapses the whole 2-core.
	g.RemoveEdge(0, 5)
	d = core.Decompose(g)
	if d.MaxKappa != 1 {
		t.Fatalf("after removal MaxKappa=%d, want 1", d.MaxKappa)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("degenerate torus accepted")
		}
	}()
	TriangulatedTorus(2, 5)
}
