package gen

import (
	"fmt"
	"math"
	"math/rand"

	"trikcore/internal/graph"
)

// RMAT returns an R-MAT (Kronecker-style) random graph over 2^scale
// vertices with the given number of distinct edges. Each edge lands in a
// quadrant of the adjacency matrix chosen recursively with probabilities
// (a, b, c, 1-a-b-c), producing the skewed degree distributions of web
// and social graphs. Self-loops and duplicates are re-drawn.
func RMAT(scale, edges int, a, b, c float64, seed int64) *graph.Graph {
	if a+b+c >= 1 {
		panic(fmt.Sprintf("gen: RMAT probabilities a+b+c = %v must be < 1", a+b+c))
	}
	n := 1 << scale
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(edges) > maxEdges {
		panic(fmt.Sprintf("gen: RMAT(%d, %d): too many edges", scale, edges))
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewWithCapacity(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Vertex(i))
	}
	for g.NumEdges() < edges {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			g.AddEdge(graph.Vertex(u), graph.Vertex(v))
		}
	}
	return g
}

// RandomGeometric returns a random geometric graph: n points placed
// uniformly in the unit square, connected when within the given radius.
// Geometric graphs are naturally triangle-rich (neighbors of neighbors
// are close), exercising high-κ structure without planted cliques.
func RandomGeometric(n int, radius float64, seed int64) *graph.Graph {
	g, _, _ := RandomGeometricPoints(n, radius, seed)
	return g
}

// RandomGeometricPoints is RandomGeometric returning the point
// coordinates alongside the graph.
func RandomGeometricPoints(n int, radius float64, seed int64) (*graph.Graph, []float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	g := graph.NewWithCapacity(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Vertex(i))
	}
	// Grid-bucket the points so neighbor search is near-linear.
	cell := radius
	if cell <= 0 {
		panic("gen: RandomGeometric radius must be positive")
	}
	cols := int(math.Ceil(1 / cell))
	buckets := make(map[[2]int][]int)
	key := func(i int) [2]int {
		return [2]int{int(xs[i] / cell), int(ys[i] / cell)}
	}
	for i := 0; i < n; i++ {
		k := key(i)
		buckets[k] = append(buckets[k], i)
	}
	r2 := radius * radius
	for i := 0; i < n; i++ {
		k := key(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				nk := [2]int{k[0] + dx, k[1] + dy}
				if nk[0] < 0 || nk[1] < 0 || nk[0] > cols || nk[1] > cols {
					continue
				}
				for _, j := range buckets[nk] {
					if j <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						g.AddEdge(graph.Vertex(i), graph.Vertex(j))
					}
				}
			}
		}
	}
	return g, xs, ys
}

// PlantedPartition returns an LFR-style community graph: n vertices in
// equally sized communities, intra-community pairs connected with pIn and
// inter-community pairs with pOut. With pIn ≫ pOut the communities are
// dense clusters with distinct κ levels.
func PlantedPartition(n, communities int, pIn, pOut float64, seed int64) *graph.Graph {
	if communities < 1 || n < communities {
		panic("gen: PlantedPartition needs 1 ≤ communities ≤ n")
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewWithCapacity(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Vertex(i))
	}
	community := func(v int) int { return v % communities }
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pOut
			if community(i) == community(j) {
				p = pIn
			}
			if rng.Float64() < p {
				g.AddEdge(graph.Vertex(i), graph.Vertex(j))
			}
		}
	}
	return g
}

// TriangulatedTorus returns the n×m torus grid with diagonals: every
// edge lies in exactly two triangles, so the graph is a Triangle 2-Core
// with κ = 2 on every edge. It is the canonical structure for studying
// propagation behavior (removing a single edge collapses the whole
// 2-core, one triangle-hop per step).
func TriangulatedTorus(n, m int) *graph.Graph {
	if n < 3 || m < 3 {
		panic("gen: TriangulatedTorus needs n, m ≥ 3")
	}
	g := graph.NewWithCapacity(n * m)
	id := func(i, j int) graph.Vertex {
		return graph.Vertex(((i%n)+n)%n*m + ((j%m)+m)%m)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			g.AddEdge(id(i, j), id(i+1, j))
			g.AddEdge(id(i, j), id(i, j+1))
			g.AddEdge(id(i, j), id(i+1, j+1))
		}
	}
	return g
}
