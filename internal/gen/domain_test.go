package gen

import (
	"reflect"
	"testing"

	"trikcore/internal/graph"
)

func TestStocksSectorsAreDense(t *testing.T) {
	g := Stocks(60, 4, 120, 220, 5)
	if g.NumVertices() != 60 || g.NumEdges() != 220 {
		t.Fatalf("%d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	// Count intra-sector vs inter-sector edges: the correlation threshold
	// should make the overwhelming majority intra-sector.
	intra, inter := 0, 0
	g.ForEachEdge(func(e graph.Edge) bool {
		if int(e.U)%4 == int(e.V)%4 {
			intra++
		} else {
			inter++
		}
		return true
	})
	if intra < 3*inter {
		t.Fatalf("intra=%d inter=%d: sector structure too weak", intra, inter)
	}
	if !reflect.DeepEqual(g.Edges(), Stocks(60, 4, 120, 220, 5).Edges()) {
		t.Fatal("not deterministic")
	}
}

func TestPPIGroundTruth(t *testing.T) {
	res := PPI(600, 2600, 7)
	g := res.G
	if g.NumVertices() != 600 || g.NumEdges() != 2600 {
		t.Fatalf("%d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if len(res.Complex) != 600 {
		t.Fatalf("complex labels cover %d vertices", len(res.Complex))
	}
	if len(res.Planted) != 3 {
		t.Fatalf("planted %d structures", len(res.Planted))
	}
	if len(res.Planted[0]) != 9 || len(res.Planted[1]) != 10 || len(res.Planted[2]) != 10 {
		t.Fatalf("planted sizes %d/%d/%d", len(res.Planted[0]), len(res.Planted[1]), len(res.Planted[2]))
	}
	if !graph.IsClique(g, res.Planted[0]) || !graph.IsClique(g, res.Planted[1]) {
		t.Fatal("planted cliques 1/2 are not cliques")
	}
	if graph.IsClique(g, res.Planted[2]) {
		t.Fatal("planted structure 3 should miss one edge")
	}
	if g.HasEdgeE(res.MissingEdge) {
		t.Fatal("missing edge is present")
	}
	// Restoring the missing edge completes the clique.
	g2 := g.Clone()
	g2.AddEdgeE(res.MissingEdge)
	if !graph.IsClique(g2, res.Planted[2]) {
		t.Fatal("structure 3 is not one edge short of a clique")
	}
	// Bridge cliques span exactly two complexes.
	if len(res.BridgeCliques) != 3 {
		t.Fatalf("%d bridge cliques", len(res.BridgeCliques))
	}
	for i, b := range res.BridgeCliques {
		if !graph.IsClique(g, b) {
			t.Fatalf("bridge clique %d is not a clique", i)
		}
		labels := map[string]bool{}
		for _, v := range b {
			labels[res.Complex[v]] = true
		}
		if len(labels) != 2 {
			t.Fatalf("bridge clique %d spans %d complexes, want 2", i, len(labels))
		}
	}
	// Bridges 2 and 3 overlap (the paper's RNA14/GLC7 structure).
	overlap := 0
	in2 := map[graph.Vertex]bool{}
	for _, v := range res.BridgeCliques[1] {
		in2[v] = true
	}
	for _, v := range res.BridgeCliques[2] {
		if in2[v] {
			overlap++
		}
	}
	if overlap < 5 {
		t.Fatalf("bridge cliques 2 and 3 overlap on %d vertices", overlap)
	}
}

func TestCollabSnapshotsEvents(t *testing.T) {
	p := CollabSnapshots(500, 300, 11)
	old, new := p.Old, p.New

	// New Form: all 15 edges new, all 6 authors in Old, no mutual Old edges.
	if len(p.NewFormClique) != 6 || !graph.IsClique(new, p.NewFormClique) {
		t.Fatal("new-form clique malformed")
	}
	for i, u := range p.NewFormClique {
		if !old.HasVertex(u) {
			t.Fatalf("new-form author %d missing from old year", u)
		}
		for _, v := range p.NewFormClique[i+1:] {
			if old.HasEdge(u, v) {
				t.Fatalf("new-form authors %d,%d already collaborated", u, v)
			}
		}
	}
	// Bridge: groups are cliques in Old with no cross edges; full clique in New.
	if !graph.IsClique(old, p.BridgeGroups[0]) || !graph.IsClique(old, p.BridgeGroups[1]) {
		t.Fatal("bridge groups not cliques in old year")
	}
	for _, u := range p.BridgeGroups[0] {
		for _, v := range p.BridgeGroups[1] {
			if old.HasEdge(u, v) {
				t.Fatalf("bridge groups connected in old year via %d-%d", u, v)
			}
		}
	}
	if !graph.IsClique(new, p.BridgeClique) {
		t.Fatal("bridge clique absent from new year")
	}
	// New Join: 3 old authors (clique in Old), 6 authors absent from Old.
	if !graph.IsClique(old, p.NewJoinOld) || !graph.IsClique(new, p.NewJoinClique) {
		t.Fatal("new-join cliques malformed")
	}
	newCount := 0
	for _, v := range p.NewJoinClique {
		if !old.HasVertex(v) {
			newCount++
		}
	}
	if newCount != 6 {
		t.Fatalf("new-join has %d brand-new authors, want 6", newCount)
	}
}

func TestWikiSnapshotsEvents(t *testing.T) {
	p := WikiSnapshots(800, 4000, 60, 17)
	if p.Snap1.NumEdges() != 4000 {
		t.Fatalf("snap1 has %d edges", p.Snap1.NumEdges())
	}
	if got := p.Snap2.NumEdges(); got <= p.Snap1.NumEdges() {
		t.Fatalf("snap2 has %d edges, not larger than snap1", got)
	}
	// Growth event.
	if !graph.IsClique(p.Snap1, p.Growth.Big) || !graph.IsClique(p.Snap1, p.Growth.Small) {
		t.Fatal("growth source cliques not present in snap1")
	}
	if graph.IsClique(p.Snap1, p.Growth.Result) {
		t.Fatal("growth result already complete in snap1")
	}
	if !graph.IsClique(p.Snap2, p.Growth.Result) {
		t.Fatal("growth result not a clique in snap2")
	}
	if len(p.Growth.Result) != 11 {
		t.Fatalf("growth result has %d vertices", len(p.Growth.Result))
	}
	// Merge events.
	for k, m := range p.Merges {
		if !graph.IsClique(p.Snap2, m.Result) {
			t.Fatalf("merge %d result not a clique in snap2", k)
		}
		if graph.IsClique(p.Snap1, m.Result) {
			t.Fatalf("merge %d result already complete in snap1", k)
		}
		if !graph.IsClique(p.Snap1, m.Parts[0]) || !graph.IsClique(p.Snap1, m.Parts[1]) {
			t.Fatalf("merge %d parts not cliques in snap1", k)
		}
	}
}

func TestPPIDeterministic(t *testing.T) {
	a := PPI(600, 2600, 7)
	b := PPI(600, 2600, 7)
	if !reflect.DeepEqual(a.G.Edges(), b.G.Edges()) {
		t.Fatal("PPI not deterministic")
	}
}

func TestWikiDeterministic(t *testing.T) {
	a := WikiSnapshots(400, 1800, 30, 3)
	b := WikiSnapshots(400, 1800, 30, 3)
	if !reflect.DeepEqual(a.Snap2.Edges(), b.Snap2.Edges()) {
		t.Fatal("WikiSnapshots not deterministic")
	}
}

func TestCollabDeterministic(t *testing.T) {
	a := CollabSnapshots(300, 200, 5)
	b := CollabSnapshots(300, 200, 5)
	if !reflect.DeepEqual(a.New.Edges(), b.New.Edges()) || !reflect.DeepEqual(a.Old.Edges(), b.Old.Edges()) {
		t.Fatal("CollabSnapshots not deterministic")
	}
}
