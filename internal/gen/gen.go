// Package gen provides deterministic synthetic graph generators used to
// stand in for the paper's evaluation datasets (Table I), which are not
// redistributable. Each generator takes an explicit seed and produces the
// same graph on every run.
//
// Generic models (Erdős–Rényi, Barabási–Albert, Holme–Kim power-law
// cluster, forest fire) live in this file; domain-shaped models (stock
// correlation, protein complexes, collaboration years, wiki snapshots)
// live in domain.go; clique-planting helpers live in planted.go.
package gen

import (
	"fmt"
	"math/rand"

	"trikcore/internal/graph"
)

// ErdosRenyi returns a G(n, m) random graph: n vertices 0..n-1 and
// exactly m distinct uniform random edges. It panics if m exceeds the
// number of vertex pairs.
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		panic(fmt.Sprintf("gen: ErdosRenyi(%d, %d): too many edges", n, m))
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewWithCapacity(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Vertex(i))
	}
	for g.NumEdges() < m {
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex(rng.Intn(n))
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// BarabasiAlbert returns a preferential-attachment graph: vertices arrive
// one at a time and connect to m existing vertices chosen proportionally
// to degree. The first m+1 vertices form a clique seed.
func BarabasiAlbert(n, m int, seed int64) *graph.Graph {
	if n <= m {
		panic(fmt.Sprintf("gen: BarabasiAlbert(%d, %d): n must exceed m", n, m))
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewWithCapacity(n)
	// targets holds one entry per edge endpoint; sampling uniformly from
	// it is degree-proportional sampling.
	targets := make([]graph.Vertex, 0, 2*m*n)
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			g.AddEdge(graph.Vertex(i), graph.Vertex(j))
			targets = append(targets, graph.Vertex(i), graph.Vertex(j))
		}
	}
	for v := graph.Vertex(m + 1); v < graph.Vertex(n); v++ {
		added := make(map[graph.Vertex]bool, m)
		picks := make([]graph.Vertex, 0, m)
		for len(picks) < m {
			u := targets[rng.Intn(len(targets))]
			if u != v && !added[u] {
				added[u] = true
				picks = append(picks, u)
			}
		}
		for _, u := range picks {
			g.AddEdge(v, u)
			targets = append(targets, v, u)
		}
	}
	return g
}

// PowerLawCluster returns a Holme–Kim graph: preferential attachment with
// a triad-formation step. Each new vertex makes m connections; after each
// preferential pick, with probability p the next connection closes a
// triangle by attaching to a random neighbor of the previous pick. This
// is the scale-free, high-clustering model used for the social-network
// stand-ins, whose triangle-rich structure exercises the decomposition.
func PowerLawCluster(n, m int, p float64, seed int64) *graph.Graph {
	if n <= m {
		panic(fmt.Sprintf("gen: PowerLawCluster(%d, %d): n must exceed m", n, m))
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewWithCapacity(n)
	// adj mirrors the graph's adjacency as append-only slices so triad
	// steps can sample a uniform random neighbor deterministically in
	// O(1) (map iteration order would be nondeterministic).
	adj := make([][]graph.Vertex, n)
	targets := make([]graph.Vertex, 0, 2*m*n)
	addEdge := func(u, v graph.Vertex) {
		g.AddEdge(u, v)
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		targets = append(targets, u, v)
	}
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			addEdge(graph.Vertex(i), graph.Vertex(j))
		}
	}
	for v := graph.Vertex(m + 1); v < graph.Vertex(n); v++ {
		var prev graph.Vertex = -1
		made := 0
		for attempts := 0; made < m; attempts++ {
			var u graph.Vertex
			if prev >= 0 && rng.Float64() < p {
				// Triad step: random neighbor of the previous target.
				u = adj[prev][rng.Intn(len(adj[prev]))]
			} else {
				u = targets[rng.Intn(len(targets))]
			}
			if u == v || g.HasEdge(v, u) {
				prev = -1
				if attempts <= 10*m+50 {
					continue
				}
				// Livelock escape on tiny or saturated graphs: uniform
				// random existing vertex.
				u = graph.Vertex(rng.Intn(int(v)))
				if u == v || g.HasEdge(v, u) {
					continue
				}
			}
			addEdge(v, u)
			prev = u
			made++
		}
	}
	return g
}

// ForestFire returns a forest-fire graph (Leskovec et al., reference [13]
// of the paper): each new vertex picks a random ambassador and "burns"
// through its neighborhood with forward probability fw, linking to every
// burned vertex. burnCap bounds the burned set per arrival (0 means 200).
func ForestFire(n int, fw float64, burnCap int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	if burnCap <= 0 {
		burnCap = 200
	}
	g := graph.NewWithCapacity(n)
	g.AddVertex(0)
	for v := graph.Vertex(1); v < graph.Vertex(n); v++ {
		amb := graph.Vertex(rng.Intn(int(v)))
		burned := map[graph.Vertex]bool{amb: true}
		frontier := []graph.Vertex{amb}
		for len(frontier) > 0 && len(burned) < burnCap {
			next := frontier[0]
			frontier = frontier[1:]
			// Geometric number of neighbors to burn forward.
			burn := 0
			for rng.Float64() < fw {
				burn++
			}
			if burn == 0 {
				continue
			}
			nbrs := g.NeighborsSorted(next)
			rng.Shuffle(len(nbrs), func(i, j int) { nbrs[i], nbrs[j] = nbrs[j], nbrs[i] })
			for _, w := range nbrs {
				if burn == 0 || len(burned) >= burnCap {
					break
				}
				if !burned[w] {
					burned[w] = true
					frontier = append(frontier, w)
					burn--
				}
			}
		}
		for w := range burned {
			g.AddEdge(v, w)
		}
	}
	return g
}

// TopUpEdges adds uniform random edges to g until it has exactly target
// edges (no-op if it already has at least that many). Existing vertices
// are used as endpoints.
func TopUpEdges(g *graph.Graph, target int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	verts := g.Vertices()
	n := len(verts)
	if n < 2 {
		return
	}
	for tries := 0; g.NumEdges() < target; tries++ {
		u := verts[rng.Intn(n)]
		v := verts[rng.Intn(n)]
		if u != v {
			g.AddEdge(u, v)
		}
		if tries > 100*target+1000 {
			panic("gen: TopUpEdges cannot reach target")
		}
	}
}

// TrimEdges removes uniform random edges from g until it has exactly
// target edges, never touching edges in keep (no-op if already at or
// below target).
func TrimEdges(g *graph.Graph, target int, keep map[graph.Edge]bool, seed int64) {
	if g.NumEdges() <= target {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	var removable []graph.Edge
	for _, e := range g.Edges() { // sorted, so the shuffle is deterministic
		if !keep[e] {
			removable = append(removable, e)
		}
	}
	rng.Shuffle(len(removable), func(i, j int) { removable[i], removable[j] = removable[j], removable[i] })
	for _, e := range removable {
		if g.NumEdges() <= target {
			break
		}
		g.RemoveEdgeE(e)
	}
}

// AddClique inserts all pairwise edges among verts into g.
func AddClique(g *graph.Graph, verts []graph.Vertex) {
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			g.AddEdge(verts[i], verts[j])
		}
	}
}

// AddCommunities plants n dense communities into g: vertex sets of
// size minSize..maxSize whose internal pairs are connected independently
// with the given density (1.0 plants exact cliques). Real collaboration
// and social networks carry such clique-like groups, and they are what
// make per-edge maximum-clique searches (the CSV baseline) expensive;
// plain preferential-attachment models lack them. Returns the community
// vertex sets.
func AddCommunities(g *graph.Graph, n, minSize, maxSize int, density float64, seed int64) [][]graph.Vertex {
	rng := rand.New(rand.NewSource(seed))
	verts := g.Vertices()
	if len(verts) < maxSize {
		return nil
	}
	var out [][]graph.Vertex
	for c := 0; c < n; c++ {
		size := minSize
		if maxSize > minSize {
			size += rng.Intn(maxSize - minSize + 1)
		}
		members := make([]graph.Vertex, 0, size)
		seen := make(map[graph.Vertex]bool, size)
		for len(members) < size {
			v := verts[rng.Intn(len(verts))]
			if !seen[v] {
				seen[v] = true
				members = append(members, v)
			}
		}
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if density >= 1 || rng.Float64() < density {
					g.AddEdge(members[i], members[j])
				}
			}
		}
		out = append(out, members)
	}
	return out
}

// CliqueEdges returns the pairwise edges among verts as a set.
func CliqueEdges(verts []graph.Vertex) map[graph.Edge]bool {
	out := make(map[graph.Edge]bool, len(verts)*(len(verts)-1)/2)
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			out[graph.NewEdge(verts[i], verts[j])] = true
		}
	}
	return out
}
