package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"trikcore/internal/graph"
)

// Stocks builds a stock-correlation graph: nStocks synthetic instruments
// grouped into nSectors, each driven by its sector factor plus
// idiosyncratic noise over the given number of trading days. The graph
// connects the `edges` most-correlated pairs, so same-sector stocks form
// dense clique-like blocks — the structure the paper's Stocks dataset
// (275 vertices, 1680 edges) exhibits.
func Stocks(nStocks, nSectors, days, edges int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	factors := make([][]float64, nSectors)
	for s := range factors {
		factors[s] = make([]float64, days)
		for t := range factors[s] {
			factors[s][t] = rng.NormFloat64()
		}
	}
	returns := make([][]float64, nStocks)
	for i := range returns {
		sec := i % nSectors
		w := 0.55 + 0.4*rng.Float64() // factor loading
		returns[i] = make([]float64, days)
		for t := 0; t < days; t++ {
			returns[i][t] = w*factors[sec][t] + math.Sqrt(1-w*w)*rng.NormFloat64()
		}
	}
	type pair struct {
		u, v graph.Vertex
		corr float64
	}
	pairs := make([]pair, 0, nStocks*(nStocks-1)/2)
	for i := 0; i < nStocks; i++ {
		for j := i + 1; j < nStocks; j++ {
			pairs = append(pairs, pair{graph.Vertex(i), graph.Vertex(j), pearson(returns[i], returns[j])})
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].corr != pairs[b].corr {
			return pairs[a].corr > pairs[b].corr
		}
		if pairs[a].u != pairs[b].u {
			return pairs[a].u < pairs[b].u
		}
		return pairs[a].v < pairs[b].v
	})
	if edges > len(pairs) {
		edges = len(pairs)
	}
	g := graph.NewWithCapacity(nStocks)
	for i := 0; i < nStocks; i++ {
		g.AddVertex(graph.Vertex(i))
	}
	for _, p := range pairs[:edges] {
		g.AddEdge(p.u, p.v)
	}
	return g
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb, saa, sbb, sab float64
	for i := range a {
		sa += a[i]
		sb += b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
		sab += a[i] * b[i]
	}
	num := sab - sa*sb/n
	den := math.Sqrt((saa - sa*sa/n) * (sbb - sb*sb/n))
	if den == 0 {
		return 0
	}
	return num / den
}

// PPIResult is a protein-interaction stand-in with ground truth.
type PPIResult struct {
	G *graph.Graph
	// Complex labels each vertex with its protein complex.
	Complex map[graph.Vertex]string
	// Planted holds the Figure 7 case-study structures, in order:
	// a 9-clique, an exact 10-clique, and 10 vertices missing exactly one
	// edge (which therefore plots as a 9-clique).
	Planted [][]graph.Vertex
	// MissingEdge is the one absent edge of Planted[2].
	MissingEdge graph.Edge
	// BridgeCliques holds the Figure 12 structures: three cliques each
	// spanning two complexes (one vertex from the first, the rest from
	// the second); BridgeCliques[1] and [2] overlap heavily, as the
	// paper's Bridge Cliques 2 and 3 do.
	BridgeCliques [][]graph.Vertex
}

// PPI builds the protein-interaction stand-in: vertices partitioned into
// complexes (dense intra-complex wiring), with the Figure 7 cliques and
// Figure 12 bridge cliques planted, topped up with sparse inter-complex
// noise to exactly `edges` edges.
func PPI(n, edges int, seed int64) PPIResult {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewWithCapacity(n)
	res := PPIResult{G: g, Complex: make(map[graph.Vertex]string, n)}
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Vertex(i))
	}
	// Planted structure sizes scale down on small instances (smoke runs)
	// so every plant still fits in some complex; at n ≥ 500 the plants
	// are the paper's exact 9/10/10 and 9-vertex bridges.
	sc := func(s int) int {
		if n >= 500 {
			return s
		}
		r := s * n / 500
		if r < 4 {
			r = 4
		}
		if r > s {
			r = s
		}
		return r
	}
	// Partition vertices into complexes of size 5..14.
	var complexes [][]graph.Vertex
	for v := 0; v < n; {
		size := 5 + rng.Intn(10)
		if v+size > n {
			size = n - v
		}
		members := make([]graph.Vertex, size)
		name := fmt.Sprintf("cpx-%04d", len(complexes))
		for i := 0; i < size; i++ {
			members[i] = graph.Vertex(v + i)
			res.Complex[graph.Vertex(v+i)] = name
		}
		complexes = append(complexes, members)
		v += size
	}
	// Intra-complex wiring: probability 0.55 per pair.
	for _, members := range complexes {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if rng.Float64() < 0.55 {
					g.AddEdge(members[i], members[j])
				}
			}
		}
	}
	keep := make(map[graph.Edge]bool)
	// Figure 7 plants, each inside one sufficiently large complex region:
	// use the first vertices of three distinct complexes plus their
	// successors (vertex ids inside a complex are contiguous).
	next := 0
	pickIdx := func(want int) int {
		for ; next < len(complexes); next++ {
			if len(complexes[next]) >= want {
				k := next
				next++
				return k
			}
		}
		panic("gen: PPI: no complex large enough for plant")
	}
	c1 := complexes[pickIdx(sc(9))][:sc(9)]
	c2 := complexes[pickIdx(sc(10))][:sc(10)]
	c3 := complexes[pickIdx(sc(10))][:sc(10)]
	AddClique(g, c1)
	AddClique(g, c2)
	AddClique(g, c3)
	res.MissingEdge = graph.NewEdge(c3[0], c3[1])
	g.RemoveEdgeE(res.MissingEdge)
	res.Planted = [][]graph.Vertex{c1, c2, c3}
	for _, c := range res.Planted {
		for e := range CliqueEdges(c) {
			keep[e] = true
		}
	}
	delete(keep, res.MissingEdge)

	// Figure 12 bridge plants: one vertex of complex X + eight of
	// complex Y, fully connected.
	bw := sc(9) - 1 // bridge width in the second complex
	iA := pickIdx(4)
	iB := pickIdx(bw)
	iC := pickIdx(4)
	iD := pickIdx(bw + 1)
	b1 := append([]graph.Vertex{complexes[iA][0]}, complexes[iB][:bw]...)
	b2 := append([]graph.Vertex{complexes[iC][0]}, complexes[iD][:bw]...)
	// Bridge 3 shares all but one of bridge 2's second-complex members.
	b3 := append([]graph.Vertex{complexes[iC][1]}, complexes[iD][1:bw+1]...)
	for _, b := range [][]graph.Vertex{b1, b2, b3} {
		AddClique(g, b)
		for e := range CliqueEdges(b) {
			keep[e] = true
		}
		res.BridgeCliques = append(res.BridgeCliques, b)
	}

	if g.NumEdges() > edges {
		TrimEdges(g, edges, keep, seed^0x51ab)
	} else {
		TopUpEdges(g, edges, seed^0x51ab)
	}
	return res
}
