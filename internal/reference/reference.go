// Package reference holds deliberately naive implementations of the
// algorithms reproduced in this repository. They favor obviousness over
// speed and serve as ground truth in tests: every optimized algorithm is
// property-checked against its reference twin on randomized inputs.
package reference

import (
	"slices"

	"trikcore/internal/graph"
)

// VertexCore computes each vertex's maximum K-Core number by repeated
// global peeling: for k = 1, 2, ..., iteratively delete vertices of degree
// < k; vertices deleted during round k have core number k-1.
func VertexCore(g *graph.Graph) map[graph.Vertex]int {
	work := g.Clone()
	core := make(map[graph.Vertex]int, g.NumVertices())
	for _, v := range g.Vertices() {
		core[v] = 0
	}
	for k := 1; work.NumVertices() > 0; k++ {
		for {
			var doomed []graph.Vertex
			work.ForEachVertex(func(v graph.Vertex) bool {
				if work.Degree(v) < k {
					doomed = append(doomed, v)
				}
				return true
			})
			if len(doomed) == 0 {
				break
			}
			for _, v := range doomed {
				core[v] = k - 1
				work.RemoveVertex(v)
			}
		}
	}
	return core
}

// TriangleCore computes each edge's maximum Triangle K-Core number κ(e)
// (Definition 4) by repeated global peeling: for k = 1, 2, ...,
// iteratively delete edges contained in fewer than k triangles of the
// surviving graph; edges deleted during round k have κ = k-1.
func TriangleCore(g *graph.Graph) map[graph.Edge]int {
	work := g.Clone()
	kappa := make(map[graph.Edge]int, g.NumEdges())
	g.ForEachEdge(func(e graph.Edge) bool {
		kappa[e] = 0
		return true
	})
	for k := 1; work.NumEdges() > 0; k++ {
		for {
			var doomed []graph.Edge
			work.ForEachEdge(func(e graph.Edge) bool {
				if work.SupportE(e) < k {
					doomed = append(doomed, e)
				}
				return true
			})
			if len(doomed) == 0 {
				break
			}
			for _, e := range doomed {
				kappa[e] = k - 1
				work.RemoveEdgeE(e)
			}
		}
	}
	return kappa
}

// MaximalCliques enumerates all maximal cliques of g by brute force: it
// checks every subset of each connected component's vertex set. Only
// usable on very small graphs (the test harness keeps |V| ≤ ~16).
func MaximalCliques(g *graph.Graph) [][]graph.Vertex {
	verts := g.Vertices()
	n := len(verts)
	if n > 24 {
		panic("reference: MaximalCliques limited to 24 vertices")
	}
	var cliques [][]graph.Vertex
	for mask := 1; mask < 1<<n; mask++ {
		var set []graph.Vertex
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, verts[i])
			}
		}
		if !graph.IsClique(g, set) {
			continue
		}
		// Maximal if no outside vertex is adjacent to all of set.
		maximal := true
		for i := 0; i < n && maximal; i++ {
			if mask&(1<<i) != 0 {
				continue
			}
			allAdj := true
			for _, v := range set {
				if !g.HasEdge(verts[i], v) {
					allAdj = false
					break
				}
			}
			if allAdj {
				maximal = false
			}
		}
		if maximal {
			cliques = append(cliques, set)
		}
	}
	sortCliques(cliques)
	return cliques
}

// MaxCliqueSize returns the order of the largest clique in g by brute
// force (same size limits as MaximalCliques).
func MaxCliqueSize(g *graph.Graph) int {
	best := 0
	for _, c := range MaximalCliques(g) {
		if len(c) > best {
			best = len(c)
		}
	}
	return best
}

// CoCliqueSize returns, for edge e of g, the order of the largest clique
// containing e: 2 plus the largest clique in the subgraph induced by the
// common neighborhood of e's endpoints.
func CoCliqueSize(g *graph.Graph, e graph.Edge) int {
	if !g.HasEdgeE(e) {
		return 0
	}
	common := g.CommonNeighbors(e.U, e.V)
	if len(common) == 0 {
		return 2
	}
	sub := graph.InducedSubgraph(g, common)
	return 2 + MaxCliqueSize(sub)
}

// sortCliques sorts each clique ascending and the list lexicographically.
func sortCliques(cliques [][]graph.Vertex) {
	for _, c := range cliques {
		slices.Sort(c)
	}
	slices.SortFunc(cliques, slices.Compare)
}

// SortCliques is the exported form used by tests of other packages to
// normalize clique lists before comparison.
func SortCliques(cliques [][]graph.Vertex) { sortCliques(cliques) }
