package reference

import (
	"reflect"
	"testing"

	"trikcore/internal/graph"
)

func TestVertexCoreTriangleWithTail(t *testing.T) {
	g := graph.FromPairs(1, 2, 2, 3, 3, 1, 3, 4)
	got := VertexCore(g)
	want := map[graph.Vertex]int{1: 2, 2: 2, 3: 2, 4: 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("VertexCore = %v, want %v", got, want)
	}
}

func TestTriangleCoreK4(t *testing.T) {
	g := graph.FromPairs(1, 2, 1, 3, 1, 4, 2, 3, 2, 4, 3, 4)
	for _, k := range TriangleCore(g) {
		if k != 2 {
			t.Fatalf("TriangleCore(K4) has κ=%d, want 2", k)
		}
	}
}

func TestTriangleCoreTriangleFree(t *testing.T) {
	g := graph.FromPairs(1, 2, 2, 3, 3, 4, 4, 1)
	for e, k := range TriangleCore(g) {
		if k != 0 {
			t.Fatalf("κ(%v) = %d on a cycle", e, k)
		}
	}
}

func TestMaximalCliquesBowtie(t *testing.T) {
	g := graph.FromPairs(1, 2, 2, 3, 3, 1, 3, 4, 4, 5, 5, 3)
	got := MaximalCliques(g)
	want := [][]graph.Vertex{{1, 2, 3}, {3, 4, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MaximalCliques = %v, want %v", got, want)
	}
	if MaxCliqueSize(g) != 3 {
		t.Fatal("MaxCliqueSize wrong")
	}
}

func TestMaximalCliquesSizeLimitPanics(t *testing.T) {
	g := graph.New()
	for i := graph.Vertex(0); i < 25; i++ {
		g.AddVertex(i)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized MaximalCliques did not panic")
		}
	}()
	MaximalCliques(g)
}

func TestCoCliqueSizeEdgeCases(t *testing.T) {
	g := graph.FromPairs(1, 2, 1, 3, 2, 3)
	if got := CoCliqueSize(g, graph.NewEdge(1, 2)); got != 3 {
		t.Fatalf("CoCliqueSize(triangle edge) = %d, want 3", got)
	}
	if got := CoCliqueSize(g, graph.NewEdge(1, 4)); got != 0 {
		t.Fatalf("CoCliqueSize(absent) = %d, want 0", got)
	}
}

func TestSortCliques(t *testing.T) {
	cl := [][]graph.Vertex{{3, 1, 2}, {1, 2}}
	SortCliques(cl)
	want := [][]graph.Vertex{{1, 2}, {1, 2, 3}}
	if !reflect.DeepEqual(cl, want) {
		t.Fatalf("SortCliques = %v, want %v", cl, want)
	}
}
