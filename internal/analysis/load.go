package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	// Path is the import path ("trikcore/internal/graph").
	Path string
	// Rel is the module-relative directory, "" for the module root.
	Rel string
	// Dir is the absolute directory.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks the packages of one module using only
// the standard library: go/parser for syntax, go/types for checking, and
// the compiler-independent source importer for standard-library
// dependencies. Module-internal imports resolve recursively through the
// loader itself, so no build artifacts or external driver are needed.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// FindModuleRoot walks up from dir to the directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// NewLoader builds a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			mod = strings.TrimSpace(rest)
			break
		}
	}
	if mod == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: mod,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// Import resolves an import path for go/types: module-internal paths load
// recursively through the loader, everything else comes from the source
// importer (standard library).
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.LoadPath(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// LoadPath loads (memoized) the module package with the given import path.
func (l *Loader) LoadPath(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := ""
	if path != l.ModulePath {
		rel = strings.TrimPrefix(path, l.ModulePath+"/")
	}
	p, err := l.check(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), rel, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadDir type-checks a standalone directory (a test fixture) as if it
// lived at module-relative path rel. The result is not memoized and never
// aliases a real module package.
func (l *Loader) LoadDir(dir, rel string) (*Package, error) {
	return l.check(dir, rel, "fixture/"+rel)
}

// LoadAll loads every buildable package under the module root, sorted by
// import path. testdata and hidden directories are skipped.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		has, err := hasBuildableGo(path)
		if err != nil {
			return err
		}
		if has {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.LoadPath(path)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func hasBuildableGo(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// check parses and type-checks the non-test files of one directory.
func (l *Loader) check(dir, rel, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if fileIncluded(f) {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Rel:   filepath.ToSlash(rel),
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// fileIncluded evaluates a file's //go:build constraint (if any) under
// the analyzer's build configuration: host GOOS/GOARCH, any go1.x version
// tag, and no custom tags — in particular trikdebug is off, matching the
// default build the analyzer should mirror (debug_off.go is loaded,
// debug_on.go is not, so the debugChecks constant is declared once).
func fileIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) {
				expr, err := constraint.Parse(c.Text)
				if err != nil {
					return true
				}
				return expr.Eval(buildTagSatisfied)
			}
		}
	}
	return true
}

func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "unix":
		return true
	}
	return strings.HasPrefix(tag, "go1")
}
