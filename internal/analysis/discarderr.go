package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DiscardedError flags error results that are dropped on the floor: a
// call used as a bare statement, or an assignment whose left side is all
// blanks, when the call returns an error. Dropped errors in this codebase
// have concrete failure modes — a CSV row that never reached disk, a
// truncated SVG — so a discard must either handle the error or keep a
// visible `_ = err` acknowledging why not. Exempt by construction:
//
//   - deferred and go'ed calls (defer f.Close() cleanup idiom);
//   - fmt.Print/Printf/Println — terminal printing is best-effort, and
//     the no-stdout rule already restricts where it may happen;
//   - writes whose sink cannot fail or has nowhere to report: a
//     strings.Builder, bytes.Buffer, http.ResponseWriter, a hash.Hash
//     (whose Write is documented to never fail), or os.Stderr /
//     os.Stdout via the fmt.Fprint family.
var DiscardedError = Rule{
	Name:    "discarded-error",
	Doc:     "error results must be handled or visibly acknowledged",
	Applies: func(rel string) bool { return true },
	Run:     runDiscardedError,
}

func runDiscardedError(p *Pass) {
	errType := types.Universe.Lookup("error").Type()
	info := p.Pkg.Info

	returnsError := func(call *ast.CallExpr) bool {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return false // conversion, not a call
		}
		tv, ok := info.Types[call]
		if !ok {
			return false
		}
		switch t := tv.Type.(type) {
		case *types.Tuple:
			return t.Len() > 0 && types.Identical(t.At(t.Len()-1).Type(), errType)
		default:
			return types.Identical(tv.Type, errType)
		}
	}

	flag := func(call *ast.CallExpr) {
		if exemptDiscard(p, call) {
			return
		}
		p.Reportf(call.Pos(), "call to %s discards its error result", types.ExprString(call.Fun))
	}

	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok && returnsError(call) {
					flag(call)
				}
			case *ast.AssignStmt:
				allBlank := true
				for _, lhs := range stmt.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						allBlank = false
						break
					}
				}
				if allBlank && len(stmt.Rhs) == 1 {
					if call, ok := stmt.Rhs[0].(*ast.CallExpr); ok && returnsError(call) {
						flag(call)
					}
				}
			}
			return true
		})
	}
}

// exemptDiscard reports whether a discarded error is acceptable: console
// printing, or a write into a sink that cannot meaningfully fail.
func exemptDiscard(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	info := p.Pkg.Info

	// fmt.Print family, and fmt.Fprint family into an exempt sink.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			if stdoutPrinters[sel.Sel.Name] {
				return true
			}
			if strings.HasPrefix(sel.Sel.Name, "Fprint") && len(call.Args) > 0 {
				arg := ast.Unparen(call.Args[0])
				switch types.ExprString(arg) {
				case "os.Stderr", "os.Stdout":
					return true
				}
				if tv, ok := info.Types[arg]; ok && infallibleSink(tv.Type) {
					return true
				}
			}
			return false
		}
	}

	// Method call on an infallible sink (b.WriteString, w.Write, ...).
	if s, ok := info.Selections[sel]; ok && infallibleSink(s.Recv()) {
		return true
	}
	return false
}

// infallibleSink reports whether t is a writer whose errors are either
// impossible (in-memory builders) or unreportable past this point (an
// HTTP response already in flight).
func infallibleSink(t types.Type) bool {
	s := strings.TrimPrefix(t.String(), "*")
	switch s {
	case "strings.Builder", "bytes.Buffer", "net/http.ResponseWriter":
		return true
	// hash.Hash documents that Write never returns an error.
	case "hash.Hash", "hash.Hash32", "hash.Hash64":
		return true
	}
	return false
}
