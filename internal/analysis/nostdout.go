package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoStdout flags stdout writes — fmt.Print/Printf/Println calls and any
// mention of os.Stdout — in library packages. Binaries (cmd/, examples/)
// and the experiment driver internal/expt own the terminal; a library
// that prints corrupts machine-readable output (the server's JSON, the
// experiment CSVs) and cannot be silenced by its embedder. Libraries that
// need to emit text take an io.Writer.
var NoStdout = Rule{
	Name: "no-stdout",
	Doc:  "library packages must not print to stdout",
	Applies: func(rel string) bool {
		if rel == "cmd" || strings.HasPrefix(rel, "cmd/") {
			return false
		}
		if rel == "examples" || strings.HasPrefix(rel, "examples/") {
			return false
		}
		return rel != "internal/expt"
	},
	Run: runNoStdout,
}

var stdoutPrinters = map[string]bool{"Print": true, "Printf": true, "Println": true}

func runNoStdout(p *Pass) {
	isPkg := func(x ast.Expr, path string) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return false
		}
		pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
		return ok && pn.Imported().Path() == path
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case stdoutPrinters[sel.Sel.Name] && isPkg(sel.X, "fmt"):
				p.Reportf(sel.Pos(), "library package writes to stdout via fmt.%s; take an io.Writer instead", sel.Sel.Name)
			case sel.Sel.Name == "Stdout" && isPkg(sel.X, "os"):
				p.Reportf(sel.Pos(), "library package writes to stdout via os.Stdout; take an io.Writer instead")
			}
			return true
		})
	}
}
