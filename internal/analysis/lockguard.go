package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// guardedByMarker annotates a struct field with the mutex that guards it:
//
//	mu    sync.Mutex
//	subs  map[*Subscriber]struct{} //trikcheck:guardedby mu
//
// Every read or write of the field must then happen while <base>.mu is
// held in the same function — tracked intra-procedurally through
// Lock/RLock, Unlock/RUnlock and defer Unlock in source order. Functions
// whose callers hold the lock (internal helpers named *Locked, funnel
// internals) carry //trikcheck:locked on their declaration, which exempts
// the whole body; the same marker on an access line exempts just that
// line.
const guardedByMarker = "trikcheck:guardedby"

// LockGuard enforces annotated mutex contracts: a field carrying
// //trikcheck:guardedby mu may only be touched in stretches of code where
// the owning value's mu is held. The check is intra-procedural and
// source-ordered — no alias or interprocedural analysis — which matches
// the project style of lock-at-top, defer-unlock methods; anything
// cleverer is annotated //trikcheck:locked and reviewed by hand.
var LockGuard = Rule{
	Name:    "lock-guard",
	Doc:     "//trikcheck:guardedby fields are read and written only under their mutex",
	Applies: func(rel string) bool { return true },
	Run:     runLockGuard,
}

// lockMethods classify mutex calls: acquire, release, and the method
// names recognized on sync.Mutex and sync.RWMutex.
var (
	lockAcquire = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}
	lockRelease = map[string]bool{"Unlock": true, "RUnlock": true}
)

// guardedField is one annotated field: the struct that owns it and the
// name of the sibling mutex field that guards it.
type guardedField struct {
	owner string
	mutex string
}

func runLockGuard(p *Pass) {
	guarded := collectGuardedFields(p)
	if len(guarded) == 0 {
		return
	}
	w := &lockWalker{p: p, guarded: guarded}
	for _, fd := range funcDecls(p.Pkg) {
		if commentGroupHas(fd.Doc, lockedMarker) {
			continue // caller holds the guard; reviewed by hand
		}
		w.walk(fd.Body, make(map[string]int), make(map[ast.Node]bool))
	}
}

// collectGuardedFields resolves every //trikcheck:guardedby annotation in
// the package to its *types.Var.
func collectGuardedFields(p *Pass) map[*types.Var]guardedField {
	guarded := make(map[*types.Var]guardedField)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutex := guardAnnotation(field)
				if mutex == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := p.Pkg.Info.Defs[name].(*types.Var); ok {
						guarded[v] = guardedField{owner: ts.Name.Name, mutex: mutex}
					}
				}
			}
			return true
		})
	}
	return guarded
}

// guardAnnotation extracts the mutex name from a field's
// //trikcheck:guardedby annotation (trailing comment or doc line).
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if i := strings.Index(c.Text, guardedByMarker); i >= 0 {
				rest := strings.TrimSpace(c.Text[i+len(guardedByMarker):])
				if j := strings.IndexAny(rest, " \t"); j >= 0 {
					rest = rest[:j]
				}
				return rest
			}
		}
	}
	return ""
}

// commentGroupHas reports whether cg carries the marker.
func commentGroupHas(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// lockWalker walks function bodies in source order, maintaining the set
// of held mutexes keyed by their access path ("r.mu"). It is branch-
// sensitive at if statements: each arm runs on a clone of the lock state,
// an arm ending in return/panic/break/continue contributes nothing to
// the fall-through state (the `if bad { mu.Unlock(); return }` idiom),
// and surviving arms merge pessimistically (a lock counts as held after
// the if only if every surviving path holds it). Function literals start
// over with no locks held: the analyzer cannot see when a closure runs,
// so a closure that touches guarded state must lock for itself or carry
// //trikcheck:locked.
type lockWalker struct {
	p       *Pass
	guarded map[*types.Var]guardedField
}

func (w *lockWalker) walk(n ast.Node, held map[string]int, deferred map[ast.Node]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			w.walk(x.Body, make(map[string]int), make(map[ast.Node]bool))
			return false
		case *ast.IfStmt:
			w.walkIf(x, held, deferred)
			return false
		case *ast.DeferStmt:
			deferred[x.Call] = true
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			key := types.ExprString(sel.X)
			switch {
			case lockAcquire[sel.Sel.Name]:
				held[key]++
			case lockRelease[sel.Sel.Name]:
				// defer Unlock keeps the lock to function end; the floor at
				// zero keeps unmodeled control flow (releases inside loops
				// or switches) conservative rather than negative.
				if !deferred[x] && held[key] > 0 {
					held[key]--
				}
			}
		case *ast.SelectorExpr:
			s, ok := w.p.Pkg.Info.Selections[x]
			if !ok {
				return true
			}
			v, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			g, hit := w.guarded[v]
			if !hit {
				return true
			}
			mutexPath := types.ExprString(x.X) + "." + g.mutex
			if held[mutexPath] > 0 || w.p.Annotated(lockedMarker, x.Pos()) {
				return true
			}
			w.p.Reportf(x.Pos(), "access to %s.%s without holding %s (annotate //trikcheck:locked if the caller holds it)",
				g.owner, v.Name(), mutexPath)
		}
		return true
	})
}

// walkIf processes one if statement branch-sensitively and merges the
// surviving arms' lock states into held.
func (w *lockWalker) walkIf(x *ast.IfStmt, held map[string]int, deferred map[ast.Node]bool) {
	if x.Init != nil {
		w.walk(x.Init, held, deferred)
	}
	w.walk(x.Cond, held, deferred)

	thenHeld := cloneCounts(held)
	w.walk(x.Body, thenHeld, deferred)
	thenEnds := terminates(x.Body)

	if x.Else == nil {
		if !thenEnds {
			mergeMin(held, thenHeld)
		}
		return
	}
	elseHeld := cloneCounts(held)
	if ei, ok := x.Else.(*ast.IfStmt); ok {
		w.walkIf(ei, elseHeld, deferred)
	} else {
		w.walk(x.Else, elseHeld, deferred)
	}
	elseEnds := terminates(x.Else)

	switch {
	case thenEnds && elseEnds:
		// Both arms leave the straight-line path; whatever follows is
		// reached some other way. Leave held as it was.
	case thenEnds:
		replaceCounts(held, elseHeld)
	case elseEnds:
		replaceCounts(held, thenHeld)
	default:
		replaceCounts(held, thenHeld)
		mergeMin(held, elseHeld)
	}
}

// terminates reports whether executing stmt always leaves the enclosing
// straight-line path: it ends in return, panic, or a branch statement.
// An if terminates only when both arms do.
func terminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		if len(s.List) == 0 {
			return false
		}
		return terminates(s.List[len(s.List)-1])
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body) && terminates(s.Else)
	}
	return false
}

func cloneCounts(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// replaceCounts makes dst equal to src in place.
func replaceCounts(dst, src map[string]int) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// mergeMin lowers dst to the pointwise minimum of dst and src: a lock is
// held after a merge point only if both paths held it.
func mergeMin(dst, src map[string]int) {
	for k, v := range dst {
		if sv := src[k]; sv < v {
			dst[k] = sv
		}
	}
	for k := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = 0
		}
	}
}
