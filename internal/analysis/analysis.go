// Package analysis is trikcore's in-tree static analyzer: a small driver
// built entirely on the standard library (go/parser, go/types and the
// source importer — no golang.org/x/tools dependency) plus the project
// rules cmd/trikcheck runs over every package of the module.
//
// The rules encode invariants the test suite cannot see syntactically:
//
//	kappa-funnel        κ state is only written through the engine funnel
//	map-order           output packages never emit map-ordered data
//	unchecked-narrow    int32/uint32 narrowing in core packages is guarded
//	no-stdout           library packages do not print to stdout
//	discarded-error     error results are not silently dropped
//	lock-guard          //trikcheck:guardedby fields are touched only under their mutex
//	atomic-mix          atomically accessed fields are never plain-loaded/stored
//	snapshot-immutable  published snapshots and frozen CSRs are never mutated
//	goroutine-lifecycle goroutines in the serving tiers select on a ctx/done channel
//
// Each rule runs over one type-checked Package at a time and reports
// position-anchored Diagnostics. Fixture packages under testdata exercise
// every rule with vet-style `// want "regexp"` annotations.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
}

// Rule is one check. Applies gates it by module-relative package
// directory ("" is the module root); Run inspects the package through the
// Pass and reports findings.
type Rule struct {
	Name    string
	Doc     string
	Applies func(rel string) bool
	Run     func(p *Pass)
}

// Pass carries one rule's execution over one package.
type Pass struct {
	Pkg   *Package
	Rule  string
	diags []Diagnostic

	annotLines map[string]map[string]map[int]bool // marker → filename → annotated lines
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.Rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Review annotations. Each suppresses (or re-scopes) one rule at a
// reviewed site, on its own line or the line directly below it:
//
//	//trikcheck:checked    a narrowing conversion whose bound was reviewed
//	//trikcheck:locked     the enclosing function (or access) runs with the
//	                       guard already held by the caller
//	//trikcheck:bounded    a goroutine whose lifetime is bounded by a
//	                       reviewed mechanism the analyzer cannot see
const (
	checkedMarker = "trikcheck:checked"
	lockedMarker  = "trikcheck:locked"
	boundedMarker = "trikcheck:bounded"
)

// Annotated reports whether pos sits on (or directly below) a line
// carrying the given //trikcheck:<marker> annotation.
func (p *Pass) Annotated(marker string, pos token.Pos) bool {
	if p.annotLines == nil {
		p.annotLines = make(map[string]map[string]map[int]bool)
	}
	files, ok := p.annotLines[marker]
	if !ok {
		files = make(map[string]map[int]bool)
		p.annotLines[marker] = files
		for _, f := range p.Pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.Contains(c.Text, marker) {
						continue
					}
					cp := p.Pkg.Fset.Position(c.Pos())
					lines := files[cp.Filename]
					if lines == nil {
						lines = make(map[int]bool)
						files[cp.Filename] = lines
					}
					lines[cp.Line] = true
				}
			}
		}
	}
	at := p.Pkg.Fset.Position(pos)
	lines := files[at.Filename]
	return lines[at.Line] || lines[at.Line-1]
}

// Checked reports whether pos sits on (or directly below) a line carrying
// a //trikcheck:checked annotation.
func (p *Pass) Checked(pos token.Pos) bool { return p.Annotated(checkedMarker, pos) }

// AllRules returns every rule trikcheck runs, in reporting order.
func AllRules() []Rule {
	return []Rule{
		KappaFunnel, MapOrder, UncheckedNarrow, NoStdout, DiscardedError,
		LockGuard, AtomicMix, SnapshotImmutable, GoroutineLifecycle,
	}
}

// RuleByName returns the named rule, or false.
func RuleByName(name string) (Rule, bool) {
	for _, r := range AllRules() {
		if r.Name == name {
			return r, true
		}
	}
	return Rule{}, false
}

// RunRules executes the given rules over one package, honoring each
// rule's Applies gate, and returns the findings sorted by position.
func RunRules(pkg *Package, rules []Rule) []Diagnostic {
	var out []Diagnostic
	for _, r := range rules {
		if r.Applies != nil && !r.Applies(pkg.Rel) {
			continue
		}
		pass := &Pass{Pkg: pkg, Rule: r.Name}
		r.Run(pass)
		out = append(out, pass.diags...)
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// funcDecls yields every top-level function declaration with a body.
func funcDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// wantRe parses vet-style fixture annotations: `// want "regexp"`.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)
