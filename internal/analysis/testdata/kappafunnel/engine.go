// Fixture for the kappa-funnel rule: a miniature Engine with the guarded
// fields and both legal (funnel/construction) and illegal write sites.
package dynamic

type Engine struct {
	kappa []int32
	hist  []int
	maxK  int32
	dirty bool
}

func NewEngine(n int) *Engine {
	en := &Engine{}
	en.kappa = make([]int32, n) // ok: construction site
	en.hist = make([]int, 1)    // ok: construction site
	return en
}

func (en *Engine) ensureEdgeCap(n int) {
	for len(en.kappa) < n {
		en.kappa = append(en.kappa, 0) // ok: capacity growth site
	}
}

func (en *Engine) transition(eid, old, new int32) {
	if old >= 0 {
		en.hist[old]-- // ok: the funnel itself
	}
	if new >= 0 {
		en.hist[new]++ // ok: the funnel itself
	}
	if new > en.maxK {
		en.maxK = new // ok: the funnel itself
	}
}

func (en *Engine) setKappa(eid, old, new int32) {
	en.kappa[eid] = new // ok: paired with its transition below
	en.transition(eid, old, new)
}

func (en *Engine) promoteDirectly(eid int32) {
	en.kappa[eid]++ // want "write to Engine.kappa outside the κ funnel"
	en.dirty = true // ok: not a guarded field
}

func (en *Engine) rebuildHistogram() {
	en.hist = make([]int, 4) // want "write to Engine.hist outside the κ funnel"
	for i := range en.kappa {
		en.hist[en.kappa[i]]++ // want "write to Engine.hist outside the κ funnel"
	}
	en.maxK = 3 // want "write to Engine.maxK outside the κ funnel"
}

func (en *Engine) readOnly(eid int32) int32 {
	k := en.kappa[eid] // ok: reads are unrestricted
	return k + en.maxK
}

// applyCtx mirrors the worker staging overlay: sKappa/sMark are guarded,
// writable only in the staging funnel, sizing and the wrap reset.
type applyCtx struct {
	sKappa []int32
	sMark  []uint32
	gen    uint32
	writes []int32
}

func (c *applyCtx) stageKappa(e, v int32) {
	if c.sMark[e] != c.gen {
		c.sMark[e] = c.gen // ok: the staging funnel itself
		c.writes = append(c.writes, e)
	}
	c.sKappa[e] = v // ok: the staging funnel itself
}

func (c *applyCtx) growEdges(n int) {
	for len(c.sKappa) < n {
		c.sKappa = append(c.sKappa, 0) // ok: capacity growth site
		c.sMark = append(c.sMark, 0)   // ok: capacity growth site
	}
}

func (c *applyCtx) execRegion() {
	c.gen++
	if c.gen == 0 {
		for i := range c.sMark {
			c.sMark[i] = 0 // ok: generation-wrap wipe
		}
		c.gen = 1
	}
}

func (c *applyCtx) stageDirectly(e int32) {
	c.sKappa[e] = 7    // want "write to applyCtx.sKappa outside the staging funnel"
	c.sMark[e] = c.gen // want "write to applyCtx.sMark outside the staging funnel"
}

func (c *applyCtx) readStaged(e int32) int32 {
	if c.sMark[e] == c.gen { // ok: reads are unrestricted
		return c.sKappa[e]
	}
	return -1
}
