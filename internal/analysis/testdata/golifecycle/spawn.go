// Fixture for the goroutine-lifecycle rule: every goroutine launched in
// a serving-tier package must be stoppable — select on a ctx/done
// channel, go through a bounded helper, or carry a reviewed
// //trikcheck:bounded annotation.
package server

import (
	"context"
	"net/http"
)

type hub struct {
	done chan struct{}
	out  chan int
}

func (h *hub) fanout(ctx context.Context) {
	go func() { // want "goroutine never selects on a ctx/done channel"
		for v := range h.out {
			_ = v
		}
	}()

	go func() { // ok: selects on ctx.Done
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-h.out:
				_ = v
			}
		}
	}()

	go func() { // ok: direct receive from a chan struct{} done channel
		<-h.done
	}()
}

func (h *hub) drain() { // no done discipline: flagged at its spawn sites
	for v := range h.out {
		_ = v
	}
}

func (h *hub) pump(ctx context.Context) { // selects on ctx.Done: fine to spawn
	for {
		select {
		case <-ctx.Done():
			return
		case h.out <- 0:
		}
	}
}

func (h *hub) start(ctx context.Context, srv *http.Server) {
	go h.drain()   // want "goroutine runs drain, which never selects on a ctx/done channel"
	go h.pump(ctx) // ok: pump's body has done discipline
	go spawnBounded(h.drain)

	go h.drain() //trikcheck:bounded joined by the hub's WaitGroup in the real code

	go srv.ListenAndServe() // want "goroutine runs ListenAndServe, which this analysis cannot see into"
}

// spawnBounded stands in for the allowlisted bounded-pool helper.
func spawnBounded(fn func()) { fn() }
