// Fixture for the atomic-mix rule: fields driven through sync/atomic
// functions, typed atomic cells, and the plain accesses that would race
// them.
package obs

import "sync/atomic"

type Counters struct {
	hits  uint64 // accessed via atomic.AddUint64/LoadUint64 below
	cold  uint64 // never accessed atomically: plain access is fine
	gauge atomic.Int64
	ptr   atomic.Pointer[Counters]
}

func (c *Counters) Hit() {
	atomic.AddUint64(&c.hits, 1) // ok: the sanctioned access form
}

func (c *Counters) Snapshot() uint64 {
	return atomic.LoadUint64(&c.hits) // ok
}

func (c *Counters) Reset() {
	c.hits = 0 // want "plain access to hits"
	c.cold = 0 // ok: cold is not an atomic field
}

func (c *Counters) Racy() uint64 {
	return c.hits + c.cold // want "plain access to hits"
}

func (c *Counters) Publish(next *Counters) {
	c.ptr.Store(next) // ok: method call on the typed cell
	c.gauge.Add(1)    // ok
	_ = c.ptr.Load()  // ok
	_ = &c.gauge      // ok: address for a helper
}

func (c *Counters) ForkCell() atomic.Int64 {
	return c.gauge // want "atomic-typed field gauge used as a plain value"
}

func (c *Counters) OverwriteCell() {
	c.gauge = atomic.Int64{} // want "atomic-typed field gauge used as a plain value"
}
