// Fixture for the lock-guard rule: a miniature feed hub with annotated
// guarded fields, correctly locked methods, //trikcheck:locked helpers,
// and unguarded access sites.
package registry

import "sync"

type Feed struct {
	mu     sync.Mutex
	closed bool          // trikcheck:guardedby mu
	nextID uint64        // trikcheck:guardedby mu
	subs   map[*Sub]bool // trikcheck:guardedby mu
	ring   []int         //trikcheck:guardedby mu
	gauge  int           // not guarded: set once before the feed escapes
}

type Sub struct {
	done chan struct{}
}

func newFeed() *Feed {
	// Composite-literal construction never selects a field, so the
	// constructor needs no annotation.
	return &Feed{subs: make(map[*Sub]bool)}
}

func (f *Feed) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed { // ok: mu held
		return
	}
	f.closed = true // ok: mu held
	for s := range f.subs {
		close(s.done)
	}
	f.subs = make(map[*Sub]bool) // ok: mu held (defer keeps it to the end)
}

func (f *Feed) record(n int) {
	f.mu.Lock()
	f.nextID += uint64(n) // ok: mu held
	f.ring = append(f.ring, n)
	f.mu.Unlock()
	f.gauge = len(f.ring) // want "access to Feed.ring without holding f.mu"
}

// dropLocked is called with f.mu held by every caller.
//
//trikcheck:locked
func (f *Feed) dropLocked(s *Sub) {
	delete(f.subs, s) // ok: function annotated //trikcheck:locked
	close(s.done)
}

func (f *Feed) leakyRead() uint64 {
	return f.nextID // want "access to Feed.nextID without holding f.mu"
}

func (f *Feed) closedUnderReview() bool {
	return f.closed //trikcheck:locked single racy read reviewed — fixture only
}

func (f *Feed) lockTooLate() {
	f.closed = true // want "access to Feed.closed without holding f.mu"
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextID++ // ok: mu held from here on
}

func (f *Feed) closureEscapes() func() {
	f.mu.Lock()
	defer f.mu.Unlock()
	return func() {
		f.nextID++ // want "access to Feed.nextID without holding f.mu"
	}
}

func (f *Feed) earlyReturnUnlock() int {
	f.mu.Lock()
	if f.closed { // ok: mu held
		f.mu.Unlock()
		return 0
	}
	n := len(f.ring) // ok: the unlocking arm returned, this path still holds mu
	f.mu.Unlock()
	return n
}

func (f *Feed) conditionalLock(b bool) {
	if b {
		f.mu.Lock()
	}
	f.ring = nil // want "access to Feed.ring without holding f.mu"
	if b {
		f.mu.Unlock()
	}
}

func (f *Feed) closureLocksItself() func() {
	return func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		f.nextID++ // ok: the closure acquires the lock for itself
	}
}
