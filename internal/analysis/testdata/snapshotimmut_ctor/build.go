// Fixture for the snapshot-immutable constructor allowlist: loaded at
// module-relative path internal/graph, where FreezeStatic/Freeze/
// buildOriented legitimately fill a Static in place before it escapes.
// Any other function in the package is held to the same rule as a
// consumer.
package graph

import "trikcore/internal/graph"

func FreezeStatic(s *graph.Static) *graph.Static {
	s.RowPtr[0] = 0 // ok: the constructor fills the CSR in place
	s.AdjNbr[0] = 1 // ok
	s.OutPtr = nil  // ok
	return s
}

func buildOriented(s *graph.Static) {
	for i := range s.OutPtr {
		s.OutPtr[i] = 0 // ok: allowlisted constructor half
	}
}

func compactInPlace(s *graph.Static) {
	s.AdjNbr[0] = 2 // want "assignment through graph.Static field AdjNbr"
}
