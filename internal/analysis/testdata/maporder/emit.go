// Fixture for the map-order rule: map ranges that leak iteration order
// into output, and the sorted/slice-backed shapes that are fine.
package plot

import (
	"fmt"
	"io"
	"sort"
)

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "appends to keys while ranging over a map"
		keys = append(keys, k)
	}
	return keys
}

func streamDirectly(w io.Writer, m map[string]int) {
	for k, v := range m { // want "writes output via w.Write while ranging over a map"
		w.Write([]byte(fmt.Sprint(k, v)))
	}
}

func printDirectly(w io.Writer, m map[string]int) {
	for k, v := range m { // want "writes output via fmt.Fprintf while ranging over a map"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // ok: sorted before anything is emitted
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectSortedSlices(m map[string]int) []int {
	var vals []int
	for _, v := range m { // ok: sorted before anything is emitted
		vals = append(vals, v)
	}
	sortInts(vals)
	return vals
}

func sortInts(xs []int) { sort.Ints(xs) }

func overSlice(w io.Writer, xs []string) {
	for _, x := range xs { // ok: slices iterate deterministically
		fmt.Fprintln(w, x)
	}
}

func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m { // ok: order never reaches the output
		out[k] = v * 2
	}
	return out
}
