// Fixture for the discarded-error rule: silently dropped errors against
// the handled, acknowledged and infallible-sink shapes that are fine.
package store

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
)

func flush() error       { return nil }
func read() (int, error) { return 0, nil }
func count() int         { return 0 }

func bad(f *os.File) {
	flush()       // want "call to flush discards its error result"
	_ = flush()   // want "call to flush discards its error result"
	_, _ = read() // want "call to read discards its error result"
	f.Sync()      // want "call to f.Sync discards its error result"
}

func good(f *os.File) error {
	if err := flush(); err != nil {
		return err
	}
	n, _ := read() // ok: the value is kept, the drop is visible
	count()        // ok: no error to lose

	var b strings.Builder
	b.WriteString("rows: ")  // ok: Builder writes cannot fail
	fmt.Fprintf(&b, "%d", n) // ok: Builder sink
	var buf bytes.Buffer
	buf.WriteByte('\n') // ok: Buffer writes cannot fail
	h := crc32.NewIEEE()
	h.Write(buf.Bytes())           // ok: hash.Hash writes never fail
	fmt.Println(b.String())        // ok: console printing is best-effort
	fmt.Fprintln(os.Stderr, "bye") // ok: stderr sink

	defer f.Close() // ok: deferred cleanup
	return nil
}
