// Fixture for the unchecked-narrow rule: 64→32 bit conversions with and
// without guards, plus the packed-word idioms that are exempt by shape.
package graph

func lengths(xs []int64, n int) (int32, int32) {
	a := int32(len(xs)) // want "unchecked narrowing int32"
	b := int32(n)       // want "unchecked narrowing int32"
	return a, b
}

func toUnsigned(v int64) uint32 {
	return uint32(v) // want "unchecked narrowing uint32"
}

func guardedLength(xs []int64) int32 {
	if len(xs) >= 1<<31 {
		panic("too many")
	}
	return int32(len(xs)) //trikcheck:checked bounded by the panic above
}

func guardedAbove(n int) int32 {
	//trikcheck:checked caller bounds n to the vertex capacity
	return int32(n)
}

func packedHalves(packed int64) (int32, int32) {
	hi := int32(packed >> 32)   // ok: high half always fits
	lo := int32(uint32(packed)) // ok: deliberate low-half masking
	return hi, lo
}

func smallOperands(a int16, b uint32, c int32) (int32, int32, uint32) {
	return int32(a), int32(b), uint32(c) // ok: operands are ≤32 bits already
}

func constants() int32 {
	const big = 1 << 20
	return int32(big) + int32(0) // ok: constants are compiler-checked
}
