// Negative fixture for the no-stdout rule: the same printing is fine in
// a cmd/ package, where the binary owns the terminal. The harness checks
// the rule's Applies gate leaves this package untouched.
package main

import (
	"fmt"
	"os"
)

func main() {
	fmt.Println("hello") // ok: binaries own stdout
	fmt.Printf("%d\n", 42)
	fmt.Fprintln(os.Stdout, "direct")
}
