// Fixture for the no-stdout rule: terminal printing from a library
// package, against the io.Writer shapes libraries should use.
package report

import (
	"fmt"
	"io"
	"os"
)

func announce(x int) {
	fmt.Println("result:", x)         // want "library package writes to stdout via fmt.Println"
	fmt.Printf("result: %d\n", x)     // want "library package writes to stdout via fmt.Printf"
	fmt.Print(x)                      // want "library package writes to stdout via fmt.Print"
	fmt.Fprintf(os.Stdout, "%d\n", x) // want "library package writes to stdout via os.Stdout"
}

func logWarning(x int) {
	fmt.Fprintln(os.Stderr, "warning:", x) // ok: stderr is not machine-read output
}

func render(w io.Writer, x int) {
	fmt.Fprintf(w, "result: %d\n", x) // ok: the embedder chooses the sink
}

func format(x int) string {
	return fmt.Sprintf("result: %d", x) // ok: no I/O at all
}
