// Fixture for the snapshot-immutable rule from a consumer package's
// point of view: reads of published state are free, writes through it
// are findings wherever they hide in a selector/index chain.
package plot

import (
	"trikcore/internal/graph"
	"trikcore/internal/view"
)

func readOnly(sn *view.Snapshot) int {
	total := 0
	for _, k := range sn.Kappa { // ok: reads are unrestricted
		total += int(k)
	}
	return total + sn.S.NumEdges()
}

func bumpKappa(sn *view.Snapshot) {
	sn.Kappa[0]++ // want "assignment through view.Snapshot field Kappa"
}

func patchHist(sn *view.Snapshot, h []int) {
	sn.Hist = h // want "assignment through view.Snapshot field Hist"
}

func deepPatch(sn *view.Snapshot) {
	sn.S.AdjNbr[0] = 7 // want "assignment through graph.Static field AdjNbr"
}

func scribble(s *graph.Static) {
	s.RowPtr[0] = 1 // want "assignment through graph.Static field RowPtr"
}

func clobber(sn *view.Snapshot) {
	*sn = view.Snapshot{} // want "assignment through a view.Snapshot value"
}

func copyInto(sn *view.Snapshot, src []int32) {
	copy(sn.Kappa, src) // want "copy into through view.Snapshot field Kappa"
}

func copyOut(sn *view.Snapshot, dst []int32) {
	copy(dst, sn.Kappa) // ok: the snapshot is the source, not the destination
}

func localCopyIsFine(sn *view.Snapshot) []int32 {
	kappa := append([]int32(nil), sn.Kappa...) // ok: writes land on the copy
	kappa[0]++
	return kappa
}
