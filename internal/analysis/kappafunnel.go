package analysis

import (
	"go/ast"
	"go/types"
)

// kappaFunnelAllowed are the functions permitted to write κ state:
// transition (the funnel itself, maintaining hist and maxK), setKappa
// (the κ-array write paired with its transition), the engine
// constructors (NewEngine delegates to NewEngineFromDecomposition, which
// seeds κ and hist from the static decomposition) and ensureEdgeCap
// (growing the κ array for new slots).
var kappaFunnelAllowed = map[string]bool{
	"transition":                 true,
	"setKappa":                   true,
	"NewEngine":                  true,
	"NewEngineFromDecomposition": true,
	"ensureEdgeCap":              true,
}

// KappaFunnel enforces the engine's central bookkeeping discipline: the
// kappa, hist and maxK fields of Engine are written only inside the
// funnel functions above. Everything else must go through setKappa /
// transition, which keep the histogram, maxK and the change observer in
// lockstep with the κ array — a direct field write elsewhere silently
// desynchronizes all three.
var KappaFunnel = Rule{
	Name:    "kappa-funnel",
	Doc:     "Engine.kappa/hist/maxK are written only via transition/setKappa and construction",
	Applies: func(rel string) bool { return rel == "internal/dynamic" },
	Run:     runKappaFunnel,
}

func runKappaFunnel(p *Pass) {
	obj := p.Pkg.Types.Scope().Lookup("Engine")
	if obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	guarded := make(map[*types.Var]string)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch f.Name() {
		case "kappa", "hist", "maxK":
			guarded[f] = f.Name()
		}
	}
	if len(guarded) == 0 {
		return
	}

	report := func(pos ast.Expr, name string) {
		p.Reportf(pos.Pos(),
			"write to Engine.%s outside the κ funnel (allowed: transition, setKappa, constructors, ensureEdgeCap)",
			name)
	}
	check := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.IndexExpr:
				e = x.X
				continue
			case *ast.ParenExpr:
				e = x.X
				continue
			case *ast.StarExpr:
				e = x.X
				continue
			}
			break
		}
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return
		}
		s, ok := p.Pkg.Info.Selections[sel]
		if !ok {
			return
		}
		if v, ok := s.Obj().(*types.Var); ok {
			if name, hit := guarded[v]; hit {
				report(sel, name)
			}
		}
	}

	for _, fd := range funcDecls(p.Pkg) {
		if kappaFunnelAllowed[fd.Name.Name] {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range stmt.Lhs {
					check(lhs)
				}
			case *ast.IncDecStmt:
				check(stmt.X)
			}
			return true
		})
	}
}
