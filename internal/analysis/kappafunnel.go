package analysis

import (
	"go/ast"
	"go/types"
)

// kappaFunnelAllowed are the functions permitted to write κ state:
// transition (the funnel itself, maintaining hist and maxK), setKappa
// (the κ-array write paired with its transition), the engine
// constructors (NewEngine delegates to NewEngineFromDecomposition, which
// seeds κ and hist from the static decomposition) and ensureEdgeCap
// (growing the κ array for new slots).
var kappaFunnelAllowed = map[string]bool{
	"transition":                 true,
	"setKappa":                   true,
	"NewEngine":                  true,
	"NewEngineFromDecomposition": true,
	"ensureEdgeCap":              true,
}

// kappaStagingAllowed are the functions permitted to write the staged-κ
// overlay of a worker context (applyCtx.sKappa/sMark): stageKappa (the
// staging funnel — the only writer that records the edge in the write
// set, which the merge and conflict validation read), growEdges (sizing
// new slots) and execRegion (the generation-wrap wipe). A staged value
// written anywhere else would bypass the write-set record and land on the
// engine without conflict validation — or never land at all.
var kappaStagingAllowed = map[string]bool{
	"stageKappa": true,
	"growEdges":  true,
	"execRegion": true,
}

// KappaFunnel enforces the engine's central bookkeeping discipline: the
// kappa, hist and maxK fields of Engine are written only inside the
// funnel functions above, and the staged overlay fields of applyCtx only
// inside the staging funnel. Everything else must go through setKappa /
// transition (which keep the histogram, maxK and the change observer in
// lockstep with the κ array — a direct field write elsewhere silently
// desynchronizes all three) or stageKappa (which keeps the write set in
// lockstep with the overlay).
var KappaFunnel = Rule{
	Name:    "kappa-funnel",
	Doc:     "Engine.kappa/hist/maxK and applyCtx.sKappa/sMark are written only via their funnels",
	Applies: func(rel string) bool { return rel == "internal/dynamic" },
	Run:     runKappaFunnel,
}

func runKappaFunnel(p *Pass) {
	// guardedField describes one protected field: which struct owns it,
	// which functions may write it, and the diagnostic to emit elsewhere.
	type guardedField struct {
		owner   string
		allowed map[string]bool
		msg     string
	}
	guarded := make(map[*types.Var]guardedField)
	collect := func(typeName string, fields []string, allowed map[string]bool, msg string) {
		obj := p.Pkg.Types.Scope().Lookup(typeName)
		if obj == nil {
			return
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			for _, name := range fields {
				if f.Name() == name {
					guarded[f] = guardedField{owner: typeName, allowed: allowed, msg: msg}
				}
			}
		}
	}
	collect("Engine", []string{"kappa", "hist", "maxK"}, kappaFunnelAllowed,
		"outside the κ funnel (allowed: transition, setKappa, constructors, ensureEdgeCap)")
	collect("applyCtx", []string{"sKappa", "sMark"}, kappaStagingAllowed,
		"outside the staging funnel (allowed: stageKappa, growEdges, execRegion)")
	if len(guarded) == 0 {
		return
	}

	check := func(fn string, e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.IndexExpr:
				e = x.X
				continue
			case *ast.ParenExpr:
				e = x.X
				continue
			case *ast.StarExpr:
				e = x.X
				continue
			}
			break
		}
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return
		}
		s, ok := p.Pkg.Info.Selections[sel]
		if !ok {
			return
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return
		}
		g, hit := guarded[v]
		if !hit || g.allowed[fn] {
			return
		}
		p.Reportf(sel.Pos(), "write to %s.%s %s", g.owner, v.Name(), g.msg)
	}

	for _, fd := range funcDecls(p.Pkg) {
		fn := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range stmt.Lhs {
					check(fn, lhs)
				}
			case *ast.IncDecStmt:
				check(fn, stmt.X)
			}
			return true
		})
	}
}
