package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// atomicMixPackages are the concurrency-bearing tiers where a field that
// is accessed atomically anywhere must be accessed atomically everywhere:
// one plain load racing an atomic store is still a data race, and the
// race detector only sees the interleavings the tests happen to produce.
var atomicMixPackages = map[string]bool{
	"internal/dynamic":  true,
	"internal/obs":      true,
	"internal/view":     true,
	"internal/registry": true,
	"internal/server":   true,
}

// atomicFuncs are the sync/atomic package-level operation name prefixes
// (AddUint64, LoadPointer, StoreInt32, SwapUint32, CompareAndSwap...).
var atomicFuncPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"}

// AtomicMix enforces atomic discipline on struct fields:
//
//   - a field passed to a sync/atomic function anywhere in the package
//     (atomic.AddUint64(&s.f, 1)) must never be read or written as a
//     plain load/store elsewhere in the package;
//   - a field of a typed atomic (atomic.Uint64, atomic.Pointer[T], ...)
//     may only be used as a method-call receiver or have its address
//     taken — copying or reassigning the whole value silently forks the
//     cell (and go vet's copylocks only sees some of those shapes).
var AtomicMix = Rule{
	Name:    "atomic-mix",
	Doc:     "atomically accessed fields are never mixed with plain loads/stores",
	Applies: func(rel string) bool { return atomicMixPackages[rel] },
	Run:     runAtomicMix,
}

func runAtomicMix(p *Pass) {
	info := p.Pkg.Info

	// Phase 1: find every field that is the operand of a sync/atomic
	// call, and remember the exact selector nodes those calls use — they
	// are the sanctioned accesses.
	plainAtomic := make(map[*types.Var]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isAtomicCall(info, call) {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			if sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr); ok {
				if v, ok := selectedField(info, sel); ok {
					plainAtomic[v] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}

	// Phase 2: find every struct field whose type is a typed atomic.
	typedAtomic := make(map[*types.Var]bool)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					v, ok := info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if isTypedAtomic(v.Type()) {
						typedAtomic[v] = true
					}
				}
			}
			return true
		})
	}
	if len(plainAtomic) == 0 && len(typedAtomic) == 0 {
		return
	}

	// Phase 3: every other access. Parent links tell a method-call
	// receiver or address-of (fine) from a plain load, store or copy.
	for _, f := range p.Pkg.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if sel, ok := n.(*ast.SelectorExpr); ok && len(stack) > 0 {
				if v, ok := selectedField(info, sel); ok {
					parent := stack[len(stack)-1]
					switch {
					case plainAtomic[v] && !sanctioned[sel] && !isAddrForAtomic(parent):
						p.Reportf(sel.Pos(),
							"plain access to %s, which is accessed via sync/atomic elsewhere in this package", v.Name())
					case typedAtomic[v] && !atomicReceiverUse(parent, sel):
						p.Reportf(sel.Pos(),
							"atomic-typed field %s used as a plain value; call its methods or take its address", v.Name())
					}
				}
			}
			stack = append(stack, n)
			return true
		})
	}
}

// selectedField resolves sel to the struct field it names, if any.
func selectedField(info *types.Info, sel *ast.SelectorExpr) (*types.Var, bool) {
	s, ok := info.Selections[sel]
	if !ok {
		return nil, false
	}
	v, ok := s.Obj().(*types.Var)
	return v, ok
}

// isAtomicCall reports whether call invokes a sync/atomic package-level
// operation (by package identity, not identifier spelling).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range atomicFuncPrefixes {
		if strings.HasPrefix(sel.Sel.Name, prefix) {
			return true
		}
	}
	return false
}

// isTypedAtomic reports whether t is one of sync/atomic's typed cells
// (atomic.Uint64, atomic.Pointer[T], atomic.Value, ...).
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// isAddrForAtomic reports whether parent takes the child's address — the
// only plain-syntax use of a sync/atomic-managed field that does not
// itself load or store it. (The sanctioned set has already cleared the
// addresses inside atomic calls; a stray &s.f handed elsewhere is still
// only an alias, and the callee's own accesses are checked where they
// occur.)
func isAddrForAtomic(parent ast.Node) bool {
	u, ok := parent.(*ast.UnaryExpr)
	return ok && u.Op.String() == "&"
}

// atomicReceiverUse reports whether sel (a typed-atomic field) is used
// the way typed atomics must be: as the receiver of a method call
// (s.f.Load()) or behind an address-of.
func atomicReceiverUse(parent ast.Node, sel *ast.SelectorExpr) bool {
	switch x := parent.(type) {
	case *ast.SelectorExpr:
		return x.X == sel // s.f.Load — sel is the receiver part
	case *ast.UnaryExpr:
		return x.Op.String() == "&"
	}
	return false
}
