package analysis

import (
	"go/ast"
	"go/types"
)

// goLifecyclePackages are the serving tiers: every goroutine launched
// here outlives a request only if something can stop it, so each one
// must observably select on a context/done channel. The compute packages
// (graph's parallel freeze, dynamic's worker fan-out) are exempt — their
// goroutines are joined by WaitGroups within one call.
var goLifecyclePackages = map[string]bool{
	"internal/server":   true,
	"internal/registry": true,
	"internal/view":     true,
	// The flight recorder sits on the request path of all three tiers;
	// any goroutine it ever grows must be stoppable for the same reason.
	"internal/obs/trace": true,
	// loadgen's workers and scraper run for a whole load session; a
	// non-cancellable one would survive ^C and hold the report hostage.
	"cmd/loadgen": true,
}

// goLifecycleBounded are named spawn helpers whose implementations bound
// the goroutine's lifetime themselves (reserved for the per-space writer
// pools of ROADMAP items 1 and 4; exercised today by the rule fixtures).
var goLifecycleBounded = map[string]bool{
	"spawnBounded": true,
}

// GoroutineLifecycle requires every `go` statement in the serving tiers
// to be cancellable: the launched function (a literal, or a same-package
// named function) must receive from a context's Done channel or from a
// `chan struct{}` done/quit channel — in a select or a direct receive —
// or the launch must go through an allowlisted bounded helper. An
// unkillable goroutine behind an SSE handler survives client disconnect,
// graph deletion and server shutdown; this rule is why there aren't any.
var GoroutineLifecycle = Rule{
	Name:    "goroutine-lifecycle",
	Doc:     "goroutines in server/registry/view select on a ctx/done channel or use a bounded helper",
	Applies: func(rel string) bool { return goLifecyclePackages[rel] },
	Run:     runGoroutineLifecycle,
}

func runGoroutineLifecycle(p *Pass) {
	// Index same-package function declarations so `go s.loop(ctx)` can be
	// checked against loop's body.
	decls := make(map[string]*ast.FuncDecl)
	for _, fd := range funcDecls(p.Pkg) {
		decls[fd.Name.Name] = fd
	}

	for _, fd := range funcDecls(p.Pkg) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if p.Annotated(boundedMarker, g.Pos()) {
				return true
			}
			switch fun := g.Call.Fun.(type) {
			case *ast.FuncLit:
				if !hasDoneDiscipline(p, fun.Body) {
					p.Reportf(g.Pos(), "goroutine never selects on a ctx/done channel; it cannot be stopped (use a bounded helper or annotate //trikcheck:bounded)")
				}
				return true
			case *ast.Ident:
				if checkNamedSpawn(p, g, decls, fun.Name) {
					return true
				}
			case *ast.SelectorExpr:
				if checkNamedSpawn(p, g, decls, fun.Sel.Name) {
					return true
				}
			}
			return true
		})
	}
}

// checkNamedSpawn handles `go name(...)` / `go recv.name(...)`: fine if
// name is an allowlisted bounded helper or a same-package function whose
// body has done discipline; reported otherwise. Always returns true (the
// diagnostic, if any, has been emitted).
func checkNamedSpawn(p *Pass, g *ast.GoStmt, decls map[string]*ast.FuncDecl, name string) bool {
	if goLifecycleBounded[name] {
		return true
	}
	if fd, ok := decls[name]; ok {
		if !hasDoneDiscipline(p, fd.Body) {
			p.Reportf(g.Pos(), "goroutine runs %s, which never selects on a ctx/done channel (use a bounded helper or annotate //trikcheck:bounded)", name)
		}
		return true
	}
	p.Reportf(g.Pos(), "goroutine runs %s, which this analysis cannot see into (use a bounded helper or annotate //trikcheck:bounded)", name)
	return true
}

// hasDoneDiscipline reports whether body contains a receive — direct or
// in a select — from a cancellation channel: a context Done() call, or
// any channel of element type struct{} (the done-channel convention).
func hasDoneDiscipline(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		u, ok := n.(*ast.UnaryExpr)
		if !ok || u.Op.String() != "<-" {
			return true
		}
		if isCancelChannel(p, u.X) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isCancelChannel reports whether e looks like a cancellation channel: a
// .Done() call (context.Context and friends), or an expression whose
// type is a receivable channel of struct{}.
func isCancelChannel(p *Pass, e ast.Expr) bool {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	}
	tv, ok := p.Pkg.Info.Types[e]
	if !ok {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
