package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// snapshotConstructors are the functions allowed to assign through a
// frozen value, keyed by module-relative package directory: the CSR
// builders fill Static in place before it escapes, and nothing else in
// the module may write through one. The view package has no entries on
// purpose — Snapshot is built with a composite literal and never
// assigned through, not even by its own constructor.
var snapshotConstructors = map[string]map[string]bool{
	"internal/graph": {
		"FreezeStatic":  true, // the Graph → CSR 3-pass build
		"Freeze":        true, // the Dense → CSR direct freeze
		"buildOriented": true, // fills the degree-oriented half
	},
}

// SnapshotImmutable bans assignments (and copy-into) through any value
// reachable from a published view.Snapshot or a frozen graph.Static —
// the "mutate a published slice" bug class. The serving layer's
// correctness argument is that a snapshot never changes after its
// atomic-pointer publication, so every reader works on consistent state
// without locks; the byte-determinism tests can only catch a violation
// probabilistically (the mutation must race a comparison), while this
// rule catches the write site itself. Runs over every package: frozen
// values cross package boundaries by design.
var SnapshotImmutable = Rule{
	Name:    "snapshot-immutable",
	Doc:     "no assignment through view.Snapshot or graph.Static outside the CSR constructors",
	Applies: func(rel string) bool { return true },
	Run:     runSnapshotImmutable,
}

func runSnapshotImmutable(p *Pass) {
	allowed := snapshotConstructors[p.Pkg.Rel]
	for _, fd := range funcDecls(p.Pkg) {
		if allowed[fd.Name.Name] {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range stmt.Lhs {
					checkFrozenWrite(p, lhs, "assignment")
				}
			case *ast.IncDecStmt:
				checkFrozenWrite(p, stmt.X, "assignment")
			case *ast.CallExpr:
				// copy(sn.Kappa, ...) and append in-place reuse both
				// mutate the destination's backing array.
				if id, ok := stmt.Fun.(*ast.Ident); ok && id.Name == "copy" {
					if _, builtin := p.Pkg.Info.Uses[id].(*types.Builtin); builtin && len(stmt.Args) > 0 {
						checkFrozenWrite(p, stmt.Args[0], "copy into")
					}
				}
			}
			return true
		})
	}
}

// checkFrozenWrite walks the expression's selector/index chain looking
// for a base of frozen type; the first hit is reported.
func checkFrozenWrite(p *Pass, e ast.Expr, verb string) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.SelectorExpr:
			if name := frozenTypeName(p, x.X); name != "" {
				p.Reportf(e.Pos(), "%s through %s field %s: published snapshots and frozen CSR views are immutable",
					verb, name, x.Sel.Name)
				return
			}
			e = x.X
			continue
		}
		if name := frozenTypeName(p, e); name != "" {
			p.Reportf(e.Pos(), "%s through a %s value: published snapshots and frozen CSR views are immutable", verb, name)
		}
		return
	}
}

// frozenTypeName reports the display name of e's type when it is (a
// pointer to) view.Snapshot or graph.Static, and "" otherwise.
func frozenTypeName(p *Pass, e ast.Expr) string {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	switch {
	case obj.Name() == "Snapshot" && strings.HasSuffix(path, "internal/view"):
		return "view.Snapshot"
	case obj.Name() == "Static" && strings.HasSuffix(path, "internal/graph"):
		return "graph.Static"
	}
	return ""
}
