package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// UncheckedNarrow flags int32/uint32 conversions in the core packages
// (internal/graph, internal/dynamic) whose operand is a wider integer and
// which carry no evidence of a bounds guard. The dense substrate packs
// vertex positions and edge ids into 32 bits; an unguarded narrowing of a
// length or index silently corrupts adjacency rows once a graph crosses
// 2^31 entities. A conversion is accepted when:
//
//   - the operand is a constant (the checker has already ranged it);
//   - the operand is itself ≤32 bits wide (widening or sign-flip only);
//   - the operand is `x >> c` with c ≥ 32 (extracting the packed high half);
//   - it is the inner half of the int32(uint32(x)) low-half idiom;
//   - the line (or the line above) carries a //trikcheck:checked
//     annotation naming the guard that bounds the value.
var UncheckedNarrow = Rule{
	Name:    "unchecked-narrow",
	Doc:     "int32/uint32 narrowing in core packages needs a guard or //trikcheck:checked",
	Applies: func(rel string) bool { return rel == "internal/graph" || rel == "internal/dynamic" },
	Run:     runUncheckedNarrow,
}

func runUncheckedNarrow(p *Pass) {
	info := p.Pkg.Info

	conversionTo := func(call *ast.CallExpr, kinds ...types.BasicKind) bool {
		if len(call.Args) != 1 {
			return false
		}
		tv, ok := info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		if !ok {
			return false
		}
		for _, k := range kinds {
			if b.Kind() == k {
				return true
			}
		}
		return false
	}

	for _, f := range p.Pkg.Files {
		// First pass: the masking idiom int32(uint32(x)) deliberately keeps
		// the low 32 bits; its inner conversion is exempt.
		maskingInner := make(map[*ast.CallExpr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			outer, ok := n.(*ast.CallExpr)
			if !ok || !conversionTo(outer, types.Int32) {
				return true
			}
			if inner, ok := ast.Unparen(outer.Args[0]).(*ast.CallExpr); ok && conversionTo(inner, types.Uint32) {
				maskingInner[inner] = true
			}
			return true
		})

		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || maskingInner[call] || !conversionTo(call, types.Int32, types.Uint32) {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			atv := info.Types[arg]
			if atv.Value != nil {
				return true // constant: already range-checked by the compiler
			}
			if b, ok := atv.Type.Underlying().(*types.Basic); ok {
				switch b.Kind() {
				case types.Int8, types.Int16, types.Int32, types.Uint8, types.Uint16, types.Uint32, types.Bool:
					return true // operand no wider than the target
				}
			}
			if isHighHalfShift(info, arg) {
				return true
			}
			if p.Checked(call.Pos()) {
				return true
			}
			p.Reportf(call.Pos(),
				"unchecked narrowing %s: guard the value or annotate the guard with //trikcheck:checked",
				types.ExprString(call))
			return true
		})
	}
}

// isHighHalfShift reports whether e is `x >> c` with constant c ≥ 32 —
// the packed-adjacency high-half extraction, whose result always fits.
func isHighHalfShift(info *types.Info, e ast.Expr) bool {
	bin, ok := e.(*ast.BinaryExpr)
	if !ok || bin.Op != token.SHR {
		return false
	}
	tv, ok := info.Types[bin.Y]
	if !ok || tv.Value == nil {
		return false
	}
	c, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && c >= 32
}
