package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// mapOrderPackages are the output-producing packages where map-ordered
// emission would make plots, reports, tables or HTTP responses differ
// between identical runs.
var mapOrderPackages = map[string]bool{
	"internal/plot":   true,
	"internal/report": true,
	"internal/expt":   true,
	"internal/server": true,
	"internal/table":  true,
	"internal/view":   true,
	// obs renders /metrics bodies; map-ordered emission would break the
	// exposition's byte-determinism guarantee.
	"internal/obs": true,
	// registry renders the change feed; map-ordered events would break
	// the feed's byte-determinism guarantee.
	"internal/registry": true,
	// extcore's spill/activation schedule must be deterministic for its
	// byte-identical-κ contract; map-ordered iteration would randomize it.
	"internal/extcore": true,
	// trace renders /debug/trace bodies under a byte-determinism
	// contract; loadgen renders reports and summaries that diffs and
	// re-anchors compare across runs.
	"internal/obs/trace": true,
	"cmd/loadgen":        true,
}

// mapOrderWriterMethods are method/function names that emit bytes; a call
// to one inside a map range writes in random order with no later fix
// possible.
var mapOrderWriterMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// MapOrder flags `for range` over a map in output packages when the loop
// body appends to a slice that is never sorted afterwards, or writes
// directly to an encoder/writer. Go randomizes map iteration order, so
// either pattern makes two runs over the same graph produce different
// bytes. Ranging a map to build another map (or a sum) is fine — order
// does not reach the output.
var MapOrder = Rule{
	Name:    "map-order",
	Doc:     "output packages must sort before emitting data gathered from a map range",
	Applies: func(rel string) bool { return mapOrderPackages[rel] },
	Run:     runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, fd := range funcDecls(p.Pkg) {
		// Gather every sort-like call in the function with its position,
		// so a range loop can be cleared by a sort that runs after it.
		type sortCall struct {
			end     ast.Node
			argText string
		}
		var sorts []sortCall
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if isSortCall(call) {
				sorts = append(sorts, sortCall{end: call, argText: types.ExprString(call.Args[0])})
			}
			return true
		})
		sortedAfter := func(n ast.Node, slice string) bool {
			for _, s := range sorts {
				if s.end.Pos() > n.End() && s.argText == slice {
					return true
				}
			}
			return false
		}

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Pkg.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rng.Body, func(b ast.Node) bool {
				switch stmt := b.(type) {
				case *ast.AssignStmt:
					for i, rhs := range stmt.Rhs {
						call, ok := rhs.(*ast.CallExpr)
						if !ok || !isBuiltinAppend(p, call) || i >= len(stmt.Lhs) {
							continue
						}
						slice := types.ExprString(stmt.Lhs[i])
						if !sortedAfter(rng, slice) {
							p.Reportf(rng.For,
								"appends to %s while ranging over a map and never sorts it; map iteration order varies run to run", slice)
						}
					}
				case *ast.CallExpr:
					if sel, ok := stmt.Fun.(*ast.SelectorExpr); ok && mapOrderWriterMethods[sel.Sel.Name] {
						p.Reportf(rng.For,
							"writes output via %s.%s while ranging over a map; map iteration order varies run to run",
							types.ExprString(sel.X), sel.Sel.Name)
					}
				}
				return true
			})
			return true
		})
	}
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Pkg.Info.Uses[id]
	_, builtin := obj.(*types.Builtin)
	return builtin && id.Name == "append"
}

// isSortCall recognizes sort.*/slices.Sort* calls plus any function whose
// name mentions sorting (a project helper).
func isSortCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok && (x.Name == "sort" || x.Name == "slices") {
			return x.Name == "sort" || strings.HasPrefix(fun.Sel.Name, "Sort")
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	}
	return false
}
