package analysis

import (
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

var (
	loaderOnce sync.Once
	loaderInst *Loader
	loaderErr  error
)

// fixtureLoader shares one Loader (and so one type-checked standard
// library) across all fixture tests.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		var root string
		root, loaderErr = FindModuleRoot(".")
		if loaderErr != nil {
			return
		}
		loaderInst, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("building fixture loader: %v", loaderErr)
	}
	return loaderInst
}

// TestRules runs each rule over its golden fixture package and compares
// the findings against the vet-style `// want "regexp"` annotations: a
// diagnostic must land on an annotated line and match its regexp, every
// annotation must be hit, and unannotated lines must stay silent.
func TestRules(t *testing.T) {
	cases := []struct {
		dir  string // fixture directory under testdata
		rel  string // module-relative path the fixture pretends to live at
		rule string
	}{
		{"kappafunnel", "internal/dynamic", "kappa-funnel"},
		{"maporder", "internal/plot", "map-order"},
		// The same fixture under internal/registry pins the Applies gate:
		// the change-feed package is map-order-checked like the renderers.
		{"maporder", "internal/registry", "map-order"},
		{"narrow", "internal/graph", "unchecked-narrow"},
		{"nostdout", "internal/report", "no-stdout"},
		{"nostdout_cmd", "cmd/demo", "no-stdout"}, // Applies gate: binaries may print
		{"discarderr", "internal/store", "discarded-error"},
		{"lockguard", "internal/registry", "lock-guard"},
		{"atomicmix", "internal/obs", "atomic-mix"},
		{"snapshotimmut", "internal/plot", "snapshot-immutable"},
		// The same rule under internal/graph pins the constructor allowlist:
		// FreezeStatic and friends may fill a Static in place.
		{"snapshotimmut_ctor", "internal/graph", "snapshot-immutable"},
		{"golifecycle", "internal/server", "goroutine-lifecycle"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			l := fixtureLoader(t)
			pkg, err := l.LoadDir(filepath.Join("testdata", tc.dir), tc.rel)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			rule, ok := RuleByName(tc.rule)
			if !ok {
				t.Fatalf("unknown rule %q", tc.rule)
			}
			checkFixture(t, pkg, rule)
		})
	}
}

type expectation struct {
	line int
	re   *regexp.Regexp
	hit  bool
}

func checkFixture(t *testing.T, pkg *Package, rule Rule) {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[pos.Filename] = append(wants[pos.Filename], &expectation{line: pos.Line, re: re})
			}
		}
	}

	for _, d := range RunRules(pkg, []Rule{rule}) {
		matched := false
		for _, w := range wants[d.Pos.Filename] {
			if w.line == d.Pos.Line && !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s:%d: no diagnostic matched %q", file, w.line, w.re)
			}
		}
	}
}

// TestRuleMetadata keeps the rule set well-formed: unique names, docs,
// and an Applies gate on every rule.
func TestRuleMetadata(t *testing.T) {
	seen := make(map[string]bool)
	for _, r := range AllRules() {
		if r.Name == "" || r.Doc == "" || r.Applies == nil || r.Run == nil {
			t.Errorf("rule %+v incompletely defined", r.Name)
		}
		if seen[r.Name] {
			t.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
	}
}
