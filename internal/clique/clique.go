// Package clique implements maximal-clique enumeration and maximum-clique
// search via the Bron–Kerbosch algorithm with pivoting, with an optional
// degeneracy-ordered outer loop for sparse graphs.
//
// In this repository cliques serve two roles: they power the CSV baseline
// (which must compute, per edge, the largest clique the edge participates
// in — the expensive step the Triangle K-Core proxy replaces), and they
// verify case-study claims (e.g. the planted 10-vertex clique in the PPI
// stand-in of Figure 7 is an exact clique).
package clique

import (
	"slices"

	"trikcore/internal/graph"
	"trikcore/internal/kcore"
)

// ForEachMaximal calls fn once per maximal clique of g. Cliques are
// reported as sorted vertex slices; the slice is reused across calls, so
// callers must copy it to retain it. If fn returns false enumeration
// stops early.
//
// The outer loop follows a degeneracy ordering, which bounds the depth of
// the pivoted Bron–Kerbosch recursion and makes the enumeration practical
// on sparse graphs.
func ForEachMaximal(g *graph.Graph, fn func(clique []graph.Vertex) bool) {
	order := kcore.DegeneracyOrder(g)
	pos := make(map[graph.Vertex]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	e := &enumerator{g: g, fn: fn}
	for _, v := range order {
		if e.stopped {
			return
		}
		var p, x []graph.Vertex
		g.ForEachNeighbor(v, func(w graph.Vertex) bool {
			if pos[w] > pos[v] {
				p = append(p, w)
			} else {
				x = append(x, w)
			}
			return true
		})
		e.r = e.r[:0]
		e.r = append(e.r, v)
		e.expand(p, x)
	}
}

type enumerator struct {
	g       *graph.Graph
	fn      func([]graph.Vertex) bool
	r       []graph.Vertex
	stopped bool
	scratch []graph.Vertex
}

// expand is Bron–Kerbosch with pivoting on R = e.r, candidates p and
// excluded set x.
func (e *enumerator) expand(p, x []graph.Vertex) {
	if e.stopped {
		return
	}
	if len(p) == 0 && len(x) == 0 {
		e.scratch = append(e.scratch[:0], e.r...)
		slices.Sort(e.scratch)
		if !e.fn(e.scratch) {
			e.stopped = true
		}
		return
	}
	// Pivot: the vertex of P ∪ X with the most neighbors in P minimizes
	// the branching set P \ N(pivot).
	pivot := graph.Vertex(-1)
	best := -1
	for _, cand := range [][]graph.Vertex{p, x} {
		for _, u := range cand {
			n := 0
			for _, w := range p {
				if e.g.HasEdge(u, w) {
					n++
				}
			}
			if n > best {
				best, pivot = n, u
			}
		}
	}
	// Branch on candidates not adjacent to the pivot. Iterate over a copy
	// because p is mutated as vertices move to x.
	var branch []graph.Vertex
	for _, v := range p {
		if !e.g.HasEdge(pivot, v) {
			branch = append(branch, v)
		}
	}
	for _, v := range branch {
		var np, nx []graph.Vertex
		for _, w := range p {
			if e.g.HasEdge(v, w) {
				np = append(np, w)
			}
		}
		for _, w := range x {
			if e.g.HasEdge(v, w) {
				nx = append(nx, w)
			}
		}
		e.r = append(e.r, v)
		e.expand(np, nx)
		e.r = e.r[:len(e.r)-1]
		if e.stopped {
			return
		}
		// Move v from P to X.
		for i, w := range p {
			if w == v {
				p = append(p[:i], p[i+1:]...)
				break
			}
		}
		x = append(x, v)
	}
}

// Maximal returns all maximal cliques of g, each sorted ascending, the
// list ordered lexicographically.
func Maximal(g *graph.Graph) [][]graph.Vertex {
	var out [][]graph.Vertex
	ForEachMaximal(g, func(c []graph.Vertex) bool {
		out = append(out, append([]graph.Vertex(nil), c...))
		return true
	})
	slices.SortFunc(out, slices.Compare)
	return out
}

// Max returns one maximum clique of g (nil for an empty graph).
func Max(g *graph.Graph) []graph.Vertex {
	var best []graph.Vertex
	ForEachMaximal(g, func(c []graph.Vertex) bool {
		if len(c) > len(best) {
			best = append(best[:0:0], c...)
		}
		return true
	})
	return best
}

// MaxSize returns the order of the largest clique in g (0 for an empty
// graph). If cap > 0, enumeration stops as soon as a clique of at least
// cap vertices is seen and cap is returned; this keeps the CSV baseline's
// per-edge searches bounded.
func MaxSize(g *graph.Graph, cap int) int {
	best := 0
	ForEachMaximal(g, func(c []graph.Vertex) bool {
		if len(c) > best {
			best = len(c)
		}
		return cap <= 0 || best < cap
	})
	if cap > 0 && best > cap {
		best = cap
	}
	return best
}

// CoCliqueSize returns the order of the largest clique of g containing the
// edge e: 2 plus the maximum clique order within the subgraph induced by
// the common neighborhood of e's endpoints. It returns 0 if e is not an
// edge of g. This is exactly the quantity the CSV baseline computes per
// edge.
func CoCliqueSize(g *graph.Graph, e graph.Edge) int {
	if !g.HasEdgeE(e) {
		return 0
	}
	common := g.CommonNeighbors(e.U, e.V)
	if len(common) == 0 {
		return 2
	}
	sub := graph.InducedSubgraph(g, common)
	return 2 + MaxSize(sub, 0)
}
