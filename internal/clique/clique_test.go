package clique

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"trikcore/internal/graph"
	"trikcore/internal/reference"
)

func randomGraph(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Vertex(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(graph.Vertex(i), graph.Vertex(j))
			}
		}
	}
	return g
}

func TestMaximalSmall(t *testing.T) {
	// Two triangles sharing edge 2-3, plus pendant 5.
	g := graph.FromPairs(1, 2, 1, 3, 2, 3, 2, 4, 3, 4, 4, 5)
	got := Maximal(g)
	want := [][]graph.Vertex{{1, 2, 3}, {2, 3, 4}, {4, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Maximal = %v, want %v", got, want)
	}
}

func TestMaximalIsolatedVertex(t *testing.T) {
	g := graph.New()
	g.AddVertex(9)
	got := Maximal(g)
	if !reflect.DeepEqual(got, [][]graph.Vertex{{9}}) {
		t.Fatalf("Maximal = %v, want [[9]]", got)
	}
}

func TestMaximalEmpty(t *testing.T) {
	if got := Maximal(graph.New()); len(got) != 0 {
		t.Fatalf("Maximal(empty) = %v", got)
	}
	if Max(graph.New()) != nil {
		t.Fatal("Max(empty) should be nil")
	}
	if MaxSize(graph.New(), 0) != 0 {
		t.Fatal("MaxSize(empty) should be 0")
	}
}

func TestQuickMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(12, 0.4, seed)
		got := Maximal(g)
		want := reference.MaximalCliques(g)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxOnPlantedClique(t *testing.T) {
	g := randomGraph(40, 0.1, 5)
	// Plant a 7-clique on vertices 100..106.
	for i := graph.Vertex(100); i < 107; i++ {
		for j := i + 1; j < 107; j++ {
			g.AddEdge(i, j)
		}
		g.AddEdge(i, graph.Vertex(int(i)-100)) // attach to the noise graph
	}
	best := Max(g)
	if len(best) != 7 {
		t.Fatalf("max clique size %d, want 7 (clique %v)", len(best), best)
	}
	if !graph.IsClique(g, best) {
		t.Fatal("reported max clique is not a clique")
	}
}

func TestMaxSizeWithCap(t *testing.T) {
	g := graph.New()
	for i := graph.Vertex(0); i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			g.AddEdge(i, j)
		}
	}
	if got := MaxSize(g, 4); got != 4 {
		t.Fatalf("MaxSize cap=4 on K9 = %d, want 4", got)
	}
	if got := MaxSize(g, 0); got != 9 {
		t.Fatalf("MaxSize cap=0 on K9 = %d, want 9", got)
	}
}

func TestQuickCoCliqueSizeMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(13, 0.45, seed)
		ok := true
		g.ForEachEdge(func(e graph.Edge) bool {
			if CoCliqueSize(g, e) != reference.CoCliqueSize(g, e) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCoCliqueSizeAbsentEdge(t *testing.T) {
	g := graph.FromPairs(1, 2)
	if got := CoCliqueSize(g, graph.NewEdge(1, 3)); got != 0 {
		t.Fatalf("CoCliqueSize(absent) = %d, want 0", got)
	}
	if got := CoCliqueSize(g, graph.NewEdge(1, 2)); got != 2 {
		t.Fatalf("CoCliqueSize(bare edge) = %d, want 2", got)
	}
}

func TestEveryReportedCliqueIsMaximal(t *testing.T) {
	g := randomGraph(20, 0.3, 17)
	ForEachMaximal(g, func(c []graph.Vertex) bool {
		if !graph.IsClique(g, c) {
			t.Fatalf("%v is not a clique", c)
		}
		// No vertex outside c is adjacent to all of c.
		g.ForEachVertex(func(v graph.Vertex) bool {
			in := false
			for _, w := range c {
				if w == v {
					in = true
					break
				}
			}
			if in {
				return true
			}
			all := true
			for _, w := range c {
				if !g.HasEdge(v, w) {
					all = false
					break
				}
			}
			if all {
				t.Fatalf("clique %v is not maximal: %d extends it", c, v)
			}
			return true
		})
		return true
	})
}

func TestForEachMaximalEarlyStop(t *testing.T) {
	g := randomGraph(15, 0.4, 2)
	n := 0
	ForEachMaximal(g, func([]graph.Vertex) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d cliques", n)
	}
}
