package events

import (
	"testing"

	"trikcore/internal/gen"
	"trikcore/internal/graph"
)

func comm(verts ...graph.Vertex) Community {
	return Community{Vertices: verts, Edges: len(verts) * (len(verts) - 1) / 2}
}

func single(t *testing.T, events []Event, want Type) Event {
	t.Helper()
	var found []Event
	for _, e := range events {
		if e.Type == want {
			found = append(found, e)
		}
	}
	if len(found) != 1 {
		t.Fatalf("want exactly one %v event, got %v in %v", want, found, events)
	}
	return found[0]
}

func TestDetectContinueGrowShrink(t *testing.T) {
	old := []Community{comm(1, 2, 3, 4, 5)}
	cases := []struct {
		name string
		new  Community
		want Type
	}{
		{"continue", comm(1, 2, 3, 4, 5), Continue},
		{"grow", comm(1, 2, 3, 4, 5, 6, 7, 8), Grow},
		{"shrink", comm(1, 2, 3), Shrink},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			events := Detect(old, []Community{tc.new}, Options{})
			if len(events) != 1 || events[0].Type != tc.want {
				t.Fatalf("events = %v, want one %v", events, tc.want)
			}
		})
	}
}

func TestDetectMergeSplitFormDissolve(t *testing.T) {
	old := []Community{
		comm(1, 2, 3, 4),     // merges with next
		comm(5, 6, 7, 8),     // merges with previous
		comm(10, 11, 12, 13), // splits
		comm(20, 21, 22),     // dissolves
	}
	new := []Community{
		comm(1, 2, 3, 4, 5, 6, 7, 8), // the merge result
		comm(10, 11),                 // split part 1
		comm(12, 13),                 // split part 2
		comm(30, 31, 32),             // brand new
	}
	events := Detect(old, new, Options{})
	mg := single(t, events, Merge)
	if len(mg.Before) != 2 || len(mg.After) != 1 {
		t.Fatalf("merge = %v", mg)
	}
	sp := single(t, events, Split)
	if len(sp.Before) != 1 || len(sp.After) != 2 || sp.Before[0] != 2 {
		t.Fatalf("split = %v", sp)
	}
	di := single(t, events, Dissolve)
	if di.Before[0] != 3 {
		t.Fatalf("dissolve = %v", di)
	}
	fo := single(t, events, Form)
	if fo.After[0] != 3 {
		t.Fatalf("form = %v", fo)
	}
}

func TestDetectThreshold(t *testing.T) {
	// 2 of 6 vertices shared: below the default 0.5 containment of the
	// smaller set (3): 2/3 ≥ 0.5 → related. Tighten the threshold to cut
	// the link.
	old := []Community{comm(1, 2, 3, 4, 5, 6)}
	new := []Community{comm(5, 6, 100)}
	loose := Detect(old, new, Options{})
	if loose[0].Type == Form {
		t.Fatalf("loose match lost: %v", loose)
	}
	strict := Detect(old, new, Options{MatchThreshold: 0.9})
	if _, ok := findType(strict, Form); !ok {
		t.Fatalf("strict threshold should yield Form: %v", strict)
	}
	if _, ok := findType(strict, Dissolve); !ok {
		t.Fatalf("strict threshold should yield Dissolve: %v", strict)
	}
}

func findType(events []Event, want Type) (Event, bool) {
	for _, e := range events {
		if e.Type == want {
			return e, true
		}
	}
	return Event{}, false
}

func TestEventStrings(t *testing.T) {
	for typ, want := range map[Type]string{
		Continue: "continue", Grow: "grow", Shrink: "shrink", Merge: "merge",
		Split: "split", Form: "form", Dissolve: "dissolve", Type(99): "Type(99)",
	} {
		if typ.String() != want {
			t.Fatalf("%d.String() = %q", typ, typ.String())
		}
	}
	e := Event{Type: Merge, Before: []int{0, 1}, After: []int{2}}
	if e.String() != "merge before=[0 1] after=[2]" {
		t.Fatalf("Event.String() = %q", e.String())
	}
}

// TestFromSnapshotsWikiEvents runs the full pipeline on the Figure 8
// wiki stand-in: the planted growth event must surface as Grow or Merge
// of the planted communities, and the planted 3+3 merges as Merge events.
func TestFromSnapshotsWikiEvents(t *testing.T) {
	pair := gen.WikiSnapshots(1500, 8000, 50, 9)
	_, cn, events := FromSnapshots(pair.Snap1, pair.Snap2, 3, Options{})

	// Locate the new snapshot's community holding the grown 11-clique.
	grownIdx := -1
	for j, c := range cn {
		hit := 0
		in := map[graph.Vertex]bool{}
		for _, v := range c.Vertices {
			in[v] = true
		}
		for _, v := range pair.Growth.Result {
			if in[v] {
				hit++
			}
		}
		if hit == len(pair.Growth.Result) {
			grownIdx = j
			break
		}
	}
	if grownIdx < 0 {
		t.Fatal("grown community not found at level 3")
	}
	found := false
	for _, e := range events {
		for _, j := range e.After {
			if j == grownIdx {
				if e.Type == Grow || e.Type == Merge || e.Type == Continue {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("no event covers the grown community: %v", events)
	}
	// Some merge-like activity must exist (the planted 3+3 merges create
	// new structure overlapping two old cliques).
	if len(events) == 0 {
		t.Fatal("no events detected")
	}
}
