package events

import (
	"strings"
	"testing"

	"trikcore/internal/gen"
	"trikcore/internal/graph"
)

func addClique(g *graph.Graph, verts ...graph.Vertex) {
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			g.AddEdge(verts[i], verts[j])
		}
	}
}

func TestTimelineGrowthKeepsIdentity(t *testing.T) {
	tl := NewTimeline(2)

	s0 := graph.New()
	addClique(s0, 1, 2, 3, 4)
	tl.Observe(s0, Options{})

	s1 := s0.Clone()
	addClique(s1, 1, 2, 3, 4, 5, 6) // the community doubles
	tl.Observe(s1, Options{})

	s2 := s1.Clone()
	addClique(s2, 10, 11, 12, 13) // an unrelated community forms
	tl.Observe(s2, Options{})

	if len(tl.Steps) != 2 {
		t.Fatalf("%d steps", len(tl.Steps))
	}
	active := tl.ActiveTracks()
	if len(active) != 2 {
		t.Fatalf("active tracks = %v", active)
	}
	// Track 0 spans all three snapshots, growing 4 → 6 → 6.
	track := tl.Tracks[0]
	if len(track) != 3 || track[0].Size != 4 || track[1].Size != 6 || track[2].Size != 6 {
		t.Fatalf("track 0 = %+v", track)
	}
	// The new community's track starts at snapshot 2.
	track1 := tl.Tracks[1]
	if len(track1) != 1 || track1[0].Snapshot != 2 || track1[0].Size != 4 {
		t.Fatalf("track 1 = %+v", track1)
	}
	if !strings.Contains(tl.Summary(), "track 0: s0:4v s1:6v s2:6v") {
		t.Fatalf("summary:\n%s", tl.Summary())
	}
}

func TestTimelineMergeInheritsLargestId(t *testing.T) {
	tl := NewTimeline(2)
	s0 := graph.New()
	addClique(s0, 1, 2, 3, 4, 5, 6) // big: gets id 0 or 1 (order by first edge: vertices 1.. → id 0)
	addClique(s0, 10, 11, 12, 13)   // small
	tl.Observe(s0, Options{})

	s1 := s0.Clone()
	// Merge: connect everything into one community.
	for _, u := range []graph.Vertex{1, 2, 3, 4, 5, 6} {
		for _, v := range []graph.Vertex{10, 11, 12, 13} {
			s1.AddEdge(u, v)
		}
	}
	tl.Observe(s1, Options{})

	active := tl.ActiveTracks()
	if len(active) != 1 {
		t.Fatalf("active = %v", active)
	}
	// The surviving id is the big community's (whichever id it had).
	surviving := active[0]
	pts := tl.Tracks[surviving]
	if pts[0].Size != 6 {
		t.Fatalf("merged track inherited the smaller constituent: %+v", pts)
	}
	if pts[len(pts)-1].Size != 10 {
		t.Fatalf("merged size = %d, want 10", pts[len(pts)-1].Size)
	}
}

func TestTimelineSplitAndDissolve(t *testing.T) {
	tl := NewTimeline(2)
	s0 := graph.New()
	// Two K4s bridged by a shared K4 interface → one level-2 community.
	addClique(s0, 1, 2, 3, 4, 5)
	addClique(s0, 4, 5, 6, 7, 8)
	addClique(s0, 20, 21, 22, 23) // separate community that will dissolve
	tl.Observe(s0, Options{})

	s1 := s0.Clone()
	// Split: cut the bridge between the two halves.
	s1.RemoveEdge(4, 5)
	for _, v := range []graph.Vertex{1, 2, 3} {
		s1.RemoveEdge(v, 5)
	}
	for _, v := range []graph.Vertex{6, 7, 8} {
		s1.RemoveEdge(4, v)
	}
	// Dissolve: destroy the separate clique.
	for _, e := range [][2]graph.Vertex{{20, 21}, {22, 23}} {
		s1.RemoveEdge(e[0], e[1])
	}
	tl.Observe(s1, Options{})

	step := tl.Steps[0]
	var haveSplit, haveDissolve bool
	for _, e := range step.Events {
		switch e.Type {
		case Split:
			haveSplit = true
		case Dissolve:
			haveDissolve = true
		case Shrink, Continue:
			// acceptable companion events
		}
	}
	if !haveSplit || !haveDissolve {
		t.Fatalf("events = %v, want split and dissolve", step.Events)
	}
	// After the split, two tracks are active; one keeps an old id.
	if len(tl.ActiveTracks()) != 2 {
		t.Fatalf("active = %v", tl.ActiveTracks())
	}
}

func TestTimelineOnWikiStream(t *testing.T) {
	// Feed the wiki pair as a two-snapshot stream plus a third snapshot
	// with extra churn; the timeline must remain internally consistent.
	pair := gen.WikiSnapshots(1000, 5000, 40, 31)
	tl := NewTimeline(3)
	tl.Observe(pair.Snap1, Options{})
	tl.Observe(pair.Snap2, Options{})
	s3 := pair.Snap2.Clone()
	addClique(s3, 2001, 2002, 2003, 2004, 2005)
	tl.Observe(s3, Options{})

	if len(tl.Steps) != 2 {
		t.Fatalf("%d steps", len(tl.Steps))
	}
	// Every active track has points ending at snapshot 2.
	for _, id := range tl.ActiveTracks() {
		pts := tl.Tracks[id]
		if pts[len(pts)-1].Snapshot != 2 {
			t.Fatalf("active track %d ends at snapshot %d", id, pts[len(pts)-1].Snapshot)
		}
	}
	// The planted brand-new clique formed a fresh track at snapshot 2.
	foundNew := false
	for _, id := range tl.ActiveTracks() {
		pts := tl.Tracks[id]
		if len(pts) == 1 && pts[0].Snapshot == 2 && pts[0].Size == 5 {
			foundNew = true
		}
	}
	if !foundNew {
		t.Fatal("planted 5-clique did not open a fresh track")
	}
}
