// Package events classifies how Triangle K-Core communities evolve
// between graph snapshots: the event-detection application the paper's
// introduction motivates ("identifying the portions of the network that
// are changing, characterizing the type of change") using the taxonomy
// of Asur et al., the paper's reference [15] — continue, grow, shrink,
// merge, split, form and dissolve.
//
// Communities are the triangle-connected components of the κ ≥ k
// subgraph (core.Decomposition.Communities / dynamic.Engine.Communities);
// two snapshots' community lists are matched by vertex overlap and each
// structural change is reported as an Event.
package events

import (
	"fmt"
	"slices"
	"sort"

	"trikcore/internal/core"
	"trikcore/internal/graph"
)

// Community is one dense community of a snapshot.
type Community struct {
	// Vertices, sorted ascending.
	Vertices []graph.Vertex
	// Edges is the community's edge count.
	Edges int
}

// Type classifies a community transition.
type Type int

// Event taxonomy (Asur et al., reference [15] of the paper).
const (
	Continue Type = iota // same community, little change
	Grow                 // one community gained vertices
	Shrink               // one community lost vertices
	Merge                // several old communities fused into one
	Split                // one old community broke into several
	Form                 // a community with no past counterpart
	Dissolve             // a community with no future counterpart
)

// String names the event type.
func (t Type) String() string {
	switch t {
	case Continue:
		return "continue"
	case Grow:
		return "grow"
	case Shrink:
		return "shrink"
	case Merge:
		return "merge"
	case Split:
		return "split"
	case Form:
		return "form"
	case Dissolve:
		return "dissolve"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Event is one detected transition.
type Event struct {
	Type Type
	// Before and After index into the old and new community lists.
	Before, After []int
}

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("%s before=%v after=%v", e.Type, e.Before, e.After)
}

// Options tune the matcher.
type Options struct {
	// MatchThreshold is the minimum containment fraction
	// |old ∩ new| / min(|old|, |new|) for two communities to be related.
	// Zero means 0.5.
	MatchThreshold float64
	// StableRatio bounds the size change of a Continue event: a 1-1
	// match counts as Continue when the size ratio stays within
	// [1/StableRatio, StableRatio]. Zero means 1.25.
	StableRatio float64
}

func (o Options) normalized() Options {
	if o.MatchThreshold <= 0 {
		o.MatchThreshold = 0.5
	}
	if o.StableRatio <= 1 {
		o.StableRatio = 1.25
	}
	return o
}

// CommunitiesAt extracts the level-k communities of a snapshot.
func CommunitiesAt(g *graph.Graph, k int32) []Community {
	d := core.Decompose(g)
	var out []Community
	for _, edges := range d.Communities(k) {
		seen := make(map[graph.Vertex]bool)
		var verts []graph.Vertex
		for _, e := range edges {
			for _, v := range [2]graph.Vertex{e.U, e.V} {
				if !seen[v] {
					seen[v] = true
					verts = append(verts, v)
				}
			}
		}
		slices.Sort(verts)
		out = append(out, Community{Vertices: verts, Edges: len(edges)})
	}
	return out
}

// Detect matches two community lists and classifies every transition.
// Every old and new community appears in exactly one event.
func Detect(old, new []Community, opts Options) []Event {
	opts = opts.normalized()

	// Overlap counts via a vertex → old-community index.
	vertexOld := make(map[graph.Vertex][]int)
	for i, c := range old {
		for _, v := range c.Vertices {
			vertexOld[v] = append(vertexOld[v], i)
		}
	}
	overlap := make(map[[2]int]int) // (oldIdx, newIdx) → |∩|
	for j, c := range new {
		for _, v := range c.Vertices {
			for _, i := range vertexOld[v] {
				overlap[[2]int{i, j}]++
			}
		}
	}

	// Relation edges above the containment threshold.
	related := func(i, j int) bool {
		ov := overlap[[2]int{i, j}]
		min := len(old[i].Vertices)
		if len(new[j].Vertices) < min {
			min = len(new[j].Vertices)
		}
		return min > 0 && float64(ov) >= opts.MatchThreshold*float64(min)
	}
	oldTo := make([][]int, len(old))
	newTo := make([][]int, len(new))
	for key := range overlap {
		i, j := key[0], key[1]
		if related(i, j) {
			oldTo[i] = append(oldTo[i], j)
			newTo[j] = append(newTo[j], i)
		}
	}
	for _, s := range oldTo {
		slices.Sort(s)
	}
	for _, s := range newTo {
		slices.Sort(s)
	}

	// Classify connected groups of the relation graph. Walk each
	// component of the bipartite relation; its shape decides the event.
	var events []Event
	seenOld := make([]bool, len(old))
	seenNew := make([]bool, len(new))
	for i := range old {
		if seenOld[i] {
			continue
		}
		os, ns := component(i, oldTo, newTo, seenOld, seenNew)
		events = append(events, classify(os, ns, old, new, opts))
	}
	for j := range new {
		if !seenNew[j] {
			seenNew[j] = true
			events = append(events, Event{Type: Form, After: []int{j}})
		}
	}
	sort.Slice(events, func(a, b int) bool {
		ea, eb := events[a], events[b]
		if ea.Type != eb.Type {
			return ea.Type < eb.Type
		}
		return fmt.Sprint(ea) < fmt.Sprint(eb)
	})
	return events
}

// component collects the bipartite connected component containing old
// community i.
func component(i int, oldTo, newTo [][]int, seenOld, seenNew []bool) (os, ns []int) {
	var stackOld = []int{i}
	var stackNew []int
	seenOld[i] = true
	for len(stackOld) > 0 || len(stackNew) > 0 {
		if n := len(stackOld); n > 0 {
			cur := stackOld[n-1]
			stackOld = stackOld[:n-1]
			os = append(os, cur)
			for _, j := range oldTo[cur] {
				if !seenNew[j] {
					seenNew[j] = true
					stackNew = append(stackNew, j)
				}
			}
			continue
		}
		cur := stackNew[len(stackNew)-1]
		stackNew = stackNew[:len(stackNew)-1]
		ns = append(ns, cur)
		for _, oi := range newTo[cur] {
			if !seenOld[oi] {
				seenOld[oi] = true
				stackOld = append(stackOld, oi)
			}
		}
	}
	slices.Sort(os)
	slices.Sort(ns)
	return os, ns
}

// classify names the event for one relation component.
func classify(os, ns []int, old, new []Community, opts Options) Event {
	ev := Event{Before: os, After: ns}
	switch {
	case len(ns) == 0:
		ev.Type = Dissolve
	case len(os) == 0:
		ev.Type = Form
	case len(os) == 1 && len(ns) == 1:
		a := float64(len(old[os[0]].Vertices))
		b := float64(len(new[ns[0]].Vertices))
		switch {
		case b > a*opts.StableRatio:
			ev.Type = Grow
		case a > b*opts.StableRatio:
			ev.Type = Shrink
		default:
			ev.Type = Continue
		}
	case len(os) == 1:
		ev.Type = Split
	case len(ns) == 1:
		ev.Type = Merge
	default:
		// Many-to-many: report as a merge (the dominant reading when
		// several communities reorganize into several others).
		ev.Type = Merge
	}
	return ev
}

// FromSnapshots extracts level-k communities of both snapshots and
// detects events between them.
func FromSnapshots(old, new *graph.Graph, k int32, opts Options) ([]Community, []Community, []Event) {
	co := CommunitiesAt(old, k)
	cn := CommunitiesAt(new, k)
	return co, cn, Detect(co, cn, opts)
}
