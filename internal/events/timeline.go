package events

import (
	"fmt"
	"sort"

	"trikcore/internal/graph"
)

// Timeline tracks Triangle K-Core communities across a whole sequence of
// snapshots, assigning stable identifiers so a community can be followed
// through growth, shrinkage and merges — the longitudinal view behind
// the paper's "developing generic models for evolving networks"
// motivation.
type Timeline struct {
	// K is the community level tracked.
	K int32
	// Steps holds one entry per snapshot transition.
	Steps []TimelineStep
	// Tracks maps stable community ids to their per-snapshot appearances.
	Tracks map[int][]TrackPoint

	nextID int
	// last maps community index in the latest snapshot to its stable id.
	last map[int]int
	// lastComms are the latest snapshot's communities.
	lastComms []Community
	snapshots int
}

// TimelineStep is one snapshot transition.
type TimelineStep struct {
	// Snapshot is the index of the arriving snapshot (1-based: snapshot
	// 0 seeds the timeline without a step).
	Snapshot int
	// Events are the detected transitions.
	Events []Event
}

// TrackPoint is one appearance of a tracked community.
type TrackPoint struct {
	// Snapshot index (0-based).
	Snapshot int
	// Size is the community's vertex count there.
	Size int
	// Edges is the community's edge count there.
	Edges int
}

// NewTimeline starts a timeline at community level k.
func NewTimeline(k int32) *Timeline {
	return &Timeline{K: k, Tracks: map[int][]TrackPoint{}, last: map[int]int{}}
}

// Observe ingests the next snapshot, detecting events against the
// previous one and extending the community tracks. Identity rules:
// a Continue/Grow/Shrink event keeps the old community's id; a Merge
// result inherits the id of its largest constituent; a Split's largest
// part keeps the id and the rest get fresh ids; Form gets a fresh id.
func (tl *Timeline) Observe(g *graph.Graph, opts Options) {
	comms := CommunitiesAt(g, tl.K)
	idx := tl.snapshots
	tl.snapshots++
	newIDs := map[int]int{}
	if idx == 0 {
		for j := range comms {
			newIDs[j] = tl.newTrack()
		}
	} else {
		evs := Detect(tl.lastComms, comms, opts)
		tl.Steps = append(tl.Steps, TimelineStep{Snapshot: idx, Events: evs})
		for _, e := range evs {
			switch e.Type {
			case Dissolve:
				// Track simply ends.
			case Form:
				for _, j := range e.After {
					newIDs[j] = tl.newTrack()
				}
			case Continue, Grow, Shrink:
				newIDs[e.After[0]] = tl.last[e.Before[0]]
			case Merge, Split:
				tl.assignGroup(e, comms, newIDs)
			}
		}
	}
	for j, id := range newIDs {
		tl.Tracks[id] = append(tl.Tracks[id], TrackPoint{
			Snapshot: idx,
			Size:     len(comms[j].Vertices),
			Edges:    comms[j].Edges,
		})
	}
	tl.last = newIDs
	tl.lastComms = comms
}

// assignGroup gives ids to the After communities of a merge/split (or
// many-to-many) event: the largest new community inherits the id of the
// largest old constituent; the others get fresh ids.
func (tl *Timeline) assignGroup(e Event, comms []Community, newIDs map[int]int) {
	if len(e.Before) == 0 || len(e.After) == 0 {
		return
	}
	bigOld := e.Before[0]
	for _, i := range e.Before[1:] {
		if len(tl.lastComms[i].Vertices) > len(tl.lastComms[bigOld].Vertices) {
			bigOld = i
		}
	}
	bigNew := e.After[0]
	for _, j := range e.After[1:] {
		if len(comms[j].Vertices) > len(comms[bigNew].Vertices) {
			bigNew = j
		}
	}
	for _, j := range e.After {
		if j == bigNew {
			newIDs[j] = tl.last[bigOld]
		} else {
			newIDs[j] = tl.newTrack()
		}
	}
}

func (tl *Timeline) newTrack() int {
	id := tl.nextID
	tl.nextID++
	return id
}

// ActiveTracks returns the ids alive in the latest snapshot, sorted.
func (tl *Timeline) ActiveTracks() []int {
	ids := make([]int, 0, len(tl.last))
	seen := map[int]bool{}
	for _, id := range tl.last {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// Summary renders the timeline as text: one line per track with its size
// trajectory.
func (tl *Timeline) Summary() string {
	ids := make([]int, 0, len(tl.Tracks))
	for id := range tl.Tracks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := fmt.Sprintf("timeline: %d snapshots, %d tracks, level k=%d\n",
		tl.snapshots, len(ids), tl.K)
	for _, id := range ids {
		out += fmt.Sprintf("  track %d:", id)
		for _, p := range tl.Tracks[id] {
			out += fmt.Sprintf(" s%d:%dv", p.Snapshot, p.Size)
		}
		out += "\n"
	}
	return out
}
