// Package kcore implements vertex K-Core decomposition (Definitions 1 and 2
// of the paper) using the O(|E|) bucket-peeling algorithm of Batagelj and
// Zaveršnik, which the paper cites as reference [21].
//
// The K-Core number of a vertex v is the largest k such that v belongs to a
// subgraph in which every vertex has degree at least k. The paper uses
// vertex K-Cores as the point of contrast motivating Triangle K-Cores
// (Figure 1): a K-Core can be far from a clique, while a Triangle K-Core of
// the same order is structurally much closer to one.
package kcore

import (
	"trikcore/internal/bucket"
	"trikcore/internal/graph"
)

// Decomposition holds the result of a vertex k-core decomposition.
type Decomposition struct {
	// Core maps each vertex to its maximum K-Core number.
	Core map[graph.Vertex]int
	// MaxCore is the degeneracy of the graph: the largest K-Core number.
	MaxCore int
	// Order lists vertices in the order they were peeled (ascending core
	// number; a degeneracy ordering when read in reverse).
	Order []graph.Vertex
}

// Decompose computes the maximum K-Core number of every vertex in g.
func Decompose(g *graph.Graph) *Decomposition {
	s := graph.FreezeStatic(g)
	n := s.NumVertices()
	degs := make([]int32, n)
	for i := 0; i < n; i++ {
		degs[i] = int32(s.Degree(int32(i)))
	}
	q := bucket.New(degs)
	d := &Decomposition{
		Core:  make(map[graph.Vertex]int, n),
		Order: make([]graph.Vertex, 0, n),
	}
	for {
		v, deg, ok := q.PopMin()
		if !ok {
			break
		}
		d.Core[s.OrigID[v]] = int(deg)
		d.Order = append(d.Order, s.OrigID[v])
		if int(deg) > d.MaxCore {
			d.MaxCore = int(deg)
		}
		for _, w := range s.Neighbors(v) {
			if !q.Popped(w) && q.Val(w) > deg {
				q.Dec(w)
			}
		}
	}
	return d
}

// CoreSubgraph returns the subgraph of g induced by vertices with K-Core
// number at least k — the (possibly disconnected) k-core of the graph.
func CoreSubgraph(g *graph.Graph, d *Decomposition, k int) *graph.Graph {
	var verts []graph.Vertex
	for v, c := range d.Core {
		if c >= k {
			verts = append(verts, v)
		}
	}
	return graph.InducedSubgraph(g, verts)
}

// Degeneracy returns the degeneracy of g (its maximum K-Core number).
func Degeneracy(g *graph.Graph) int {
	return Decompose(g).MaxCore
}

// DegeneracyOrder returns vertices of g in a degeneracy ordering: each
// vertex has at most Degeneracy(g) neighbors appearing later in the order.
func DegeneracyOrder(g *graph.Graph) []graph.Vertex {
	return Decompose(g).Order
}
