package kcore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"trikcore/internal/graph"
	"trikcore/internal/reference"
)

func randomGraph(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Vertex(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(graph.Vertex(i), graph.Vertex(j))
			}
		}
	}
	return g
}

func TestDecomposeTriangle(t *testing.T) {
	g := graph.FromPairs(1, 2, 2, 3, 3, 1, 3, 4)
	d := Decompose(g)
	want := map[graph.Vertex]int{1: 2, 2: 2, 3: 2, 4: 1}
	for v, k := range want {
		if d.Core[v] != k {
			t.Errorf("core(%d) = %d, want %d", v, d.Core[v], k)
		}
	}
	if d.MaxCore != 2 {
		t.Fatalf("MaxCore = %d, want 2", d.MaxCore)
	}
}

func TestFigure1KCoreConstruction(t *testing.T) {
	// Figure 1(a): a 5-vertex K-Core with core number 2 built with a
	// minimal number of edges — the 5-cycle. Every vertex has core 2 yet
	// the graph is triangle-free, the paper's motivating contrast.
	c5 := graph.FromPairs(0, 1, 1, 2, 2, 3, 3, 4, 4, 0)
	d := Decompose(c5)
	for _, v := range c5.Vertices() {
		if d.Core[v] != 2 {
			t.Fatalf("core(%d) = %d, want 2 on C5", v, d.Core[v])
		}
	}
	if graph.TriangleCount(c5) != 0 {
		t.Fatal("C5 should be triangle-free")
	}
}

func TestDecomposeClique(t *testing.T) {
	g := graph.New()
	n := graph.Vertex(7)
	for i := graph.Vertex(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	d := Decompose(g)
	for _, v := range g.Vertices() {
		if d.Core[v] != int(n)-1 {
			t.Fatalf("core(%d) = %d, want %d", v, d.Core[v], n-1)
		}
	}
}

func TestDecomposeEmptyAndIsolated(t *testing.T) {
	d := Decompose(graph.New())
	if len(d.Core) != 0 || d.MaxCore != 0 {
		t.Fatal("empty graph decomposition wrong")
	}
	g := graph.New()
	g.AddVertex(5)
	d = Decompose(g)
	if d.Core[5] != 0 || len(d.Order) != 1 {
		t.Fatal("isolated vertex should have core 0")
	}
}

func TestQuickMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(25, 0.2, seed)
		got := Decompose(g).Core
		want := reference.VertexCore(g)
		for v, k := range want {
			if got[v] != k {
				return false
			}
		}
		return len(got) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDegeneracyOrderProperty(t *testing.T) {
	// In a degeneracy order (reversed peel order), every vertex has at
	// most Degeneracy(g) neighbors later in the peel order... equivalently
	// at most MaxCore neighbors among vertices peeled after it.
	g := randomGraph(40, 0.15, 99)
	d := Decompose(g)
	pos := make(map[graph.Vertex]int, len(d.Order))
	for i, v := range d.Order {
		pos[v] = i
	}
	for _, v := range d.Order {
		later := 0
		g.ForEachNeighbor(v, func(w graph.Vertex) bool {
			if pos[w] > pos[v] {
				later++
			}
			return true
		})
		if later > d.MaxCore {
			t.Fatalf("vertex %d has %d later neighbors > degeneracy %d", v, later, d.MaxCore)
		}
	}
	if Degeneracy(g) != d.MaxCore {
		t.Fatal("Degeneracy disagrees with Decompose")
	}
	if len(DegeneracyOrder(g)) != g.NumVertices() {
		t.Fatal("DegeneracyOrder wrong length")
	}
}

func TestCoreSubgraph(t *testing.T) {
	// Triangle with a tail: 2-core is exactly the triangle.
	g := graph.FromPairs(1, 2, 2, 3, 3, 1, 3, 4, 4, 5)
	d := Decompose(g)
	sub := CoreSubgraph(g, d, 2)
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("2-core has %d vertices, %d edges", sub.NumVertices(), sub.NumEdges())
	}
	for _, v := range []graph.Vertex{1, 2, 3} {
		if !sub.HasVertex(v) {
			t.Fatalf("2-core missing vertex %d", v)
		}
	}
}
