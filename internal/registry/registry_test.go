package registry

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"trikcore/internal/dynamic"
	"trikcore/internal/graph"
	"trikcore/internal/obs"
)

// k5 returns a complete graph on vertices 0..4 (every edge κ=3) plus a
// pendant edge 10-11 (κ=0) — the same fixture the server tests use.
func k5() *graph.Graph {
	g := graph.New()
	for u := graph.Vertex(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			g.AddEdge(u, v)
		}
	}
	g.AddEdge(10, 11)
	return g
}

func add(u, v graph.Vertex) dynamic.EdgeOp { return dynamic.EdgeOp{U: u, V: v} }
func del(u, v graph.Vertex) dynamic.EdgeOp { return dynamic.EdgeOp{U: u, V: v, Del: true} }

func TestLifecycle(t *testing.T) {
	r := New(Config{})
	if _, err := r.Create("alpha", k5()); err != nil {
		t.Fatalf("create alpha: %v", err)
	}
	if _, err := r.Create("beta", nil); err != nil {
		t.Fatalf("create beta: %v", err)
	}
	if _, err := r.Create("alpha", nil); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v, want ErrExists", err)
	}
	if got := r.List(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("List() = %v", got)
	}
	sp, ok := r.Get("alpha")
	if !ok {
		t.Fatal("Get(alpha) missed")
	}
	if sp.Acquire().NumEdges() != 11 {
		t.Fatalf("alpha edges = %d, want 11", sp.Acquire().NumEdges())
	}
	if err := r.Delete("alpha"); err != nil {
		t.Fatalf("delete alpha: %v", err)
	}
	if err := r.Delete("alpha"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
	if _, ok := r.Get("alpha"); ok {
		t.Fatal("deleted graph still resolvable")
	}
	// The name is immediately reusable after deletion.
	if _, err := r.Create("alpha", nil); err != nil {
		t.Fatalf("recreate alpha: %v", err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", r.Len())
	}
}

func TestNameValidation(t *testing.T) {
	good := []string{"default", "a", "g1", "my-graph", "a.b_c", "0x9",
		strings.Repeat("x", 64)}
	bad := []string{"", "-lead", "_other", ".dot", "has space", "a/b",
		strings.Repeat("x", 65), "ümlaut"}
	for _, name := range good {
		if !ValidName(name) {
			t.Errorf("ValidName(%q) = false, want true", name)
		}
	}
	for _, name := range bad {
		if ValidName(name) {
			t.Errorf("ValidName(%q) = true, want false", name)
		}
	}
	r := New(Config{})
	if _, err := r.Create("bad name", nil); !errors.Is(err, ErrInvalidName) {
		t.Fatalf("create with bad name: %v", err)
	}
}

func TestMaxGraphsCap(t *testing.T) {
	r := New(Config{MaxGraphs: 2})
	for _, name := range []string{"a", "b"} {
		if _, err := r.Create(name, nil); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
	}
	if _, err := r.Create("c", nil); !errors.Is(err, ErrRegistryFull) {
		t.Fatalf("over-cap create: %v, want ErrRegistryFull", err)
	}
	// Deleting frees the slot.
	if err := r.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("c", nil); err != nil {
		t.Fatalf("create after delete: %v", err)
	}
}

func TestQuotaRejectionIsAtomic(t *testing.T) {
	r := New(Config{Quotas: Quotas{MaxEdges: 12}})
	sp, err := r.Create("g", k5()) // 11 edges
	if err != nil {
		t.Fatal(err)
	}
	v0 := sp.Acquire().Version

	// 11 + 2 > 12: the whole batch must bounce, including the op that
	// alone would have fit.
	_, _, err = sp.Apply([]dynamic.EdgeOp{add(20, 21), add(21, 22)})
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over-quota apply: %v, want QuotaError", err)
	}
	if qe.Resource != "edges" || qe.Limit != 12 || qe.Have != 11 || qe.Want != 13 {
		t.Fatalf("QuotaError = %+v", qe)
	}
	sn := sp.Acquire()
	if sn.Version != v0 || sn.NumEdges() != 11 {
		t.Fatalf("rejected batch mutated state: version %d→%d, edges %d",
			v0, sn.Version, sn.NumEdges())
	}
	// A batch that fits exactly is accepted.
	if _, _, err := sp.Apply([]dynamic.EdgeOp{add(20, 21)}); err != nil {
		t.Fatalf("in-quota apply: %v", err)
	}
	if sp.Acquire().NumEdges() != 12 {
		t.Fatalf("edges = %d, want 12", sp.Acquire().NumEdges())
	}
}

func TestQuotaCheckIsExact(t *testing.T) {
	// The overlay must honor last-op-wins dedup and count removals as
	// headroom: remove 2, add 2, net 0 — fits a full quota exactly.
	r := New(Config{Quotas: Quotas{MaxEdges: 11, MaxVertices: 7}})
	sp, err := r.Create("g", k5()) // 11 edges, 7 vertices: at both limits
	if err != nil {
		t.Fatal(err)
	}
	ops := []dynamic.EdgeOp{
		del(10, 11), // frees one edge
		add(0, 10),  // reuses vertex 10, spends the freed edge
		add(20, 21), // would exceed...
		del(20, 21), // ...but the last op on that edge wins: net zero
	}
	if _, _, err := sp.Apply(ops); err != nil {
		t.Fatalf("net-zero batch rejected: %v", err)
	}
	if n := sp.Acquire().NumEdges(); n != 11 {
		t.Fatalf("edges = %d, want 11", n)
	}
	// One fresh vertex past MaxVertices bounces with the right resource.
	_, _, err = sp.Apply([]dynamic.EdgeOp{del(0, 1), add(0, 30)})
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Resource != "vertices" {
		t.Fatalf("vertex-quota apply: %v, want vertices QuotaError", err)
	}
}

func TestSeedQuota(t *testing.T) {
	r := New(Config{Quotas: Quotas{MaxEdges: 5}})
	if _, err := r.Create("big", k5()); err == nil {
		t.Fatal("oversized seed accepted")
	}
	if r.Len() != 0 {
		t.Fatalf("failed create left residue: Len() = %d", r.Len())
	}
	if _, err := r.Create("big", nil); err != nil {
		t.Fatalf("name not released after failed create: %v", err)
	}
}

func TestSpacesAreIsolated(t *testing.T) {
	r := New(Config{})
	a, err := r.Create("a", k5())
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Create("b", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Apply([]dynamic.EdgeOp{add(100, 101), add(101, 102), add(100, 102)}); err != nil {
		t.Fatal(err)
	}
	if n := a.Acquire().NumEdges(); n != 11 {
		t.Fatalf("mutating b changed a: %d edges", n)
	}
	if n := b.Acquire().NumEdges(); n != 3 {
		t.Fatalf("b edges = %d, want 3", n)
	}
	if _, ok := a.Acquire().KappaOf(graph.NewEdge(100, 101)); ok {
		t.Fatal("b's edge visible in a")
	}
}

func TestCloseRejectsCreates(t *testing.T) {
	r := New(Config{})
	sp, err := r.Create("g", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, sub := sp.Feed().Subscribe(0)
	r.Close()
	select {
	case <-sub.Done:
	default:
		t.Fatal("Close did not terminate subscribers")
	}
	if _, err := r.Create("h", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v, want ErrClosed", err)
	}
	r.Close() // idempotent
}

func TestPerGraphMetricsBounded(t *testing.T) {
	reg := obs.NewRegistry()
	r := New(Config{Registry: reg, MaxGraphLabels: 2, MaxGraphs: -1})
	for i := 0; i < 6; i++ {
		if _, err := r.Create(fmt.Sprintf("g%d", i), k5()); err != nil {
			t.Fatal(err)
		}
	}
	expo := string(reg.Gather())
	series := 0
	for _, line := range strings.Split(expo, "\n") {
		if strings.HasPrefix(line, "trikcore_graph_edges{") {
			series++
		}
	}
	if series != 3 { // g0, g1, _other
		t.Fatalf("trikcore_graph_edges has %d series, want 3:\n%s", series, expo)
	}
	if !strings.Contains(expo, `trikcore_graph_edges{graph="_other"}`) {
		t.Fatalf("overflow series missing:\n%s", expo)
	}
	if !strings.Contains(expo, "trikcore_registry_graphs 6") {
		t.Fatalf("registry gauge wrong:\n%s", expo)
	}
}

// TestRegistryHammer races creates, deletes, writes, reads and
// subscriptions across goroutines — run under -race it is the package's
// concurrency oracle (wired into make debugrace).
func TestRegistryHammer(t *testing.T) {
	r := New(Config{MaxGraphs: 8, Quotas: Quotas{MaxEdges: 500}})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("g%d", w%4)
			for i := 0; i < 50; i++ {
				switch i % 5 {
				case 0:
					r.Create(name, nil)
				case 1:
					if sp, ok := r.Get(name); ok {
						base := graph.Vertex(w*1000 + i)
						sp.Apply([]dynamic.EdgeOp{
							add(base, base+1), add(base+1, base+2), add(base, base+2),
						})
					}
				case 2:
					if sp, ok := r.Get(name); ok {
						sn := sp.Acquire()
						_ = sn.NumEdges()
						sp.SetBookmark(sn)
					}
				case 3:
					if sp, ok := r.Get(name); ok {
						_, sub := sp.Feed().Subscribe(0)
						sp.Feed().Unsubscribe(sub)
					}
				case 4:
					if i%10 == 4 {
						r.Delete(name)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, name := range r.List() {
		if sp, ok := r.Get(name); ok {
			if sp.Acquire() == nil {
				t.Fatalf("space %s has no snapshot", name)
			}
		}
	}
	r.Close()
}
