package registry

import (
	"encoding/json"
	"sort"
	"sync"

	"trikcore/internal/graph"
	"trikcore/internal/obs"
	"trikcore/internal/template"
	"trikcore/internal/view"
	"trikcore/internal/watchdog"
)

// The change feed turns snapshot publications into a totally ordered
// event stream. Because the publisher's snapshots are immutable,
// versioned and byte-deterministic, diffing the new snapshot's
// maintained κ against the previous one is exact and cheap — the same
// mechanism the /dualview endpoint already exploits — and the resulting
// events inherit the determinism: identical publish sequences yield
// identical event bytes, at any worker count.
//
// Event kinds:
//
//   - "kappa": one edge's κ changed. Promotions cover edges whose κ
//     rose and edges that appeared (from = -1); demotions cover edges
//     whose κ fell and edges that vanished (to = -1).
//   - "pattern": a template-pattern clique (New Form / Bridge / New
//     Join, Algorithm 4 over the snapshot diff) detected in the new
//     snapshot, reported with its vertex set and co-clique height.
//
// Events carry monotonically increasing ids, assigned in canonical
// order (κ events sorted by edge, then pattern events by pattern and
// vertex set) within each publication. A bounded ring retains the most
// recent events so a reconnecting subscriber can resume from its
// Last-Event-ID; older events are evicted oldest-first.
//
// The feed arms itself on the first subscription and then records every
// publication permanently — diffing before the first subscriber would
// tax every write of every graph that no one is watching, while
// stopping when the last subscriber disconnects would tear a hole in
// the id sequence that Last-Event-ID resume could not see.

// Event kind names, used as the SSE `event:` field.
const (
	KindKappa   = "kappa"
	KindPattern = "pattern"
)

// κ event type names.
const (
	TypePromote = "promote"
	TypeDemote  = "demote"
)

// KappaAbsent marks "edge not present" in a κ event's From/To field.
const KappaAbsent = int32(-1)

// Event is one rendered change-feed entry: the monotone id, the SSE
// event kind, and the payload bytes (JSON, rendered once at publish
// time and shared by every subscriber).
type Event struct {
	ID   uint64
	Kind string
	Data []byte
}

// KappaEvent is the payload of a "kappa" event.
type KappaEvent struct {
	ID      uint64       `json:"id"`
	Version uint64       `json:"version"`
	Type    string       `json:"type"` // promote | demote
	U       graph.Vertex `json:"u"`
	V       graph.Vertex `json:"v"`
	From    int32        `json:"from"` // -1: edge was absent
	To      int32        `json:"to"`   // -1: edge was removed
}

// PatternEvent is the payload of a "pattern" event.
type PatternEvent struct {
	ID       uint64         `json:"id"`
	Version  uint64         `json:"version"`
	Type     string         `json:"type"`    // always "pattern"
	Pattern  string         `json:"pattern"` // new-form | bridge | new-join
	Height   int            `json:"height"`  // co-clique height of the detected clique
	Vertices []graph.Vertex `json:"vertices"`
}

// Pattern reporting bounds: per publication each template reports at
// most feedTopCliques cliques of at least feedMinWidth vertices — the
// same top-3 selection the paper's figures circle.
const (
	feedTopCliques = 3
	feedMinWidth   = 3
)

// Feed is one space's event hub: the bounded ring of recent events plus
// the live subscriber set. All methods are safe for concurrent use.
type Feed struct {
	mu     sync.Mutex
	armed  bool                     // trikcheck:guardedby mu
	closed bool                     // trikcheck:guardedby mu
	nextID uint64                   // trikcheck:guardedby mu — id the next event will get; ids start at 1
	ring   []Event                  // trikcheck:guardedby mu
	subs   map[*Subscriber]struct{} // trikcheck:guardedby mu
	// capacity and subsGauge are set once in newFeed/newSpace before the
	// feed escapes; immutable thereafter.
	capacity  int
	subsGauge *obs.Gauge
}

// subscriberBuffer is each subscriber's channel depth. A consumer that
// falls more than this many events behind while the feed keeps
// publishing is dropped (Done closes) rather than allowed to backpressure
// the write path.
const subscriberBuffer = 64

// Subscriber is one live feed consumer.
type Subscriber struct {
	// C delivers events in id order. It is never closed; watch Done.
	C <-chan Event
	// Done closes when the subscriber is dropped (slow consumer), the
	// feed closes (graph deleted or server shutting down), or
	// Unsubscribe is called.
	Done <-chan struct{}

	ch   chan Event
	done chan struct{}
	feed *Feed
}

func newFeed(capacity int) *Feed {
	if capacity <= 0 {
		capacity = DefaultFeedCapacity
	}
	return &Feed{capacity: capacity, subs: make(map[*Subscriber]struct{})}
}

// Subscribe registers a consumer, arming the feed if this is its first
// ever subscriber. It returns the retained events with id > lastID (the
// Last-Event-ID resume path; pass 0 for "from now on") and the live
// subscriber. On a closed feed the subscriber's Done is already closed.
func (f *Feed) Subscribe(lastID uint64) ([]Event, *Subscriber) {
	sub := &Subscriber{
		ch:   make(chan Event, subscriberBuffer),
		done: make(chan struct{}),
		feed: f,
	}
	sub.C, sub.Done = sub.ch, sub.done

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		close(sub.done)
		return nil, sub
	}
	f.armed = true
	var replay []Event
	for _, ev := range f.ring {
		if ev.ID > lastID {
			replay = append(replay, ev)
		}
	}
	f.subs[sub] = struct{}{}
	f.subsGauge.Set(int64(len(f.subs)))
	return replay, sub
}

// Unsubscribe removes sub and closes its Done. Idempotent.
func (f *Feed) Unsubscribe(sub *Subscriber) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropLocked(sub)
}

// dropLocked removes sub and closes its Done; every caller holds f.mu.
//
//trikcheck:locked
func (f *Feed) dropLocked(sub *Subscriber) {
	if _, ok := f.subs[sub]; !ok {
		return
	}
	delete(f.subs, sub)
	f.subsGauge.Set(int64(len(f.subs)))
	close(sub.done)
}

// Armed reports whether the feed has ever had a subscriber (and so
// records publications).
func (f *Feed) Armed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.armed
}

// LastID returns the id of the most recently recorded event (0 before
// the first).
func (f *Feed) LastID() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nextID
}

// Close terminates every subscriber and stops recording. Idempotent.
func (f *Feed) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	for sub := range f.subs {
		close(sub.done)
	}
	f.subs = make(map[*Subscriber]struct{})
	f.subsGauge.Set(0)
}

// publish diffs prev → cur, records the resulting events and fans them
// out to live subscribers, returning how many events were recorded. A
// subscriber whose buffer is full is dropped on the spot: the feed
// never blocks the write path on a slow consumer.
func (f *Feed) publish(prev, cur *view.Snapshot) int {
	defer watchdog.Start("registry.Feed.publish")()
	f.mu.Lock()
	if !f.armed || f.closed {
		f.mu.Unlock()
		return 0
	}
	f.mu.Unlock()

	// The expensive diff runs outside the lock; Space.wmu already
	// serializes publications, so id assignment below stays in order.
	evs := diffEvents(prev, cur, f.peekNextID())
	if len(evs) == 0 {
		return 0
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0
	}
	f.nextID += uint64(len(evs))
	f.ring = append(f.ring, evs...)
	if excess := len(f.ring) - f.capacity; excess > 0 {
		f.ring = append(f.ring[:0], f.ring[excess:]...)
	}
	for sub := range f.subs {
		delivered := true
		for _, ev := range evs {
			select {
			case sub.ch <- ev:
			default:
				delivered = false
			}
			if !delivered {
				break
			}
		}
		if !delivered {
			f.dropLocked(sub)
		}
	}
	return len(evs)
}

// peekNextID returns the id the next event will receive.
func (f *Feed) peekNextID() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nextID + 1
}

// diffEvents renders the canonical event list for the prev → cur
// publication, assigning ids from firstID. κ events come first, sorted
// by external edge; pattern events follow in fixed template order.
// Everything is a pure function of the two snapshots, which is what
// makes the feed byte-deterministic across runs and worker counts.
func diffEvents(prev, cur *view.Snapshot, firstID uint64) []Event {
	type change struct {
		e        graph.Edge
		from, to int32
	}
	old := make(map[graph.Edge]int32, len(prev.Kappa))
	for i, k := range prev.Kappa {
		old[prev.S.EdgeAt(int32(i))] = k
	}
	var changes []change
	for i, k := range cur.Kappa {
		e := cur.S.EdgeAt(int32(i))
		if ko, ok := old[e]; ok {
			if ko != k {
				changes = append(changes, change{e, ko, k})
			}
			delete(old, e)
		} else {
			changes = append(changes, change{e, KappaAbsent, k})
		}
	}
	for e, ko := range old {
		changes = append(changes, change{e, ko, KappaAbsent})
	}
	sort.Slice(changes, func(i, j int) bool { return changes[i].e.Less(changes[j].e) })

	var events []Event
	id := firstID
	push := func(kind string, payload any) {
		data, err := json.Marshal(payload)
		if err != nil {
			// Payload structs marshal by construction; a failure here is
			// a programming error, not a runtime condition.
			panic(err)
		}
		events = append(events, Event{ID: id, Kind: kind, Data: data})
		id++
	}
	for _, c := range changes {
		typ := TypePromote
		if c.to < c.from {
			typ = TypeDemote
		}
		push(KindKappa, KappaEvent{
			ID: id, Version: cur.Version, Type: typ,
			U: c.e.U, V: c.e.V, From: c.from, To: c.to,
		})
	}

	// Template-pattern detection (Algorithm 4) over the snapshot diff.
	// Only worth running when the edge set actually changed — pure κ
	// reshuffles cannot form a novelty pattern.
	if len(changes) > 0 {
		oldG, newG := prev.Graph(), cur.Graph()
		nov := template.Evolving(oldG, newG)
		for _, spec := range []template.Spec{
			template.NewForm(nov), template.Bridge(nov), template.NewJoin(nov),
		} {
			res := template.Detect(newG, spec)
			if len(res.Characteristic) == 0 {
				continue
			}
			for _, pk := range res.TopCliques(feedTopCliques, feedMinWidth) {
				push(KindPattern, PatternEvent{
					ID: id, Version: cur.Version, Type: KindPattern,
					Pattern: spec.Name, Height: pk.Height, Vertices: pk.Vertices,
				})
			}
		}
	}
	return events
}
